package cosmicdance_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
	"cosmicdance/internal/dst"
	"cosmicdance/internal/incremental"
	"cosmicdance/internal/spaceweather"
	"cosmicdance/internal/testkit"
)

// pipelineRun is everything the equivalence suite compares: the built
// dataset, the happens-closely-after associations, and the automatically
// detected decay onsets.
type pipelineRun struct {
	dataset *core.Dataset
	devs    []core.Deviation
	onsets  []core.DecayOnset
}

// runPipeline simulates a small research fleet and runs the full analysis at
// the given worker-pool width.
func runPipeline(t testing.TB, weather *dst.Index, seed int64, parallelism int) pipelineRun {
	t.Helper()
	start := weather.Start()
	fleetCfg := constellation.ResearchFleet(seed, start, start.AddDate(1, 0, 0), 10)
	fleetCfg.Parallelism = parallelism
	res, err := constellation.Run(context.Background(), fleetCfg, weather)
	if err != nil {
		t.Fatalf("parallelism %d: constellation: %v", parallelism, err)
	}
	coreCfg := core.DefaultConfig()
	coreCfg.Parallelism = parallelism
	b := core.NewBuilder(coreCfg, weather)
	b.AddSamples(res.Samples)
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatalf("parallelism %d: build: %v", parallelism, err)
	}
	events, err := d.EventsAbovePercentile(95, 1, 0)
	if err != nil {
		t.Fatalf("parallelism %d: events: %v", parallelism, err)
	}
	return pipelineRun{
		dataset: d,
		devs:    d.Associate(context.Background(), events, 30),
		onsets:  d.DecayOnsets(5),
	}
}

// runChunkedPipeline runs the same fleet through the chunked path —
// PlanChunks → per-chunk simulation and cleaning → ordered assembly — at the
// given chunk size and worker width.
func runChunkedPipeline(t testing.TB, weather *dst.Index, seed int64, parallelism, chunkSize int) pipelineRun {
	t.Helper()
	start := weather.Start()
	fleetCfg := constellation.ResearchFleet(seed, start, start.AddDate(1, 0, 0), 10)
	fleetCfg.Parallelism = parallelism
	plan, err := constellation.PlanChunks(fleetCfg, chunkSize)
	if err != nil {
		t.Fatalf("chunk %d: plan: %v", chunkSize, err)
	}
	coreCfg := core.DefaultConfig()
	coreCfg.Parallelism = 1
	asm := core.NewPartialAssembler(coreCfg, weather)
	for i := 0; i < plan.NumChunks(); i++ {
		res, err := plan.RunChunk(context.Background(), i, weather)
		if err != nil {
			t.Fatalf("chunk %d/%d: run: %v", i, chunkSize, err)
		}
		part, err := core.BuildChunkPartial(context.Background(), coreCfg, res.Samples)
		if err != nil {
			t.Fatalf("chunk %d/%d: partial: %v", i, chunkSize, err)
		}
		if err := asm.Add(part); err != nil {
			t.Fatalf("chunk %d/%d: assemble: %v", i, chunkSize, err)
		}
	}
	d, err := asm.Finish()
	if err != nil {
		t.Fatalf("chunk %d: finish: %v", chunkSize, err)
	}
	events, err := d.EventsAbovePercentile(95, 1, 0)
	if err != nil {
		t.Fatalf("chunk %d: events: %v", chunkSize, err)
	}
	return pipelineRun{
		dataset: d,
		devs:    d.Associate(context.Background(), events, 30),
		onsets:  d.DecayOnsets(5),
	}
}

// runIncrementalPrefix replays the first nObs observations and nHours Dst
// hours through the incremental engine, and builds the batch pipeline at
// exactly the same watermark (fixed-threshold events, the engine's event
// model). Byte-identity between the two is the live-feed determinism
// invariant: an engine is always some prefix replay of the stream.
func runIncrementalPrefix(t *testing.T, weather *dst.Index, obs []core.Observation, nObs, nHours int) (got, ref pipelineRun) {
	t.Helper()
	vals := weather.Hourly().Values()[:nHours]
	cfg := incremental.DefaultConfig()

	eng := incremental.New(cfg)
	eng.IngestObservations(obs[:nObs])
	if _, err := eng.IngestDst(weather.Start(), vals); err != nil {
		t.Fatalf("prefix %d/%d: ingest dst: %v", nObs, nHours, err)
	}
	d, err := eng.Dataset()
	if err != nil {
		t.Fatalf("prefix %d/%d: engine dataset: %v", nObs, nHours, err)
	}
	got = pipelineRun{dataset: d, devs: eng.Deviations(), onsets: eng.Onsets()}

	b := core.NewBuilder(cfg.Core, dst.FromValues(weather.Start(), vals))
	b.AddObservations(obs[:nObs])
	bd, err := b.Build(context.Background())
	if err != nil {
		t.Fatalf("prefix %d/%d: batch build: %v", nObs, nHours, err)
	}
	events := bd.Events(cfg.MaxPeak, cfg.MinHours, cfg.MaxHours)
	ref = pipelineRun{
		dataset: bd,
		devs:    bd.Associate(context.Background(), events, cfg.WindowDays),
		onsets:  bd.DecayOnsets(cfg.MinDropKm),
	}
	return got, ref
}

// TestParallelEquivalence is the headline invariant of the worker-pool
// pipeline: at every Parallelism setting — at every chunk size of the
// chunked streaming path — and at every stream prefix of the incremental
// engine — the simulated archive, the cleaned dataset, the deviation list,
// and the decay-onset set are identical to the sequential unchunked run —
// across several seeds, so the property does not hinge on one lucky
// schedule.
func TestParallelEquivalence(t *testing.T) {
	weather, err := spaceweather.Generate(spaceweather.Paper2020to2024())
	if err != nil {
		t.Fatal(err)
	}
	diffRun := func(t *testing.T, label string, ref, got pipelineRun) {
		t.Helper()
		if msg := testkit.DiffDatasets(ref.dataset, got.dataset); msg != "" {
			t.Errorf("%s: dataset diverged: %s", label, msg)
		}
		if msg := testkit.DiffDeviations(ref.devs, got.devs); msg != "" {
			t.Errorf("%s: deviations diverged: %s", label, msg)
		}
		if msg := diffOnsets(ref.onsets, got.onsets); msg != "" {
			t.Errorf("%s: decay onsets diverged: %s", label, msg)
		}
	}
	for _, seed := range []int64{7, 42, 1234} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := runPipeline(t, weather, seed, 1)
			if len(ref.dataset.Tracks()) == 0 {
				t.Fatal("sequential reference produced no tracks")
			}
			for _, width := range []int{2, 4, 8} {
				got := runPipeline(t, weather, seed, width)
				diffRun(t, fmt.Sprintf("parallelism %d", width), ref, got)
			}
			for _, chunkSize := range []int{16, 64, 1 << 20} {
				got := runChunkedPipeline(t, weather, seed, 4, chunkSize)
				diffRun(t, fmt.Sprintf("chunk %d", chunkSize), ref, got)
			}
			// Prefix dimension: replaying any prefix of the event stream
			// through the incremental engine equals the batch pipeline at
			// the same watermark. (The engine's fixed-threshold event model
			// differs from the percentile reference above, so the batch
			// side is rebuilt per prefix rather than reusing ref.)
			start := weather.Start()
			fleetCfg := constellation.ResearchFleet(seed, start, start.AddDate(1, 0, 0), 10)
			res, err := constellation.Run(context.Background(), fleetCfg, weather)
			if err != nil {
				t.Fatalf("prefix fleet: %v", err)
			}
			obs := make([]core.Observation, len(res.Samples))
			for i, s := range res.Samples {
				obs[i] = core.ObservationFromSample(s)
			}
			for _, den := range []int{4, 2, 1} {
				got, ref := runIncrementalPrefix(t, weather, obs, len(obs)/den, weather.Len()/den)
				diffRun(t, fmt.Sprintf("prefix 1/%d", den), ref, got)
			}
		})
	}
}

// diffOnsets compares decay-onset sets element-wise; float fields must match
// exactly — the pipeline is deterministic, so any drift is a real divergence.
func diffOnsets(want, got []core.DecayOnset) string {
	if len(want) != len(got) {
		return fmt.Sprintf("onset count differs: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Sprintf("onset %d differs:\n  want: %+v\n  got:  %+v", i, want[i], got[i])
		}
	}
	return ""
}

// TestDatasetConcurrentReaders hammers one shared Dataset from many
// goroutines mixing every read-path accessor the analyses use. The dataset is
// immutable after Build, so this must be race-free — the test exists to keep
// it that way under `go test -race`.
func TestDatasetConcurrentReaders(t *testing.T) {
	weather, err := spaceweather.Generate(spaceweather.Paper2020to2024())
	if err != nil {
		t.Fatal(err)
	}
	run := runPipeline(t, weather, 42, 0)
	d := run.dataset
	events, err := d.EventsAbovePercentile(95, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events to associate")
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				switch (g + i) % 4 {
				case 0:
					if got := d.Events(-50, 1, 0); len(got) == 0 {
						t.Error("Events returned nothing")
					}
				case 1:
					ev := events[(g+i)%len(events)]
					if _, err := d.Window(context.Background(), ev.Epoch(), core.WindowOptions{Days: 30}); err != nil {
						t.Errorf("Window: %v", err)
					}
				case 2:
					// Associate itself fans out on the worker pool, so this
					// also exercises nested pool use under contention.
					d.Associate(context.Background(), events, 30)
				case 3:
					if _, err := d.RawAltitudeCDF(); err != nil {
						t.Errorf("RawAltitudeCDF: %v", err)
					}
					if _, err := d.CleanAltitudeCDF(); err != nil {
						t.Errorf("CleanAltitudeCDF: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
