package cosmicdance_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"cosmicdance/internal/artifact"
	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
	"cosmicdance/internal/scale"
	"cosmicdance/internal/spaceweather"
	"cosmicdance/internal/testkit"
)

// chunkMatrixRun holds one chunked execution's full analysis output plus the
// dataset's canonical encoding, so the matrix can assert byte identity on
// top of structural identity.
type chunkMatrixRun struct {
	pipelineRun
	encoded []byte
}

func encodeDataset(t testing.TB, d *core.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := artifact.EncodeDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func analyzeDataset(t testing.TB, d *core.Dataset) pipelineRun {
	t.Helper()
	events, err := d.EventsAbovePercentile(95, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return pipelineRun{dataset: d, devs: d.Associate(context.Background(), events, 30), onsets: d.DecayOnsets(5)}
}

// TestChunkEquivalenceMatrix is the scale-out proof: a mega-constellation
// fleet streamed through the chunked pipeline produces a dataset,
// deviation list, and decay-onset set byte-identical to the monolithic
// materialize-everything path — at every (chunk size × worker width × seed)
// combination, through both the in-memory and the spilled segment store.
func TestChunkEquivalenceMatrix(t *testing.T) {
	for _, seed := range []int64{7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			spec := scale.Spec{Sats: 5000, Days: 4, Seed: seed}
			wcfg, ccfg := scale.WeatherConfig(spec), scale.CoreConfig()

			// The unchunked seed path: simulate the whole fleet at once and
			// build the dataset monolithically.
			weather, err := spaceweather.Generate(wcfg)
			if err != nil {
				t.Fatal(err)
			}
			refFleet := scale.FleetConfig(spec)
			refFleet.Parallelism = 1
			res, err := constellation.Run(context.Background(), refFleet, weather)
			if err != nil {
				t.Fatal(err)
			}
			b := core.NewBuilder(ccfg, weather)
			b.AddSamples(res.Samples)
			refDataset, err := b.Build(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			ref := chunkMatrixRun{analyzeDataset(t, refDataset), encodeDataset(t, refDataset)}
			if len(ref.dataset.Tracks()) == 0 {
				t.Fatal("unchunked reference produced no tracks")
			}

			for _, chunkSize := range []int{1024, 4096, 16384} {
				for wi, width := range []int{1, 4, 8} {
					name := fmt.Sprintf("chunk=%d width=%d", chunkSize, width)
					opts := artifact.ChunkedOptions{ChunkSize: chunkSize, InMemory: true}
					if wi%2 == 1 {
						// Alternate the segment store so the matrix also diffs
						// in-memory against spilled execution.
						opts.InMemory = false
						opts.SpillDir = t.TempDir()
					}
					fcfg := scale.FleetConfig(spec)
					fcfg.Parallelism = width
					d, err := artifact.NewPipeline(nil).ChunkedDataset(context.Background(), wcfg, fcfg, ccfg, opts)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					got := chunkMatrixRun{analyzeDataset(t, d), encodeDataset(t, d)}
					if msg := testkit.DiffDatasets(ref.dataset, got.dataset); msg != "" {
						t.Errorf("%s: dataset diverged: %s", name, msg)
					}
					if msg := testkit.DiffDeviations(ref.devs, got.devs); msg != "" {
						t.Errorf("%s: deviations diverged: %s", name, msg)
					}
					if msg := diffOnsets(ref.onsets, got.onsets); msg != "" {
						t.Errorf("%s: decay onsets diverged: %s", name, msg)
					}
					if !bytes.Equal(ref.encoded, got.encoded) {
						t.Errorf("%s: encoded dataset is not byte-identical to the unchunked build", name)
					}
				}
			}
		})
	}
}
