package cosmicdance

// The benchmark harness regenerates every figure of the paper. Each
// BenchmarkFigNN target rebuilds that figure's series from the shared
// substrate and reports its headline quantities as benchmark metrics, so
//
//	go test -bench=Fig -benchmem
//
// reproduces the full evaluation. EXPERIMENTS.md records the paper-reported
// values next to the measured ones.

import (
	"context"
	"math"
	"testing"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
	"cosmicdance/internal/dst"
	"cosmicdance/internal/spaceweather"
	"cosmicdance/internal/units"
)

// BenchmarkFig01StormIntensity regenerates Fig 1: the distribution of storm
// intensities over the paper window. Paper: 720 mild hours, 74 moderate
// hours, exactly 3 severe hours, 99th-ptile −63 nT.
func BenchmarkFig01StormIntensity(b *testing.B) {
	b.ReportAllocs()
	weather, _, _ := paperFixture(b)
	b.ResetTimer()
	var classes map[units.GScale]int
	var p99 units.NanoTesla
	for i := 0; i < b.N; i++ {
		classes = weather.HoursInClass()
		var err error
		p99, err = weather.IntensityPercentile(99)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(classes[units.G1Minor]), "mild-hours")
	b.ReportMetric(float64(classes[units.G2Moderate]), "moderate-hours")
	b.ReportMetric(float64(classes[units.G4Severe]), "severe-hours")
	b.ReportMetric(float64(p99), "p99-nT")
}

// BenchmarkFig02StormDuration regenerates Fig 2: storm-duration distributions
// per category. Paper: moderate median/95/99/max ≈ 3/15.8/19.1/19 h; mild ≈
// 3/17/24.7/29 h; severe one 3-hour run.
func BenchmarkFig02StormDuration(b *testing.B) {
	b.ReportAllocs()
	weather, _, _ := paperFixture(b)
	b.ResetTimer()
	var mild, moderate, severe struct{ median, max float64 }
	for i := 0; i < b.N; i++ {
		m, err := dst.DurationSummary(weather.CategoryRuns(units.G1Minor))
		if err != nil {
			b.Fatal(err)
		}
		mild.median, mild.max = m.Median, m.Max
		mo, err := dst.DurationSummary(weather.CategoryRuns(units.G2Moderate))
		if err != nil {
			b.Fatal(err)
		}
		moderate.median, moderate.max = mo.Median, mo.Max
		se, err := dst.DurationSummary(weather.CategoryRuns(units.G4Severe))
		if err != nil {
			b.Fatal(err)
		}
		severe.median, severe.max = se.Median, se.Max
	}
	b.ReportMetric(mild.median, "mild-median-h")
	b.ReportMetric(mild.max, "mild-max-h")
	b.ReportMetric(moderate.median, "moderate-median-h")
	b.ReportMetric(moderate.max, "moderate-max-h")
	b.ReportMetric(severe.max, "severe-run-h")
}

// BenchmarkFig03TimeSeries regenerates Fig 3: the merged Dst/drag/altitude
// series for the three cherry-picked satellites. Paper: #44943 drops ~150 km
// over the weeks after the 3 Mar 2024 storm.
func BenchmarkFig03TimeSeries(b *testing.B) {
	b.ReportAllocs()
	_, _, data := paperFixture(b)
	from := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2024, 5, 8, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	var drop float64
	for i := 0; i < b.N; i++ {
		for _, cat := range []int{constellation.Fig3SatDragSpike, constellation.Fig3SatQuietDecay, constellation.Fig3SatSharpDrop} {
			ts, err := data.TimeSeries(cat, from, to)
			if err != nil {
				b.Fatal(err)
			}
			if cat == constellation.Fig3SatSharpDrop {
				// The paper quotes the drop "over the next few weeks";
				// measure at +35 days.
				var before, after float64
				cut := spaceweather.Fig3StormB.Add(35 * 24 * time.Hour)
				for _, p := range ts.Points {
					if p.At.Before(spaceweather.Fig3StormB) {
						before = p.AltKm
					} else if after == 0 && p.At.After(cut) {
						after = p.AltKm
					}
				}
				drop = before - after
			}
		}
	}
	b.ReportMetric(drop, "sat44943-drop-km")
}

// BenchmarkFig04aStormWindow regenerates Fig 4(a): altitude variation over
// 30 days after the −112 nT event. Paper: median up to ~5 km within 10-15
// days; 95th-ptile ~10 km persisting.
func BenchmarkFig04aStormWindow(b *testing.B) {
	b.ReportAllocs()
	_, _, data := paperFixture(b)
	b.ResetTimer()
	var peakMedian, peakP95 float64
	var affected int
	for i := 0; i < b.N; i++ {
		wa, err := data.Window(context.Background(), spaceweather.Fig4Storm, core.WindowOptions{Days: 30, RequireHumpShape: true, MinPeakKm: 1})
		if err != nil {
			b.Fatal(err)
		}
		affected = len(wa.Curves)
		peakMedian, peakP95 = 0, 0
		for d := 0; d < wa.Days; d++ {
			if !math.IsNaN(wa.MedianKm[d]) && wa.MedianKm[d] > peakMedian {
				peakMedian = wa.MedianKm[d]
			}
			if !math.IsNaN(wa.P95Km[d]) && wa.P95Km[d] > peakP95 {
				peakP95 = wa.P95Km[d]
			}
		}
	}
	b.ReportMetric(float64(affected), "affected-sats")
	b.ReportMetric(peakMedian, "peak-median-km")
	b.ReportMetric(peakP95, "peak-p95-km")
}

// BenchmarkFig04bQuietWindow regenerates Fig 4(b): the quiet-epoch control.
// Paper: no noticeable shift over the 15-day window.
func BenchmarkFig04bQuietWindow(b *testing.B) {
	b.ReportAllocs()
	_, _, data := paperFixture(b)
	b.ResetTimer()
	var peakMedian float64
	for i := 0; i < b.N; i++ {
		quiet, err := data.QuietEpochs(80, 15, 1, 24*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		wa, err := data.Window(context.Background(), quiet[0], core.WindowOptions{Days: 15})
		if err != nil {
			b.Fatal(err)
		}
		peakMedian = 0
		for d := 0; d < wa.Days; d++ {
			if !math.IsNaN(wa.MedianKm[d]) && wa.MedianKm[d] > peakMedian {
				peakMedian = wa.MedianKm[d]
			}
		}
	}
	b.ReportMetric(peakMedian, "peak-median-km")
}

// BenchmarkFig05aCDFQuiet regenerates Fig 5(a): the altitude-change CDF under
// quiet conditions. Paper: below 10 km essentially always.
func BenchmarkFig05aCDFQuiet(b *testing.B) {
	b.ReportAllocs()
	_, _, data := paperFixture(b)
	b.ResetTimer()
	var tail10 float64
	for i := 0; i < b.N; i++ {
		quiet, err := data.QuietEpochs(80, 15, 20, 14*24*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		cdf, err := core.DeviationCDF(data.AssociateQuiet(context.Background(), quiet, 15))
		if err != nil {
			b.Fatal(err)
		}
		tail10 = cdf.TailFraction(10)
	}
	b.ReportMetric(tail10*100, "tail>10km-%")
}

// BenchmarkFig05bCDFStorm regenerates Fig 5(b): altitude changes after
// >95th-ptile events. Paper: at most ~1% of satellites reach tens of km, up
// to ~163 km.
func BenchmarkFig05bCDFStorm(b *testing.B) {
	b.ReportAllocs()
	_, _, data := paperFixture(b)
	b.ResetTimer()
	var tail10, maxDev float64
	for i := 0; i < b.N; i++ {
		events, err := data.EventsAbovePercentile(95, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		cdf, err := core.DeviationCDF(data.Associate(context.Background(), events, 30))
		if err != nil {
			b.Fatal(err)
		}
		tail10, maxDev = cdf.TailFraction(10), cdf.Max()
	}
	b.ReportMetric(tail10*100, "tail>10km-%")
	b.ReportMetric(maxDev, "max-km")
}

// BenchmarkFig05cDragChange regenerates Fig 5(c): the drag-change
// distribution after >95th-ptile events.
func BenchmarkFig05cDragChange(b *testing.B) {
	b.ReportAllocs()
	_, _, data := paperFixture(b)
	b.ResetTimer()
	var p95 float64
	for i := 0; i < b.N; i++ {
		events, err := data.EventsAbovePercentile(95, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		cdf, err := core.DragChangeCDF(data.Associate(context.Background(), events, 30))
		if err != nil {
			b.Fatal(err)
		}
		p95 = cdf.Quantile(0.95)
	}
	b.ReportMetric(p95*1e4, "p95-dBstar-1e-4/ER")
}

// BenchmarkFig06DurationSplit regenerates Fig 6(a)/(b): >99th-ptile storms
// split at the 9-hour median duration. Paper: the longer storms' tail is
// significantly longer and denser.
func BenchmarkFig06DurationSplit(b *testing.B) {
	b.ReportAllocs()
	_, _, data := paperFixture(b)
	b.ResetTimer()
	var shortTail, longTail float64
	for i := 0; i < b.N; i++ {
		short, err := data.EventsAbovePercentile(99, 1, 8)
		if err != nil {
			b.Fatal(err)
		}
		long, err := data.EventsAbovePercentile(99, 9, 0)
		if err != nil {
			b.Fatal(err)
		}
		shortCDF, err := core.DeviationCDF(data.Associate(context.Background(), short, 30))
		if err != nil {
			b.Fatal(err)
		}
		longCDF, err := core.DeviationCDF(data.Associate(context.Background(), long, 30))
		if err != nil {
			b.Fatal(err)
		}
		shortTail, longTail = shortCDF.TailFraction(5), longCDF.TailFraction(5)
	}
	b.ReportMetric(shortTail*100, "short-tail>5km-%")
	b.ReportMetric(longTail*100, "long-tail>5km-%")
}

// BenchmarkFig06cDragLongStorms regenerates Fig 6(c): drag changes for the
// >= 9 h storms.
func BenchmarkFig06cDragLongStorms(b *testing.B) {
	b.ReportAllocs()
	_, _, data := paperFixture(b)
	b.ResetTimer()
	var p95 float64
	for i := 0; i < b.N; i++ {
		long, err := data.EventsAbovePercentile(99, 9, 0)
		if err != nil {
			b.Fatal(err)
		}
		cdf, err := core.DragChangeCDF(data.Associate(context.Background(), long, 30))
		if err != nil {
			b.Fatal(err)
		}
		p95 = cdf.Quantile(0.95)
	}
	b.ReportMetric(p95*1e4, "p95-dBstar-1e-4/ER")
}

// BenchmarkFig07SuperStorm regenerates Fig 7: the May 2024 super-storm
// post-analysis over the full-scale fleet. Paper: drag up to 5×, no satellite
// loss.
func BenchmarkFig07SuperStorm(b *testing.B) {
	b.ReportAllocs()
	_, data, start := may2024Fixture(b)
	b.ResetTimer()
	var dragRatio, trackedRatio float64
	for i := 0; i < b.N; i++ {
		rep, err := data.SuperStorm(start.Add(3*24*time.Hour), start.Add(30*24*time.Hour))
		if err != nil {
			b.Fatal(err)
		}
		dragRatio, trackedRatio = rep.PeakDragRatio, rep.MinTrackedRatio
	}
	b.ReportMetric(dragRatio, "peak-drag-x")
	b.ReportMetric(trackedRatio, "tracked-min/max")
}

// BenchmarkFig08FiftyYears regenerates Fig 8: the ~50-year Dst history.
// Paper: eight named storms, the deepest −589 nT in March 1989.
func BenchmarkFig08FiftyYears(b *testing.B) {
	b.ReportAllocs()
	var min units.NanoTesla
	for i := 0; i < b.N; i++ {
		x, err := spaceweather.Generate(spaceweather.FiftyYears())
		if err != nil {
			b.Fatal(err)
		}
		min, _ = x.Min()
	}
	b.ReportMetric(float64(min), "deepest-nT")
}

// BenchmarkFig09OrbitalElements regenerates Fig 9: the orbital-element time
// series of the L1 cohort. Paper: staging ~360 km, raise to 550 km / 53°,
// eccentricity ≈ 0, westward RAAN drift.
func BenchmarkFig09OrbitalElements(b *testing.B) {
	b.ReportAllocs()
	_, fleet, _ := paperFixture(b)
	cohort := make(map[int32]bool)
	for c := 44713; c < 44713+43; c++ {
		cohort[int32(c)] = true
	}
	b.ResetTimer()
	var firstAlt, lastAlt float64
	for i := 0; i < b.N; i++ {
		firstAlt, lastAlt = 0, 0
		for _, s := range fleet.Samples {
			if !cohort[s.Catalog] {
				continue
			}
			if firstAlt == 0 {
				firstAlt = float64(s.AltKm)
			}
			lastAlt = float64(s.AltKm)
		}
	}
	b.ReportMetric(firstAlt, "staging-km")
	b.ReportMetric(lastAlt, "final-km")
}

// BenchmarkFig10aRawAltitudeCDF regenerates Fig 10(a): the raw altitude CDF
// with its tracking-error tail toward 40,000 km.
func BenchmarkFig10aRawAltitudeCDF(b *testing.B) {
	b.ReportAllocs()
	_, _, data := paperFixture(b)
	b.ResetTimer()
	var max, tail float64
	for i := 0; i < b.N; i++ {
		cdf, err := data.RawAltitudeCDF()
		if err != nil {
			b.Fatal(err)
		}
		max, tail = cdf.Max(), cdf.TailFraction(650)
	}
	b.ReportMetric(max, "max-km")
	b.ReportMetric(tail*1e4, "tail>650km-1e-4")
}

// BenchmarkFig10bCleanAltitudeCDF regenerates Fig 10(b): the cleaned CDF —
// mass at the 550 km shell, deorbiting tail below 500 km.
func BenchmarkFig10bCleanAltitudeCDF(b *testing.B) {
	b.ReportAllocs()
	_, _, data := paperFixture(b)
	b.ResetTimer()
	var at550, below500 float64
	for i := 0; i < b.N; i++ {
		cdf, err := data.CleanAltitudeCDF()
		if err != nil {
			b.Fatal(err)
		}
		at550 = cdf.At(575) - cdf.At(525)
		below500 = cdf.At(500)
	}
	b.ReportMetric(at550*100, "mass-525-575km-%")
	b.ReportMetric(below500*100, "deorbiting<500km-%")
}
