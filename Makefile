GO ?= go

.PHONY: build test test-short race vet lint cover fuzz verify verify-short golden bench bench-baseline

build:
	$(GO) build ./...

# cosmiclint enforces the pipeline's determinism and hygiene invariants
# (no wall-clock/global-RNG reads, no naked goroutines, no map-order
# leaks, no discarded Close errors). See DESIGN.md "Determinism
# invariants".
lint:
	$(GO) run ./cmd/cosmiclint ./...

# Coverage floors: internal/lint >= 85%, internal/artifact >= 80%,
# module total >= 70%.
cover:
	./scripts/cover.sh

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Scaling-curve benchmarks for the worker-pool fan-outs (sim, build,
# associate). -cpu sweeps GOMAXPROCS, which the Parallelism=0 default follows.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFleetSim|BenchmarkDatasetBuild|BenchmarkAssociate' -cpu 1,2,4 -benchtime 2x .

# Pin the performance baseline: the four fan-out benchmarks with -benchmem
# plus a cold-versus-warm cmd/figures render, written to BENCH_PR4.json.
bench-baseline:
	./scripts/bench.sh

# Refresh the pinned figure renderings after an intentional output change.
golden:
	$(GO) test ./cmd/figures -run Golden -update

fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=10s ./internal/tle
	$(GO) test -run='^$$' -fuzz='^FuzzReader$$' -fuzztime=10s ./internal/tle
	$(GO) test -run='^$$' -fuzz='^FuzzRoundTrip$$' -fuzztime=10s ./internal/tle
	$(GO) test -run='^$$' -fuzz='^FuzzParseRecord$$' -fuzztime=10s ./internal/dst
	$(GO) test -run='^$$' -fuzz='^FuzzIndexRoundTrip$$' -fuzztime=10s ./internal/wdc

# The full verification gate: vet + build + race-tested suite + fuzz seeds.
verify:
	./verify.sh

verify-short:
	./verify.sh -short
