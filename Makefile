GO ?= go

.PHONY: build test test-short race vet lint lint-fix cover fuzz verify verify-short golden bench bench-baseline bench-diff obs-overhead loadtest slo-report scale-sweep

build:
	$(GO) build ./...

# cosmiclint enforces the pipeline's determinism and hygiene invariants
# (no wall-clock/global-RNG reads, no naked goroutines, no map-order
# leaks, no discarded Close errors). See DESIGN.md "Determinism
# invariants".
lint:
	$(GO) run ./cmd/cosmiclint ./...

# Apply cosmiclint's deterministic rewrites in place, then fail if any
# file changed: committed code must never need the fixer. Detects the
# fixer's own "fixed <file>" reports rather than git status, so unrelated
# uncommitted work doesn't trip it; unfixable findings fail the lint run
# itself.
lint-fix:
	@out="$$($(GO) run ./cmd/cosmiclint -fix ./... 2>&1)"; status=$$?; \
	printf '%s\n' "$$out"; \
	if printf '%s\n' "$$out" | grep -q '^cosmiclint: fixed '; then \
		echo "lint-fix: fixer rewrote files; review and commit them"; exit 1; \
	fi; \
	exit $$status

# Coverage floors: internal/lint >= 85%, internal/artifact >= 80%,
# internal/obs >= 88%, internal/spacetrack >= 80%, internal/loadsim >= 80%,
# internal/constellation >= 80%, internal/core >= 80%,
# internal/incremental >= 80%, module total >= 70%.
cover:
	./scripts/cover.sh

# The serving-plane load baseline: the deterministic closed-loop harness
# against the storm-spike scenario (see EXPERIMENTS.md "Serving under load").
loadtest:
	$(GO) run ./cmd/spaceload -seed 42 -duration 10m -days 10

# The same baseline run rendered as the SLO burn-rate verdict table: one
# row per endpoint (ops, errors, burn rate, p50/p99 vs target, pass/fail)
# plus the flight-recorder reject summary and an overall verdict.
slo-report:
	$(GO) run ./cmd/spaceload -seed 42 -duration 10m -days 10 -slo-report

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Scaling-curve benchmarks for the worker-pool fan-outs (sim, build,
# associate). -cpu sweeps GOMAXPROCS, which the Parallelism=0 default follows.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFleetSim|BenchmarkDatasetBuild|BenchmarkAssociate' -cpu 1,2,4 -benchtime 2x .

# Pin the performance baseline: the fan-out benchmarks plus the
# incremental-engine pair with -benchmem, a cold-versus-warm cmd/figures
# render, and the 6k/30k/100k mega-constellation scale sweep, written to
# BENCH_PR9.json.
bench-baseline:
	./scripts/bench.sh

# The mega-constellation scale sweep on its own: stream 6k, 30k, and 100k
# satellites through the chunked pipeline and print wall time, sats/sec,
# and peak RSS for each — the flat-memory claim, measured.
scale-sweep:
	@$(GO) build -o /tmp/cosmicdance-sweep ./cmd/cosmicdance; \
	for sats in 6000 30000 100000; do \
		start=$$(date +%s.%N); \
		rss=$$(/tmp/cosmicdance-sweep scale -sats $$sats -days 2 -seed 42 2>&1 >/dev/null | awk '$$1 == "peak_rss_bytes" { print $$2 }'); \
		end=$$(date +%s.%N); \
		awk -v n=$$sats -v a=$$start -v b=$$end -v r=$$rss 'BEGIN { printf "scale-sweep: %6d sats  %6.2fs  %8.0f sats/sec  peak RSS %d bytes\n", n, b-a, n/(b-a), r }'; \
	done; \
	rm -f /tmp/cosmicdance-sweep

# Compare the current benchmarks against the pinned baseline; fails on a
# >10% regression in ns/op or allocs/op (min-of-N runs, GOMAXPROCS pinned
# to the baseline's value).
bench-diff:
	./scripts/benchdiff.sh

# Prove telemetry inertness: the instrumented hot paths may cost at most
# 2% more than a COSMICDANCE_OBS=off run.
obs-overhead:
	./scripts/obs_overhead.sh

# Refresh the pinned figure renderings after an intentional output change.
golden:
	$(GO) test ./cmd/figures -run Golden -update

fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=10s ./internal/tle
	$(GO) test -run='^$$' -fuzz='^FuzzReader$$' -fuzztime=10s ./internal/tle
	$(GO) test -run='^$$' -fuzz='^FuzzRoundTrip$$' -fuzztime=10s ./internal/tle
	$(GO) test -run='^$$' -fuzz='^FuzzParseRecord$$' -fuzztime=10s ./internal/dst
	$(GO) test -run='^$$' -fuzz='^FuzzIndexRoundTrip$$' -fuzztime=10s ./internal/wdc
	$(GO) test -run='^$$' -fuzz='^FuzzSnapshotRoundTrip$$' -fuzztime=10s ./internal/artifact
	$(GO) test -run='^$$' -fuzz='^FuzzSegmentRoundTrip$$' -fuzztime=10s ./internal/artifact

# The full verification gate: vet + build + race-tested suite + fuzz seeds.
verify:
	./verify.sh

verify-short:
	./verify.sh -short
