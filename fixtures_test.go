package cosmicdance

// Shared benchmark substrate fixtures. Every benchmark file used to grow its
// own copy of the Paper2020to2024 / May2024 construction chain; they now
// share one artifact.Pipeline, so the substrate is built at most once per
// binary (in-memory memoization) and at most once per machine (the on-disk
// content-addressed cache — a warm `go test -bench` run loads snapshots
// instead of re-simulating). The cache layer guarantees a hit is
// bit-identical to a cold build, so benchmark workloads are unaffected.
//
// The helpers are exported so the external cosmicdance_test package
// (parallel_bench_test.go) shares them too; they exist only in the test
// binary.

import (
	"context"
	"sync"
	"testing"
	"time"

	"cosmicdance/internal/artifact"
	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
	"cosmicdance/internal/dst"
	"cosmicdance/internal/spaceweather"
)

var benchPipe struct {
	once sync.Once
	p    *artifact.Pipeline
}

// benchPipeline returns the binary-wide pipeline, disk-cached under the
// default artifact cache dir ($COSMICDANCE_CACHE_DIR overrides).
func benchPipeline() *artifact.Pipeline {
	benchPipe.once.Do(func() {
		cache, err := artifact.Open(artifact.DefaultDir())
		if err != nil {
			cache = nil // memory-only; benchmarks still share one build
		}
		benchPipe.p = artifact.NewPipeline(cache)
	})
	return benchPipe.p
}

// PaperFixture returns the paper-window substrate (4.5 years, ~2,000
// satellites, seed 42): weather, simulated fleet, and built dataset.
func PaperFixture(tb testing.TB) (*dst.Index, *constellation.Result, *core.Dataset) {
	tb.Helper()
	pipe := benchPipeline()
	weatherCfg := spaceweather.Paper2020to2024()
	weather, err := pipe.Weather(context.Background(), weatherCfg)
	if err != nil {
		tb.Fatal(err)
	}
	fleetCfg := constellation.PaperFleet(42)
	fleet, err := pipe.Fleet(context.Background(), weatherCfg, fleetCfg)
	if err != nil {
		tb.Fatal(err)
	}
	data, err := pipe.Dataset(context.Background(), weatherCfg, fleetCfg, core.DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	return weather, fleet, data
}

// May2024Fixture returns the May 2024 super-storm substrate (full-scale
// fleet, one month, seed 7): weather, built dataset, and the run start.
func May2024Fixture(tb testing.TB) (*dst.Index, *core.Dataset, time.Time) {
	tb.Helper()
	pipe := benchPipeline()
	weatherCfg := spaceweather.May2024()
	weather, err := pipe.Weather(context.Background(), weatherCfg)
	if err != nil {
		tb.Fatal(err)
	}
	fleetCfg := constellation.May2024Fleet(7)
	data, err := pipe.Dataset(context.Background(), weatherCfg, fleetCfg, core.DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	// The run's epoch origin, exactly as constellation.Run derives it.
	return weather, data, fleetCfg.Start.UTC().Truncate(time.Hour)
}

// BenchPaperWeather returns just the paper-window Dst series.
func BenchPaperWeather(tb testing.TB) *dst.Index {
	tb.Helper()
	weather, err := benchPipeline().Weather(context.Background(), spaceweather.Paper2020to2024())
	if err != nil {
		tb.Fatal(err)
	}
	return weather
}

// ResearchFleetConfig is the scaling-benchmark workload: a one-year research
// fleet over the given weather, with the worker-pool width following
// GOMAXPROCS so `go test -cpu 1,2,4 -bench .` sweeps the scaling curve.
func ResearchFleetConfig(weather *dst.Index, seed int64) constellation.Config {
	start := weather.Start()
	cfg := constellation.ResearchFleet(seed, start, start.AddDate(1, 0, 0), 10)
	cfg.Parallelism = 0
	return cfg
}

// paperFixture and may2024Fixture are the package-internal spellings used by
// the Fig and ablation benchmarks.
func paperFixture(b *testing.B) (*dst.Index, *constellation.Result, *core.Dataset) {
	b.Helper()
	return PaperFixture(b)
}

func may2024Fixture(b *testing.B) (*dst.Index, *core.Dataset, time.Time) {
	b.Helper()
	return May2024Fixture(b)
}
