package core

import (
	"context"
	"math"
	"testing"
	"time"

	"cosmicdance/internal/dst"
)

func TestManeuversDetectsBoosts(t *testing.T) {
	b := NewBuilder(DefaultConfig(), quietWeather(60))
	// A satellite that sinks slowly and boosts 2 km every 10 days.
	at := c0
	alt := 550.0
	for day := 0; day < 60; day++ {
		alt -= 0.2
		if day%10 == 9 {
			alt += 2
		}
		addObs(b, 1, at, alt, 4e-4)
		at = at.Add(24 * time.Hour)
	}
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	boosts := d.Maneuvers(1.5, 48*time.Hour)
	if len(boosts) < 4 || len(boosts) > 7 {
		t.Fatalf("boosts = %d, want ~6", len(boosts))
	}
	for _, m := range boosts {
		if m.Catalog != 1 || m.DeltaKm < 1.5 {
			t.Errorf("boost = %+v", m)
		}
	}
	// A tighter threshold finds nothing.
	if got := d.Maneuvers(5, 48*time.Hour); len(got) != 0 {
		t.Errorf("5 km threshold matched %d", len(got))
	}
	// Rate: ~3 boosts per 30 days.
	rate := d.ManeuverRate(1.5, 48*time.Hour)
	if rate < 2 || rate > 4 {
		t.Errorf("maneuver rate = %v per sat per 30 d, want ~3", rate)
	}
}

func TestManeuversRespectsMaxGap(t *testing.T) {
	b := NewBuilder(DefaultConfig(), quietWeather(60))
	// Two observations 10 days apart with a 3 km rise: too stale to call a
	// single maneuver.
	steadyTrack(b, 1, c0, 20, 550)
	addObs(b, 1, c0.Add(30*24*time.Hour), 553, 4e-4)
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Maneuvers(1.5, 48*time.Hour); len(got) != 0 {
		t.Errorf("stale-gap rise detected as maneuver: %+v", got)
	}
}

func TestIntensityResponseCorrelation(t *testing.T) {
	// Three storms of increasing depth; one satellite responds
	// proportionally to each.
	days := 200
	vals := make([]float64, days*24)
	for i := range vals {
		vals[i] = -10
	}
	stormDays := []int{40, 100, 160}
	depths := []float64{-60, -120, -240}
	for k, sd := range stormDays {
		for h := 0; h < 6; h++ {
			vals[sd*24+h] = depths[k]
		}
	}
	weather := dst.FromValues(c0, vals)
	b := NewBuilder(DefaultConfig(), weather)
	steadyTrack(b, 1, c0, days, 550) // control
	// The responder dips proportionally to |depth| after each storm and
	// recovers before the next.
	at := c0
	alt := 550.0
	for day := 0; day < days; day++ {
		dip := 0.0
		for k, sd := range stormDays {
			if day > sd && day <= sd+10 {
				dip = -depths[k] / 20 * float64(day-sd) / 10
			}
			if day > sd+10 && day <= sd+20 {
				dip = -depths[k] / 20 * float64(sd+20-day) / 10
			}
		}
		addObs(b, 2, at, alt-dip, 4e-4)
		at = at.Add(24 * time.Hour)
	}
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	events := d.Events(-50, 1, 0)
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	intensity, response, r, err := d.IntensityResponse(context.Background(), events, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(intensity) != 3 || len(response) != 3 {
		t.Fatalf("pairs = %d/%d", len(intensity), len(response))
	}
	if r < 0.9 {
		t.Errorf("correlation = %v, want strongly positive", r)
	}
	if math.IsNaN(r) {
		t.Error("NaN correlation")
	}
}

func TestIntensityResponseErrors(t *testing.T) {
	d, _ := buildStormDataset(t)
	if _, _, _, err := d.IntensityResponse(context.Background(), nil, 30); err == nil {
		t.Error("no events accepted")
	}
	if _, _, _, err := d.IntensityResponse(context.Background(), d.Events(-50, 1, 0), 30); err == nil {
		t.Error("single event accepted")
	}
}
