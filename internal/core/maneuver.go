package core

import (
	"context"
	"fmt"
	"time"

	"cosmicdance/internal/stats"
)

// Maneuver is a detected altitude-raising event: a station-keeping boost or
// a collision-avoidance burn. The paper's Limitations section notes that
// trajectory changes "may also change to avoid collisions in space" — this
// detector surfaces those candidate confounders so an analyst can inspect
// how many potential false positives a happens-closely-after window holds.
type Maneuver struct {
	Catalog int
	At      time.Time // epoch of the observation that revealed the raise
	DeltaKm float64   // altitude gained since the previous observation
}

// Maneuvers scans every track for altitude increases of at least minDeltaKm
// between consecutive observations no further than maxGap apart. Small
// values of minDeltaKm pick up routine station-keeping cycles; larger ones
// isolate avoidance-scale burns.
func (d *Dataset) Maneuvers(minDeltaKm float64, maxGap time.Duration) []Maneuver {
	var out []Maneuver
	for _, tr := range d.tracks {
		for i := 1; i < len(tr.Points); i++ {
			prev, cur := tr.Points[i-1], tr.Points[i]
			if time.Duration(cur.Epoch-prev.Epoch)*time.Second > maxGap {
				continue
			}
			delta := float64(cur.AltKm) - float64(prev.AltKm)
			if delta >= minDeltaKm {
				out = append(out, Maneuver{Catalog: tr.Catalog, At: cur.Time(), DeltaKm: delta})
			}
		}
	}
	return out
}

// ManeuverRate returns maneuvers per satellite per 30 days — the "frequent
// orbit corrections" context of the paper's §2.
func (d *Dataset) ManeuverRate(minDeltaKm float64, maxGap time.Duration) float64 {
	if len(d.tracks) == 0 {
		return 0
	}
	events := d.Maneuvers(minDeltaKm, maxGap)
	var satDays float64
	for _, tr := range d.tracks {
		first, last, ok := tr.Span()
		if !ok {
			continue
		}
		satDays += last.Sub(first).Hours() / 24
	}
	if satDays == 0 {
		return 0
	}
	return float64(len(events)) / satDays * 30
}

// IntensityResponse computes, for each event, the fleet's response (the
// 95th percentile of its per-satellite deviations) against the event's peak
// intensity, and the Pearson correlation between the two — a single-number
// summary of Fig 5's "deeper storms move satellites more".
func (d *Dataset) IntensityResponse(ctx context.Context, events []Event, windowDays int) (intensity, response []float64, r float64, err error) {
	if len(events) < 2 {
		return nil, nil, 0, fmt.Errorf("core: need at least two events for a correlation")
	}
	for _, ev := range events {
		devs := d.Associate(ctx, []Event{ev}, windowDays)
		if len(devs) == 0 {
			continue
		}
		vals := make([]float64, len(devs))
		for i, dv := range devs {
			vals[i] = dv.MaxDevKm
		}
		p95, err := stats.Percentile(vals, 95)
		if err != nil {
			continue
		}
		intensity = append(intensity, -float64(ev.Storm.Peak))
		response = append(response, p95)
	}
	if len(intensity) < 2 {
		return nil, nil, 0, fmt.Errorf("core: fewer than two events had associated satellites")
	}
	r, err = stats.Correlation(intensity, response)
	if err != nil {
		return intensity, response, 0, err
	}
	return intensity, response, r, nil
}
