package core

import (
	"time"
)

// DecayOnset is the detected start of a satellite's permanent orbital decay.
type DecayOnset struct {
	Catalog int
	// At is the last observation at which the satellite was still on
	// station; the decline begins immediately after.
	At time.Time
	// RateKmPerDay is the mean descent rate over the observed decline.
	RateKmPerDay float64
	// DropKm is the total observed altitude loss.
	DropKm float64
}

// DecayOnsets scans every track for a permanent decay: a terminal decline
// that reaches at least minDropKm below the operational altitude and never
// recovers to within the decay-filter band again. Safe-mode excursions that
// re-boost are thereby excluded — only the paper's "permanent orbital decay"
// cases remain. The detection is fully automatic (no scripted knowledge),
// which is what lets the attribution below argue causality statistically.
func (d *Dataset) DecayOnsets(minDropKm float64) []DecayOnset {
	var out []DecayOnset
	for _, tr := range d.tracks {
		if on, ok := TrackDecayOnset(tr, d.cfg.DecayFilterKm, minDropKm); ok {
			out = append(out, on)
		}
	}
	return out
}

// TrackDecayOnset runs the decay-onset detection on a single track — onset
// detection is purely per-track, which is what lets the chunked streaming
// pipeline detect onsets chunk by chunk without a materialized Dataset.
func TrackDecayOnset(tr *Track, decayFilterKm, minDropKm float64) (DecayOnset, bool) {
	onStation := tr.OperationalAltKm - decayFilterKm
	// Find the last point still on station.
	last := -1
	for i, p := range tr.Points {
		if float64(p.AltKm) >= onStation {
			last = i
		}
	}
	if last < 0 || last == len(tr.Points)-1 {
		return DecayOnset{}, false // never on station, or never left it
	}
	tail := tr.Points[last:]
	final := tail[len(tail)-1]
	drop := tr.OperationalAltKm - float64(final.AltKm)
	if drop < minDropKm {
		return DecayOnset{}, false // station-keeping scale wobble, not a decay
	}
	days := float64(final.Epoch-tail[0].Epoch) / 86400
	if days <= 0 {
		return DecayOnset{}, false
	}
	return DecayOnset{
		Catalog:      tr.Catalog,
		At:           tail[0].Time(),
		RateKmPerDay: drop / days,
		DropKm:       drop,
	}, true
}

// Attribution quantifies the happens-closely-after relationship between
// storms and decay onsets: how many onsets fall inside post-event windows
// versus how many would land there by chance if onsets were uniform in time.
type Attribution struct {
	Onsets       int
	CloselyAfter int
	// Coverage is the fraction of the observation span inside any
	// post-event window.
	Coverage float64
	// Lift is (CloselyAfter/Onsets) / Coverage: 1.0 means no association,
	// larger means decay onsets concentrate after storms. This is the
	// statistical form of the paper's circumstantial-evidence argument.
	Lift float64
}

// AttributeDecayOnsets computes the attribution of decay onsets to the given
// events over the weather span.
func (d *Dataset) AttributeDecayOnsets(events []Event, window time.Duration, minDropKm float64) Attribution {
	onsets := d.DecayOnsets(minDropKm)
	att := Attribution{Onsets: len(onsets)}
	if len(onsets) == 0 || len(events) == 0 {
		return att
	}

	// Merge the post-event windows into disjoint intervals.
	type interval struct{ from, to time.Time }
	var intervals []interval
	for _, ev := range events {
		from := ev.Epoch()
		to := from.Add(window)
		if n := len(intervals); n > 0 && !from.After(intervals[n-1].to) {
			if to.After(intervals[n-1].to) {
				intervals[n-1].to = to
			}
			continue
		}
		intervals = append(intervals, interval{from, to})
	}

	// Coverage over the weather span.
	span := d.weather.End().Sub(d.weather.Start())
	var covered time.Duration
	for _, iv := range intervals {
		from, to := iv.from, iv.to
		if from.Before(d.weather.Start()) {
			from = d.weather.Start()
		}
		if to.After(d.weather.End()) {
			to = d.weather.End()
		}
		if to.After(from) {
			covered += to.Sub(from)
		}
	}
	if span > 0 {
		att.Coverage = float64(covered) / float64(span)
	}

	for _, on := range onsets {
		for _, iv := range intervals {
			if !on.At.Before(iv.from) && !on.At.After(iv.to) {
				att.CloselyAfter++
				break
			}
		}
	}
	if att.Coverage > 0 && att.Onsets > 0 {
		att.Lift = (float64(att.CloselyAfter) / float64(att.Onsets)) / att.Coverage
	}
	return att
}
