package core

import (
	"context"
	"fmt"
	"math"
	"slices"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/dst"
)

// Chunked dataset builds: a fleet too large to clean in one pass is built as
// a sequence of ChunkPartials — one per satellite chunk, each covering a
// contiguous catalog range — and folded back together by a PartialAssembler.
// Build itself is one partial fed through the same assembler, so the chunked
// and monolithic paths share every line of cleaning logic and produce
// identical datasets by construction. Partials are self-contained value
// bags (no weather, no config) precisely so they can be spilled to disk via
// the artifact segment codec and re-read later.

// ChunkPartial is one chunk's share of a dataset build: the cleaned tracks
// for its catalog range plus the cleaning-funnel bookkeeping. CleanAlts are
// not carried — they are exactly the surviving track points' altitudes in
// track order, and the assembler rederives them.
type ChunkPartial struct {
	// Tracks are the chunk's cleaned tracks, catalog-ascending.
	Tracks []*Track
	// RawAlts are every ingested altitude (gross errors included) in
	// canonical total order (see canonicalizeRawAlts).
	RawAlts []float64
	// Stats is the chunk's share of the cleaning funnel.
	Stats CleaningStats
}

// BuildChunkPartial cleans one chunk's samples into a spillable partial.
// The samples must cover a contiguous catalog range so partials can later be
// assembled in catalog order.
func BuildChunkPartial(ctx context.Context, cfg Config, samples []constellation.Sample) (*ChunkPartial, error) {
	b := Builder{cfg: cfg}
	b.AddSamples(samples)
	return buildPartial(ctx, cfg, b.obs)
}

// canonicalizeRawAlts sorts raw altitudes into the canonical dataset order:
// ascending by the IEEE-754 total order (sign-magnitude bit key), which is a
// total order even in the presence of NaNs and signed zeros. Ingest order is
// a chunking artifact — two decompositions of the same archive ingest the
// same multiset of altitudes in different orders — so the dataset stores the
// order-free canonical form and stays byte-identical across decompositions.
// Every consumer (the Fig 10 CDFs) sorts numerically anyway.
//
// The sort runs over the uint64 order keys, not over the floats with a
// comparator: f64OrderKey is a bijection, so sorting the keys and mapping
// back yields the same permutation as a comparator sort at a fraction of the
// cost (the comparator closure on a multi-million-row archive dominated the
// whole dataset build). Archive-sized key slices go through an LSD radix
// sort — O(n) passes over flat uint64s, no comparisons at all — which is
// what keeps the canonical form affordable on the cold build path. The
// already-canonical fast path makes re-canonicalizing a single sorted
// partial — the monolithic Build, which feeds one pre-sorted partial through
// the assembler — O(n) instead of a second full sort.
func canonicalizeRawAlts(alts []float64) {
	if rawAltsCanonical(alts) {
		return
	}
	keys := make([]uint64, len(alts))
	for i, v := range alts {
		keys[i] = f64OrderKey(v)
	}
	radixSortKeys(keys)
	for i, k := range keys {
		alts[i] = f64FromOrderKey(k)
	}
}

// radixSortKeys sorts uint64 keys ascending with an LSD radix sort: eight
// byte-wide counting passes, each a linear scan. Fully deterministic (no
// pivots, no sampling) and roughly 4x faster than the comparison sort on
// archive-sized inputs. Passes where every key shares the byte — common for
// altitude keys, whose high bytes span a narrow range — are skipped, so the
// typical input pays 3–4 passes, not 8. Small inputs fall back to
// slices.Sort, which beats the counting setup below ~2k elements.
func radixSortKeys(keys []uint64) {
	if len(keys) < 2048 {
		slices.Sort(keys)
		return
	}
	buf := make([]uint64, len(keys))
	src, dst := keys, buf
	for shift := uint(0); shift < 64; shift += 8 {
		var counts [256]int
		for _, k := range src {
			counts[byte(k>>shift)]++
		}
		if counts[byte(src[0]>>shift)] == len(src) {
			continue // every key shares this byte; the pass is a no-op
		}
		sum := 0
		for i, c := range counts {
			counts[i] = sum
			sum += c
		}
		for _, k := range src {
			b := byte(k >> shift)
			dst[counts[b]] = k
			counts[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// f64OrderKey maps a float64 to a uint64 whose unsigned order is the IEEE
// total order: negative values (sign bit set) flip entirely, non-negative
// values set the top bit.
func f64OrderKey(v float64) uint64 {
	b := math.Float64bits(v)
	if b>>63 == 1 {
		return ^b
	}
	return b | 1<<63
}

// f64FromOrderKey inverts f64OrderKey.
func f64FromOrderKey(k uint64) float64 {
	if k>>63 == 1 {
		return math.Float64frombits(k &^ (1 << 63))
	}
	return math.Float64frombits(^k)
}

// rawAltsCanonical reports whether alts is in canonical order — the segment
// decoder's cheap structural check that guarantees canonical re-encode.
func rawAltsCanonical(alts []float64) bool {
	for i := 1; i < len(alts); i++ {
		if f64OrderKey(alts[i-1]) > f64OrderKey(alts[i]) {
			return false
		}
	}
	return true
}

// PartialAssembler folds ChunkPartials, added in catalog order, into one
// Dataset. It holds the already-cleaned tracks — the O(fleet) product — but
// never the raw observations, so the peak working set of a chunked build is
// O(chunk) above the final dataset size.
type PartialAssembler struct {
	cfg     Config
	weather *dst.Index
	tracks  []*Track
	rawAlts []float64
	stats   CleaningStats
	lastCat int
}

// NewPartialAssembler starts an assembly with the given parameters and solar
// activity index.
func NewPartialAssembler(cfg Config, weather *dst.Index) *PartialAssembler {
	return &PartialAssembler{cfg: cfg, weather: weather}
}

// Add folds one partial in. Partials must arrive in catalog order (chunk
// order) with disjoint catalog ranges — exactly how the chunk planner slices
// a fleet.
func (a *PartialAssembler) Add(p *ChunkPartial) error {
	if len(p.Tracks) > 0 {
		first := p.Tracks[0].Catalog
		if len(a.tracks) > 0 && first <= a.lastCat {
			return fmt.Errorf("core: partial out of order: catalog %d after %d", first, a.lastCat)
		}
		a.lastCat = p.Tracks[len(p.Tracks)-1].Catalog
	}
	a.tracks = append(a.tracks, p.Tracks...)
	a.rawAlts = append(a.rawAlts, p.RawAlts...)
	a.stats.TotalObservations += p.Stats.TotalObservations
	a.stats.GrossErrors += p.Stats.GrossErrors
	a.stats.RaisingRemoved += p.Stats.RaisingRemoved
	a.stats.NonOperational += p.Stats.NonOperational
	a.stats.Duplicates += p.Stats.Duplicates
	return nil
}

// Finish validates and seals the assembly into a Dataset. The result is
// identical to Build over the concatenated observations.
func (a *PartialAssembler) Finish() (*Dataset, error) {
	if a.weather == nil || a.weather.Len() == 0 {
		return nil, fmt.Errorf("core: no solar activity data")
	}
	if a.stats.TotalObservations == 0 {
		return nil, fmt.Errorf("core: no trajectory observations")
	}
	if len(a.tracks) == 0 {
		return nil, fmt.Errorf("core: no operational tracks survived cleaning")
	}
	// Per-partial RawAlts are canonical; the concatenation of sorted runs
	// needs one more pass to be globally canonical.
	canonicalizeRawAlts(a.rawAlts)

	d := &Dataset{
		cfg:     a.cfg,
		weather: a.weather,
		tracks:  a.tracks,
		byCat:   make(map[int]*Track, len(a.tracks)),
		rawAlts: a.rawAlts,
		stats:   a.stats,
	}
	nClean := 0
	for _, tr := range a.tracks {
		nClean += len(tr.Points)
	}
	d.cleanAlts = make([]float64, 0, nClean)
	for _, tr := range a.tracks {
		d.byCat[tr.Catalog] = tr
		for _, p := range tr.Points {
			d.cleanAlts = append(d.cleanAlts, float64(p.AltKm))
		}
	}
	metricBuilds.Inc()
	metricObservations.Add(int64(d.stats.TotalObservations))
	metricGrossErrors.Add(int64(d.stats.GrossErrors))
	metricDuplicates.Add(int64(d.stats.Duplicates))
	metricRaising.Add(int64(d.stats.RaisingRemoved))
	metricNonOp.Add(int64(d.stats.NonOperational))
	metricTracks.Add(int64(len(d.tracks)))
	return d, nil
}
