package core

import (
	"context"
	"math"
	"slices"
	"testing"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/dst"
)

// diffDatasetState fails the test unless a and b are identical in every
// exported field.
func diffDatasetState(t *testing.T, label string, a, b *Dataset) {
	t.Helper()
	sa, sb := a.State(), b.State()
	if sa.Stats != sb.Stats {
		t.Fatalf("%s: stats differ: %+v vs %+v", label, sa.Stats, sb.Stats)
	}
	if len(sa.Tracks) != len(sb.Tracks) {
		t.Fatalf("%s: track counts differ: %d vs %d", label, len(sa.Tracks), len(sb.Tracks))
	}
	for i := range sa.Tracks {
		ta, tb := sa.Tracks[i], sb.Tracks[i]
		if ta.Catalog != tb.Catalog || ta.OperationalAltKm != tb.OperationalAltKm || ta.RaisingRemoved != tb.RaisingRemoved {
			t.Fatalf("%s: track %d header differs: %+v vs %+v", label, i,
				[3]any{ta.Catalog, ta.OperationalAltKm, ta.RaisingRemoved},
				[3]any{tb.Catalog, tb.OperationalAltKm, tb.RaisingRemoved})
		}
		if len(ta.Points) != len(tb.Points) {
			t.Fatalf("%s: track %d point counts differ: %d vs %d", label, i, len(ta.Points), len(tb.Points))
		}
		for j := range ta.Points {
			if ta.Points[j] != tb.Points[j] {
				t.Fatalf("%s: track %d point %d differs: %+v vs %+v", label, i, j, ta.Points[j], tb.Points[j])
			}
		}
	}
	diffF64s(t, label+": rawAlts", sa.RawAlts, sb.RawAlts)
	diffF64s(t, label+": cleanAlts", sa.CleanAlts, sb.CleanAlts)
}

func diffF64s(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: lengths differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: value %d differs: %v vs %v", label, i, a[i], b[i])
		}
	}
}

// TestChunkedBuildEquivalence proves the partial path is the monolithic
// path: simulate a fleet, build once from the full archive, build again from
// per-chunk partials, and require identical datasets at several chunk sizes.
func TestChunkedBuildEquivalence(t *testing.T) {
	start := c0
	cfg := constellation.MegaFleet(7, 260, start, 12)
	cfg.Scripted = []constellation.ScriptedEvent{
		{Catalog: 44720, At: start.Add(80 * time.Hour), Action: constellation.ScriptFail, DragFactor: 1.3},
	}
	weather := quietWeather(12)
	coreCfg := DefaultConfig()
	coreCfg.MaxValidAltKm = 1400 // keep the 1200 km OneWeb shell

	full, err := constellation.Run(context.Background(), cfg, weather)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(coreCfg, weather)
	b.AddSamples(full.Samples)
	want, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	for _, chunkSize := range []int{32, 100, 512} {
		plan, err := constellation.PlanChunks(cfg, chunkSize)
		if err != nil {
			t.Fatal(err)
		}
		asm := NewPartialAssembler(coreCfg, weather)
		for i := 0; i < plan.NumChunks(); i++ {
			r, err := plan.RunChunk(context.Background(), i, weather)
			if err != nil {
				t.Fatal(err)
			}
			p, err := BuildChunkPartial(context.Background(), coreCfg, r.Samples)
			if err != nil {
				t.Fatal(err)
			}
			if !rawAltsCanonical(p.RawAlts) {
				t.Fatalf("chunk %d: partial rawAlts not canonical", i)
			}
			if err := asm.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		got, err := asm.Finish()
		if err != nil {
			t.Fatal(err)
		}
		diffDatasetState(t, "chunked build", want, got)
	}
}

// TestAssemblerOrderEnforced proves out-of-order partials are rejected.
func TestAssemblerOrderEnforced(t *testing.T) {
	weather := quietWeather(30)
	mk := func(cat int) *ChunkPartial {
		b := NewBuilder(DefaultConfig(), weather)
		steadyTrack(b, cat, c0, 20, 550)
		p, err := buildPartial(context.Background(), b.cfg, b.obs)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	asm := NewPartialAssembler(DefaultConfig(), weather)
	if err := asm.Add(mk(500)); err != nil {
		t.Fatal(err)
	}
	if err := asm.Add(mk(400)); err == nil {
		t.Error("out-of-order partial accepted")
	}
	if err := asm.Add(mk(500)); err == nil {
		t.Error("duplicate-catalog partial accepted")
	}
	if err := asm.Add(mk(600)); err != nil {
		t.Errorf("in-order partial rejected: %v", err)
	}
}

// TestAssemblerEmptyCases covers the validation paths Build used to own.
func TestAssemblerEmptyCases(t *testing.T) {
	if _, err := NewPartialAssembler(DefaultConfig(), nil).Finish(); err == nil {
		t.Error("nil weather accepted")
	}
	if _, err := NewPartialAssembler(DefaultConfig(), quietWeather(10)).Finish(); err == nil {
		t.Error("no observations accepted")
	}
	// Observations present but nothing survives cleaning.
	asm := NewPartialAssembler(DefaultConfig(), quietWeather(10))
	b := NewBuilder(DefaultConfig(), quietWeather(10))
	addObs(b, 900, c0, 90, 4e-4) // below MinValidAltKm: gross error
	p, err := buildPartial(context.Background(), b.cfg, b.obs)
	if err != nil {
		t.Fatal(err)
	}
	if err := asm.Add(p); err != nil {
		t.Fatal(err)
	}
	if _, err := asm.Finish(); err == nil {
		t.Error("no surviving tracks accepted")
	}
	// An empty partial folds in as a no-op.
	asm2 := NewPartialAssembler(DefaultConfig(), quietWeather(10))
	empty, err := BuildChunkPartial(context.Background(), DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := asm2.Add(empty); err != nil {
		t.Errorf("empty partial rejected: %v", err)
	}
}

// TestCanonicalRawAltsOrder pins the canonical order: IEEE total order,
// bit-exact, including the NaN/negative/zero corners.
func TestCanonicalRawAltsOrder(t *testing.T) {
	alts := []float64{550, math.NaN(), -5, 0, math.Inf(1), 120, math.Inf(-1), 40000, 550}
	canonicalizeRawAlts(alts)
	if !rawAltsCanonical(alts) {
		t.Fatalf("canonicalize did not produce canonical order: %v", alts)
	}
	for i := 1; i < len(alts); i++ {
		a, b := alts[i-1], alts[i]
		if !math.IsNaN(a) && !math.IsNaN(b) && a > b {
			t.Fatalf("numeric order broken at %d: %v > %v", i, a, b)
		}
	}
	if !rawAltsCanonical(nil) || !rawAltsCanonical([]float64{1}) {
		t.Error("trivial slices not canonical")
	}
	if rawAltsCanonical([]float64{2, 1}) {
		t.Error("descending slice reported canonical")
	}
}

// TestRadixSortKeysMatchesComparisonSort drives the radix path (above the
// small-input fallback) over adversarial bit patterns — shared high bytes
// (skipped passes), full-range keys, duplicates — and requires the exact
// slices.Sort order.
func TestRadixSortKeysMatchesComparisonSort(t *testing.T) {
	const n = 5000
	keys := make([]uint64, n)
	x := uint64(0x9e3779b97f4a7c15) // deterministic xorshift stream
	for i := range keys {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		switch i % 4 {
		case 0:
			keys[i] = x
		case 1:
			keys[i] = x & 0xffff // high bytes all zero: those passes skip
		case 2:
			keys[i] = x | 0xffffffff00000000 // high bytes all ones
		default:
			keys[i] = keys[i/2] // duplicates
		}
	}
	want := append([]uint64(nil), keys...)
	slices.Sort(want)
	radixSortKeys(keys)
	if !slices.Equal(keys, want) {
		for i := range keys {
			if keys[i] != want[i] {
				t.Fatalf("radix order diverges at %d: got %#x, want %#x", i, keys[i], want[i])
			}
		}
	}
	one := []uint64{3, 1, 2}
	radixSortKeys(one) // small-input fallback
	if !slices.IsSorted(one) {
		t.Fatalf("fallback path failed: %v", one)
	}
}

// TestExportedTrackHelpersMatchDatasetMethods proves the free functions the
// streaming pipeline uses agree with the Dataset methods.
func TestExportedTrackHelpersMatchDatasetMethods(t *testing.T) {
	cfg := constellation.MegaFleet(5, 300, c0, 30)
	vals := make([]float64, cfg.Hours)
	for i := range vals {
		vals[i] = -10
	}
	// One deep storm mid-window.
	for k := 0; k < 30; k++ {
		vals[cfg.Hours/2+k] = -280 + 5*float64(k)
	}
	idx := dst.FromValues(c0, vals)
	res, err := constellation.Run(context.Background(), cfg, idx)
	if err != nil {
		t.Fatal(err)
	}
	coreCfg := DefaultConfig()
	coreCfg.MaxValidAltKm = 1400
	b := NewBuilder(coreCfg, idx)
	b.AddSamples(res.Samples)
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	evs := d.Events(-100, 2, 0)
	if free := WeatherEvents(d.Weather(), -100, 2, 0); len(free) != len(evs) {
		t.Fatalf("WeatherEvents: %d events, Dataset.Events: %d", len(free), len(evs))
	}
	pevs, err := d.EventsAbovePercentile(95, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	pfree, err := WeatherEventsAbovePercentile(d.Weather(), 95, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pevs) != len(pfree) {
		t.Fatalf("WeatherEventsAbovePercentile: %d vs %d", len(pfree), len(pevs))
	}

	onsets := d.DecayOnsets(15)
	var freeOnsets []DecayOnset
	for _, tr := range d.Tracks() {
		if on, ok := TrackDecayOnset(tr, d.Config().DecayFilterKm, 15); ok {
			freeOnsets = append(freeOnsets, on)
		}
	}
	if len(onsets) != len(freeOnsets) {
		t.Fatalf("onsets: %d vs %d", len(freeOnsets), len(onsets))
	}
	for i := range onsets {
		if onsets[i] != freeOnsets[i] {
			t.Fatalf("onset %d differs: %+v vs %+v", i, onsets[i], freeOnsets[i])
		}
	}

	if len(evs) > 0 {
		devs := d.Associate(context.Background(), evs, 30)
		var freeDevs []Deviation
		for _, ev := range evs {
			for _, tr := range d.Tracks() {
				if dv, ok := AssociateTrack(d.Config(), ev, tr, 30); ok {
					freeDevs = append(freeDevs, dv)
				}
			}
		}
		if len(devs) != len(freeDevs) {
			t.Fatalf("deviations: %d vs %d", len(freeDevs), len(devs))
		}
		for i := range devs {
			if devs[i] != freeDevs[i] {
				t.Fatalf("deviation %d differs: %+v vs %+v", i, devs[i], freeDevs[i])
			}
		}
	}
}
