package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"cosmicdance/internal/dst"
	"cosmicdance/internal/parallel"
	"cosmicdance/internal/stats"
	"cosmicdance/internal/units"
)

// Event is a solar event the pipeline associates trajectory changes with.
type Event struct {
	Storm dst.Storm
}

// Epoch is the reference instant for happens-closely-after windows: the
// storm's onset.
func (e Event) Epoch() time.Time { return e.Storm.Start }

// Events returns the storms in the dataset with peak intensity at or below
// maxPeak (i.e. |peak| >= |maxPeak|) and duration within [minHours,
// maxHours] (maxHours <= 0 means unbounded) — the event-selection knobs Figs
// 5 and 6 sweep.
func (d *Dataset) Events(maxPeak units.NanoTesla, minHours, maxHours int) []Event {
	return WeatherEvents(d.weather, maxPeak, minHours, maxHours)
}

// WeatherEvents is Events without a materialized Dataset — event selection
// depends only on the weather, which is what lets the chunked streaming
// pipeline pick its events once and analyse tracks chunk by chunk.
func WeatherEvents(weather *dst.Index, maxPeak units.NanoTesla, minHours, maxHours int) []Event {
	var out []Event
	for _, s := range weather.Storms(units.StormThreshold) {
		if s.Peak > maxPeak {
			continue
		}
		if s.Hours < minHours {
			continue
		}
		if maxHours > 0 && s.Hours > maxHours {
			continue
		}
		out = append(out, Event{Storm: s})
	}
	return out
}

// EventsAbovePercentile selects storms whose peak intensity exceeds the
// dataset's p-th intensity percentile (e.g. 95 for Fig 5b, 99 for Fig 6).
func (d *Dataset) EventsAbovePercentile(p float64, minHours, maxHours int) ([]Event, error) {
	return WeatherEventsAbovePercentile(d.weather, p, minHours, maxHours)
}

// WeatherEventsAbovePercentile is EventsAbovePercentile without a
// materialized Dataset.
func WeatherEventsAbovePercentile(weather *dst.Index, p float64, minHours, maxHours int) ([]Event, error) {
	threshold, err := weather.IntensityPercentile(p)
	if err != nil {
		return nil, err
	}
	if threshold > units.StormThreshold {
		threshold = units.StormThreshold
	}
	return WeatherEvents(weather, threshold, minHours, maxHours), nil
}

// QuietEpochs returns up to count instants, spaced at least spacing apart,
// such that no hour within the following windowDays exceeds the p-th
// intensity percentile — the "no major storm observed" control epochs of
// Fig 4(b) and Fig 5(a).
func (d *Dataset) QuietEpochs(p float64, windowDays, count int, spacing time.Duration) ([]time.Time, error) {
	threshold, err := d.weather.IntensityPercentile(p)
	if err != nil {
		return nil, err
	}
	var out []time.Time
	hourly := d.weather.Hourly()
	window := windowDays * 24
	var lastPicked time.Time
	// Precompute a running "next loud hour" scan for O(n) selection.
	loudAfter := make([]int, hourly.Len()+1)
	loudAfter[hourly.Len()] = math.MaxInt
	for i := hourly.Len() - 1; i >= 0; i-- {
		// An hour is "loud" only when strictly more intense than the
		// threshold; an hour exactly at the p-th percentile is not above it.
		if units.NanoTesla(hourly.Values()[i]) < threshold {
			loudAfter[i] = i
		} else {
			loudAfter[i] = loudAfter[i+1]
		}
	}
	for i := 0; i+window <= hourly.Len(); i++ {
		if loudAfter[i] < i+window {
			continue
		}
		t := hourly.TimeAt(i)
		if !lastPicked.IsZero() && t.Sub(lastPicked) < spacing {
			continue
		}
		out = append(out, t)
		lastPicked = t
		if count > 0 && len(out) >= count {
			break
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no quiet epochs below the %.0fth intensity percentile with a %d-day window", p, windowDays)
	}
	return out, nil
}

// SatCurve is one satellite's deviation-vs-time curve after an event.
type SatCurve struct {
	Catalog int
	// DevKm[i] is the deviation from the satellite's long-term operational
	// altitude (positive = below it) on day i after the event; NaN where no
	// observation exists.
	DevKm []float64
}

// WindowAnalysis is the Fig 4 product: per-day deviation aggregates across
// the affected satellites in the days after an event.
type WindowAnalysis struct {
	Event    time.Time
	Days     int
	Curves   []SatCurve
	MedianKm []float64 // per-day median across satellites
	P95Km    []float64 // per-day 95th percentile
	// Skipped counts satellites excluded per the paper's rules.
	SkippedDecaying int // already decaying at the event (5 km rule)
	SkippedStale    int // no fresh observation immediately before the event
	SkippedShape    int // hump-shape selection (Fig 4a) not satisfied
}

// WindowOptions tunes a window analysis.
type WindowOptions struct {
	Days int
	// RequireHumpShape applies Fig 4(a)'s selection: the median deviation
	// over the window must exceed both the deviation immediately after the
	// event and the deviation at the end of the window (this also excludes
	// satellites that decay permanently).
	RequireHumpShape bool
	// MinPeakKm, when positive, drops satellites whose largest deviation in
	// the window stays below this floor — station-keeping jitter would
	// otherwise swamp the genuinely affected population.
	MinPeakKm float64
}

// windowOutcome classifies one track's fate within a window analysis.
type windowOutcome int8

const (
	windowSelected windowOutcome = iota
	windowStale
	windowDecaying
	windowShape
)

// windowTrack evaluates one track against a window analysis — the per-track
// unit of work the Window fan-out distributes.
func (d *Dataset) windowTrack(tr *Track, event, end time.Time, opts WindowOptions) (SatCurve, windowOutcome) {
	base, ok := tr.At(event)
	if !ok || event.Sub(base.Time()) > d.cfg.BaselineStaleness {
		return SatCurve{}, windowStale
	}
	// The paper's already-decaying filter.
	if math.Abs(float64(base.AltKm)-tr.OperationalAltKm) > d.cfg.DecayFilterKm {
		return SatCurve{}, windowDecaying
	}
	pts := tr.Window(event, end)
	if len(pts) == 0 {
		return SatCurve{}, windowStale
	}
	dev := make([]float64, opts.Days)
	for i := range dev {
		dev[i] = math.NaN()
	}
	for _, p := range pts {
		day := int(p.Epoch-event.Unix()) / 86400
		if day < 0 || day >= opts.Days {
			continue
		}
		v := tr.OperationalAltKm - float64(p.AltKm)
		if math.IsNaN(dev[day]) || math.Abs(v) > math.Abs(dev[day]) {
			dev[day] = v
		}
	}
	if opts.MinPeakKm > 0 && peakAbs(dev) < opts.MinPeakKm {
		return SatCurve{}, windowShape
	}
	if opts.RequireHumpShape && !humpShaped(dev) {
		return SatCurve{}, windowShape
	}
	return SatCurve{Catalog: tr.Catalog, DevKm: dev}, windowSelected
}

// Window computes the deviation curves for the days following an event epoch.
// Tracks are evaluated independently on the worker pool and merged in track
// order, so the analysis is identical at every Parallelism setting.
func (d *Dataset) Window(ctx context.Context, event time.Time, opts WindowOptions) (*WindowAnalysis, error) {
	if opts.Days <= 0 {
		return nil, fmt.Errorf("core: window days must be positive")
	}
	wa := &WindowAnalysis{Event: event, Days: opts.Days}
	end := event.Add(time.Duration(opts.Days) * 24 * time.Hour)

	type outcome struct {
		curve SatCurve
		kind  windowOutcome
	}
	outcomes, err := parallel.Map(ctx, d.cfg.Parallelism, len(d.tracks),
		func(i int) (outcome, error) {
			curve, kind := d.windowTrack(d.tracks[i], event, end, opts)
			return outcome{curve, kind}, nil
		})
	if err != nil {
		return nil, err
	}
	for _, o := range outcomes {
		switch o.kind {
		case windowSelected:
			wa.Curves = append(wa.Curves, o.curve)
		case windowStale:
			wa.SkippedStale++
		case windowDecaying:
			wa.SkippedDecaying++
		case windowShape:
			wa.SkippedShape++
		}
	}

	wa.MedianKm = make([]float64, opts.Days)
	wa.P95Km = make([]float64, opts.Days)
	var scratch []float64
	for day := 0; day < opts.Days; day++ {
		scratch = scratch[:0]
		for _, c := range wa.Curves {
			if !math.IsNaN(c.DevKm[day]) {
				scratch = append(scratch, math.Abs(c.DevKm[day]))
			}
		}
		if len(scratch) == 0 {
			wa.MedianKm[day] = math.NaN()
			wa.P95Km[day] = math.NaN()
			continue
		}
		med, _ := stats.Percentile(scratch, 50)
		p95, _ := stats.Percentile(scratch, 95)
		wa.MedianKm[day] = med
		wa.P95Km[day] = p95
	}
	return wa, nil
}

// peakAbs returns the largest |deviation| in the curve (0 if all NaN).
func peakAbs(dev []float64) float64 {
	peak := 0.0
	for _, v := range dev {
		if !math.IsNaN(v) && math.Abs(v) > peak {
			peak = math.Abs(v)
		}
	}
	return peak
}

// humpShaped reports whether the deviation curve rises and then falls: the
// window median must exceed both the deviation right after the event and the
// deviation at the end (the paper's Fig 4a selection).
func humpShaped(dev []float64) bool {
	first, last := math.NaN(), math.NaN()
	var present []float64
	for _, v := range dev {
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(first) {
			first = v
		}
		last = v
		present = append(present, math.Abs(v))
	}
	if len(present) < 3 {
		return false
	}
	med, err := stats.Percentile(present, 50)
	if err != nil {
		return false
	}
	return med > math.Abs(first) && med > math.Abs(last)
}

// Deviation is one (event, satellite) association outcome.
type Deviation struct {
	Event    time.Time
	Catalog  int
	MaxDevKm float64 // largest altitude change within the window (km)
	MaxDrag  float64 // largest B* increase within the window (1/ER)
}

// Associate computes, for every given event and every eligible satellite,
// the maximum altitude deviation and drag increase within the
// happens-closely-after window — the raw material of Figs 5 and 6.
//
// The (event, track) pairs are evaluated independently on the worker pool
// and merged in (event, track) order, so the deviation list is identical at
// every Parallelism setting.
func (d *Dataset) Associate(ctx context.Context, events []Event, windowDays int) []Deviation {
	nt := len(d.tracks)
	if len(events) == 0 || nt == 0 {
		return nil
	}
	type pairResult struct {
		dev Deviation
		ok  bool
	}
	results, err := parallel.Map(ctx, d.cfg.Parallelism, len(events)*nt,
		func(i int) (pairResult, error) {
			ev, tr := events[i/nt], d.tracks[i%nt]
			dev, ok := d.associatePair(ev, tr, windowDays)
			return pairResult{dev, ok}, nil
		})
	if err != nil {
		// The pair function never errs; only a worker panic lands here, and
		// re-panicking preserves the pre-parallel contract of this API.
		panic(err)
	}
	var out []Deviation
	for _, r := range results {
		if r.ok {
			out = append(out, r.dev)
		}
	}
	return out
}

// associatePair evaluates one (event, track) pair — the unit of work the
// Associate fan-out distributes.
func (d *Dataset) associatePair(ev Event, tr *Track, windowDays int) (Deviation, bool) {
	return AssociateTrack(d.cfg, ev, tr, windowDays)
}

// AssociateTrack evaluates one (event, track) pair without a materialized
// Dataset — association touches only the track, the event, and the config,
// which is what lets the chunked streaming pipeline associate each chunk's
// tracks as they arrive. Results across chunks, taken in (event, track)
// order per chunk and track-major across chunks, reproduce Associate's
// ordering per track.
func AssociateTrack(cfg Config, ev Event, tr *Track, windowDays int) (Deviation, bool) {
	epoch := ev.Epoch()
	end := epoch.Add(time.Duration(windowDays) * 24 * time.Hour)
	base, ok := tr.At(epoch)
	if !ok || epoch.Sub(base.Time()) > cfg.BaselineStaleness {
		return Deviation{}, false
	}
	if math.Abs(float64(base.AltKm)-tr.OperationalAltKm) > cfg.DecayFilterKm {
		return Deviation{}, false // already decaying before the event
	}
	pts := tr.Window(epoch, end)
	if len(pts) == 0 {
		return Deviation{}, false
	}
	maxDev, maxDrag := 0.0, 0.0
	for _, p := range pts {
		dev := math.Abs(float64(base.AltKm) - float64(p.AltKm))
		if dev > maxDev {
			maxDev = dev
		}
		drag := float64(p.BStar) - float64(base.BStar)
		if drag > maxDrag {
			maxDrag = drag
		}
	}
	return Deviation{Event: epoch, Catalog: tr.Catalog, MaxDevKm: maxDev, MaxDrag: maxDrag}, true
}

// AssociateQuiet runs the same association against quiet control epochs
// (Fig 5a's "epoch set with no storms around").
func (d *Dataset) AssociateQuiet(ctx context.Context, epochs []time.Time, windowDays int) []Deviation {
	events := make([]Event, len(epochs))
	for i, t := range epochs {
		events[i] = Event{Storm: dst.Storm{Start: t}}
	}
	return d.Associate(ctx, events, windowDays)
}

// DeviationCDF folds associations into the altitude-change CDF of Fig 5/6.
func DeviationCDF(devs []Deviation) (*stats.CDF, error) {
	vals := make([]float64, len(devs))
	for i, dv := range devs {
		vals[i] = dv.MaxDevKm
	}
	return stats.NewCDF(vals)
}

// DragChangeCDF folds associations into the drag-change CDF of Fig 5c/6c.
func DragChangeCDF(devs []Deviation) (*stats.CDF, error) {
	vals := make([]float64, len(devs))
	for i, dv := range devs {
		vals[i] = dv.MaxDrag
	}
	return stats.NewCDF(vals)
}

// MergeCloseEvents folds events whose happens-closely-after windows would
// overlap: an event starting within gap of the previous kept event is merged
// into it, keeping the deeper peak and extending the duration bookkeeping.
// Without this, a storm with a ragged tail (several threshold crossings in a
// few days) would associate the same satellite response several times over.
// Events must be time-ordered, as Events returns them.
func MergeCloseEvents(events []Event, gap time.Duration) []Event {
	if len(events) == 0 {
		return nil
	}
	out := []Event{events[0]}
	for _, ev := range events[1:] {
		last := &out[len(out)-1]
		if ev.Storm.Start.Sub(last.Storm.Start) < gap {
			// Extend the kept event's span and keep the deeper peak.
			if ev.Storm.Peak < last.Storm.Peak {
				last.Storm.Peak = ev.Storm.Peak
				last.Storm.PeakAt = ev.Storm.PeakAt
			}
			if end := ev.Storm.End(); end.After(last.Storm.End()) {
				last.Storm.Hours = int(end.Sub(last.Storm.Start) / time.Hour)
			}
			continue
		}
		out = append(out, ev)
	}
	return out
}
