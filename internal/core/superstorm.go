package core

import (
	"fmt"
	"math"
	"time"

	"cosmicdance/internal/stats"
	"cosmicdance/internal/timeseries"
	"cosmicdance/internal/units"
)

// DailyDrag aggregates one day of fleet-wide drag observations (Fig 7's
// middle panel).
type DailyDrag struct {
	Day     time.Time
	Median  float64
	Mean    float64
	P95     float64
	Samples int
}

// SuperStormReport is the Fig 7 product: the storm signal, the fleet's drag
// response, and the tracked-satellite count over a window.
type SuperStormReport struct {
	From, To time.Time
	// Dst is the hourly intensity over the window.
	Dst []timeseries.Sample
	// Drag holds per-day fleet drag aggregates.
	Drag []DailyDrag
	// Tracked holds per-day counts of distinct satellites with at least one
	// observation in the trailing 72 hours (a TLE-visibility proxy for "still
	// tracked").
	Tracked []timeseries.Sample
	// PeakDragRatio is max(daily median B*) / quiet-baseline median B*.
	PeakDragRatio float64
	// MinTrackedRatio is min(daily tracked) / max(daily tracked): 1.0 means
	// no satellite loss was visible.
	MinTrackedRatio float64
}

// SuperStorm builds the Fig 7 analysis over [from, to).
func (d *Dataset) SuperStorm(from, to time.Time) (*SuperStormReport, error) {
	if !to.After(from) {
		return nil, fmt.Errorf("core: empty super-storm window")
	}
	days := int(to.Sub(from) / (24 * time.Hour))
	if days < 2 {
		return nil, fmt.Errorf("core: super-storm window must span at least 2 days")
	}
	rep := &SuperStormReport{From: from, To: to}

	// Hourly Dst trace.
	slice := d.weather.Slice(from, to)
	for i, v := range slice.Hourly().Values() {
		rep.Dst = append(rep.Dst, timeseries.Sample{At: slice.Hourly().TimeAt(i), Value: v})
	}

	// Daily fleet drag and tracked counts.
	var scratch []float64
	for day := 0; day < days; day++ {
		dayStart := from.Add(time.Duration(day) * 24 * time.Hour)
		dayEnd := dayStart.Add(24 * time.Hour)
		scratch = scratch[:0]
		for _, tr := range d.tracks {
			for _, p := range tr.Window(dayStart, dayEnd) {
				scratch = append(scratch, float64(p.BStar))
			}
		}
		dd := DailyDrag{Day: dayStart, Samples: len(scratch)}
		if len(scratch) > 0 {
			dd.Median, _ = stats.Percentile(scratch, 50)
			dd.P95, _ = stats.Percentile(scratch, 95)
			dd.Mean, _ = stats.Mean(scratch)
		}
		rep.Drag = append(rep.Drag, dd)

		tracked := 0
		lookback := dayEnd.Add(-72 * time.Hour)
		for _, tr := range d.tracks {
			if len(tr.Window(lookback, dayEnd)) > 0 {
				tracked++
			}
		}
		rep.Tracked = append(rep.Tracked, timeseries.Sample{At: dayStart, Value: float64(tracked)})
	}

	// Peak drag ratio vs the quietest day.
	quiet, peak := math.Inf(1), 0.0
	for _, dd := range rep.Drag {
		if dd.Samples == 0 {
			continue
		}
		if dd.Median < quiet {
			quiet = dd.Median
		}
		if dd.Median > peak {
			peak = dd.Median
		}
	}
	if quiet > 0 && !math.IsInf(quiet, 1) {
		rep.PeakDragRatio = peak / quiet
	}

	minT, maxT := math.Inf(1), 0.0
	for _, s := range rep.Tracked {
		if s.Value < minT {
			minT = s.Value
		}
		if s.Value > maxT {
			maxT = s.Value
		}
	}
	if maxT > 0 {
		rep.MinTrackedRatio = minT / maxT
	}
	return rep, nil
}

// SatTimeSeries is Fig 3's per-satellite panel: the Dst context merged with
// one satellite's drag and altitude history.
type SatTimeSeries struct {
	Catalog int
	Points  []SatTimePoint
}

// SatTimePoint is one merged row.
type SatTimePoint struct {
	At    time.Time
	Dst   units.NanoTesla
	AltKm float64
	BStar float64
}

// TimeSeries extracts the merged Fig 3 view for one satellite over a window.
func (d *Dataset) TimeSeries(catalog int, from, to time.Time) (*SatTimeSeries, error) {
	tr := d.Track(catalog)
	if tr == nil {
		return nil, fmt.Errorf("core: no track for catalog %d", catalog)
	}
	pts := tr.Window(from, to)
	if len(pts) == 0 {
		return nil, fmt.Errorf("core: catalog %d has no observations in window", catalog)
	}
	out := &SatTimeSeries{Catalog: catalog}
	for _, p := range pts {
		row := SatTimePoint{At: p.Time(), AltKm: float64(p.AltKm), BStar: float64(p.BStar)}
		if v, ok := d.weather.At(row.At); ok {
			row.Dst = v
		}
		out.Points = append(out.Points, row)
	}
	return out, nil
}
