package core

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/dst"
	"cosmicdance/internal/obs"
	"cosmicdance/internal/parallel"
	"cosmicdance/internal/stats"
	"cosmicdance/internal/tle"
)

// Build telemetry mirrors CleaningStats onto process-wide counters so the
// cleaning funnel (paper §3, Fig 10) is visible in /metrics and -trace runs
// without plumbing the stats out by hand.
var (
	metricBuilds       = obs.Default().Counter("core_dataset_builds_total")
	metricObservations = obs.Default().Counter("core_observations_total")
	metricGrossErrors  = obs.Default().Counter("core_rows_removed_total", "reason", "gross_error")
	metricDuplicates   = obs.Default().Counter("core_rows_removed_total", "reason", "duplicate")
	metricRaising      = obs.Default().Counter("core_rows_removed_total", "reason", "raising")
	metricNonOp        = obs.Default().Counter("core_tracks_dropped_total", "reason", "non_operational")
	metricTracks       = obs.Default().Counter("core_tracks_total")
)

// CleaningStats records what the data-cleaning stage removed, mirroring the
// paper's §3 "Cleaning the data" discussion and Fig 10.
type CleaningStats struct {
	TotalObservations int
	GrossErrors       int // altitude outside [MinValidAltKm, MaxValidAltKm]
	RaisingRemoved    int // orbit-raising prefix points
	NonOperational    int // tracks that never reached an operational shell
	Duplicates        int // repeated (catalog, epoch) observations dropped
}

// Dataset is the merged, cleaned, time-ordered representation CosmicDance
// analyses: the hourly Dst index plus one cleaned Track per satellite.
type Dataset struct {
	cfg     Config
	weather *dst.Index
	tracks  []*Track
	byCat   map[int]*Track
	// rawAlts holds every ingested altitude before cleaning (Fig 10a) in
	// canonical total order (see canonicalizeRawAlts); cleanAlts holds the
	// altitudes that survived (Fig 10b), in track order.
	rawAlts   []float64
	cleanAlts []float64
	stats     CleaningStats
}

// Observation is the ingest-format-independent record: one satellite state
// row, whatever the transport (parsed TLE, simulator sample, or a live feed
// batch folded into the incremental engine).
type Observation struct {
	Catalog int
	Epoch   int64 // Unix seconds
	AltKm   float64
	BStar   float64
	Incl    float64
}

// Builder accumulates observations before cleaning.
type Builder struct {
	cfg     Config
	weather *dst.Index
	obs     []Observation
}

// NewBuilder starts a dataset build with the given parameters and solar
// activity index.
func NewBuilder(cfg Config, weather *dst.Index) *Builder {
	return &Builder{cfg: cfg, weather: weather}
}

// AddTLEs ingests parsed element sets (the live-data path).
func (b *Builder) AddTLEs(sets []*tle.TLE) {
	b.obs = slices.Grow(b.obs, len(sets))
	for _, t := range sets {
		b.obs = append(b.obs, ObservationFromTLE(t))
	}
}

// AddSamples ingests simulator samples (the compact path for large archives;
// identical semantics to AddTLEs).
func (b *Builder) AddSamples(samples []constellation.Sample) {
	b.obs = slices.Grow(b.obs, len(samples))
	for _, s := range samples {
		b.obs = append(b.obs, ObservationFromSample(s))
	}
}

// AddObservations ingests pre-converted records (the incremental engine's
// replay path; identical semantics to AddTLEs).
func (b *Builder) AddObservations(obs []Observation) {
	b.obs = append(b.obs, obs...)
}

// ObservationFromTLE converts a parsed element set to the ingest record,
// with exactly AddTLEs' field semantics.
func ObservationFromTLE(t *tle.TLE) Observation {
	return Observation{
		Catalog: t.CatalogNumber,
		Epoch:   t.Epoch.Unix(),
		AltKm:   float64(t.Altitude()),
		BStar:   t.BStar,
		Incl:    float64(t.Inclination),
	}
}

// ObservationFromSample converts a simulator sample to the ingest record,
// with exactly AddSamples' field semantics.
func ObservationFromSample(s constellation.Sample) Observation {
	return Observation{
		Catalog: int(s.Catalog),
		Epoch:   s.Epoch,
		AltKm:   float64(s.AltKm),
		BStar:   float64(s.BStar),
		Incl:    float64(s.Inclination),
	}
}

// Build cleans the archive and assembles the dataset:
//
//  1. altitude sanity cut (tracking errors, Fig 10a→10b),
//  2. per-satellite orbit-raising prefix removal,
//  3. operational-altitude estimation (tracks that never reach a shell are
//     excluded from storm analyses).
//
// The already-decaying filter is applied per event during analysis, not here,
// because it depends on the event time.
func (b *Builder) Build(ctx context.Context) (*Dataset, error) {
	if b.weather == nil || b.weather.Len() == 0 {
		return nil, fmt.Errorf("core: no solar activity data")
	}
	if len(b.obs) == 0 {
		return nil, fmt.Errorf("core: no trajectory observations")
	}
	// The monolithic build is the chunked build with one chunk: one partial
	// over all observations, folded through the same assembler. Sharing the
	// path is what makes chunked-vs-unchunked equivalence structural rather
	// than coincidental.
	p, err := buildPartial(ctx, b.cfg, b.obs)
	if err != nil {
		return nil, err
	}
	a := NewPartialAssembler(b.cfg, b.weather)
	if err := a.Add(p); err != nil {
		return nil, err
	}
	return a.Finish()
}

// buildPartial is the cleaning core shared by Build and BuildChunkPartial:
// gross-error cut, per-catalog grouping, and the per-track clean fan-out.
func buildPartial(ctx context.Context, cfg Config, obs []Observation) (*ChunkPartial, error) {
	p := &ChunkPartial{}
	p.Stats.TotalObservations = len(obs)
	p.RawAlts = make([]float64, 0, len(obs))

	// Group by catalog into one flat arena. A counting pass sizes a single
	// backing slice and per-catalog windows into it, replacing the old
	// map-of-growing-slices (per-catalog append reallocations dominated the
	// build's allocation profile at archive scale). Within a catalog the
	// ingest order is preserved exactly, so the grouping is byte-for-byte
	// the same as the map version.
	counts := make(map[int]int)
	valid := 0
	for _, o := range obs {
		p.RawAlts = append(p.RawAlts, o.AltKm)
		if o.AltKm > cfg.MaxValidAltKm || o.AltKm < cfg.MinValidAltKm {
			p.Stats.GrossErrors++
			continue
		}
		counts[o.Catalog]++
		valid++
	}
	canonicalizeRawAlts(p.RawAlts)

	cats := make([]int, 0, len(counts))
	for c := range counts {
		cats = append(cats, c)
	}
	sort.Ints(cats)

	arena := make([]Observation, valid)
	cursor := make(map[int]int, len(cats)) // catalog → next free arena slot
	off := 0
	for _, c := range cats {
		cursor[c] = off
		off += counts[c]
	}
	byCat := make(map[int][]Observation, len(cats))
	for _, o := range obs {
		if o.AltKm > cfg.MaxValidAltKm || o.AltKm < cfg.MinValidAltKm {
			continue
		}
		i := cursor[o.Catalog]
		arena[i] = o
		cursor[o.Catalog] = i + 1
	}
	off = 0
	for _, c := range cats {
		byCat[c] = arena[off : off+counts[c] : off+counts[c]]
		off += counts[c]
	}

	// Per-track parse/clean/dedupe fan-out: every catalog is independent, so
	// the cleaning pass runs on the worker pool and the results are merged
	// below in catalog order — the output is identical at every width.
	cleaned, err := parallel.Map(ctx, cfg.Parallelism, len(cats),
		func(i int) (CleanedTrack, error) {
			return CleanTrack(cats[i], byCat[cats[i]], cfg), nil
		})
	if err != nil {
		return nil, err
	}

	// Order-stable merge: catalog-ascending, exactly as the sequential loop
	// appended. Sized up front so the merge itself never reallocates.
	nTracks := 0
	for _, res := range cleaned {
		if res.Track != nil {
			nTracks++
		}
	}
	p.Tracks = make([]*Track, 0, nTracks)
	for _, res := range cleaned {
		p.Stats.Duplicates += res.Duplicates
		if res.Track == nil {
			p.Stats.NonOperational++
			continue
		}
		p.Stats.RaisingRemoved += res.Track.RaisingRemoved
		p.Tracks = append(p.Tracks, res.Track)
	}
	return p, nil
}

// CleanedTrack is one catalog's cleaning outcome: a track (nil when the
// satellite never reached an operational shell) plus the number of repeated
// epochs dropped.
type CleanedTrack struct {
	Track      *Track
	Duplicates int
}

// CleanTrack sorts, dedupes and cleans one satellite's observations — the
// per-track unit of work the Build fan-out distributes, exported so the
// incremental engine recomputes exactly the batch cleaning when a track's
// watermark advances. It sorts obs in place (stable, by epoch).
func CleanTrack(cat int, obs []Observation, cfg Config) CleanedTrack {
	// Stable sort + drop repeated epochs (keep first): flaky archives
	// replay element sets, and a duplicated observation must not change
	// the analysis relative to a clean ingest of the same data. The
	// comparator-typed sort avoids the interface boxing sort.SliceStable
	// pays per element; stability pins the same order either way.
	slices.SortStableFunc(obs, func(a, b Observation) int {
		switch {
		case a.Epoch < b.Epoch:
			return -1
		case a.Epoch > b.Epoch:
			return 1
		default:
			return 0
		}
	})
	var res CleanedTrack
	points := make([]TrackPoint, 0, len(obs))
	for i, o := range obs {
		if i > 0 && o.Epoch == obs[i-1].Epoch {
			res.Duplicates++
			continue
		}
		points = append(points, TrackPoint{Epoch: o.Epoch, AltKm: float32(o.AltKm), BStar: float32(o.BStar), Incl: float32(o.Incl)})
	}
	opAlt := operationalAltitude(points, 10)
	if opAlt < cfg.MinOperationalAltKm {
		// Never reached a shell (lost during staging, or launch debris).
		return res
	}
	// Remove the orbit-raising prefix: everything before the first point
	// within RaisingMarginKm of the operational altitude.
	cut := 0
	for cut < len(points) && float64(points[cut].AltKm) < opAlt-cfg.RaisingMarginKm {
		cut++
	}
	if cut == len(points) {
		return res
	}
	res.Track = &Track{
		Catalog:          cat,
		Points:           points[cut:],
		OperationalAltKm: opAlt,
		RaisingRemoved:   cut,
	}
	return res
}

// NewDatasetFromTLEs is the one-call live-data ingest: it cleans and
// assembles a dataset directly from parsed element sets (the shape a
// FetchHistories bulk result flattens into).
func NewDatasetFromTLEs(ctx context.Context, cfg Config, weather *dst.Index, sets []*tle.TLE) (*Dataset, error) {
	b := NewBuilder(cfg, weather)
	b.AddTLEs(sets)
	return b.Build(ctx)
}

// Weather returns the Dst index.
func (d *Dataset) Weather() *dst.Index { return d.weather }

// Config returns the pipeline parameters.
func (d *Dataset) Config() Config { return d.cfg }

// Tracks returns the cleaned per-satellite tracks (catalog-ascending).
func (d *Dataset) Tracks() []*Track { return d.tracks }

// Track returns one satellite's track, or nil.
func (d *Dataset) Track(catalog int) *Track { return d.byCat[catalog] }

// Cleaning returns what the cleaning stage removed.
func (d *Dataset) Cleaning() CleaningStats { return d.stats }

// RawAltitudeCDF is Fig 10(a): the altitude distribution across all ingested
// TLEs before cleaning, long error tail included.
func (d *Dataset) RawAltitudeCDF() (*stats.CDF, error) { return stats.NewCDF(d.rawAlts) }

// CleanAltitudeCDF is Fig 10(b): after removing tracking errors and
// orbit-raising windows.
func (d *Dataset) CleanAltitudeCDF() (*stats.CDF, error) { return stats.NewCDF(d.cleanAlts) }
