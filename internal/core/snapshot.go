package core

import (
	"fmt"

	"cosmicdance/internal/dst"
)

// DatasetState is the complete exported state of a built Dataset, in the
// exact in-memory representation Build produces. It exists so a snapshot
// codec (internal/artifact) can persist and restore datasets without the
// core package knowing about any serialization format, and without a
// restored dataset differing from a freshly built one in a single byte.
//
// The pipeline Config is deliberately absent: a cached dataset is only valid
// for the configuration that built it (the cache key guarantees this), and
// the runtime-only Parallelism knob must come from the caller, not the
// snapshot.
type DatasetState struct {
	// Tracks are the cleaned per-satellite tracks, catalog-ascending, as
	// Build emits them.
	Tracks []*Track
	// RawAlts holds every ingested altitude before cleaning, in the
	// canonical total order Build stores (Fig 10a).
	RawAlts []float64
	// CleanAlts holds the altitudes that survived cleaning, in track-merge
	// order (Fig 10b).
	CleanAlts []float64
	// Stats is the cleaning report.
	Stats CleaningStats
}

// State exports the dataset's full post-Build state.
func (d *Dataset) State() DatasetState {
	return DatasetState{
		Tracks:    d.tracks,
		RawAlts:   d.rawAlts,
		CleanAlts: d.cleanAlts,
		Stats:     d.stats,
	}
}

// DatasetFromState reassembles a Dataset from exported state, attaching the
// given weather index and pipeline parameters. It validates the structural
// invariants Build guarantees (at least one track, catalog-ascending unique
// tracks, non-empty per-track histories) and fails closed on any violation,
// so a damaged snapshot can never masquerade as a built dataset.
func DatasetFromState(cfg Config, weather *dst.Index, st DatasetState) (*Dataset, error) {
	if weather == nil || weather.Len() == 0 {
		return nil, fmt.Errorf("core: no solar activity data")
	}
	if len(st.Tracks) == 0 {
		return nil, fmt.Errorf("core: dataset state has no tracks")
	}
	d := &Dataset{
		cfg:       cfg,
		weather:   weather,
		tracks:    st.Tracks,
		byCat:     make(map[int]*Track, len(st.Tracks)),
		rawAlts:   st.RawAlts,
		cleanAlts: st.CleanAlts,
		stats:     st.Stats,
	}
	prev := 0
	for i, tr := range st.Tracks {
		if tr == nil {
			return nil, fmt.Errorf("core: dataset state track %d is nil", i)
		}
		if len(tr.Points) == 0 {
			return nil, fmt.Errorf("core: dataset state track %d (catalog %d) is empty", i, tr.Catalog)
		}
		if i > 0 && tr.Catalog <= prev {
			return nil, fmt.Errorf("core: dataset state tracks out of order at %d (catalog %d after %d)", i, tr.Catalog, prev)
		}
		prev = tr.Catalog
		d.byCat[tr.Catalog] = tr
	}
	return d, nil
}
