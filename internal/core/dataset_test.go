package core

import (
	"context"
	"math"
	"testing"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/dst"
	"cosmicdance/internal/tle"
)

var c0 = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

// quietWeather returns an all-quiet index of the given days.
func quietWeather(days int) *dst.Index {
	vals := make([]float64, days*24)
	for i := range vals {
		vals[i] = -10
	}
	return dst.FromValues(c0, vals)
}

// addObs feeds one observation through the sample ingest path.
func addObs(b *Builder, cat int, at time.Time, alt, bstar float64) {
	b.AddSamples([]constellation.Sample{{
		Catalog: int32(cat), Epoch: at.Unix(), AltKm: float32(alt), BStar: float32(bstar), Inclination: 53,
	}})
}

// steadyTrack adds n twice-daily observations at a constant altitude.
func steadyTrack(b *Builder, cat int, from time.Time, days int, alt float64) {
	for i := 0; i < days*2; i++ {
		addObs(b, cat, from.Add(time.Duration(i)*12*time.Hour), alt, 4e-4)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := NewBuilder(DefaultConfig(), nil).Build(context.Background()); err == nil {
		t.Error("nil weather accepted")
	}
	if _, err := NewBuilder(DefaultConfig(), quietWeather(1)).Build(context.Background()); err == nil {
		t.Error("no observations accepted")
	}
	b := NewBuilder(DefaultConfig(), quietWeather(10))
	addObs(b, 1, c0, 40000, 0) // only a gross error: nothing survives
	if _, err := b.Build(context.Background()); err == nil {
		t.Error("all-removed archive accepted")
	}
}

func TestGrossErrorRemoval(t *testing.T) {
	b := NewBuilder(DefaultConfig(), quietWeather(30))
	steadyTrack(b, 1, c0, 30, 550)
	addObs(b, 1, c0.Add(100*time.Hour), 39000, 4e-4) // tracking error
	addObs(b, 1, c0.Add(101*time.Hour), 50, 4e-4)    // absurd low fit
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.Cleaning().GrossErrors != 2 {
		t.Errorf("gross errors = %d, want 2", d.Cleaning().GrossErrors)
	}
	raw, err := d.RawAltitudeCDF()
	if err != nil {
		t.Fatal(err)
	}
	clean, err := d.CleanAltitudeCDF()
	if err != nil {
		t.Fatal(err)
	}
	if raw.Max() < 39000 {
		t.Errorf("raw CDF max = %v, want the 39,000 km tail visible", raw.Max())
	}
	if clean.Max() > 650 {
		t.Errorf("clean CDF max = %v, want <= 650", clean.Max())
	}
	if raw.N() != d.Cleaning().TotalObservations {
		t.Errorf("raw N = %d, total = %d", raw.N(), d.Cleaning().TotalObservations)
	}
}

func TestOrbitRaisingPrefixRemoved(t *testing.T) {
	b := NewBuilder(DefaultConfig(), quietWeather(120))
	// 20 days raising from 350 to 550, then 80 days on station.
	at := c0
	for alt := 350.0; alt < 550; alt += 5 {
		addObs(b, 7, at, alt, 4e-4)
		at = at.Add(12 * time.Hour)
	}
	steadyTrack(b, 7, at, 80, 550)
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tr := d.Track(7)
	if tr == nil {
		t.Fatal("track missing")
	}
	if tr.RaisingRemoved == 0 {
		t.Error("no raising points removed")
	}
	for _, p := range tr.Points {
		if p.AltKm < 540 {
			t.Fatalf("raising point %v survived cleaning", p.AltKm)
		}
	}
	if math.Abs(tr.OperationalAltKm-550) > 1 {
		t.Errorf("operational altitude = %v, want ~550", tr.OperationalAltKm)
	}
}

func TestNonOperationalTrackExcluded(t *testing.T) {
	b := NewBuilder(DefaultConfig(), quietWeather(60))
	steadyTrack(b, 1, c0, 60, 550)
	// A satellite lost during staging never exceeds 360 km.
	steadyTrack(b, 2, c0, 10, 355)
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.Track(2) != nil {
		t.Error("staging-lost satellite has a track")
	}
	if d.Cleaning().NonOperational != 1 {
		t.Errorf("non-operational = %d, want 1", d.Cleaning().NonOperational)
	}
	if d.Track(1) == nil {
		t.Error("operational satellite missing")
	}
}

func TestOperationalAltitudeRobustToDecayTail(t *testing.T) {
	b := NewBuilder(DefaultConfig(), quietWeather(200))
	// 100 days on station, then a long decay to 200 km.
	steadyTrack(b, 3, c0, 100, 550)
	at := c0.Add(100 * 24 * time.Hour)
	for alt := 550.0; alt > 200; alt -= 4 {
		addObs(b, 3, at, alt, 1e-3)
		at = at.Add(12 * time.Hour)
	}
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tr := d.Track(3)
	if math.Abs(tr.OperationalAltKm-550) > 2 {
		t.Errorf("operational altitude = %v, decay tail skewed it", tr.OperationalAltKm)
	}
	// The decay tail itself must be retained (it is the phenomenon under
	// study), only the raising prefix is cut.
	last := tr.Points[len(tr.Points)-1]
	if last.AltKm > 250 {
		t.Errorf("decay tail trimmed: last point %v km", last.AltKm)
	}
}

func TestTrackAtWindowSpan(t *testing.T) {
	b := NewBuilder(DefaultConfig(), quietWeather(30))
	steadyTrack(b, 4, c0, 30, 550)
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tr := d.Track(4)
	if _, ok := tr.At(c0.Add(-time.Hour)); ok {
		t.Error("At before first point should fail")
	}
	p, ok := tr.At(c0.Add(13 * time.Hour))
	if !ok || p.Epoch != c0.Add(12*time.Hour).Unix() {
		t.Errorf("At = %+v, %v", p, ok)
	}
	w := tr.Window(c0.Add(24*time.Hour), c0.Add(48*time.Hour))
	if len(w) != 3 {
		t.Errorf("window = %d points, want 3", len(w))
	}
	first, last, ok := tr.Span()
	if !ok || !first.Equal(c0) || last.Before(first) {
		t.Errorf("span = %v..%v, %v", first, last, ok)
	}
	var empty Track
	if _, _, ok := empty.Span(); ok {
		t.Error("empty track has a span")
	}
}

func TestAddTLEsPathMatchesSamples(t *testing.T) {
	// The TLE ingest path must agree with the compact sample path.
	weather := quietWeather(30)
	samples := make([]constellation.Sample, 0, 40)
	for i := 0; i < 40; i++ {
		samples = append(samples, constellation.Sample{
			Catalog: 9, Epoch: c0.Add(time.Duration(i) * 12 * time.Hour).Unix(),
			AltKm: 550.25, BStar: 4.5e-4, Inclination: 53.01, Eccentricity: 0.0001,
		})
	}
	b1 := NewBuilder(DefaultConfig(), weather)
	b1.AddSamples(samples)
	d1, err := b1.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	b2 := NewBuilder(DefaultConfig(), weather)
	for _, s := range samples {
		tl, err := s.TLE("X")
		if err != nil {
			t.Fatal(err)
		}
		b2.AddTLEs([]*tle.TLE{tl})
	}
	d2, err := b2.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	tr1, tr2 := d1.Track(9), d2.Track(9)
	if tr1 == nil || tr2 == nil {
		t.Fatal("track missing on one path")
	}
	if len(tr1.Points) != len(tr2.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(tr1.Points), len(tr2.Points))
	}
	for i := range tr1.Points {
		a, b := tr1.Points[i], tr2.Points[i]
		if a.Epoch != b.Epoch {
			t.Fatalf("epoch %d differs", i)
		}
		// The TLE path round-trips altitude through mean motion; allow the
		// conversion noise.
		if math.Abs(float64(a.AltKm-b.AltKm)) > 0.01 {
			t.Fatalf("altitude %d differs: %v vs %v", i, a.AltKm, b.AltKm)
		}
	}
	if math.Abs(tr1.OperationalAltKm-tr2.OperationalAltKm) > 0.05 {
		t.Fatalf("operational altitude differs: %v vs %v", tr1.OperationalAltKm, tr2.OperationalAltKm)
	}
}

// TestCleaningInvariants checks the structural guarantees of Build over
// randomized archives: cleaned points are a subset of raw observations, no
// cleaned point violates the sanity cut, and every track is epoch-ascending
// with its raising prefix gone.
func TestCleaningInvariants(t *testing.T) {
	weather := quietWeather(120)
	for trial := 0; trial < 10; trial++ {
		cfg := constellation.DefaultConfig()
		cfg.Seed = int64(trial + 100)
		cfg.Start = c0
		cfg.Hours = 120 * 24
		cfg.InitialFleet = 10
		cfg.Launches = []constellation.Launch{{At: c0.Add(24 * time.Hour), Shell: 0, Count: 10}}
		cfg.GrossErrorProb = 0.005
		res, err := constellation.Run(context.Background(), cfg, dst.FromValues(c0, make([]float64, cfg.Hours)))
		if err != nil {
			t.Fatal(err)
		}
		b := NewBuilder(DefaultConfig(), weather)
		b.AddSamples(res.Samples)
		d, err := b.Build(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		cl := d.Cleaning()
		if cl.TotalObservations != len(res.Samples) {
			t.Fatalf("trial %d: total %d vs %d", trial, cl.TotalObservations, len(res.Samples))
		}
		cleanCount := 0
		for _, tr := range d.Tracks() {
			cleanCount += len(tr.Points)
			for i, p := range tr.Points {
				if float64(p.AltKm) > d.Config().MaxValidAltKm || float64(p.AltKm) < d.Config().MinValidAltKm {
					t.Fatalf("trial %d: cleaned point at %v km", trial, p.AltKm)
				}
				if i > 0 && p.Epoch < tr.Points[i-1].Epoch {
					t.Fatalf("trial %d: track %d not ascending", trial, tr.Catalog)
				}
			}
			// The first surviving point is at (or above) the raising margin.
			if float64(tr.Points[0].AltKm) < tr.OperationalAltKm-d.Config().RaisingMarginKm {
				t.Fatalf("trial %d: raising prefix survived (%.1f vs op %.1f)",
					trial, tr.Points[0].AltKm, tr.OperationalAltKm)
			}
		}
		if cleanCount+cl.GrossErrors+cl.RaisingRemoved > cl.TotalObservations {
			t.Fatalf("trial %d: accounting: clean %d + gross %d + raising %d > total %d",
				trial, cleanCount, cl.GrossErrors, cl.RaisingRemoved, cl.TotalObservations)
		}
	}
}

func TestDuplicateObservationsDropped(t *testing.T) {
	// A clean build and a build with every observation duplicated (a flaky
	// archive replaying element sets) must produce identical tracks.
	clean := NewBuilder(DefaultConfig(), quietWeather(30))
	steadyTrack(clean, 1, c0, 30, 550)
	want, err := clean.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	dup := NewBuilder(DefaultConfig(), quietWeather(30))
	steadyTrack(dup, 1, c0, 30, 550)
	steadyTrack(dup, 1, c0, 30, 550)
	got, err := dup.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Cleaning().Duplicates != 60 {
		t.Fatalf("Duplicates = %d, want 60", got.Cleaning().Duplicates)
	}
	wt, gt := want.Tracks(), got.Tracks()
	if len(wt) != 1 || len(gt) != 1 || len(wt[0].Points) != len(gt[0].Points) {
		t.Fatalf("tracks: want %d pts, got %d pts", len(wt[0].Points), len(gt[0].Points))
	}
	for i := range wt[0].Points {
		if wt[0].Points[i] != gt[0].Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, wt[0].Points[i], gt[0].Points[i])
		}
	}
	if want.Cleaning().Duplicates != 0 {
		t.Fatalf("clean build counted %d duplicates", want.Cleaning().Duplicates)
	}
}

func TestNewDatasetFromTLEs(t *testing.T) {
	var sets []*tle.TLE
	for i := 0; i < 60; i++ {
		s := constellation.Sample{
			Catalog: 44713, Epoch: c0.Add(time.Duration(i) * 12 * time.Hour).Unix(),
			AltKm: 550, BStar: 4e-4, Inclination: 53,
		}
		set, err := s.TLE("STARLINK-TEST")
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, set)
	}
	d, err := NewDatasetFromTLEs(context.Background(), DefaultConfig(), quietWeather(30), sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Tracks()) != 1 || d.Tracks()[0].Catalog != 44713 {
		t.Fatalf("tracks = %+v", d.Tracks())
	}
}
