package core

import (
	"context"
	"math"
	"testing"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/spaceweather"
)

// buildPaperDataset runs the full paper scenario once per test binary.
var paperDataset *Dataset

func getPaperDataset(t *testing.T) *Dataset {
	t.Helper()
	if paperDataset != nil {
		return paperDataset
	}
	weather, err := spaceweather.Generate(spaceweather.Paper2020to2024())
	if err != nil {
		t.Fatal(err)
	}
	res, err := constellation.Run(context.Background(), constellation.PaperFleet(42), weather)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(DefaultConfig(), weather)
	b.AddSamples(res.Samples)
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	paperDataset = d
	return d
}

func TestEndToEndFig10Cleaning(t *testing.T) {
	if testing.Short() {
		t.Skip("full-window pipeline in -short mode")
	}
	d := getPaperDataset(t)

	raw, err := d.RawAltitudeCDF()
	if err != nil {
		t.Fatal(err)
	}
	// Fig 10a: a long error tail reaching tens of thousands of km.
	if raw.Max() < 10000 {
		t.Errorf("raw max altitude = %v, want an error tail into the tens of thousands", raw.Max())
	}
	if tail := raw.TailFraction(650); tail <= 0 || tail > 0.01 {
		t.Errorf("raw tail beyond 650 km = %v, want small but nonzero", tail)
	}

	clean, err := d.CleanAltitudeCDF()
	if err != nil {
		t.Fatal(err)
	}
	// Fig 10b: everything within the operational range, the majority near
	// 550 km, and a deorbiting tail below 500 km.
	if clean.Max() > 650 {
		t.Errorf("clean max = %v", clean.Max())
	}
	nominal := clean.At(575) - clean.At(525)
	if nominal < 0.5 {
		t.Errorf("mass near the 550 km shell = %v, want the majority", nominal)
	}
	deorbiting := clean.At(500)
	if deorbiting <= 0 || deorbiting > 0.2 {
		t.Errorf("deorbiting tail below 500 km = %v, want small but nonzero", deorbiting)
	}
}

func TestEndToEndFig4StormVsQuiet(t *testing.T) {
	if testing.Short() {
		t.Skip("full-window pipeline in -short mode")
	}
	d := getPaperDataset(t)

	// Fig 4a: the -112 nT event.
	wa, err := d.Window(context.Background(), spaceweather.Fig4Storm, WindowOptions{Days: 30, RequireHumpShape: true, MinPeakKm: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(wa.Curves) < 5 {
		t.Fatalf("affected satellites = %d, want a visible population", len(wa.Curves))
	}
	peakMedian, peakDay := 0.0, 0
	for day, v := range wa.MedianKm {
		if !math.IsNaN(v) && v > peakMedian {
			peakMedian, peakDay = v, day
		}
	}
	// Paper: median altitude variation goes up to ~5 km within 10-15 days.
	if peakMedian < 2 || peakMedian > 12 {
		t.Errorf("peak median deviation = %.2f km, want ~5", peakMedian)
	}
	if peakDay < 4 || peakDay > 25 {
		t.Errorf("median peaks on day %d, want mid-window", peakDay)
	}
	// Paper: the 95th-ptile remains elevated (~10 km) at the window end.
	endP95 := wa.P95Km[len(wa.P95Km)-1]
	if math.IsNaN(endP95) || endP95 < 2 || endP95 > 30 {
		t.Errorf("day-30 95th-ptile = %.2f km, want elevated (~10)", endP95)
	}

	// Fig 4b: a quiet epoch shows no comparable shift.
	quiet, err := d.QuietEpochs(80, 15, 1, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	qa, err := d.Window(context.Background(), quiet[0], WindowOptions{Days: 15})
	if err != nil {
		t.Fatal(err)
	}
	maxQuietMedian := 0.0
	for _, v := range qa.MedianKm {
		if !math.IsNaN(v) && v > maxQuietMedian {
			maxQuietMedian = v
		}
	}
	if maxQuietMedian >= peakMedian {
		t.Errorf("quiet median deviation %.2f not below storm median %.2f", maxQuietMedian, peakMedian)
	}
	if maxQuietMedian > 3 {
		t.Errorf("quiet median deviation = %.2f km, want noise-level", maxQuietMedian)
	}
}

func TestEndToEndFig5IntensityCDFs(t *testing.T) {
	if testing.Short() {
		t.Skip("full-window pipeline in -short mode")
	}
	d := getPaperDataset(t)

	// Fig 5b: events above the 95th intensity percentile.
	events, err := d.EventsAbovePercentile(95, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 5 {
		t.Fatalf("high-intensity events = %d", len(events))
	}
	stormDevs := d.Associate(context.Background(), events, 30)
	stormCDF, err := DeviationCDF(stormDevs)
	if err != nil {
		t.Fatal(err)
	}

	// Fig 5a: quiet epochs.
	quiet, err := d.QuietEpochs(80, 15, 20, 14*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	quietCDF, err := DeviationCDF(d.AssociateQuiet(context.Background(), quiet, 15))
	if err != nil {
		t.Fatal(err)
	}

	// Quiet variations stay below 10 km essentially always.
	if tail := quietCDF.TailFraction(10); tail > 0.02 {
		t.Errorf("quiet tail beyond 10 km = %v", tail)
	}
	// Storm case: a small tail (at most a few %) reaches tens of km, with a
	// maximum beyond 100 km (paper: up to ~163 km).
	stormTail := stormCDF.TailFraction(10)
	if stormTail <= quietCDF.TailFraction(10) {
		t.Error("storm tail not heavier than quiet tail")
	}
	if stormTail > 0.05 {
		t.Errorf("storm tail beyond 10 km = %v, want at most a few percent", stormTail)
	}
	if stormCDF.Max() < 80 || stormCDF.Max() > 400 {
		t.Errorf("storm max deviation = %v km, want ~163", stormCDF.Max())
	}

	// Fig 5c: drag changes are larger after storms.
	stormDrag, err := DragChangeCDF(stormDevs)
	if err != nil {
		t.Fatal(err)
	}
	quietDrag, err := DragChangeCDF(d.AssociateQuiet(context.Background(), quiet, 15))
	if err != nil {
		t.Fatal(err)
	}
	if stormDrag.Quantile(0.95) <= quietDrag.Quantile(0.95) {
		t.Error("storm drag distribution not heavier than quiet")
	}
}

func TestEndToEndFig6DurationSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("full-window pipeline in -short mode")
	}
	d := getPaperDataset(t)

	short, err := d.EventsAbovePercentile(99, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	long, err := d.EventsAbovePercentile(99, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(short) == 0 || len(long) == 0 {
		t.Fatalf("events: %d short, %d long — need both", len(short), len(long))
	}
	shortCDF, err := DeviationCDF(d.Associate(context.Background(), short, 30))
	if err != nil {
		t.Fatal(err)
	}
	longCDF, err := DeviationCDF(d.Associate(context.Background(), long, 30))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: longer storms produce a longer, denser deviation tail.
	if longCDF.TailFraction(5) <= shortCDF.TailFraction(5) {
		t.Errorf("long-storm tail (%v) not denser than short-storm tail (%v)",
			longCDF.TailFraction(5), shortCDF.TailFraction(5))
	}
}

func TestEndToEndFig7SuperStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet run in -short mode")
	}
	weather, err := spaceweather.Generate(spaceweather.May2024())
	if err != nil {
		t.Fatal(err)
	}
	res, err := constellation.Run(context.Background(), constellation.May2024Fleet(7), weather)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(DefaultConfig(), weather)
	b.AddSamples(res.Samples)
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.SuperStorm(res.Start.Add(3*24*time.Hour), res.Start.Add(30*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Paper/Starlink: drag up to five times the usual level.
	if rep.PeakDragRatio < 3 || rep.PeakDragRatio > 8 {
		t.Errorf("peak drag ratio = %.2f, want ~5", rep.PeakDragRatio)
	}
	// No visible satellite loss.
	if rep.MinTrackedRatio < 0.995 {
		t.Errorf("tracked ratio dipped to %.4f, want ~1 (no loss)", rep.MinTrackedRatio)
	}
}

func TestEndToEndFig3TimeSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("full-window pipeline in -short mode")
	}
	d := getPaperDataset(t)

	// #44943: the ~150 km drop after the 3 Mar 2024 storm.
	ts, err := d.TimeSeries(constellation.Fig3SatSharpDrop,
		spaceweather.Fig3StormB.Add(-30*24*time.Hour),
		spaceweather.Fig3StormB.Add(45*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	var before, after, maxBStarAfter float64
	for _, p := range ts.Points {
		if p.At.Before(spaceweather.Fig3StormB) {
			before = p.AltKm
		} else {
			after = p.AltKm
			if p.BStar > maxBStarAfter {
				maxBStarAfter = p.BStar
			}
		}
	}
	drop := before - after
	if drop < 100 || drop > 250 {
		t.Errorf("#44943 drop = %.0f km, want ~150", drop)
	}
	if maxBStarAfter < 1e-3 {
		t.Errorf("#44943 post-storm B* = %v, want a strong drag signature", maxBStarAfter)
	}
}

// TestOneWebGenerality exercises the paper's claim that CosmicDance works
// for any constellation without major code changes: a OneWeb-like fleet at
// 1,200 km runs through the same simulator and pipeline with only
// configuration edits — and, physically, barely feels the storms that move
// Starlink (drag falls off exponentially with altitude).
func TestOneWebGenerality(t *testing.T) {
	weather, err := spaceweather.Generate(spaceweather.Paper2020to2024())
	if err != nil {
		t.Fatal(err)
	}
	cfg := constellation.DefaultConfig()
	cfg.Shells = constellation.OneWebShells()
	cfg.Start = weather.Start()
	cfg.Hours = 365 * 24
	cfg.InitialFleet = 60
	cfg.GrossErrorProb = 0
	cfg.DecommissionPerYear = 0
	fleet, err := constellation.Run(context.Background(), cfg, weather)
	if err != nil {
		t.Fatal(err)
	}
	// Pipeline configuration is the only change: the sanity cut and the
	// operational floor move with the constellation's altitude.
	pc := DefaultConfig()
	pc.MaxValidAltKm = 1300
	pc.MinOperationalAltKm = 1000
	b := NewBuilder(pc, weather)
	b.AddSamples(fleet.Samples)
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Tracks()) != 60 {
		t.Fatalf("tracks = %d, want 60", len(d.Tracks()))
	}
	for _, tr := range d.Tracks() {
		if tr.OperationalAltKm < 1190 || tr.OperationalAltKm > 1210 {
			t.Fatalf("operational altitude = %v, want ~1200", tr.OperationalAltKm)
		}
	}
	// Storm response at 1,200 km: negligible altitude shifts.
	events, err := d.EventsAbovePercentile(95, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Restrict to events inside the simulated year.
	var inWindow []Event
	for _, ev := range events {
		if ev.Epoch().Before(weather.Start().Add(330 * 24 * time.Hour)) {
			inWindow = append(inWindow, ev)
		}
	}
	if len(inWindow) == 0 {
		t.Skip("no high-intensity events in the first simulated year")
	}
	cdf, err := DeviationCDF(d.Associate(context.Background(), inWindow, 30))
	if err != nil {
		t.Fatal(err)
	}
	if cdf.Quantile(0.99) > 3 {
		t.Errorf("p99 deviation at 1200 km = %v km; high orbits should barely move", cdf.Quantile(0.99))
	}
}
