// Package core implements the CosmicDance pipeline — the paper's primary
// contribution. It ingests solar-activity (Dst) data and satellite trajectory
// (TLE) data, orders them in time, cleans the trajectory archive (gross
// tracking errors, orbit-raising windows, already-decaying satellites), and
// establishes happens-closely-after relationships between storms and
// trajectory changes, aggregated into the analyses behind every figure in
// the paper.
package core

import (
	"time"
)

// Config holds the pipeline's cleaning and association parameters. All of
// them are the paper's defaults and all are configurable (the paper calls the
// decay threshold "empirically set; configurable").
type Config struct {
	// MaxValidAltKm: TLEs above this altitude are tracking errors and are
	// removed (paper: "> 650 km", given Starlink's operational range).
	MaxValidAltKm float64
	// MinValidAltKm guards against absurd low fits.
	MinValidAltKm float64
	// DecayFilterKm: a satellite whose altitude immediately before an event
	// differs from its long-term median by more than this has already
	// started decaying and is excluded from that event's analysis (paper:
	// 5 km).
	DecayFilterKm float64
	// RaisingMarginKm: the orbit-raising prefix of a track is removed up to
	// the first point within this margin of the operational altitude.
	RaisingMarginKm float64
	// MinOperationalAltKm: tracks whose operational altitude estimate falls
	// below this never reached a shell (e.g. lost during staging) and are
	// excluded from per-satellite storm analyses.
	MinOperationalAltKm float64
	// BaselineStaleness: how old the "immediately before the event"
	// observation may be before the satellite is skipped for that event.
	BaselineStaleness time.Duration
	// AssociationWindow: how long after a storm a trajectory change still
	// counts as happening "closely after" it.
	AssociationWindow time.Duration
	// Parallelism bounds the worker pool the per-track cleaning pass and
	// the per-(event, track) association sweeps fan out on: 0 means one
	// worker per CPU (GOMAXPROCS), 1 runs sequentially. Results are merged
	// in deterministic order, so every setting produces identical output.
	Parallelism int
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		MaxValidAltKm:       650,
		MinValidAltKm:       100,
		DecayFilterKm:       5,
		RaisingMarginKm:     3,
		MinOperationalAltKm: 450,
		BaselineStaleness:   72 * time.Hour,
		AssociationWindow:   30 * 24 * time.Hour,
	}
}
