package core

import (
	"context"
	"math"
	"testing"
	"time"

	"cosmicdance/internal/units"
)

func TestDecayOnsetsDetection(t *testing.T) {
	d, event := buildStormDataset(t)
	onsets := d.DecayOnsets(20)
	// Sats 4 (decays after the event) and 5 (decaying before it) are the
	// permanent decayers; the dippers (2, 3) recover and must not appear.
	byCat := map[int]DecayOnset{}
	for _, on := range onsets {
		byCat[on.Catalog] = on
	}
	if len(onsets) != 2 {
		t.Fatalf("onsets = %+v, want sats 4 and 5", onsets)
	}
	if _, ok := byCat[4]; !ok {
		t.Error("sat 4 onset missed")
	}
	if _, ok := byCat[5]; !ok {
		t.Error("sat 5 onset missed")
	}
	// Sat 4's onset lands at (or just before) the storm.
	gap := byCat[4].At.Sub(event)
	if gap > 24*time.Hour || gap < -48*time.Hour {
		t.Errorf("sat 4 onset at %v, event at %v", byCat[4].At, event)
	}
	// Rates are the synthetic 5 km/day within tolerance.
	if math.Abs(byCat[4].RateKmPerDay-5) > 1.5 {
		t.Errorf("sat 4 rate = %v, want ~5", byCat[4].RateKmPerDay)
	}
	if byCat[4].DropKm < 100 {
		t.Errorf("sat 4 drop = %v", byCat[4].DropKm)
	}
}

func TestDecayOnsetsIgnoresRecoveredDips(t *testing.T) {
	b := NewBuilder(DefaultConfig(), quietWeather(120))
	dippingTrack(b, 9, 120, 550, 30, 40) // a deep dip that fully recovers
	steadyTrack(b, 1, c0, 120, 550)
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if onsets := d.DecayOnsets(20); len(onsets) != 0 {
		t.Errorf("recovered dip flagged as decay: %+v", onsets)
	}
}

func TestAttributeDecayOnsetsLift(t *testing.T) {
	d, _ := buildStormDataset(t)
	events := d.Events(units.StormThreshold, 1, 0)
	att := d.AttributeDecayOnsets(events, 5*24*time.Hour, 20)
	if att.Onsets != 2 {
		t.Fatalf("onsets = %d", att.Onsets)
	}
	// Sat 4's onset is within 5 days after the storm; sat 5 started before
	// it (background decay).
	if att.CloselyAfter != 1 {
		t.Errorf("closely after = %d, want 1", att.CloselyAfter)
	}
	// The window covers ~5/120 of the span, so one of two onsets inside it
	// is a strong concentration.
	if att.Coverage <= 0 || att.Coverage > 0.1 {
		t.Errorf("coverage = %v", att.Coverage)
	}
	if att.Lift < 5 {
		t.Errorf("lift = %v, want strong association", att.Lift)
	}
}

func TestAttributeDecayOnsetsEmptyInputs(t *testing.T) {
	d, _ := buildStormDataset(t)
	if att := d.AttributeDecayOnsets(nil, 24*time.Hour, 20); att.Lift != 0 || att.CloselyAfter != 0 {
		t.Errorf("no events: %+v", att)
	}
	if att := d.AttributeDecayOnsets(d.Events(units.StormThreshold, 1, 0), 24*time.Hour, 1e9); att.Onsets != 0 {
		t.Errorf("impossible drop threshold found onsets: %+v", att)
	}
}

func TestAttributeDecayOnsetsMergesOverlappingWindows(t *testing.T) {
	// Two events one hour apart must not double count coverage or onsets.
	d, _ := buildStormDataset(t)
	ev := d.Events(units.StormThreshold, 1, 0)[0]
	ev2 := ev
	ev2.Storm.Start = ev.Storm.Start.Add(time.Hour)
	att1 := d.AttributeDecayOnsets([]Event{ev}, 5*24*time.Hour, 20)
	att2 := d.AttributeDecayOnsets([]Event{ev, ev2}, 5*24*time.Hour, 20)
	if att2.CloselyAfter != att1.CloselyAfter {
		t.Errorf("duplicate events changed the count: %d vs %d", att2.CloselyAfter, att1.CloselyAfter)
	}
	if att2.Coverage > att1.Coverage*1.05 {
		t.Errorf("overlapping windows inflated coverage: %v vs %v", att2.Coverage, att1.Coverage)
	}
}
