package core

import (
	"sort"
	"time"
)

// TrackPoint is one cleaned trajectory observation.
type TrackPoint struct {
	Epoch int64 // unix seconds
	AltKm float32
	BStar float32
	Incl  float32
}

// Time returns the observation epoch.
func (p TrackPoint) Time() time.Time { return time.Unix(p.Epoch, 0).UTC() }

// Track is one satellite's cleaned trajectory history.
type Track struct {
	Catalog int
	// Points is the cleaned, epoch-ascending history: gross errors and the
	// orbit-raising prefix removed.
	Points []TrackPoint
	// OperationalAltKm is the satellite's long-term operational altitude
	// (the paper's "median long-term altitude"), estimated from the densest
	// altitude band of the cleaned track.
	OperationalAltKm float64
	// RaisingRemoved counts points dropped as the orbit-raising prefix.
	RaisingRemoved int
}

// At returns the last point at or before t. ok is false when the track has
// no observation yet.
func (tr *Track) At(t time.Time) (TrackPoint, bool) {
	ts := t.Unix()
	i := sort.Search(len(tr.Points), func(i int) bool { return tr.Points[i].Epoch > ts })
	if i == 0 {
		return TrackPoint{}, false
	}
	return tr.Points[i-1], true
}

// Window returns the points with from <= epoch <= to.
func (tr *Track) Window(from, to time.Time) []TrackPoint {
	lo := sort.Search(len(tr.Points), func(i int) bool { return tr.Points[i].Epoch >= from.Unix() })
	hi := sort.Search(len(tr.Points), func(i int) bool { return tr.Points[i].Epoch > to.Unix() })
	if lo >= hi {
		return nil
	}
	return tr.Points[lo:hi]
}

// Span returns the first and last epochs; ok is false for empty tracks.
func (tr *Track) Span() (first, last time.Time, ok bool) {
	if len(tr.Points) == 0 {
		return time.Time{}, time.Time{}, false
	}
	return tr.Points[0].Time(), tr.Points[len(tr.Points)-1].Time(), true
}

// operationalAltitude estimates the long-term operational altitude: the
// median of points within ±bandKm of the 75th-percentile altitude. The upper
// quartile is robust against decay tails (which drag the plain median down)
// while the ±band median is robust against the few gross errors that survive
// the sanity cut.
func operationalAltitude(points []TrackPoint, bandKm float64) float64 {
	if len(points) == 0 {
		return 0
	}
	alts := make([]float64, len(points))
	for i, p := range points {
		alts[i] = float64(p.AltKm)
	}
	sort.Float64s(alts)
	p75 := alts[(len(alts)*3)/4]
	lo := sort.SearchFloat64s(alts, p75-bandKm)
	hi := sort.SearchFloat64s(alts, p75+bandKm)
	band := alts[lo:hi]
	if len(band) == 0 {
		return p75
	}
	return band[len(band)/2]
}
