package core

import (
	"context"
	"math"
	"testing"
	"time"

	"cosmicdance/internal/dst"
	"cosmicdance/internal/units"
)

// stormyWeather returns 120 days of quiet readings with one storm: a ramp to
// peak at day 30 noon and linear recovery, durations per the hours parameter.
func stormyWeather(days int, peak float64, stormHours int) *dst.Index {
	vals := make([]float64, days*24)
	for i := range vals {
		vals[i] = -10
	}
	onset := 30*24 + 12
	for k := 0; k < stormHours; k++ {
		vals[onset+k] = peak
	}
	return dst.FromValues(c0, vals)
}

// dippingTrack emits a track that dips dipKm below alt over the 10 days after
// eventDay and then recovers (a hump-shaped response).
func dippingTrack(b *Builder, cat int, days int, alt, dipKm float64, eventDay int) {
	for i := 0; i < days*2; i++ {
		at := c0.Add(time.Duration(i) * 12 * time.Hour)
		day := float64(i) / 2
		a := alt
		switch {
		case day >= float64(eventDay) && day < float64(eventDay+10):
			a = alt - dipKm*(day-float64(eventDay))/10
		case day >= float64(eventDay+10) && day < float64(eventDay+20):
			a = alt - dipKm*(1-(day-float64(eventDay+10))/10)
		}
		addObs(b, cat, at, a, 4e-4)
	}
}

// decayingTrack emits a track that starts permanent decay at eventDay.
func decayingTrack(b *Builder, cat int, days int, alt, ratePerDay float64, eventDay int) {
	for i := 0; i < days*2; i++ {
		at := c0.Add(time.Duration(i) * 12 * time.Hour)
		day := float64(i) / 2
		a := alt
		if day >= float64(eventDay) {
			a = alt - ratePerDay*(day-float64(eventDay))
		}
		if a < 180 {
			break
		}
		bstar := 4e-4
		if day >= float64(eventDay) {
			bstar = 4e-4 * (1 + (day-float64(eventDay))*0.2)
		}
		addObs(b, cat, at, a, bstar)
	}
}

func buildStormDataset(t *testing.T) (*Dataset, time.Time) {
	t.Helper()
	weather := stormyWeather(120, -120, 8)
	event := c0.Add(30*24*time.Hour + 12*time.Hour)
	b := NewBuilder(DefaultConfig(), weather)
	steadyTrack(b, 1, c0, 120, 550)      // unaffected
	dippingTrack(b, 2, 120, 550, 8, 30)  // dips 8 km, recovers
	dippingTrack(b, 3, 120, 550, 4, 30)  // dips 4 km, recovers
	decayingTrack(b, 4, 120, 550, 5, 30) // permanent decay after event
	decayingTrack(b, 5, 120, 550, 5, 10) // already decaying BEFORE event
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return d, event
}

func TestEventsSelection(t *testing.T) {
	d, _ := buildStormDataset(t)
	evs := d.Events(units.StormThreshold, 1, 0)
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1", len(evs))
	}
	if evs[0].Storm.Peak != -120 || evs[0].Storm.Hours != 8 {
		t.Errorf("event = %+v", evs[0].Storm)
	}
	// Intensity filter.
	if got := d.Events(-150, 1, 0); len(got) != 0 {
		t.Errorf("deep filter matched %d", len(got))
	}
	// Duration filters.
	if got := d.Events(units.StormThreshold, 9, 0); len(got) != 0 {
		t.Errorf("min-duration filter matched %d", len(got))
	}
	if got := d.Events(units.StormThreshold, 1, 7); len(got) != 0 {
		t.Errorf("max-duration filter matched %d", len(got))
	}
}

func TestEventsAbovePercentile(t *testing.T) {
	d, _ := buildStormDataset(t)
	evs, err := d.EventsAbovePercentile(95, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Fatalf("events above p95 = %d, want 1", len(evs))
	}
}

func TestQuietEpochs(t *testing.T) {
	d, _ := buildStormDataset(t)
	epochs, err := d.QuietEpochs(80, 15, 3, 7*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) == 0 || len(epochs) > 3 {
		t.Fatalf("quiet epochs = %d", len(epochs))
	}
	// Every quiet window must be storm-free for its full 15 days.
	for _, e := range epochs {
		slice := d.Weather().Slice(e, e.Add(15*24*time.Hour))
		if min, _ := slice.Min(); min <= -50 {
			t.Errorf("quiet epoch %v contains a storm (min %v)", e, min)
		}
	}
	// Spacing respected.
	for i := 1; i < len(epochs); i++ {
		if epochs[i].Sub(epochs[i-1]) < 7*24*time.Hour {
			t.Error("spacing violated")
		}
	}
}

func TestQuietEpochsNoneAvailable(t *testing.T) {
	// A storm hour every 5 days: no 15-day quiet window exists.
	vals := make([]float64, 60*24)
	for i := range vals {
		vals[i] = -10
		if i%(5*24) == 60 {
			vals[i] = -80
		}
	}
	b := NewBuilder(DefaultConfig(), dst.FromValues(c0, vals))
	steadyTrack(b, 1, c0, 60, 550)
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.QuietEpochs(80, 15, 5, time.Hour); err == nil {
		t.Error("quiet epochs found in a permanently stormy index")
	}
}

func TestWindowHumpSelection(t *testing.T) {
	d, event := buildStormDataset(t)
	wa, err := d.Window(context.Background(), event, WindowOptions{Days: 30, RequireHumpShape: true})
	if err != nil {
		t.Fatal(err)
	}
	// Sats 2 and 3 (dip + recover) qualify. Sat 1 is flat (no hump), sat 4
	// decays permanently (end deviation high), sat 5 was already decaying.
	if len(wa.Curves) != 2 {
		t.Fatalf("curves = %d, want 2 (got catalogs %v)", len(wa.Curves), catalogsOf(wa))
	}
	if wa.SkippedDecaying != 1 {
		t.Errorf("skipped decaying = %d, want 1 (sat 5)", wa.SkippedDecaying)
	}
	if wa.SkippedShape < 2 {
		t.Errorf("skipped shape = %d, want >= 2 (sats 1 and 4)", wa.SkippedShape)
	}
	// The median curve peaks mid-window at a few km.
	maxMedian := 0.0
	for _, v := range wa.MedianKm {
		if !math.IsNaN(v) && v > maxMedian {
			maxMedian = v
		}
	}
	if maxMedian < 3 || maxMedian > 10 {
		t.Errorf("peak median deviation = %v km, want ~6", maxMedian)
	}
	// Day 0 starts near zero.
	if wa.MedianKm[0] > 2 {
		t.Errorf("day-0 median = %v", wa.MedianKm[0])
	}
}

func catalogsOf(wa *WindowAnalysis) []int {
	var out []int
	for _, c := range wa.Curves {
		out = append(out, c.Catalog)
	}
	return out
}

func TestWindowWithoutHumpKeepsFlatSats(t *testing.T) {
	d, event := buildStormDataset(t)
	wa, err := d.Window(context.Background(), event, WindowOptions{Days: 15})
	if err != nil {
		t.Fatal(err)
	}
	// Without the shape selection, everyone except the already-decaying sat
	// contributes.
	if len(wa.Curves) != 4 {
		t.Fatalf("curves = %d, want 4", len(wa.Curves))
	}
	if _, err := d.Window(context.Background(), event, WindowOptions{Days: 0}); err == nil {
		t.Error("Days=0 accepted")
	}
}

func TestAssociateAppliesDecayFilter(t *testing.T) {
	d, _ := buildStormDataset(t)
	events := d.Events(units.StormThreshold, 1, 0)
	devs := d.Associate(context.Background(), events, 30)
	// Sat 5 (already decaying) must be absent.
	for _, dv := range devs {
		if dv.Catalog == 5 {
			t.Fatal("already-decaying satellite associated")
		}
	}
	if len(devs) != 4 {
		t.Fatalf("associations = %d, want 4", len(devs))
	}
	byCat := map[int]Deviation{}
	for _, dv := range devs {
		byCat[dv.Catalog] = dv
	}
	// The permanent decayer shows the largest deviation (~150 km at 5 km/day
	// over 30 days).
	if byCat[4].MaxDevKm < 100 {
		t.Errorf("decayer deviation = %v, want > 100", byCat[4].MaxDevKm)
	}
	// The unaffected satellite moves by noise only.
	if byCat[1].MaxDevKm > 1 {
		t.Errorf("steady sat deviation = %v", byCat[1].MaxDevKm)
	}
	// The 8 km dipper lands in between.
	if byCat[2].MaxDevKm < 6 || byCat[2].MaxDevKm > 10 {
		t.Errorf("dipper deviation = %v, want ~8", byCat[2].MaxDevKm)
	}
	// Drag change: the decayer's B* rose.
	if byCat[4].MaxDrag <= 0 {
		t.Errorf("decayer drag change = %v", byCat[4].MaxDrag)
	}
}

func TestAssociateQuietIsCalm(t *testing.T) {
	d, _ := buildStormDataset(t)
	epochs, err := d.QuietEpochs(80, 15, 2, 10*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	devs := d.AssociateQuiet(context.Background(), epochs, 15)
	if len(devs) == 0 {
		t.Fatal("no quiet associations")
	}
	cdf, err := DeviationCDF(devs)
	if err != nil {
		t.Fatal(err)
	}
	// Quiet epochs that precede the storm include sats that will decay later
	// (within the window) — accept a tail but the bulk must be tiny.
	if cdf.Quantile(0.5) > 2 {
		t.Errorf("quiet median deviation = %v", cdf.Quantile(0.5))
	}
}

func TestDeviationAndDragCDFs(t *testing.T) {
	devs := []Deviation{
		{MaxDevKm: 1, MaxDrag: 0.0001},
		{MaxDevKm: 10, MaxDrag: 0.001},
		{MaxDevKm: 163, MaxDrag: 0.01},
	}
	dc, err := DeviationCDF(devs)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Max() != 163 || dc.N() != 3 {
		t.Errorf("deviation CDF = max %v n %d", dc.Max(), dc.N())
	}
	gc, err := DragChangeCDF(devs)
	if err != nil {
		t.Fatal(err)
	}
	if gc.Max() != 0.01 {
		t.Errorf("drag CDF max = %v", gc.Max())
	}
	if _, err := DeviationCDF(nil); err == nil {
		t.Error("empty deviations accepted")
	}
}

func TestSuperStormReport(t *testing.T) {
	// Build a 10-day window with a big storm on day 5 and drag response.
	days := 10
	vals := make([]float64, days*24)
	for i := range vals {
		vals[i] = -10
	}
	for k := 0; k < 12; k++ {
		vals[5*24+k] = -400
	}
	weather := dst.FromValues(c0, vals)
	b := NewBuilder(DefaultConfig(), weather)
	for cat := 1; cat <= 20; cat++ {
		for i := 0; i < days*2; i++ {
			at := c0.Add(time.Duration(i) * 12 * time.Hour)
			bstar := 4e-4
			if i/2 == 5 { // storm day: 5x drag
				bstar = 2e-3
			}
			addObs(b, cat, at, 550, bstar)
		}
	}
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.SuperStorm(c0, c0.Add(time.Duration(days)*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Drag) != days || len(rep.Tracked) != days {
		t.Fatalf("days = %d/%d", len(rep.Drag), len(rep.Tracked))
	}
	if rep.PeakDragRatio < 4 || rep.PeakDragRatio > 6 {
		t.Errorf("peak drag ratio = %v, want ~5", rep.PeakDragRatio)
	}
	if rep.MinTrackedRatio != 1 {
		t.Errorf("tracked ratio = %v, want 1 (no loss)", rep.MinTrackedRatio)
	}
	if len(rep.Dst) != days*24 {
		t.Errorf("dst trace = %d hours", len(rep.Dst))
	}
	// Validation.
	if _, err := d.SuperStorm(c0, c0); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := d.SuperStorm(c0, c0.Add(24*time.Hour)); err == nil {
		t.Error("1-day window accepted")
	}
}

func TestTimeSeries(t *testing.T) {
	d, event := buildStormDataset(t)
	ts, err := d.TimeSeries(4, event.Add(-10*24*time.Hour), event.Add(20*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Points) == 0 {
		t.Fatal("no points")
	}
	// Dst context is attached.
	sawStorm := false
	for _, p := range ts.Points {
		if p.Dst <= -100 {
			sawStorm = true
		}
	}
	if !sawStorm {
		t.Error("storm hours not visible in merged series")
	}
	// Altitude declines across the window for the decayer.
	if ts.Points[0].AltKm <= ts.Points[len(ts.Points)-1].AltKm {
		t.Error("decay not visible")
	}
	if _, err := d.TimeSeries(99, c0, c0.Add(time.Hour)); err == nil {
		t.Error("unknown catalog accepted")
	}
	if _, err := d.TimeSeries(4, c0.Add(-100*24*time.Hour), c0.Add(-99*24*time.Hour)); err == nil {
		t.Error("empty window accepted")
	}
}

func TestMergeCloseEvents(t *testing.T) {
	mk := func(hoursFromStart int, peak units.NanoTesla, dur int) Event {
		return Event{Storm: dst.Storm{
			Start: c0.Add(time.Duration(hoursFromStart) * time.Hour),
			Peak:  peak, Hours: dur,
			PeakAt: c0.Add(time.Duration(hoursFromStart+1) * time.Hour),
		}}
	}
	events := []Event{
		mk(0, -80, 3),
		mk(24, -150, 5), // within 3 days of the first: merged, deeper peak kept
		mk(40, -60, 2),  // still within 3 days of the FIRST kept event: merged
		mk(200, -90, 4), // far away: kept
	}
	merged := MergeCloseEvents(events, 72*time.Hour)
	if len(merged) != 2 {
		t.Fatalf("merged = %d events, want 2", len(merged))
	}
	if merged[0].Storm.Peak != -150 {
		t.Errorf("merged peak = %v, want -150", merged[0].Storm.Peak)
	}
	// The merged event's span covers the last folded storm.
	if merged[0].Storm.End().Before(c0.Add(42 * time.Hour)) {
		t.Errorf("merged end = %v", merged[0].Storm.End())
	}
	if !merged[1].Storm.Start.Equal(c0.Add(200 * time.Hour)) {
		t.Errorf("second event = %+v", merged[1].Storm)
	}
	if got := MergeCloseEvents(nil, time.Hour); got != nil {
		t.Errorf("nil events = %v", got)
	}
	// Merging reduces association double counting.
	d, _ := buildStormDataset(t)
	evs := d.Events(units.StormThreshold, 1, 0)
	if len(MergeCloseEvents(evs, 24*time.Hour)) > len(evs) {
		t.Error("merge grew the event list")
	}
}
