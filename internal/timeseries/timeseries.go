// Package timeseries provides the time-ordered containers CosmicDance uses to
// merge multi-modal data (hourly Dst readings and irregular TLE epochs) into
// one representation, as described in the paper's "Ordering in time" step.
package timeseries

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Sample is one timestamped observation.
type Sample struct {
	At    time.Time
	Value float64
}

// Series is an append-friendly, sortable collection of samples. Unlike
// Hourly, samples may be irregularly spaced (TLE epochs are refreshed
// anywhere between <1 and 154 hours apart).
type Series struct {
	samples []Sample
	sorted  bool
}

// NewSeries creates an empty series with capacity for n samples.
func NewSeries(n int) *Series { return &Series{samples: make([]Sample, 0, n)} }

// Add appends a sample. Samples may arrive out of order; the series sorts
// lazily on first read.
func (s *Series) Add(at time.Time, v float64) {
	if s.sorted && len(s.samples) > 0 && at.Before(s.samples[len(s.samples)-1].At) {
		s.sorted = false
	}
	s.samples = append(s.samples, Sample{At: at, Value: v})
	if len(s.samples) == 1 {
		s.sorted = true
	}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.samples) }

func (s *Series) ensureSorted() {
	if s.sorted {
		return
	}
	sort.SliceStable(s.samples, func(i, j int) bool { return s.samples[i].At.Before(s.samples[j].At) })
	s.sorted = true
}

// Samples returns the samples in time order. The returned slice is shared;
// callers must not modify it.
func (s *Series) Samples() []Sample {
	s.ensureSorted()
	return s.samples
}

// Values returns just the values in time order.
func (s *Series) Values() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.samples))
	for i, sm := range s.samples {
		out[i] = sm.Value
	}
	return out
}

// Span returns the first and last timestamps. ok is false for empty series.
func (s *Series) Span() (first, last time.Time, ok bool) {
	if len(s.samples) == 0 {
		return time.Time{}, time.Time{}, false
	}
	s.ensureSorted()
	return s.samples[0].At, s.samples[len(s.samples)-1].At, true
}

// At returns the latest sample at or before t (the "value in effect" at t),
// which is how irregular TLE data is aligned against hourly Dst data.
// ok is false when t precedes every sample.
func (s *Series) At(t time.Time) (Sample, bool) {
	s.ensureSorted()
	// First index whose timestamp is after t.
	i := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].At.After(t) })
	if i == 0 {
		return Sample{}, false
	}
	return s.samples[i-1], true
}

// Window returns the samples with from <= t <= to, in time order.
func (s *Series) Window(from, to time.Time) []Sample {
	s.ensureSorted()
	lo := sort.Search(len(s.samples), func(i int) bool { return !s.samples[i].At.Before(from) })
	hi := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].At.After(to) })
	if lo >= hi {
		return nil
	}
	return s.samples[lo:hi]
}

// Hourly is a dense series with exactly one value per hour starting at Start
// (which is truncated to the hour, UTC). It is the natural container for the
// WDC Kyoto Dst index.
type Hourly struct {
	Start  time.Time
	values []float64
}

// NewHourly allocates an hourly series of n hours starting at start.
func NewHourly(start time.Time, n int) *Hourly {
	return &Hourly{Start: start.UTC().Truncate(time.Hour), values: make([]float64, n)}
}

// FromValues wraps an existing value slice (not copied).
func FromValues(start time.Time, values []float64) *Hourly {
	return &Hourly{Start: start.UTC().Truncate(time.Hour), values: values}
}

// Len returns the number of hours in the series.
func (h *Hourly) Len() int { return len(h.values) }

// End returns the timestamp one hour past the final sample.
func (h *Hourly) End() time.Time { return h.Start.Add(time.Duration(len(h.values)) * time.Hour) }

// Values returns the backing values. Callers must not resize it.
func (h *Hourly) Values() []float64 { return h.values }

// TimeAt returns the timestamp of index i.
func (h *Hourly) TimeAt(i int) time.Time { return h.Start.Add(time.Duration(i) * time.Hour) }

// Index returns the slot for t, and whether t falls inside the series.
func (h *Hourly) Index(t time.Time) (int, bool) {
	i := int(t.UTC().Sub(h.Start) / time.Hour)
	return i, i >= 0 && i < len(h.values)
}

// ValueAt returns the reading covering time t.
func (h *Hourly) ValueAt(t time.Time) (float64, bool) {
	i, ok := h.Index(t)
	if !ok {
		return 0, false
	}
	return h.values[i], true
}

// Set stores v at index i.
func (h *Hourly) Set(i int, v float64) { h.values[i] = v }

// Slice returns the hourly sub-series covering [from, to). Both bounds are
// clamped to the series extent.
func (h *Hourly) Slice(from, to time.Time) *Hourly {
	lo, _ := h.Index(from)
	hi, _ := h.Index(to)
	if lo < 0 {
		lo = 0
	}
	if hi > len(h.values) {
		hi = len(h.values)
	}
	if lo >= hi {
		return &Hourly{Start: h.Start.Add(time.Duration(lo) * time.Hour)}
	}
	return &Hourly{Start: h.TimeAt(lo), values: h.values[lo:hi]}
}

// ErrMisaligned is returned when two hourly series cannot be merged because
// their hour grids differ.
var ErrMisaligned = errors.New("timeseries: hourly series are not hour-aligned")

// Append extends h with the contents of other, which must start exactly where
// h ends. This is how incremental Dst fetches are stitched together.
func (h *Hourly) Append(other *Hourly) error {
	if other.Len() == 0 {
		return nil
	}
	if h.Len() == 0 {
		h.Start = other.Start
		h.values = append(h.values, other.values...)
		return nil
	}
	if !other.Start.Equal(h.End()) {
		return fmt.Errorf("%w: have end %v, append start %v", ErrMisaligned, h.End(), other.Start)
	}
	h.values = append(h.values, other.values...)
	return nil
}

// MergedPoint is one row of the merged multi-modal representation: the hourly
// context value plus the (optional) irregular observation in effect then.
type MergedPoint struct {
	At      time.Time
	Context float64 // e.g. Dst reading for this hour
	Obs     float64 // e.g. satellite altitude in effect at this hour
	HasObs  bool
}

// Merge aligns an irregular series against an hourly context series,
// producing one MergedPoint per hour. Observations carry forward (the last
// TLE remains "in effect" until refreshed), matching the paper's single
// time-series representation.
func Merge(ctx *Hourly, obs *Series) []MergedPoint {
	out := make([]MergedPoint, ctx.Len())
	samples := obs.Samples()
	j := -1 // index of the last observation at or before the current hour
	for i := range out {
		t := ctx.TimeAt(i)
		for j+1 < len(samples) && !samples[j+1].At.After(t) {
			j++
		}
		mp := MergedPoint{At: t, Context: ctx.values[i]}
		if j >= 0 {
			mp.Obs = samples[j].Value
			mp.HasObs = true
		}
		out[i] = mp
	}
	return out
}
