package timeseries

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSeriesSortsLazily(t *testing.T) {
	s := NewSeries(4)
	s.Add(t0.Add(2*time.Hour), 2)
	s.Add(t0, 0)
	s.Add(t0.Add(time.Hour), 1)
	vals := s.Values()
	for i, v := range vals {
		if v != float64(i) {
			t.Fatalf("values = %v, want ascending", vals)
		}
	}
}

func TestSeriesAt(t *testing.T) {
	s := NewSeries(0)
	s.Add(t0, 10)
	s.Add(t0.Add(12*time.Hour), 20)

	if _, ok := s.At(t0.Add(-time.Minute)); ok {
		t.Error("At before first sample should report !ok")
	}
	if sm, ok := s.At(t0); !ok || sm.Value != 10 {
		t.Errorf("At(t0) = %v, %v", sm, ok)
	}
	if sm, ok := s.At(t0.Add(6 * time.Hour)); !ok || sm.Value != 10 {
		t.Errorf("At(t0+6h) = %v, %v; want carry-forward of 10", sm, ok)
	}
	if sm, ok := s.At(t0.Add(13 * time.Hour)); !ok || sm.Value != 20 {
		t.Errorf("At(t0+13h) = %v, %v", sm, ok)
	}
}

func TestSeriesWindow(t *testing.T) {
	s := NewSeries(0)
	for i := 0; i < 10; i++ {
		s.Add(t0.Add(time.Duration(i)*time.Hour), float64(i))
	}
	w := s.Window(t0.Add(2*time.Hour), t0.Add(5*time.Hour))
	if len(w) != 4 {
		t.Fatalf("window length = %d, want 4 (inclusive bounds)", len(w))
	}
	if w[0].Value != 2 || w[3].Value != 5 {
		t.Errorf("window = %v", w)
	}
	if got := s.Window(t0.Add(100*time.Hour), t0.Add(200*time.Hour)); got != nil {
		t.Errorf("empty window = %v, want nil", got)
	}
}

func TestSeriesSpan(t *testing.T) {
	s := NewSeries(0)
	if _, _, ok := s.Span(); ok {
		t.Error("empty series should have no span")
	}
	s.Add(t0.Add(time.Hour), 1)
	s.Add(t0, 0)
	first, last, ok := s.Span()
	if !ok || !first.Equal(t0) || !last.Equal(t0.Add(time.Hour)) {
		t.Errorf("span = %v..%v, %v", first, last, ok)
	}
}

func TestSeriesOrderProperty(t *testing.T) {
	f := func(offsets []int16) bool {
		s := NewSeries(len(offsets))
		for _, o := range offsets {
			s.Add(t0.Add(time.Duration(o)*time.Minute), float64(o))
		}
		samples := s.Samples()
		return sort.SliceIsSorted(samples, func(i, j int) bool {
			return samples[i].At.Before(samples[j].At)
		})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHourlyBasics(t *testing.T) {
	h := NewHourly(t0.Add(30*time.Minute), 24) // start truncates to the hour
	if !h.Start.Equal(t0) {
		t.Errorf("Start = %v, want truncated %v", h.Start, t0)
	}
	if h.Len() != 24 {
		t.Errorf("Len = %d", h.Len())
	}
	if !h.End().Equal(t0.Add(24 * time.Hour)) {
		t.Errorf("End = %v", h.End())
	}
	h.Set(3, -63)
	if v, ok := h.ValueAt(t0.Add(3*time.Hour + 45*time.Minute)); !ok || v != -63 {
		t.Errorf("ValueAt = %v, %v", v, ok)
	}
	if _, ok := h.ValueAt(t0.Add(-time.Hour)); ok {
		t.Error("ValueAt before start should be !ok")
	}
	if _, ok := h.ValueAt(t0.Add(24 * time.Hour)); ok {
		t.Error("ValueAt at End should be !ok")
	}
	if !h.TimeAt(5).Equal(t0.Add(5 * time.Hour)) {
		t.Errorf("TimeAt(5) = %v", h.TimeAt(5))
	}
}

func TestHourlySlice(t *testing.T) {
	h := NewHourly(t0, 48)
	for i := 0; i < 48; i++ {
		h.Set(i, float64(i))
	}
	sub := h.Slice(t0.Add(10*time.Hour), t0.Add(20*time.Hour))
	if sub.Len() != 10 {
		t.Fatalf("sub len = %d, want 10", sub.Len())
	}
	if sub.Values()[0] != 10 || sub.Values()[9] != 19 {
		t.Errorf("sub values = %v", sub.Values())
	}
	// Clamping.
	all := h.Slice(t0.Add(-100*time.Hour), t0.Add(1000*time.Hour))
	if all.Len() != 48 {
		t.Errorf("clamped slice len = %d, want 48", all.Len())
	}
	empty := h.Slice(t0.Add(20*time.Hour), t0.Add(10*time.Hour))
	if empty.Len() != 0 {
		t.Errorf("inverted slice len = %d, want 0", empty.Len())
	}
}

func TestHourlyAppend(t *testing.T) {
	h := NewHourly(t0, 0)
	a := FromValues(t0, []float64{1, 2})
	b := FromValues(t0.Add(2*time.Hour), []float64{3})
	if err := h.Append(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Append(b); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 3 || h.Values()[2] != 3 {
		t.Errorf("after append: len=%d values=%v", h.Len(), h.Values())
	}
	// Gap → error.
	c := FromValues(t0.Add(10*time.Hour), []float64{9})
	if err := h.Append(c); !errors.Is(err, ErrMisaligned) {
		t.Errorf("gap append err = %v, want ErrMisaligned", err)
	}
	// Empty append is a no-op.
	if err := h.Append(NewHourly(t0, 0)); err != nil {
		t.Errorf("empty append err = %v", err)
	}
}

func TestMergeCarriesForward(t *testing.T) {
	h := NewHourly(t0, 6)
	for i := range h.Values() {
		h.Set(i, float64(-10*i))
	}
	obs := NewSeries(0)
	obs.Add(t0.Add(90*time.Minute), 550) // first TLE arrives mid hour 1
	obs.Add(t0.Add(4*time.Hour), 540)

	m := Merge(h, obs)
	if len(m) != 6 {
		t.Fatalf("merged length = %d", len(m))
	}
	if m[0].HasObs || m[1].HasObs {
		t.Error("hours before the first observation must have no obs")
	}
	if !m[2].HasObs || m[2].Obs != 550 {
		t.Errorf("hour 2 = %+v, want obs 550 carried forward", m[2])
	}
	if !m[3].HasObs || m[3].Obs != 550 {
		t.Errorf("hour 3 = %+v", m[3])
	}
	if !m[4].HasObs || m[4].Obs != 540 {
		t.Errorf("hour 4 = %+v, want refreshed 540", m[4])
	}
	if m[5].Obs != 540 || m[5].Context != -50 {
		t.Errorf("hour 5 = %+v", m[5])
	}
}

func TestMergeEmptyObs(t *testing.T) {
	h := NewHourly(t0, 3)
	m := Merge(h, NewSeries(0))
	for _, p := range m {
		if p.HasObs {
			t.Fatalf("point %+v claims an observation", p)
		}
	}
}

func TestMergeMatchesAtProperty(t *testing.T) {
	// Merge's carry-forward must agree with Series.At for every hour.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 24
		h := NewHourly(t0, n)
		obs := NewSeries(0)
		for i := 0; i < rng.Intn(10); i++ {
			obs.Add(t0.Add(time.Duration(rng.Intn(n*60))*time.Minute), rng.Float64()*100)
		}
		m := Merge(h, obs)
		for i, p := range m {
			sm, ok := obs.At(h.TimeAt(i))
			if ok != p.HasObs {
				t.Fatalf("trial %d hour %d: HasObs=%v but At ok=%v", trial, i, p.HasObs, ok)
			}
			if ok && sm.Value != p.Obs {
				t.Fatalf("trial %d hour %d: obs=%v At=%v", trial, i, p.Obs, sm.Value)
			}
		}
	}
}
