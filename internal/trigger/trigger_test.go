package trigger

import (
	"testing"
	"time"

	"cosmicdance/internal/dst"
	"cosmicdance/internal/units"
)

var tr0 = time.Date(2024, 5, 10, 0, 0, 0, 0, time.UTC)

func feedSeries(t *testing.T, e *Engine, vals []float64) []Event {
	t.Helper()
	var out []Event
	e.Subscribe(func(ev Event) { out = append(out, ev) })
	for i, v := range vals {
		e.Feed(tr0.Add(time.Duration(i)*time.Hour), units.NanoTesla(v))
	}
	return out
}

func TestNewValidatesLevels(t *testing.T) {
	if _, err := New(-50, -60); err == nil {
		t.Error("clear deeper than onset accepted")
	}
	if _, err := New(-50, -50); err == nil {
		t.Error("clear equal to onset accepted")
	}
	if _, err := New(-50, -40); err != nil {
		t.Errorf("valid levels rejected: %v", err)
	}
}

func TestOnsetAndClear(t *testing.T) {
	e, err := New(-50, -40)
	if err != nil {
		t.Fatal(err)
	}
	events := feedSeries(t, e, []float64{-10, -55, -80, -45, -30, -10})
	if len(events) != 2 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Kind != Onset || events[0].Reading != -55 {
		t.Errorf("onset = %+v", events[0])
	}
	// -45 is between clear (-40) and onset: hysteresis keeps the storm
	// active; it clears at -30.
	if events[1].Kind != Cleared || events[1].Reading != -30 {
		t.Errorf("cleared = %+v", events[1])
	}
	if events[1].Peak != -80 {
		t.Errorf("cleared peak = %v, want -80", events[1].Peak)
	}
	if e.Active() {
		t.Error("engine still active after clear")
	}
}

func TestHysteresisPreventsFlapping(t *testing.T) {
	e, err := New(-50, -40)
	if err != nil {
		t.Fatal(err)
	}
	// Oscillation between -52 and -45 must produce a single onset.
	events := feedSeries(t, e, []float64{-52, -45, -52, -45, -52, -45})
	onsets := 0
	for _, ev := range events {
		if ev.Kind == Onset {
			onsets++
		}
	}
	if onsets != 1 {
		t.Errorf("onsets = %d, want 1 (hysteresis)", onsets)
	}
}

func TestEscalationThroughCategories(t *testing.T) {
	e, err := New(-50, -40)
	if err != nil {
		t.Fatal(err)
	}
	events := feedSeries(t, e, []float64{-60, -120, -110, -250, -380, -100, -10})
	var kinds []Kind
	var cats []units.GScale
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
		cats = append(cats, ev.Category)
	}
	// Onset (G1), escalate to G2, G4, G5, then cleared.
	want := []Kind{Onset, Escalation, Escalation, Escalation, Cleared}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if cats[1] != units.G2Moderate || cats[2] != units.G4Severe || cats[3] != units.G5Extreme {
		t.Errorf("escalation categories = %v", cats)
	}
	// The cleared event carries the storm's category at peak.
	if cats[4] != units.G5Extreme {
		t.Errorf("cleared category = %v, want extreme", cats[4])
	}
}

func TestMinGapRefractory(t *testing.T) {
	e, err := New(-50, -40)
	if err != nil {
		t.Fatal(err)
	}
	e.MinGap = 6 * time.Hour
	// Storm, clear, then a dip 2 hours later (suppressed), then a dip 10
	// hours later (fires).
	events := feedSeries(t, e, []float64{
		-60, -20, // onset + cleared
		-10, -60, -20, // dip at +2h after clear: suppressed entirely
		-10, -10, -10, -10, -10, -10, -10, -60, // +10h: fires
	})
	onsets := 0
	for _, ev := range events {
		if ev.Kind == Onset {
			onsets++
		}
	}
	if onsets != 2 {
		t.Errorf("onsets = %d, want 2 (one suppressed by MinGap)", onsets)
	}
}

func TestKindString(t *testing.T) {
	if Onset.String() != "onset" || Escalation.String() != "escalation" || Cleared.String() != "cleared" {
		t.Error("kind strings")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind = %q", Kind(9).String())
	}
}

func TestReplayMatchesStormCatalog(t *testing.T) {
	// Replaying an index must fire exactly one onset per detected storm
	// (with no MinGap and clear == one step above onset behaviourally
	// aligned with run detection).
	vals := []float64{-10, -60, -70, -10, -10, -90, -10, -55, -58, -10}
	x := dst.FromValues(tr0, vals)
	e, err := New(units.StormThreshold, -49.99)
	if err != nil {
		t.Fatal(err)
	}
	events := e.Replay(x)
	onsets := 0
	for _, ev := range events {
		if ev.Kind == Onset {
			onsets++
		}
	}
	storms := x.Storms(units.StormThreshold)
	if onsets != len(storms) {
		t.Errorf("onsets = %d, storms = %d", onsets, len(storms))
	}
	// Every storm also cleared within the series.
	cleared := 0
	for _, ev := range events {
		if ev.Kind == Cleared {
			cleared++
		}
	}
	if cleared != onsets {
		t.Errorf("cleared = %d, onsets = %d", cleared, onsets)
	}
}

func TestMay2024ScenarioTriggers(t *testing.T) {
	// The super-storm must produce an onset that escalates to extreme.
	weather := dst.FromValues(tr0, []float64{-10, -80, -200, -412, -300, -150, -45, -20})
	e, err := New(units.StormThreshold, -30)
	if err != nil {
		t.Fatal(err)
	}
	events := e.Replay(weather)
	sawExtreme := false
	for _, ev := range events {
		if ev.Kind == Escalation && ev.Category == units.G5Extreme {
			sawExtreme = true
		}
	}
	if !sawExtreme {
		t.Errorf("no extreme escalation in %v", events)
	}
	final := events[len(events)-1]
	if final.Kind != Cleared || final.Peak != -412 {
		t.Errorf("final event = %+v", final)
	}
}
