// Package trigger turns a Dst stream into discrete storm events for
// downstream consumers — the paper's §6 integration, where CosmicDance feeds
// storm signals into LEOScope's trigger-based measurement scheduler. The
// engine is a small hysteresis state machine: it fires an Onset when
// intensity crosses the storm threshold, Escalations as the storm deepens
// through G-scale categories, and a Cleared when intensity recovers past the
// (less intense) clear level, with a configurable refractory gap against
// flapping.
package trigger

import (
	"fmt"
	"time"

	"cosmicdance/internal/dst"
	"cosmicdance/internal/units"
)

// Kind labels a trigger event.
type Kind int

// Event kinds.
const (
	// Onset: intensity crossed the storm threshold.
	Onset Kind = iota
	// Escalation: an active storm deepened into a higher G-scale category.
	Escalation
	// Cleared: intensity recovered past the clear level.
	Cleared
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Onset:
		return "onset"
	case Escalation:
		return "escalation"
	case Cleared:
		return "cleared"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one fired trigger.
type Event struct {
	Kind     Kind
	At       time.Time
	Reading  units.NanoTesla
	Category units.GScale
	// Peak is the deepest reading of the storm so far (Cleared events carry
	// the storm's final peak).
	Peak units.NanoTesla
}

// Handler consumes trigger events.
type Handler func(Event)

// Engine is the hysteresis state machine. Construct with New.
type Engine struct {
	onset units.NanoTesla
	clear units.NanoTesla
	// MinGap suppresses a new Onset within this duration after a Cleared,
	// so a storm's ragged tail does not schedule duplicate campaigns.
	MinGap time.Duration

	handlers []Handler

	active     bool
	peak       units.NanoTesla
	category   units.GScale
	clearedAt  time.Time
	hasCleared bool
}

// New builds an engine firing at onset (e.g. −50 nT) and clearing at clear.
// clear must be less intense (greater) than onset.
func New(onset, clear units.NanoTesla) (*Engine, error) {
	if clear <= onset {
		return nil, fmt.Errorf("trigger: clear level %v must be less intense than onset %v", clear, onset)
	}
	return &Engine{onset: onset, clear: clear}, nil
}

// Subscribe registers a handler for all future events.
func (e *Engine) Subscribe(h Handler) { e.handlers = append(e.handlers, h) }

// Active reports whether a storm is currently in progress.
func (e *Engine) Active() bool { return e.active }

func (e *Engine) emit(ev Event) {
	for _, h := range e.handlers {
		h(ev)
	}
}

// Feed advances the state machine with one reading. Readings must arrive in
// time order.
func (e *Engine) Feed(at time.Time, v units.NanoTesla) {
	switch {
	case !e.active && v <= e.onset:
		if e.hasCleared && e.MinGap > 0 && at.Sub(e.clearedAt) < e.MinGap {
			return // refractory: the previous storm just cleared
		}
		e.active = true
		e.peak = v
		e.category = units.ClassifyDst(v)
		e.emit(Event{Kind: Onset, At: at, Reading: v, Category: e.category, Peak: v})
	case e.active && v > e.clear:
		e.active = false
		e.hasCleared = true
		e.clearedAt = at
		e.emit(Event{Kind: Cleared, At: at, Reading: v, Category: units.ClassifyDst(e.peak), Peak: e.peak})
	case e.active:
		if v < e.peak {
			e.peak = v
		}
		if c := units.ClassifyDst(v); c > e.category {
			e.category = c
			e.emit(Event{Kind: Escalation, At: at, Reading: v, Category: c, Peak: e.peak})
		}
	}
}

// State is the engine's resumable position in the Dst stream: everything
// Feed consults besides its arguments. Capturing it mid-storm and feeding
// the same suffix after Restore fires exactly the events the uninterrupted
// engine would have (handlers are not part of the state — a restored engine
// starts with none).
type State struct {
	Active     bool
	Peak       units.NanoTesla
	Category   units.GScale
	ClearedAt  time.Time
	HasCleared bool
}

// State snapshots the machine for a later Restore.
func (e *Engine) State() State {
	return State{
		Active:     e.active,
		Peak:       e.peak,
		Category:   e.category,
		ClearedAt:  e.clearedAt,
		HasCleared: e.hasCleared,
	}
}

// Restore rewinds the machine to a snapshotted position. Thresholds and
// MinGap are construction parameters, not state — the caller rebuilds the
// engine with New and the same configuration first.
func (e *Engine) Restore(s State) {
	e.active = s.Active
	e.peak = s.Peak
	e.category = s.Category
	e.clearedAt = s.ClearedAt
	e.hasCleared = s.HasCleared
}

// Replay feeds an entire Dst index through the engine and returns the fired
// events (handlers also run).
func (e *Engine) Replay(x *dst.Index) []Event {
	var out []Event
	e.Subscribe(func(ev Event) { out = append(out, ev) })
	hourly := x.Hourly()
	for i := 0; i < hourly.Len(); i++ {
		e.Feed(hourly.TimeAt(i), units.NanoTesla(hourly.Values()[i]))
	}
	return out
}
