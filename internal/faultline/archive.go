package faultline

import (
	"sync/atomic"
	"time"

	"cosmicdance/internal/spacetrack"
	"cosmicdance/internal/tle"
)

// FaultArchive wraps a spacetrack.Archive and injects archive-level faults:
// duplicated element sets in History results and stale GroupLatest snapshots.
// It targets the data plane only — HTTP-level faults (status codes, resets,
// truncation) belong to the Injector, which wraps the server instead.
//
// Duplicate and Stale rules from the schedule apply; other kinds are ignored
// because they have no archive-level meaning. Each method keeps its own
// request counter, so the same schedule exercises both paths.
type FaultArchive struct {
	inner spacetrack.Archive
	sched *Schedule
	// StaleBy is how far into the past a stale GroupLatest snapshot looks
	// (default one hour).
	StaleBy time.Duration

	latestN  atomic.Int64
	historyN atomic.Int64
}

// Wrap builds a FaultArchive over inner.
func Wrap(inner spacetrack.Archive, sched *Schedule) *FaultArchive {
	if sched == nil {
		sched = &Schedule{}
	}
	return &FaultArchive{inner: inner, sched: sched, StaleBy: time.Hour}
}

func (a *FaultArchive) fires(kind Kind, n int64) bool {
	for _, r := range a.sched.Rules {
		if r.Kind == kind && r.applies(n) {
			return true
		}
	}
	return false
}

// Groups implements spacetrack.Archive.
func (a *FaultArchive) Groups() []string { return a.inner.Groups() }

// GroupLatest implements spacetrack.Archive. On Stale ticks the snapshot is
// taken StaleBy earlier than requested — the shape of a lagging catalog
// mirror.
func (a *FaultArchive) GroupLatest(group string, at time.Time) []*tle.TLE {
	n := a.latestN.Add(1) - 1
	if a.fires(Stale, n) {
		at = at.Add(-a.StaleBy)
	}
	return a.inner.GroupLatest(group, at)
}

// History implements spacetrack.Archive. On Duplicate ticks every element
// set appears twice, exactly as archives replaying records deliver them.
func (a *FaultArchive) History(catalog int, from, to time.Time) []*tle.TLE {
	n := a.historyN.Add(1) - 1
	sets := a.inner.History(catalog, from, to)
	if !a.fires(Duplicate, n) || len(sets) == 0 {
		return sets
	}
	out := make([]*tle.TLE, 0, 2*len(sets))
	for _, s := range sets {
		out = append(out, s, s)
	}
	return out
}
