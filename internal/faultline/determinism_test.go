package faultline

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
	"cosmicdance/internal/dst"
	"cosmicdance/internal/spacetrack"
	"cosmicdance/internal/testkit"
	"cosmicdance/internal/tle"
)

// The headline suite: for every builtin fault schedule, the full ingest
// pipeline (FetchGroup → FetchHistories → NewDatasetFromTLEs → storm
// analysis) must produce a dataset and deviation list identical to the
// fault-free run. Faults may slow ingest; they may never change science.

var detStart = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

// detWorld builds the simulated world the suite ingests: 45 days of weather
// with one sharp storm at day 20 noon, and a small fleet flown through it.
func detWorld(t *testing.T) (*spacetrack.ResultArchive, *dst.Index, time.Time) {
	t.Helper()
	days := 45
	vals := make([]float64, days*24)
	for i := range vals {
		vals[i] = -12
	}
	onset := 20*24 + 12
	for k := 0; k < 10; k++ {
		vals[onset+k] = -180
	}
	weather := dst.FromValues(detStart, vals)

	cfg := constellation.DefaultConfig()
	cfg.Start = detStart
	cfg.Hours = days * 24
	cfg.InitialFleet = 12
	cfg.GrossErrorProb = 0
	cfg.DecommissionPerYear = 0
	res, err := constellation.Run(context.Background(), cfg, weather)
	if err != nil {
		t.Fatal(err)
	}
	end := detStart.Add(time.Duration(cfg.Hours) * time.Hour)
	return spacetrack.NewResultArchive("starlink", res), weather, end
}

// ingestResult is everything the pipeline produces that science depends on.
type ingestResult struct {
	dataset    *core.Dataset
	deviations []core.Deviation
	onsets     int
}

// ingest runs the paper's ingest workflow against the handler and analyses
// the result. Sequential fetching (workers=1) keeps retry attempts adjacent
// on the injector's request counter, so MaxConsecutiveFaults bounds the
// retry budget a schedule demands.
func ingest(t *testing.T, handler http.Handler, weather *dst.Index, end time.Time) (*ingestResult, error) {
	t.Helper()
	ts := httptest.NewServer(handler)
	defer ts.Close()
	client, err := spacetrack.NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	client.MaxRetries = 8
	client.Seed = 7
	clock := testkit.NewClock(detStart)
	client.Sleep = clock.Sleep

	ctx := context.Background()
	latest, err := client.FetchGroup(ctx, "starlink")
	if err != nil {
		return nil, err
	}
	cats := spacetrack.CatalogNumbers(latest)
	results, err := spacetrack.FetchHistories(ctx, client, cats, detStart, end, 1)
	if err != nil {
		return nil, err
	}
	if fails := spacetrack.Failures(results); len(fails) > 0 {
		return nil, fails[0]
	}
	var all []*tle.TLE
	for _, r := range results {
		all = append(all, r.Sets...)
	}
	d, err := core.NewDatasetFromTLEs(context.Background(), core.DefaultConfig(), weather, all)
	if err != nil {
		return nil, err
	}
	events, err := d.EventsAbovePercentile(95, 1, 0)
	if err != nil {
		return nil, err
	}
	return &ingestResult{
		dataset:    d,
		deviations: d.Associate(context.Background(), events, 14),
		onsets:     len(d.DecayOnsets(20)),
	}, nil
}

func TestIngestDeterministicUnderEveryBuiltinSchedule(t *testing.T) {
	archive, weather, end := detWorld(t)
	inner := spacetrack.NewServer(archive, end).Handler()

	base, err := ingest(t, inner, weather, end)
	if err != nil {
		t.Fatalf("fault-free ingest: %v", err)
	}
	if len(base.dataset.Tracks()) == 0 {
		t.Fatal("fault-free ingest produced no tracks")
	}

	names := make([]string, 0, len(Builtin()))
	for name := range Builtin() {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sched := Builtin()[name]
		t.Run(name, func(t *testing.T) {
			in := New(inner, sched, 42)
			got, err := ingest(t, in, weather, end)
			if err != nil {
				t.Fatalf("ingest under %q (%s): %v", name, sched, err)
			}
			if diff := testkit.DiffDatasets(base.dataset, got.dataset); diff != "" {
				t.Fatalf("dataset under %q diverged:\n%s", name, diff)
			}
			if diff := testkit.DiffDeviations(base.deviations, got.deviations); diff != "" {
				t.Fatalf("deviations under %q diverged:\n%s", name, diff)
			}
			if got.onsets != base.onsets {
				t.Fatalf("decay onsets under %q: %d, want %d", name, got.onsets, base.onsets)
			}
			if name != "latency" && in.Stats()[Latency] == 0 && len(in.Stats()) == 0 {
				t.Fatalf("schedule %q injected nothing — vacuous pass", name)
			}
		})
	}
}

// TestIngestDeterministicUnderFaultArchive runs the same invariance check
// with faults injected below HTTP: the archive itself replays duplicates and
// serves stale catalog snapshots.
func TestIngestDeterministicUnderFaultArchive(t *testing.T) {
	archive, weather, end := detWorld(t)
	base, err := ingest(t, spacetrack.NewServer(archive, end).Handler(), weather, end)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := ParseSchedule("dup:1/2,stale:1/3")
	if err != nil {
		t.Fatal(err)
	}
	fa := Wrap(archive, sched)
	// A stale catalog snapshot one hour back still lists every satellite —
	// the fleet launched long before — so ingest must be unaffected.
	got, err := ingest(t, spacetrack.NewServer(fa, end).Handler(), weather, end)
	if err != nil {
		t.Fatal(err)
	}
	if diff := testkit.DiffDatasets(base.dataset, got.dataset); diff != "" {
		t.Fatalf("dataset under archive faults diverged:\n%s", diff)
	}
}

// TestPermanentFailureIsTypedUnderFaults: when one catalog is permanently
// gone, a faulty network must not blur that into a silent omission — the
// bulk fetch surfaces a typed per-catalog error naming it.
func TestPermanentFailureIsTypedUnderFaults(t *testing.T) {
	archive, _, end := detWorld(t)
	inner := spacetrack.NewServer(archive, end).Handler()
	broken := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("catalog") == "44715" {
			http.Error(w, "deorbited, records purged", http.StatusNotFound)
			return
		}
		inner.ServeHTTP(w, r)
	})
	in := New(broken, Builtin()["everything"], 42)
	ts := httptest.NewServer(in)
	defer ts.Close()
	client, err := spacetrack.NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	client.MaxRetries = 8
	client.Sleep = testkit.NewClock(detStart).Sleep

	ctx := context.Background()
	latest, err := client.FetchGroup(ctx, "starlink")
	if err != nil {
		t.Fatal(err)
	}
	results, err := spacetrack.FetchHistories(ctx, client, spacetrack.CatalogNumbers(latest), detStart, end, 1)
	if err != nil {
		t.Fatal(err)
	}
	fails := spacetrack.Failures(results)
	if len(fails) != 1 || fails[0].Catalog != 44715 {
		t.Fatalf("Failures = %v, want exactly catalog 44715", fails)
	}
	var se *spacetrack.StatusError
	if !errors.As(fails[0], &se) || se.Code != http.StatusNotFound {
		t.Fatalf("failure = %v, want a wrapped 404", fails[0])
	}
	for _, r := range results {
		if r.Catalog != 44715 && (r.Err != nil || len(r.Sets) == 0) {
			t.Fatalf("healthy catalog %d degraded: err=%v sets=%d", r.Catalog, r.Err, len(r.Sets))
		}
	}
}
