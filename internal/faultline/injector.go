package faultline

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cosmicdance/internal/obs"
)

// Process-wide fault counters, labelled by kind, so a chaos run's injected
// weather shows up next to the client's retry counters in one snapshot.
var metricFaults = map[Kind]*obs.Counter{}

func init() {
	for _, k := range []Kind{Latency, RateLimit, Error500, Error503, Reset, Truncate, Corrupt, Duplicate, Stale} {
		metricFaults[k] = obs.Default().Counter("faultline_faults_total", "kind", string(k))
	}
}

// Injector wraps an http.Handler and injects the scheduled faults. It is
// safe for concurrent use; the request counter is global across paths so a
// schedule describes the service's overall weather, not per-endpoint state.
type Injector struct {
	inner http.Handler
	sched *Schedule
	seed  int64
	n     atomic.Int64

	mu     sync.Mutex
	replay map[string]*recorded // first-seen response per URL (Stale)
	stats  map[Kind]int64
}

// recorded is a captured inner response.
type recorded struct {
	code   int
	header http.Header
	body   []byte
}

// New wraps inner with the schedule. seed feeds the deterministic byte
// choice of Corrupt faults; two injectors with equal schedule and seed
// mutate identical requests identically.
func New(inner http.Handler, sched *Schedule, seed int64) *Injector {
	if sched == nil {
		sched = &Schedule{}
	}
	return &Injector{
		inner:  inner,
		sched:  sched,
		seed:   seed,
		replay: make(map[string]*recorded),
		stats:  make(map[Kind]int64),
	}
}

// Requests reports how many requests the injector has seen.
func (in *Injector) Requests() int64 { return in.n.Load() }

// Stats returns how often each fault kind fired.
func (in *Injector) Stats() map[Kind]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int64, len(in.stats))
	for k, v := range in.stats {
		out[k] = v
	}
	return out
}

func (in *Injector) count(k Kind) {
	in.mu.Lock()
	in.stats[k]++
	in.mu.Unlock()
	if c := metricFaults[k]; c != nil {
		c.Inc()
	}
}

// ServeHTTP implements http.Handler.
func (in *Injector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := in.n.Add(1) - 1

	// Latency rules compose with everything else.
	for _, rule := range in.sched.Rules {
		if rule.Kind == Latency && rule.applies(n) {
			in.count(Latency)
			time.Sleep(rule.Delay)
		}
	}

	// The first applicable non-latency rule decides the response fate.
	for _, rule := range in.sched.Rules {
		if rule.Kind == Latency || !rule.applies(n) {
			continue
		}
		in.count(rule.Kind)
		switch rule.Kind {
		case RateLimit:
			if !rule.NoRetryAfter {
				w.Header().Set("Retry-After", "0")
			}
			http.Error(w, "faultline: rate limit storm", http.StatusTooManyRequests)
		case Error500:
			http.Error(w, "faultline: internal error", http.StatusInternalServerError)
		case Error503:
			http.Error(w, "faultline: service unavailable", http.StatusServiceUnavailable)
		case Reset:
			in.reset(w)
		case Truncate:
			in.mutateBody(w, r, in.truncate)
		case Corrupt:
			in.mutateBody(w, r, func(body []byte, n int64) []byte { return in.corrupt(body, n) })
		case Duplicate:
			in.mutateBody(w, r, duplicate)
		case Stale:
			in.stale(w, r)
		}
		return
	}
	in.inner.ServeHTTP(w, r)
}

// reset kills the TCP connection without an HTTP response — the client sees
// a connection reset / unexpected EOF at the transport layer.
func (in *Injector) reset(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			// The whole point is to tear the connection down; the close error
			// is the fault being injected.
			_ = conn.Close()
			return
		}
	}
	// No hijacking support (e.g. recorded responses in tests): abort the
	// handler, which the server turns into a torn connection.
	panic(http.ErrAbortHandler)
}

// record runs the inner handler against an in-memory response.
func (in *Injector) record(r *http.Request) *recorded {
	rec := &recorded{code: http.StatusOK, header: make(http.Header)}
	in.inner.ServeHTTP(&recordWriter{rec: rec}, r)
	return rec
}

// recordWriter is the minimal ResponseWriter capturing into a recorded.
type recordWriter struct {
	rec   *recorded
	wrote bool
}

func (w *recordWriter) Header() http.Header { return w.rec.header }

func (w *recordWriter) WriteHeader(code int) {
	if !w.wrote {
		w.rec.code = code
		w.wrote = true
	}
}

func (w *recordWriter) Write(p []byte) (int, error) {
	w.wrote = true
	w.rec.body = append(w.rec.body, p...)
	return len(p), nil
}

// mutateBody serves the inner response with its body transformed. Non-200
// inner responses pass through untouched: body faults model data-plane
// damage, not control-plane failures.
func (in *Injector) mutateBody(w http.ResponseWriter, r *http.Request, mutate func([]byte, int64) []byte) {
	rec := in.record(r)
	if rec.code != http.StatusOK {
		writeRecorded(w, rec, rec.body, len(rec.body))
		return
	}
	n := in.n.Load()
	body := mutate(rec.body, n)
	// Truncation serves fewer bytes than it declares; the others declare
	// what they serve.
	declared := len(body)
	if len(body) < len(rec.body) {
		declared = len(rec.body)
	}
	writeRecorded(w, rec, body, declared)
}

func writeRecorded(w http.ResponseWriter, rec *recorded, body []byte, declaredLen int) {
	//cosmiclint:allow maporder net/http sorts header keys when serializing the response
	for k, vs := range rec.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("Content-Length", strconv.Itoa(declaredLen))
	w.WriteHeader(rec.code)
	w.Write(body)
}

// truncate cuts the body roughly in half. The declared Content-Length stays
// at the full size, so the client observes a short read, never a
// well-formed-looking partial archive.
func (in *Injector) truncate(body []byte, _ int64) []byte {
	if len(body) < 2 {
		return body[:0]
	}
	return body[:len(body)/2]
}

// corrupt flips one deterministically-chosen byte. The inverted byte can
// never be a digit, so a hit inside an element line always breaks parsing
// or the checksum — corruption is detectable, not silent.
func (in *Injector) corrupt(body []byte, n int64) []byte {
	if len(body) == 0 {
		return body
	}
	out := append([]byte(nil), body...)
	h := uint64(in.seed)*0x9E3779B97F4A7C15 + uint64(n)
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	out[h%uint64(len(out))] ^= 0xFF
	return out
}

// duplicate appends the body to itself: every element set arrives twice,
// the shape of an archive replaying records. JSON bodies pass through
// because concatenated JSON would be corruption, not duplication.
func duplicate(body []byte, _ int64) []byte {
	if looksJSON(body) {
		return body
	}
	out := make([]byte, 0, 2*len(body))
	out = append(out, body...)
	if len(body) > 0 && body[len(body)-1] != '\n' {
		out = append(out, '\n')
	}
	return append(out, body...)
}

func looksJSON(body []byte) bool {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	return len(trimmed) > 0 && (trimmed[0] == '{' || trimmed[0] == '[')
}

// stale replays the first response the injector ever saw for this exact
// URL — a cache serving outdated data. The first hit records and serves the
// live response.
func (in *Injector) stale(w http.ResponseWriter, r *http.Request) {
	key := r.Method + " " + r.URL.String()
	in.mu.Lock()
	rec := in.replay[key]
	in.mu.Unlock()
	if rec == nil {
		rec = in.record(r)
		in.mu.Lock()
		if prior := in.replay[key]; prior != nil {
			rec = prior
		} else {
			in.replay[key] = rec
		}
		in.mu.Unlock()
	}
	writeRecorded(w, rec, rec.body, len(rec.body))
}

// Summary renders the fault counters compactly for logs.
func (in *Injector) Summary() string {
	stats := in.Stats()
	if len(stats) == 0 {
		return "no faults injected"
	}
	parts := make([]string, 0, len(stats))
	for _, k := range []Kind{Latency, RateLimit, Error500, Error503, Reset, Truncate, Corrupt, Duplicate, Stale} {
		if v := stats[k]; v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, v))
		}
	}
	return strings.Join(parts, " ")
}
