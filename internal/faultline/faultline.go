// Package faultline is a deterministic, seedable fault-injection layer for
// the tracking-service ingest path. It wraps an http.Handler (or a
// spacetrack.Archive) and injects scheduled faults — added latency, 429
// storms with or without Retry-After, 5xx bursts, connection resets,
// truncated and bit-flipped response bodies, and stale or duplicated
// element sets — so the pipeline's fault tolerance can be exercised
// end-to-end without a flaky network.
//
// Faults fire on a modular request schedule: a Rule like 429:3/5 returns
// 429 for the first three of every five requests and passes the remaining
// two through. Because the schedule depends only on the request counter and
// the seed, a run is reproducible, and because every rule passes some
// requests through, any data the service owns is eventually served — the
// precondition of the determinism suite, which asserts that the ingested
// dataset under faults is identical to the fault-free run.
package faultline

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind names one fault class.
type Kind string

// The fault classes. Latency composes with the others; the rest are
// mutually exclusive per request (first matching rule wins).
const (
	Latency   Kind = "latency"  // delay the response
	RateLimit Kind = "429"      // 429 with Retry-After: 0 (suffix ! omits the header)
	Error500  Kind = "500"      // internal server error
	Error503  Kind = "503"      // service unavailable
	Reset     Kind = "reset"    // kill the connection before any response
	Truncate  Kind = "truncate" // send half the body under the full Content-Length
	Corrupt   Kind = "corrupt"  // flip one deterministic byte of the body
	Duplicate Kind = "dup"      // append the body to itself (duplicate element sets)
	Stale     Kind = "stale"    // replay the first response ever seen for the URL
)

// Rule fires its fault for the first Count of every Period requests
// (0-based modular arithmetic on the injector's request counter).
type Rule struct {
	Kind   Kind
	Count  int
	Period int
	// Delay is the added latency for Latency rules.
	Delay time.Duration
	// NoRetryAfter makes RateLimit responses omit the Retry-After header,
	// forcing the client onto its own backoff.
	NoRetryAfter bool
}

// applies reports whether the rule fires for request n (0-based).
func (r Rule) applies(n int64) bool {
	if r.Period <= 0 {
		return false
	}
	return n%int64(r.Period) < int64(r.Count)
}

// String renders the rule in schedule syntax.
func (r Rule) String() string {
	kind := string(r.Kind)
	if r.Kind == RateLimit && r.NoRetryAfter {
		kind += "!"
	}
	s := fmt.Sprintf("%s:%d/%d", kind, r.Count, r.Period)
	if r.Kind == Latency {
		s += ":" + r.Delay.String()
	}
	return s
}

// Schedule is an ordered rule list. The zero value injects nothing.
type Schedule struct {
	Rules []Rule
}

// String renders the schedule in the syntax ParseSchedule accepts.
func (s *Schedule) String() string {
	parts := make([]string, len(s.Rules))
	for i, r := range s.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// retryCosting reports whether the kind forces the client to retry.
// Latency only slows a success, and Duplicate/Stale still serve parseable
// 200s, so none of them consume retry budget.
func retryCosting(k Kind) bool {
	switch k {
	case RateLimit, Error500, Error503, Reset, Truncate, Corrupt:
		return true
	}
	return false
}

// MaxConsecutiveFaults bounds the longest run of consecutive requests on
// which some retry-costing rule fires — the retry budget a client needs to
// outlast the schedule. Returns the bound over one full cycle of the
// combined rule periods (capped at 10k requests for pathological inputs).
func (s *Schedule) MaxConsecutiveFaults() int {
	cycle := 1
	for _, r := range s.Rules {
		if !retryCosting(r.Kind) || r.Period <= 0 {
			continue
		}
		cycle = lcm(cycle, r.Period)
		if cycle > 10000 {
			cycle = 10000
			break
		}
	}
	longest, run := 0, 0
	// Two cycles catch runs that wrap around the cycle boundary.
	for n := int64(0); n < int64(2*cycle); n++ {
		faulted := false
		for _, r := range s.Rules {
			if retryCosting(r.Kind) && r.applies(n) {
				faulted = true
				break
			}
		}
		if faulted {
			run++
			if run > longest {
				longest = run
			}
		} else {
			run = 0
		}
	}
	return longest
}

func lcm(a, b int) int {
	x, y := a, b
	for y != 0 {
		x, y = y, x%y
	}
	return a / x * b
}

// ParseSchedule decodes the -faults flag syntax: a comma-separated rule
// list, each rule kind:count/period with an optional :duration argument for
// latency rules. A trailing ! on 429 omits the Retry-After header.
//
//	latency:2/5:50ms,429:3/5,503:2/7,truncate:1/6,corrupt:1/9,dup:1/4
//
// An empty string parses to an empty (no-fault) schedule.
func ParseSchedule(s string) (*Schedule, error) {
	sched := &Schedule{}
	s = strings.TrimSpace(s)
	if s == "" {
		return sched, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.SplitN(part, ":", 3)
		if len(fields) < 2 {
			return nil, fmt.Errorf("faultline: rule %q: want kind:count/period", part)
		}
		var rule Rule
		kind := fields[0]
		if strings.HasSuffix(kind, "!") {
			kind = strings.TrimSuffix(kind, "!")
			rule.NoRetryAfter = true
		}
		rule.Kind = Kind(kind)
		switch rule.Kind {
		case Latency, RateLimit, Error500, Error503, Reset, Truncate, Corrupt, Duplicate, Stale:
		default:
			return nil, fmt.Errorf("faultline: rule %q: unknown fault kind %q", part, kind)
		}
		if rule.NoRetryAfter && rule.Kind != RateLimit {
			return nil, fmt.Errorf("faultline: rule %q: ! only applies to 429", part)
		}
		count, period, ok := strings.Cut(fields[1], "/")
		if !ok {
			return nil, fmt.Errorf("faultline: rule %q: want count/period", part)
		}
		var err error
		if rule.Count, err = strconv.Atoi(count); err != nil || rule.Count < 0 {
			return nil, fmt.Errorf("faultline: rule %q: bad count %q", part, count)
		}
		if rule.Period, err = strconv.Atoi(period); err != nil || rule.Period <= 0 {
			return nil, fmt.Errorf("faultline: rule %q: bad period %q", part, period)
		}
		if rule.Count >= rule.Period && rule.Kind != Latency {
			return nil, fmt.Errorf("faultline: rule %q: count must be < period, or no request ever succeeds", part)
		}
		if rule.Kind == Latency {
			if len(fields) < 3 {
				return nil, fmt.Errorf("faultline: rule %q: latency needs a duration argument", part)
			}
			if rule.Delay, err = time.ParseDuration(fields[2]); err != nil || rule.Delay < 0 {
				return nil, fmt.Errorf("faultline: rule %q: bad duration %q", part, fields[2])
			}
		} else if len(fields) == 3 {
			return nil, fmt.Errorf("faultline: rule %q: only latency rules take an argument", part)
		}
		sched.Rules = append(sched.Rules, rule)
	}
	return sched, nil
}

// Builtin returns the named schedules the determinism suite runs, each
// exercising one fault class (plus "everything", which layers them all).
// Every schedule leaves a majority of requests clean so data is eventually
// served within a 6-attempt retry budget.
func Builtin() map[string]*Schedule {
	mustParse := func(s string) *Schedule {
		sched, err := ParseSchedule(s)
		if err != nil {
			panic(err)
		}
		return sched
	}
	return map[string]*Schedule{
		"latency":          mustParse("latency:2/5:2ms"),
		"rate-limit-storm": mustParse("429:3/7"),
		"rate-limit-mute":  mustParse("429!:3/7"),
		"5xx-burst":        mustParse("500:1/5,503:2/7"),
		"resets":           mustParse("reset:1/4"),
		"truncation":       mustParse("truncate:2/5"),
		"corruption":       mustParse("corrupt:2/5"),
		"duplicates":       mustParse("dup:1/2"),
		"stale-replay":     mustParse("stale:1/3"),
		"everything":       mustParse("latency:1/5:1ms,429:1/7,503:1/11,reset:1/13,truncate:1/17,corrupt:1/19,dup:1/23,stale:1/29"),
	}
}
