package faultline

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cosmicdance/internal/tle"
)

func TestParseScheduleRoundTrip(t *testing.T) {
	cases := []string{
		"latency:2/5:50ms",
		"429:3/5",
		"429!:3/7",
		"500:1/5,503:2/7",
		"reset:1/4,truncate:1/6,corrupt:1/9,dup:1/4,stale:1/3",
		"latency:1/5:1ms,429:1/7,503:1/11,reset:1/13,truncate:1/17,corrupt:1/19,dup:1/23,stale:1/29",
	}
	for _, in := range cases {
		sched, err := ParseSchedule(in)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", in, err)
		}
		if got := sched.String(); got != in {
			t.Errorf("round trip %q -> %q", in, got)
		}
	}
}

func TestParseScheduleEmpty(t *testing.T) {
	for _, in := range []string{"", "  ", ","} {
		sched, err := ParseSchedule(in)
		if err != nil || len(sched.Rules) != 0 {
			t.Errorf("ParseSchedule(%q) = %v, %v; want empty schedule", in, sched, err)
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	cases := []string{
		"bogus:1/2",        // unknown kind
		"429",              // missing count/period
		"429:3",            // missing period
		"429:x/5",          // bad count
		"429:3/0",          // zero period
		"429:5/5",          // nothing ever succeeds
		"429:7/5",          // count > period
		"latency:1/5",      // latency without duration
		"latency:1/5:fast", // bad duration
		"500:1/5:2ms",      // argument on non-latency rule
		"500!:1/5",         // ! on non-429
	}
	for _, in := range cases {
		if _, err := ParseSchedule(in); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", in)
		}
	}
}

func TestRuleApplies(t *testing.T) {
	r := Rule{Kind: RateLimit, Count: 3, Period: 5}
	want := []bool{true, true, true, false, false, true, true, true, false, false}
	for n, w := range want {
		if got := r.applies(int64(n)); got != w {
			t.Errorf("applies(%d) = %v, want %v", n, got, w)
		}
	}
}

func TestMaxConsecutiveFaults(t *testing.T) {
	cases := []struct {
		sched string
		want  int
	}{
		{"429:3/7", 3},
		{"latency:4/5:1ms", 0}, // latency is not a failure
		{"500:1/5,503:2/7", 3}, // n=35,36 hit 503 and n=35 hits 500
		{"", 0},
	}
	for _, c := range cases {
		sched, err := ParseSchedule(c.sched)
		if err != nil {
			t.Fatal(err)
		}
		if got := sched.MaxConsecutiveFaults(); got != c.want {
			t.Errorf("MaxConsecutiveFaults(%q) = %d, want %d", c.sched, got, c.want)
		}
	}
	// Every builtin schedule must be survivable within the client's default
	// retry budget of 5.
	for name, sched := range Builtin() {
		if got := sched.MaxConsecutiveFaults(); got > 5 {
			t.Errorf("builtin %q needs %d consecutive retries, budget is 5", name, got)
		}
	}
}

// echoBody serves a fixed body for every request.
func echoBody(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	})
}

func get(t *testing.T, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp, body, err
}

func TestInjectorRateLimit(t *testing.T) {
	sched, _ := ParseSchedule("429:2/4")
	in := New(echoBody("data"), sched, 1)
	ts := httptest.NewServer(in)
	defer ts.Close()
	codes := make([]int, 0, 8)
	for i := 0; i < 8; i++ {
		resp, _, err := get(t, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		codes = append(codes, resp.StatusCode)
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") != "0" {
			t.Errorf("request %d: 429 without Retry-After: 0", i)
		}
	}
	want := []int{429, 429, 200, 200, 429, 429, 200, 200}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("codes = %v, want %v", codes, want)
		}
	}
	if in.Stats()[RateLimit] != 4 {
		t.Errorf("RateLimit stat = %d, want 4", in.Stats()[RateLimit])
	}
}

func TestInjectorMuteRateLimitOmitsRetryAfter(t *testing.T) {
	sched, _ := ParseSchedule("429!:1/2")
	ts := httptest.NewServer(New(echoBody("data"), sched, 1))
	defer ts.Close()
	resp, _, err := get(t, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if _, ok := resp.Header["Retry-After"]; ok {
		t.Error("muted 429 still sent Retry-After")
	}
}

func TestInjector5xx(t *testing.T) {
	sched, _ := ParseSchedule("500:1/3,503:1/2")
	ts := httptest.NewServer(New(echoBody("data"), sched, 1))
	defer ts.Close()
	// n=0: both apply, 500 wins by rule order; n=2/n=4: 503 (even);
	// n=3: 500; n=1/n=5: clean.
	want := []int{500, 200, 503, 500, 503, 200}
	for i, w := range want {
		resp, _, err := get(t, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != w {
			t.Fatalf("request %d: status %d, want %d", i, resp.StatusCode, w)
		}
	}
}

func TestInjectorReset(t *testing.T) {
	sched, _ := ParseSchedule("reset:1/2")
	ts := httptest.NewServer(New(echoBody("data"), sched, 1))
	defer ts.Close()
	if _, _, err := get(t, ts.URL); err == nil {
		t.Fatal("reset request returned a response")
	}
	resp, body, err := get(t, ts.URL)
	if err != nil || resp.StatusCode != 200 || string(body) != "data" {
		t.Fatalf("post-reset request: %v %v %q", resp, err, body)
	}
}

func TestInjectorTruncate(t *testing.T) {
	full := strings.Repeat("ELEMENT SET LINE\n", 64)
	sched, _ := ParseSchedule("truncate:1/2")
	ts := httptest.NewServer(New(echoBody(full), sched, 1))
	defer ts.Close()
	// The truncated response declares the full length but sends half: the
	// body read must fail, never succeed with a silently shorter payload.
	_, _, err := get(t, ts.URL)
	if err == nil {
		t.Fatal("truncated body read succeeded")
	}
	_, body, err := get(t, ts.URL)
	if err != nil || string(body) != full {
		t.Fatalf("clean request after truncation: %v (len %d)", err, len(body))
	}
}

func TestInjectorCorruptDeterministic(t *testing.T) {
	full := strings.Repeat("1 44713U 19074A  23001.00000000\n", 16)
	fetch := func(seed int64) []byte {
		sched, _ := ParseSchedule("corrupt:1/2")
		ts := httptest.NewServer(New(echoBody(full), sched, seed))
		defer ts.Close()
		_, body, err := get(t, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	a, b := fetch(42), fetch(42)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	diffs := 0
	for i := range a {
		if a[i] != full[i] {
			diffs++
		}
	}
	if diffs != 1 {
		t.Fatalf("corruption flipped %d bytes, want exactly 1", diffs)
	}
	if c := fetch(43); bytes.Equal(a, c) {
		t.Error("different seeds corrupted the same byte")
	}
}

func TestInjectorDuplicate(t *testing.T) {
	sched, _ := ParseSchedule("dup:1/2")
	ts := httptest.NewServer(New(echoBody("SET A\nSET B\n"), sched, 1))
	defer ts.Close()
	_, body, err := get(t, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "SET A\nSET B\nSET A\nSET B\n" {
		t.Fatalf("duplicated body = %q", body)
	}
}

func TestInjectorDuplicateSkipsJSON(t *testing.T) {
	sched, _ := ParseSchedule("dup:1/1")
	// dup:1/1 is rejected by ParseSchedule (count < period), so build directly:
	// this test wants every request duplicated.
	sched = &Schedule{Rules: []Rule{{Kind: Duplicate, Count: 1, Period: 1}}}
	ts := httptest.NewServer(New(echoBody(`[{"OBJECT_NAME":"X"}]`), sched, 1))
	defer ts.Close()
	_, body, err := get(t, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != `[{"OBJECT_NAME":"X"}]` {
		t.Fatalf("JSON body mutated: %q", body)
	}
}

func TestInjectorStaleReplays(t *testing.T) {
	n := 0
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n++
		io.WriteString(w, strings.Repeat("x", n)) // response changes every hit
	})
	sched := &Schedule{Rules: []Rule{{Kind: Stale, Count: 1, Period: 1}}}
	ts := httptest.NewServer(New(inner, sched, 1))
	defer ts.Close()
	for i := 0; i < 3; i++ {
		_, body, err := get(t, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		if string(body) != "x" {
			t.Fatalf("request %d: got %q, want the first response replayed", i, body)
		}
	}
}

func TestInjectorLatencyComposes(t *testing.T) {
	sched, _ := ParseSchedule("latency:1/1:1ms,429:1/2")
	ts := httptest.NewServer(New(echoBody("data"), sched, 1))
	defer ts.Close()
	resp, _, err := get(t, ts.URL)
	if err != nil || resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("first request: %v %v, want delayed 429", resp, err)
	}
	in := ts.Config.Handler.(*Injector)
	if in.Stats()[Latency] != 1 || in.Stats()[RateLimit] != 1 {
		t.Fatalf("stats = %v, want latency and 429 both counted", in.Stats())
	}
	if !strings.Contains(in.Summary(), "latency=1") {
		t.Errorf("Summary() = %q", in.Summary())
	}
}

// staticArchive implements spacetrack.Archive over fixed data for
// FaultArchive tests.
type staticArchive struct {
	sets   []*tle.TLE
	latest []time.Time // records the `at` of every GroupLatest call
}

func (a *staticArchive) Groups() []string { return []string{"test"} }

func (a *staticArchive) GroupLatest(group string, at time.Time) []*tle.TLE {
	a.latest = append(a.latest, at)
	return a.sets
}

func (a *staticArchive) History(catalog int, from, to time.Time) []*tle.TLE {
	return a.sets
}

func TestFaultArchiveDuplicatesHistory(t *testing.T) {
	inner := &staticArchive{sets: []*tle.TLE{{CatalogNumber: 1}, {CatalogNumber: 2}}}
	sched, _ := ParseSchedule("dup:1/2")
	fa := Wrap(inner, sched)
	if got := fa.History(1, time.Time{}, time.Time{}); len(got) != 4 {
		t.Fatalf("dup tick: %d sets, want 4", len(got))
	}
	if got := fa.History(1, time.Time{}, time.Time{}); len(got) != 2 {
		t.Fatalf("clean tick: %d sets, want 2", len(got))
	}
}

func TestFaultArchiveStaleGroupLatest(t *testing.T) {
	inner := &staticArchive{}
	sched, _ := ParseSchedule("stale:1/2")
	fa := Wrap(inner, sched)
	at := time.Date(2023, 3, 1, 12, 0, 0, 0, time.UTC)
	fa.GroupLatest("test", at) // stale tick
	fa.GroupLatest("test", at) // clean tick
	if len(inner.latest) != 2 {
		t.Fatal("inner archive not called")
	}
	if !inner.latest[0].Equal(at.Add(-time.Hour)) {
		t.Errorf("stale tick saw %v, want one hour earlier", inner.latest[0])
	}
	if !inner.latest[1].Equal(at) {
		t.Errorf("clean tick saw %v, want the requested time", inner.latest[1])
	}
}
