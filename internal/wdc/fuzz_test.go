package wdc

import (
	"bytes"
	"testing"
	"time"

	"cosmicdance/internal/dst"
)

// FuzzIndexRoundTrip drives the full WDC exchange cycle this service speaks:
// index → daily records → wire text → records → index. Whatever hourly
// values the encoder accepts must come back bit-identical — the Dst feed is
// the causal variable of the whole analysis, so a lossy hop here would skew
// every downstream storm association.
func FuzzIndexRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{200}, 48))
	f.Add([]byte("a long arbitrary byte string that spans more than one day of hourly readings"))
	f.Fuzz(func(t *testing.T, data []byte) {
		days := len(data) / 24
		if days == 0 {
			return
		}
		if days > 40 {
			days = 40
		}
		// WDC hourly fields are I4 integers; derive in-range integral nT
		// readings from the input bytes.
		vals := make([]float64, days*24)
		for i := range vals {
			vals[i] = float64(int(data[i]) - 200) // [-200, 55] nT
		}
		start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
		in := dst.FromValues(start, vals)

		recs, err := dst.FromIndex(in, 2)
		if err != nil {
			t.Fatalf("FromIndex rejected %d whole days: %v", days, err)
		}
		var wire bytes.Buffer
		if err := dst.WriteRecords(&wire, recs); err != nil {
			t.Fatal(err)
		}
		parsed, err := dst.ParseRecords(bytes.NewReader(wire.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of own wire output failed: %v", err)
		}
		out, err := dst.ToIndex(parsed)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Hourly().Start.Equal(start) {
			t.Fatalf("start moved: %v -> %v", start, out.Hourly().Start)
		}
		if out.Len() != in.Len() {
			t.Fatalf("length changed: %d -> %d hours", in.Len(), out.Len())
		}
		for h := 0; h < in.Len(); h++ {
			at := start.Add(time.Duration(h) * time.Hour)
			a, aok := in.At(at)
			b, bok := out.At(at)
			if aok != bok || a != b {
				t.Fatalf("hour %d: %v(%v) -> %v(%v)", h, a, aok, b, bok)
			}
		}
	})
}
