// Package wdc simulates the WDC for Geomagnetism (Kyoto) data service — the
// other half of CosmicDance's ingest. The real pipeline fetches hourly Dst
// records over HTTP from wdc.kugi.kyoto-u.ac.jp; this package serves a
// synthetic index in the same daily exchange-record format and provides the
// client that fetches, parses and incrementally extends a local index.
package wdc

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"cosmicdance/internal/dst"
)

// Server publishes a Dst index as WDC exchange records:
//
//	GET /dst?from=YYYY-MM-DD&to=YYYY-MM-DD   daily records, one per line
//	GET /healthz
//
// Missing bounds default to the index's span. The from bound is inclusive,
// to is exclusive (whole days).
type Server struct {
	index *dst.Index
}

// NewServer wraps an index.
func NewServer(index *dst.Index) *Server { return &Server{index: index} }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/dst", s.handleDst)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

const dayLayout = "2006-01-02"

func (s *Server) handleDst(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from := s.index.Start()
	to := s.index.End()
	var err error
	if v := q.Get("from"); v != "" {
		if from, err = time.Parse(dayLayout, v); err != nil {
			http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if v := q.Get("to"); v != "" {
		if to, err = time.Parse(dayLayout, v); err != nil {
			http.Error(w, "bad to: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if !to.After(from) {
		http.Error(w, "to must follow from", http.StatusBadRequest)
		return
	}
	slice := s.index.Slice(from, to)
	if slice.Len() == 0 {
		http.Error(w, "no data in range", http.StatusNotFound)
		return
	}
	records, err := dst.FromIndex(slice, 2)
	if err != nil {
		// Partial days at the archive frontier: trim to whole days.
		whole := slice.Len() / 24 * 24
		if whole == 0 {
			http.Error(w, "no whole days in range", http.StatusNotFound)
			return
		}
		trimmed := s.index.Slice(from, from.Add(time.Duration(whole)*time.Hour))
		if records, err = dst.FromIndex(trimmed, 2); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := dst.WriteRecords(w, records); err != nil {
		return
	}
}

// Client fetches Dst data from a WDC-style service.
type Client struct {
	base       *url.URL
	httpClient *http.Client
}

// NewClient targets the service at baseURL.
func NewClient(baseURL string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("wdc: bad base URL: %w", err)
	}
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: u, httpClient: httpClient}, nil
}

// Fetch downloads [from, to) (whole days, UTC) and returns the parsed index.
func (c *Client) Fetch(ctx context.Context, from, to time.Time) (*dst.Index, error) {
	u := *c.base
	u.Path = "/dst"
	q := url.Values{}
	q.Set("from", from.UTC().Format(dayLayout))
	q.Set("to", to.UTC().Format(dayLayout))
	u.RawQuery = q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("wdc: server returned %d: %s", resp.StatusCode, body)
	}
	records, err := dst.ParseRecords(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("wdc: parsing records: %w", err)
	}
	return dst.ToIndex(records)
}

// FetchIncremental extends a local index up to the given frontier, fetching
// only the missing whole days — the "fetch as and when needed incrementally"
// behaviour of the paper's ingest. A nil index starts from `from`.
func (c *Client) FetchIncremental(ctx context.Context, local *dst.Index, from, upTo time.Time) (*dst.Index, error) {
	start := from
	if local != nil && local.Len() > 0 {
		start = local.End()
	}
	start = start.UTC().Truncate(24 * time.Hour)
	upTo = upTo.UTC().Truncate(24 * time.Hour)
	if !upTo.After(start) {
		return local, nil // nothing new
	}
	fresh, err := c.Fetch(ctx, start, upTo)
	if err != nil {
		return local, err
	}
	if local == nil || local.Len() == 0 {
		return fresh, nil
	}
	if err := local.Hourly().Append(fresh.Hourly()); err != nil {
		return local, fmt.Errorf("wdc: stitching increments: %w", err)
	}
	return local, nil
}
