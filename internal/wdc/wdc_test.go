package wdc

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cosmicdance/internal/spaceweather"
)

func newWDCServer(t *testing.T) (*Client, time.Time, time.Time) {
	t.Helper()
	index, err := spaceweather.Generate(spaceweather.May2024())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(index).Handler())
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return client, index.Start(), index.End()
}

func TestFetchRange(t *testing.T) {
	client, start, _ := newWDCServer(t)
	ctx := context.Background()
	got, err := client.Fetch(ctx, start, start.AddDate(0, 0, 12))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 12*24 {
		t.Fatalf("hours = %d, want %d", got.Len(), 12*24)
	}
	// The super-storm peak is inside the first 12 days of May 2024.
	min, at := got.Min()
	if min != -412 || !at.Equal(spaceweather.May2024Peak) {
		t.Errorf("min = %v at %v", min, at)
	}
}

func TestFetchFullSpanDefaults(t *testing.T) {
	client, start, end := newWDCServer(t)
	got, err := client.Fetch(context.Background(), start, end)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != int(end.Sub(start)/time.Hour) {
		t.Fatalf("hours = %d", got.Len())
	}
}

func TestFetchErrors(t *testing.T) {
	client, start, _ := newWDCServer(t)
	ctx := context.Background()
	// Inverted range.
	if _, err := client.Fetch(ctx, start.AddDate(0, 0, 5), start); err == nil {
		t.Error("inverted range accepted")
	}
	// Out-of-archive range.
	if _, err := client.Fetch(ctx, start.AddDate(-1, 0, 0), start.AddDate(-1, 0, 10)); err == nil {
		t.Error("pre-archive range accepted")
	}
}

func TestServerBadParams(t *testing.T) {
	index, err := spaceweather.Generate(spaceweather.May2024())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(index).Handler())
	defer ts.Close()
	for _, q := range []string{"?from=yesterday", "?to=later", "?from=2024-05-10&to=2024-05-01"} {
		resp, err := http.Get(ts.URL + "/dst" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s -> %d", q, resp.StatusCode)
		}
	}
}

func TestRecordsAreRealWDCFormat(t *testing.T) {
	index, err := spaceweather.Generate(spaceweather.May2024())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(index).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/dst?from=2024-05-11&to=2024-05-12")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	line := strings.TrimRight(string(data), "\n")
	if len(line) != 120 || !strings.HasPrefix(line, "DST2405*11") {
		t.Errorf("record = %q (len %d)", line, len(line))
	}
}

func TestFetchIncremental(t *testing.T) {
	client, start, _ := newWDCServer(t)
	ctx := context.Background()

	// First increment: 5 days from nil.
	local, err := client.FetchIncremental(ctx, nil, start, start.AddDate(0, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if local.Len() != 5*24 {
		t.Fatalf("first increment = %d hours", local.Len())
	}
	// Second increment: extends to day 12 (covers the storm).
	local, err = client.FetchIncremental(ctx, local, start, start.AddDate(0, 0, 12))
	if err != nil {
		t.Fatal(err)
	}
	if local.Len() != 12*24 {
		t.Fatalf("after extension = %d hours", local.Len())
	}
	min, _ := local.Min()
	if min != -412 {
		t.Errorf("stitched min = %v", min)
	}
	// No-op increment.
	same, err := client.FetchIncremental(ctx, local, start, start.AddDate(0, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if same.Len() != local.Len() {
		t.Errorf("no-op increment changed length to %d", same.Len())
	}
}

func TestNewClientBadURL(t *testing.T) {
	if _, err := NewClient("://x", nil); err == nil {
		t.Error("bad URL accepted")
	}
}
