// Package scale is the mega-constellation scale harness: it drives the
// chunked streaming pipeline end to end over a multi-constellation fleet
// (Starlink Gen1/Gen2, Kuiper, OneWeb shells) and reduces the stream to a
// compact, deterministic Report without ever materializing the full dataset.
//
// The report is the scale-out proof in two directions at once:
//
//   - Equivalence: every line of the report (counts, extrema, and a SHA-256
//     digest over the per-track analysis results in catalog order) is
//     byte-identical at every chunk size, worker width, and segment store —
//     the verify gate diffs report outputs across configurations.
//   - Flat memory: the harness holds one chunk partial at a time, so peak
//     RSS is governed by chunk size × worker window, not fleet size. The
//     scale sweep pins sats/sec and peak RSS at 6k/30k/100k satellites.
package scale

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"time"

	"cosmicdance/internal/artifact"
	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
	"cosmicdance/internal/spaceweather"
)

// Analysis knobs pinned by the harness. Fixed values keep every report
// comparable across runs and machines; they mirror the CLI defaults.
const (
	// eventPercentile selects high-intensity events, as in the paper's §5.
	eventPercentile = 95
	// windowDays is the happens-closely-after association window.
	windowDays = 30
	// minDropKm qualifies a terminal decline as a permanent decay onset.
	minDropKm = 20
)

// Spec sizes a scale run. The (Sats, Days, Seed) triple fully determines the
// report; ChunkSize, Parallelism, CacheDir and SpillDir only shape how the
// run executes.
type Spec struct {
	// Sats is the fleet size spread across the mega-constellation shells.
	Sats int
	// Days is the simulated window length.
	Days int
	// Seed drives weather and fleet generation.
	Seed int64
	// ChunkSize is the satellites-per-chunk partition (default
	// artifact.DefaultChunkSize).
	ChunkSize int
	// Parallelism is the chunk-level worker width (0 = one per CPU).
	Parallelism int
	// CacheDir, when set, attaches a persistent artifact cache so segments
	// become incremental resume points.
	CacheDir string
	// SpillDir, when set (and CacheDir is not), spills segments to ephemeral
	// files instead of holding the in-flight window in memory.
	SpillDir string
}

// WeatherConfig returns the run's space-weather scenario: the calibrated
// background climatology with a May-2024-class super-storm (−412 nT peak)
// striking a quarter of the way into the window, so even a two-day run has a
// guaranteed high-intensity event to associate against.
func WeatherConfig(spec Spec) spaceweather.Config {
	start := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	peakAt := start.Add(time.Duration(spec.Days*6) * time.Hour)
	return spaceweather.Config{
		Start:              start,
		Hours:              spec.Days * 24,
		Seed:               spec.Seed,
		QuietMean:          -11,
		QuietStd:           7,
		QuietRho:           0.9,
		MildPerYear:        36,
		ModeratePerYear:    3.0,
		MildExcessMean:     13,
		ModerateExcessMean: 20,
		CycleAmplitude:     0.8,
		CyclePeak:          time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC),
		Storms: []spaceweather.StormSpec{
			{Peak: -400, PeakAt: peakAt, MainPhaseHours: 5, RecoveryTau: 10, Commencement: 25},
		},
		Overrides: []spaceweather.Override{{At: peakAt, Value: -412}},
	}
}

// FleetConfig returns the run's constellation: Sats satellites spread across
// all twelve mega-constellation shells.
func FleetConfig(spec Spec) constellation.Config {
	cfg := constellation.MegaFleet(spec.Seed, spec.Sats, time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC), spec.Days)
	cfg.Parallelism = spec.Parallelism
	return cfg
}

// CoreConfig returns the run's cleaning config. The gross-error ceiling is
// raised above the default because the OneWeb shells operate at 1200 km.
func CoreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxValidAltKm = 1400
	return cfg
}

// Report is the deterministic reduction of a scale run. Every field depends
// only on (Sats, Days, Seed) — never on chunk size, worker width, or the
// segment store — which is what WriteText's output gates on.
type Report struct {
	Sats, Days int
	Seed       int64

	Tracks int
	Points int64
	Stats  core.CleaningStats

	Events     int
	Deviations int
	MaxDevKm   float64
	Onsets     int
	MaxDropKm  float64

	// RawCount/RawSumBits/RawMin/RawMax summarize the raw-altitude column
	// order-insensitively (per-chunk canonical order depends on the
	// partition, so only commutative aggregates are comparable here).
	RawCount   int64
	RawSumBits uint64
	RawMin     float64
	RawMax     float64

	// Digest is a SHA-256 over every track's points, onset, and deviations
	// in catalog order — the strong form of the equivalence claim.
	Digest string
}

// hashI64/hashF64/hashF32 feed fixed-width little-endian values to the
// digest so it depends only on the analyzed values.
func hashI64(h hash.Hash, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	h.Write(b[:])
}

func hashF64(h hash.Hash, v float64) { hashI64(h, int64(math.Float64bits(v))) }
func hashF32(h hash.Hash, v float32) { hashI64(h, int64(math.Float32bits(v))) }

// Run executes a scale run: weather → chunked fleet simulation → per-chunk
// cleaning → streaming per-track analysis, holding one chunk partial at a
// time.
func Run(ctx context.Context, spec Spec) (*Report, error) {
	if spec.Sats <= 0 {
		return nil, fmt.Errorf("scale: Sats must be positive, got %d", spec.Sats)
	}
	if spec.Days <= 0 {
		return nil, fmt.Errorf("scale: Days must be positive, got %d", spec.Days)
	}

	var cache *artifact.Cache
	if spec.CacheDir != "" {
		var err error
		if cache, err = artifact.Open(spec.CacheDir); err != nil {
			return nil, err
		}
	}
	pipe := artifact.NewPipeline(cache)

	wcfg, fcfg, ccfg := WeatherConfig(spec), FleetConfig(spec), CoreConfig()
	weather, err := pipe.Weather(ctx, wcfg)
	if err != nil {
		return nil, err
	}
	events, err := core.WeatherEventsAbovePercentile(weather, eventPercentile, 1, 0)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Sats: spec.Sats, Days: spec.Days, Seed: spec.Seed,
		Events: len(events),
		RawMin: math.Inf(1), RawMax: math.Inf(-1),
	}
	digest := sha256.New()
	opts := artifact.ChunkedOptions{ChunkSize: spec.ChunkSize, SpillDir: spec.SpillDir}
	err = pipe.EachSegment(ctx, wcfg, fcfg, ccfg, opts, func(_ int, p *core.ChunkPartial) error {
		rep.reduce(digest, ccfg, events, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.Digest = hex.EncodeToString(digest.Sum(nil))
	return rep, nil
}

// reduce folds one chunk partial into the report. Chunks arrive in catalog
// order and every quantity here is per-track (or order-insensitive for the
// raw column), so the reduction is invariant under the chunk partition.
func (r *Report) reduce(digest hash.Hash, ccfg core.Config, events []core.Event, p *core.ChunkPartial) {
	for _, tr := range p.Tracks {
		r.Tracks++
		r.Points += int64(len(tr.Points))
		hashI64(digest, int64(tr.Catalog))
		hashI64(digest, int64(len(tr.Points)))
		hashF64(digest, tr.OperationalAltKm)
		hashI64(digest, int64(tr.RaisingRemoved))
		for _, pt := range tr.Points {
			hashI64(digest, pt.Epoch)
			hashF32(digest, pt.AltKm)
			hashF32(digest, pt.BStar)
			hashF32(digest, pt.Incl)
		}
		if on, ok := core.TrackDecayOnset(tr, ccfg.DecayFilterKm, minDropKm); ok {
			r.Onsets++
			r.MaxDropKm = math.Max(r.MaxDropKm, on.DropKm)
			hashI64(digest, on.At.Unix())
			hashF64(digest, on.DropKm)
			hashF64(digest, on.RateKmPerDay)
		}
		for _, ev := range events {
			dv, ok := core.AssociateTrack(ccfg, ev, tr, windowDays)
			if !ok {
				continue
			}
			r.Deviations++
			r.MaxDevKm = math.Max(r.MaxDevKm, dv.MaxDevKm)
			hashI64(digest, dv.Event.Unix())
			hashF64(digest, dv.MaxDevKm)
			hashF64(digest, dv.MaxDrag)
		}
	}
	for _, v := range p.RawAlts {
		r.RawCount++
		r.RawSumBits += math.Float64bits(v)
		r.RawMin = math.Min(r.RawMin, v)
		r.RawMax = math.Max(r.RawMax, v)
	}
	r.Stats.TotalObservations += p.Stats.TotalObservations
	r.Stats.GrossErrors += p.Stats.GrossErrors
	r.Stats.RaisingRemoved += p.Stats.RaisingRemoved
	r.Stats.NonOperational += p.Stats.NonOperational
	r.Stats.Duplicates += p.Stats.Duplicates
}
