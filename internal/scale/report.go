package scale

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteText renders the report as stable key-value lines. The output names
// only the (Sats, Days, Seed) inputs and the reduced results — never the
// chunk size, worker width, or segment store — so the verify gate can diff
// the stdout of two differently-chunked runs byte for byte.
func (r *Report) WriteText(w io.Writer) error {
	lines := []string{
		fmt.Sprintf("satellites %d", r.Sats),
		fmt.Sprintf("days %d", r.Days),
		fmt.Sprintf("seed %d", r.Seed),
		fmt.Sprintf("tracks %d", r.Tracks),
		fmt.Sprintf("points %d", r.Points),
		fmt.Sprintf("observations %d", r.Stats.TotalObservations),
		fmt.Sprintf("gross-errors %d", r.Stats.GrossErrors),
		fmt.Sprintf("raising-removed %d", r.Stats.RaisingRemoved),
		fmt.Sprintf("non-operational %d", r.Stats.NonOperational),
		fmt.Sprintf("duplicates %d", r.Stats.Duplicates),
		fmt.Sprintf("raw-altitudes %d sum %016x min %.6f max %.6f", r.RawCount, r.RawSumBits, r.RawMin, r.RawMax),
		fmt.Sprintf("events %d", r.Events),
		fmt.Sprintf("deviations %d max-dev-km %.6f", r.Deviations, r.MaxDevKm),
		fmt.Sprintf("onsets %d max-drop-km %.6f", r.Onsets, r.MaxDropKm),
		fmt.Sprintf("digest %s", r.Digest),
	}
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// PeakRSSBytes reports the process's peak resident set size (VmHWM from
// /proc/self/status) — the number the scale sweep gates on to prove memory
// stays flat from 30k to 100k satellites. Returns false where the proc
// interface is unavailable.
func PeakRSSBytes() (int64, bool) {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb << 10, true
	}
	return 0, false
}
