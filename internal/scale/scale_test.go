package scale

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"cosmicdance/internal/artifact"
)

func testSpec() Spec {
	return Spec{Sats: 300, Days: 3, Seed: 7, ChunkSize: 64, Parallelism: 1}
}

func runReport(t *testing.T, spec Spec) string {
	t.Helper()
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestReportInvariantUnderExecutionShape is the harness-level equivalence
// gate: the report must be identical across chunk sizes, worker widths, and
// segment stores (in-memory, spill files, persistent cache).
func TestReportInvariantUnderExecutionShape(t *testing.T) {
	ref := runReport(t, testSpec())
	if !strings.Contains(ref, "digest ") || strings.Contains(ref, "digest \n") {
		t.Fatalf("reference report has no digest:\n%s", ref)
	}

	variants := map[string]Spec{}
	for _, chunk := range []int{13, 100, 1000} {
		s := testSpec()
		s.ChunkSize = chunk
		variants[fmt.Sprintf("chunk-%d", chunk)] = s
	}
	wide := testSpec()
	wide.Parallelism = 8
	variants["width-8"] = wide
	spill := testSpec()
	spill.SpillDir = t.TempDir()
	variants["spill"] = spill
	cached := testSpec()
	cached.CacheDir = t.TempDir()
	variants["cache"] = cached

	for name, s := range variants {
		if got := runReport(t, s); got != ref {
			t.Fatalf("%s: report differs from reference\n--- got ---\n%s--- want ---\n%s", name, got, ref)
		}
	}
	// A warm cache rerun must also reproduce the report exactly.
	if got := runReport(t, cached); got != ref {
		t.Fatal("warm cached report differs from reference")
	}
}

// TestReportSeedSensitivity guards against a degenerate digest: different
// inputs must move the report.
func TestReportSeedSensitivity(t *testing.T) {
	a := runReport(t, testSpec())
	s := testSpec()
	s.Seed = 42
	if b := runReport(t, s); a == b {
		t.Fatal("reports identical across seeds")
	}
}

// TestReportMatchesMaterializedDataset cross-checks the streaming reduction
// against the monolithic path: building the full dataset and analyzing it
// with the Dataset methods must yield the same counts and extrema.
func TestReportMatchesMaterializedDataset(t *testing.T) {
	spec := testSpec()
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	pipe := artifact.NewPipeline(nil)
	d, err := pipe.Dataset(context.Background(), WeatherConfig(spec), FleetConfig(spec), CoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tracks != len(d.Tracks()) {
		t.Fatalf("tracks %d, dataset has %d", rep.Tracks, len(d.Tracks()))
	}
	if rep.Stats != d.Cleaning() {
		t.Fatalf("stats %+v, dataset has %+v", rep.Stats, d.Cleaning())
	}
	events, err := d.EventsAbovePercentile(eventPercentile, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != len(events) {
		t.Fatalf("events %d, dataset has %d", rep.Events, len(events))
	}
	if rep.Events == 0 {
		t.Fatal("scale scenario produced no high-intensity events")
	}
	devs := d.Associate(context.Background(), events, windowDays)
	if rep.Deviations != len(devs) {
		t.Fatalf("deviations %d, dataset has %d", rep.Deviations, len(devs))
	}
	maxDev := 0.0
	for _, dv := range devs {
		maxDev = math.Max(maxDev, dv.MaxDevKm)
	}
	if rep.MaxDevKm != maxDev {
		t.Fatalf("max dev %v, dataset has %v", rep.MaxDevKm, maxDev)
	}
	onsets := d.DecayOnsets(minDropKm)
	if rep.Onsets != len(onsets) {
		t.Fatalf("onsets %d, dataset has %d", rep.Onsets, len(onsets))
	}
	raw := d.State().RawAlts
	if rep.RawCount != int64(len(raw)) {
		t.Fatalf("raw count %d, dataset has %d", rep.RawCount, len(raw))
	}
	var sum uint64
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, v := range raw {
		sum += math.Float64bits(v)
		mn, mx = math.Min(mn, v), math.Max(mx, v)
	}
	if rep.RawSumBits != sum || rep.RawMin != mn || rep.RawMax != mx {
		t.Fatal("raw-altitude aggregates disagree with the materialized dataset")
	}
}

// TestRunValidation rejects nonsensical specs.
func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Spec{Sats: 0, Days: 2}); err == nil {
		t.Fatal("Sats=0 accepted")
	}
	if _, err := Run(context.Background(), Spec{Sats: 10, Days: 0}); err == nil {
		t.Fatal("Days=0 accepted")
	}
}

// TestPeakRSSBytes sanity-checks the /proc reader on Linux.
func TestPeakRSSBytes(t *testing.T) {
	n, ok := PeakRSSBytes()
	if !ok {
		t.Skip("no /proc/self/status on this platform")
	}
	if n <= 0 {
		t.Fatalf("peak RSS %d", n)
	}
}
