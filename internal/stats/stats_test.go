package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{25, 2},
		{50, 3},
		{75, 4},
		{100, 5},
	}
	for _, c := range cases {
		got, err := Percentile(vals, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	got, err := Percentile([]float64{10, 20}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Errorf("median of {10,20} = %v, want 15", got)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("empty input: err = %v, want ErrEmpty", err)
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("p=-1: want error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("p=101: want error")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	vals := []float64{3, 1, 2}
	if _, err := Percentile(vals, 50); err != nil {
		t.Fatal(err)
	}
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Errorf("input mutated: %v", vals)
	}
}

func TestSummarize(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s, err := Summarize(vals)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 8 {
		t.Errorf("Count = %d, want 8", s.Count)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if math.Abs(s.StdDev-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", s.StdDev)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestMinMaxMeanStdDev(t *testing.T) {
	vals := []float64{-1, 0, 1}
	if m, _ := Min(vals); m != -1 {
		t.Errorf("Min = %v", m)
	}
	if m, _ := Max(vals); m != 1 {
		t.Errorf("Max = %v", m)
	}
	if m, _ := Mean(vals); m != 0 {
		t.Errorf("Mean = %v", m)
	}
	sd, _ := StdDev(vals)
	if math.Abs(sd-math.Sqrt(2.0/3.0)) > 1e-12 {
		t.Errorf("StdDev = %v", sd)
	}
	for _, f := range []func([]float64) (float64, error){Min, Max, Mean, StdDev, Median} {
		if _, err := f(nil); err != ErrEmpty {
			t.Errorf("empty aggregate: err = %v, want ErrEmpty", err)
		}
	}
}

func TestPercentileOrderProperty(t *testing.T) {
	// Percentiles must be monotone in p and bounded by min/max.
	f := func(raw []float64, a, b uint8) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		q1, err1 := Percentile(vals, p1)
		q2, err2 := Percentile(vals, p2)
		if err1 != nil || err2 != nil {
			return false
		}
		mn, _ := Min(vals)
		mx, _ := Max(vals)
		return q1 <= q2 && q1 >= mn && q2 <= mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFBasics(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(4); got != 1 {
		t.Errorf("At(4) = %v, want 1", got)
	}
	if got := c.At(100); got != 1 {
		t.Errorf("At(100) = %v, want 1", got)
	}
	if got := c.TailFraction(2); got != 0.5 {
		t.Errorf("TailFraction(2) = %v, want 0.5", got)
	}
	if c.N() != 4 || c.Min() != 1 || c.Max() != 4 {
		t.Errorf("N/Min/Max = %d/%v/%v", c.N(), c.Min(), c.Max())
	}
}

func TestCDFEmpty(t *testing.T) {
	if _, err := NewCDF(nil); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestCDFQuantile(t *testing.T) {
	c, err := NewCDF([]float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 30 {
		t.Errorf("Quantile(1) = %v", got)
	}
	if got := c.Quantile(0.5); got != 20 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	if got := c.Quantile(-1); got != 10 {
		t.Errorf("Quantile(-1) = %v", got)
	}
	if got := c.Quantile(2); got != 30 {
		t.Errorf("Quantile(2) = %v", got)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		c, err := NewCDF(vals)
		if err != nil {
			return false
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		fa, fb := c.At(lo), c.At(hi)
		return fa <= fb && fa >= 0 && fb <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c, err := NewCDF([]float64{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("len(pts) = %d", len(pts))
	}
	if pts[0].X != 0 || pts[len(pts)-1].X != 5 {
		t.Errorf("endpoints = %v, %v", pts[0], pts[len(pts)-1])
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Y < pts[j].Y || pts[i].X < pts[j].X }) {
		t.Error("points not monotone")
	}
	if got := c.Points(1); len(got) != 2 {
		t.Errorf("Points(1) clamps to 2 points, got %d", len(got))
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, 1, 2.5, 9.9, -5, 15} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	// -5 clamps to bin 0, 15 clamps to bin 4.
	if h.Counts[0] != 3 { // 0, 1, -5
		t.Errorf("bin0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.9, 15
		t.Errorf("bin4 = %d, want 2", h.Counts[4])
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.Fraction(0); got != 0.5 {
		t.Errorf("Fraction(0) = %v, want 0.5", got)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("bins=0: want error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range: want error")
	}
	h, _ := NewHistogram(0, 1, 2)
	if h.Fraction(0) != 0 {
		t.Error("Fraction on empty histogram should be 0")
	}
}

func TestHistogramMassConserved(t *testing.T) {
	f := func(raw []float64) bool {
		h, err := NewHistogram(-100, 100, 7)
		if err != nil {
			return false
		}
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
			n++
		}
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == n && h.Total() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorrelation(t *testing.T) {
	perfect := []float64{1, 2, 3, 4, 5}
	if r, err := Correlation(perfect, perfect); err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("self correlation = %v, %v", r, err)
	}
	inverse := []float64{5, 4, 3, 2, 1}
	if r, _ := Correlation(perfect, inverse); math.Abs(r+1) > 1e-12 {
		t.Errorf("inverse correlation = %v", r)
	}
	// Uncorrelated-ish symmetric data.
	if r, _ := Correlation([]float64{1, 2, 3, 4}, []float64{1, -1, 1, -1}); math.Abs(r) > 0.5 {
		t.Errorf("near-zero correlation = %v", r)
	}
	if _, err := Correlation([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Correlation([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Correlation([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance accepted")
	}
}
