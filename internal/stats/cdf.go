package stats

import (
	"fmt"
	"sort"
)

// CDF is an empirical cumulative distribution function over a sample. The
// zero value is unusable; build one with NewCDF.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample. The input is copied.
func NewCDF(values []float64) (*CDF, error) {
	if len(values) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// want the count of samples <= x, so search for the first index > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1), i.e. the inverse CDF.
func (c *CDF) Quantile(q float64) float64 {
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	return percentileSorted(c.sorted, q*100)
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// Min returns the smallest sample.
func (c *CDF) Min() float64 { return c.sorted[0] }

// Max returns the largest sample.
func (c *CDF) Max() float64 { return c.sorted[len(c.sorted)-1] }

// TailFraction returns P(X > x), the complementary CDF, which is how the
// paper quotes tail mass ("at most 1% of satellites ...").
func (c *CDF) TailFraction(x float64) float64 { return 1 - c.At(x) }

// Points returns n evenly spaced (x, F(x)) points spanning the sample range,
// suitable for plotting or textual rendering of the CDF curve.
func (c *CDF) Points(n int) []Point {
	if n < 2 {
		n = 2
	}
	lo, hi := c.Min(), c.Max()
	pts := make([]Point, n)
	for i := range pts {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = Point{X: x, Y: c.At(x)}
	}
	return pts
}

// Point is a single (x, y) pair in a rendered curve.
type Point struct{ X, Y float64 }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4g, %.4g)", p.X, p.Y) }

// Histogram counts samples into uniform-width bins over [lo, hi). Samples
// outside the range are clamped into the first/last bin so no mass is lost.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins uniform bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: bins must be positive, got %d", bins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%g, %g) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the share of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
