// Package stats provides the small set of descriptive statistics CosmicDance
// needs: percentiles, CDFs, histograms and summary aggregates. Everything is
// allocation-conscious because the pipeline runs these over millions of TLE
// samples.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregates that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Percentile returns the p-th percentile (0 <= p <= 100) of values using
// linear interpolation between closest ranks. The input is not modified.
func Percentile(values []float64, p float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// percentileSorted computes a percentile over an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(values []float64) (float64, error) { return Percentile(values, 50) }

// Mean returns the arithmetic mean.
func Mean(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values)), nil
}

// Min returns the smallest value.
func Min(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	m := values[0]
	for _, v := range values[1:] {
		if v < m {
			m = v
		}
	}
	return m, nil
}

// Max returns the largest value.
func Max(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	m := values[0]
	for _, v := range values[1:] {
		if v > m {
			m = v
		}
	}
	return m, nil
}

// StdDev returns the population standard deviation.
func StdDev(values []float64) (float64, error) {
	mean, err := Mean(values)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(values))), nil
}

// Summary bundles the aggregates the paper reports for distributions
// (e.g. Fig 2's median / 95th / 99th / max storm durations).
type Summary struct {
	Count  int
	Mean   float64
	Median float64
	P95    float64
	P99    float64
	Min    float64
	Max    float64
	StdDev float64
}

// Summarize computes a Summary in one pass over a private sorted copy.
func Summarize(values []float64) (Summary, error) {
	if len(values) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(len(sorted))
	var ss float64
	for _, v := range sorted {
		d := v - mean
		ss += d * d
	}
	return Summary{
		Count:  len(sorted),
		Mean:   mean,
		Median: percentileSorted(sorted, 50),
		P95:    percentileSorted(sorted, 95),
		P99:    percentileSorted(sorted, 99),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		StdDev: math.Sqrt(ss / float64(len(sorted))),
	}, nil
}

// Correlation returns the Pearson correlation coefficient of two
// equal-length samples. It errs on fewer than two points or zero variance.
func Correlation(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: correlation inputs differ in length")
	}
	if len(x) < 2 {
		return 0, errors.New("stats: correlation needs at least two points")
	}
	mx, _ := Mean(x)
	my, _ := Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: correlation undefined for zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
