// Package groundtrack implements the paper's §6 "finer granularity"
// extension: pinning down *where* satellites are while a storm is in
// progress. Storm effects concentrate at high latitudes (the auroral ovals,
// where charged particles funnel into the atmosphere and heat it), so the
// latitude-band exposure of a fleet during a storm window is the first-order
// spatial refinement of CosmicDance's purely temporal analysis.
package groundtrack

import (
	"fmt"
	"sort"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/orbit"
	"cosmicdance/internal/units"
)

// Band is an absolute-latitude interval [LowDeg, HighDeg).
type Band struct {
	LowDeg  float64
	HighDeg float64
}

// Contains reports whether |lat| falls in the band.
func (b Band) Contains(lat units.Degrees) bool {
	l := float64(lat)
	if l < 0 {
		l = -l
	}
	return l >= b.LowDeg && l < b.HighDeg
}

// String implements fmt.Stringer.
func (b Band) String() string { return fmt.Sprintf("%g-%g°", b.LowDeg, b.HighDeg) }

// DefaultBands partitions latitude into the bands the space-weather
// community reasons about: equatorial, mid-latitude, sub-auroral, auroral.
func DefaultBands() []Band {
	return []Band{{0, 20}, {20, 40}, {40, 60}, {60, 90}}
}

// AuroralLatitudeDeg is the |latitude| above which storm effects concentrate.
const AuroralLatitudeDeg = 50.0

// SatElements is one satellite's element set in effect at a window start.
type SatElements struct {
	Catalog  int
	Epoch    time.Time
	Elements orbit.Elements
}

// FromSamples extracts, for every satellite in the archive, the element set
// in effect at time at (its latest observation at or before it).
func FromSamples(samples []constellation.Sample, at time.Time) []SatElements {
	return FromSamplesFresh(samples, at, 0)
}

// FromSamplesFresh is FromSamples with a freshness bound: satellites whose
// latest observation is older than maxAge are dropped (a re-entered object
// stops being tracked, and a stale element set should not place it in
// orbit). maxAge <= 0 disables the bound.
func FromSamplesFresh(samples []constellation.Sample, at time.Time, maxAge time.Duration) []SatElements {
	cutoff := at.Unix()
	latest := make(map[int32]constellation.Sample)
	for _, s := range samples {
		if s.Epoch > cutoff {
			continue
		}
		if prev, ok := latest[s.Catalog]; !ok || s.Epoch > prev.Epoch {
			latest[s.Catalog] = s
		}
	}
	out := make([]SatElements, 0, len(latest))
	for _, s := range latest {
		if maxAge > 0 && time.Unix(s.Epoch, 0).Before(at.Add(-maxAge)) {
			continue
		}
		mm, err := s.MeanMotion()
		if err != nil {
			continue
		}
		out = append(out, SatElements{
			Catalog: int(s.Catalog),
			Epoch:   s.EpochTime(),
			Elements: orbit.Elements{
				Eccentricity: float64(s.Eccentricity),
				MeanMotion:   mm,
				Inclination:  units.Degrees(s.Inclination),
				RAAN:         units.Degrees(s.RAAN),
				ArgPerigee:   units.Degrees(s.ArgPerigee),
				MeanAnomaly:  units.Degrees(s.MeanAnomaly),
			},
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Catalog < out[j].Catalog })
	return out
}

// Exposure is the time the fleet spent in one latitude band.
type Exposure struct {
	Band     Band
	SatHours float64
	Fraction float64
}

// Report is the outcome of an exposure analysis.
type Report struct {
	From, To time.Time
	Step     time.Duration
	Bands    []Exposure
	// TotalSatHours is the summed exposure across bands.
	TotalSatHours float64
	// AuroralFraction is the share of satellite-time above
	// AuroralLatitudeDeg |latitude| — the population most exposed during a
	// storm.
	AuroralFraction float64
	Satellites      int
}

// Analyzer computes latitude-band exposure by propagating each satellite's
// elements across the window.
type Analyzer struct {
	// Step is the propagation sampling interval. Starlink completes an orbit
	// in ~95 minutes, so steps of a few minutes resolve the latitude sweep
	// (the paper: "such a latitude-band wise study would need latest TLEs
	// every 10s of minutes").
	Step  time.Duration
	Bands []Band
}

// NewAnalyzer returns an analyzer with a 5-minute step and DefaultBands.
func NewAnalyzer() *Analyzer {
	return &Analyzer{Step: 5 * time.Minute, Bands: DefaultBands()}
}

// Analyze propagates every satellite over [from, to] and buckets its time by
// latitude band.
func (a *Analyzer) Analyze(sats []SatElements, from, to time.Time) (*Report, error) {
	if a.Step <= 0 {
		return nil, fmt.Errorf("groundtrack: step must be positive")
	}
	if !to.After(from) {
		return nil, fmt.Errorf("groundtrack: empty window")
	}
	if len(sats) == 0 {
		return nil, fmt.Errorf("groundtrack: no satellites")
	}
	stepHours := a.Step.Hours()
	bandHours := make([]float64, len(a.Bands))
	var auroralHours, totalHours float64

	for _, sat := range sats {
		p, err := orbit.NewPropagator(sat.Epoch, sat.Elements)
		if err != nil {
			continue
		}
		for t := from; t.Before(to); t = t.Add(a.Step) {
			sp := p.SubPointAt(t)
			lat := float64(sp.Lat)
			if lat < 0 {
				lat = -lat
			}
			totalHours += stepHours
			if lat >= AuroralLatitudeDeg {
				auroralHours += stepHours
			}
			for i, band := range a.Bands {
				if band.Contains(sp.Lat) {
					bandHours[i] += stepHours
					break
				}
			}
		}
	}
	if totalHours == 0 {
		return nil, fmt.Errorf("groundtrack: no propagation samples")
	}
	rep := &Report{
		From: from, To: to, Step: a.Step,
		TotalSatHours:   totalHours,
		AuroralFraction: auroralHours / totalHours,
		Satellites:      len(sats),
	}
	for i, band := range a.Bands {
		rep.Bands = append(rep.Bands, Exposure{
			Band:     band,
			SatHours: bandHours[i],
			Fraction: bandHours[i] / totalHours,
		})
	}
	return rep, nil
}
