package groundtrack

import (
	"math"
	"testing"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/orbit"
	"cosmicdance/internal/units"
)

var gt0 = time.Date(2024, 5, 10, 0, 0, 0, 0, time.UTC)

func starlinkSat(cat int, incl float64, raanOffset float64) SatElements {
	return SatElements{
		Catalog: cat,
		Epoch:   gt0,
		Elements: orbit.Elements{
			Eccentricity: 0.0001,
			MeanMotion:   15.05,
			Inclination:  units.Degrees(incl),
			RAAN:         units.Degrees(raanOffset),
			ArgPerigee:   0,
			MeanAnomaly:  units.Degrees(raanOffset * 2),
		},
	}
}

func TestBandContains(t *testing.T) {
	b := Band{40, 60}
	cases := []struct {
		lat  units.Degrees
		want bool
	}{
		{45, true}, {-45, true}, {39.9, false}, {60, false}, {59.9, true}, {0, false},
	}
	for _, c := range cases {
		if got := b.Contains(c.lat); got != c.want {
			t.Errorf("Contains(%v) = %v", c.lat, got)
		}
	}
	if b.String() != "40-60°" {
		t.Errorf("String = %q", b.String())
	}
}

func TestAnalyzeValidation(t *testing.T) {
	a := NewAnalyzer()
	sats := []SatElements{starlinkSat(1, 53, 0)}
	if _, err := a.Analyze(nil, gt0, gt0.Add(time.Hour)); err == nil {
		t.Error("no satellites accepted")
	}
	if _, err := a.Analyze(sats, gt0, gt0); err == nil {
		t.Error("empty window accepted")
	}
	a.Step = 0
	if _, err := a.Analyze(sats, gt0, gt0.Add(time.Hour)); err == nil {
		t.Error("zero step accepted")
	}
}

func TestExposurePartition(t *testing.T) {
	a := NewAnalyzer()
	sats := []SatElements{
		starlinkSat(1, 53, 0),
		starlinkSat(2, 53, 120),
		starlinkSat(3, 97.6, 240),
	}
	rep, err := a.Analyze(sats, gt0, gt0.Add(6*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Fractions sum to 1 (bands cover 0-90).
	sum := 0.0
	for _, e := range rep.Bands {
		sum += e.Fraction
		if e.Fraction < 0 || e.Fraction > 1 {
			t.Errorf("band %v fraction = %v", e.Band, e.Fraction)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %v", sum)
	}
	if rep.Satellites != 3 {
		t.Errorf("satellites = %d", rep.Satellites)
	}
	// 3 satellites over 6 hours = 18 satellite-hours.
	if math.Abs(rep.TotalSatHours-18) > 0.5 {
		t.Errorf("total sat-hours = %v, want ~18", rep.TotalSatHours)
	}
}

func TestInclinationControlsAuroralExposure(t *testing.T) {
	a := NewAnalyzer()
	// A 53-degree fleet barely grazes the auroral zone; a polar fleet lives
	// in it for a large share of every orbit.
	low, err := a.Analyze([]SatElements{starlinkSat(1, 53, 0)}, gt0, gt0.Add(12*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	high, err := a.Analyze([]SatElements{starlinkSat(2, 97.6, 0)}, gt0, gt0.Add(12*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if high.AuroralFraction <= low.AuroralFraction {
		t.Errorf("polar auroral fraction (%v) not above 53-deg fraction (%v)",
			high.AuroralFraction, low.AuroralFraction)
	}
	if low.AuroralFraction > 0.2 {
		t.Errorf("53-degree fleet auroral fraction = %v, want small", low.AuroralFraction)
	}
	if high.AuroralFraction < 0.3 {
		t.Errorf("polar fleet auroral fraction = %v, want large", high.AuroralFraction)
	}
}

func TestEquatorialOrbitStaysLow(t *testing.T) {
	a := NewAnalyzer()
	rep, err := a.Analyze([]SatElements{starlinkSat(1, 5, 0)}, gt0, gt0.Add(6*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bands[0].Fraction < 0.99 {
		t.Errorf("5-degree orbit equatorial fraction = %v, want ~1", rep.Bands[0].Fraction)
	}
	if rep.AuroralFraction != 0 {
		t.Errorf("5-degree orbit auroral fraction = %v", rep.AuroralFraction)
	}
}

func TestFromSamples(t *testing.T) {
	mk := func(cat int32, at time.Time, alt float32) constellation.Sample {
		return constellation.Sample{
			Catalog: cat, Epoch: at.Unix(), AltKm: alt,
			Inclination: 53, RAAN: 10, ArgPerigee: 20, MeanAnomaly: 30, Eccentricity: 0.0001,
		}
	}
	samples := []constellation.Sample{
		mk(1, gt0.Add(-24*time.Hour), 550),
		mk(1, gt0.Add(-2*time.Hour), 549), // latest before cutoff
		mk(1, gt0.Add(2*time.Hour), 548),  // after cutoff: ignored
		mk(2, gt0.Add(-1*time.Hour), 540),
		mk(3, gt0.Add(5*time.Hour), 550), // only after cutoff: excluded
	}
	sats := FromSamples(samples, gt0)
	if len(sats) != 2 {
		t.Fatalf("sats = %d, want 2", len(sats))
	}
	if sats[0].Catalog != 1 || sats[1].Catalog != 2 {
		t.Errorf("catalogs = %d, %d", sats[0].Catalog, sats[1].Catalog)
	}
	if !sats[0].Epoch.Equal(gt0.Add(-2 * time.Hour)) {
		t.Errorf("sat 1 epoch = %v, want the latest pre-cutoff sample", sats[0].Epoch)
	}
	// Altitude survives through mean motion.
	if alt := sats[0].Elements.Altitude(); alt < 548 || alt > 550 {
		t.Errorf("sat 1 altitude = %v", alt)
	}
}

func TestFromSamplesFresh(t *testing.T) {
	mkSample := func(cat int32, at time.Time) constellation.Sample {
		return constellation.Sample{
			Catalog: cat, Epoch: at.Unix(), AltKm: 550,
			Inclination: 53, Eccentricity: 0.0001,
		}
	}
	samples := []constellation.Sample{
		mkSample(1, gt0.Add(-2*time.Hour)),     // fresh
		mkSample(2, gt0.Add(-10*24*time.Hour)), // stale: re-entered weeks ago
	}
	all := FromSamplesFresh(samples, gt0, 0)
	if len(all) != 2 {
		t.Fatalf("unbounded = %d sats", len(all))
	}
	fresh := FromSamplesFresh(samples, gt0, 3*24*time.Hour)
	if len(fresh) != 1 || fresh[0].Catalog != 1 {
		t.Fatalf("fresh = %+v, want only catalog 1", fresh)
	}
}
