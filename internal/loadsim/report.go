package loadsim

import (
	"encoding/json"
	"math"
	"sort"
	"time"

	"cosmicdance/internal/faultline"
	"cosmicdance/internal/obs"
)

// Report is one run's benchdiff-style baseline. Every field derives from
// the virtual timeline and deterministic counters — no wall-clock
// timestamps — so equal (seed, mix, schedule) runs marshal to identical
// bytes.
type Report struct {
	Schema          string          `json:"schema"`
	Seed            int64           `json:"seed"`
	VirtualDuration string          `json:"virtual_duration"`
	Mix             MixCounts       `json:"mix"`
	FaultSchedule   string          `json:"fault_schedule,omitempty"`
	Requests        int64           `json:"requests"`
	WireBytes       int64           `json:"wire_bytes"`
	Resets          int64           `json:"resets"`
	Statuses        []StatusCount   `json:"statuses"`
	Server          ServerCounts    `json:"server"`
	Workloads       []WorkloadStats `json:"workloads"`
	Ingest          IngestStats     `json:"ingest"`
	FaultsInjected  []FaultCount    `json:"faults_injected,omitempty"`
	SLO             []obs.SLOResult `json:"slo,omitempty"`
	Flight          *FlightSummary  `json:"flight,omitempty"`
}

// MixCounts echoes the client mix the run was configured with.
type MixCounts struct {
	Bulk      int `json:"bulk"`
	Poll      int `json:"poll"`
	Spike     int `json:"spike"`
	Ingesters int `json:"ingesters"`
	Feed      int `json:"feed"`
}

// StatusCount is one HTTP status' frequency on the wire.
type StatusCount struct {
	Code  int   `json:"code"`
	Count int64 `json:"count"`
}

// ServerCounts are the server's own admission tallies.
type ServerCounts struct {
	Served      int64 `json:"served"`
	RateLimited int64 `json:"rate_limited"`
	Overloaded  int64 `json:"overloaded"`
}

// WorkloadStats summarizes one client class's closed-loop experience.
// Latency percentiles are virtual milliseconds over complete operations
// (including every retry and backpressure wait inside one operation).
type WorkloadStats struct {
	Name         string  `json:"name"`
	Clients      int     `json:"clients"`
	Ops          int64   `json:"ops"`
	Failures     int64   `json:"failures"`
	NotModified  int64   `json:"not_modified,omitempty"`
	StreamEvents int64   `json:"stream_events,omitempty"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	PerSec       float64 `json:"throughput_per_sec"`
}

// IngestStats tracks the live-write side: a dropped set is one the client
// gave up on after exhausting retries.
type IngestStats struct {
	Attempted int64 `json:"attempted"`
	Applied   int64 `json:"applied"`
	Dropped   int64 `json:"dropped"`
}

// FaultCount is one injected fault kind's tally.
type FaultCount struct {
	Kind  string `json:"kind"`
	Count int64  `json:"count"`
}

// FlightSummary condenses the run's flight-recorder ring: how many events it
// retained, how many of those are rejects, and the sorted trace IDs of every
// rejected request still in the ring — server-side admission sheds and
// injector-origin 429/503s alike.
type FlightSummary struct {
	Events         int      `json:"events"`
	Rejects        int      `json:"rejects"`
	RejectedTraces []string `json:"rejected_traces,omitempty"`
}

// Marshal renders the report as stable, indented JSON with a trailing
// newline.
func (r *Report) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// report assembles the run's Report from the sim state.
func (s *sim) report() *Report {
	r := &Report{
		Schema:          "spaceload/v1",
		Seed:            s.cfg.Seed,
		VirtualDuration: s.cfg.Duration.String(),
		Mix: MixCounts{
			Bulk: s.cfg.Bulk, Poll: s.cfg.Poll, Spike: s.cfg.Spike,
			Ingesters: s.cfg.Ingesters, Feed: s.cfg.Feed,
		},
		FaultSchedule: s.cfg.FaultSchedule,
		Requests:      s.transport.requests,
		WireBytes:     s.transport.wireBytes,
		Resets:        s.transport.resets,
		Server: ServerCounts{
			Served:      s.srv.RequestsServed(),
			RateLimited: s.srv.RateLimited(),
			Overloaded:  s.srv.Overloaded(),
		},
	}
	codes := make([]int, 0, len(s.transport.statuses))
	for code := range s.transport.statuses {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		r.Statuses = append(r.Statuses, StatusCount{Code: code, Count: s.transport.statuses[code]})
	}

	byKind := map[string]*WorkloadStats{}
	latByKind := map[string][]time.Duration{}
	for _, a := range s.actors {
		w := byKind[a.kind]
		if w == nil {
			w = &WorkloadStats{Name: a.kind}
			byKind[a.kind] = w
		}
		w.Clients++
		w.Ops += a.ops
		w.Failures += a.failures
		w.NotModified += a.notModified
		w.StreamEvents += a.streamEvents
		latByKind[a.kind] = append(latByKind[a.kind], a.latencies...)
		r.Ingest.Attempted += a.attempted
		r.Ingest.Applied += a.applied
		r.Ingest.Dropped += a.dropped
	}
	names := make([]string, 0, len(byKind))
	for name := range byKind {
		names = append(names, name)
	}
	sort.Strings(names)
	secs := s.cfg.Duration.Seconds()
	for _, name := range names {
		w := byKind[name]
		lat := latByKind[name]
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		w.P50Ms = percentileMs(lat, 50)
		w.P99Ms = percentileMs(lat, 99)
		w.PerSec = round3(float64(w.Ops) / secs)
		r.Workloads = append(r.Workloads, *w)
	}
	r.SLO = s.slo.Report()
	if s.flight != nil {
		rejects := 0
		events := s.flight.Dump()
		for _, ev := range events {
			if ev.Kind == "reject" {
				rejects++
			}
		}
		r.Flight = &FlightSummary{
			Events:         len(events),
			Rejects:        rejects,
			RejectedTraces: s.flight.RejectedTraces(),
		}
	}
	if s.injector != nil {
		stats := s.injector.Stats()
		kinds := make([]string, 0, len(stats))
		for k := range stats {
			kinds = append(kinds, string(k))
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			r.FaultsInjected = append(r.FaultsInjected, FaultCount{Kind: k, Count: stats[faultline.Kind(k)]})
		}
	}
	return r
}

// percentileMs is the nearest-rank percentile of a sorted latency slice, in
// milliseconds rounded to microsecond precision.
func percentileMs(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted) - 1) * p / 100
	return round3(float64(sorted[idx]) / float64(time.Millisecond))
}

// round3 keeps three decimals — stable and readable in diffs.
func round3(v float64) float64 {
	return math.Round(v*1000) / 1000
}
