package loadsim

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"
)

// stormConfig is the storm-spike scenario the acceptance gate measures:
// pollers and ingesters run steadily while a spike fleet slams the group
// endpoint against a capacity-limited server.
func stormConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		Duration:       10 * time.Minute,
		Bulk:           2,
		Poll:           2,
		Spike:          6,
		Ingesters:      2,
		RatePerSec:     20,
		Burst:          10,
		CapacityPerSec: 8,
		CapacityBurst:  4,
		ArchiveDays:    10,
	}
}

func mustRun(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunSameSeedByteIdentical(t *testing.T) {
	cfg := stormConfig(7)
	cfg.Feed = 2
	cfg.FaultSchedule = "429:1/31,reset:1/37"
	a, err := mustRun(t, cfg).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mustRun(t, cfg).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed/mix/schedule diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	// A different seed must actually change the run, or the determinism
	// above is vacuous.
	other := stormConfig(8)
	other.FaultSchedule = cfg.FaultSchedule
	c, err := mustRun(t, other).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestIncrementalFeedWorkload drives the feed subscribers against live
// ingest: the risk view must revalidate (304s), the delta stream must carry
// the ingest-driven events, and with no admission pressure the subscriber
// never fails.
func TestIncrementalFeedWorkload(t *testing.T) {
	rep := mustRun(t, Config{
		Seed:        11,
		Duration:    10 * time.Minute,
		Ingesters:   2,
		Feed:        3,
		RatePerSec:  50,
		Burst:       50,
		ArchiveDays: 10,
	})
	var feed *WorkloadStats
	for i := range rep.Workloads {
		if rep.Workloads[i].Name == "feed" {
			feed = &rep.Workloads[i]
		}
	}
	if feed == nil {
		t.Fatalf("no feed workload in report: %+v", rep.Workloads)
	}
	if feed.Clients != 3 || feed.Ops == 0 {
		t.Fatalf("feed workload did not run: %+v", feed)
	}
	if feed.Failures != 0 {
		t.Fatalf("feed subscribers failed without admission pressure: %+v", feed)
	}
	if feed.StreamEvents == 0 {
		t.Fatalf("delta stream carried no events despite live ingest: %+v", feed)
	}
	if feed.NotModified == 0 {
		t.Fatalf("risk view never revalidated: %+v", feed)
	}
	if rep.Ingest.Applied == 0 {
		t.Fatalf("ingest workload idle: %+v", rep.Ingest)
	}
}

func TestStormSpikeBackpressure(t *testing.T) {
	rep := mustRun(t, stormConfig(42))

	// The spike overwhelmed the capacity bucket: load was shed with 503s.
	if rep.Server.Overloaded == 0 {
		t.Fatal("storm spike never tripped the capacity bucket")
	}
	saw503 := false
	for _, sc := range rep.Statuses {
		if sc.Code == http.StatusServiceUnavailable && sc.Count > 0 {
			saw503 = true
		}
	}
	if !saw503 {
		t.Fatalf("no 503s on the wire: %+v", rep.Statuses)
	}

	// Backpressure never costs writes: every ingested set landed.
	if rep.Ingest.Dropped != 0 {
		t.Fatalf("dropped %d ingested sets under admission control", rep.Ingest.Dropped)
	}
	if rep.Ingest.Attempted == 0 || rep.Ingest.Applied != rep.Ingest.Attempted {
		t.Fatalf("ingest applied %d of %d attempted", rep.Ingest.Applied, rep.Ingest.Attempted)
	}

	// Shedding keeps the tail bounded: a spike operation retries through
	// Retry-After instead of queueing unboundedly.
	for _, w := range rep.Workloads {
		if w.Name != "spike" {
			continue
		}
		if w.Ops == 0 {
			t.Fatal("spike workload never ran")
		}
		if w.P99Ms <= 0 || w.P99Ms > 30_000 {
			t.Fatalf("spike p99 = %vms, want bounded (0, 30s]", w.P99Ms)
		}
	}

	// The pollers' conditional fetches paid off in 304s.
	for _, w := range rep.Workloads {
		if w.Name == "poll" && w.NotModified == 0 {
			t.Fatal("pollers never revalidated via 304")
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{Duration: 0, Poll: 1}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Run(context.Background(), Config{Duration: time.Minute}); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := Run(context.Background(), Config{Duration: time.Minute, Poll: 1, FaultSchedule: "bogus"}); err == nil {
		t.Error("bad fault schedule accepted")
	}
}

func TestTransportTransferTimeAndFaults(t *testing.T) {
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := NewClock(start)
	payload := bytes.Repeat([]byte("x"), 1000)
	mux := http.NewServeMux()
	mux.HandleFunc("/plain", func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	})
	mux.HandleFunc("/short", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", strconv.Itoa(2*len(payload)))
		w.Write(payload)
	})
	mux.HandleFunc("/reset", func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})
	tr := &Transport{
		Handler:    mux,
		Clock:      clock,
		PerRequest: 10 * time.Millisecond,
		PerByte:    time.Microsecond,
	}
	get := func(path string) (*http.Response, error) {
		req, err := http.NewRequest(http.MethodGet, "http://sim"+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		return tr.RoundTrip(req)
	}

	before := clock.Now()
	resp, err := get("/plain")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil || !bytes.Equal(body, payload) {
		t.Fatalf("plain body: err=%v len=%d", err, len(body))
	}
	if got, want := clock.Now().Sub(before), 10*time.Millisecond+1000*time.Microsecond; got != want {
		t.Fatalf("transfer time %v, want %v (10ms + 1000 bytes x 1µs)", got, want)
	}

	// Declared length beyond the served bytes ends in a short read.
	resp, err = get("/short")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(resp.Body); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short body read err = %v, want unexpected EOF", err)
	}

	// An aborted handler is a transport error, not a response.
	if _, err := get("/reset"); !errors.Is(err, errReset) {
		t.Fatalf("reset err = %v, want errReset", err)
	}
	if tr.resets != 1 || tr.requests != 3 {
		t.Fatalf("resets=%d requests=%d, want 1 and 3", tr.resets, tr.requests)
	}
}
