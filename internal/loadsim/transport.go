package loadsim

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cosmicdance/internal/obs"
)

// errReset is what the transport surfaces for an aborted handler — the
// in-process shape of a torn TCP connection.
var errReset = errors.New("loadsim: connection reset by server")

// Transport is an http.RoundTripper that invokes an http.Handler directly
// and charges virtual transfer time to the shared clock: PerRequest for the
// round trip plus PerByte for every wire byte of the response body. It
// negotiates gzip like a real HTTP stack — wire bytes are counted
// compressed, the caller sees the inflated body — and it reproduces the two
// transport-level fault shapes the fault injector emits: aborted handlers
// become connection-reset errors, and bodies shorter than their declared
// Content-Length end in a short read.
//
// The transport is single-threaded by construction: the simulation's event
// loop serializes every request, which is what makes its counters and the
// virtual timeline reproducible.
type Transport struct {
	Handler    http.Handler
	Clock      *Clock
	PerRequest time.Duration // per round trip (default 2ms)
	PerByte    time.Duration // per wire byte (default 500ns, ~2 MB/s)

	// Flight, when set, records injector-origin rejections — 429/503s the
	// fault injector short-circuits before the server's admission layer ever
	// sees them. The server echoes Cosmic-Trace before admission, so a reject
	// without the echo can only have come from the injector; recording it here
	// keeps the flight recorder's "who got shed" list complete.
	Flight *obs.FlightRecorder

	requests   int64
	wireBytes  int64
	resets     int64
	statuses   map[int]int64
	notModOnly int64
}

// recorder is the minimal in-memory ResponseWriter for handler invocation.
type recorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
	wrote  bool
}

func (w *recorder) Header() http.Header { return w.header }

func (w *recorder) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
}

func (w *recorder) Write(p []byte) (int, error) {
	if !w.wrote {
		w.wrote = true
	}
	return w.body.Write(p)
}

// shortReader serves its bytes then fails with an unexpected EOF, the
// client-visible shape of a truncated response.
type shortReader struct{ r io.Reader }

func (s *shortReader) Read(p []byte) (int, error) {
	n, err := s.r.Read(p)
	if err == io.EOF {
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (resp *http.Response, err error) {
	t.requests++
	out := req.Clone(req.Context())
	if out.Header.Get("Accept-Encoding") == "" {
		out.Header.Set("Accept-Encoding", "gzip")
	}
	out.RemoteAddr = "203.0.113.7:4242"

	rec := &recorder{code: http.StatusOK, header: make(http.Header)}
	defer func() {
		if r := recover(); r != nil {
			if r != http.ErrAbortHandler {
				panic(r)
			}
			t.resets++
			t.Clock.Advance(t.perRequest())
			resp, err = nil, errReset
		}
	}()
	t.Handler.ServeHTTP(rec, out)

	wire := rec.body.Len()
	t.wireBytes += int64(wire)
	t.Clock.Advance(t.perRequest() + time.Duration(wire)*t.perByte())
	if t.statuses == nil {
		t.statuses = make(map[int]int64)
	}
	t.statuses[rec.code]++
	if rec.code == http.StatusNotModified {
		t.notModOnly++
	}
	if (rec.code == http.StatusTooManyRequests || rec.code == http.StatusServiceUnavailable) &&
		rec.header.Get(obs.TraceHeader) == "" {
		t.Flight.RecordReject(obs.FlightEvent{
			Trace:    out.Header.Get(obs.TraceHeader),
			Endpoint: endpointOf(out.URL.Path),
			Status:   rec.code,
			Detail:   "injected",
		})
	}

	body := rec.body.Bytes()
	declared := len(body)
	if v := rec.header.Get("Content-Length"); v != "" {
		if n, perr := strconv.Atoi(v); perr == nil {
			declared = n
		}
	}
	var reader io.Reader = bytes.NewReader(body)
	switch {
	case declared > len(body):
		// Truncation fault: the injector declares the full length but serves
		// half, so the read must die short of the promise.
		reader = &shortReader{r: reader}
	case rec.header.Get("Content-Encoding") == "gzip":
		if inflated, zerr := inflate(body); zerr == nil {
			body = inflated
			reader = bytes.NewReader(body)
			rec.header.Del("Content-Encoding")
			declared = len(body)
		}
		// Undecodable gzip (a corruption fault hit the compressed stream)
		// passes through raw: the client's body verification rejects it.
	}
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", rec.code, http.StatusText(rec.code)),
		StatusCode:    rec.code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        rec.header,
		Body:          io.NopCloser(reader),
		ContentLength: int64(declared),
		Request:       req,
	}, nil
}

func inflate(body []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		return nil, err
	}
	if err := zr.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// endpointOf maps a request path to the endpoint label the server's own
// telemetry uses, so transport-recorded rejects aggregate with server ones.
func endpointOf(path string) string {
	switch {
	case strings.HasPrefix(path, "/v1/"):
		return "feed"
	case path == "/ingest":
		return "ingest"
	case path == "/history":
		return "history"
	case strings.HasPrefix(path, "/NORAD/"):
		return "group"
	}
	return "other"
}

func (t *Transport) perRequest() time.Duration {
	if t.PerRequest > 0 {
		return t.PerRequest
	}
	return 2 * time.Millisecond
}

func (t *Transport) perByte() time.Duration {
	if t.PerByte > 0 {
		return t.PerByte
	}
	return 500 * time.Nanosecond
}
