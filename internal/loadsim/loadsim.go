package loadsim

import (
	"bufio"
	"bytes"
	"container/heap"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/dst"
	"cosmicdance/internal/faultline"
	"cosmicdance/internal/incremental"
	"cosmicdance/internal/obs"
	"cosmicdance/internal/spacetrack"
	"cosmicdance/internal/tle"
)

// Config describes one load run. The zero value is not runnable; Duration
// and at least one client count must be set.
type Config struct {
	// Seed drives every random choice in the run: think times, window
	// picks, client retry jitter, and fault corruption bytes.
	Seed int64
	// Duration is the virtual length of the run.
	Duration time.Duration
	// Bulk, Poll and Spike size the client mix: bulk-history crawlers,
	// incremental conditional pollers, and storm-spike clients that wake in
	// a burst window at one third of the run.
	Bulk, Poll, Spike int
	// Ingesters inject live element sets through POST /ingest while the
	// read load runs.
	Ingesters int
	// Feed sizes the incremental-feed subscribers: clients that revalidate
	// the materialized decay-risk view (GET /v1/risk with If-None-Match) and
	// drain the delta stream (GET /v1/risk/stream) from a saved cursor.
	Feed int
	// FaultSchedule is a faultline schedule DSL string ("429:3/7,reset:1/9")
	// injected in front of the server; empty disables.
	FaultSchedule string
	// Server admission knobs, mirroring the spacetrack.Server fields. Zero
	// values disable the respective layer.
	RatePerSec, Burst             float64
	CapacityPerSec, CapacityBurst float64
	MaxInFlight                   int64
	// ArchiveDays sizes the simulated archive backing the server
	// (default 30).
	ArchiveDays int
	// PerRequest and PerByte override the transport's transfer-time model.
	PerRequest, PerByte time.Duration
}

// group is the single constellation group the backing archive serves.
const group = "starlink"

// event is one scheduled actor turn.
type event struct {
	at  time.Time
	seq int64
	a   *actor
}

// eventHeap orders events by (time, insertion sequence) so simultaneous
// turns fire in a reproducible order.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// actor is one simulated client with its workload state.
type actor struct {
	kind   string
	id     string
	client *spacetrack.Client
	httpc  *http.Client
	rng    *rng
	trace  *obs.IDStream // per-actor trace-ID stream (seed, stream) — see mk

	catalogs    []int     // bulk: catalog numbers learned from the group fetch
	etag        string    // poll: saved validators
	lastMod     string    //
	template    *tle.TLE  // ingest: element set to clone
	nextCatalog int       // ingest: next synthetic catalog number
	until       time.Time // spike: end of the burst window
	cursor      uint64    // feed: last delta sequence seen on the stream

	ops, failures, notModified  int64
	attempted, applied, dropped int64
	streamEvents                int64
	latencies                   []time.Duration
}

// sim is the run state shared by the event loop and the actors.
type sim struct {
	cfg       Config
	clock     *Clock
	transport *Transport
	srv       *spacetrack.Server
	injector  *faultline.Injector
	flight    *obs.FlightRecorder
	slo       *obs.SLOTracker
	start     time.Time // archive window start
	end       time.Time // archive frontier == virtual run start
	stop      time.Time // virtual run end
	actors    []*actor
}

// Run executes one load run and returns its report. The error path covers
// configuration problems only; request-level failures are data, not errors.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadsim: duration must be positive")
	}
	if cfg.Bulk+cfg.Poll+cfg.Spike+cfg.Ingesters+cfg.Feed == 0 {
		return nil, fmt.Errorf("loadsim: empty client mix")
	}
	sched, err := faultline.ParseSchedule(cfg.FaultSchedule)
	if err != nil {
		return nil, err
	}
	days := cfg.ArchiveDays
	if days <= 0 {
		days = 30
	}

	// The backing archive: the same deterministic constellation run the
	// daemon serves, wrapped in the COW catalog so ingest works.
	start := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	ccfg := constellation.DefaultConfig()
	ccfg.Start = start
	ccfg.Hours = days * 24
	ccfg.InitialFleet = 20
	ccfg.GrossErrorProb = 0
	ccfg.DecommissionPerYear = 0
	vals := make([]float64, ccfg.Hours)
	for i := range vals {
		vals[i] = -10
	}
	res, err := constellation.Run(ctx, ccfg, dst.FromValues(start, vals))
	if err != nil {
		return nil, err
	}
	end := start.Add(time.Duration(ccfg.Hours) * time.Hour)
	catalog := spacetrack.NewCatalog(spacetrack.NewResultArchive(group, res), end)

	clock := NewClock(end)
	srv := spacetrack.NewServer(catalog, end)
	srv.Now = clock.Now
	srv.RatePerSec = cfg.RatePerSec
	srv.Burst = cfg.Burst
	srv.CapacityPerSec = cfg.CapacityPerSec
	srv.CapacityBurst = cfg.CapacityBurst
	srv.MaxInFlight = cfg.MaxInFlight

	// The observability plane rides the virtual clock: every trace ID comes
	// from a seeded stream and every flight/SLO timestamp from the simulated
	// timeline, so the report — traces included — stays byte-identical across
	// same-seed runs. Stream 0 is the server's (for requests arriving without
	// a Cosmic-Trace header); actors use streams 1..n, assigned below.
	flight := obs.NewFlightRecorder(4096, clock.Now)
	slo := obs.NewSLOTracker(nil, obs.DefaultObjectives(), clock.Now)
	srv.Trace = obs.NewIDStream(uint64(cfg.Seed), 0)
	srv.Flight = flight
	srv.SLO = slo

	// The live decay-risk feed rides alongside the tracking endpoints,
	// exactly as in spacetrackd: seeded from the archive, advanced in
	// O(delta) by every accepted ingest batch.
	feed := incremental.NewFeed(incremental.New(incremental.DefaultConfig()), 0)
	feed.IngestSamples(res.Samples)
	if _, err := feed.WeatherIndex(dst.FromValues(start, vals)); err != nil {
		return nil, err
	}
	feed.SetFlight(flight)
	srv.OnIngest = func(group string, sets []*tle.TLE, applied int, trace obs.TraceID) {
		feed.IngestTLEsTraced(sets, trace)
		feed.SetWatermarkLag(clock.Now())
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", feed.Handler())
	mux.Handle("/", srv.Handler())

	var handler http.Handler = mux
	var injector *faultline.Injector
	if len(sched.Rules) > 0 {
		injector = faultline.New(handler, sched, cfg.Seed)
		handler = injector
	}
	transport := &Transport{
		Handler:    handler,
		Clock:      clock,
		PerRequest: cfg.PerRequest,
		PerByte:    cfg.PerByte,
		Flight:     flight,
	}

	s := &sim{
		cfg:       cfg,
		clock:     clock,
		transport: transport,
		srv:       srv,
		injector:  injector,
		flight:    flight,
		slo:       slo,
		start:     start,
		end:       end,
		stop:      end.Add(cfg.Duration),
	}
	template := catalog.GroupLatest(group, end)[0]
	httpc := &http.Client{Transport: transport}
	mk := func(kind string, i, stream int) *actor {
		a := &actor{
			kind:  kind,
			id:    fmt.Sprintf("%s-%d", kind, i),
			rng:   newRNG(cfg.Seed, uint64(stream)),
			trace: obs.NewIDStream(uint64(cfg.Seed), uint64(stream)),
			httpc: httpc,
		}
		client, cerr := spacetrack.NewClient("http://spacetrackd.sim", httpc)
		if cerr != nil {
			panic(cerr) // static URL, cannot fail
		}
		client.ClientID = a.id
		client.Seed = cfg.Seed + int64(stream)
		client.Sleep = clock.Sleep
		client.Trace = a.trace
		a.client = client
		return a
	}
	stream := 1
	for i := 0; i < cfg.Bulk; i++ {
		s.actors = append(s.actors, mk("bulk", i, stream))
		stream++
	}
	for i := 0; i < cfg.Poll; i++ {
		s.actors = append(s.actors, mk("poll", i, stream))
		stream++
	}
	for i := 0; i < cfg.Spike; i++ {
		a := mk("spike", i, stream)
		a.until = end.Add(cfg.Duration/3 + cfg.Duration/6)
		s.actors = append(s.actors, a)
		stream++
	}
	for i := 0; i < cfg.Ingesters; i++ {
		a := mk("ingest", i, stream)
		a.template = template
		a.nextCatalog = 90000 + i*1000
		s.actors = append(s.actors, a)
		stream++
	}
	for i := 0; i < cfg.Feed; i++ {
		s.actors = append(s.actors, mk("feed", i, stream))
		stream++
	}

	s.loop(ctx)
	return s.report(), nil
}

// loop drains the event heap: each turn runs one actor operation to
// completion on the virtual clock and schedules the actor's next turn.
func (s *sim) loop(ctx context.Context) {
	var h eventHeap
	var seq int64
	schedule := func(a *actor, at time.Time) {
		if at.After(s.stop) {
			return
		}
		seq++
		heap.Push(&h, event{at: at, seq: seq, a: a})
	}
	spikeStart := s.end.Add(s.cfg.Duration / 3)
	for _, a := range s.actors {
		switch a.kind {
		case "spike":
			schedule(a, spikeStart.Add(a.rng.between(0, 2*time.Second)))
		default:
			schedule(a, s.end.Add(a.rng.between(0, 5*time.Second)))
		}
	}
	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		s.clock.AdvanceTo(ev.at)
		a := ev.a
		begin := s.clock.Now()
		ok := a.step(ctx, s)
		a.ops++
		if !ok {
			a.failures++
		}
		a.latencies = append(a.latencies, s.clock.Now().Sub(begin))
		next := s.clock.Now().Add(a.think())
		if a.kind == "spike" && next.After(a.until) {
			continue // the burst window closed; the storm client goes quiet
		}
		schedule(a, next)
	}
}

// think returns the actor's pause before its next operation.
func (a *actor) think() time.Duration {
	switch a.kind {
	case "bulk":
		return a.rng.between(30*time.Second, 120*time.Second)
	case "poll":
		return a.rng.between(10*time.Second, 30*time.Second)
	case "spike":
		return a.rng.between(200*time.Millisecond, time.Second)
	case "feed":
		return a.rng.between(5*time.Second, 15*time.Second)
	default: // ingest
		return a.rng.between(15*time.Second, 45*time.Second)
	}
}

// step performs one workload operation. The returned flag reports success;
// failures have already been tallied into the actor's detail counters.
func (a *actor) step(ctx context.Context, s *sim) bool {
	switch a.kind {
	case "bulk":
		return a.stepBulk(ctx, s)
	case "poll":
		return a.stepPoll(ctx)
	case "spike":
		// Storm clients hammer the cheap endpoint unconditionally until
		// their window closes; past it the scheduler stops re-arming them,
		// so the last queued turn may fire just after — still counted.
		_, err := a.client.FetchGroup(ctx, group)
		return err == nil
	case "feed":
		return a.stepFeed(ctx)
	default:
		return a.stepIngest(ctx, s)
	}
}

// stepFeed alternates the incremental-feed subscriber's two operations:
// revalidate the materialized decay-risk view with the saved ETag, then
// drain the delta stream from the saved cursor (nowait — the virtual
// transport runs each request to completion, so the subscriber polls the
// stream instead of holding it open).
func (a *actor) stepFeed(ctx context.Context) bool {
	if a.ops%2 == 0 {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://spacetrackd.sim/v1/risk", nil)
		if err != nil {
			return false
		}
		req.Header.Set("X-Client-Id", a.id)
		req.Header.Set(obs.TraceHeader, a.trace.Next().String())
		if a.etag != "" {
			req.Header.Set("If-None-Match", a.etag)
		}
		resp, err := a.httpc.Do(req)
		if err != nil {
			return false
		}
		_, rerr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusNotModified:
			a.notModified++
			return true
		case resp.StatusCode == http.StatusOK && rerr == nil:
			a.etag = resp.Header.Get("ETag")
			return true
		default:
			return false
		}
	}
	url := fmt.Sprintf("http://spacetrackd.sim/v1/risk/stream?nowait=1&cursor=%d", a.cursor)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false
	}
	req.Header.Set("X-Client-Id", a.id)
	req.Header.Set(obs.TraceHeader, a.trace.Next().String())
	resp, err := a.httpc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining a failed response
		return false
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		id, ok := strings.CutPrefix(sc.Text(), "id: ")
		if !ok {
			continue
		}
		seq, perr := strconv.ParseUint(id, 10, 64)
		if perr != nil {
			return false
		}
		a.cursor = seq
		a.streamEvents++
	}
	return sc.Err() == nil
}

// stepBulk crawls: the first turn learns the catalog from the group
// endpoint, later turns pull multi-day history windows.
func (a *actor) stepBulk(ctx context.Context, s *sim) bool {
	if len(a.catalogs) == 0 {
		sets, err := a.client.FetchGroup(ctx, group)
		if err != nil || len(sets) == 0 {
			return false
		}
		a.catalogs = spacetrack.CatalogNumbers(sets)
		return true
	}
	span := a.rng.between(5*24*time.Hour, 15*24*time.Hour)
	if max := s.end.Sub(s.start); span > max {
		span = max
	}
	slack := s.end.Sub(s.start) - span
	from := s.start.Add(a.rng.between(0, slack))
	catalog := a.catalogs[a.rng.intn(len(a.catalogs))]
	_, err := a.client.FetchHistory(ctx, catalog, from, from.Add(span))
	return err == nil
}

// stepPoll revalidates the group with the saved validators, counting the
// 304s that confirm the cache.
func (a *actor) stepPoll(ctx context.Context) bool {
	page, err := a.client.FetchGroupConditional(ctx, group, a.etag, a.lastMod)
	if err != nil {
		return false
	}
	if page.NotModified {
		a.notModified++
		return true
	}
	a.etag, a.lastMod = page.ETag, page.LastModified
	return true
}

// ingestReply is the /ingest response body.
type ingestReply struct {
	Received int `json:"received"`
	Applied  int `json:"applied"`
}

// stepIngest posts a small batch of fresh element sets, retrying through
// 429/503 backpressure with the server's Retry-After. A batch counts as
// dropped only when every attempt failed — the invariant under admission
// control is that this never happens.
func (a *actor) stepIngest(ctx context.Context, s *sim) bool {
	const batch = 3
	sets := make([]*tle.TLE, batch)
	now := s.clock.Now()
	for i := range sets {
		c := *a.template
		c.CatalogNumber = a.nextCatalog
		c.Epoch = now.Add(-time.Duration(i+1) * time.Minute).UTC()
		c.Name = fmt.Sprintf("INGEST-%d", a.nextCatalog)
		sets[i] = &c
		a.nextCatalog++
	}
	var body bytes.Buffer
	if err := tle.Write(&body, sets); err != nil {
		a.dropped += batch
		return false
	}
	a.attempted += batch

	// One trace ID per logical batch, reused across retries: the flight
	// recorder then shows the same trace rejected and later applied, which is
	// exactly the story a storm post-mortem wants to read.
	trace := a.trace.Next().String()
	for attempt := 0; attempt <= 6; attempt++ {
		if attempt > 0 {
			s.clock.Advance(500 * time.Millisecond)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			"http://spacetrackd.sim/ingest?group="+group, bytes.NewReader(body.Bytes()))
		if err != nil {
			break
		}
		req.Header.Set("X-Client-Id", a.id)
		req.Header.Set("Content-Type", "text/plain")
		req.Header.Set(obs.TraceHeader, trace)
		resp, err := a.httpc.Do(req)
		if err != nil {
			continue // reset fault: retry the batch, ingest dedupes replays
		}
		payload, rerr := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); cerr != nil && rerr == nil {
			rerr = cerr
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var reply ingestReply
			if rerr != nil || json.Unmarshal(bytes.TrimSpace(payload), &reply) != nil {
				// The server committed the batch (200) but a body fault ate
				// the reply; the replay-safe store means attempted==applied.
				a.applied += batch
				return true
			}
			a.applied += int64(reply.Applied)
			return true
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			if wait := retryAfterHeader(resp); wait > 0 {
				s.clock.Advance(wait)
			}
			continue
		default:
			// 4xx: the batch itself is unacceptable, retrying cannot help.
			a.dropped += batch
			return false
		}
	}
	a.dropped += batch
	return false
}

// retryAfterHeader parses a Retry-After value in whole seconds.
func retryAfterHeader(resp *http.Response) time.Duration {
	var secs int
	if _, err := fmt.Sscanf(resp.Header.Get("Retry-After"), "%d", &secs); err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
