package loadsim

import (
	"net/http"
	"testing"
	"time"

	"cosmicdance/internal/obs"
)

// TestFaultBurstNamesRejectedTraces is the storm post-mortem acceptance
// gate: under a 503-burst schedule plus admission pressure, every shed
// request on the wire — server-side admission rejects and injector-origin
// 503s alike — lands in the flight recorder as a reject event, and the
// report names the rejected trace IDs.
func TestFaultBurstNamesRejectedTraces(t *testing.T) {
	rep := mustRun(t, Config{
		Seed:           9,
		Duration:       5 * time.Minute,
		Poll:           2,
		Spike:          3,
		Ingesters:      1,
		Feed:           1,
		RatePerSec:     30,
		Burst:          10,
		CapacityPerSec: 10,
		CapacityBurst:  5,
		ArchiveDays:    10,
		FaultSchedule:  "503:1/5",
	})
	if rep.Flight == nil {
		t.Fatal("report has no flight section")
	}
	var shed int64
	for _, sc := range rep.Statuses {
		if sc.Code == http.StatusTooManyRequests || sc.Code == http.StatusServiceUnavailable {
			shed += sc.Count
		}
	}
	if shed == 0 {
		t.Fatal("schedule produced no 429/503s — the gate is vacuous")
	}
	// The equality below only holds while the ring retains everything.
	if rep.Flight.Events >= 4096 {
		t.Fatalf("flight ring overflowed (%d events); shrink the run", rep.Flight.Events)
	}
	if int64(rep.Flight.Rejects) != shed {
		t.Fatalf("flight recorded %d rejects, wire saw %d 429/503s", rep.Flight.Rejects, shed)
	}
	if len(rep.Flight.RejectedTraces) == 0 {
		t.Fatal("no rejected traces named")
	}
	for _, id := range rep.Flight.RejectedTraces {
		if obs.ParseTraceID(id) == 0 {
			t.Fatalf("rejected trace %q is not a valid trace ID", id)
		}
	}
	// Retries reuse their request's ID, so distinct traces never exceed
	// reject events.
	if len(rep.Flight.RejectedTraces) > rep.Flight.Rejects {
		t.Fatalf("%d distinct rejected traces > %d reject events",
			len(rep.Flight.RejectedTraces), rep.Flight.Rejects)
	}
}

// TestReportCarriesSLOVerdicts pins the report's SLO section: the default
// objectives cover the three data endpoints, verdicts are pass/fail, and an
// unpressured run passes.
func TestReportCarriesSLOVerdicts(t *testing.T) {
	rep := mustRun(t, Config{
		Seed:        5,
		Duration:    5 * time.Minute,
		Poll:        2,
		Ingesters:   1,
		RatePerSec:  100,
		Burst:       100,
		ArchiveDays: 10,
	})
	if len(rep.SLO) == 0 {
		t.Fatal("report has no SLO section")
	}
	seen := map[string]bool{}
	for _, r := range rep.SLO {
		seen[r.Endpoint] = true
		if r.Verdict != "pass" && r.Verdict != "fail" {
			t.Fatalf("endpoint %s verdict %q", r.Endpoint, r.Verdict)
		}
		if r.Ops > 0 && r.Verdict != "pass" {
			t.Fatalf("unpressured run failed its SLO: %+v", r)
		}
	}
	if !seen["group"] || !seen["history"] || !seen["ingest"] {
		t.Fatalf("SLO endpoints = %v, want group/history/ingest", seen)
	}
	var groupOps int64
	for _, r := range rep.SLO {
		if r.Endpoint == "group" {
			groupOps = r.Ops
		}
	}
	if groupOps == 0 {
		t.Fatal("pollers ran but the group SLO saw no operations")
	}
}
