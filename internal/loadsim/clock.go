// Package loadsim is a deterministic closed-loop load generator for the
// spacetrack serving plane. A fleet of simulated clients — bulk history
// crawlers, incremental pollers, storm spikes, live ingesters — drives the
// real server handler through an in-process transport on a shared virtual
// clock. No wall time, no network, no goroutines: requests execute as a
// single-threaded discrete-event simulation, so two runs with the same seed,
// mix and fault schedule produce byte-identical reports.
package loadsim

import (
	"context"
	"sync"
	"time"
)

// Clock is the simulation's virtual clock. Everything in a run reads it: the
// server's admission buckets, the clients' retry sleeps, and the transport's
// transfer-time model all advance and observe the same timeline.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock starts the virtual timeline at start.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now reports the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative durations are ignored: the
// simulation's timeline is monotonic.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// AdvanceTo moves the clock forward to t if t is in the future.
func (c *Clock) AdvanceTo(t time.Time) {
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
	}
	c.mu.Unlock()
}

// Sleep is the spacetrack.Client sleep hook: it advances virtual time
// instantly instead of blocking, so retry backoff and Retry-After delays
// shape the simulated timeline rather than the test's wall time.
func (c *Clock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Advance(d)
	return nil
}
