package loadsim

import "time"

// rng is a splitmix64 generator. Each actor owns one, seeded from the run
// seed and the actor's index, so actors draw independent but reproducible
// think times and window choices regardless of interleaving.
type rng struct{ state uint64 }

func newRNG(seed int64, stream uint64) *rng {
	return &rng{state: uint64(seed)*0x9E3779B97F4A7C15 + stream*0xD1B54A32D192ED03 + 1}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// between returns a duration in [lo, hi].
func (r *rng) between(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.next()%uint64(hi-lo+1))
}
