package orbit

import (
	"math"
	"testing"
	"time"

	"cosmicdance/internal/units"
)

func starlinkElements() Elements {
	return Elements{
		Eccentricity: 0.0001,
		MeanMotion:   15.05,
		Inclination:  53,
		RAAN:         120,
		ArgPerigee:   90,
		MeanAnomaly:  0,
	}
}

var epoch = time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)

func TestNewPropagatorValidates(t *testing.T) {
	bad := starlinkElements()
	bad.MeanMotion = 0
	if _, err := NewPropagator(epoch, bad); err == nil {
		t.Error("invalid elements accepted")
	}
}

func TestLatitudeBoundedByInclination(t *testing.T) {
	p, err := NewPropagator(epoch, starlinkElements())
	if err != nil {
		t.Fatal(err)
	}
	maxLat := 0.0
	for _, sp := range p.GroundTrack(epoch, epoch.Add(3*time.Hour), time.Minute) {
		if l := math.Abs(float64(sp.Lat)); l > maxLat {
			maxLat = l
		}
		if sp.Lon < -180 || sp.Lon >= 180 {
			t.Fatalf("longitude %v outside [-180,180)", sp.Lon)
		}
	}
	// A 53-degree orbit reaches exactly ±53 degrees of latitude.
	if maxLat > 53.01 {
		t.Errorf("max |lat| = %v, want <= 53", maxLat)
	}
	if maxLat < 52.5 {
		t.Errorf("max |lat| = %v, want to reach ~53 within 2 orbits", maxLat)
	}
}

func TestPolarOrbitReachesPoles(t *testing.T) {
	e := starlinkElements()
	e.Inclination = 97.6 // sun-synchronous-like retrograde
	p, err := NewPropagator(epoch, e)
	if err != nil {
		t.Fatal(err)
	}
	maxLat := 0.0
	for _, sp := range p.GroundTrack(epoch, epoch.Add(2*time.Hour), 30*time.Second) {
		if l := math.Abs(float64(sp.Lat)); l > maxLat {
			maxLat = l
		}
	}
	if maxLat < 80 {
		t.Errorf("retrograde polar orbit max |lat| = %v, want > 80", maxLat)
	}
}

func TestOrbitalPeriodicityInLatitude(t *testing.T) {
	p, err := NewPropagator(epoch, starlinkElements())
	if err != nil {
		t.Fatal(err)
	}
	period := units.RevsPerDay(15.05).Period()
	a := p.SubPointAt(epoch)
	b := p.SubPointAt(epoch.Add(period))
	// After one orbital period the latitude repeats (longitude does not —
	// the Earth rotated underneath).
	if math.Abs(float64(a.Lat-b.Lat)) > 0.2 {
		t.Errorf("latitude after one period: %v vs %v", a.Lat, b.Lat)
	}
	if math.Abs(float64(a.Lon-b.Lon)) < 1 {
		t.Errorf("longitude did not drift over one period: %v vs %v", a.Lon, b.Lon)
	}
}

func TestElementsAtAdvancesAnomalyAndRAAN(t *testing.T) {
	p, err := NewPropagator(epoch, starlinkElements())
	if err != nil {
		t.Fatal(err)
	}
	later := p.ElementsAt(epoch.Add(24 * time.Hour))
	// RAAN regresses westward roughly 5 degrees/day at 550 km, 53 deg.
	drift := float64(later.RAAN - 120)
	for drift > 180 {
		drift -= 360
	}
	if drift > -3 || drift < -7 {
		t.Errorf("RAAN drift per day = %v, want ~-5", drift)
	}
	// Mean anomaly is wrapped into [0, 360).
	if later.MeanAnomaly < 0 || later.MeanAnomaly >= 360 {
		t.Errorf("mean anomaly = %v", later.MeanAnomaly)
	}
	// Everything else is untouched.
	if later.Inclination != 53 || later.MeanMotion != 15.05 {
		t.Errorf("unexpected element change: %+v", later)
	}
}

func TestGroundTrackDegenerateInputs(t *testing.T) {
	p, err := NewPropagator(epoch, starlinkElements())
	if err != nil {
		t.Fatal(err)
	}
	if got := p.GroundTrack(epoch, epoch.Add(-time.Hour), time.Minute); got != nil {
		t.Error("inverted window returned points")
	}
	if got := p.GroundTrack(epoch, epoch.Add(time.Hour), 0); got != nil {
		t.Error("zero step returned points")
	}
}

func TestGMSTKnownValue(t *testing.T) {
	// At J2000.0 (2000-01-01 12:00 UTC) GMST is ~280.46 degrees.
	g := GMST(time.Date(2000, 1, 1, 12, 0, 0, 0, time.UTC)) * 180 / math.Pi
	if math.Abs(g-280.46) > 0.01 {
		t.Errorf("GMST(J2000) = %v deg, want ~280.46", g)
	}
	// GMST advances ~360.9856 degrees per day: one sidereal lap plus ~1 deg.
	g2 := GMST(time.Date(2000, 1, 2, 12, 0, 0, 0, time.UTC)) * 180 / math.Pi
	adv := math.Mod(g2-g+360, 360)
	if math.Abs(adv-0.9856) > 0.01 {
		t.Errorf("daily GMST advance = %v deg, want ~0.9856 (mod 360)", adv)
	}
}

func TestJulianDateKnownValue(t *testing.T) {
	// 2000-01-01 12:00 UTC is JD 2451545.0 by definition of J2000.
	jd := julianDate(time.Date(2000, 1, 1, 12, 0, 0, 0, time.UTC))
	if math.Abs(jd-2451545.0) > 1e-6 {
		t.Errorf("JD(J2000) = %v", jd)
	}
	// 1957-10-04 19:26:24 UTC (Sputnik launch) is JD 2436116.31.
	jd = julianDate(time.Date(1957, 10, 4, 19, 26, 24, 0, time.UTC))
	if math.Abs(jd-2436116.31) > 0.01 {
		t.Errorf("JD(Sputnik) = %v", jd)
	}
}

func TestSubPointLongitudeWestwardDrift(t *testing.T) {
	// Successive ascending-node crossings drift westward by roughly
	// 360 * (period/sidereal day) ≈ 24 degrees for Starlink.
	p, err := NewPropagator(epoch, starlinkElements())
	if err != nil {
		t.Fatal(err)
	}
	period := units.RevsPerDay(15.05).Period()
	lon1 := float64(p.SubPointAt(epoch).Lon)
	lon2 := float64(p.SubPointAt(epoch.Add(period)).Lon)
	drift := math.Mod(lon2-lon1+540, 360) - 180
	if drift > -20 || drift < -28 {
		t.Errorf("per-orbit longitude drift = %v deg, want ~-24", drift)
	}
}

func TestStateVectorGeometry(t *testing.T) {
	p, err := NewPropagator(epoch, starlinkElements())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 12; k++ {
		at := epoch.Add(time.Duration(k) * 17 * time.Minute)
		s := p.StateAt(at)
		// Radius equals R⊕ + altitude throughout the circular orbit.
		wantR := float64(starlinkElements().Altitude()) + units.EarthRadiusKm
		if math.Abs(s.Radius()-wantR) > 1 {
			t.Fatalf("radius at +%d = %v, want %v", k, s.Radius(), wantR)
		}
		// Speed equals the circular orbital velocity (~7.6 km/s).
		if s.Speed() < 7.5 || s.Speed() > 7.7 {
			t.Fatalf("speed = %v", s.Speed())
		}
		// Velocity is perpendicular to position (circular orbit).
		dot := s.X*s.VX + s.Y*s.VY + s.Z*s.VZ
		if math.Abs(dot) > 1 {
			t.Fatalf("r·v = %v, want ~0", dot)
		}
	}
}

func TestStateVectorDistance(t *testing.T) {
	a := StateVector{X: 7000}
	b := StateVector{X: 7000, Y: 30}
	if d := a.Distance(b); math.Abs(d-30) > 1e-9 {
		t.Errorf("distance = %v", d)
	}
	if d := a.Distance(a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestStateVectorLatitudeConsistency(t *testing.T) {
	// The Z component must agree with the sub-point latitude:
	// sin(lat) = z / r.
	p, err := NewPropagator(epoch, starlinkElements())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		at := epoch.Add(time.Duration(k) * 13 * time.Minute)
		s := p.StateAt(at)
		sp := p.SubPointAt(at)
		latFromZ := math.Asin(s.Z/s.Radius()) * 180 / math.Pi
		if math.Abs(latFromZ-float64(sp.Lat)) > 0.01 {
			t.Fatalf("lat mismatch at +%d: %v vs %v", k, latFromZ, sp.Lat)
		}
	}
}
