package orbit

import (
	"math"
	"time"

	"cosmicdance/internal/units"
)

// SubPoint is a satellite's ground position at an instant.
type SubPoint struct {
	Lat units.Degrees // geodetic latitude, [-90, 90]
	Lon units.Degrees // east longitude, [-180, 180)
	Alt units.Kilometers
}

// Propagator advances a (near-circular) element set through time: mean
// anomaly at the mean motion, RAAN under J2 regression, altitude held at the
// epoch value. It is deliberately simpler than SGP4 — CosmicDance derives all
// its measurements from the elements themselves — but accurate enough for
// the paper's §6 "finer granularity" extension: placing satellites in
// latitude bands during storm hours.
type Propagator struct {
	epoch    time.Time
	elements Elements
	raanRate float64 // deg/day
	altKm    units.Kilometers
}

// NewPropagator builds a propagator from an element set at its epoch.
func NewPropagator(epoch time.Time, e Elements) (*Propagator, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &Propagator{
		epoch:    epoch,
		elements: e,
		raanRate: RAANRateDegPerDay(e.Altitude(), e.Inclination, e.Eccentricity),
		altKm:    e.Altitude(),
	}, nil
}

// ElementsAt returns the propagated element set at time t.
func (p *Propagator) ElementsAt(t time.Time) Elements {
	days := t.Sub(p.epoch).Seconds() / units.SecondsPerDay
	e := p.elements
	e.MeanAnomaly = MeanAnomalyAt(p.elements.MeanAnomaly, p.elements.MeanMotion, days)
	e.RAAN = (p.elements.RAAN + units.Degrees(p.raanRate*days)).Normalize360()
	return e
}

// SubPointAt returns the satellite's ground position at time t. The model is
// a circular orbit: the argument of latitude is ARGP + M, and longitude
// accounts for Earth rotation via GMST.
func (p *Propagator) SubPointAt(t time.Time) SubPoint {
	e := p.ElementsAt(t)
	// Argument of latitude (circular orbit: true anomaly ≈ mean anomaly).
	u := (e.ArgPerigee + e.MeanAnomaly).Normalize360().Radians()
	inc := e.Inclination.Radians()

	sinLat := math.Sin(inc) * math.Sin(u)
	lat := math.Asin(clamp(sinLat, -1, 1))

	// Longitude of the sub-point in the inertial frame, then rotate by GMST.
	lonInertial := math.Atan2(math.Cos(inc)*math.Sin(u), math.Cos(u)) + e.RAAN.Radians()
	lon := lonInertial - GMST(t)
	lon = math.Mod(lon, 2*math.Pi)
	if lon >= math.Pi {
		lon -= 2 * math.Pi
	}
	if lon < -math.Pi {
		lon += 2 * math.Pi
	}
	return SubPoint{
		Lat: units.DegreesFromRadians(lat),
		Lon: units.DegreesFromRadians(lon),
		Alt: p.altKm,
	}
}

// GroundTrack samples the sub-point every step over [from, to].
func (p *Propagator) GroundTrack(from, to time.Time, step time.Duration) []SubPoint {
	if step <= 0 || to.Before(from) {
		return nil
	}
	var out []SubPoint
	for t := from; !t.After(to); t = t.Add(step) {
		out = append(out, p.SubPointAt(t))
	}
	return out
}

// GMST returns the Greenwich Mean Sidereal Time angle (radians) at t, using
// the standard IAU 1982 polynomial truncated to the terms that matter at
// ground-track accuracy.
func GMST(t time.Time) float64 {
	// Julian date (UTC ≈ UT1 at this accuracy).
	jd := julianDate(t.UTC())
	d := jd - 2451545.0 // days since J2000
	// GMST in degrees.
	gmst := 280.46061837 + 360.98564736629*d
	gmst = math.Mod(gmst, 360)
	if gmst < 0 {
		gmst += 360
	}
	return gmst * math.Pi / 180
}

// julianDate converts a time to its Julian date.
func julianDate(t time.Time) float64 {
	y, m, day := t.Year(), int(t.Month()), t.Day()
	if m <= 2 {
		y--
		m += 12
	}
	a := y / 100
	b := 2 - a + a/4
	jd0 := math.Floor(365.25*float64(y+4716)) + math.Floor(30.6001*float64(m+1)) + float64(day) + float64(b) - 1524.5
	secs := float64(t.Hour())*3600 + float64(t.Minute())*60 + float64(t.Second()) + float64(t.Nanosecond())/1e9
	return jd0 + secs/86400
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// StateVector is an inertial (TEME-like) position/velocity at an instant.
type StateVector struct {
	// Position in km.
	X, Y, Z float64
	// Velocity in km/s.
	VX, VY, VZ float64
}

// Radius returns the position magnitude (km).
func (s StateVector) Radius() float64 {
	return math.Sqrt(s.X*s.X + s.Y*s.Y + s.Z*s.Z)
}

// Speed returns the velocity magnitude (km/s).
func (s StateVector) Speed() float64 {
	return math.Sqrt(s.VX*s.VX + s.VY*s.VY + s.VZ*s.VZ)
}

// Distance returns the separation between two states (km).
func (s StateVector) Distance(o StateVector) float64 {
	dx, dy, dz := s.X-o.X, s.Y-o.Y, s.Z-o.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// StateAt returns the inertial position and velocity at time t under the
// circular-orbit model: the satellite moves on a circle of radius
// (R⊕ + altitude) in the plane defined by inclination and RAAN, at the
// argument of latitude ARGP + M.
func (p *Propagator) StateAt(t time.Time) StateVector {
	e := p.ElementsAt(t)
	r := float64(p.altKm) + units.EarthRadiusKm
	u := (e.ArgPerigee + e.MeanAnomaly).Normalize360().Radians()
	inc := e.Inclination.Radians()
	raan := e.RAAN.Radians()

	cosU, sinU := math.Cos(u), math.Sin(u)
	cosI, sinI := math.Cos(inc), math.Sin(inc)
	cosO, sinO := math.Cos(raan), math.Sin(raan)

	// Position: rotate the in-plane point (r cos u, r sin u, 0) by
	// inclination about X, then RAAN about Z.
	x := r * (cosO*cosU - sinO*sinU*cosI)
	y := r * (sinO*cosU + cosO*sinU*cosI)
	z := r * (sinU * sinI)

	// Velocity: d/du of the position scaled by the angular rate.
	n := 2 * math.Pi * float64(e.MeanMotion) / units.SecondsPerDay // rad/s
	vx := r * n * (-cosO*sinU - sinO*cosU*cosI)
	vy := r * n * (-sinO*sinU + cosO*cosU*cosI)
	vz := r * n * (cosU * sinI)

	return StateVector{X: x, Y: y, Z: z, VX: vx, VY: vy, VZ: vz}
}
