package orbit

import (
	"math"
	"testing"
	"testing/quick"

	"cosmicdance/internal/units"
)

func TestAltitudeFromMeanMotionStarlink(t *testing.T) {
	// Starlink's operational shell sits at ~550 km; its satellites report a
	// mean motion of roughly 15.05 rev/day.
	alt := AltitudeFromMeanMotion(15.05)
	if alt < 545 || alt < 0 || alt > 565 {
		t.Errorf("altitude at 15.05 rev/day = %v, want ~550 km", alt)
	}
}

func TestAltitudeMeanMotionInverse(t *testing.T) {
	for _, alt := range []units.Kilometers{350, 500, 540, 550, 560, 570, 1000, 2000, 35786} {
		n, err := MeanMotionFromAltitude(alt)
		if err != nil {
			t.Fatalf("MeanMotionFromAltitude(%v): %v", alt, err)
		}
		back := AltitudeFromMeanMotion(n)
		if math.Abs(float64(back-alt)) > 1e-6 {
			t.Errorf("round trip %v -> %v -> %v", alt, n, back)
		}
	}
}

func TestMeanMotionInverseProperty(t *testing.T) {
	f := func(raw uint16) bool {
		alt := units.Kilometers(200 + float64(raw%40000))
		n, err := MeanMotionFromAltitude(alt)
		if err != nil {
			return false
		}
		back := AltitudeFromMeanMotion(n)
		return math.Abs(float64(back-alt)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanMotionMonotonicInAltitude(t *testing.T) {
	// Higher orbits are slower: mean motion must strictly decrease with
	// altitude (the inverse proportionality the paper exploits).
	prev := units.RevsPerDay(math.Inf(1))
	for alt := units.Kilometers(300); alt <= 1200; alt += 50 {
		n, err := MeanMotionFromAltitude(alt)
		if err != nil {
			t.Fatal(err)
		}
		if n >= prev {
			t.Errorf("mean motion at %v = %v, not below %v", alt, n, prev)
		}
		prev = n
	}
}

func TestMeanMotionFromAltitudeError(t *testing.T) {
	if _, err := MeanMotionFromAltitude(-units.EarthRadiusKm); err == nil {
		t.Error("want error for altitude at Earth's center")
	}
}

func TestAltitudeFromMeanMotionDegenerate(t *testing.T) {
	if got := AltitudeFromMeanMotion(0); got != 0 {
		t.Errorf("AltitudeFromMeanMotion(0) = %v, want 0", got)
	}
	if got := AltitudeFromMeanMotion(-3); got != 0 {
		t.Errorf("AltitudeFromMeanMotion(-3) = %v, want 0", got)
	}
}

func TestGeostationaryAltitude(t *testing.T) {
	// One revolution per solar day puts the satellite near (not exactly at,
	// since GEO is defined against the sidereal day) the 35,786 km belt.
	alt := AltitudeFromMeanMotion(1.0027) // sidereal-corrected
	if alt < 35000 || alt > 36500 {
		t.Errorf("GEO altitude = %v", alt)
	}
}

func TestOrbitalVelocity(t *testing.T) {
	// ~7.6 km/s at 550 km.
	v := OrbitalVelocity(550)
	if v < 7.5 || v > 7.7 {
		t.Errorf("velocity at 550 km = %v km/s, want ~7.59", v)
	}
	// Velocity decreases with altitude.
	if OrbitalVelocity(1000) >= v {
		t.Error("velocity must decrease with altitude")
	}
}

func TestRAANRateStarlink(t *testing.T) {
	// Starlink at 550 km / 53° regresses westward a few degrees per day
	// (textbook value ≈ −5°/day at that inclination... actually ~-5 for ISS
	// at 51.6°; 53° gives ≈ −4.9). Assert sign and plausible magnitude.
	rate := RAANRateDegPerDay(550, 53, 0.0001)
	if rate >= 0 {
		t.Fatalf("prograde orbit must regress westward, got %v", rate)
	}
	if rate < -7 || rate > -3 {
		t.Errorf("RAAN rate = %v deg/day, want roughly -5", rate)
	}
}

func TestRAANRatePolarIsZero(t *testing.T) {
	rate := RAANRateDegPerDay(550, 90, 0)
	if math.Abs(rate) > 1e-9 {
		t.Errorf("polar orbit RAAN rate = %v, want 0", rate)
	}
	// Retrograde (sun-synchronous-like) orbits precess eastward.
	if RAANRateDegPerDay(550, 97.6, 0) <= 0 {
		t.Error("retrograde orbit must precess eastward")
	}
}

func TestRAANRateDegenerate(t *testing.T) {
	if got := RAANRateDegPerDay(-units.EarthRadiusKm, 53, 0); got != 0 {
		t.Errorf("degenerate altitude: %v", got)
	}
	if got := RAANRateDegPerDay(550, 53, 1.5); got != 0 {
		t.Errorf("hyperbolic eccentricity: %v", got)
	}
}

func TestMeanAnomalyAt(t *testing.T) {
	// Half a revolution after 1/(2n) days.
	m := MeanAnomalyAt(0, 15, 1.0/30.0)
	if math.Abs(float64(m)-180) > 1e-9 {
		t.Errorf("mean anomaly = %v, want 180", m)
	}
	// Wraps.
	m = MeanAnomalyAt(350, 15, 1)
	if m < 0 || m >= 360 {
		t.Errorf("mean anomaly %v outside [0,360)", m)
	}
}

func TestDecayMeanMotionDelta(t *testing.T) {
	d := DecayMeanMotionDelta(550, 10)
	if d <= 0 {
		t.Fatalf("decaying 10 km must increase mean motion, got %v", d)
	}
	// A larger drop produces a larger delta.
	if DecayMeanMotionDelta(550, 50) <= d {
		t.Error("delta must grow with drop size")
	}
	if got := DecayMeanMotionDelta(-units.EarthRadiusKm, 1); got != 0 {
		t.Errorf("degenerate input: %v", got)
	}
}

func TestElementsValidate(t *testing.T) {
	good := Elements{MeanMotion: 15.05, Inclination: 53, Eccentricity: 0.0001}
	if err := good.Validate(); err != nil {
		t.Errorf("valid elements rejected: %v", err)
	}
	bad := []Elements{
		{MeanMotion: 0, Inclination: 53},
		{MeanMotion: 15, Eccentricity: -0.1},
		{MeanMotion: 15, Eccentricity: 1.0},
		{MeanMotion: 15, Inclination: -1},
		{MeanMotion: 15, Inclination: 181},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d: invalid elements accepted: %+v", i, e)
		}
	}
}

func TestElementsAltitude(t *testing.T) {
	e := Elements{MeanMotion: 15.05}
	if alt := e.Altitude(); alt < 540 || alt > 565 {
		t.Errorf("Elements.Altitude = %v", alt)
	}
}
