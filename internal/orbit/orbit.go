// Package orbit implements the Keplerian orbital mechanics CosmicDance needs:
// the mean-motion ↔ altitude conversion the paper uses to derive satellite
// altitude from TLEs, orbital periods, and the secular J2 perturbations that
// shape Fig 9 (RAAN regression of the L1 launch cohort).
package orbit

import (
	"errors"
	"fmt"
	"math"

	"cosmicdance/internal/units"
)

// Elements is a full Keplerian element set, the six parameters that
// unambiguously describe an Earth orbit (paper §A.2).
type Elements struct {
	Eccentricity float64
	MeanMotion   units.RevsPerDay
	Inclination  units.Degrees
	RAAN         units.Degrees // right ascension of the ascending node
	ArgPerigee   units.Degrees
	MeanAnomaly  units.Degrees
}

// Validate reports whether the element set is physically meaningful.
func (e Elements) Validate() error {
	if e.MeanMotion <= 0 {
		return fmt.Errorf("orbit: mean motion %v must be positive", e.MeanMotion)
	}
	if e.Eccentricity < 0 || e.Eccentricity >= 1 {
		return fmt.Errorf("orbit: eccentricity %v outside [0,1)", e.Eccentricity)
	}
	if e.Inclination < 0 || e.Inclination > 180 {
		return fmt.Errorf("orbit: inclination %v outside [0,180]", e.Inclination)
	}
	return nil
}

// Altitude returns the mean altitude implied by the mean motion.
func (e Elements) Altitude() units.Kilometers { return AltitudeFromMeanMotion(e.MeanMotion) }

// ErrNonPositive is returned for non-positive mean motions or altitudes below
// the Earth's surface.
var ErrNonPositive = errors.New("orbit: value must be positive")

// SemiMajorAxisFromMeanMotion inverts Kepler's third law:
//
//	a = ( μ (T/2π)² )^(1/3),  T = 86400/n seconds.
func SemiMajorAxisFromMeanMotion(n units.RevsPerDay) units.Kilometers {
	if n <= 0 {
		return 0
	}
	period := units.SecondsPerDay / float64(n)
	a := math.Cbrt(units.MuEarth * math.Pow(period/(2*math.Pi), 2))
	return units.Kilometers(a)
}

// AltitudeFromMeanMotion derives the mean altitude above the (mean-radius)
// Earth surface from a TLE mean motion, exactly the derivation the paper uses
// ("Mean Motion ... is inversely proportional to the altitude (we derive
// altitude from this parameter for our analysis of decay)").
func AltitudeFromMeanMotion(n units.RevsPerDay) units.Kilometers {
	a := SemiMajorAxisFromMeanMotion(n)
	if a == 0 {
		return 0
	}
	return a - units.EarthRadiusKm
}

// MeanMotionFromAltitude is the inverse of AltitudeFromMeanMotion.
func MeanMotionFromAltitude(alt units.Kilometers) (units.RevsPerDay, error) {
	a := float64(alt) + units.EarthRadiusKm
	if a <= 0 {
		return 0, ErrNonPositive
	}
	period := 2 * math.Pi * math.Sqrt(math.Pow(a, 3)/units.MuEarth)
	return units.RevsPerDay(units.SecondsPerDay / period), nil
}

// OrbitalVelocity returns the circular orbital speed (km/s) at altitude alt.
func OrbitalVelocity(alt units.Kilometers) float64 {
	a := float64(alt) + units.EarthRadiusKm
	return math.Sqrt(units.MuEarth / a)
}

// RAANRateDegPerDay returns the secular nodal-regression rate due to the
// Earth's oblateness (J2). For prograde LEO orbits the node drifts westward
// (negative rate) — this is the steady RAAN decrease visible in Fig 9.
//
//	dΩ/dt = −(3/2) J2 (Re/p)² n cos i
func RAANRateDegPerDay(alt units.Kilometers, inc units.Degrees, ecc float64) float64 {
	a := float64(alt) + units.EarthRadiusKm
	if a <= 0 || ecc >= 1 {
		return 0
	}
	n, err := MeanMotionFromAltitude(alt)
	if err != nil {
		return 0
	}
	nRadPerSec := 2 * math.Pi * float64(n) / units.SecondsPerDay
	p := a * (1 - ecc*ecc)
	rate := -1.5 * units.J2 * math.Pow(units.EarthEquatorialRadiusKm/p, 2) * nRadPerSec * math.Cos(inc.Radians())
	return rate * 180 / math.Pi * units.SecondsPerDay
}

// MeanAnomalyAt advances a mean anomaly by the given number of days at mean
// motion n, wrapped to [0,360).
func MeanAnomalyAt(m0 units.Degrees, n units.RevsPerDay, days float64) units.Degrees {
	return (m0 + units.Degrees(360*float64(n)*days)).Normalize360()
}

// DecayMeanMotionDelta converts an altitude decay (positive km, downward)
// into the corresponding mean-motion increase. Used by the constellation
// simulator so emitted TLEs stay self-consistent.
func DecayMeanMotionDelta(alt units.Kilometers, dropKm float64) units.RevsPerDay {
	before, err1 := MeanMotionFromAltitude(alt)
	after, err2 := MeanMotionFromAltitude(alt - units.Kilometers(dropKm))
	if err1 != nil || err2 != nil {
		return 0
	}
	return after - before
}
