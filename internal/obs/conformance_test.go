package obs_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cosmicdance/internal/obs"
	"cosmicdance/internal/testkit"
)

// promtextLine matches one sample line of the text exposition format
// (version 0.0.4): metric name, optional label list, and a value. Label
// values are validated separately so escape errors fail with a pointed
// message instead of a generic mismatch.
var promtextLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*")*\})? (-?[0-9.e+E-]+|[+-]Inf|NaN)$`)

var promtextType = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)

// checkPromtext validates every line of an exposition against the grammar
// and returns the parsed (series, value) pairs of the sample lines.
func checkPromtext(t *testing.T, body string) map[string]string {
	t.Helper()
	samples := make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !promtextType.MatchString(line) {
				t.Fatalf("malformed comment line %q", line)
			}
			continue
		}
		if !promtextLine.MatchString(line) {
			t.Fatalf("line violates the promtext grammar: %q", line)
		}
		sp := strings.LastIndex(line, " ")
		samples[line[:sp]] = line[sp+1:]
	}
	return samples
}

// TestPromtextConformance drives the exposition through the promtext
// grammar with hostile label values (backslash, quote, newline, tab) and
// pins the escaped rendering with a golden. Only \\, \", and \n may be
// escaped; a tab passes through raw — strconv.Quote-style \t is a grammar
// violation this test exists to keep out.
func TestPromtextConformance(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("fetch_total", "path", `C:\tle\starlink`).Add(1)
	r.Counter("fetch_total", "path", `say "cheese"`).Add(2)
	r.Counter("fetch_total", "path", "line\nbreak").Add(3)
	r.Counter("fetch_total", "path", "tab\there").Add(4)
	r.Gauge("up").Set(1)
	h := r.Histogram("latency_ms", []float64{5, 50}, "endpoint", "group")
	h.Observe(3)
	h.Observe(500)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := checkPromtext(t, buf.String())
	testkit.Golden(t, "promtext_escaping.golden", buf.Bytes())

	for series, want := range map[string]string{
		`fetch_total{path="C:\\tle\\starlink"}`:  "1",
		`fetch_total{path="say \"cheese\""}`:     "2",
		`fetch_total{path="line\nbreak"}`:        "3",
		"fetch_total{path=\"tab\there\"}":        "4", // raw tab inside the quotes
		`latency_ms_bucket{endpoint="group",le="+Inf"}`: "2",
		`latency_ms_count{endpoint="group"}`:            "2",
		`latency_ms_sum{endpoint="group"}`:              "503",
	} {
		if got := samples[series]; got != want {
			t.Fatalf("series %q = %q, want %q\nexposition:\n%s", series, got, want, buf.String())
		}
	}
}

// TestPromtextHistogramInvariants checks the format's histogram contract on
// a realistic registry: every family ends in a le="+Inf" bucket whose
// cumulative count equals the _count sample, and every histogram has _sum.
func TestPromtextHistogramInvariants(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("latency_ms", []float64{1, 10, 100}, "endpoint", "group")
	for _, v := range []float64{0.5, 7, 80, 4000} {
		h.Observe(v)
	}
	empty := r.Histogram("latency_ms", []float64{1, 10, 100}, "endpoint", "history")
	_ = empty // registered, never observed: still must expose a full bucket set

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := checkPromtext(t, buf.String())
	for _, ep := range []string{"group", "history"} {
		inf, ok := samples[fmt.Sprintf(`latency_ms_bucket{endpoint=%q,le="+Inf"}`, ep)]
		if !ok {
			t.Fatalf("endpoint %s has no +Inf bucket:\n%s", ep, buf.String())
		}
		count, ok := samples[fmt.Sprintf(`latency_ms_count{endpoint=%q}`, ep)]
		if !ok {
			t.Fatalf("endpoint %s has no _count:\n%s", ep, buf.String())
		}
		if inf != count {
			t.Fatalf("endpoint %s: +Inf bucket %s != _count %s", ep, inf, count)
		}
		if _, ok := samples[fmt.Sprintf(`latency_ms_sum{endpoint=%q}`, ep)]; !ok {
			t.Fatalf("endpoint %s has no _sum:\n%s", ep, buf.String())
		}
	}
	if samples[`latency_ms_bucket{endpoint="group",le="+Inf"}`] != "4" {
		t.Fatalf("group +Inf bucket = %s, want 4", samples[`latency_ms_bucket{endpoint="group",le="+Inf"}`])
	}
}

func TestSnapshotEmptyRegistry(t *testing.T) {
	r := obs.NewRegistry()
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("empty registry snapshot = %+v", snap)
	}
	var prom bytes.Buffer
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if prom.Len() != 0 {
		t.Fatalf("empty registry exposition = %q", prom.String())
	}
	var js bytes.Buffer
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back obs.Snapshot
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("empty snapshot JSON invalid: %v", err)
	}
}

func TestSnapshotZeroCountHistogram(t *testing.T) {
	r := obs.NewRegistry()
	r.Histogram("latency_ms", []float64{1, 10})
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms", len(snap.Histograms))
	}
	hv := snap.Histograms[0]
	if hv.Count != 0 || hv.Sum != 0 || len(hv.Counts) != 3 || hv.Exemplars != nil {
		t.Fatalf("zero-count histogram = %+v", hv)
	}
	for i, n := range hv.Counts {
		if n != 0 {
			t.Fatalf("bucket %d = %d, want 0", i, n)
		}
	}
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`latency_ms_bucket{le="+Inf"} 0`, "latency_ms_sum 0", "latency_ms_count 0"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("zero-count exposition missing %q:\n%s", want, buf.String())
		}
	}
}

// TestDuplicateLabelRegistration pins both duplicate shapes: re-registering
// an identical (name, labels) set returns the shared handle for every metric
// kind, and repeating a label *key* inside one registration panics (it would
// render an illegal series).
func TestDuplicateLabelRegistration(t *testing.T) {
	r := obs.NewRegistry()
	if a, b := r.Gauge("g", "k", "v"), r.Gauge("g", "k", "v"); a != b {
		t.Fatal("duplicate gauge registration returned distinct handles")
	}
	if a, b := r.Histogram("h", []float64{1}, "k", "v"), r.Histogram("h", []float64{1}, "k", "v"); a != b {
		t.Fatal("duplicate histogram registration returned distinct handles")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("repeated label key did not panic")
		}
	}()
	r.Counter("c", "k", "a", "k", "b")
}

// TestHistogramExemplars pins the exemplar contract: ObserveExemplar lands
// the trace in the bucket its value selects, exemplars surface only in the
// JSON snapshot (the 0.0.4 text format predates exemplar syntax), and a
// zero trace observes without pinning.
func TestHistogramExemplars(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("latency_ms", []float64{1, 10})
	h.ObserveExemplar(0.5, obs.TraceID(0xaa))
	h.ObserveExemplar(700, obs.TraceID(0xbb))
	h.ObserveExemplar(5, 0) // no trace: counted, not pinned
	h.ObserveExemplar(0.7, obs.TraceID(0xcc)) // last writer wins in bucket 0

	snap := r.Snapshot()
	hv := snap.Histograms[0]
	if hv.Count != 4 {
		t.Fatalf("count = %d, want 4", hv.Count)
	}
	want := []string{"00000000000000cc", "", "00000000000000bb"}
	if len(hv.Exemplars) != len(want) {
		t.Fatalf("exemplars = %v, want %v", hv.Exemplars, want)
	}
	for i := range want {
		if hv.Exemplars[i] != want[i] {
			t.Fatalf("exemplars = %v, want %v", hv.Exemplars, want)
		}
	}

	var prom bytes.Buffer
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	checkPromtext(t, prom.String())
	if strings.Contains(prom.String(), "cc") && strings.Contains(prom.String(), "exemplar") {
		t.Fatalf("text exposition leaked exemplars:\n%s", prom.String())
	}

	var js bytes.Buffer
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), strconv.Quote("00000000000000bb")) {
		t.Fatalf("JSON snapshot missing exemplar:\n%s", js.String())
	}

	r.SetEnabled(false)
	h.ObserveExemplar(0.5, obs.TraceID(0xdd))
	if got := r.Snapshot().Histograms[0]; got.Count != 4 || got.Exemplars[0] != "00000000000000cc" {
		t.Fatalf("disabled registry recorded an exemplar: %+v", got)
	}
}
