package obs_test

import (
	"log/slog"
	"strings"
	"sync"
	"testing"

	"cosmicdance/internal/obs"
)

func TestLoggerFormat(t *testing.T) {
	var buf strings.Builder
	log := obs.NewLogger(&buf, slog.LevelInfo)
	log.Info("loaded element sets", "stage", "ingest", "count", 120)
	log.Warn("cache store failed", "err", "disk full: no space")
	log.Debug("invisible at info level")
	got := buf.String()
	want := "INFO loaded element sets stage=ingest count=120\n" +
		"WARN cache store failed err=\"disk full: no space\"\n"
	if got != want {
		t.Fatalf("log output:\n%q\nwant:\n%q", got, want)
	}
}

func TestLoggerWithAttrsAndGroups(t *testing.T) {
	var buf strings.Builder
	log := obs.NewLogger(&buf, slog.LevelDebug).With("stage", "clean")
	log.Debug("dropped track", "catalog", 44713)
	grouped := log.WithGroup("cache")
	grouped.Info("miss", "kind", "weather")
	log.Info("grouped attr", slog.Group("fault", "kind", "429", "count", 3))
	got := buf.String()
	for _, want := range []string{
		"DEBUG dropped track stage=clean catalog=44713\n",
		"INFO miss stage=clean cache.kind=weather\n",
		"INFO grouped attr stage=clean fault.kind=429 fault.count=3\n",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}

func TestLoggerLevelGate(t *testing.T) {
	var buf strings.Builder
	log := obs.NewLogger(&buf, slog.LevelWarn)
	log.Info("dropped")
	log.Error("kept", "code", 2)
	if got := buf.String(); got != "ERROR kept code=2\n" {
		t.Fatalf("got %q", got)
	}
}

func TestLoggerQuoting(t *testing.T) {
	var buf strings.Builder
	log := obs.NewLogger(&buf, slog.LevelInfo)
	log.Info("m", "a", "", "b", `say "hi"`, "c", "k=v")
	got := buf.String()
	if got != `INFO m a="" b="say \"hi\"" c="k=v"`+"\n" {
		t.Fatalf("got %q", got)
	}
}

// TestLoggerConcurrent hammers one handler from many goroutines; every line
// must come out whole (the handler serializes writes), and the test must be
// race-clean.
func TestLoggerConcurrent(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	log := obs.NewLogger(w, slog.LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				log.Info("tick", "worker", "w")
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	mu.Unlock()
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, l := range lines {
		if l != "INFO tick worker=w" {
			t.Fatalf("torn line %q", l)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
