package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Objective is one endpoint's service-level objective: an availability
// target (fraction of requests that must not fail, exclusive of 1 so the
// error budget is never zero) and a p99 latency target, evaluated over a
// sliding window on the injected clock.
type Objective struct {
	Endpoint     string        `json:"endpoint"`
	Availability float64       `json:"availability"`
	LatencyP99Ms float64       `json:"latency_p99_ms"`
	Window       time.Duration `json:"window"`
}

// DefaultObjectives returns the serving plane's stock objectives: 99%
// availability with storm-tolerant p99 targets on the three request
// endpoints, over a 5-minute window.
func DefaultObjectives() []Objective {
	return []Objective{
		{Endpoint: "group", Availability: 0.99, LatencyP99Ms: 400, Window: 5 * time.Minute},
		{Endpoint: "history", Availability: 0.99, LatencyP99Ms: 600, Window: 5 * time.Minute},
		{Endpoint: "ingest", Availability: 0.995, LatencyP99Ms: 500, Window: 5 * time.Minute},
	}
}

// ParseObjectives parses the -slo flag form: comma-separated
// endpoint:availability%:p99ms[:window] entries, e.g.
// "group:99:400,ingest:99.5:500:10m". Window defaults to 5m.
func ParseObjectives(spec string) ([]Objective, error) {
	var objs []Objective
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("obs: bad SLO entry %q (want endpoint:availability%%:p99ms[:window])", entry)
		}
		avail, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad availability in SLO entry %q: %v", entry, err)
		}
		if avail <= 0 || avail >= 100 {
			return nil, fmt.Errorf("obs: availability in SLO entry %q must be in (0,100) exclusive", entry)
		}
		p99, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || p99 <= 0 {
			return nil, fmt.Errorf("obs: bad p99 target in SLO entry %q", entry)
		}
		window := 5 * time.Minute
		if len(parts) == 4 {
			window, err = time.ParseDuration(parts[3])
			if err != nil || window <= 0 {
				return nil, fmt.Errorf("obs: bad window in SLO entry %q", entry)
			}
		}
		objs = append(objs, Objective{
			Endpoint:     parts[0],
			Availability: avail / 100,
			LatencyP99Ms: p99,
			Window:       window,
		})
	}
	if len(objs) == 0 {
		return nil, fmt.Errorf("obs: empty SLO spec %q", spec)
	}
	return objs, nil
}

// SLOResult is one endpoint's verdict at report time. Float fields are
// rounded to 3 decimals so same-seed runs render byte-identically.
type SLOResult struct {
	Endpoint         string  `json:"endpoint"`
	Ops              int64   `json:"ops"`
	Errors           int64   `json:"errors"`
	ErrorRate        float64 `json:"error_rate"`
	BurnRate         float64 `json:"burn_rate"`
	P50Ms            float64 `json:"p50_ms"`
	P99Ms            float64 `json:"p99_ms"`
	P99TargetMs      float64 `json:"p99_target_ms"`
	AvailabilityPass bool    `json:"availability_pass"`
	LatencyPass      bool    `json:"latency_pass"`
	Verdict          string  `json:"verdict"`
}

type sloSample struct {
	at     time.Time
	ms     float64
	failed bool
}

type sloWindow struct {
	obj     Objective
	samples []sloSample
	// Lifetime tallies survive window pruning so Ops/Errors describe the
	// whole run even when the window has slid past its start.
	totalOps    int64
	totalErrors int64

	gaugeBurn *Gauge
	gaugeP99  *Gauge
	gaugePass *Gauge
}

// SLOTracker evaluates objectives over sliding windows on an injected
// clock. Record is mutex-guarded (the serving hot path already serializes
// per-request bookkeeping behind admission), Report/Publish snapshot under
// the same lock. Endpoints without a configured objective are ignored.
type SLOTracker struct {
	mu      sync.Mutex
	now     func() time.Time
	windows map[string]*sloWindow
}

// NewSLOTracker builds a tracker for objectives on clock now, registering
// per-endpoint burn-rate/p99/pass gauges in reg (skipped when reg is nil —
// loadsim tracks SLOs without exposing gauges). Invalid objectives panic:
// they come from typed config or a validated flag, so a bad one is a
// programming error.
func NewSLOTracker(reg *Registry, objectives []Objective, now func() time.Time) *SLOTracker {
	if now == nil {
		panic("obs: NewSLOTracker requires an injected clock")
	}
	t := &SLOTracker{now: now, windows: make(map[string]*sloWindow, len(objectives))}
	for _, obj := range objectives {
		if obj.Endpoint == "" || obj.Availability <= 0 || obj.Availability >= 1 ||
			obj.LatencyP99Ms <= 0 || obj.Window <= 0 {
			panic(fmt.Sprintf("obs: invalid SLO objective %+v", obj))
		}
		if _, dup := t.windows[obj.Endpoint]; dup {
			panic(fmt.Sprintf("obs: duplicate SLO objective for endpoint %q", obj.Endpoint))
		}
		w := &sloWindow{obj: obj}
		if reg != nil {
			w.gaugeBurn = reg.Gauge("spacetrack_slo_burn_rate", "endpoint", obj.Endpoint)
			w.gaugeP99 = reg.Gauge("spacetrack_slo_p99_ms", "endpoint", obj.Endpoint)
			w.gaugePass = reg.Gauge("spacetrack_slo_pass", "endpoint", obj.Endpoint)
		}
		t.windows[obj.Endpoint] = w
	}
	return t
}

// Record adds one request outcome for endpoint. failed means the request
// burned error budget (5xx or shed); a 304 or 429-then-retried success does
// not. Unknown endpoints are dropped. A nil tracker is a no-op.
func (t *SLOTracker) Record(endpoint string, latency time.Duration, failed bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	w, ok := t.windows[endpoint]
	if !ok {
		return
	}
	now := t.now()
	w.prune(now)
	w.samples = append(w.samples, sloSample{at: now, ms: float64(latency) / float64(time.Millisecond), failed: failed})
	w.totalOps++
	if failed {
		w.totalErrors++
	}
}

func (w *sloWindow) prune(now time.Time) {
	cut := now.Add(-w.obj.Window)
	i := 0
	for i < len(w.samples) && !w.samples[i].at.After(cut) {
		i++
	}
	if i > 0 {
		w.samples = append(w.samples[:0], w.samples[i:]...)
	}
}

// Report evaluates every objective against its current window and returns
// results sorted by endpoint. Burn rate is the window's error rate divided
// by the error budget (1 − availability): burn ≤ 1 means the endpoint is
// inside budget, burn N means the budget is being spent N× too fast.
func (t *SLOTracker) Report() []SLOResult {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	endpoints := make([]string, 0, len(t.windows))
	for ep := range t.windows {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	out := make([]SLOResult, 0, len(endpoints))
	for _, ep := range endpoints {
		w := t.windows[ep]
		w.prune(now)
		res := SLOResult{
			Endpoint:    ep,
			Ops:         w.totalOps,
			Errors:      w.totalErrors,
			P99TargetMs: w.obj.LatencyP99Ms,
		}
		n := len(w.samples)
		if n > 0 {
			errs := 0
			lats := make([]float64, n)
			for i, s := range w.samples {
				lats[i] = s.ms
				if s.failed {
					errs++
				}
			}
			sort.Float64s(lats)
			res.ErrorRate = float64(errs) / float64(n)
			res.BurnRate = res.ErrorRate / (1 - w.obj.Availability)
			res.P50Ms = percentile(lats, 0.50)
			res.P99Ms = percentile(lats, 0.99)
		}
		res.ErrorRate = sloRound(res.ErrorRate)
		res.BurnRate = sloRound(res.BurnRate)
		res.P50Ms = sloRound(res.P50Ms)
		res.P99Ms = sloRound(res.P99Ms)
		res.AvailabilityPass = res.BurnRate <= 1
		res.LatencyPass = res.P99Ms <= w.obj.LatencyP99Ms
		if res.AvailabilityPass && res.LatencyPass {
			res.Verdict = "pass"
		} else {
			res.Verdict = "fail"
		}
		out = append(out, res)
	}
	return out
}

// Publish refreshes the tracker's gauges from a fresh Report. Called at
// scrape time (the /metrics handler), not per request, so sliding-window
// evaluation stays off the serving hot path.
func (t *SLOTracker) Publish() {
	if t == nil {
		return
	}
	for _, res := range t.Report() {
		t.mu.Lock()
		w := t.windows[res.Endpoint]
		t.mu.Unlock()
		if w.gaugeBurn == nil {
			continue
		}
		w.gaugeBurn.Set(res.BurnRate)
		w.gaugeP99.Set(res.P99Ms)
		pass := 0.0
		if res.Verdict == "pass" {
			pass = 1
		}
		w.gaugePass.Set(pass)
	}
}

// percentile returns the nearest-rank percentile of sorted (ascending)
// values — deterministic, no interpolation surprises across platforms.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// sloRound rounds to 3 decimals, normalizing -0.
func sloRound(v float64) float64 {
	r := math.Round(v*1000) / 1000
	if r == 0 {
		return 0
	}
	return r
}
