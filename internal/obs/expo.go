package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (text/plain; version=0.0.4). Output order is the snapshot's sorted
// order, so two snapshots of identical state render byte-identically. A
// # TYPE line is emitted once per metric family, not once per labeled
// series, as the format requires.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	family := ""
	for _, c := range s.Counters {
		if c.Name != family {
			family = c.Name
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", c.Name); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", series(c.Name, c.Labels), c.Value); err != nil {
			return err
		}
	}
	family = ""
	for _, g := range s.Gauges {
		if g.Name != family {
			family = g.Name
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", g.Name); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", series(g.Name, g.Labels), formatFloat(g.Value)); err != nil {
			return err
		}
	}
	family = ""
	for _, h := range s.Histograms {
		if h.Name != family {
			family = h.Name
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name); err != nil {
				return err
			}
		}
		cum := int64(0)
		for i, n := range h.Counts {
			cum += n
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", series(h.Name+"_bucket", joinLabels(h.Labels, `le="`+le+`"`)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n%s %d\n",
			series(h.Name+"_sum", h.Labels), formatFloat(h.Sum),
			series(h.Name+"_count", h.Labels), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// series renders one sample line's series part: name or name{labels}.
func series(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// joinLabels appends extra to a rendered label list.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// formatFloat renders a float the way Prometheus text format expects:
// shortest round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders the snapshot as indented JSON. Field order is fixed by
// the struct definitions and slice order by the snapshot's sort, so the
// encoding is deterministic for identical state.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Handler serves the registry's current snapshot in Prometheus text format —
// the /metrics endpoint of cmd/spacetrackd.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Too late for a status change if a write fails mid-snapshot; the
		// client sees a short read.
		_ = r.Snapshot().WritePrometheus(w)
	})
}

// RunReport is the machine-readable run summary -metrics-json writes: the
// final metrics snapshot plus the stage timing tree (empty without a
// tracer).
type RunReport struct {
	Metrics Snapshot   `json:"metrics"`
	Trace   []SpanNode `json:"trace,omitempty"`
}

// WriteRunReport writes the report for registry r and tracer t (t may be
// nil) as indented JSON.
func WriteRunReport(w io.Writer, r *Registry, t *Tracer) error {
	rep := RunReport{Metrics: r.Snapshot(), Trace: t.Tree()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
