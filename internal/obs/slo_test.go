package obs_test

import (
	"testing"
	"time"

	"cosmicdance/internal/obs"
	"cosmicdance/internal/testkit"
)

func TestParseObjectives(t *testing.T) {
	objs, err := obs.ParseObjectives("group:99:400,ingest:99.5:500:10m")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("parsed %d objectives", len(objs))
	}
	if objs[0].Endpoint != "group" || objs[0].Availability != 0.99 || objs[0].LatencyP99Ms != 400 || objs[0].Window != 5*time.Minute {
		t.Fatalf("objs[0] = %+v", objs[0])
	}
	if objs[1].Availability != 0.995 || objs[1].Window != 10*time.Minute {
		t.Fatalf("objs[1] = %+v", objs[1])
	}

	for _, bad := range []string{
		"",
		"group",
		"group:99",
		"group:0:400",
		"group:100:400",
		"group:x:400",
		"group:99:0",
		"group:99:400:nope",
		"group:99:400:-5m",
		"group:99:400:5m:extra",
	} {
		if _, err := obs.ParseObjectives(bad); err == nil {
			t.Fatalf("ParseObjectives(%q) accepted", bad)
		}
	}
}

func TestDefaultObjectivesConstruct(t *testing.T) {
	clock := testkit.NewClock(time.Unix(0, 0).UTC())
	tr := obs.NewSLOTracker(obs.NewRegistry(), obs.DefaultObjectives(), clock.Now)
	if got := len(tr.Report()); got != 3 {
		t.Fatalf("default objectives report %d endpoints, want 3", got)
	}
}

// TestSLOBurnRate pins the burn-rate math: with a 99% availability target
// the error budget is 1%, so a 5% in-window error rate burns 5×.
func TestSLOBurnRate(t *testing.T) {
	clock := testkit.NewClock(time.Unix(0, 0).UTC())
	tr := obs.NewSLOTracker(nil, []obs.Objective{
		{Endpoint: "group", Availability: 0.99, LatencyP99Ms: 100, Window: time.Minute},
	}, clock.Now)
	for i := 0; i < 100; i++ {
		clock.Advance(time.Millisecond)
		tr.Record("group", 10*time.Millisecond, i < 5)
	}
	tr.Record("unknown", time.Second, true) // no objective: dropped

	rep := tr.Report()
	if len(rep) != 1 {
		t.Fatalf("report has %d entries", len(rep))
	}
	r := rep[0]
	if r.Ops != 100 || r.Errors != 5 {
		t.Fatalf("ops/errors = %d/%d", r.Ops, r.Errors)
	}
	if r.ErrorRate != 0.05 || r.BurnRate != 5 {
		t.Fatalf("error rate %v, burn %v; want 0.05, 5", r.ErrorRate, r.BurnRate)
	}
	if r.P50Ms != 10 || r.P99Ms != 10 {
		t.Fatalf("p50 %v p99 %v", r.P50Ms, r.P99Ms)
	}
	if r.AvailabilityPass || !r.LatencyPass || r.Verdict != "fail" {
		t.Fatalf("verdict %+v", r)
	}
}

// TestSLOWindowSlides pins the sliding window: errors older than the window
// stop burning budget, while lifetime Ops/Errors keep counting.
func TestSLOWindowSlides(t *testing.T) {
	clock := testkit.NewClock(time.Unix(0, 0).UTC())
	tr := obs.NewSLOTracker(nil, []obs.Objective{
		{Endpoint: "group", Availability: 0.99, LatencyP99Ms: 100, Window: time.Minute},
	}, clock.Now)
	for i := 0; i < 10; i++ {
		tr.Record("group", 5*time.Millisecond, true) // a burst of failures at t=0
	}
	clock.Advance(2 * time.Minute) // the burst ages out
	for i := 0; i < 10; i++ {
		tr.Record("group", 5*time.Millisecond, false)
	}
	r := tr.Report()[0]
	if r.Ops != 20 || r.Errors != 10 {
		t.Fatalf("lifetime ops/errors = %d/%d, want 20/10", r.Ops, r.Errors)
	}
	if r.BurnRate != 0 || r.Verdict != "pass" {
		t.Fatalf("aged-out burst still burning: %+v", r)
	}
}

func TestSLOLatencyVerdict(t *testing.T) {
	clock := testkit.NewClock(time.Unix(0, 0).UTC())
	tr := obs.NewSLOTracker(nil, []obs.Objective{
		{Endpoint: "group", Availability: 0.99, LatencyP99Ms: 50, Window: time.Minute},
	}, clock.Now)
	for i := 0; i < 98; i++ {
		tr.Record("group", 10*time.Millisecond, false)
	}
	// Two stragglers: nearest-rank p99 of 100 samples reads the 99th
	// smallest, so a single outlier would hide below the rank.
	tr.Record("group", 500*time.Millisecond, false)
	tr.Record("group", 500*time.Millisecond, false)
	r := tr.Report()[0]
	if r.P50Ms != 10 || r.P99Ms != 500 {
		t.Fatalf("p50 %v p99 %v", r.P50Ms, r.P99Ms)
	}
	if !r.AvailabilityPass || r.LatencyPass || r.Verdict != "fail" {
		t.Fatalf("verdict %+v", r)
	}
}

func TestSLOPublishGauges(t *testing.T) {
	clock := testkit.NewClock(time.Unix(0, 0).UTC())
	reg := obs.NewRegistry()
	tr := obs.NewSLOTracker(reg, []obs.Objective{
		{Endpoint: "group", Availability: 0.99, LatencyP99Ms: 100, Window: time.Minute},
	}, clock.Now)
	for i := 0; i < 10; i++ {
		tr.Record("group", 20*time.Millisecond, i == 0)
	}
	tr.Publish()
	if got := reg.Gauge("spacetrack_slo_burn_rate", "endpoint", "group").Value(); got != 10 {
		t.Fatalf("burn gauge %v, want 10", got)
	}
	if got := reg.Gauge("spacetrack_slo_p99_ms", "endpoint", "group").Value(); got != 20 {
		t.Fatalf("p99 gauge %v, want 20", got)
	}
	if got := reg.Gauge("spacetrack_slo_pass", "endpoint", "group").Value(); got != 0 {
		t.Fatalf("pass gauge %v, want 0", got)
	}
}

func TestSLOTrackerNilSafe(t *testing.T) {
	var tr *obs.SLOTracker
	tr.Record("group", time.Second, true)
	tr.Publish()
	if tr.Report() != nil {
		t.Fatal("nil tracker reported")
	}
}

func TestSLOTrackerRejectsBadObjectives(t *testing.T) {
	clock := testkit.NewClock(time.Unix(0, 0).UTC())
	for name, objs := range map[string][]obs.Objective{
		"empty endpoint":  {{Endpoint: "", Availability: 0.99, LatencyP99Ms: 1, Window: time.Minute}},
		"availability=1":  {{Endpoint: "g", Availability: 1, LatencyP99Ms: 1, Window: time.Minute}},
		"zero p99 target": {{Endpoint: "g", Availability: 0.99, LatencyP99Ms: 0, Window: time.Minute}},
		"zero window":     {{Endpoint: "g", Availability: 0.99, LatencyP99Ms: 1, Window: 0}},
		"duplicate": {
			{Endpoint: "g", Availability: 0.99, LatencyP99Ms: 1, Window: time.Minute},
			{Endpoint: "g", Availability: 0.98, LatencyP99Ms: 2, Window: time.Minute},
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			obs.NewSLOTracker(nil, objs, clock.Now)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("nil clock did not panic")
		}
	}()
	obs.NewSLOTracker(nil, obs.DefaultObjectives(), nil)
}
