package obs_test

import (
	"context"
	"math"
	"testing"

	"cosmicdance/internal/obs"
	"cosmicdance/internal/parallel"
)

func TestCounterBasics(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("events_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // monotone: negative adds are dropped
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("events_total"); again != c {
		t.Fatal("re-registration returned a different handle")
	}
}

func TestCounterLabelsIdentity(t *testing.T) {
	r := obs.NewRegistry()
	a := r.Counter("hits_total", "kind", "weather", "tier", "disk")
	b := r.Counter("hits_total", "tier", "disk", "kind", "weather") // sorted identity
	if a != b {
		t.Fatal("label order changed the metric identity")
	}
	other := r.Counter("hits_total", "kind", "dataset", "tier", "disk")
	if other == a {
		t.Fatal("different label values shared a handle")
	}
}

func TestGauge(t *testing.T) {
	r := obs.NewRegistry()
	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(1.25)
	g.Add(-0.75)
	if got := g.Value(); got != 3.0 {
		t.Fatalf("gauge = %v, want 3.0", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("sizes", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got, want := h.Sum(), 0.5+1+5+10+50+1000; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms, want 1", len(snap.Histograms))
	}
	hv := snap.Histograms[0]
	// <=1: {0.5, 1}; <=10: {5, 10}; <=100: {50}; +Inf: {1000}
	want := []int64{2, 2, 1, 1}
	for i, n := range want {
		if hv.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, hv.Counts[i], n, hv.Counts)
		}
	}
}

// TestHistogramObserveN pins the amortization contract: ObserveN(v, n)
// leaves the histogram exactly where n Observe(v) calls would.
func TestHistogramObserveN(t *testing.T) {
	r := obs.NewRegistry()
	batched := r.Histogram("batched", []float64{1, 10})
	single := r.Histogram("single", []float64{1, 10})
	for _, obsv := range []struct {
		v float64
		n int64
	}{{0.5, 3}, {10, 4}, {50, 2}} {
		batched.ObserveN(obsv.v, obsv.n)
		for i := int64(0); i < obsv.n; i++ {
			single.Observe(obsv.v)
		}
	}
	batched.ObserveN(99, 0)  // no-op
	batched.ObserveN(99, -1) // no-op
	if batched.Count() != single.Count() || batched.Sum() != single.Sum() {
		t.Fatalf("ObserveN count/sum (%d, %v) != repeated Observe (%d, %v)",
			batched.Count(), batched.Sum(), single.Count(), single.Sum())
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 2 {
		t.Fatalf("snapshot has %d histograms, want 2", len(snap.Histograms))
	}
	for i := range snap.Histograms[0].Counts {
		if snap.Histograms[0].Counts[i] != snap.Histograms[1].Counts[i] {
			t.Fatalf("bucket %d differs: %v vs %v", i, snap.Histograms[0].Counts, snap.Histograms[1].Counts)
		}
	}
}

func TestHistogramRelayoutPanics(t *testing.T) {
	r := obs.NewRegistry()
	r.Histogram("sizes", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with different buckets did not panic")
		}
	}()
	r.Histogram("sizes", []float64{1, 3})
}

func TestBadRegistrationPanics(t *testing.T) {
	r := obs.NewRegistry()
	for name, fn := range map[string]func(){
		"empty name":      func() { r.Counter("") },
		"odd labels":      func() { r.Counter("x", "k") },
		"empty label key": func() { r.Counter("x", "", "v") },
		"bad bounds":      func() { r.Histogram("h", []float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDisabledRegistryDropsWrites(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1})
	r.SetEnabled(false)
	if r.Enabled() {
		t.Fatal("registry still enabled")
	}
	c.Inc()
	g.Set(7)
	g.Add(1)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled registry recorded: c=%d g=%v h=%d", c.Value(), g.Value(), h.Count())
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("re-enabled registry did not record")
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("zeta_total").Inc()
	r.Counter("alpha_total").Add(2)
	r.Counter("alpha_total", "kind", "b").Add(3)
	r.Counter("alpha_total", "kind", "a").Add(4)
	snap := r.Snapshot()
	var order []string
	for _, c := range snap.Counters {
		order = append(order, c.Name+"|"+c.Labels)
	}
	want := []string{`alpha_total|`, `alpha_total|kind="a"`, `alpha_total|kind="b"`, `zeta_total|`}
	if len(order) != len(want) {
		t.Fatalf("got %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("snapshot order %v, want %v", order, want)
		}
	}
}

// TestConcurrentIncrements drives counters, gauges, and histograms from
// internal/parallel workers — the exact shape pipeline instrumentation has —
// and must pass under -race with exact final values.
func TestConcurrentIncrements(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("work_total")
	g := r.Gauge("level")
	h := r.Histogram("size", []float64{256, 512, 1024})
	const n = 4096
	err := parallel.ForEach(context.Background(), 8, n, func(i int) error {
		c.Inc()
		g.Add(1)
		h.Observe(float64(i % 2048))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Value(); got != n {
		t.Fatalf("counter = %d, want %d", got, n)
	}
	if got := g.Value(); got != n {
		t.Fatalf("gauge = %v, want %d", got, n)
	}
	if got := h.Count(); got != n {
		t.Fatalf("histogram count = %d, want %d", got, n)
	}
	var wantSum float64
	for i := 0; i < n; i++ {
		wantSum += float64(i % 2048)
	}
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", got, wantSum)
	}
	snap := r.Snapshot()
	var bucketTotal int64
	for _, b := range snap.Histograms[0].Counts {
		bucketTotal += b
	}
	if bucketTotal != n {
		t.Fatalf("bucket counts sum to %d, want %d", bucketTotal, n)
	}
}

func TestDefaultRegistryIsShared(t *testing.T) {
	if obs.Default() == nil {
		t.Fatal("no default registry")
	}
	a := obs.Default().Counter("obs_test_shared_total")
	b := obs.Default().Counter("obs_test_shared_total")
	if a != b {
		t.Fatal("default registry returned distinct handles")
	}
}
