package obs

import (
	"context"
	"strconv"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header that carries a request's trace ID from
// client to server. The value is the TraceID's 16-hex-digit rendering; the
// server echoes it back on the response so either side of a wire capture can
// be joined against the flight recorder.
const TraceHeader = "Cosmic-Trace"

// TraceID identifies one logical request end to end. IDs are drawn from a
// seeded splitmix64 stream (see IDStream), never from crypto/rand or any
// other ambient entropy: the same seed and request sequence must yield the
// same IDs, because trace IDs appear in the spaceload report and that report
// is gated byte-identical across same-seed runs. Zero means "no trace".
type TraceID uint64

// String renders the ID as 16 lowercase hex digits (zero-padded), the wire
// and report form.
func (t TraceID) String() string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[t&0xf]
		t >>= 4
	}
	return string(b[:])
}

// ParseTraceID parses the 16-hex-digit wire form. It returns 0 (the "no
// trace" sentinel) for anything malformed: a bad header must degrade to an
// untraced request, never an error path.
func ParseTraceID(s string) TraceID {
	if len(s) != 16 {
		return 0
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return TraceID(v)
}

// IDStream mints TraceIDs from a seeded splitmix64 sequence. Distinct actors
// get distinct streams (the stream index perturbs the seed the same way the
// loadsim per-actor RNG does), so IDs are unique across the fleet without
// any coordination, and replaying a run re-mints the same IDs in the same
// order. Next is safe for concurrent use; the sequence is then unique but
// interleaving-dependent, so deterministic harnesses should mint from a
// single goroutine.
type IDStream struct {
	state atomic.Uint64
}

// NewIDStream returns a stream derived from seed and a stream index. The
// mixing constants match internal/loadsim's per-actor RNG derivation so the
// two families of streams stay disjoint for distinct (seed, stream) pairs.
func NewIDStream(seed uint64, stream uint64) *IDStream {
	s := &IDStream{}
	s.state.Store(seed*0x9E3779B97F4A7C15 + stream*0xD1B54A32D192ED03 + 0x632BE59BD9B4E019)
	return s
}

// Next mints the stream's next TraceID. It never returns zero: zero is the
// "no trace" sentinel, so a zero output is re-rolled.
func (s *IDStream) Next() TraceID {
	for {
		z := s.state.Add(0x9E3779B97F4A7C15)
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		if z != 0 {
			return TraceID(z)
		}
	}
}

// ReqSpan is one timed phase inside a request: admission, catalog_read,
// gzip, feed_append. Spans are flat and sequential (a request handler is one
// goroutine), so there is no parent pointer; order of appearance is the
// nesting.
type ReqSpan struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
}

// ReqTrace collects the spans of one request on an injected clock. It is
// owned by the request's goroutine and is not safe for concurrent use; the
// zero cost of that restriction is exactly why span starts are two appends
// and a clock read. A nil *ReqTrace is a valid no-op receiver so untraced
// code paths need no branches.
type ReqTrace struct {
	id    TraceID
	now   func() time.Time
	start time.Time
	spans []ReqSpan
	open  int // index+1 of the currently open span, 0 if none
}

// NewReqTrace starts a trace for id on clock now. The clock must be the
// serving plane's injected clock (virtual under loadsim, boot-anchored under
// spacetrackd) — never time.Now directly, which would leak wall-clock jitter
// into flight-recorder dumps.
func NewReqTrace(id TraceID, now func() time.Time) *ReqTrace {
	if now == nil {
		panic("obs: NewReqTrace requires an injected clock")
	}
	return &ReqTrace{id: id, now: now, start: now(), spans: make([]ReqSpan, 0, 4)}
}

// ID returns the trace's ID (0 for a nil trace).
func (t *ReqTrace) ID() TraceID {
	if t == nil {
		return 0
	}
	return t.id
}

// StartSpan opens a named span at the current clock reading. An already-open
// span is closed first: request phases are sequential, so overlapping spans
// indicate a handler bug and are flattened rather than nested.
func (t *ReqTrace) StartSpan(name string) {
	if t == nil {
		return
	}
	t.EndSpan()
	t.spans = append(t.spans, ReqSpan{Name: name, StartNS: t.now().Sub(t.start).Nanoseconds()})
	t.open = len(t.spans)
}

// EndSpan closes the currently open span, if any.
func (t *ReqTrace) EndSpan() {
	if t == nil || t.open == 0 {
		return
	}
	t.spans[t.open-1].EndNS = t.now().Sub(t.start).Nanoseconds()
	t.open = 0
}

// Spans returns the recorded spans (closing any still-open one). The slice
// is the trace's own backing store; callers treat it as read-only.
func (t *ReqTrace) Spans() []ReqSpan {
	if t == nil {
		return nil
	}
	t.EndSpan()
	return t.spans
}

type reqTraceKey struct{}

// WithReqTrace returns a context carrying t, for handlers to pass the
// request's trace down to the catalog/gzip/feed layers.
func WithReqTrace(ctx context.Context, t *ReqTrace) context.Context {
	return context.WithValue(ctx, reqTraceKey{}, t)
}

// ReqTraceFrom returns the context's trace, or nil (a valid no-op receiver)
// when the request is untraced.
func ReqTraceFrom(ctx context.Context) *ReqTrace {
	t, _ := ctx.Value(reqTraceKey{}).(*ReqTrace)
	return t
}
