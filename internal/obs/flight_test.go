package obs_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cosmicdance/internal/obs"
	"cosmicdance/internal/testkit"
)

func TestFlightRecorderRing(t *testing.T) {
	clock := testkit.NewClock(time.Unix(0, 0).UTC())
	f := obs.NewFlightRecorder(4, clock.Now)
	if f.Len() != 0 || f.Dump() != nil && len(f.Dump()) != 0 {
		t.Fatal("fresh recorder not empty")
	}
	for i := 0; i < 6; i++ {
		clock.Advance(time.Millisecond)
		f.Record(obs.FlightEvent{Kind: "request", Endpoint: "group", Status: 200 + i})
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want ring size 4", f.Len())
	}
	evs := f.Dump()
	if len(evs) != 4 {
		t.Fatalf("dump has %d events, want 4", len(evs))
	}
	// The ring keeps the newest 4 of 6: seqs 3..6, ascending.
	for i, ev := range evs {
		if ev.Seq != uint64(i+3) {
			t.Fatalf("event %d has seq %d, want %d (%+v)", i, ev.Seq, i+3, evs)
		}
		if ev.AtNS != int64(ev.Seq)*int64(time.Millisecond) {
			t.Fatalf("event %d stamped %d ns, want %d", i, ev.AtNS, int64(ev.Seq)*int64(time.Millisecond))
		}
	}
}

func TestFlightRecorderWriteJSONStable(t *testing.T) {
	clock := testkit.NewClock(time.Unix(0, 0).UTC())
	f := obs.NewFlightRecorder(8, clock.Now)
	f.Record(obs.FlightEvent{Kind: "ingest", Trace: "00000000000000aa", Detail: "starlink +2"})
	clock.Advance(time.Second)
	f.Record(obs.FlightEvent{Kind: "delta", Trace: "00000000000000aa", Detail: "DECAY_RISK"})

	var a, b bytes.Buffer
	if err := f.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two dumps of identical ring contents differ")
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(a.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.Schema != "flightrecorder/v1" {
		t.Fatalf("schema %q", dump.Schema)
	}
	if len(dump.Events) != 2 || dump.Events[1].AtNS != int64(time.Second) {
		t.Fatalf("events = %+v", dump.Events)
	}
}

func TestFlightRecorderEmptyDumpIsValid(t *testing.T) {
	clock := testkit.NewClock(time.Unix(0, 0).UTC())
	f := obs.NewFlightRecorder(2, clock.Now)
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Events == nil || len(dump.Events) != 0 {
		t.Fatalf("empty dump events = %#v, want []", dump.Events)
	}
}

func TestFlightRecorderHandler(t *testing.T) {
	clock := testkit.NewClock(time.Unix(0, 0).UTC())
	f := obs.NewFlightRecorder(8, clock.Now)
	f.Record(obs.FlightEvent{Kind: "request", Endpoint: "group", Status: 200})

	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flightrecorder", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) != 1 || dump.Events[0].Endpoint != "group" {
		t.Fatalf("events = %+v", dump.Events)
	}

	rec = httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/debug/flightrecorder", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
}

// TestFlightRecorderBurst pins the overload detector: the hook fires when
// the threshold lands inside the window, at most once per window, and
// rejects outside the window do not count.
func TestFlightRecorderBurst(t *testing.T) {
	clock := testkit.NewClock(time.Unix(0, 0).UTC())
	f := obs.NewFlightRecorder(64, clock.Now)
	fired := 0
	f.SetBurstHook(3, 10*time.Second, func() { fired++ })

	reject := func() bool {
		clock.Advance(time.Second)
		return f.RecordReject(obs.FlightEvent{Endpoint: "group", Status: 503, Trace: "00000000000000ff"})
	}
	if reject() || reject() {
		t.Fatal("burst tripped below threshold")
	}
	if !reject() {
		t.Fatal("third reject in-window did not trip the burst")
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1", fired)
	}
	// Still inside the same window: more rejects must not re-fire.
	if reject() {
		t.Fatal("burst re-fired inside its window")
	}
	// Step past the window, then pile up a fresh burst.
	clock.Advance(30 * time.Second)
	reject()
	reject()
	if !reject() {
		t.Fatal("fresh burst after the window did not trip")
	}
	if fired != 2 {
		t.Fatalf("hook fired %d times, want 2", fired)
	}
	// Every reject landed in the ring with kind forced to "reject".
	for _, ev := range f.Dump() {
		if ev.Kind != "reject" {
			t.Fatalf("event kind %q", ev.Kind)
		}
	}
}

func TestFlightRecorderRejectedTraces(t *testing.T) {
	clock := testkit.NewClock(time.Unix(0, 0).UTC())
	f := obs.NewFlightRecorder(16, clock.Now)
	f.Record(obs.FlightEvent{Kind: "request", Trace: "000000000000000b", Status: 200})
	f.RecordReject(obs.FlightEvent{Trace: "000000000000000c", Status: 503})
	f.RecordReject(obs.FlightEvent{Trace: "000000000000000a", Status: 429})
	f.RecordReject(obs.FlightEvent{Trace: "000000000000000c", Status: 503}) // dup
	f.RecordReject(obs.FlightEvent{Status: 503})                           // untraced
	got := f.RejectedTraces()
	want := []string{"000000000000000a", "000000000000000c"}
	if len(got) != len(want) {
		t.Fatalf("RejectedTraces = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RejectedTraces = %v, want %v", got, want)
		}
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *obs.FlightRecorder
	f.Record(obs.FlightEvent{Kind: "request"})
	if f.RecordReject(obs.FlightEvent{}) {
		t.Fatal("nil recorder tripped a burst")
	}
	f.SetBurstHook(1, time.Second, func() { t.Fatal("hook on nil recorder") })
	if f.Len() != 0 || f.Dump() != nil || f.RejectedTraces() != nil {
		t.Fatal("nil recorder is not a no-op")
	}
}

// TestFlightRecorderConcurrent hammers the lock-free ring from many
// goroutines under -race: every dumped event must be complete and the dump
// must stay Seq-sorted.
func TestFlightRecorderConcurrent(t *testing.T) {
	clock := testkit.NewClock(time.Unix(0, 0).UTC())
	f := obs.NewFlightRecorder(32, clock.Now)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Record(obs.FlightEvent{Kind: "request", Endpoint: "group", Status: 200, DurationNS: int64(g)})
			}
		}(g)
	}
	wg.Wait()
	evs := f.Dump()
	if len(evs) != 32 {
		t.Fatalf("dump has %d events, want 32", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("dump not Seq-sorted at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	for _, ev := range evs {
		if ev.Kind != "request" || ev.Status != 200 {
			t.Fatalf("torn event: %+v", ev)
		}
	}
}
