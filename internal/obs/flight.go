package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightEvent is one entry in the flight recorder: a request outcome, an
// ingest batch, a feed delta, or an SSE resync. AtNS is nanoseconds on the
// recorder's injected clock since its epoch, so dumps from same-seed runs
// are byte-identical. Seq orders events globally even when AtNS ties.
type FlightEvent struct {
	Seq        uint64    `json:"seq"`
	AtNS       int64     `json:"at_ns"`
	Kind       string    `json:"kind"` // request | reject | ingest | delta | resync
	Trace      string    `json:"trace,omitempty"`
	Endpoint   string    `json:"endpoint,omitempty"`
	Status     int       `json:"status,omitempty"`
	DurationNS int64     `json:"duration_ns,omitempty"`
	Detail     string    `json:"detail,omitempty"`
	Spans      []ReqSpan `json:"spans,omitempty"`
}

// FlightRecorder is a fixed-size ring of recent FlightEvents — the black box
// a post-mortem reads after a 429/503 storm or an SSE overflow resync. The
// hot path is lock-free: Record claims a slot with one atomic add and
// publishes the event with one atomic pointer store, so recording costs no
// more than a histogram observation and the ≤2% obs-overhead gate covers it.
// The ring keeps the newest events; old slots are overwritten in place.
type FlightRecorder struct {
	seq   atomic.Uint64
	slots []atomic.Pointer[FlightEvent]
	now   func() time.Time
	epoch time.Time

	// Burst detection: rejected-request timestamps inside BurstWindow are
	// counted under a mutex (rejects are the cold path — they happen when
	// the server is shedding, not serving). When the count crosses
	// BurstThreshold the OnBurst hook fires, at most once per window.
	burstMu        sync.Mutex
	burstThreshold int
	burstWindow    time.Duration
	rejects        []time.Time
	lastBurst      time.Time
	burstFired     bool
	onBurst        func()
}

// NewFlightRecorder returns a recorder with the given ring size on clock
// now. The clock must be injected (virtual under loadsim, boot-anchored
// under spacetrackd); the recorder's epoch is the clock reading at
// construction, so AtNS values are run-relative and deterministic.
func NewFlightRecorder(size int, now func() time.Time) *FlightRecorder {
	if size <= 0 {
		size = 1024
	}
	if now == nil {
		panic("obs: NewFlightRecorder requires an injected clock")
	}
	return &FlightRecorder{
		slots: make([]atomic.Pointer[FlightEvent], size),
		now:   now,
		epoch: now(),
	}
}

// SetBurstHook arms the overload-burst detector: when threshold or more
// reject events land within window, fire hook (once per window). Call before
// serving begins; the hook runs outside the recorder's locks and must not
// call back into RecordReject.
func (f *FlightRecorder) SetBurstHook(threshold int, window time.Duration, hook func()) {
	if f == nil {
		return
	}
	f.burstMu.Lock()
	f.burstThreshold = threshold
	f.burstWindow = window
	f.onBurst = hook
	f.burstMu.Unlock()
}

// Record appends ev to the ring, stamping Seq and AtNS. Safe for concurrent
// use; a nil recorder is a no-op.
func (f *FlightRecorder) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	ev.Seq = f.seq.Add(1)
	ev.AtNS = f.now().Sub(f.epoch).Nanoseconds()
	e := ev
	f.slots[(ev.Seq-1)%uint64(len(f.slots))].Store(&e)
}

// RecordReject records a shed request (429/503) and feeds the burst
// detector. The returned bool reports whether this reject tripped a burst.
func (f *FlightRecorder) RecordReject(ev FlightEvent) bool {
	if f == nil {
		return false
	}
	ev.Kind = "reject"
	f.Record(ev)

	f.burstMu.Lock()
	if f.burstThreshold <= 0 {
		f.burstMu.Unlock()
		return false
	}
	now := f.now()
	cut := now.Add(-f.burstWindow)
	keep := f.rejects[:0]
	for _, t := range f.rejects {
		if t.After(cut) {
			keep = append(keep, t)
		}
	}
	f.rejects = append(keep, now)
	tripped := false
	if len(f.rejects) >= f.burstThreshold {
		if !f.burstFired || now.Sub(f.lastBurst) >= f.burstWindow {
			f.burstFired = true
			f.lastBurst = now
			tripped = true
		}
	}
	hook := f.onBurst
	f.burstMu.Unlock()
	if tripped && hook != nil {
		hook()
	}
	return tripped
}

// Len reports how many events the ring currently holds (at most its size).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	n := f.seq.Load()
	if n > uint64(len(f.slots)) {
		return len(f.slots)
	}
	return int(n)
}

// Dump returns the ring's events sorted by Seq ascending — oldest retained
// first. Slots being overwritten concurrently resolve to whichever event the
// atomic pointer holds; the dump is always a set of complete events.
func (f *FlightRecorder) Dump() []FlightEvent {
	if f == nil {
		return nil
	}
	evs := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		if p := f.slots[i].Load(); p != nil {
			evs = append(evs, *p)
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	return evs
}

// FlightDump is the recorder's serialized form.
type FlightDump struct {
	Schema string        `json:"schema"`
	Events []FlightEvent `json:"events"`
}

// WriteJSON writes the dump as indented JSON with schema "flightrecorder/v1".
// Event order is Seq order and all fields are value types, so identical ring
// contents render byte-identically.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	d := FlightDump{Schema: "flightrecorder/v1", Events: f.Dump()}
	if d.Events == nil {
		d.Events = []FlightEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Handler serves the recorder's dump — the GET /debug/flightrecorder
// endpoint of cmd/spacetrackd.
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		// A short read is the client's problem; headers are already gone.
		_ = f.WriteJSON(w)
	})
}

// RejectedTraces returns the sorted, deduplicated trace IDs of every reject
// event still in the ring — the storm post-mortem's "who got shed" list.
func (f *FlightRecorder) RejectedTraces() []string {
	if f == nil {
		return nil
	}
	seen := make(map[string]bool)
	for _, ev := range f.Dump() {
		if ev.Kind == "reject" && ev.Trace != "" {
			seen[ev.Trace] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
