package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Tracer builds a timing tree over the pipeline stages. Spans are strictly
// nested — Start pushes onto an implicit stack, End pops — which matches the
// pipeline's shape (weather generation inside fleet simulation inside
// dataset build inside a figure render).
//
// The clock is injected: pipeline packages never read time.Now themselves
// (cosmiclint's nondet rule enforces this, internal/obs included), so the
// CLIs pass the wall clock in and tests pass a testkit.Clock. A nil *Tracer
// is valid and disables tracing — every method no-ops, so instrumented code
// starts spans unconditionally.
type Tracer struct {
	now func() time.Time

	mu    sync.Mutex
	roots []*Span
	cur   *Span
}

// NewTracer returns a tracer reading time from now.
func NewTracer(now func() time.Time) *Tracer {
	if now == nil {
		panic("obs: NewTracer requires a clock")
	}
	return &Tracer{now: now}
}

// Span is one timed stage. A nil *Span is valid and inert.
type Span struct {
	tracer   *Tracer
	name     string
	start    time.Time
	end      time.Time
	ended    bool
	parent   *Span
	children []*Span
}

// Start opens a span named name as a child of the innermost open span (or as
// a new root) and makes it current. On a nil tracer it returns nil.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{tracer: t, name: name, start: t.now(), parent: t.cur}
	if t.cur == nil {
		t.roots = append(t.roots, s)
	} else {
		t.cur.children = append(t.cur.children, s)
	}
	t.cur = s
	return s
}

// End closes the span and pops the tracer's stack back to its parent.
// Ending a span twice is a no-op; ending out of nesting order pops to the
// span's parent regardless (closing every descendant implicitly).
func (s *Span) End() {
	if s == nil || s.tracer == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return
	}
	s.end = t.now()
	s.ended = true
	t.cur = s.parent
}

// Duration returns the span's elapsed time; for a still-open span, the time
// from start to the tracer's current clock reading.
func (s *Span) Duration() time.Duration {
	if s == nil || s.tracer == nil {
		return 0
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return s.durationLocked()
}

func (s *Span) durationLocked() time.Duration {
	end := s.end
	if !s.ended {
		end = s.tracer.now()
	}
	return end.Sub(s.start)
}

// SpanNode is the exported form of a span for JSON run reports.
type SpanNode struct {
	Name       string     `json:"name"`
	DurationNS int64      `json:"duration_ns"`
	Children   []SpanNode `json:"children,omitempty"`
}

// Tree returns the recorded span forest. On a nil tracer it returns nil.
func (t *Tracer) Tree() []SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return exportSpans(t.roots)
}

func exportSpans(spans []*Span) []SpanNode {
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanNode, len(spans))
	for i, s := range spans {
		out[i] = SpanNode{
			Name:       s.name,
			DurationNS: int64(s.durationLocked()),
			Children:   exportSpans(s.children),
		}
	}
	return out
}

// WriteTree renders the timing tree as indented text, durations rounded to
// the millisecond:
//
//	analyze                                    2.154s
//	  weather                                  0.312s
//	  fleet                                    1.204s
//	    weather                                0.000s
//
// A nil tracer writes nothing.
func (t *Tracer) WriteTree(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, n := range t.Tree() {
		if err := writeNode(w, n, 0); err != nil {
			return err
		}
	}
	return nil
}

func writeNode(w io.Writer, n SpanNode, depth int) error {
	label := strings.Repeat("  ", depth) + n.Name
	const nameCol = 42
	pad := nameCol - len(label)
	if pad < 1 {
		pad = 1
	}
	d := time.Duration(n.DurationNS).Round(time.Millisecond)
	if _, err := fmt.Fprintf(w, "%s%s%.3fs\n", label, strings.Repeat(" ", pad), d.Seconds()); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeNode(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}
