// Package obs is CosmicDance's determinism-safe observability layer: a
// metrics registry (counters, gauges, fixed-bucket histograms), a span
// tracer that builds a timing tree over the pipeline stages, and a
// structured leveled logger — all stdlib-only.
//
// The package is itself a pipeline package under cosmiclint: it never reads
// the wall clock. The tracer takes its clock by injection (the CLIs pass
// time.Now, tests pass a testkit.Clock), the logger's handler drops record
// timestamps, and metrics are pure monotone state. Telemetry is therefore
// provably inert: nothing here can feed wall-clock or scheduling noise back
// into pipeline output, artifact fingerprints, or goldens — instrumented
// packages only write into obs, never read from it.
//
// Hot-path cost: a counter increment is one atomic load (the enabled flag)
// plus one atomic add, with zero allocations. Instrumentation points in the
// pipeline are deliberately coarse (per batch, per track, per request), so
// the telemetry-on overhead on the fan-out benchmarks stays within the
// ≤2% gate scripts/obs_overhead.sh enforces.
//
// The process-wide Default registry carries every built-in metric. Set
// COSMICDANCE_OBS=off in the environment to disable it (increments become
// no-ops); tests that need isolation construct their own NewRegistry.
package obs

import "os"

// defaultRegistry is the process-wide registry every built-in metric
// registers on.
var defaultRegistry = func() *Registry {
	r := NewRegistry()
	if os.Getenv("COSMICDANCE_OBS") == "off" {
		r.SetEnabled(false)
	}
	return r
}()

// Default returns the process-wide registry. CLIs snapshot it for -trace
// summaries and -metrics-json reports; spacetrackd serves it at /metrics.
func Default() *Registry { return defaultRegistry }
