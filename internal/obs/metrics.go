package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a process's metrics. Registration (Counter, Gauge,
// Histogram) takes a mutex and may allocate; increments and observations on
// the returned handles are lock-free and allocation-free, so instrumented
// hot paths pay one atomic load (the enabled flag) plus one atomic
// read-modify-write per event.
type Registry struct {
	enabled atomic.Bool

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
	r.enabled.Store(true)
	return r
}

// SetEnabled turns the registry's metrics on or off. While off, increments
// and observations are dropped at the cost of a single atomic load, which is
// what the telemetry-overhead gate measures against.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is recording.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// metricID renders the canonical identity of a metric: its name plus the
// label pairs sorted by key, in the Prometheus series form
// name{k1="v1",k2="v2"}. Registration panics on malformed labels because
// every call site is a package-level var initialization — a bad metric
// definition should fail the first test that imports the package, not
// corrupt the exposition at runtime.
func metricID(name string, labels []string) (id, labelstr string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q has an odd label list (want key/value pairs)", name))
	}
	if len(labels) == 0 {
		return name, ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if labels[i] == "" {
			panic(fmt.Sprintf("obs: metric %q has an empty label key", name))
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	for i := 1; i < len(pairs); i++ {
		if pairs[i].k == pairs[i-1].k {
			panic(fmt.Sprintf("obs: metric %q repeats label key %q (duplicate keys are illegal in the exposition)", name, pairs[i].k))
		}
	}
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	labelstr = b.String()
	return name + "{" + labelstr + "}", labelstr
}

// escapeLabelValue escapes a label value per the Prometheus text-exposition
// grammar: exactly backslash, double-quote, and newline get a backslash;
// every other byte passes through verbatim. (strconv.Quote is close but
// over-escapes — a tab would render as \t, which a conformant parser reads
// as a literal 't'.)
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// Counter is a monotonically increasing metric. Handles are shared: two
// registrations of the same (name, labels) return the same Counter.
type Counter struct {
	name   string // base name, no labels
	labels string // rendered k="v",... or ""
	on     *atomic.Bool
	v      atomic.Int64
}

// Counter returns (registering if needed) the counter for name and the
// optional key/value label pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	id, labelstr := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[id]; ok {
		return c
	}
	c := &Counter{name: name, labels: labelstr, on: &r.enabled}
	r.counters[id] = c
	return c
}

// Add increments the counter by n (negative n is ignored: counters are
// monotone).
func (c *Counter) Add(n int64) {
	if n > 0 && c.on.Load() {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as a float64.
type Gauge struct {
	name   string
	labels string
	on     *atomic.Bool
	bits   atomic.Uint64
}

// Gauge returns (registering if needed) the gauge for name and labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	id, labelstr := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[id]; ok {
		return g
	}
	g := &Gauge{name: name, labels: labelstr, on: &r.enabled}
	r.gauges[id] = g
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g.on.Load() {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta (atomically, CAS loop).
func (g *Gauge) Add(delta float64) {
	if !g.on.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket-layout distribution: observations land in the
// first bucket whose upper bound is >= the value, with an implicit +Inf
// bucket at the end. The layout is fixed at registration so snapshots and
// expositions are stable across runs.
type Histogram struct {
	name      string
	labels    string
	on        *atomic.Bool
	bounds    []float64
	counts    []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	count     atomic.Int64
	sum       atomic.Uint64   // float64 bits, CAS-add
	exemplars []atomic.Uint64 // per-bucket TraceID bits, last-writer-wins
}

// Histogram returns (registering if needed) the histogram for name and
// labels with the given ascending bucket upper bounds. Re-registering the
// same metric with a different layout panics: a histogram's buckets are part
// of its contract.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	id, labelstr := metricID(name, labels)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[id]; ok {
		if len(h.bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with a different bucket layout", name))
		}
		for i := range bounds {
			if h.bounds[i] != bounds[i] {
				panic(fmt.Sprintf("obs: histogram %q re-registered with a different bucket layout", name))
			}
		}
		return h
	}
	h := &Histogram{
		name:      name,
		labels:    labelstr,
		on:        &r.enabled,
		bounds:    append([]float64(nil), bounds...),
		counts:    make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Uint64, len(bounds)+1),
	}
	r.histograms[id] = h
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records the value v as if observed n times in one shot: the
// bucket, count, and sum land exactly where n Observe(v) calls would put
// them. It exists so tight loops can tally observations in plain locals
// and publish once (see parallel.Runner) instead of paying the atomic
// CAS per iteration.
func (h *Histogram) ObserveN(v float64, n int64) {
	if n <= 0 || !h.on.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records v like Observe and additionally pins trace as the
// exemplar of the bucket v lands in (last writer wins, one atomic store).
// Exemplars surface in the JSON snapshot only: the text exposition is format
// 0.0.4, which predates exemplar syntax, so /metrics stays grammar-clean.
func (h *Histogram) ObserveExemplar(v float64, trace TraceID) {
	if !h.on.Load() {
		return
	}
	h.ObserveN(v, 1)
	if trace == 0 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.exemplars[i].Store(uint64(trace))
}

// Count returns how many observations the histogram holds.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  int64  `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// HistogramValue is one histogram in a snapshot. Counts has one entry per
// bound plus a final +Inf bucket; entries are per-bucket (not cumulative).
// Exemplars, when present, holds one trace ID (16-hex form) per bucket, ""
// for buckets without one; the field is omitted entirely when no bucket has
// an exemplar, so histograms observed without ObserveExemplar render as
// before.
type HistogramValue struct {
	Name      string    `json:"name"`
	Labels    string    `json:"labels,omitempty"`
	Count     int64     `json:"count"`
	Sum       float64   `json:"sum"`
	Bounds    []float64 `json:"bounds"`
	Counts    []int64   `json:"counts"`
	Exemplars []string  `json:"exemplars,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, sorted by (name, labels)
// so repeated snapshots of the same state render byte-identically.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot copies the registry's current state. Values are read atomically
// per metric; the snapshot is not a cross-metric atomic cut, which is fine
// for diagnostics.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make([]CounterValue, 0, len(r.counters)),
		Gauges:     make([]GaugeValue, 0, len(r.gauges)),
		Histograms: make([]HistogramValue, 0, len(r.histograms)),
	}
	cids := sortedKeys(r.counters)
	for _, id := range cids {
		c := r.counters[id]
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Labels: c.labels, Value: c.Value()})
	}
	gids := sortedKeys(r.gauges)
	for _, id := range gids {
		g := r.gauges[id]
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Labels: g.labels, Value: g.Value()})
	}
	hids := sortedKeys(r.histograms)
	for _, id := range hids {
		h := r.histograms[id]
		hv := HistogramValue{
			Name:   h.name,
			Labels: h.labels,
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		for i := range h.exemplars {
			if x := h.exemplars[i].Load(); x != 0 {
				if hv.Exemplars == nil {
					hv.Exemplars = make([]string, len(h.exemplars))
				}
				hv.Exemplars[i] = TraceID(x).String()
			}
		}
		s.Histograms = append(s.Histograms, hv)
	}
	return s
}

// sortedKeys returns m's keys in ascending order, so snapshot assembly never
// depends on map iteration order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
