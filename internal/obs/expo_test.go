package obs_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cosmicdance/internal/obs"
	"cosmicdance/internal/testkit"
)

// expoRegistry builds a registry with one of everything, deterministic
// values, for the exposition goldens.
func expoRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("artifact_cache_hits_total", "kind", "weather").Add(3)
	r.Counter("artifact_cache_hits_total", "kind", "dataset").Add(1)
	r.Counter("parallel_tasks_total").Add(2048)
	r.Gauge("spacetrackd_up").Set(1)
	h := r.Histogram("parallel_batch_workers", []float64{1, 2, 4, 8})
	for _, v := range []float64{1, 1, 4, 8, 16} {
		h.Observe(v)
	}
	return r
}

// TestPrometheusGolden pins the Prometheus text exposition: stable ordering,
// stable float formatting, cumulative buckets.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := expoRegistry().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	testkit.Golden(t, "exposition_prometheus.golden", buf.Bytes())
	// Re-snapshotting identical state must render byte-identically.
	var again bytes.Buffer
	if err := expoRegistry().Snapshot().WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two expositions of identical state differ")
	}
}

// TestJSONGolden pins the JSON exposition shape.
func TestJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := expoRegistry().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	testkit.Golden(t, "exposition_json.golden", buf.Bytes())
	var decoded obs.Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("exposition is not valid JSON: %v", err)
	}
	if len(decoded.Counters) != 3 || len(decoded.Gauges) != 1 || len(decoded.Histograms) != 1 {
		t.Fatalf("decoded %d/%d/%d metrics", len(decoded.Counters), len(decoded.Gauges), len(decoded.Histograms))
	}
}

func TestMetricsHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	obs.Handler(expoRegistry()).ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`artifact_cache_hits_total{kind="weather"} 3`,
		"# TYPE parallel_batch_workers histogram",
		`parallel_batch_workers_bucket{le="+Inf"} 5`,
		"parallel_batch_workers_count 5",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestWriteRunReport(t *testing.T) {
	clock := testkit.NewClock(time.Date(2024, 5, 10, 0, 0, 0, 0, time.UTC))
	tr := obs.NewTracer(clock.Now)
	root := tr.Start("analyze")
	child := tr.Start("weather")
	clock.Advance(250 * time.Millisecond)
	child.End()
	clock.Advance(100 * time.Millisecond)
	root.End()

	var buf bytes.Buffer
	if err := obs.WriteRunReport(&buf, expoRegistry(), tr); err != nil {
		t.Fatal(err)
	}
	var rep obs.RunReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("run report is not valid JSON: %v", err)
	}
	if len(rep.Trace) != 1 || rep.Trace[0].Name != "analyze" {
		t.Fatalf("trace = %+v", rep.Trace)
	}
	if got := rep.Trace[0].DurationNS; got != int64(350*time.Millisecond) {
		t.Fatalf("root duration %d", got)
	}
	if len(rep.Metrics.Counters) == 0 {
		t.Fatal("report carries no metrics")
	}
	// A nil tracer is a legal report input.
	if err := obs.WriteRunReport(&bytes.Buffer{}, expoRegistry(), nil); err != nil {
		t.Fatal(err)
	}
}
