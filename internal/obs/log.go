package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"strings"
	"sync"
)

// NewLogger returns a structured, leveled logger writing to w. Every CLI
// diagnostic line goes through one of these, so each carries a level and —
// by convention via logger.With("stage", ...) — the pipeline stage it came
// from.
//
// The handler renders records as one compact line:
//
//	INFO loaded element sets stage=ingest count=120
//
// Record timestamps are deliberately dropped: diagnostics must not smuggle
// wall-clock bytes into output that determinism tests might capture.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(NewLogHandler(w, level))
}

// LogHandler is the slog.Handler behind NewLogger: timestamp-free, compact,
// and safe for concurrent use (one line per Handle call under a mutex).
type LogHandler struct {
	mu     *sync.Mutex
	w      io.Writer
	level  slog.Level
	prefix string // pre-rendered WithAttrs/WithGroup context
	groups string // open group prefix for subsequent keys
}

// NewLogHandler returns a handler writing records at or above level to w.
func NewLogHandler(w io.Writer, level slog.Level) *LogHandler {
	return &LogHandler{mu: &sync.Mutex{}, w: w, level: level}
}

// Enabled implements slog.Handler.
func (h *LogHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.level
}

// Handle implements slog.Handler.
func (h *LogHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Level.String())
	b.WriteByte(' ')
	b.WriteString(r.Message)
	b.WriteString(h.prefix)
	r.Attrs(func(a slog.Attr) bool {
		appendAttr(&b, h.groups, a)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

// WithAttrs implements slog.Handler: the attrs are rendered once and
// prefixed to every subsequent record.
func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	var b strings.Builder
	for _, a := range attrs {
		appendAttr(&b, h.groups, a)
	}
	h2 := *h
	h2.prefix = h.prefix + b.String()
	return &h2
}

// WithGroup implements slog.Handler: subsequent keys are qualified with the
// group name, dot-separated.
func (h *LogHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	h2 := *h
	h2.groups = h.groups + name + "."
	return &h2
}

// appendAttr renders one attribute as " key=value", quoting values that
// contain spaces or quotes. Group attributes recurse with a qualified
// prefix.
func appendAttr(b *strings.Builder, groups string, a slog.Attr) {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		sub := groups
		if a.Key != "" {
			sub += a.Key + "."
		}
		for _, ga := range v.Group() {
			appendAttr(b, sub, ga)
		}
		return
	}
	if a.Key == "" {
		return
	}
	b.WriteByte(' ')
	b.WriteString(groups)
	b.WriteString(a.Key)
	b.WriteByte('=')
	s := fmt.Sprintf("%v", v.Any())
	if strings.ContainsAny(s, " \t\n\"=") || s == "" {
		s = strconv.Quote(s)
	}
	b.WriteString(s)
}
