package obs_test

import (
	"context"
	"testing"
	"time"

	"cosmicdance/internal/obs"
	"cosmicdance/internal/testkit"
)

func TestTraceIDWireForm(t *testing.T) {
	for _, tc := range []struct {
		id   obs.TraceID
		want string
	}{
		{0, "0000000000000000"},
		{0xdeadbeef, "00000000deadbeef"},
		{0xffffffffffffffff, "ffffffffffffffff"},
		{0x0123456789abcdef, "0123456789abcdef"},
	} {
		if got := tc.id.String(); got != tc.want {
			t.Fatalf("TraceID(%#x).String() = %q, want %q", uint64(tc.id), got, tc.want)
		}
		if back := obs.ParseTraceID(tc.id.String()); back != tc.id {
			t.Fatalf("round trip of %#x gave %#x", uint64(tc.id), uint64(back))
		}
	}
}

func TestParseTraceIDMalformed(t *testing.T) {
	for _, s := range []string{"", "deadbeef", "00000000deadbee", "00000000deadbeef0", "zzzzzzzzzzzzzzzz", "00000000DEADBEEF-"} {
		if got := obs.ParseTraceID(s); got != 0 {
			t.Fatalf("ParseTraceID(%q) = %#x, want 0", s, uint64(got))
		}
	}
}

// TestIDStreamDeterministic pins the property the byte-identical report gate
// leans on: same (seed, stream) mints the same IDs in the same order, and
// distinct streams stay disjoint.
func TestIDStreamDeterministic(t *testing.T) {
	a := obs.NewIDStream(42, 7)
	b := obs.NewIDStream(42, 7)
	other := obs.NewIDStream(42, 8)
	seen := make(map[obs.TraceID]bool)
	for i := 0; i < 1000; i++ {
		ida, idb := a.Next(), b.Next()
		if ida != idb {
			t.Fatalf("iteration %d: same-seed streams diverged: %s vs %s", i, ida, idb)
		}
		if ida == 0 {
			t.Fatalf("iteration %d: minted the zero sentinel", i)
		}
		if seen[ida] {
			t.Fatalf("iteration %d: duplicate ID %s within one stream", i, ida)
		}
		seen[ida] = true
		if o := other.Next(); seen[o] {
			t.Fatalf("iteration %d: stream 8 collided with stream 7 on %s", i, o)
		}
	}
}

func TestReqTraceSpans(t *testing.T) {
	clock := testkit.NewClock(time.Date(2024, 5, 10, 0, 0, 0, 0, time.UTC))
	tr := obs.NewReqTrace(obs.TraceID(0xabc), clock.Now)
	if tr.ID() != 0xabc {
		t.Fatalf("ID = %v", tr.ID())
	}
	clock.Advance(time.Millisecond)
	tr.StartSpan("admission")
	clock.Advance(2 * time.Millisecond)
	tr.StartSpan("catalog_read") // implicitly closes admission
	clock.Advance(3 * time.Millisecond)
	tr.EndSpan()
	tr.EndSpan() // double-close is a no-op
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans: %+v", len(spans), spans)
	}
	ms := int64(time.Millisecond)
	want := []obs.ReqSpan{
		{Name: "admission", StartNS: 1 * ms, EndNS: 3 * ms},
		{Name: "catalog_read", StartNS: 3 * ms, EndNS: 6 * ms},
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("span %d = %+v, want %+v", i, spans[i], want[i])
		}
	}
}

// TestReqTraceSpansClosesOpen pins that Spans() closes a dangling span so a
// handler that returns mid-phase still records a complete dump.
func TestReqTraceSpansClosesOpen(t *testing.T) {
	clock := testkit.NewClock(time.Unix(0, 0).UTC())
	tr := obs.NewReqTrace(1, clock.Now)
	tr.StartSpan("gzip")
	clock.Advance(time.Second)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].EndNS != int64(time.Second) {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestReqTraceNilSafe(t *testing.T) {
	var tr *obs.ReqTrace
	tr.StartSpan("x")
	tr.EndSpan()
	if tr.ID() != 0 || tr.Spans() != nil {
		t.Fatal("nil ReqTrace is not a no-op")
	}
}

func TestReqTraceContext(t *testing.T) {
	if got := obs.ReqTraceFrom(context.Background()); got != nil {
		t.Fatalf("empty context carried a trace: %v", got)
	}
	clock := testkit.NewClock(time.Unix(0, 0).UTC())
	tr := obs.NewReqTrace(9, clock.Now)
	ctx := obs.WithReqTrace(context.Background(), tr)
	if got := obs.ReqTraceFrom(ctx); got != tr {
		t.Fatal("context did not round-trip the trace")
	}
}

func TestNewReqTraceRequiresClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil clock did not panic")
		}
	}()
	obs.NewReqTrace(1, nil)
}
