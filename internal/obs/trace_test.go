package obs_test

import (
	"bytes"
	"testing"
	"time"

	"cosmicdance/internal/obs"
	"cosmicdance/internal/testkit"
)

func TestTracerTree(t *testing.T) {
	clock := testkit.NewClock(time.Date(2024, 5, 10, 0, 0, 0, 0, time.UTC))
	tr := obs.NewTracer(clock.Now)

	run := tr.Start("figures")
	sub := tr.Start("dataset")
	w := tr.Start("weather")
	clock.Advance(312 * time.Millisecond)
	w.End()
	f := tr.Start("fleet")
	clock.Advance(1204 * time.Millisecond)
	f.End()
	clock.Advance(484 * time.Millisecond)
	sub.End()
	render := tr.Start("render:fig1")
	clock.Advance(150 * time.Millisecond)
	render.End()
	run.End()

	tree := tr.Tree()
	if len(tree) != 1 {
		t.Fatalf("got %d roots, want 1", len(tree))
	}
	root := tree[0]
	if root.Name != "figures" || len(root.Children) != 2 {
		t.Fatalf("root = %+v", root)
	}
	if got, want := root.DurationNS, int64(2150*time.Millisecond); got != want {
		t.Fatalf("root duration %d, want %d", got, want)
	}
	ds := root.Children[0]
	if ds.Name != "dataset" || len(ds.Children) != 2 {
		t.Fatalf("dataset node = %+v", ds)
	}
	if ds.Children[0].Name != "weather" || ds.Children[0].DurationNS != int64(312*time.Millisecond) {
		t.Fatalf("weather node = %+v", ds.Children[0])
	}

	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	testkit.Golden(t, "trace_tree.golden", buf.Bytes())
}

func TestTracerNilSafety(t *testing.T) {
	var tr *obs.Tracer
	sp := tr.Start("anything")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.End() // must not panic
	if d := sp.Duration(); d != 0 {
		t.Fatalf("nil span duration %v", d)
	}
	if tree := tr.Tree(); tree != nil {
		t.Fatalf("nil tracer tree %v", tree)
	}
	if err := tr.WriteTree(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerOpenSpanDuration(t *testing.T) {
	clock := testkit.NewClock(time.Unix(0, 0).UTC())
	tr := obs.NewTracer(clock.Now)
	sp := tr.Start("open")
	clock.Advance(5 * time.Second)
	if got := sp.Duration(); got != 5*time.Second {
		t.Fatalf("open span duration %v", got)
	}
	tree := tr.Tree() // rendering an open span uses the current clock
	if tree[0].DurationNS != int64(5*time.Second) {
		t.Fatalf("open span node %+v", tree[0])
	}
	sp.End()
	sp.End() // double End is a no-op
	clock.Advance(time.Hour)
	if got := sp.Duration(); got != 5*time.Second {
		t.Fatalf("ended span drifted to %v", got)
	}
}

func TestTracerMultipleRoots(t *testing.T) {
	clock := testkit.NewClock(time.Unix(0, 0).UTC())
	tr := obs.NewTracer(clock.Now)
	a := tr.Start("first")
	clock.Advance(time.Second)
	a.End()
	b := tr.Start("second")
	clock.Advance(2 * time.Second)
	b.End()
	tree := tr.Tree()
	if len(tree) != 2 || tree[0].Name != "first" || tree[1].Name != "second" {
		t.Fatalf("tree = %+v", tree)
	}
}

func TestNewTracerRequiresClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTracer(nil) did not panic")
		}
	}()
	obs.NewTracer(nil)
}
