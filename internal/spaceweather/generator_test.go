package spaceweather

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"cosmicdance/internal/units"
)

var g0 = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

func TestGenerateValidatesConfig(t *testing.T) {
	if _, err := Generate(Config{Hours: 0}); err == nil {
		t.Error("Hours=0 accepted")
	}
	if _, err := Generate(Config{Hours: 10, QuietRho: 1.0}); err == nil {
		t.Error("QuietRho=1 accepted")
	}
	if _, err := Generate(Config{Hours: 10, QuietRho: -0.1}); err == nil {
		t.Error("negative QuietRho accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Start: g0, Hours: 24 * 30, Seed: 5, QuietMean: -11, QuietStd: 6, QuietRho: 0.8, MildPerYear: 20, MildExcessMean: 12}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	av, bv := a.Hourly().Values(), b.Hourly().Values()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("divergence at hour %d: %v vs %v", i, av[i], bv[i])
		}
	}
	cfg.Seed = 6
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i, v := range c.Hourly().Values() {
		if v != av[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical series")
	}
}

func TestQuietBackgroundStatistics(t *testing.T) {
	cfg := Config{Start: g0, Hours: 24 * 365 * 4, Seed: 1, QuietMean: -11, QuietStd: 7, QuietRho: 0.9}
	x, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vals := x.Hourly().Values()
	var sum, ss float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	for _, v := range vals {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / float64(len(vals)))
	if math.Abs(mean-(-11)) > 1 {
		t.Errorf("background mean = %v, want ~-11", mean)
	}
	if math.Abs(sd-7) > 1 {
		t.Errorf("background stationary sd = %v, want ~7", sd)
	}
	// Without storms the background should essentially never reach storm
	// levels.
	storms := x.Storms(units.StormThreshold)
	if len(storms) > 5 {
		t.Errorf("quiet background produced %d storm runs", len(storms))
	}
}

func TestInjectedStormProfile(t *testing.T) {
	peakAt := g0.Add(100 * time.Hour)
	cfg := Config{
		Start: g0, Hours: 300, Seed: 3,
		QuietMean: -11, QuietStd: 0.01, QuietRho: 0.5, // near-silent background
		Storms: []StormSpec{{Peak: -150, PeakAt: peakAt, MainPhaseHours: 4, RecoveryTau: 10, Commencement: 20}},
	}
	x, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	peak, at := x.Min()
	if !at.Equal(peakAt) {
		t.Errorf("peak at %v, want %v", at, peakAt)
	}
	if peak > -150 || peak < -170 {
		t.Errorf("peak = %v, want ~-161 (storm + background)", peak)
	}
	// Sudden commencement bump before onset.
	sc, _ := x.At(peakAt.Add(-5 * time.Hour))
	if sc < units.NanoTesla(-11) {
		t.Errorf("commencement hour = %v, want positive bump above background", sc)
	}
	// Main phase is monotone down.
	prev, _ := x.At(peakAt.Add(-4 * time.Hour))
	for k := -3; k <= 0; k++ {
		v, _ := x.At(peakAt.Add(time.Duration(k) * time.Hour))
		if v >= prev {
			t.Errorf("main phase not monotone at k=%d: %v >= %v", k, v, prev)
		}
		prev = v
	}
	// Recovery is monotone up (exponential), reaching half depth within
	// tau·ln2 ≈ 7 hours.
	half, _ := x.At(peakAt.Add(7 * time.Hour))
	if float64(half) > -11-75*0.9 && float64(half) < -11-75*1.1 {
		// within 10% of half depth: good
	} else if half < -100 {
		t.Errorf("recovery too slow: %v at +7h", half)
	}
	// Fully recovered well after the storm.
	late, _ := x.At(peakAt.Add(80 * time.Hour))
	if late < -20 {
		t.Errorf("not recovered at +80h: %v", late)
	}
}

func TestStormAtSeriesEdgeIsSafe(t *testing.T) {
	// Storms whose profile extends past either end must not panic.
	for _, peakAt := range []time.Time{g0.Add(-5 * time.Hour), g0, g0.Add(23 * time.Hour), g0.Add(500 * time.Hour)} {
		cfg := Config{
			Start: g0, Hours: 24, Seed: 1, QuietStd: 1, QuietRho: 0.5, QuietMean: -10,
			Storms: []StormSpec{{Peak: -300, PeakAt: peakAt, MainPhaseHours: 3, RecoveryTau: 12}},
		}
		if _, err := Generate(cfg); err != nil {
			t.Fatalf("edge storm at %v: %v", peakAt, err)
		}
	}
}

func TestOverridesPinValues(t *testing.T) {
	at := g0.Add(10 * time.Hour)
	cfg := Config{
		Start: g0, Hours: 24, Seed: 1, QuietStd: 5, QuietRho: 0.5, QuietMean: -10,
		Overrides: []Override{
			{At: at, Value: -213},
			{At: g0.Add(-time.Hour), Value: -999},      // outside: ignored
			{At: g0.Add(100 * time.Hour), Value: -999}, // outside: ignored
		},
	}
	x, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := x.At(at); v != -213 {
		t.Errorf("override = %v, want -213", v)
	}
	min, _ := x.Min()
	if min != -213 {
		t.Errorf("min = %v; out-of-range overrides must be ignored", min)
	}
}

func TestZeroOrPositivePeakStormIgnored(t *testing.T) {
	cfg := Config{
		Start: g0, Hours: 48, Seed: 9, QuietStd: 0.01, QuietRho: 0.1, QuietMean: -10,
		Storms: []StormSpec{{Peak: 50, PeakAt: g0.Add(10 * time.Hour)}},
	}
	x, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if min, _ := x.Min(); min < -15 {
		t.Errorf("positive-peak storm altered series: min %v", min)
	}
}

func TestCycleWeightModulation(t *testing.T) {
	cfg := Config{CycleAmplitude: 0.8, CyclePeak: g0}
	atMax := cycleWeight(cfg, g0)
	if math.Abs(atMax-1) > 1e-9 {
		t.Errorf("weight at cycle peak = %v, want 1", atMax)
	}
	// Solar minimum is 5.5 years after maximum.
	atMin := cycleWeight(cfg, g0.Add(time.Duration(5.5*hoursPerYear)*time.Hour))
	if atMin >= atMax || atMin < 0.05 {
		t.Errorf("weight at cycle minimum = %v", atMin)
	}
	// No modulation configured: constant 1.
	if w := cycleWeight(Config{}, g0); w != 1 {
		t.Errorf("unmodulated weight = %v", w)
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, mean := range []float64{0.5, 4, 25, 100} {
		n := 2000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > mean*0.15+0.2 {
			t.Errorf("poisson mean %v: sample mean %v", mean, got)
		}
	}
	if poisson(rand.New(rand.NewSource(1)), 0) != 0 {
		t.Error("poisson(0) != 0")
	}
	if poisson(rand.New(rand.NewSource(1)), -3) != 0 {
		t.Error("poisson(negative) != 0")
	}
}
