package spaceweather

import (
	"time"

	"cosmicdance/internal/units"
)

// Scenario presets. Each pins a seed and the dated storms the paper analyses
// so that figures regenerate identically run-to-run. The background
// climatology is calibrated so the generated window reproduces the paper's
// summary statistics (see the calibration tests).

// Paper window landmarks.
var (
	// PaperStart is the first hour of the paper's measurement window
	// (January 2020).
	PaperStart = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	// PaperEnd is the end of the window ("1st week of May 2024").
	PaperEnd = time.Date(2024, 5, 8, 0, 0, 0, 0, time.UTC)

	// SevereStormPeak is the 24 Apr 2023 severe storm (the only severe hours
	// in the paper's dataset: −209, −213, −208 nT).
	SevereStormPeak = time.Date(2023, 4, 24, 17, 0, 0, 0, time.UTC)
	// Fig3StormA is the moderate 24 Mar 2023 event (drag spike of
	// satellite #45766 and decay onset of #45400 in Fig 3).
	Fig3StormA = time.Date(2023, 3, 24, 12, 0, 0, 0, time.UTC)
	// Fig3StormB is the moderate 3 Mar 2024 event (the ~150 km decay of
	// satellite #44943 in Fig 3).
	Fig3StormB = time.Date(2024, 3, 3, 18, 0, 0, 0, time.UTC)
	// Fig4Storm is the randomly picked −112 nT event of Fig 4(a).
	Fig4Storm = time.Date(2021, 11, 4, 6, 0, 0, 0, time.UTC)
	// Feb2022Storm is the moderate storm behind the well-known loss of 38
	// freshly launched Starlink satellites from their staging orbit.
	Feb2022Storm = time.Date(2022, 2, 3, 12, 0, 0, 0, time.UTC)
	// May2024Peak is the super-storm hour (−412 nT, the most intense since
	// the 2003 Halloween storms).
	May2024Peak = time.Date(2024, 5, 11, 2, 0, 0, 0, time.UTC)
)

// baseClimatology holds the calibrated background shared by the presets.
func baseClimatology(cfg Config) Config {
	cfg.QuietMean = -11
	cfg.QuietStd = 7
	cfg.QuietRho = 0.9
	cfg.MildPerYear = 36
	cfg.ModeratePerYear = 3.0
	cfg.MildExcessMean = 13
	cfg.ModerateExcessMean = 20
	cfg.CycleAmplitude = 0.8
	return cfg
}

// Paper2020to2024 is the paper's 4+ year measurement window: Jan 2020 through
// the first week of May 2024, with every dated event of §4–5 injected.
func Paper2020to2024() Config {
	cfg := baseClimatology(Config{
		Start: PaperStart,
		Hours: int(PaperEnd.Sub(PaperStart) / time.Hour),
		Seed:  20200101,
		// Solar cycle 25 ramps up through the window toward its 2024/25
		// maximum, matching the paper's "the Sun is coming out of a 3-decade
		// long lower activity phase".
		CyclePeak: time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC),
	})
	cfg.Storms = []StormSpec{
		// 24 Mar 2023 moderate storm (Fig 3): real peak Dst was about
		// −163 nT.
		{Peak: -163, PeakAt: Fig3StormA, MainPhaseHours: 4, RecoveryTau: 12, Commencement: 12},
		// 3 Mar 2024 moderate storm (Fig 3).
		{Peak: -110, PeakAt: Fig3StormB, MainPhaseHours: 3, RecoveryTau: 10, Commencement: 10},
		// The −112 nT event of Fig 4(a).
		{Peak: -112, PeakAt: Fig4Storm, MainPhaseHours: 3, RecoveryTau: 11, Commencement: 14},
		// 3 Feb 2022 moderate storm (Starlink staging-orbit incident).
		{Peak: -66, PeakAt: Feb2022Storm, MainPhaseHours: 3, RecoveryTau: 9, Commencement: 8},
		// 24 Apr 2023 severe storm; the exact published hours are pinned
		// below.
		{Peak: -196, PeakAt: SevereStormPeak.Add(-time.Hour), MainPhaseHours: 3, RecoveryTau: 7, Commencement: 16},
	}
	cfg.Overrides = []Override{
		// The only three severe hours in the dataset: −209, −213, −208 nT.
		{At: SevereStormPeak.Add(-time.Hour), Value: -209},
		{At: SevereStormPeak, Value: -213},
		{At: SevereStormPeak.Add(time.Hour), Value: -208},
		// Shoulder hours pinned just above −200 so exactly three hours are
		// severe.
		{At: SevereStormPeak.Add(-2 * time.Hour), Value: -188},
		{At: SevereStormPeak.Add(2 * time.Hour), Value: -183},
	}
	return cfg
}

// FiftyYears reproduces Fig 8's ~50-year Dst history (1975 through mid 2024)
// with the eight named historic storms seeded at their recorded intensities.
func FiftyYears() Config {
	start := time.Date(1975, 1, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	cfg := baseClimatology(Config{
		Start: start,
		Hours: int(end.Sub(start) / time.Hour),
		Seed:  19750101,
		// Solar maxima near 1990, 2001, 2012, 2023 (cycles 22-25).
		CyclePeak: time.Date(1990, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	named := []struct {
		at   time.Time
		peak units.NanoTesla
	}{
		{time.Date(1989, 3, 9, 18, 0, 0, 0, time.UTC), -589},  // Quebec blackout storm
		{time.Date(1991, 11, 9, 12, 0, 0, 0, time.UTC), -354}, // disappearing filament
		{time.Date(2000, 4, 6, 20, 0, 0, 0, time.UTC), -288},
		{time.Date(2000, 7, 15, 21, 0, 0, 0, time.UTC), -301}, // Bastille Day
		{time.Date(2001, 4, 11, 16, 0, 0, 0, time.UTC), -271},
		{time.Date(2001, 11, 5, 18, 0, 0, 0, time.UTC), -292},
		{time.Date(2003, 10, 30, 22, 0, 0, 0, time.UTC), -383}, // Halloween storm
		{time.Date(2024, 5, 10, 23, 0, 0, 0, time.UTC), -412},  // May 2024 super-storm
	}
	for _, n := range named {
		// The profile peaks at 85% of the recorded value and the override
		// pins the exact published peak, so the labelled hour stays the local
		// minimum even when a random background storm happens to overlap.
		cfg.Storms = append(cfg.Storms, StormSpec{
			Peak: n.peak * 0.85, PeakAt: n.at, MainPhaseHours: 5, RecoveryTau: 14, Commencement: 20,
		})
		cfg.Overrides = append(cfg.Overrides, Override{At: n.at, Value: n.peak})
	}
	return cfg
}

// NamedHistoricStorms lists Fig 8's labelled events (time, recorded peak).
func NamedHistoricStorms() []Override {
	cfg := FiftyYears()
	return cfg.Overrides
}

// May2024 covers May 2024 for Fig 7's super-storm post-analysis: peak
// −412 nT with intensity below −200 nT for ~23 hours (the WDC record for
// 10-11 May 2024), produced by the double-CME arrival of the real event.
func May2024() Config {
	start := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	cfg := baseClimatology(Config{
		Start:     start,
		Hours:     int(end.Sub(start) / time.Hour),
		Seed:      20240510,
		CyclePeak: time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC),
	})
	// Suppress random moderate storms: the month is dominated by the
	// super-storm itself.
	cfg.ModeratePerYear = 0
	cfg.Storms = []StormSpec{
		// First CME arrival: main drop to −412.
		{Peak: -400, PeakAt: May2024Peak, MainPhaseHours: 5, RecoveryTau: 10, Commencement: 25},
		// Second arrival ~12 h later keeps the index below −200 through the
		// 23-hour window.
		{Peak: -290, PeakAt: May2024Peak.Add(13 * time.Hour), MainPhaseHours: 4, RecoveryTau: 12},
	}
	cfg.Overrides = []Override{{At: May2024Peak, Value: -412}}
	return cfg
}
