// Package spaceweather synthesizes geomagnetically realistic Dst index
// series. The paper consumes the live WDC Kyoto feed; this workspace is
// offline, so the generator substitutes a statistically calibrated model:
// an AR(1) quiet-time background, Poisson storm arrivals modulated by the
// solar cycle, and the classic storm profile (sudden commencement, main
// phase, exponential recovery). Scenario presets pin seeds and inject the
// dated events the paper analyses so every figure is reproducible.
package spaceweather

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"cosmicdance/internal/dst"
	"cosmicdance/internal/units"
)

// StormSpec describes one storm to superimpose on the background.
type StormSpec struct {
	Peak           units.NanoTesla // most negative excursion (< 0)
	PeakAt         time.Time
	MainPhaseHours int             // onset-to-peak ramp length
	RecoveryTau    float64         // e-folding recovery time in hours
	Commencement   units.NanoTesla // positive sudden-commencement bump (>= 0)
}

// Override pins one exact hourly reading after all modelling, used to
// reproduce exact published values (e.g. the −209/−213/−208 nT hours of
// 24 Apr 2023).
type Override struct {
	At    time.Time
	Value units.NanoTesla
}

// Config parameterizes a generation run. The zero value is not useful; start
// from a scenario preset or fill Start/Hours/Seed at minimum.
type Config struct {
	Start time.Time
	Hours int
	Seed  int64

	// Quiet-time background: AR(1) around QuietMean with stationary
	// standard deviation QuietStd and lag-1 autocorrelation QuietRho.
	QuietMean float64
	QuietStd  float64
	QuietRho  float64

	// Random storm climatology: expected arrivals per year by class and the
	// mean excess intensity beyond each class floor (exponentially
	// distributed, clamped to the class band).
	MildPerYear        float64
	ModeratePerYear    float64
	MildExcessMean     float64 // nT beyond −50
	ModerateExcessMean float64 // nT beyond −100

	// Solar-cycle modulation of arrival rates: rate(t) scales by
	// 1 + CycleAmplitude·cos(2π(t−CyclePeak)/11y), floored at 0.05.
	CycleAmplitude float64
	CyclePeak      time.Time

	// Deterministic events and exact-value pins.
	Storms    []StormSpec
	Overrides []Override
}

const hoursPerYear = 365.25 * 24

// Generate synthesizes the hourly Dst index described by cfg.
func Generate(cfg Config) (*dst.Index, error) {
	if cfg.Hours <= 0 {
		return nil, fmt.Errorf("spaceweather: Hours must be positive, got %d", cfg.Hours)
	}
	if cfg.QuietRho < 0 || cfg.QuietRho >= 1 {
		return nil, fmt.Errorf("spaceweather: QuietRho %v outside [0,1)", cfg.QuietRho)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := cfg.Start.UTC().Truncate(time.Hour)
	values := make([]float64, cfg.Hours)

	// Quiet background: the sum of a fast AR(1) (hour-scale fluctuations)
	// and a slow AR(1) (the week-scale calm and unsettled stretches real Dst
	// shows, without which multi-day quiet windows would never occur).
	// Innovations are scaled so QuietStd is the total stationary standard
	// deviation.
	fastStd := cfg.QuietStd * 0.8
	slowStd := cfg.QuietStd * 0.6
	const slowRho = 0.995 // ~200 h persistence
	fastInnov := fastStd * math.Sqrt(1-cfg.QuietRho*cfg.QuietRho)
	slowInnov := slowStd * math.Sqrt(1-slowRho*slowRho)
	fast, slow := 0.0, 0.0
	for i := range values {
		fast = cfg.QuietRho*fast + rng.NormFloat64()*fastInnov
		slow = slowRho*slow + rng.NormFloat64()*slowInnov
		values[i] = cfg.QuietMean + fast + slow
	}

	// Random storm arrivals, then the injected ones.
	storms := append([]StormSpec(nil), cfg.Storms...)
	storms = append(storms, drawStorms(cfg, rng)...)
	sort.Slice(storms, func(i, j int) bool { return storms[i].PeakAt.Before(storms[j].PeakAt) })
	for _, s := range storms {
		applyStorm(values, start, s)
	}

	for _, o := range cfg.Overrides {
		i := int(o.At.UTC().Sub(start) / time.Hour)
		if i >= 0 && i < len(values) {
			values[i] = float64(o.Value)
		}
	}
	return dst.FromValues(start, values), nil
}

// drawStorms samples the random storm climatology.
func drawStorms(cfg Config, rng *rand.Rand) []StormSpec {
	years := float64(cfg.Hours) / hoursPerYear
	var out []StormSpec
	sample := func(perYear, floor, excessMean, bandWidth float64) {
		if perYear <= 0 {
			return
		}
		// Thinned Poisson process: draw the unmodulated count, then accept
		// each arrival with the cycle weight at its time.
		expected := perYear * years
		n := poisson(rng, expected)
		for k := 0; k < n; k++ {
			h := rng.Intn(cfg.Hours)
			at := cfg.Start.Add(time.Duration(h) * time.Hour)
			if rng.Float64() > cycleWeight(cfg, at) {
				continue
			}
			excess := rng.ExpFloat64() * excessMean
			if excess > bandWidth-1 {
				excess = bandWidth - 1
			}
			out = append(out, StormSpec{
				Peak:           units.NanoTesla(floor - excess),
				PeakAt:         at,
				MainPhaseHours: 2 + rng.Intn(5),
				RecoveryTau:    5 + rng.Float64()*13,
				Commencement:   units.NanoTesla(5 + rng.Float64()*15),
			})
		}
	}
	sample(cfg.MildPerYear, -50, cfg.MildExcessMean, 50)
	sample(cfg.ModeratePerYear, -100, cfg.ModerateExcessMean, 100)
	return out
}

// cycleWeight returns the solar-cycle acceptance probability in (0, 1].
func cycleWeight(cfg Config, at time.Time) float64 {
	if cfg.CycleAmplitude == 0 {
		return 1
	}
	const cycleYears = 11.0
	phase := at.Sub(cfg.CyclePeak).Hours() / (cycleYears * hoursPerYear) * 2 * math.Pi
	w := (1 + cfg.CycleAmplitude*math.Cos(phase)) / (1 + cfg.CycleAmplitude)
	if w < 0.05 {
		w = 0.05
	}
	return w
}

// applyStorm superimposes one storm profile onto the hourly background.
func applyStorm(values []float64, start time.Time, s StormSpec) {
	if s.Peak >= 0 {
		return
	}
	peakIdx := int(s.PeakAt.UTC().Sub(start) / time.Hour)
	main := s.MainPhaseHours
	if main < 1 {
		main = 1
	}
	tau := s.RecoveryTau
	if tau <= 0 {
		tau = 8
	}
	// Sudden commencement: a brief positive bump the hour before onset.
	if s.Commencement > 0 {
		if i := peakIdx - main - 1; i >= 0 && i < len(values) {
			values[i] += float64(s.Commencement)
		}
	}
	// Main phase: smooth ramp from onset to peak.
	for k := 0; k <= main; k++ {
		i := peakIdx - main + k
		if i < 0 || i >= len(values) {
			continue
		}
		f := float64(k) / float64(main)
		values[i] += float64(s.Peak) * f * f * (3 - 2*f) // smoothstep
	}
	// Recovery: exponential decay until the contribution is negligible.
	for k := 1; ; k++ {
		i := peakIdx + k
		contrib := float64(s.Peak) * math.Exp(-float64(k)/tau)
		if contrib > -1 {
			break
		}
		if i >= len(values) {
			break
		}
		if i >= 0 {
			values[i] += contrib
		}
	}
}

// poisson draws a Poisson variate. For large means it falls back to the
// normal approximation, which is ample for climatology counts.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
