package spaceweather

import (
	"testing"
	"time"

	"cosmicdance/internal/dst"
	"cosmicdance/internal/units"
)

// These tests are the calibration contract: the synthetic scenarios must
// reproduce the summary statistics the paper reports for the real WDC data
// (within tolerances documented in DESIGN.md).

func TestPaperScenarioCalibration(t *testing.T) {
	x, err := Generate(Paper2020to2024())
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() != 38136 {
		t.Errorf("window = %d hours, want 38136 (Jan'20 .. 8 May'24)", x.Len())
	}

	classes := x.HoursInClass()
	// Paper: 720 hours of mild storms in total.
	if got := classes[units.G1Minor]; got < 500 || got > 950 {
		t.Errorf("mild hours = %d, want ~720", got)
	}
	// Paper: 74 hours of moderate storms.
	if got := classes[units.G2Moderate]; got < 45 || got > 110 {
		t.Errorf("moderate hours = %d, want ~74", got)
	}
	// Paper: exactly 3 severe hours (24 Apr 2023), no extreme hours.
	if got := classes[units.G4Severe]; got != 3 {
		t.Errorf("severe hours = %d, want exactly 3", got)
	}
	if got := classes[units.G5Extreme]; got != 0 {
		t.Errorf("extreme hours = %d, want 0", got)
	}

	// Paper: 99th-ptile intensity −63 nT; 95th-ptile milder than −50 nT.
	p99, err := x.IntensityPercentile(99)
	if err != nil {
		t.Fatal(err)
	}
	if p99 > -52 || p99 < -78 {
		t.Errorf("p99 = %v, want ~-63 nT", p99)
	}
	p95, err := x.IntensityPercentile(95)
	if err != nil {
		t.Fatal(err)
	}
	if p95 <= -50 {
		t.Errorf("p95 = %v, want milder than the -50 nT minor-storm threshold", p95)
	}

	// The three severe hours are the published ones.
	for _, c := range []struct {
		at   time.Time
		want units.NanoTesla
	}{
		{SevereStormPeak.Add(-time.Hour), -209},
		{SevereStormPeak, -213},
		{SevereStormPeak.Add(time.Hour), -208},
	} {
		if v, ok := x.At(c.at); !ok || v != c.want {
			t.Errorf("severe hour %v = %v, want %v", c.at, v, c.want)
		}
	}
	min, at := x.Min()
	if min != -213 || !at.Equal(SevereStormPeak) {
		t.Errorf("dataset min = %v at %v, want -213 at %v", min, at, SevereStormPeak)
	}
}

func TestPaperScenarioStormDurations(t *testing.T) {
	x, err := Generate(Paper2020to2024())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 2 measures time spent at each category's depth (the paper's severe
	// storm "lasted 3 contiguous hours" counts exactly the hours <= -200 nT).
	mild, err := dst.DurationSummary(x.CategoryRuns(units.G1Minor))
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig 2 (mild): median ~3 h, 95th ~17 h, max 29 h.
	if mild.Median < 2 || mild.Median > 7 {
		t.Errorf("mild median duration = %v h, want ~3", mild.Median)
	}
	if mild.Max < 10 || mild.Max > 40 {
		t.Errorf("mild max duration = %v h, want ~29", mild.Max)
	}

	mod, err := dst.DurationSummary(x.CategoryRuns(units.G2Moderate))
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig 2 (moderate): median ~3 h, max ~19 h.
	if mod.Median < 2 || mod.Median > 8 {
		t.Errorf("moderate median duration = %v h, want ~3", mod.Median)
	}
	if mod.Max < 5 || mod.Max > 25 {
		t.Errorf("moderate max duration = %v h, want ~19", mod.Max)
	}

	// The severe depth was held for exactly one 3-hour run (24 Apr 2023).
	severe := x.CategoryRuns(units.G4Severe)
	if len(severe) != 1 || severe[0].Hours != 3 {
		t.Errorf("severe runs = %+v, want one 3-hour run", severe)
	}
}

func TestPaperScenarioInjectedEvents(t *testing.T) {
	x, err := Generate(Paper2020to2024())
	if err != nil {
		t.Fatal(err)
	}
	// Every dated event must be present at (close to) its nominal intensity.
	cases := []struct {
		name string
		at   time.Time
		lo   units.NanoTesla // most negative allowed
		hi   units.NanoTesla // least negative allowed
	}{
		{"24 Mar 2023", Fig3StormA, -200, -140},
		{"3 Mar 2024", Fig3StormB, -145, -95},
		{"Fig 4 (-112 nT)", Fig4Storm, -145, -100},
		{"3 Feb 2022", Feb2022Storm, -105, -55},
	}
	for _, c := range cases {
		v, ok := x.At(c.at)
		if !ok {
			t.Errorf("%s: hour missing", c.name)
			continue
		}
		if v < c.lo || v > c.hi {
			t.Errorf("%s: %v outside [%v, %v]", c.name, v, c.lo, c.hi)
		}
	}
}

func TestMay2024Scenario(t *testing.T) {
	x, err := Generate(May2024())
	if err != nil {
		t.Fatal(err)
	}
	min, at := x.Min()
	if min != -412 {
		t.Errorf("peak = %v, want -412 nT", min)
	}
	if !at.Equal(May2024Peak) {
		t.Errorf("peak at %v, want %v", at, May2024Peak)
	}
	// WDC recorded ~23 hours below −200 nT.
	below := 0
	for _, v := range x.Hourly().Values() {
		if v <= -200 {
			below++
		}
	}
	if below < 15 || below > 30 {
		t.Errorf("hours <= -200 = %d, want ~23", below)
	}
	// The storm classifies as extreme (G5).
	byCat := x.StormsByCategory(units.StormThreshold)
	if len(byCat[units.G5Extreme]) == 0 {
		t.Error("no extreme storm detected in May 2024 scenario")
	}
}

func TestFiftyYearsScenario(t *testing.T) {
	x, err := Generate(FiftyYears())
	if err != nil {
		t.Fatal(err)
	}
	if x.Start().Year() != 1975 || x.End().Year() != 2024 {
		t.Errorf("span = %v..%v", x.Start(), x.End())
	}
	// Every named historic storm is pinned at its recorded value and is the
	// deepest hour in its ±3 day neighbourhood.
	for _, n := range NamedHistoricStorms() {
		v, ok := x.At(n.At)
		if !ok || units.NanoTesla(v) != n.Value {
			t.Errorf("%v: value %v, want %v", n.At, v, n.Value)
			continue
		}
		window := x.Slice(n.At.Add(-72*time.Hour), n.At.Add(72*time.Hour))
		min, at := window.Min()
		if min < n.Value || !at.Equal(n.At) {
			t.Errorf("%v: neighbourhood min %v at %v undercuts the pinned peak %v", n.At, min, at, n.Value)
		}
	}
	// The global minimum is the March 1989 Quebec storm.
	min, at := x.Min()
	if min != -589 || at.Year() != 1989 {
		t.Errorf("global min = %v at %v, want -589 in 1989", min, at)
	}
}

func TestScenarioSolarCycleShape(t *testing.T) {
	// Storm activity in the paper window should ramp up toward the cycle-25
	// maximum: more storm hours in 2023-24 than 2020-21.
	x, err := Generate(Paper2020to2024())
	if err != nil {
		t.Fatal(err)
	}
	early := x.Slice(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC), time.Date(2021, 7, 1, 0, 0, 0, 0, time.UTC))
	late := x.Slice(time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC), time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC))
	stormHours := func(vals []float64) int {
		n := 0
		for _, v := range vals {
			if units.NanoTesla(v) <= units.StormThreshold {
				n++
			}
		}
		return n
	}
	e, l := stormHours(early.Hourly().Values()), stormHours(late.Hourly().Values())
	if l <= e {
		t.Errorf("late-window storm hours (%d) not above early window (%d)", l, e)
	}
}

func TestFiftyYearsSolarCyclePeriodicity(t *testing.T) {
	// Storm activity must wax and wane on the ~11-year cycle: years near the
	// configured maxima (1990, 2001, 2012, 2023) carry more storm hours than
	// years near the minima in between.
	x, err := Generate(FiftyYears())
	if err != nil {
		t.Fatal(err)
	}
	stormHours := func(year int) int {
		from := time.Date(year, 1, 1, 0, 0, 0, 0, time.UTC)
		n := 0
		for _, v := range x.Slice(from, from.AddDate(1, 0, 0)).Hourly().Values() {
			if units.NanoTesla(v) <= units.StormThreshold {
				n++
			}
		}
		return n
	}
	// Average over ±1 year around each phase to smooth Poisson noise.
	sum := func(years ...int) int {
		total := 0
		for _, y := range years {
			total += stormHours(y-1) + stormHours(y) + stormHours(y+1)
		}
		return total
	}
	maxima := sum(1990, 2001, 2012)
	minima := sum(1996, 2007, 2018)
	if maxima <= minima {
		t.Errorf("solar-maximum storm hours (%d) not above solar-minimum (%d)", maxima, minima)
	}
	if minima == 0 {
		t.Error("solar minima completely storm-free; modulation floor broken")
	}
}
