package artifact

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
	"cosmicdance/internal/dst"
)

// DefaultDir returns the default on-disk cache location:
// $COSMICDANCE_CACHE_DIR if set, else <user cache dir>/cosmicdance, else
// .cosmicdance-cache in the working directory.
func DefaultDir() string {
	if dir := os.Getenv("COSMICDANCE_CACHE_DIR"); dir != "" {
		return dir
	}
	if base, err := os.UserCacheDir(); err == nil {
		return filepath.Join(base, "cosmicdance")
	}
	return ".cosmicdance-cache"
}

// Cache is a content-addressed artifact store: one file per (kind,
// fingerprint), named <kind>-<fingerprint>.cda. Loads fail closed — any
// decode error (corruption, truncation, version skew) is reported as a miss
// and the damaged file is removed so the next store can rewrite it. Stores
// are atomic (temp file + rename), so a crashed writer never leaves a
// half-written entry that a later run could trust.
type Cache struct {
	dir string
}

// Open returns a cache rooted at dir, creating it if needed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: create cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// Path returns the file path an entry would live at.
func (c *Cache) Path(kind Kind, fp Fingerprint) string {
	return filepath.Join(c.dir, fmt.Sprintf("%s-%s.cda", kind, fp))
}

// load opens the entry and hands the stream to decode. A missing file, a
// decode failure, or trailing garbage all report a miss; damaged entries are
// deleted on the way out.
func (c *Cache) load(kind Kind, fp Fingerprint, decode func(io.Reader) error) bool {
	path := c.Path(kind, fp)
	f, err := os.Open(path)
	if err != nil {
		countKind(metricMisses, kind)
		return false
	}
	cr := &countingReader{r: bufio.NewReaderSize(f, 1<<20)}
	err = decode(cr)
	_ = f.Close()
	metricBytesRead.Add(cr.n)
	if err != nil {
		// Never serve a damaged entry twice: drop it so the next store
		// rewrites it cleanly.
		_ = os.Remove(path)
		countKind(metricEvictions, kind)
		countKind(metricMisses, kind)
		return false
	}
	countKind(metricHits, kind)
	return true
}

// store writes the entry atomically. Errors are returned, not swallowed: a
// failed store is a real condition (disk full, permissions) the caller may
// want to surface, even though the pipeline still has the artifact in hand.
func (c *Cache) store(kind Kind, fp Fingerprint, encode func(io.Writer) error) (err error) {
	defer func() {
		if err != nil {
			metricStoreFails.Inc()
		}
	}()
	tmp, err := os.CreateTemp(c.dir, "tmp-*.cda")
	if err != nil {
		return fmt.Errorf("artifact: stage cache entry: %w", err)
	}
	defer func() { _ = os.Remove(tmp.Name()) }()
	cw := &countingWriter{w: tmp}
	bw := bufio.NewWriterSize(cw, 1<<20)
	if err := encode(bw); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("artifact: write cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("artifact: close cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.Path(kind, fp)); err != nil {
		return fmt.Errorf("artifact: publish cache entry: %w", err)
	}
	metricBytesWritten.Add(cw.n)
	return nil
}

// LoadWeather returns the cached weather series for fp, or (nil, false) on a
// miss.
func (c *Cache) LoadWeather(fp Fingerprint) (*dst.Index, bool) {
	var out *dst.Index
	ok := c.load(KindWeather, fp, func(r io.Reader) error {
		var err error
		out, err = DecodeWeather(r)
		return err
	})
	return out, ok
}

// StoreWeather writes a weather series under fp.
func (c *Cache) StoreWeather(fp Fingerprint, x *dst.Index) error {
	return c.store(KindWeather, fp, func(w io.Writer) error { return EncodeWeather(w, x) })
}

// LoadArchive returns the cached constellation run for fp, or (nil, false)
// on a miss.
func (c *Cache) LoadArchive(fp Fingerprint) (*constellation.Result, bool) {
	var out *constellation.Result
	ok := c.load(KindArchive, fp, func(r io.Reader) error {
		var err error
		out, err = DecodeArchive(r)
		return err
	})
	return out, ok
}

// StoreArchive writes a constellation run under fp.
func (c *Cache) StoreArchive(fp Fingerprint, res *constellation.Result) error {
	return c.store(KindArchive, fp, func(w io.Writer) error { return EncodeArchive(w, res) })
}

// LoadDataset returns the cached dataset for fp reassembled under cfg, or
// (nil, false) on a miss.
func (c *Cache) LoadDataset(fp Fingerprint, cfg core.Config) (*core.Dataset, bool) {
	var out *core.Dataset
	ok := c.load(KindDataset, fp, func(r io.Reader) error {
		var err error
		out, err = DecodeDataset(r, cfg)
		return err
	})
	return out, ok
}

// StoreDataset writes a built dataset under fp.
func (c *Cache) StoreDataset(fp Fingerprint, d *core.Dataset) error {
	return c.store(KindDataset, fp, func(w io.Writer) error { return EncodeDataset(w, d) })
}
