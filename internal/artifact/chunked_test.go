package artifact

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"cosmicdance/internal/core"
)

// chunkedRef builds the monolithic reference dataset the chunked paths must
// reproduce byte for byte.
func chunkedRef(t *testing.T) []byte {
	t.Helper()
	w := testWeather(t)
	res := testArchive(t, w)
	return encodeDatasetBytes(t, testDataset(t, w, res))
}

// TestChunkedDatasetEquivalence is the store × chunk-size × width matrix:
// every combination must produce a dataset byte-identical to the monolithic
// Build over the same configs.
func TestChunkedDatasetEquivalence(t *testing.T) {
	wcfg, ccfg := testWeatherCfg(), core.DefaultConfig()
	ref := chunkedRef(t)

	stores := map[string]func(t *testing.T) (*Pipeline, ChunkedOptions){
		"memory": func(t *testing.T) (*Pipeline, ChunkedOptions) {
			return NewPipeline(nil), ChunkedOptions{InMemory: true}
		},
		"spill": func(t *testing.T) (*Pipeline, ChunkedOptions) {
			return NewPipeline(nil), ChunkedOptions{SpillDir: t.TempDir()}
		},
		"cache": func(t *testing.T) (*Pipeline, ChunkedOptions) {
			cache, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return NewPipeline(cache), ChunkedOptions{}
		},
	}
	for name, mk := range stores {
		t.Run(name, func(t *testing.T) {
			for _, chunkSize := range []int{1, 3, 5, 64} {
				for _, width := range []int{1, 4} {
					pipe, opts := mk(t)
					pipe.Log = failLogger(t)
					opts.ChunkSize = chunkSize
					fcfg := testFleetCfg()
					fcfg.Parallelism = width
					d, err := pipe.ChunkedDataset(context.Background(), wcfg, fcfg, ccfg, opts)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(encodeDatasetBytes(t, d), ref) {
						t.Fatalf("chunk=%d width=%d %s: chunked dataset differs from monolithic build", chunkSize, width, name)
					}
				}
			}
		})
	}
}

// TestEachSegmentOrdered proves the consume side sees chunks in order with
// globally ascending catalogs — the property the assembler's merge relies on.
func TestEachSegmentOrdered(t *testing.T) {
	pipe := NewPipeline(nil)
	pipe.Log = failLogger(t)
	fcfg := testFleetCfg()
	fcfg.Parallelism = 4
	next, lastCat := 0, -1
	err := pipe.EachSegment(context.Background(), testWeatherCfg(), fcfg, core.DefaultConfig(),
		ChunkedOptions{ChunkSize: 2}, func(chunk int, p *core.ChunkPartial) error {
			if chunk != next {
				t.Fatalf("chunk %d delivered, want %d", chunk, next)
			}
			next++
			for _, tr := range p.Tracks {
				if tr.Catalog <= lastCat {
					t.Fatalf("catalog %d after %d", tr.Catalog, lastCat)
				}
				lastCat = tr.Catalog
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if next == 0 {
		t.Fatal("no chunks delivered")
	}
}

// TestChunkedIncrementalResume proves segment-level caching: a second run
// over a warm cache builds zero segments, and a run missing exactly one
// segment rebuilds exactly one.
func TestChunkedIncrementalResume(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wcfg, ccfg := testWeatherCfg(), core.DefaultConfig()
	fcfg := testFleetCfg()
	opts := ChunkedOptions{ChunkSize: 3}

	run := func() []byte {
		pipe := NewPipeline(cache)
		pipe.Log = failLogger(t)
		d, err := pipe.ChunkedDataset(context.Background(), wcfg, fcfg, ccfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		return encodeDatasetBytes(t, d)
	}

	before := metricSegmentBuilds.Value()
	cold := run()
	built := metricSegmentBuilds.Value() - before
	if built == 0 {
		t.Fatal("cold run built no segments")
	}
	segs, err := filepath.Glob(filepath.Join(cache.Dir(), "segment-*.cda"))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(segs)) != built {
		t.Fatalf("%d segment files for %d builds", len(segs), built)
	}

	// Warm: every segment is a cache hit, nothing rebuilds.
	before = metricSegmentBuilds.Value()
	warm := run()
	if n := metricSegmentBuilds.Value() - before; n != 0 {
		t.Fatalf("warm run rebuilt %d segments", n)
	}
	if !bytes.Equal(warm, cold) {
		t.Fatal("warm chunked dataset differs from cold")
	}

	// Drop one segment: exactly one rebuild, same bytes.
	if err := os.Remove(segs[len(segs)/2]); err != nil {
		t.Fatal(err)
	}
	before = metricSegmentBuilds.Value()
	resumed := run()
	if n := metricSegmentBuilds.Value() - before; n != 1 {
		t.Fatalf("resume rebuilt %d segments, want 1", n)
	}
	if !bytes.Equal(resumed, cold) {
		t.Fatal("resumed chunked dataset differs from cold")
	}

	// A config change re-keys every segment: full rebuild, no stale reuse.
	before = metricSegmentBuilds.Value()
	fcfg.Seed++
	pipe := NewPipeline(cache)
	pipe.Log = failLogger(t)
	if _, err := pipe.ChunkedDataset(context.Background(), wcfg, fcfg, ccfg, opts); err != nil {
		t.Fatal(err)
	}
	if n := metricSegmentBuilds.Value() - before; n != built {
		t.Fatalf("re-seeded run rebuilt %d segments, want %d", n, built)
	}
}

// TestChunkedDamagedSegmentRebuilds corrupts cached segment files; the next
// run must detect the damage, rebuild inline, and still produce identical
// bytes — corruption costs time, never correctness.
func TestChunkedDamagedSegmentRebuilds(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wcfg, fcfg, ccfg := testWeatherCfg(), testFleetCfg(), core.DefaultConfig()
	opts := ChunkedOptions{ChunkSize: 3}

	pipe := NewPipeline(cache)
	pipe.Log = failLogger(t)
	cold, err := pipe.ChunkedDataset(context.Background(), wcfg, fcfg, ccfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(cache.Dir(), "segment-*.cda"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files (err=%v)", err)
	}
	// Damage one in the middle and truncate another to zero bytes.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[len(segs)-1], nil, 0o644); err != nil {
		t.Fatal(err)
	}

	pipe = NewPipeline(cache)
	pipe.Log = failLogger(t)
	healed, err := pipe.ChunkedDataset(context.Background(), wcfg, fcfg, ccfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeDatasetBytes(t, healed), encodeDatasetBytes(t, cold)) {
		t.Fatal("dataset built over damaged segments differs")
	}
	// The damaged entries were rewritten clean: a third run is all hits.
	before := metricSegmentBuilds.Value()
	pipe = NewPipeline(cache)
	pipe.Log = failLogger(t)
	if _, err := pipe.ChunkedDataset(context.Background(), wcfg, fcfg, ccfg, opts); err != nil {
		t.Fatal(err)
	}
	if n := metricSegmentBuilds.Value() - before; n != 0 {
		t.Fatalf("run after healing rebuilt %d segments", n)
	}
}

// TestChunkedCancelStopsCleanly cancels a chunked run mid-stream and checks
// the error and that no worker goroutines leak.
func TestChunkedCancelStopsCleanly(t *testing.T) {
	before := runtime.NumGoroutine()

	pipe := NewPipeline(nil)
	fcfg := testFleetCfg()
	fcfg.Parallelism = 4
	ctx, cancel := context.WithCancel(context.Background())
	delivered := 0
	err := pipe.EachSegment(ctx, testWeatherCfg(), fcfg, core.DefaultConfig(),
		ChunkedOptions{ChunkSize: 1, InMemory: true}, func(chunk int, _ *core.ChunkPartial) error {
			delivered++
			if delivered == 2 {
				cancel()
			}
			return nil
		})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}
