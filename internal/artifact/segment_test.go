package artifact

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"cosmicdance/internal/core"
)

// testPartial builds a real chunk partial from the shared archive fixture —
// the same cleaning path the chunked pipeline spills.
func testPartial(t testing.TB) *core.ChunkPartial {
	t.Helper()
	w := testWeather(t)
	res := testArchive(t, w)
	cfg := core.DefaultConfig()
	cfg.Parallelism = 1
	p, err := core.BuildChunkPartial(context.Background(), cfg, res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tracks) == 0 {
		t.Fatal("fixture partial has no tracks")
	}
	return p
}

// tinyPartial is a hand-built partial small enough for the exhaustive
// byte-flip sweep.
func tinyPartial() *core.ChunkPartial {
	return &core.ChunkPartial{
		Tracks: []*core.Track{
			{
				Catalog: 100,
				Points: []core.TrackPoint{
					{Epoch: 1000, AltKm: 549.5, BStar: 1e-4, Incl: 53},
					{Epoch: 2000, AltKm: 549.1, BStar: 1.1e-4, Incl: 53},
				},
				OperationalAltKm: 550,
				RaisingRemoved:   1,
			},
			{
				Catalog:          205,
				Points:           []core.TrackPoint{{Epoch: 1500, AltKm: 610.2, BStar: 2e-4, Incl: 42}},
				OperationalAltKm: 610,
			},
		},
		RawAlts: []float64{120.5, 549.5, 549.5, 610.2},
		Stats: core.CleaningStats{
			TotalObservations: 5,
			GrossErrors:       1,
			RaisingRemoved:    1,
			NonOperational:    1,
			Duplicates:        1,
		},
	}
}

func encodeSegmentBytes(t testing.TB, chunk int, p *core.ChunkPartial) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeSegment(&buf, chunk, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSegmentRoundTrip(t *testing.T) {
	for _, p := range []*core.ChunkPartial{tinyPartial(), testPartial(t)} {
		enc := encodeSegmentBytes(t, 7, p)
		chunk, got, err := DecodeSegment(bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		if chunk != 7 {
			t.Fatalf("chunk index %d, want 7", chunk)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatal("partial changed across the round trip")
		}
		// Canonical form: re-encoding the decoded partial is byte-identical.
		if !bytes.Equal(enc, encodeSegmentBytes(t, chunk, got)) {
			t.Fatal("re-encoding the decoded segment produced different bytes")
		}
	}
}

// TestSegmentEveryByteFlipFailsClosed corrupts each byte of a small segment
// in turn; every flip must fail decoding with ErrCorrupt or ErrVersionSkew —
// never a panic, never silently wrong data.
func TestSegmentEveryByteFlipFailsClosed(t *testing.T) {
	enc := encodeSegmentBytes(t, 0, tinyPartial())
	for i := range enc {
		bad := bytes.Clone(enc)
		bad[i] ^= 0x5a
		_, _, err := DecodeSegment(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("flip at byte %d/%d decoded successfully", i, len(enc))
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersionSkew) {
			t.Fatalf("flip at byte %d: unexpected error class: %v", i, err)
		}
	}
}

func TestSegmentTruncationFailsClosed(t *testing.T) {
	enc := encodeSegmentBytes(t, 2, testPartial(t))
	for _, n := range []int{0, 1, 4, 11, 12, len(enc) / 2, len(enc) - 1} {
		if _, _, err := DecodeSegment(bytes.NewReader(enc[:n])); err == nil {
			t.Fatalf("segment truncated to %d bytes decoded successfully", n)
		}
	}
	// Trailing garbage is corruption too: a snapshot is exactly framed.
	if _, _, err := DecodeSegment(bytes.NewReader(append(bytes.Clone(enc), 0))); err == nil {
		t.Fatal("segment with trailing garbage decoded successfully")
	}
	// A segment must not decode as another kind, nor another kind as a segment.
	if err := decodeAny(KindWeather, enc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("segment decoded as weather: %v", err)
	}
	w := testWeather(t)
	if _, _, err := DecodeSegment(bytes.NewReader(encodeWeatherBytes(t, w))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("weather decoded as segment: %v", err)
	}
}

// TestSegmentNonCanonicalRejected encodes partials that violate the
// assembler's invariants; the decoder must refuse each one so a forged or
// damaged segment can never smuggle a non-canonical partial into a build.
func TestSegmentNonCanonicalRejected(t *testing.T) {
	cases := map[string]func(p *core.ChunkPartial){
		"tracks out of catalog order": func(p *core.ChunkPartial) {
			p.Tracks[0], p.Tracks[1] = p.Tracks[1], p.Tracks[0]
		},
		"duplicate catalog": func(p *core.ChunkPartial) {
			p.Tracks[1].Catalog = p.Tracks[0].Catalog
		},
		"empty track": func(p *core.ChunkPartial) {
			p.Tracks[1].Points = nil
		},
		"raw altitudes out of canonical order": func(p *core.ChunkPartial) {
			p.RawAlts[0], p.RawAlts[1] = p.RawAlts[1], p.RawAlts[0]
		},
	}
	for name, mutate := range cases {
		p := tinyPartial()
		mutate(p)
		enc := encodeSegmentBytes(t, 0, p)
		if _, _, err := DecodeSegment(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}
