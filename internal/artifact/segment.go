package artifact

import (
	"fmt"
	"io"
	"math"

	"cosmicdance/internal/core"
)

// --- segment (core.ChunkPartial) ---
//
// A segment is one chunk's share of a dataset build, spilled through the
// same section/CRC container as every other snapshot kind. Unlike a dataset
// it carries no weather (the pipeline holds one weather series for every
// chunk) and no cleaned altitudes (they are derivable from the track points,
// so storing them would only create a corruption channel).
//
// Sections: 0 = meta (chunk index, counts, cleaning stats), 1 = track
// directory, 2..5 = one column per TrackPoint field over all tracks
// concatenated, 6 = raw altitudes in canonical total order.
//
// The decoder enforces canonical form — strictly catalog-ascending non-empty
// tracks, raw altitudes in canonical order — so any decoded segment
// re-encodes to the identical bytes and a forged or damaged segment can
// never smuggle a non-canonical partial into an assembly.

// EncodeSegment writes one chunk partial as a spillable segment snapshot.
func EncodeSegment(w io.Writer, chunk int, p *core.ChunkPartial) error {
	sw := newSectionWriter(w, KindSegment)

	nPoints := 0
	for _, tr := range p.Tracks {
		nPoints += len(tr.Points)
	}

	var meta recordBuf
	meta.i64(int64(chunk))
	meta.u32(uint32(len(p.Tracks)))
	meta.i64(int64(nPoints))
	meta.i64(int64(len(p.RawAlts)))
	meta.i64(int64(p.Stats.TotalObservations))
	meta.i64(int64(p.Stats.GrossErrors))
	meta.i64(int64(p.Stats.RaisingRemoved))
	meta.i64(int64(p.Stats.NonOperational))
	meta.i64(int64(p.Stats.Duplicates))
	sw.section(0, meta.buf)

	var dir recordBuf
	for _, tr := range p.Tracks {
		dir.u32(uint32(tr.Catalog))
		dir.u32(uint32(len(tr.Points)))
		dir.f64(tr.OperationalAltKm)
		dir.u32(uint32(tr.RaisingRemoved))
	}
	sw.section(1, dir.buf)

	epochs := make([]int64, nPoints)
	alts := make([]float32, nPoints)
	bstars := make([]float32, nPoints)
	incls := make([]float32, nPoints)
	i := 0
	for _, tr := range p.Tracks {
		for _, pt := range tr.Points {
			epochs[i] = pt.Epoch
			alts[i] = pt.AltKm
			bstars[i] = pt.BStar
			incls[i] = pt.Incl
			i++
		}
	}
	sw.section(2, packI64(epochs))
	sw.section(3, packF32(alts))
	sw.section(4, packF32(bstars))
	sw.section(5, packF32(incls))
	sw.section(6, packF64(p.RawAlts))
	return sw.close()
}

// DecodeSegment reads a segment snapshot, failing closed on any damage or
// non-canonical content. It returns the chunk index the segment was encoded
// for alongside the partial.
func DecodeSegment(r io.Reader) (int, *core.ChunkPartial, error) {
	sr, err := newSectionReader(r, KindSegment)
	if err != nil {
		return 0, nil, err
	}
	meta, err := sr.section(0)
	if err != nil {
		return 0, nil, err
	}
	mp := &recordParser{buf: meta}
	chunk, err := mp.i64()
	if err != nil {
		return 0, nil, err
	}
	nTracks, err := mp.u32()
	if err != nil {
		return 0, nil, err
	}
	var counts [2]int64 // points, raw
	for k := range counts {
		if counts[k], err = mp.i64(); err != nil {
			return 0, nil, err
		}
	}
	var statFields [5]int64
	for k := range statFields {
		if statFields[k], err = mp.i64(); err != nil {
			return 0, nil, err
		}
	}
	if err := mp.done(); err != nil {
		return 0, nil, err
	}
	nPoints, nRaw := counts[0], counts[1]
	if chunk < 0 || chunk > 1<<31 || nTracks > 1<<24 || nPoints < 0 || nPoints > 1<<31 || nRaw < 0 || nRaw > 1<<31 {
		return 0, nil, fmt.Errorf("%w: segment claims chunk %d, %d tracks, %d points", ErrCorrupt, chunk, nTracks, nPoints)
	}
	p := &core.ChunkPartial{Stats: core.CleaningStats{
		TotalObservations: int(statFields[0]),
		GrossErrors:       int(statFields[1]),
		RaisingRemoved:    int(statFields[2]),
		NonOperational:    int(statFields[3]),
		Duplicates:        int(statFields[4]),
	}}

	dirPayload, err := sr.section(1)
	if err != nil {
		return 0, nil, err
	}
	dp := &recordParser{buf: dirPayload}
	type dirEntry struct {
		catalog, nPoints, raisingRemoved uint32
		opAlt                            float64
	}
	dir := make([]dirEntry, nTracks)
	total := int64(0)
	prevCat := int64(-1)
	for i := range dir {
		if dir[i].catalog, err = dp.u32(); err != nil {
			return 0, nil, err
		}
		if dir[i].nPoints, err = dp.u32(); err != nil {
			return 0, nil, err
		}
		if dir[i].opAlt, err = dp.f64(); err != nil {
			return 0, nil, err
		}
		if dir[i].raisingRemoved, err = dp.u32(); err != nil {
			return 0, nil, err
		}
		if int64(dir[i].catalog) <= prevCat {
			return 0, nil, fmt.Errorf("%w: segment tracks out of catalog order", ErrCorrupt)
		}
		if dir[i].nPoints == 0 {
			return 0, nil, fmt.Errorf("%w: segment track %d is empty", ErrCorrupt, dir[i].catalog)
		}
		prevCat = int64(dir[i].catalog)
		total += int64(dir[i].nPoints)
	}
	if err := dp.done(); err != nil {
		return 0, nil, err
	}
	if total != nPoints {
		return 0, nil, fmt.Errorf("%w: segment directory sums to %d points, meta claims %d", ErrCorrupt, total, nPoints)
	}

	epochs, err := readI64Col(sr, 2, int(nPoints))
	if err != nil {
		return 0, nil, err
	}
	alts, err := readF32Col(sr, 3, int(nPoints))
	if err != nil {
		return 0, nil, err
	}
	bstars, err := readF32Col(sr, 4, int(nPoints))
	if err != nil {
		return 0, nil, err
	}
	incls, err := readF32Col(sr, 5, int(nPoints))
	if err != nil {
		return 0, nil, err
	}
	rawPayload, err := sr.section(6)
	if err != nil {
		return 0, nil, err
	}
	if p.RawAlts, err = unpackF64(rawPayload); err != nil {
		return 0, nil, err
	}
	if len(p.RawAlts) != int(nRaw) {
		return 0, nil, fmt.Errorf("%w: segment raw-altitude column disagrees with meta", ErrCorrupt)
	}
	if !segmentRawAltsCanonical(p.RawAlts) {
		return 0, nil, fmt.Errorf("%w: segment raw altitudes not in canonical order", ErrCorrupt)
	}
	if err := sr.closeTrailer(); err != nil {
		return 0, nil, err
	}

	points := make([]core.TrackPoint, nPoints)
	for i := range points {
		points[i] = core.TrackPoint{Epoch: epochs[i], AltKm: alts[i], BStar: bstars[i], Incl: incls[i]}
	}
	p.Tracks = make([]*core.Track, nTracks)
	off := 0
	for i, de := range dir {
		p.Tracks[i] = &core.Track{
			Catalog:          int(de.catalog),
			Points:           points[off : off+int(de.nPoints) : off+int(de.nPoints)],
			OperationalAltKm: de.opAlt,
			RaisingRemoved:   int(de.raisingRemoved),
		}
		off += int(de.nPoints)
	}
	return int(chunk), p, nil
}

// segmentRawAltsCanonical mirrors core's canonical raw-altitude order check
// (IEEE total order, ascending) for the decoder's fail-closed validation.
func segmentRawAltsCanonical(alts []float64) bool {
	key := func(v float64) uint64 {
		b := math.Float64bits(v)
		if b>>63 == 1 {
			return ^b
		}
		return b | 1<<63
	}
	for i := 1; i < len(alts); i++ {
		if key(alts[i-1]) > key(alts[i]) {
			return false
		}
	}
	return true
}
