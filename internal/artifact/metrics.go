package artifact

import (
	"io"

	"cosmicdance/internal/obs"
)

// Cache telemetry: per-kind hit/miss/evict counters plus byte and
// fingerprint totals. All writes are atomic counter increments on coarse
// events (one per cache operation), so the cache's hot path — the decode
// itself — is untouched.
var (
	metricHits         = newKindCounters("artifact_cache_hits_total")
	metricMisses       = newKindCounters("artifact_cache_misses_total")
	metricEvictions    = newKindCounters("artifact_cache_corrupt_evictions_total")
	metricOtherKinds   = obs.Default().Counter("artifact_cache_other_total")
	metricStoreFails   = obs.Default().Counter("artifact_cache_store_failures_total")
	metricBytesRead    = obs.Default().Counter("artifact_cache_read_bytes_total")
	metricBytesWritten = obs.Default().Counter("artifact_cache_written_bytes_total")
	metricFingerprints = obs.Default().Counter("artifact_fingerprints_total")
)

// newKindCounters registers one counter per snapshot kind.
func newKindCounters(name string) map[Kind]*obs.Counter {
	m := make(map[Kind]*obs.Counter, 4)
	for _, k := range []Kind{KindWeather, KindArchive, KindDataset, KindSegment} {
		m[k] = obs.Default().Counter(name, "kind", k.String())
	}
	return m
}

// countKind increments the per-kind counter. A kind outside the built-in
// set folds into the pre-registered catch-all — registration happens only
// at package init, never on a cache operation.
func countKind(m map[Kind]*obs.Counter, k Kind) {
	if c, ok := m[k]; ok {
		c.Inc()
		return
	}
	metricOtherKinds.Inc()
}

// countingReader counts bytes pulled through it.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// countingWriter counts bytes pushed through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
