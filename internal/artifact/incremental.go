package artifact

import (
	"fmt"
	"io"
	"time"

	"cosmicdance/internal/incremental"
	"cosmicdance/internal/trigger"
	"cosmicdance/internal/units"
)

// --- incremental engine state (incremental.EngineState) ---
//
// Sections: 0 = meta (weather start, funnel counters, stream cursors, the
// trigger machine position), 1 = hourly Dst column, 2 = raw-altitude column,
// 3/4 = catalog + history-length columns, 5..8 = the concatenated
// per-catalog histories (epoch, altitude, B*, inclination).
//
// Only raw streams are packed: the snapshot stores what was ingested, and
// DecodeEngineState re-derives everything else through incremental.FromState,
// so a snapshot can never carry analysis that disagrees with its data.

// EncodeEngineState writes a live-engine snapshot.
func EncodeEngineState(w io.Writer, st *incremental.EngineState) error {
	sw := newSectionWriter(w, KindIncremental)

	var meta recordBuf
	meta.i64(st.WxStart)
	meta.i64(int64(st.TotalObservations))
	meta.i64(int64(st.GrossErrors))
	meta.i64(int64(st.Duplicates))
	meta.i64(int64(st.Seq))
	meta.i64(int64(st.Version))
	meta.u32(boolU32(st.Trigger.Active))
	meta.f64(float64(st.Trigger.Peak))
	meta.i64(int64(st.Trigger.Category))
	meta.i64(st.Trigger.ClearedAt.Unix())
	meta.u32(boolU32(st.Trigger.HasCleared))
	sw.section(0, meta.buf)

	sw.section(1, packF64(st.Wx))
	sw.section(2, packF64(st.RawAlts))
	sw.section(3, packI64(intsToI64(st.Cats)))
	sw.section(4, packI64(intsToI64(st.ObsCounts)))
	sw.section(5, packI64(st.Epochs))
	sw.section(6, packF64(st.Alts))
	sw.section(7, packF64(st.BStars))
	sw.section(8, packF64(st.Incls))
	return sw.close()
}

// DecodeEngineState reads a live-engine snapshot, failing closed on any
// damage. The caller hands the result to incremental.FromState, which
// enforces the cross-column invariants (history lengths, epoch order, the
// cleaning-funnel identity) and fails closed in turn.
func DecodeEngineState(r io.Reader) (*incremental.EngineState, error) {
	sr, err := newSectionReader(r, KindIncremental)
	if err != nil {
		return nil, err
	}
	meta, err := sr.section(0)
	if err != nil {
		return nil, err
	}
	p := &recordParser{buf: meta}
	st := &incremental.EngineState{}
	var total, gross, dups, seq, version int64
	var trigActive, trigCleared uint32
	var trigPeak float64
	var trigCategory, trigClearedAt int64
	fields := []struct {
		i64 *int64
		u32 *uint32
		f64 *float64
	}{
		{i64: &st.WxStart},
		{i64: &total},
		{i64: &gross},
		{i64: &dups},
		{i64: &seq},
		{i64: &version},
		{u32: &trigActive},
		{f64: &trigPeak},
		{i64: &trigCategory},
		{i64: &trigClearedAt},
		{u32: &trigCleared},
	}
	for _, f := range fields {
		switch {
		case f.i64 != nil:
			*f.i64, err = p.i64()
		case f.u32 != nil:
			*f.u32, err = p.u32()
		default:
			*f.f64, err = p.f64()
		}
		if err != nil {
			return nil, err
		}
	}
	if err := p.done(); err != nil {
		return nil, err
	}
	if total < 0 || gross < 0 || dups < 0 {
		return nil, fmt.Errorf("%w: negative funnel counter in engine state", ErrCorrupt)
	}
	st.TotalObservations = int(total)
	st.GrossErrors = int(gross)
	st.Duplicates = int(dups)
	st.Seq = uint64(seq)
	st.Version = uint64(version)
	st.Trigger = trigger.State{
		Active:     trigActive != 0,
		Peak:       units.NanoTesla(trigPeak),
		Category:   units.GScale(trigCategory),
		ClearedAt:  time.Unix(trigClearedAt, 0).UTC(),
		HasCleared: trigCleared != 0,
	}

	if st.Wx, err = readF64Section(sr, 1); err != nil {
		return nil, err
	}
	if st.RawAlts, err = readF64Section(sr, 2); err != nil {
		return nil, err
	}
	cats, err := readI64Section(sr, 3)
	if err != nil {
		return nil, err
	}
	counts, err := readI64Section(sr, 4)
	if err != nil {
		return nil, err
	}
	st.Cats = i64ToInts(cats)
	st.ObsCounts = i64ToInts(counts)
	if st.Epochs, err = readI64Section(sr, 5); err != nil {
		return nil, err
	}
	if st.Alts, err = readF64Section(sr, 6); err != nil {
		return nil, err
	}
	if st.BStars, err = readF64Section(sr, 7); err != nil {
		return nil, err
	}
	if st.Incls, err = readF64Section(sr, 8); err != nil {
		return nil, err
	}
	if err := sr.closeTrailer(); err != nil {
		return nil, err
	}
	return st, nil
}

func readF64Section(sr *sectionReader, id uint32) ([]float64, error) {
	payload, err := sr.section(id)
	if err != nil {
		return nil, err
	}
	return unpackF64(payload)
}

func readI64Section(sr *sectionReader, id uint32) ([]int64, error) {
	payload, err := sr.section(id)
	if err != nil {
		return nil, err
	}
	return unpackI64(payload)
}

func boolU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func intsToI64(vals []int) []int64 {
	out := make([]int64, len(vals))
	for i, v := range vals {
		out[i] = int64(v)
	}
	return out
}

func i64ToInts(vals []int64) []int {
	out := make([]int, len(vals))
	for i, v := range vals {
		out[i] = int(v)
	}
	return out
}
