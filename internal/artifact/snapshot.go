package artifact

import (
	"fmt"
	"io"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
	"cosmicdance/internal/dst"
)

// --- weather (dst.Index) ---
//
// Sections: 0 = meta (start, length), 1 = hourly readings as a float64-bits
// column.

// EncodeWeather writes an hourly Dst series snapshot.
func EncodeWeather(w io.Writer, x *dst.Index) error {
	sw := newSectionWriter(w, KindWeather)
	var meta recordBuf
	meta.i64(x.Start().Unix())
	meta.u32(uint32(x.Len()))
	sw.section(0, meta.buf)
	sw.section(1, packF64(x.Hourly().Values()))
	return sw.close()
}

// DecodeWeather reads a weather snapshot, failing closed on any damage.
func DecodeWeather(r io.Reader) (*dst.Index, error) {
	sr, err := newSectionReader(r, KindWeather)
	if err != nil {
		return nil, err
	}
	meta, err := sr.section(0)
	if err != nil {
		return nil, err
	}
	p := &recordParser{buf: meta}
	startUnix, err := p.i64()
	if err != nil {
		return nil, err
	}
	n, err := p.u32()
	if err != nil {
		return nil, err
	}
	if err := p.done(); err != nil {
		return nil, err
	}
	col, err := sr.section(1)
	if err != nil {
		return nil, err
	}
	values, err := unpackF64(col)
	if err != nil {
		return nil, err
	}
	if len(values) != int(n) {
		return nil, fmt.Errorf("%w: weather claims %d hours, column has %d", ErrCorrupt, n, len(values))
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("%w: empty weather series", ErrCorrupt)
	}
	if err := sr.closeTrailer(); err != nil {
		return nil, err
	}
	return dst.FromValues(time.Unix(startUnix, 0).UTC(), values), nil
}

// --- archive (constellation.Result) ---
//
// Sections: 0 = meta, 1 = per-satellite ground-truth table, 2..10 = one
// column per Sample field (catalog, epoch, then the seven float32 elements).

// EncodeArchive writes a constellation-run snapshot.
func EncodeArchive(w io.Writer, res *constellation.Result) error {
	sw := newSectionWriter(w, KindArchive)

	var meta recordBuf
	meta.i64(res.Start.Unix())
	meta.u32(uint32(res.Hours))
	meta.u32(uint32(len(res.Sats)))
	meta.i64(int64(len(res.Samples)))
	sw.section(0, meta.buf)

	var sats recordBuf
	for i := range res.Sats {
		s := &res.Sats[i]
		sats.u32(uint32(s.Catalog))
		sats.str(s.Name)
		sats.u32(uint32(s.Shell))
		// Launch times carry sub-second jitter (the initial fleet is spread
		// across its anchor window at nanosecond precision), so seconds alone
		// would not round-trip bit-exactly.
		sats.i64(s.LaunchedAt.Unix())
		sats.u32(uint32(s.LaunchedAt.Nanosecond()))
		sats.f64(s.StagingAltKm)
		sats.f64(s.TargetAltKm)
		sats.f64(s.DragFactor)
		sats.u32(uint32(s.Fate))
		if s.FateAt.IsZero() {
			sats.u32(0)
			sats.i64(0)
			sats.u32(0)
		} else {
			sats.u32(1)
			sats.i64(s.FateAt.Unix())
			sats.u32(uint32(s.FateAt.Nanosecond()))
		}
	}
	sw.section(1, sats.buf)

	n := len(res.Samples)
	cats := make([]int32, n)
	epochs := make([]int64, n)
	cols := [7][]float32{}
	for k := range cols {
		cols[k] = make([]float32, n)
	}
	for i := range res.Samples {
		s := &res.Samples[i]
		cats[i] = s.Catalog
		epochs[i] = s.Epoch
		cols[0][i] = s.AltKm
		cols[1][i] = s.BStar
		cols[2][i] = s.Inclination
		cols[3][i] = s.RAAN
		cols[4][i] = s.Eccentricity
		cols[5][i] = s.ArgPerigee
		cols[6][i] = s.MeanAnomaly
	}
	sw.section(2, packI32(cats))
	sw.section(3, packI64(epochs))
	for k := range cols {
		sw.section(uint32(4+k), packF32(cols[k]))
	}
	return sw.close()
}

// DecodeArchive reads an archive snapshot, failing closed on any damage.
func DecodeArchive(r io.Reader) (*constellation.Result, error) {
	sr, err := newSectionReader(r, KindArchive)
	if err != nil {
		return nil, err
	}
	meta, err := sr.section(0)
	if err != nil {
		return nil, err
	}
	p := &recordParser{buf: meta}
	startUnix, err := p.i64()
	if err != nil {
		return nil, err
	}
	hours, err := p.u32()
	if err != nil {
		return nil, err
	}
	nSats, err := p.u32()
	if err != nil {
		return nil, err
	}
	nSamples, err := p.i64()
	if err != nil {
		return nil, err
	}
	if err := p.done(); err != nil {
		return nil, err
	}
	if nSats > 1<<24 || nSamples < 0 || nSamples > 1<<31 {
		return nil, fmt.Errorf("%w: archive claims %d satellites, %d samples", ErrCorrupt, nSats, nSamples)
	}
	res := &constellation.Result{Start: time.Unix(startUnix, 0).UTC(), Hours: int(hours)}

	satsPayload, err := sr.section(1)
	if err != nil {
		return nil, err
	}
	sp := &recordParser{buf: satsPayload}
	res.Sats = make([]constellation.SatInfo, nSats)
	for i := range res.Sats {
		s := &res.Sats[i]
		var cat, shell, launchedNs, fate, hasFate, fateAtNs uint32
		var launched, fateAt int64
		if cat, err = sp.u32(); err != nil {
			return nil, err
		}
		if s.Name, err = sp.str(); err != nil {
			return nil, err
		}
		if shell, err = sp.u32(); err != nil {
			return nil, err
		}
		if launched, err = sp.i64(); err != nil {
			return nil, err
		}
		if launchedNs, err = sp.u32(); err != nil {
			return nil, err
		}
		if s.StagingAltKm, err = sp.f64(); err != nil {
			return nil, err
		}
		if s.TargetAltKm, err = sp.f64(); err != nil {
			return nil, err
		}
		if s.DragFactor, err = sp.f64(); err != nil {
			return nil, err
		}
		if fate, err = sp.u32(); err != nil {
			return nil, err
		}
		if hasFate, err = sp.u32(); err != nil {
			return nil, err
		}
		if fateAt, err = sp.i64(); err != nil {
			return nil, err
		}
		if fateAtNs, err = sp.u32(); err != nil {
			return nil, err
		}
		if launchedNs >= 1e9 || fateAtNs >= 1e9 {
			return nil, fmt.Errorf("%w: satellite timestamp nanoseconds out of range", ErrCorrupt)
		}
		// Strict canonical form: the fate flag is 0 or 1, and an absent fate
		// has zeroed timestamp fields. Anything else would decode to a value
		// that re-encodes differently, breaking bit-identity.
		if hasFate > 1 || (hasFate == 0 && (fateAt != 0 || fateAtNs != 0)) {
			return nil, fmt.Errorf("%w: non-canonical satellite fate record", ErrCorrupt)
		}
		s.Catalog = int(cat)
		s.Shell = int(shell)
		s.LaunchedAt = time.Unix(launched, int64(launchedNs)).UTC()
		s.Fate = constellation.Phase(fate)
		if hasFate != 0 {
			s.FateAt = time.Unix(fateAt, int64(fateAtNs)).UTC()
		}
	}
	if err := sp.done(); err != nil {
		return nil, err
	}

	catCol, err := readI32Col(sr, 2, int(nSamples))
	if err != nil {
		return nil, err
	}
	epochCol, err := readI64Col(sr, 3, int(nSamples))
	if err != nil {
		return nil, err
	}
	var cols [7][]float32
	for k := range cols {
		if cols[k], err = readF32Col(sr, uint32(4+k), int(nSamples)); err != nil {
			return nil, err
		}
	}
	if err := sr.closeTrailer(); err != nil {
		return nil, err
	}
	res.Samples = make([]constellation.Sample, nSamples)
	for i := range res.Samples {
		res.Samples[i] = constellation.Sample{
			Catalog:      catCol[i],
			Epoch:        epochCol[i],
			AltKm:        cols[0][i],
			BStar:        cols[1][i],
			Inclination:  cols[2][i],
			RAAN:         cols[3][i],
			Eccentricity: cols[4][i],
			ArgPerigee:   cols[5][i],
			MeanAnomaly:  cols[6][i],
		}
	}
	return res, nil
}

// --- dataset (core.Dataset) ---
//
// The snapshot is self-contained: the weather series rides along (sections
// 1), so a decoded dataset needs nothing but the pipeline Config — which the
// cache key pins to the one that built it.
//
// Sections: 0 = meta, 1 = weather readings, 2 = track directory, 3..6 = one
// column per TrackPoint field over all tracks concatenated, 7 = raw
// altitudes, 8 = cleaned altitudes.

// EncodeDataset writes a built-dataset snapshot.
func EncodeDataset(w io.Writer, d *core.Dataset) error {
	sw := newSectionWriter(w, KindDataset)
	st := d.State()
	weather := d.Weather()

	nPoints := 0
	for _, tr := range st.Tracks {
		nPoints += len(tr.Points)
	}

	var meta recordBuf
	meta.i64(weather.Start().Unix())
	meta.u32(uint32(weather.Len()))
	meta.u32(uint32(len(st.Tracks)))
	meta.i64(int64(nPoints))
	meta.i64(int64(len(st.RawAlts)))
	meta.i64(int64(len(st.CleanAlts)))
	meta.i64(int64(st.Stats.TotalObservations))
	meta.i64(int64(st.Stats.GrossErrors))
	meta.i64(int64(st.Stats.RaisingRemoved))
	meta.i64(int64(st.Stats.NonOperational))
	meta.i64(int64(st.Stats.Duplicates))
	sw.section(0, meta.buf)

	sw.section(1, packF64(weather.Hourly().Values()))

	var dir recordBuf
	for _, tr := range st.Tracks {
		dir.u32(uint32(tr.Catalog))
		dir.u32(uint32(len(tr.Points)))
		dir.f64(tr.OperationalAltKm)
		dir.u32(uint32(tr.RaisingRemoved))
	}
	sw.section(2, dir.buf)

	epochs := make([]int64, nPoints)
	alts := make([]float32, nPoints)
	bstars := make([]float32, nPoints)
	incls := make([]float32, nPoints)
	i := 0
	for _, tr := range st.Tracks {
		for _, pt := range tr.Points {
			epochs[i] = pt.Epoch
			alts[i] = pt.AltKm
			bstars[i] = pt.BStar
			incls[i] = pt.Incl
			i++
		}
	}
	sw.section(3, packI64(epochs))
	sw.section(4, packF32(alts))
	sw.section(5, packF32(bstars))
	sw.section(6, packF32(incls))
	sw.section(7, packF64(st.RawAlts))
	sw.section(8, packF64(st.CleanAlts))
	return sw.close()
}

// DecodeDataset reads a dataset snapshot and reassembles it under the given
// pipeline parameters (the runtime Parallelism knob rides on cfg, never on
// the snapshot). It fails closed on any damage.
func DecodeDataset(r io.Reader, cfg core.Config) (*core.Dataset, error) {
	sr, err := newSectionReader(r, KindDataset)
	if err != nil {
		return nil, err
	}
	meta, err := sr.section(0)
	if err != nil {
		return nil, err
	}
	p := &recordParser{buf: meta}
	startUnix, err := p.i64()
	if err != nil {
		return nil, err
	}
	nHours, err := p.u32()
	if err != nil {
		return nil, err
	}
	nTracks, err := p.u32()
	if err != nil {
		return nil, err
	}
	var counts [3]int64 // points, raw, clean
	for k := range counts {
		if counts[k], err = p.i64(); err != nil {
			return nil, err
		}
	}
	var st core.DatasetState
	var statFields [5]int64
	for k := range statFields {
		if statFields[k], err = p.i64(); err != nil {
			return nil, err
		}
	}
	if err := p.done(); err != nil {
		return nil, err
	}
	nPoints := counts[0]
	if nTracks > 1<<24 || nPoints < 0 || nPoints > 1<<31 || counts[1] < 0 || counts[2] < 0 {
		return nil, fmt.Errorf("%w: dataset claims %d tracks, %d points", ErrCorrupt, nTracks, nPoints)
	}
	st.Stats = core.CleaningStats{
		TotalObservations: int(statFields[0]),
		GrossErrors:       int(statFields[1]),
		RaisingRemoved:    int(statFields[2]),
		NonOperational:    int(statFields[3]),
		Duplicates:        int(statFields[4]),
	}

	weatherCol, err := sr.section(1)
	if err != nil {
		return nil, err
	}
	values, err := unpackF64(weatherCol)
	if err != nil {
		return nil, err
	}
	if len(values) != int(nHours) || len(values) == 0 {
		return nil, fmt.Errorf("%w: dataset weather claims %d hours, column has %d", ErrCorrupt, nHours, len(values))
	}
	weather := dst.FromValues(time.Unix(startUnix, 0).UTC(), values)

	dirPayload, err := sr.section(2)
	if err != nil {
		return nil, err
	}
	dp := &recordParser{buf: dirPayload}
	type dirEntry struct {
		catalog, nPoints, raisingRemoved uint32
		opAlt                            float64
	}
	dir := make([]dirEntry, nTracks)
	total := int64(0)
	for i := range dir {
		if dir[i].catalog, err = dp.u32(); err != nil {
			return nil, err
		}
		if dir[i].nPoints, err = dp.u32(); err != nil {
			return nil, err
		}
		if dir[i].opAlt, err = dp.f64(); err != nil {
			return nil, err
		}
		if dir[i].raisingRemoved, err = dp.u32(); err != nil {
			return nil, err
		}
		total += int64(dir[i].nPoints)
	}
	if err := dp.done(); err != nil {
		return nil, err
	}
	if total != nPoints {
		return nil, fmt.Errorf("%w: track directory sums to %d points, meta claims %d", ErrCorrupt, total, nPoints)
	}

	epochs, err := readI64Col(sr, 3, int(nPoints))
	if err != nil {
		return nil, err
	}
	alts, err := readF32Col(sr, 4, int(nPoints))
	if err != nil {
		return nil, err
	}
	bstars, err := readF32Col(sr, 5, int(nPoints))
	if err != nil {
		return nil, err
	}
	incls, err := readF32Col(sr, 6, int(nPoints))
	if err != nil {
		return nil, err
	}
	rawPayload, err := sr.section(7)
	if err != nil {
		return nil, err
	}
	if st.RawAlts, err = unpackF64(rawPayload); err != nil {
		return nil, err
	}
	cleanPayload, err := sr.section(8)
	if err != nil {
		return nil, err
	}
	if st.CleanAlts, err = unpackF64(cleanPayload); err != nil {
		return nil, err
	}
	if len(st.RawAlts) != int(counts[1]) || len(st.CleanAlts) != int(counts[2]) {
		return nil, fmt.Errorf("%w: altitude columns disagree with meta", ErrCorrupt)
	}
	if err := sr.closeTrailer(); err != nil {
		return nil, err
	}

	// One flat point arena, sliced per track — a single allocation for the
	// whole history, exactly like a fresh Build's per-track slices except
	// contiguous.
	points := make([]core.TrackPoint, nPoints)
	for i := range points {
		points[i] = core.TrackPoint{Epoch: epochs[i], AltKm: alts[i], BStar: bstars[i], Incl: incls[i]}
	}
	st.Tracks = make([]*core.Track, nTracks)
	off := 0
	for i, de := range dir {
		st.Tracks[i] = &core.Track{
			Catalog:          int(de.catalog),
			Points:           points[off : off+int(de.nPoints) : off+int(de.nPoints)],
			OperationalAltKm: de.opAlt,
			RaisingRemoved:   int(de.raisingRemoved),
		}
		off += int(de.nPoints)
	}
	return core.DatasetFromState(cfg, weather, st)
}

// --- shared column readers ---

func readI32Col(sr *sectionReader, id uint32, want int) ([]int32, error) {
	payload, err := sr.section(id)
	if err != nil {
		return nil, err
	}
	col, err := unpackI32(payload)
	if err != nil {
		return nil, err
	}
	if len(col) != want {
		return nil, fmt.Errorf("%w: section %d has %d values, want %d", ErrCorrupt, id, len(col), want)
	}
	return col, nil
}

func readI64Col(sr *sectionReader, id uint32, want int) ([]int64, error) {
	payload, err := sr.section(id)
	if err != nil {
		return nil, err
	}
	col, err := unpackI64(payload)
	if err != nil {
		return nil, err
	}
	if len(col) != want {
		return nil, fmt.Errorf("%w: section %d has %d values, want %d", ErrCorrupt, id, len(col), want)
	}
	return col, nil
}

func readF32Col(sr *sectionReader, id uint32, want int) ([]float32, error) {
	payload, err := sr.section(id)
	if err != nil {
		return nil, err
	}
	col, err := unpackF32(payload)
	if err != nil {
		return nil, err
	}
	if len(col) != want {
		return nil, fmt.Errorf("%w: section %d has %d values, want %d", ErrCorrupt, id, len(col), want)
	}
	return col, nil
}
