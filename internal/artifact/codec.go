package artifact

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Container framing constants.
const (
	containerMagic   uint32 = 0x43444153 // "CDAS"
	containerVersion uint16 = 1
	trailerMagic     uint32 = 0x53414443 // "SADC"

	// maxSectionBytes bounds a single section so a corrupt length prefix
	// cannot drive a multi-gigabyte allocation. The largest real section is
	// a float64 column over a paper-scale archive (~3 M observations).
	maxSectionBytes = 1 << 31
)

// sectionWriter streams a snapshot: header, then length-prefixed
// CRC32-guarded sections, then the trailer. All integers are little-endian.
type sectionWriter struct {
	bw   *bufio.Writer
	err  error
	tmp  [8]byte
	next uint32 // next expected section id, for fixed-order enforcement
}

func newSectionWriter(w io.Writer, kind Kind) *sectionWriter {
	sw := &sectionWriter{bw: bufio.NewWriterSize(w, 1<<16)}
	sw.putU32(containerMagic)
	sw.putU16(containerVersion)
	sw.putU16(uint16(kind))
	sw.putU32(SchemaVersion)
	return sw
}

func (sw *sectionWriter) putU16(v uint16) {
	if sw.err != nil {
		return
	}
	binary.LittleEndian.PutUint16(sw.tmp[:2], v)
	_, sw.err = sw.bw.Write(sw.tmp[:2])
}

func (sw *sectionWriter) putU32(v uint32) {
	if sw.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(sw.tmp[:4], v)
	_, sw.err = sw.bw.Write(sw.tmp[:4])
}

// section writes one complete section: id, payload length, payload, CRC.
func (sw *sectionWriter) section(id uint32, payload []byte) {
	if sw.err != nil {
		return
	}
	if id != sw.next {
		sw.err = fmt.Errorf("artifact: internal error: section %d written out of order (want %d)", id, sw.next)
		return
	}
	sw.next++
	sw.putU32(id)
	if sw.err == nil {
		binary.LittleEndian.PutUint64(sw.tmp[:8], uint64(len(payload)))
		_, sw.err = sw.bw.Write(sw.tmp[:8])
	}
	if sw.err == nil {
		_, sw.err = sw.bw.Write(payload)
	}
	sw.putU32(crc32.ChecksumIEEE(payload))
}

// close writes the trailer and flushes. It returns the first error seen.
func (sw *sectionWriter) close() error {
	sw.putU32(trailerMagic)
	if sw.err != nil {
		return sw.err
	}
	return sw.bw.Flush()
}

// sectionReader decodes the framing written by sectionWriter, failing closed
// on any deviation: wrong magic, version skew, out-of-order sections, length
// overruns, CRC mismatches, or trailing garbage.
type sectionReader struct {
	br   *bufio.Reader
	tmp  [8]byte
	next uint32
}

// newSectionReader validates the header and checks the kind and versions.
func newSectionReader(r io.Reader, kind Kind) (*sectionReader, error) {
	sr := &sectionReader{br: bufio.NewReaderSize(r, 1<<16)}
	magic, err := sr.u32()
	if err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrCorrupt, err)
	}
	if magic != containerMagic {
		return nil, fmt.Errorf("%w: not a CDAS snapshot (magic %#x)", ErrCorrupt, magic)
	}
	version, err := sr.u16()
	if err != nil {
		return nil, fmt.Errorf("%w: reading container version: %v", ErrCorrupt, err)
	}
	if version != containerVersion {
		return nil, fmt.Errorf("%w: container version %d (have %d)", ErrVersionSkew, version, containerVersion)
	}
	k, err := sr.u16()
	if err != nil {
		return nil, fmt.Errorf("%w: reading kind: %v", ErrCorrupt, err)
	}
	if Kind(k) != kind {
		return nil, fmt.Errorf("%w: snapshot kind %s, want %s", ErrCorrupt, Kind(k), kind)
	}
	schema, err := sr.u32()
	if err != nil {
		return nil, fmt.Errorf("%w: reading schema version: %v", ErrCorrupt, err)
	}
	if schema != SchemaVersion {
		return nil, fmt.Errorf("%w: schema version %d (have %d)", ErrVersionSkew, schema, SchemaVersion)
	}
	return sr, nil
}

func (sr *sectionReader) u16() (uint16, error) {
	if _, err := io.ReadFull(sr.br, sr.tmp[:2]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(sr.tmp[:2]), nil
}

func (sr *sectionReader) u32() (uint32, error) {
	if _, err := io.ReadFull(sr.br, sr.tmp[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(sr.tmp[:4]), nil
}

func (sr *sectionReader) u64() (uint64, error) {
	if _, err := io.ReadFull(sr.br, sr.tmp[:8]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(sr.tmp[:8]), nil
}

// section reads the next section, which must carry the expected id, and
// returns its CRC-verified payload.
func (sr *sectionReader) section(id uint32) ([]byte, error) {
	got, err := sr.u32()
	if err != nil {
		return nil, fmt.Errorf("%w: reading section id: %v", ErrCorrupt, err)
	}
	if got != id || got != sr.next {
		return nil, fmt.Errorf("%w: section id %d, want %d", ErrCorrupt, got, id)
	}
	sr.next++
	n, err := sr.u64()
	if err != nil {
		return nil, fmt.Errorf("%w: reading section %d length: %v", ErrCorrupt, id, err)
	}
	if n > maxSectionBytes {
		return nil, fmt.Errorf("%w: section %d claims %d bytes", ErrCorrupt, id, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(sr.br, payload); err != nil {
		return nil, fmt.Errorf("%w: section %d truncated: %v", ErrCorrupt, id, err)
	}
	sum, err := sr.u32()
	if err != nil {
		return nil, fmt.Errorf("%w: reading section %d checksum: %v", ErrCorrupt, id, err)
	}
	if sum != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("%w: section %d checksum mismatch", ErrCorrupt, id)
	}
	return payload, nil
}

// closeTrailer consumes the trailer and requires clean EOF after it.
func (sr *sectionReader) closeTrailer() error {
	magic, err := sr.u32()
	if err != nil {
		return fmt.Errorf("%w: reading trailer: %v", ErrCorrupt, err)
	}
	if magic != trailerMagic {
		return fmt.Errorf("%w: bad trailer magic %#x", ErrCorrupt, magic)
	}
	if _, err := sr.br.ReadByte(); err != io.EOF {
		return fmt.Errorf("%w: trailing garbage after snapshot", ErrCorrupt)
	}
	return nil
}

// --- column packing helpers ---
//
// Each helper packs one typed column into (or out of) a payload buffer. The
// encoders write into a preallocated byte slice with direct PutUintNN calls:
// no reflection, no per-element interface boxing, one allocation per column.

func packI64(vals []int64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	return buf
}

func unpackI64(payload []byte) ([]int64, error) {
	if len(payload)%8 != 0 {
		return nil, fmt.Errorf("%w: int64 column of %d bytes", ErrCorrupt, len(payload))
	}
	out := make([]int64, len(payload)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return out, nil
}

func packI32(vals []int32) []byte {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return buf
}

func unpackI32(payload []byte) ([]int32, error) {
	if len(payload)%4 != 0 {
		return nil, fmt.Errorf("%w: int32 column of %d bytes", ErrCorrupt, len(payload))
	}
	out := make([]int32, len(payload)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return out, nil
}

// packF32 stores float32 bit patterns, so the round trip is exact for every
// value including NaN payloads.
func packF32(vals []float32) []byte {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return buf
}

func unpackF32(payload []byte) ([]float32, error) {
	if len(payload)%4 != 0 {
		return nil, fmt.Errorf("%w: float32 column of %d bytes", ErrCorrupt, len(payload))
	}
	out := make([]float32, len(payload)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return out, nil
}

// packF64 stores float64 bit patterns — bit-exact, never a text round trip.
func packF64(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

func unpackF64(payload []byte) ([]float64, error) {
	if len(payload)%8 != 0 {
		return nil, fmt.Errorf("%w: float64 column of %d bytes", ErrCorrupt, len(payload))
	}
	out := make([]float64, len(payload)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return out, nil
}

// recordBuf accumulates a small heterogeneous section (run metadata, config
// blocks, string tables) field by field in a fixed order.
type recordBuf struct {
	buf []byte
	tmp [8]byte
}

func (b *recordBuf) u32(v uint32) {
	binary.LittleEndian.PutUint32(b.tmp[:4], v)
	b.buf = append(b.buf, b.tmp[:4]...)
}

func (b *recordBuf) i64(v int64) {
	binary.LittleEndian.PutUint64(b.tmp[:8], uint64(v))
	b.buf = append(b.buf, b.tmp[:8]...)
}

func (b *recordBuf) f64(v float64) {
	binary.LittleEndian.PutUint64(b.tmp[:8], math.Float64bits(v))
	b.buf = append(b.buf, b.tmp[:8]...)
}

func (b *recordBuf) str(s string) {
	b.u32(uint32(len(s)))
	b.buf = append(b.buf, s...)
}

// recordParser is the matching fixed-order reader.
type recordParser struct {
	buf []byte
	off int
}

func (p *recordParser) u32() (uint32, error) {
	if p.off+4 > len(p.buf) {
		return 0, fmt.Errorf("%w: record truncated", ErrCorrupt)
	}
	v := binary.LittleEndian.Uint32(p.buf[p.off:])
	p.off += 4
	return v, nil
}

func (p *recordParser) i64() (int64, error) {
	if p.off+8 > len(p.buf) {
		return 0, fmt.Errorf("%w: record truncated", ErrCorrupt)
	}
	v := int64(binary.LittleEndian.Uint64(p.buf[p.off:]))
	p.off += 8
	return v, nil
}

func (p *recordParser) f64() (float64, error) {
	if p.off+8 > len(p.buf) {
		return 0, fmt.Errorf("%w: record truncated", ErrCorrupt)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(p.buf[p.off:]))
	p.off += 8
	return v, nil
}

func (p *recordParser) str() (string, error) {
	n, err := p.u32()
	if err != nil {
		return "", err
	}
	if int(n) > len(p.buf)-p.off {
		return "", fmt.Errorf("%w: string of %d bytes overruns record", ErrCorrupt, n)
	}
	s := string(p.buf[p.off : p.off+int(n)])
	p.off += int(n)
	return s, nil
}

// done requires the record to be fully consumed.
func (p *recordParser) done() error {
	if p.off != len(p.buf) {
		return fmt.Errorf("%w: %d unconsumed record bytes", ErrCorrupt, len(p.buf)-p.off)
	}
	return nil
}
