package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
	"cosmicdance/internal/spaceweather"
)

// Fingerprint is the content address of an artifact: a SHA-256 over a
// canonical, fixed-order serialization of every input that can change the
// artifact's bytes — and nothing else. Parallelism knobs are deliberately
// excluded: the pipeline is bit-identical at every worker count, so two runs
// that differ only in workers share one cache entry.
type Fingerprint [sha256.Size]byte

// String returns the lowercase hex form used in cache file names.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// hasher feeds fields into SHA-256 in a fixed order with fixed-width
// encodings, so the digest depends only on the values, never on struct
// layout, map order, or platform.
type hasher struct {
	h   hash.Hash
	buf [8]byte
}

func newHasher(domain string) *hasher {
	h := &hasher{h: sha256.New()}
	h.str(domain)
	h.u64(SchemaVersion)
	return h
}

func (h *hasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(h.buf[:], v)
	h.h.Write(h.buf[:])
}

func (h *hasher) i64(v int64)   { h.u64(uint64(v)) }
func (h *hasher) f64(v float64) { h.u64(math.Float64bits(v)) }
func (h *hasher) t(v time.Time) { h.i64(v.Unix()) }
func (h *hasher) b(v bool) {
	if v {
		h.u64(1)
	} else {
		h.u64(0)
	}
}
func (h *hasher) fp(f Fingerprint) { h.h.Write(f[:]) }

func (h *hasher) str(s string) {
	h.u64(uint64(len(s)))
	h.h.Write([]byte(s))
}

func (h *hasher) sum() Fingerprint {
	var f Fingerprint
	h.h.Sum(f[:0])
	metricFingerprints.Inc()
	return f
}

// FingerprintWeather names a spaceweather generation run: every field of the
// config, including the scripted storms and overrides, in declaration order.
func FingerprintWeather(cfg spaceweather.Config) Fingerprint {
	h := newHasher("weather")
	h.t(cfg.Start)
	h.i64(int64(cfg.Hours))
	h.i64(cfg.Seed)
	h.f64(cfg.QuietMean)
	h.f64(cfg.QuietStd)
	h.f64(cfg.QuietRho)
	h.f64(cfg.MildPerYear)
	h.f64(cfg.ModeratePerYear)
	h.f64(cfg.MildExcessMean)
	h.f64(cfg.ModerateExcessMean)
	h.f64(cfg.CycleAmplitude)
	h.t(cfg.CyclePeak)
	h.u64(uint64(len(cfg.Storms)))
	for _, s := range cfg.Storms {
		h.f64(float64(s.Peak))
		h.t(s.PeakAt)
		h.i64(int64(s.MainPhaseHours))
		h.f64(s.RecoveryTau)
		h.f64(float64(s.Commencement))
	}
	h.u64(uint64(len(cfg.Overrides)))
	for _, o := range cfg.Overrides {
		h.t(o.At)
		h.f64(float64(o.Value))
	}
	return h.sum()
}

// FingerprintFleet names a constellation run: the weather that drove it plus
// every simulation parameter except the runtime-only Parallelism knob.
func FingerprintFleet(weather Fingerprint, cfg constellation.Config) Fingerprint {
	h := newHasher("fleet")
	h.fp(weather)
	h.t(cfg.Start)
	h.i64(int64(cfg.Hours))
	h.i64(cfg.Seed)
	// cfg.Parallelism deliberately not hashed.
	h.u64(uint64(len(cfg.Shells)))
	for _, s := range cfg.Shells {
		h.str(s.Name)
		h.f64(s.AltitudeKm)
		h.f64(float64(s.Inclination))
		h.i64(int64(s.Planes))
		h.i64(int64(s.SatsPerPlane))
	}
	h.u64(uint64(len(cfg.Launches)))
	for _, l := range cfg.Launches {
		h.t(l.At)
		h.i64(int64(l.Shell))
		h.i64(int64(l.Count))
		h.f64(l.StagingAltKm)
		h.f64(l.StagingDays)
	}
	h.i64(int64(cfg.InitialFleet))
	h.i64(int64(cfg.FirstCatalog))
	h.f64(cfg.Atmosphere.RefAltitudeKm)
	h.f64(cfg.Atmosphere.RefDensity)
	h.f64(cfg.Atmosphere.ScaleHeightKm)
	h.f64(cfg.Atmosphere.EnhancementSlope)
	h.f64(cfg.Atmosphere.EnhancementFloor)
	h.f64(cfg.Atmosphere.BaseDecayKmPerDay)
	h.f64(cfg.Atmosphere.DecayScaleHeightKm)
	h.f64(cfg.Atmosphere.BaseBStar)
	h.f64(cfg.StagingAltKm)
	h.f64(cfg.StagingDays)
	h.f64(cfg.RaiseRateKmPerDay)
	h.f64(cfg.DeadbandKm)
	h.f64(cfg.BoostKmPerDay)
	h.f64(cfg.DeorbitKmPerDay)
	h.f64(cfg.SafeModeProbPerStormHour)
	h.f64(cfg.FailProbPerStormHour)
	h.f64(cfg.SafeModeMinDays)
	h.f64(cfg.SafeModeMaxDays)
	h.f64(cfg.SafeModeDragFactor)
	h.f64(cfg.DecommissionPerYear)
	h.f64(cfg.LifespanYears)
	h.f64(cfg.MeanTLEIntervalHours)
	h.f64(cfg.MaxTLEIntervalHours)
	h.f64(cfg.AltNoiseKm)
	h.f64(cfg.GrossErrorProb)
	h.b(cfg.ProactiveDragMitigation)
	h.u64(uint64(len(cfg.Scripted)))
	for _, ev := range cfg.Scripted {
		h.i64(int64(ev.Catalog))
		h.t(ev.At)
		h.i64(int64(ev.Action))
		h.f64(ev.DurationDays)
		h.f64(ev.DragFactor)
	}
	return h.sum()
}

// FingerprintDataset names a built dataset: the fleet archive it was built
// from plus every cleaning/analysis parameter except the runtime-only
// Parallelism knob.
func FingerprintDataset(fleet Fingerprint, cfg core.Config) Fingerprint {
	h := newHasher("dataset")
	h.fp(fleet)
	h.f64(cfg.MaxValidAltKm)
	h.f64(cfg.MinValidAltKm)
	h.f64(cfg.DecayFilterKm)
	h.f64(cfg.RaisingMarginKm)
	h.f64(cfg.MinOperationalAltKm)
	h.i64(int64(cfg.BaselineStaleness))
	h.i64(int64(cfg.AssociationWindow))
	// cfg.Parallelism deliberately not hashed.
	return h.sum()
}

// FingerprintSegment names one chunk's share of a dataset build: the dataset
// fingerprint (which already chains weather → fleet → cleaning config) plus
// the chunk's identity in the partition. Chunk size participates through the
// bounds, so changing it re-keys every segment — two partitions never share
// segment entries, which is what keeps a partial cache population safe.
func FingerprintSegment(dataset Fingerprint, chunk, lo, hi int) Fingerprint {
	h := newHasher("segment")
	h.fp(dataset)
	h.i64(int64(chunk))
	h.i64(int64(lo))
	h.i64(int64(hi))
	return h.sum()
}
