package artifact

import (
	"bytes"
	"context"
	"testing"

	"cosmicdance/internal/core"
)

// FuzzSnapshotRoundTrip feeds arbitrary bytes to all three decoders. The
// properties under test:
//
//  1. No input panics a decoder — damage is an error, never a crash.
//  2. Any input that decodes successfully is in canonical form: re-encoding
//     the decoded value reproduces the input byte for byte. (This is the
//     cache's bit-identity guarantee, stated as a decoder invariant.)
//
// The seed corpus holds one valid encoding of each kind, so the fuzzer
// mutates real snapshots rather than hunting for the magic from scratch.
func FuzzSnapshotRoundTrip(f *testing.F) {
	w := testWeather(f)
	res := testArchive(f, w)
	d := testDataset(f, w, res)
	f.Add(encodeWeatherBytes(f, w))
	f.Add(encodeArchiveBytes(f, res))
	f.Add(encodeDatasetBytes(f, d))
	f.Add([]byte{})
	f.Add([]byte("CDAS"))

	cfg := core.DefaultConfig()
	f.Fuzz(func(t *testing.T, data []byte) {
		if w, err := DecodeWeather(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := EncodeWeather(&buf, w); err != nil {
				t.Fatalf("re-encode weather: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), data) {
				t.Fatal("accepted weather snapshot is not canonical")
			}
		}
		if res, err := DecodeArchive(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := EncodeArchive(&buf, res); err != nil {
				t.Fatalf("re-encode archive: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), data) {
				t.Fatal("accepted archive snapshot is not canonical")
			}
		}
		if ds, err := DecodeDataset(bytes.NewReader(data), cfg); err == nil {
			var buf bytes.Buffer
			if err := EncodeDataset(&buf, ds); err != nil {
				t.Fatalf("re-encode dataset: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), data) {
				t.Fatal("accepted dataset snapshot is not canonical")
			}
		}
	})
}

// FuzzSegmentRoundTrip feeds arbitrary bytes to the segment decoder — the
// spill/cache unit of the chunked streaming pipeline. Same properties as the
// snapshot fuzzer: no input may panic, and any accepted input must be
// canonical (decode → re-encode reproduces it byte for byte, which is what
// guarantees a damaged spill file can degrade only to a rebuild, never to
// wrong data).
func FuzzSegmentRoundTrip(f *testing.F) {
	w := testWeather(f)
	res := testArchive(f, w)
	cfg := core.DefaultConfig()
	cfg.Parallelism = 1
	p, err := core.BuildChunkPartial(context.Background(), cfg, res.Samples)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(encodeSegmentBytes(f, 0, p))
	f.Add(encodeSegmentBytes(f, 3, tinyPartial()))
	f.Add([]byte{})
	f.Add([]byte("CDAS"))

	f.Fuzz(func(t *testing.T, data []byte) {
		chunk, got, err := DecodeSegment(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeSegment(&buf, chunk, got); err != nil {
			t.Fatalf("re-encode segment: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatal("accepted segment snapshot is not canonical")
		}
	})
}
