package artifact

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"cosmicdance/internal/incremental"
)

// testEngine builds a live engine over the shared deterministic fixtures
// (45 days of weather including a scripted storm, a 12-satellite archive),
// fully ingested, so its snapshot exercises every column.
func testEngine(t testing.TB) *incremental.Engine {
	t.Helper()
	w := testWeather(t)
	res := testArchive(t, w)
	eng := incremental.New(incremental.DefaultConfig())
	eng.IngestSamples(res.Samples)
	if _, err := eng.IngestDst(w.Start(), w.Hourly().Values()); err != nil {
		t.Fatal(err)
	}
	return eng
}

func encodeEngineStateBytes(t testing.TB, st *incremental.EngineState) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeEngineState(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEngineStateRoundTrip(t *testing.T) {
	eng := testEngine(t)
	st := eng.State()
	got, err := DecodeEngineState(bytes.NewReader(encodeEngineStateBytes(t, &st)))
	if err != nil {
		t.Fatal(err)
	}

	// time.Time representation differs after a Unix round trip even when the
	// instants are equal; compare it explicitly, then structurally compare
	// the rest with the field normalized.
	if !got.Trigger.ClearedAt.Equal(st.Trigger.ClearedAt) {
		t.Fatalf("trigger ClearedAt drifted: %v vs %v", got.Trigger.ClearedAt, st.Trigger.ClearedAt)
	}
	got.Trigger.ClearedAt = st.Trigger.ClearedAt
	if !reflect.DeepEqual(*got, st) {
		t.Fatalf("engine state did not round-trip:\n got %+v\nwant %+v", *got, st)
	}

	// The decoded state must restore into a working engine whose materialized
	// dataset is byte-identical to the original's.
	e2, err := incremental.FromState(incremental.DefaultConfig(), *got)
	if err != nil {
		t.Fatalf("decoded state rejected by FromState: %v", err)
	}
	d1, err := eng.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := e2.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeDatasetBytes(t, d1), encodeDatasetBytes(t, d2)) {
		t.Fatal("restored engine materializes a different dataset")
	}
	if e2.Seq() != eng.Seq() || e2.Version() != eng.Version() {
		t.Fatalf("stream cursors drifted: seq %d/%d version %d/%d",
			e2.Seq(), eng.Seq(), e2.Version(), eng.Version())
	}
}

func TestEngineStateFailsClosed(t *testing.T) {
	eng := testEngine(t)
	st := eng.State()
	enc := encodeEngineStateBytes(t, &st)

	for _, n := range []int{0, 1, 4, 11, 12, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeEngineState(bytes.NewReader(enc[:n])); err == nil {
			t.Fatalf("engine state truncated to %d bytes decoded successfully", n)
		}
	}
	if _, err := DecodeEngineState(bytes.NewReader(append(bytes.Clone(enc), 0))); err == nil {
		t.Fatal("engine state with trailing garbage decoded successfully")
	}
	// Every section payload is CRC-guarded: flip a sample of bytes across the
	// whole snapshot (the header and framing are covered by the exhaustive
	// weather sweep, which shares the codec).
	for i := 0; i < len(enc); i += 61 {
		bad := bytes.Clone(enc)
		bad[i] ^= 0x5a
		if _, err := DecodeEngineState(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flip at byte %d/%d decoded successfully", i, len(enc))
		}
	}
	// A snapshot of another kind must not decode as engine state.
	if _, err := DecodeEngineState(bytes.NewReader(encodeWeatherBytes(t, testWeather(t)))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("weather snapshot decoded as engine state: %v", err)
	}
}
