package artifact

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
	"cosmicdance/internal/obs"
	"cosmicdance/internal/parallel"
	"cosmicdance/internal/spaceweather"
)

// The chunked pipeline streams a fleet through the dataset build one
// satellite chunk at a time: simulate chunk → clean into a partial → encode
// as a segment → spill → merge-read in catalog order. Peak memory is
// O(chunk × workers) above the final product, not O(fleet), which is what
// lets a 100k-satellite run fit the same box as a 6k one. With a disk cache
// attached the spilled segments double as incremental cache entries: a
// rerun skips straight past every chunk whose segment is already present,
// and an input change re-keys (and therefore rebuilds) every segment at
// once.

// metricSegmentBuilds counts segments actually built (cache hits excluded) —
// the observable that proves incremental resume in tests and traces.
var metricSegmentBuilds = obs.Default().Counter("artifact_segment_builds_total")

// DefaultChunkSize is the satellites-per-chunk default for chunked runs:
// large enough to amortize per-chunk overhead, small enough that a chunk's
// archive and partial stay a few megabytes.
const DefaultChunkSize = 4096

// ChunkedOptions tunes a chunked streaming run.
type ChunkedOptions struct {
	// ChunkSize is the satellites-per-chunk partition size (default
	// DefaultChunkSize). The output is byte-identical at every value; only
	// memory and cache granularity change.
	ChunkSize int
	// SpillDir, when set and no disk cache is attached, spills segments to
	// ephemeral files under this directory instead of holding them in
	// memory. Ignored when the pipeline has a cache (the cache is better:
	// persistent and fingerprint-keyed).
	SpillDir string
	// InMemory forces the in-memory segment store even when a cache or
	// SpillDir is available (the equivalence suites use this to diff
	// in-memory vs spilled execution).
	InMemory bool
}

// segmentStore is where encoded segments live between the produce and
// consume ends of the stream. Implementations must support concurrent put
// (workers) against get/evict/done (the consumer); distinct indices never
// alias.
type segmentStore interface {
	// has reports whether index i is already present (an incremental-resume
	// hit). Stores that cannot trust prior contents return false.
	has(i int) bool
	// put stores index i's encoded segment.
	put(i int, blob []byte) error
	// get returns index i's encoded segment, if present.
	get(i int) ([]byte, bool)
	// evict drops a damaged entry so it cannot be served again.
	evict(i int)
	// done releases index i after successful consumption (temp stores free
	// the bytes; persistent stores keep them for the next run).
	done(i int)
	// close releases the store.
	close()
}

// cacheStore keeps segments as fingerprint-keyed entries in the disk cache —
// the persistent store that makes chunked runs incrementally resumable.
type cacheStore struct {
	cache *Cache
	fps   []Fingerprint
}

func (s *cacheStore) path(i int) string { return s.cache.Path(KindSegment, s.fps[i]) }

func (s *cacheStore) has(i int) bool {
	_, err := os.Stat(s.path(i))
	return err == nil
}

func (s *cacheStore) put(i int, blob []byte) error {
	return s.cache.store(KindSegment, s.fps[i], func(w io.Writer) error {
		_, err := w.Write(blob)
		return err
	})
}

func (s *cacheStore) get(i int) ([]byte, bool) {
	blob, err := os.ReadFile(s.path(i))
	if err != nil {
		countKind(metricMisses, KindSegment)
		return nil, false
	}
	metricBytesRead.Add(int64(len(blob)))
	countKind(metricHits, KindSegment)
	return blob, true
}

func (s *cacheStore) evict(i int) {
	_ = os.Remove(s.path(i))
	countKind(metricEvictions, KindSegment)
}

func (s *cacheStore) done(int) {}
func (s *cacheStore) close()   {}

// dirStore spills segments to ephemeral files under a private subdirectory —
// flat memory without a cache, nothing trusted or kept across runs.
type dirStore struct {
	dir string
}

func newDirStore(parent string) (*dirStore, error) {
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: create spill dir: %w", err)
	}
	dir, err := os.MkdirTemp(parent, "segments-*")
	if err != nil {
		return nil, fmt.Errorf("artifact: create spill dir: %w", err)
	}
	return &dirStore{dir: dir}, nil
}

func (s *dirStore) path(i int) string { return filepath.Join(s.dir, fmt.Sprintf("seg-%d.cda", i)) }

// has always misses: a spill area holds bytes in flight, never state a
// later run may trust.
func (s *dirStore) has(int) bool { return false }

func (s *dirStore) put(i int, blob []byte) error {
	if err := os.WriteFile(s.path(i), blob, 0o644); err != nil {
		return fmt.Errorf("artifact: spill segment %d: %w", i, err)
	}
	metricBytesWritten.Add(int64(len(blob)))
	return nil
}

func (s *dirStore) get(i int) ([]byte, bool) {
	blob, err := os.ReadFile(s.path(i))
	if err != nil {
		return nil, false
	}
	metricBytesRead.Add(int64(len(blob)))
	return blob, true
}

func (s *dirStore) evict(i int) { _ = os.Remove(s.path(i)) }
func (s *dirStore) done(i int)  { _ = os.Remove(s.path(i)) }
func (s *dirStore) close()      { _ = os.RemoveAll(s.dir) }

// memStore holds in-flight segments in memory. The consumer trails the
// producers by at most the worker window and done frees each entry, so the
// store never holds more than O(workers) segments.
type memStore struct {
	mu    sync.Mutex
	blobs map[int][]byte
}

func newMemStore() *memStore { return &memStore{blobs: make(map[int][]byte)} }

func (s *memStore) has(int) bool { return false }

func (s *memStore) put(i int, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[i] = blob
	return nil
}

func (s *memStore) get(i int) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.blobs[i]
	return blob, ok
}

func (s *memStore) evict(i int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blobs, i)
}

func (s *memStore) done(i int) { s.evict(i) }
func (s *memStore) close()     {}

// segmentStoreFor picks the store a chunked run spills through.
func (p *Pipeline) segmentStoreFor(opts ChunkedOptions) (segmentStore, error) {
	switch {
	case opts.InMemory:
		return newMemStore(), nil
	case p.cache != nil:
		return &cacheStore{cache: p.cache}, nil
	case opts.SpillDir != "":
		return newDirStore(opts.SpillDir)
	default:
		return newMemStore(), nil
	}
}

// EachSegment runs the chunked streaming pipeline and hands every chunk's
// partial to consume in chunk (catalog) order. Producers fan out across
// fleetCfg.Parallelism workers; each chunk is simulated, cleaned, encoded,
// and spilled, then decoded back on the consuming side — the spilled bytes
// are the hand-off, so the segment codec is exercised on every chunk of
// every run, and a persistent store turns completed chunks into resume
// points. A damaged or unwritable segment degrades to an inline rebuild:
// corruption can cost time, never correctness.
//
// The output stream is invariant under ChunkSize, Parallelism, and store
// choice — the chunk-equivalence suites prove all three.
func (p *Pipeline) EachSegment(ctx context.Context, weatherCfg spaceweather.Config, fleetCfg constellation.Config, coreCfg core.Config, opts ChunkedOptions, consume func(chunk int, part *core.ChunkPartial) error) error {
	chunkSize := opts.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	weather, err := p.Weather(ctx, weatherCfg)
	if err != nil {
		return err
	}
	plan, err := constellation.PlanChunks(fleetCfg, chunkSize)
	if err != nil {
		return err
	}
	n := plan.NumChunks()

	store, err := p.segmentStoreFor(opts)
	if err != nil {
		return err
	}
	defer store.close()
	if cs, ok := store.(*cacheStore); ok {
		datasetFP := FingerprintDataset(FingerprintFleet(FingerprintWeather(weatherCfg), fleetCfg), coreCfg)
		cs.fps = make([]Fingerprint, n)
		for i := range cs.fps {
			lo, hi := plan.ChunkBounds(i)
			cs.fps[i] = FingerprintSegment(datasetFP, i, lo, hi)
		}
	}

	// Each chunk is cleaned sequentially; the parallelism budget is spent
	// across chunks by the stream's worker pool.
	chunkCfg := coreCfg
	chunkCfg.Parallelism = 1

	build := func(i int) ([]byte, error) {
		res, err := plan.RunChunk(ctx, i, weather)
		if err != nil {
			return nil, err
		}
		part, err := core.BuildChunkPartial(ctx, chunkCfg, res.Samples)
		if err != nil {
			return nil, err
		}
		metricSegmentBuilds.Inc()
		var buf bytes.Buffer
		if err := EncodeSegment(&buf, i, part); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}

	produce := func(i int) (struct{}, error) {
		if store.has(i) {
			return struct{}{}, nil // incremental resume: segment already spilled
		}
		blob, err := build(i)
		if err != nil {
			return struct{}{}, err
		}
		if err := store.put(i, blob); err != nil {
			// A failed spill is a warning, not a failure: the consumer
			// rebuilds on miss.
			p.warn(err)
		}
		return struct{}{}, nil
	}

	consumeSeg := func(i int, _ struct{}) error {
		var part *core.ChunkPartial
		if blob, ok := store.get(i); ok {
			chunk, decoded, err := DecodeSegment(bytes.NewReader(blob))
			if err == nil && chunk == i {
				part = decoded
			} else {
				store.evict(i) // damaged or mislabeled: never serve it again
			}
		}
		if part == nil {
			// Miss (spill failed) or damage (evicted above): rebuild inline.
			// The rebuilt bytes still round-trip through the codec so every
			// consumed partial took the same decode path.
			blob, err := build(i)
			if err != nil {
				return err
			}
			if _, part, err = DecodeSegment(bytes.NewReader(blob)); err != nil {
				return err
			}
			if err := store.put(i, blob); err != nil {
				p.warn(err)
			}
		}
		store.done(i)
		return consume(i, part)
	}

	return parallel.Stream(ctx, fleetCfg.Parallelism, n, produce, consumeSeg)
}

// ChunkedDataset materializes a full dataset through the chunked streaming
// path: EachSegment feeding a PartialAssembler. The result is byte-identical
// to Dataset over the same configs — the monolithic and chunked paths share
// the cleaning core, and the equivalence suites diff their encoded bytes.
//
// There is deliberately no dataset-level memoization or cache store here:
// the chunked path's unit of caching and invalidation is the segment, so a
// rerun resumes chunk by chunk instead of all-or-nothing. Callers that want
// the final dataset cached use Dataset for mid-scale fleets.
func (p *Pipeline) ChunkedDataset(ctx context.Context, weatherCfg spaceweather.Config, fleetCfg constellation.Config, coreCfg core.Config, opts ChunkedOptions) (*core.Dataset, error) {
	weather, err := p.Weather(ctx, weatherCfg)
	if err != nil {
		return nil, err
	}
	asm := core.NewPartialAssembler(coreCfg, weather)
	err = p.EachSegment(ctx, weatherCfg, fleetCfg, coreCfg, opts, func(_ int, part *core.ChunkPartial) error {
		return asm.Add(part)
	})
	if err != nil {
		return nil, err
	}
	return asm.Finish()
}
