package artifact

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
	"cosmicdance/internal/dst"
	"cosmicdance/internal/obs"
	"cosmicdance/internal/spaceweather"
	"cosmicdance/internal/units"
)

// failWriter fails the test on any write — the pipeline must stay silent.
type failWriter struct{ t *testing.T }

func (w failWriter) Write(p []byte) (int, error) {
	w.t.Errorf("unexpected pipeline warning: %s", p)
	return len(p), nil
}

// failLogger is a structured logger that fails the test if the pipeline
// warns (the replacement for the old Warn func(error) hook in tests).
func failLogger(t *testing.T) *slog.Logger {
	return obs.NewLogger(failWriter{t}, slog.LevelWarn)
}

// --- small deterministic fixtures ---

func testWeatherCfg() spaceweather.Config {
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	return spaceweather.Config{
		Start:              start,
		Hours:              24 * 45,
		Seed:               3,
		QuietMean:          -12,
		QuietStd:           8,
		QuietRho:           0.9,
		MildPerYear:        20,
		ModeratePerYear:    4,
		MildExcessMean:     15,
		ModerateExcessMean: 30,
		CycleAmplitude:     0.5,
		CyclePeak:          time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC),
		Storms: []spaceweather.StormSpec{{
			Peak:           units.NanoTesla(-180),
			PeakAt:         start.Add(10 * 24 * time.Hour),
			MainPhaseHours: 6,
			RecoveryTau:    30,
			Commencement:   25,
		}},
		Overrides: []spaceweather.Override{{
			At:    start.Add(10 * 24 * time.Hour),
			Value: -181,
		}},
	}
}

func testWeather(t testing.TB) *dst.Index {
	t.Helper()
	w, err := spaceweather.Generate(testWeatherCfg())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func testFleetCfg() constellation.Config {
	cfg := constellation.DefaultConfig()
	cfg.Start = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	cfg.Hours = 24 * 45
	cfg.Seed = 11
	cfg.InitialFleet = 8
	cfg.Launches = []constellation.Launch{{At: cfg.Start.Add(5 * 24 * time.Hour), Shell: 0, Count: 4}}
	cfg.Scripted = []constellation.ScriptedEvent{{
		Catalog: 44713, At: cfg.Start.Add(12 * 24 * time.Hour),
		Action: constellation.ScriptSafeMode, DurationDays: 3,
	}}
	cfg.Parallelism = 1
	return cfg
}

func testArchive(t testing.TB, weather *dst.Index) *constellation.Result {
	t.Helper()
	res, err := constellation.Run(context.Background(), testFleetCfg(), weather)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func testDataset(t testing.TB, weather *dst.Index, res *constellation.Result) *core.Dataset {
	t.Helper()
	b := core.NewBuilder(core.DefaultConfig(), weather)
	b.AddSamples(res.Samples)
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func encodeWeatherBytes(t testing.TB, w *dst.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeWeather(&buf, w); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeArchiveBytes(t testing.TB, res *constellation.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeArchive(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeDatasetBytes(t testing.TB, d *core.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// --- round trips ---

func TestWeatherRoundTrip(t *testing.T) {
	w := testWeather(t)
	enc := encodeWeatherBytes(t, w)
	got, err := DecodeWeather(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Start().Equal(w.Start()) {
		t.Fatalf("start %v, want %v", got.Start(), w.Start())
	}
	if !reflect.DeepEqual(got.Hourly().Values(), w.Hourly().Values()) {
		t.Fatal("hourly values changed across the round trip")
	}
	// Canonical form: re-encoding the decoded series is byte-identical.
	if !bytes.Equal(enc, encodeWeatherBytes(t, got)) {
		t.Fatal("re-encoding the decoded weather produced different bytes")
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	w := testWeather(t)
	res := testArchive(t, w)
	enc := encodeArchiveBytes(t, res)
	got, err := DecodeArchive(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatal("archive changed across the round trip")
	}
	if !bytes.Equal(enc, encodeArchiveBytes(t, got)) {
		t.Fatal("re-encoding the decoded archive produced different bytes")
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	w := testWeather(t)
	res := testArchive(t, w)
	d := testDataset(t, w, res)
	enc := encodeDatasetBytes(t, d)
	got, err := DecodeDataset(bytes.NewReader(enc), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.State(), d.State()) {
		t.Fatal("dataset state changed across the round trip")
	}
	if !reflect.DeepEqual(got.Weather().Hourly().Values(), d.Weather().Hourly().Values()) {
		t.Fatal("embedded weather changed across the round trip")
	}
	if !bytes.Equal(enc, encodeDatasetBytes(t, got)) {
		t.Fatal("re-encoding the decoded dataset produced different bytes")
	}
}

// --- fail-closed decoding ---

func decodeAny(kind Kind, data []byte) error {
	switch kind {
	case KindWeather:
		_, err := DecodeWeather(bytes.NewReader(data))
		return err
	case KindArchive:
		_, err := DecodeArchive(bytes.NewReader(data))
		return err
	default:
		_, err := DecodeDataset(bytes.NewReader(data), core.DefaultConfig())
		return err
	}
}

// TestEveryByteFlipFailsClosed corrupts each byte of a weather snapshot in
// turn; no flip may decode successfully. Weather is small enough for the
// exhaustive sweep; the framing is shared by all three kinds.
func TestEveryByteFlipFailsClosed(t *testing.T) {
	w := testWeather(t)
	enc := encodeWeatherBytes(t, w)
	for i := range enc {
		bad := bytes.Clone(enc)
		bad[i] ^= 0x5a
		if err := decodeAny(KindWeather, bad); err == nil {
			t.Fatalf("flip at byte %d/%d decoded successfully", i, len(enc))
		}
	}
}

func TestTruncationFailsClosed(t *testing.T) {
	w := testWeather(t)
	res := testArchive(t, w)
	d := testDataset(t, w, res)
	cases := []struct {
		kind Kind
		enc  []byte
	}{
		{KindWeather, encodeWeatherBytes(t, w)},
		{KindArchive, encodeArchiveBytes(t, res)},
		{KindDataset, encodeDatasetBytes(t, d)},
	}
	for _, c := range cases {
		for _, n := range []int{0, 1, 4, 11, 12, len(c.enc) / 2, len(c.enc) - 1} {
			if err := decodeAny(c.kind, c.enc[:n]); err == nil {
				t.Fatalf("%s truncated to %d bytes decoded successfully", c.kind, n)
			}
		}
		// Trailing garbage is corruption too: a snapshot is exactly framed.
		if err := decodeAny(c.kind, append(bytes.Clone(c.enc), 0)); err == nil {
			t.Fatalf("%s with trailing garbage decoded successfully", c.kind)
		}
		// A snapshot of one kind must not decode as another.
		other := KindArchive
		if c.kind == KindArchive {
			other = KindWeather
		}
		if err := decodeAny(other, c.enc); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s decoded as %s: %v", c.kind, other, err)
		}
	}
}

func TestVersionSkewFailsClosed(t *testing.T) {
	w := testWeather(t)
	enc := encodeWeatherBytes(t, w)

	// Container version lives at offset 4 (after the magic).
	bad := bytes.Clone(enc)
	bad[4] = 99
	if err := decodeAny(KindWeather, bad); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("container skew: got %v, want ErrVersionSkew", err)
	}
	// Schema version lives at offset 8 (after magic, version, kind).
	bad = bytes.Clone(enc)
	bad[8] = 99
	if err := decodeAny(KindWeather, bad); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("schema skew: got %v, want ErrVersionSkew", err)
	}
	// A foreign file (the legacy COSM archive magic) is corrupt, not skewed.
	if err := decodeAny(KindWeather, []byte("COSM\x01\x00\x00\x00rest-of-archive")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign file: got %v, want ErrCorrupt", err)
	}
}

// --- fingerprints ---

func TestFingerprintParallelismInvariant(t *testing.T) {
	wcfg := testWeatherCfg()
	fcfg := testFleetCfg()
	ccfg := core.DefaultConfig()
	wfp := FingerprintWeather(wcfg)

	f1, f2 := fcfg, fcfg
	f1.Parallelism, f2.Parallelism = 1, 8
	if FingerprintFleet(wfp, f1) != FingerprintFleet(wfp, f2) {
		t.Fatal("fleet fingerprint depends on Parallelism")
	}
	c1, c2 := ccfg, ccfg
	c1.Parallelism, c2.Parallelism = 1, 8
	ffp := FingerprintFleet(wfp, fcfg)
	if FingerprintDataset(ffp, c1) != FingerprintDataset(ffp, c2) {
		t.Fatal("dataset fingerprint depends on Parallelism")
	}

	// Every real input must move the fingerprint.
	seeded := fcfg
	seeded.Seed++
	if FingerprintFleet(wfp, seeded) == FingerprintFleet(wfp, fcfg) {
		t.Fatal("fleet fingerprint ignores the seed")
	}
	wcfg2 := wcfg
	wcfg2.Seed++
	if FingerprintWeather(wcfg2) == wfp {
		t.Fatal("weather fingerprint ignores the seed")
	}
	ccfg2 := ccfg
	ccfg2.DecayFilterKm++
	if FingerprintDataset(ffp, ccfg2) == FingerprintDataset(ffp, ccfg) {
		t.Fatal("dataset fingerprint ignores cleaning parameters")
	}
	// And the upstream fingerprint must flow downstream.
	if FingerprintFleet(FingerprintWeather(wcfg2), fcfg) == FingerprintFleet(wfp, fcfg) {
		t.Fatal("fleet fingerprint ignores the weather fingerprint")
	}
}

// --- cache ---

func TestCacheHitBitIdentical(t *testing.T) {
	w := testWeather(t)
	res := testArchive(t, w)
	cold := testDataset(t, w, res)

	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fp := FingerprintDataset(FingerprintFleet(FingerprintWeather(testWeatherCfg()), testFleetCfg()), core.DefaultConfig())
	if _, ok := cache.LoadDataset(fp, core.DefaultConfig()); ok {
		t.Fatal("hit on an empty cache")
	}
	if err := cache.StoreDataset(fp, cold); err != nil {
		t.Fatal(err)
	}
	warm, ok := cache.LoadDataset(fp, core.DefaultConfig())
	if !ok {
		t.Fatal("miss after store")
	}
	// The headline guarantee: warm equals cold, bit for bit.
	if !bytes.Equal(encodeDatasetBytes(t, warm), encodeDatasetBytes(t, cold)) {
		t.Fatal("cache hit is not bit-identical to the cold build")
	}
	if !reflect.DeepEqual(warm.State(), cold.State()) {
		t.Fatal("cache hit state differs from the cold build")
	}
}

func TestCacheDropsDamagedEntries(t *testing.T) {
	w := testWeather(t)
	dir := t.TempDir()
	cache, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fp := FingerprintWeather(testWeatherCfg())
	if err := cache.StoreWeather(fp, w); err != nil {
		t.Fatal(err)
	}
	path := cache.Path(KindWeather, fp)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.LoadWeather(fp); ok {
		t.Fatal("damaged entry served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("damaged entry not removed")
	}
	// And the cache recovers: store again, load again.
	if err := cache.StoreWeather(fp, w); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.LoadWeather(fp); !ok {
		t.Fatal("miss after re-store")
	}
}

func TestCacheStoreIsAtomic(t *testing.T) {
	dir := t.TempDir()
	cache, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := testWeather(t)
	if err := cache.StoreWeather(FingerprintWeather(testWeatherCfg()), w); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("staging files left behind: %v", entries)
	}
}

// --- pipeline ---

func TestPipelineWarmEqualsCold(t *testing.T) {
	dir := t.TempDir()
	cache, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	wcfg, fcfg, ccfg := testWeatherCfg(), testFleetCfg(), core.DefaultConfig()

	coldPipe := NewPipeline(cache)
	coldPipe.Log = failLogger(t)
	cold, err := coldPipe.Dataset(context.Background(), wcfg, fcfg, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	// Within one pipeline the dataset is memoized: same pointer.
	again, err := coldPipe.Dataset(context.Background(), wcfg, fcfg, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if again != cold {
		t.Fatal("pipeline did not memoize the dataset")
	}

	// A fresh pipeline over the same cache must load, not rebuild — and the
	// loaded dataset must be bit-identical. Parallelism differs on purpose:
	// it must not move the cache key.
	warmCfgs := fcfg
	warmCfgs.Parallelism = 4
	warmCore := ccfg
	warmCore.Parallelism = 4
	warmPipe := NewPipeline(cache)
	warmPipe.Log = failLogger(t)
	warm, err := warmPipe.Dataset(context.Background(), wcfg, warmCfgs, warmCore)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeDatasetBytes(t, warm), encodeDatasetBytes(t, cold)) {
		t.Fatal("warm pipeline dataset is not bit-identical to the cold build")
	}

	// Weather and fleet come back identical through their own entries.
	coldW, err := coldPipe.Weather(context.Background(), wcfg)
	if err != nil {
		t.Fatal(err)
	}
	warmW, err := warmPipe.Weather(context.Background(), wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeWeatherBytes(t, warmW), encodeWeatherBytes(t, coldW)) {
		t.Fatal("warm weather is not bit-identical")
	}
	coldF, err := coldPipe.Fleet(context.Background(), wcfg, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	warmF, err := warmPipe.Fleet(context.Background(), wcfg, warmCfgs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeArchiveBytes(t, warmF), encodeArchiveBytes(t, coldF)) {
		t.Fatal("warm archive is not bit-identical")
	}
}

func TestPipelineWithoutCache(t *testing.T) {
	pipe := NewPipeline(nil)
	d, err := pipe.Dataset(context.Background(), testWeatherCfg(), testFleetCfg(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Tracks()) == 0 {
		t.Fatal("no tracks")
	}
}
