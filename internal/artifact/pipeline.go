package artifact

import (
	"context"
	"log/slog"
	"sync"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
	"cosmicdance/internal/dst"
	"cosmicdance/internal/obs"
	"cosmicdance/internal/spaceweather"
)

// Pipeline memoizes the generate → simulate → build chain behind the
// content-addressed cache. Within one process every stage is computed at
// most once per fingerprint (so ten figures share one substrate build), and
// across processes the disk cache supplies warm artifacts bit-identical to a
// cold build.
//
// A nil *Cache disables the disk layer; the in-memory memoization still
// applies.
type Pipeline struct {
	cache *Cache

	// Log, when set, receives cache-store failures (disk full, read-only
	// dir) as structured warnings. They never fail the pipeline — the
	// artifact is already in hand — but they are worth surfacing because the
	// next run will be cold again.
	Log *slog.Logger

	// Trace, when set, records one span per stage (weather, fleet, dataset)
	// into the run's timing tree. A nil tracer costs nothing.
	Trace *obs.Tracer

	mu       sync.Mutex
	weather  map[Fingerprint]*dst.Index
	fleets   map[Fingerprint]*constellation.Result
	datasets map[Fingerprint]*core.Dataset
}

// NewPipeline returns a pipeline over cache (nil for memory-only).
func NewPipeline(cache *Cache) *Pipeline {
	return &Pipeline{
		cache:    cache,
		weather:  make(map[Fingerprint]*dst.Index),
		fleets:   make(map[Fingerprint]*constellation.Result),
		datasets: make(map[Fingerprint]*core.Dataset),
	}
}

func (p *Pipeline) warn(err error) {
	if err != nil && p.Log != nil {
		p.Log.Warn("artifact cache store failed", "stage", "artifact", "err", err)
	}
}

// Weather returns the Dst series for cfg: memoized, then cached, then
// generated.
func (p *Pipeline) Weather(ctx context.Context, cfg spaceweather.Config) (*dst.Index, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.weatherLocked(ctx, cfg)
}

func (p *Pipeline) weatherLocked(ctx context.Context, cfg spaceweather.Config) (*dst.Index, error) {
	sp := p.Trace.Start("weather")
	defer sp.End()
	fp := FingerprintWeather(cfg)
	if w, ok := p.weather[fp]; ok {
		return w, nil
	}
	if p.cache != nil {
		if w, ok := p.cache.LoadWeather(fp); ok {
			p.weather[fp] = w
			return w, nil
		}
	}
	w, err := spaceweather.Generate(cfg)
	if err != nil {
		return nil, err
	}
	if p.cache != nil {
		p.warn(p.cache.StoreWeather(fp, w))
	}
	p.weather[fp] = w
	return w, nil
}

// Fleet returns the constellation run for (weatherCfg, fleetCfg): memoized,
// then cached, then simulated. fleetCfg.Parallelism only affects how a cold
// simulation is scheduled, never the result or the cache key.
func (p *Pipeline) Fleet(ctx context.Context, weatherCfg spaceweather.Config, fleetCfg constellation.Config) (*constellation.Result, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fleetLocked(ctx, weatherCfg, fleetCfg)
}

func (p *Pipeline) fleetLocked(ctx context.Context, weatherCfg spaceweather.Config, fleetCfg constellation.Config) (*constellation.Result, error) {
	sp := p.Trace.Start("fleet")
	defer sp.End()
	fp := FingerprintFleet(FingerprintWeather(weatherCfg), fleetCfg)
	if res, ok := p.fleets[fp]; ok {
		return res, nil
	}
	if p.cache != nil {
		if res, ok := p.cache.LoadArchive(fp); ok {
			p.fleets[fp] = res
			return res, nil
		}
	}
	weather, err := p.weatherLocked(ctx, weatherCfg)
	if err != nil {
		return nil, err
	}
	res, err := constellation.Run(ctx, fleetCfg, weather)
	if err != nil {
		return nil, err
	}
	if p.cache != nil {
		p.warn(p.cache.StoreArchive(fp, res))
	}
	p.fleets[fp] = res
	return res, nil
}

// Dataset returns the built dataset for the full chain: memoized, then
// cached (the snapshot is self-contained, so a hit skips weather generation
// and simulation entirely), then built from the upstream stages. coreCfg's
// Parallelism knob is applied to the returned dataset but never hashed.
func (p *Pipeline) Dataset(ctx context.Context, weatherCfg spaceweather.Config, fleetCfg constellation.Config, coreCfg core.Config) (*core.Dataset, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	sp := p.Trace.Start("dataset")
	defer sp.End()
	fp := FingerprintDataset(FingerprintFleet(FingerprintWeather(weatherCfg), fleetCfg), coreCfg)
	if d, ok := p.datasets[fp]; ok {
		return d, nil
	}
	if p.cache != nil {
		if d, ok := p.cache.LoadDataset(fp, coreCfg); ok {
			p.datasets[fp] = d
			return d, nil
		}
	}
	weather, err := p.weatherLocked(ctx, weatherCfg)
	if err != nil {
		return nil, err
	}
	fleet, err := p.fleetLocked(ctx, weatherCfg, fleetCfg)
	if err != nil {
		return nil, err
	}
	b := core.NewBuilder(coreCfg, weather)
	b.AddSamples(fleet.Samples)
	d, err := b.Build(ctx)
	if err != nil {
		return nil, err
	}
	if p.cache != nil {
		p.warn(p.cache.StoreDataset(fp, d))
	}
	p.datasets[fp] = d
	return d, nil
}
