// Package artifact persists the pipeline's three expensive intermediates —
// the generated Dst weather series, the simulated constellation archive, and
// the built core.Dataset — as deterministic, versioned, CRC-guarded binary
// snapshots, and caches them on disk keyed by a canonical fingerprint of the
// inputs that produced them.
//
// Every entry point used to re-run spaceweather.Generate → constellation.Run
// → core.Builder from scratch on every invocation, even though the inputs
// are fully deterministic (config, seed) pairs. With the cache, a warm run
// of cmd/figures or the benchmark fixtures skips straight to analysis.
//
// The guarantees, in order of importance:
//
//  1. A cache hit is bit-identical to a cold build. The codec stores every
//     float as its IEEE-754 bit pattern (no text round-trip, no narrowing),
//     and the determinism suite proves warm == cold byte-for-byte.
//  2. A bad artifact is never served. Sections are length-prefixed and
//     CRC-guarded; any truncation, corruption, version skew or foreign file
//     fails decoding closed, and the cache treats it as a miss and rebuilds.
//  3. A fingerprint names the inputs, not the machine. Fingerprints cover
//     the schema version, the full generation/simulation/cleaning config and
//     the seed, field by field in a fixed order — and deliberately exclude
//     the Parallelism knobs, because the pipeline's output is bit-identical
//     at every worker count.
//
// Snapshot layout: a fixed header (magic, container version, kind, schema
// version) followed by length-prefixed sections in a fixed per-kind order,
// each protected by a CRC32, closed by a trailer magic. Bulk data (samples,
// track points, hourly readings) is columnar: one section per field, which
// keeps encoding a straight memcpy-style loop per column.
package artifact

import (
	"errors"
	"fmt"
)

// SchemaVersion is the snapshot schema generation. Bump it whenever the
// snapshot layout changes or the meaning of any fingerprinted input shifts
// (e.g. an RNG redesign): the version participates in every fingerprint, so
// a bump invalidates every existing cache entry at once.
// Version history: 2 canonicalized the dataset's raw-altitude order (sorted
// by IEEE total order instead of ingest order) so chunked and monolithic
// builds share one byte representation, and introduced KindSegment.
const SchemaVersion = 2

// Kind identifies which intermediate a snapshot holds.
type Kind uint16

// The snapshot kinds.
const (
	// KindWeather is a generated hourly Dst series (dst.Index).
	KindWeather Kind = 1
	// KindArchive is a simulated constellation run (constellation.Result).
	KindArchive Kind = 2
	// KindDataset is a built, cleaned dataset (core.Dataset), with its
	// weather series embedded so the snapshot is self-contained.
	KindDataset Kind = 3
	// KindSegment is one chunk's share of a dataset build (core.ChunkPartial)
	// — the spillable unit of the chunked streaming pipeline.
	KindSegment Kind = 4
	// KindIncremental is a live incremental engine's resumable state
	// (incremental.EngineState): the raw ingest streams plus stream cursors,
	// with all derived analysis re-derived on restore.
	KindIncremental Kind = 5
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindWeather:
		return "weather"
	case KindArchive:
		return "archive"
	case KindDataset:
		return "dataset"
	case KindSegment:
		return "segment"
	case KindIncremental:
		return "incremental"
	default:
		return fmt.Sprintf("Kind(%d)", uint16(k))
	}
}

// ErrCorrupt is wrapped by every decode failure caused by a damaged or
// foreign snapshot (bad magic, CRC mismatch, truncation, impossible counts).
var ErrCorrupt = errors.New("artifact: corrupt snapshot")

// ErrVersionSkew is wrapped by decode failures caused by a snapshot written
// under a different container or schema version. Version skew is not an
// error condition for the cache — it is a miss, and the artifact is rebuilt
// under the current schema.
var ErrVersionSkew = errors.New("artifact: snapshot version skew")
