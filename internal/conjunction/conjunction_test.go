package conjunction

import (
	"math"
	"testing"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
)

var cj0 = time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)

// track builds a core.Track from (hour, altitude) pairs.
func track(catalog int, opAlt float64, points [][2]float64) *core.Track {
	tr := &core.Track{Catalog: catalog, OperationalAltKm: opAlt}
	for _, p := range points {
		tr.Points = append(tr.Points, core.TrackPoint{
			Epoch: cj0.Add(time.Duration(p[0]) * time.Hour).Unix(),
			AltKm: float32(p[1]),
		})
	}
	return tr
}

// steady returns a resident track that never leaves its shell.
func steady(catalog int, alt float64, hours int) *core.Track {
	var pts [][2]float64
	for h := 0; h < hours; h += 12 {
		pts = append(pts, [2]float64{float64(h), alt})
	}
	return track(catalog, alt, pts)
}

// decayer returns a track decaying from startAlt at rate km/h after onsetHour.
func decayer(catalog int, startAlt, ratePerHour float64, onsetHour, totalHours int) *core.Track {
	var pts [][2]float64
	for h := 0; h < totalHours; h += 6 {
		alt := startAlt
		if h > onsetHour {
			alt = startAlt - ratePerHour*float64(h-onsetHour)
		}
		if alt < 180 {
			break
		}
		pts = append(pts, [2]float64{float64(h), alt})
	}
	return track(catalog, startAlt, pts)
}

func shells() []constellation.Shell {
	return []constellation.Shell{
		{Name: "s570", AltitudeKm: 570},
		{Name: "s550", AltitudeKm: 550},
		{Name: "s540", AltitudeKm: 540},
	}
}

func TestAnalyzeValidation(t *testing.T) {
	a := NewAnalyzer(nil)
	if _, err := a.Analyze([]*core.Track{steady(1, 550, 100)}); err == nil {
		t.Error("no shells accepted")
	}
	a = NewAnalyzer(shells())
	if _, err := a.Analyze(nil); err == nil {
		t.Error("no tracks accepted")
	}
}

func TestOccupancyAssignment(t *testing.T) {
	a := NewAnalyzer(shells())
	rep, err := a.Analyze([]*core.Track{
		steady(1, 550, 100), steady(2, 549, 100), steady(3, 570, 100),
		steady(4, 300, 100), // no home shell
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for _, o := range rep.Occupancy {
		byName[o.Shell.Name] = o.Count
	}
	if byName["s550"] != 2 || byName["s570"] != 1 || byName["s540"] != 0 {
		t.Errorf("occupancy = %v", byName)
	}
}

func TestResidentsProduceNoCrossings(t *testing.T) {
	a := NewAnalyzer(shells())
	rep, err := a.Analyze([]*core.Track{steady(1, 550, 500), steady(2, 570, 500)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Crossings) != 0 {
		t.Errorf("crossings = %+v, want none", rep.Crossings)
	}
	if rep.ExpectedConjunctions != 0 {
		t.Errorf("expected conjunctions = %v", rep.ExpectedConjunctions)
	}
}

func TestDecayerCrossesLowerShells(t *testing.T) {
	a := NewAnalyzer(shells())
	// 0.2 km/h ≈ 4.8 km/day: each 5 km band takes ~25 h to cross.
	tracks := []*core.Track{
		steady(1, 550, 2000), steady(2, 550, 2000), steady(3, 540, 2000),
		decayer(9, 570, 0.2, 240, 2000),
	}
	rep, err := a.Analyze(tracks)
	if err != nil {
		t.Fatal(err)
	}
	crossed := map[string]bool{}
	for _, c := range rep.Crossings {
		if c.Catalog != 9 {
			t.Errorf("unexpected crosser %d", c.Catalog)
		}
		crossed[c.Shell] = true
		if c.DwellHours < 10 || c.DwellHours > 40 {
			t.Errorf("dwell in %s = %v h, want ~25", c.Shell, c.DwellHours)
		}
	}
	if !crossed["s550"] || !crossed["s540"] {
		t.Errorf("crossed = %v, want both lower shells", crossed)
	}
	if crossed["s570"] {
		t.Error("home shell counted as crossing")
	}
	if rep.ExpectedConjunctions <= 0 {
		t.Error("no conjunction pressure from a decayer through populated shells")
	}
}

func TestPressureScalesWithOccupancy(t *testing.T) {
	build := func(residents int) float64 {
		tracks := []*core.Track{decayer(99, 570, 0.2, 0, 2000)}
		for i := 0; i < residents; i++ {
			tracks = append(tracks, steady(i+1, 550, 2000))
		}
		rep, err := NewAnalyzer(shells()).Analyze(tracks)
		if err != nil {
			t.Fatal(err)
		}
		return rep.ExpectedConjunctions
	}
	p10, p100 := build(10), build(100)
	if p100 <= p10 {
		t.Fatalf("pressure did not grow with occupancy: %v vs %v", p10, p100)
	}
	ratio := p100 / p10
	if ratio < 8 || ratio > 12 {
		t.Errorf("pressure ratio = %v, want ~10 (linear in density)", ratio)
	}
}

func TestExpectedEncountersMagnitude(t *testing.T) {
	a := NewAnalyzer(shells())
	// 500 residents, 30 h dwell: the kinetic-gas estimate lands at the
	// fraction-of-an-event scale — the screening-burden regime, not certain
	// collision.
	got := a.expectedEncounters(shells()[1], 500, 30)
	if got < 0.05 || got > 5 {
		t.Errorf("expected encounters = %v, want O(0.1-1)", got)
	}
	if a.expectedEncounters(shells()[1], 0, 30) != 0 {
		t.Error("zero residents must mean zero pressure")
	}
	if a.expectedEncounters(shells()[1], 500, 0) != 0 {
		t.Error("zero dwell must mean zero pressure")
	}
}

func TestSingleObservationTransitCountsFloor(t *testing.T) {
	a := NewAnalyzer(shells())
	// A fast decayer sampled once inside the 540 band.
	tr := track(7, 570, [][2]float64{
		{0, 570}, {12, 570}, {24, 552}, {36, 541}, {48, 500},
	})
	rep, err := a.Analyze([]*core.Track{tr, steady(1, 540, 100)})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range rep.Crossings {
		if c.Shell == "s540" {
			found = true
			if c.DwellHours < 1 {
				t.Errorf("dwell floor not applied: %v", c.DwellHours)
			}
		}
	}
	if !found {
		t.Error("single-sample transit not detected")
	}
}

func TestCrossingsOrdered(t *testing.T) {
	a := NewAnalyzer(shells())
	tracks := []*core.Track{
		decayer(9, 570, 0.2, 0, 2000),
		decayer(8, 570, 0.2, 480, 2000),
		steady(1, 550, 2000),
	}
	rep, err := a.Analyze(tracks)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.Crossings); i++ {
		if rep.Crossings[i].Entered.Before(rep.Crossings[i-1].Entered) {
			t.Fatal("crossings not time-ordered")
		}
	}
	if math.IsNaN(rep.DwellSatHours) || rep.DwellSatHours <= 0 {
		t.Errorf("dwell total = %v", rep.DwellSatHours)
	}
}
