package conjunction

import (
	"fmt"
	"time"

	"cosmicdance/internal/orbit"
)

// CloseApproach is the minimum separation found between two objects over a
// screening window.
type CloseApproach struct {
	At          time.Time
	MissKm      float64
	RelSpeedKmS float64
}

// ScreenPair propagates two element sets across [from, to] and returns their
// closest approach: a coarse scan at step followed by a fine scan around the
// coarse minimum. This is the pair-level refinement of the kinetic-gas
// estimate — what an operator's conjunction-screening run computes for each
// (decayer, resident) pair flagged by the band analysis.
func ScreenPair(epochA time.Time, a orbit.Elements, epochB time.Time, b orbit.Elements, from, to time.Time, step time.Duration) (CloseApproach, error) {
	if !to.After(from) {
		return CloseApproach{}, fmt.Errorf("conjunction: empty screening window")
	}
	if step <= 0 {
		return CloseApproach{}, fmt.Errorf("conjunction: step must be positive")
	}
	pa, err := orbit.NewPropagator(epochA, a)
	if err != nil {
		return CloseApproach{}, fmt.Errorf("conjunction: object A: %w", err)
	}
	pb, err := orbit.NewPropagator(epochB, b)
	if err != nil {
		return CloseApproach{}, fmt.Errorf("conjunction: object B: %w", err)
	}

	sep := func(t time.Time) float64 {
		return pa.StateAt(t).Distance(pb.StateAt(t))
	}

	// Coarse scan.
	best := from
	bestD := sep(from)
	for t := from.Add(step); !t.After(to); t = t.Add(step) {
		if d := sep(t); d < bestD {
			best, bestD = t, d
		}
	}
	// Fine scan around the coarse minimum, shrinking the step to one second.
	lo, hi := best.Add(-step), best.Add(step)
	if lo.Before(from) {
		lo = from
	}
	if hi.After(to) {
		hi = to
	}
	for fine := step / 8; fine >= time.Second; fine /= 8 {
		for t := lo; !t.After(hi); t = t.Add(fine) {
			if d := sep(t); d < bestD {
				best, bestD = t, d
			}
		}
		lo, hi = best.Add(-fine), best.Add(fine)
		if lo.Before(from) {
			lo = from
		}
		if hi.After(to) {
			hi = to
		}
	}

	sa, sb := pa.StateAt(best), pb.StateAt(best)
	dvx, dvy, dvz := sa.VX-sb.VX, sa.VY-sb.VY, sa.VZ-sb.VZ
	rel := orbit.StateVector{VX: dvx, VY: dvy, VZ: dvz}.Speed()
	return CloseApproach{At: best, MissKm: bestD, RelSpeedKmS: rel}, nil
}
