// Package conjunction implements the paper's §6 Kessler-syndrome extension:
// quantifying the collision-screening pressure that storm-driven orbital
// decay creates. A satellite that decays out of its shell falls through
// every shell beneath it; while inside a foreign shell's altitude band it
// accumulates conjunction exposure against that shell's residents. The
// package detects such crossings in cleaned CosmicDance tracks and converts
// dwell time into an expected-encounter figure with a kinetic-gas model —
// the standard first-order estimate used in debris-environment studies.
package conjunction

import (
	"fmt"
	"math"
	"sort"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
	"cosmicdance/internal/units"
)

// Crossing is one satellite's transit of a foreign shell's altitude band.
type Crossing struct {
	Catalog    int
	Shell      string
	Entered    time.Time
	Exited     time.Time
	DwellHours float64
}

// ShellOccupancy is a shell and its resident population.
type ShellOccupancy struct {
	Shell constellation.Shell
	Count int
}

// Report summarizes the conjunction pressure over an analysis.
type Report struct {
	Occupancy []ShellOccupancy
	Crossings []Crossing
	// DwellSatHours sums the time crossers spent inside foreign bands.
	DwellSatHours float64
	// ExpectedConjunctions is the kinetic-gas estimate of close approaches
	// within ScreeningRadiusKm accumulated over all crossings.
	ExpectedConjunctions float64
}

// Analyzer detects shell crossings and scores them.
type Analyzer struct {
	Shells []constellation.Shell
	// HalfWidthKm is the half-width of each shell's altitude band. The
	// default is half the ~5 km inter-shell gap, so bands tile the stack
	// without overlapping.
	HalfWidthKm float64
	// ScreeningRadiusKm is the close-approach distance that counts as a
	// conjunction (operators screen at kilometre scale).
	ScreeningRadiusKm float64
	// RelVelocityKmS is the typical relative speed of a crosser against
	// shell residents (crossing geometries approach orbital speed).
	RelVelocityKmS float64
	// OwnShellToleranceKm matches a track to its home shell.
	OwnShellToleranceKm float64
}

// NewAnalyzer returns an analyzer over the given shells with standard
// screening parameters. Shells sharing an altitude (Starlink's two 560 km
// shells) are merged into one band so crossings are not double-counted.
func NewAnalyzer(shells []constellation.Shell) *Analyzer {
	merged := make([]constellation.Shell, 0, len(shells))
	byAlt := make(map[float64]int)
	for _, sh := range shells {
		if i, ok := byAlt[sh.AltitudeKm]; ok {
			merged[i].Name = merged[i].Name + "+" + sh.Name
			merged[i].Planes += sh.Planes
			merged[i].SatsPerPlane = 0 // mixed; per-plane count is no longer meaningful
			continue
		}
		byAlt[sh.AltitudeKm] = len(merged)
		merged = append(merged, sh)
	}
	return &Analyzer{
		Shells:              merged,
		HalfWidthKm:         constellation.InterShellGapKm / 2,
		ScreeningRadiusKm:   1,
		RelVelocityKmS:      10,
		OwnShellToleranceKm: 10,
	}
}

// homeShell returns the index of the shell a track belongs to, or -1.
func (a *Analyzer) homeShell(opAltKm float64) int {
	best, bestDiff := -1, a.OwnShellToleranceKm
	for i, sh := range a.Shells {
		if d := math.Abs(sh.AltitudeKm - opAltKm); d <= bestDiff {
			best, bestDiff = i, d
		}
	}
	return best
}

// isResidentBand reports whether a shell band overlaps the track's own
// station-keeping envelope — such bands are home territory, not crossings.
// This matters when two shells share an altitude (Starlink's 560 km shells):
// residents of one must not be counted as perpetual crossers of the other.
func (a *Analyzer) isResidentBand(opAltKm float64, sh constellation.Shell) bool {
	return math.Abs(sh.AltitudeKm-opAltKm) <= a.HalfWidthKm+3
}

// Analyze scans the tracks for foreign-shell crossings and scores the
// aggregate conjunction pressure. Occupancy is derived from the tracks
// themselves (their home shells).
func (a *Analyzer) Analyze(tracks []*core.Track) (*Report, error) {
	if len(a.Shells) == 0 {
		return nil, fmt.Errorf("conjunction: no shells configured")
	}
	if len(tracks) == 0 {
		return nil, fmt.Errorf("conjunction: no tracks")
	}
	rep := &Report{}
	counts := make([]int, len(a.Shells))
	for _, tr := range tracks {
		if home := a.homeShell(tr.OperationalAltKm); home >= 0 {
			counts[home]++
		}
	}
	for i, sh := range a.Shells {
		rep.Occupancy = append(rep.Occupancy, ShellOccupancy{Shell: sh, Count: counts[i]})
	}

	for _, tr := range tracks {
		for shellIdx, sh := range a.Shells {
			if a.isResidentBand(tr.OperationalAltKm, sh) {
				continue
			}
			for _, c := range a.crossings(tr, sh) {
				rep.Crossings = append(rep.Crossings, c)
				rep.DwellSatHours += c.DwellHours
				rep.ExpectedConjunctions += a.expectedEncounters(sh, counts[shellIdx], c.DwellHours)
			}
		}
	}
	sort.Slice(rep.Crossings, func(i, j int) bool {
		return rep.Crossings[i].Entered.Before(rep.Crossings[j].Entered)
	})
	return rep, nil
}

// crossings extracts the maximal in-band intervals of one track against one
// shell band. Dwell is measured between consecutive observations whose
// altitudes are inside the band (the TLE cadence bounds the resolution,
// exactly as it does for the paper's analyses).
func (a *Analyzer) crossings(tr *core.Track, sh constellation.Shell) []Crossing {
	lo, hi := sh.AltitudeKm-a.HalfWidthKm, sh.AltitudeKm+a.HalfWidthKm
	var out []Crossing
	var open *Crossing
	for _, p := range tr.Points {
		in := float64(p.AltKm) >= lo && float64(p.AltKm) < hi
		switch {
		case in && open == nil:
			open = &Crossing{Catalog: tr.Catalog, Shell: sh.Name, Entered: p.Time(), Exited: p.Time()}
		case in:
			open.Exited = p.Time()
		case !in && open != nil:
			open.DwellHours = open.Exited.Sub(open.Entered).Hours()
			// A single in-band observation still represents a transit: count
			// the sampling interval floor of one hour.
			if open.DwellHours < 1 {
				open.DwellHours = 1
			}
			out = append(out, *open)
			open = nil
		}
	}
	if open != nil {
		open.DwellHours = open.Exited.Sub(open.Entered).Hours()
		if open.DwellHours < 1 {
			open.DwellHours = 1
		}
		out = append(out, *open)
	}
	return out
}

// expectedEncounters is the kinetic-gas estimate: λ = n·σ·v·T with the
// resident spatial density n over the band volume, screening cross-section
// σ = π·R², relative speed v, and dwell time T.
func (a *Analyzer) expectedEncounters(sh constellation.Shell, residents int, dwellHours float64) float64 {
	if residents == 0 || dwellHours <= 0 {
		return 0
	}
	r := units.EarthRadiusKm + sh.AltitudeKm
	volume := 4 * math.Pi * r * r * (2 * a.HalfWidthKm) // km³
	density := float64(residents) / volume              // 1/km³
	sigma := math.Pi * a.ScreeningRadiusKm * a.ScreeningRadiusKm
	return density * sigma * a.RelVelocityKmS * dwellHours * 3600
}
