package conjunction

import (
	"math"
	"testing"
	"time"

	"cosmicdance/internal/orbit"
	"cosmicdance/internal/units"
)

var sc0 = time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)

func circular(alt float64, inc, raan, ma units.Degrees) orbit.Elements {
	mm, err := orbit.MeanMotionFromAltitude(units.Kilometers(alt))
	if err != nil {
		panic(err)
	}
	return orbit.Elements{
		Eccentricity: 0.0001,
		MeanMotion:   mm,
		Inclination:  inc,
		RAAN:         raan,
		ArgPerigee:   0,
		MeanAnomaly:  ma,
	}
}

func TestScreenPairValidation(t *testing.T) {
	e := circular(550, 53, 0, 0)
	if _, err := ScreenPair(sc0, e, sc0, e, sc0, sc0, time.Minute); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := ScreenPair(sc0, e, sc0, e, sc0, sc0.Add(time.Hour), 0); err == nil {
		t.Error("zero step accepted")
	}
	bad := e
	bad.MeanMotion = 0
	if _, err := ScreenPair(sc0, bad, sc0, e, sc0, sc0.Add(time.Hour), time.Minute); err == nil {
		t.Error("invalid elements accepted")
	}
}

func TestScreenPairIdenticalOrbits(t *testing.T) {
	e := circular(550, 53, 10, 20)
	ca, err := ScreenPair(sc0, e, sc0, e, sc0, sc0.Add(2*time.Hour), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if ca.MissKm > 0.001 {
		t.Errorf("identical orbits separated by %v km", ca.MissKm)
	}
	if ca.RelSpeedKmS > 0.001 {
		t.Errorf("identical orbits with relative speed %v", ca.RelSpeedKmS)
	}
}

func TestScreenPairInTrainSeparation(t *testing.T) {
	// Same orbit, mean anomaly offset δ: the chord distance stays constant
	// at 2 r sin(δ/2) — the classic in-train geometry of a Starlink plane.
	const deltaDeg = 2.0
	a := circular(550, 53, 10, 0)
	b := circular(550, 53, 10, deltaDeg)
	ca, err := ScreenPair(sc0, a, sc0, b, sc0, sc0.Add(3*time.Hour), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	r := 550 + units.EarthRadiusKm
	want := 2 * r * math.Sin(deltaDeg/2*math.Pi/180)
	if math.Abs(ca.MissKm-want) > want*0.02 {
		t.Errorf("in-train separation = %v km, want ~%v", ca.MissKm, want)
	}
}

func TestScreenPairCrossingPlanes(t *testing.T) {
	// Two differently inclined orbits sharing their ascending node, both at
	// the node at the epoch: a genuine conjunction at t=0 with a
	// crossing-scale relative speed. (Same-period orbits keep constant
	// phase, so the node passage must be synchronized by construction.)
	a := circular(550, 53, 0, 0)
	b := circular(550, 97.6, 0, 0)
	ca, err := ScreenPair(sc0, a, sc0, b, sc0.Add(-time.Hour), sc0.Add(time.Hour), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ca.MissKm > 1 {
		t.Errorf("synchronized node crossing missed by %v km, want ~0", ca.MissKm)
	}
	// Relative speed for a 44.6-degree plane change at 7.6 km/s is
	// 2 v sin(Δi/2) ≈ 5.8 km/s.
	if ca.RelSpeedKmS < 4 || ca.RelSpeedKmS > 8 {
		t.Errorf("crossing relative speed = %v km/s, want ~5.8", ca.RelSpeedKmS)
	}
	if d := ca.At.Sub(sc0); d > time.Minute || d < -time.Minute {
		t.Errorf("approach at %v, want near the epoch", ca.At)
	}
}

func TestScreenPairAltitudeSeparationIsFloor(t *testing.T) {
	// 10 km of altitude separation bounds the miss distance from below.
	a := circular(550, 53, 0, 0)
	b := circular(560, 53, 0, 180)
	ca, err := ScreenPair(sc0, a, sc0, b, sc0, sc0.Add(6*time.Hour), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if ca.MissKm < 9.9 {
		t.Errorf("miss %v km below the 10 km shell separation", ca.MissKm)
	}
}
