package tle

import (
	"strings"
	"testing"
)

// FuzzParse hammers the TLE parser with mutated lines: it must never panic,
// and anything it accepts must re-encode to lines it accepts again.
func FuzzParse(f *testing.F) {
	f.Add(issLine1, issLine2)
	f.Add(strings.Repeat("1", 69), strings.Repeat("2", 69))
	f.Add("1 00001U 20001A   20001.00000000  .00000000  00000-0  00000-0 0    07",
		"2 00001  53.0000 000.0000 0000000 000.0000 000.0000 15.05000000    07")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, l1, l2 string) {
		parsed, err := Parse(l1, l2)
		if err != nil {
			return
		}
		// Accepted input must survive a format/parse cycle (when the values
		// are representable in the fixed-width fields).
		o1, o2, err := parsed.Format()
		if err != nil {
			return
		}
		if _, err := Parse(o1, o2); err != nil {
			t.Fatalf("re-parse of own output failed: %v\n%q\n%q", err, o1, o2)
		}
	})
}

// FuzzReader feeds arbitrary text through the non-strict stream reader: it
// must terminate without panicking regardless of input shape.
func FuzzReader(f *testing.F) {
	f.Add("STARLINK-1\n" + issLine1 + "\n" + issLine2 + "\n")
	f.Add("garbage\nmore garbage\n1 partial")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		sets, err := ReadAll(strings.NewReader(input))
		if err != nil && sets == nil && len(input) == 0 {
			t.Fatalf("empty input errored: %v", err)
		}
	})
}
