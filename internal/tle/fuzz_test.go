package tle

import (
	"math"
	"strings"
	"testing"
	"time"

	"cosmicdance/internal/units"
)

// FuzzParse hammers the TLE parser with mutated lines: it must never panic,
// and anything it accepts must re-encode to lines it accepts again.
func FuzzParse(f *testing.F) {
	f.Add(issLine1, issLine2)
	f.Add(strings.Repeat("1", 69), strings.Repeat("2", 69))
	f.Add("1 00001U 20001A   20001.00000000  .00000000  00000-0  00000-0 0    07",
		"2 00001  53.0000 000.0000 0000000 000.0000 000.0000 15.05000000    07")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, l1, l2 string) {
		parsed, err := Parse(l1, l2)
		if err != nil {
			return
		}
		// Anything the parser accepts must satisfy the format's invariants:
		// matching checksums, a sane epoch, and plain finite field values —
		// a parser that admits NaN or hex-float spellings would smuggle
		// corruption into the dataset as "valid" trajectories.
		for i, l := range []string{l1, l2} {
			line := strings.TrimRight(l, " \r\n")
			if int(line[68]-'0') != Checksum(line) {
				t.Fatalf("accepted line %d with bad checksum: %q", i+1, line)
			}
		}
		if parsed.CatalogNumber < 0 {
			t.Fatalf("accepted negative catalog number %d", parsed.CatalogNumber)
		}
		if y := parsed.Epoch.Year(); y < 1957 || y > 2057 {
			t.Fatalf("accepted epoch outside the NORAD window: %v", parsed.Epoch)
		}
		if parsed.Eccentricity < 0 || parsed.Eccentricity >= 1 {
			t.Fatalf("accepted eccentricity %v outside [0,1)", parsed.Eccentricity)
		}
		for name, v := range map[string]float64{
			"mean motion dot":  parsed.MeanMotionDot,
			"mean motion ddot": parsed.MeanMotionDDot,
			"bstar":            parsed.BStar,
			"inclination":      float64(parsed.Inclination),
			"raan":             float64(parsed.RAAN),
			"arg perigee":      float64(parsed.ArgPerigee),
			"mean anomaly":     float64(parsed.MeanAnomaly),
			"mean motion":      float64(parsed.MeanMotion),
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted non-finite %s: %v", name, v)
			}
		}
		// Accepted input must survive a format/parse cycle (when the values
		// are representable in the fixed-width fields).
		o1, o2, err := parsed.Format()
		if err != nil {
			return
		}
		if _, err := Parse(o1, o2); err != nil {
			t.Fatalf("re-parse of own output failed: %v\n%q\n%q", err, o1, o2)
		}
	})
}

// FuzzRoundTrip drives the encoder from field values: any element set the
// encoder agrees to format must decode back to the same trajectory-relevant
// values. A lossy codec here would silently move satellites.
func FuzzRoundTrip(f *testing.F) {
	f.Add(44713, int64(1577836800), 0.0005, 53.0, 15.05, 4e-4)
	f.Add(1, int64(0), 0.0, 0.0, 0.1, 0.0)
	f.Add(99999, int64(2000000000), 0.9999999, 179.9999, 16.5, -1.1e-3)
	f.Fuzz(func(t *testing.T, catalog int, epoch int64, ecc, incl, mm, bstar float64) {
		in := &TLE{
			CatalogNumber: catalog,
			Epoch:         time.Unix(epoch, 0).UTC(),
			Eccentricity:  ecc,
			Inclination:   units.Degrees(incl),
			MeanMotion:    units.RevsPerDay(mm),
			BStar:         bstar,
		}
		l1, l2, err := in.Format()
		if err != nil {
			return // out-of-range values are rejected, not truncated
		}
		out, err := Parse(l1, l2)
		if err != nil {
			t.Fatalf("own output rejected: %v\n%q\n%q", err, l1, l2)
		}
		if out.CatalogNumber != in.CatalogNumber {
			t.Fatalf("catalog %d -> %d", in.CatalogNumber, out.CatalogNumber)
		}
		if d := out.Epoch.Sub(in.Epoch); d > time.Millisecond || d < -time.Millisecond {
			t.Fatalf("epoch moved by %v (%v -> %v)", d, in.Epoch, out.Epoch)
		}
		if math.Abs(out.Eccentricity-in.Eccentricity) > 1e-7 {
			t.Fatalf("eccentricity %v -> %v", in.Eccentricity, out.Eccentricity)
		}
		if math.Abs(float64(out.Inclination-in.Inclination)) > 1e-4 {
			t.Fatalf("inclination %v -> %v", in.Inclination, out.Inclination)
		}
		if math.Abs(float64(out.MeanMotion-in.MeanMotion)) > 1e-8 {
			t.Fatalf("mean motion %v -> %v", in.MeanMotion, out.MeanMotion)
		}
	})
}

// FuzzReader feeds arbitrary text through the non-strict stream reader: it
// must terminate without panicking regardless of input shape.
func FuzzReader(f *testing.F) {
	f.Add("STARLINK-1\n" + issLine1 + "\n" + issLine2 + "\n")
	f.Add("garbage\nmore garbage\n1 partial")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		sets, err := ReadAll(strings.NewReader(input))
		if err != nil && sets == nil && len(input) == 0 {
			t.Fatalf("empty input errored: %v", err)
		}
	})
}
