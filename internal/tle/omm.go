package tle

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"cosmicdance/internal/units"
)

// OMM is the Orbit Mean-Elements Message, the CCSDS-standard JSON record
// Space-Track serves alongside classic TLE text (gp/gp_history with
// format/json). Field names follow the Space-Track JSON schema so archives
// downloaded from the real service parse unchanged.
type OMM struct {
	ObjectName   string  `json:"OBJECT_NAME"`
	ObjectID     string  `json:"OBJECT_ID"` // international designator
	Epoch        string  `json:"EPOCH"`     // ISO 8601
	MeanMotion   float64 `json:"MEAN_MOTION"`
	Eccentricity float64 `json:"ECCENTRICITY"`
	Inclination  float64 `json:"INCLINATION"`
	RAAN         float64 `json:"RA_OF_ASC_NODE"`
	ArgPerigee   float64 `json:"ARG_OF_PERICENTER"`
	MeanAnomaly  float64 `json:"MEAN_ANOMALY"`
	// Identification and drag.
	NoradCatID     int     `json:"NORAD_CAT_ID"`
	ElementSetNo   int     `json:"ELEMENT_SET_NO"`
	RevAtEpoch     int     `json:"REV_AT_EPOCH"`
	BStar          float64 `json:"BSTAR"`
	MeanMotionDot  float64 `json:"MEAN_MOTION_DOT"`
	MeanMotionDDot float64 `json:"MEAN_MOTION_DDOT"`
	Classification string  `json:"CLASSIFICATION_TYPE"`
}

// ommEpochLayouts are the timestamp spellings seen in Space-Track exports.
var ommEpochLayouts = []string{
	"2006-01-02T15:04:05.999999",
	"2006-01-02T15:04:05.999999Z07:00",
	time.RFC3339Nano,
}

// ToOMM converts an element set into its OMM representation.
func (t *TLE) ToOMM() OMM {
	cls := string(t.Classification)
	if t.Classification == 0 {
		cls = "U"
	}
	return OMM{
		ObjectName:     t.Name,
		ObjectID:       t.IntlDesignator,
		Epoch:          t.Epoch.UTC().Format("2006-01-02T15:04:05.999999"),
		MeanMotion:     float64(t.MeanMotion),
		Eccentricity:   t.Eccentricity,
		Inclination:    float64(t.Inclination),
		RAAN:           float64(t.RAAN),
		ArgPerigee:     float64(t.ArgPerigee),
		MeanAnomaly:    float64(t.MeanAnomaly),
		NoradCatID:     t.CatalogNumber,
		ElementSetNo:   t.ElementSet,
		RevAtEpoch:     t.RevNumber,
		BStar:          t.BStar,
		MeanMotionDot:  t.MeanMotionDot,
		MeanMotionDDot: t.MeanMotionDDot,
		Classification: cls,
	}
}

// ToTLE converts the message back into an element set.
func (o OMM) ToTLE() (*TLE, error) {
	var epoch time.Time
	var err error
	for _, layout := range ommEpochLayouts {
		if epoch, err = time.Parse(layout, o.Epoch); err == nil {
			break
		}
	}
	if err != nil {
		return nil, fmt.Errorf("tle: bad OMM epoch %q: %w", o.Epoch, err)
	}
	cls := byte('U')
	if o.Classification != "" {
		cls = o.Classification[0]
	}
	t := &TLE{
		Name:           o.ObjectName,
		CatalogNumber:  o.NoradCatID,
		Classification: cls,
		IntlDesignator: o.ObjectID,
		Epoch:          epoch.UTC(),
		MeanMotionDot:  o.MeanMotionDot,
		MeanMotionDDot: o.MeanMotionDDot,
		BStar:          o.BStar,
		ElementSet:     o.ElementSetNo,
		Inclination:    units.Degrees(o.Inclination),
		RAAN:           units.Degrees(o.RAAN),
		Eccentricity:   o.Eccentricity,
		ArgPerigee:     units.Degrees(o.ArgPerigee),
		MeanAnomaly:    units.Degrees(o.MeanAnomaly),
		MeanMotion:     units.RevsPerDay(o.MeanMotion),
		RevNumber:      o.RevAtEpoch,
	}
	if err := t.Elements().Validate(); err != nil {
		return nil, fmt.Errorf("tle: OMM for %d: %w", o.NoradCatID, err)
	}
	return t, nil
}

// WriteOMM encodes element sets as a JSON array of OMM records (Space-Track's
// format/json shape).
func WriteOMM(w io.Writer, sets []*TLE) error {
	records := make([]OMM, len(sets))
	for i, t := range sets {
		records[i] = t.ToOMM()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(records)
}

// ReadOMM decodes a JSON array of OMM records into element sets.
func ReadOMM(r io.Reader) ([]*TLE, error) {
	var records []OMM
	dec := json.NewDecoder(r)
	if err := dec.Decode(&records); err != nil {
		return nil, fmt.Errorf("tle: decoding OMM: %w", err)
	}
	out := make([]*TLE, 0, len(records))
	for _, o := range records {
		t, err := o.ToTLE()
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
