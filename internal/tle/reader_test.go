package tle

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"cosmicdance/internal/units"
)

func mustFormat(t *testing.T, tl *TLE) string {
	t.Helper()
	l1, l2, err := tl.Format()
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return l1 + "\n" + l2 + "\n"
}

func sampleTLE(cat int, epoch time.Time, mm float64) *TLE {
	return &TLE{
		CatalogNumber:  cat,
		IntlDesignator: "19074A",
		Epoch:          epoch,
		MeanMotion:     units.RevsPerDay(mm),
		Inclination:    53,
		BStar:          0.5e-4,
		RAAN:           120,
		ArgPerigee:     90,
		MeanAnomaly:    45,
		Eccentricity:   0.0001,
		ElementSet:     1,
		RevNumber:      1000,
	}
}

var epoch0 = time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)

func TestReaderTwoLine(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(mustFormat(t, sampleTLE(44713, epoch0, 15.05)))
	buf.WriteString(mustFormat(t, sampleTLE(45766, epoch0.Add(time.Hour), 15.06)))

	sets, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 {
		t.Fatalf("len = %d", len(sets))
	}
	if sets[0].CatalogNumber != 44713 || sets[1].CatalogNumber != 45766 {
		t.Errorf("catalog numbers = %d, %d", sets[0].CatalogNumber, sets[1].CatalogNumber)
	}
}

func TestReaderThreeLine(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("STARLINK-1007\n")
	buf.WriteString(mustFormat(t, sampleTLE(44713, epoch0, 15.05)))
	buf.WriteString("0 STARLINK-1008\n") // alternative "0 " prefix form
	buf.WriteString(mustFormat(t, sampleTLE(44714, epoch0, 15.05)))

	sets, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 {
		t.Fatalf("len = %d", len(sets))
	}
	if sets[0].Name != "STARLINK-1007" {
		t.Errorf("name[0] = %q", sets[0].Name)
	}
	if sets[1].Name != "STARLINK-1008" {
		t.Errorf("name[1] = %q", sets[1].Name)
	}
}

func TestReaderSkipsBlankLines(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("\n\n")
	buf.WriteString(mustFormat(t, sampleTLE(44713, epoch0, 15.05)))
	buf.WriteString("\n")
	sets, err := ReadAll(&buf)
	if err != nil || len(sets) != 1 {
		t.Fatalf("sets=%d err=%v", len(sets), err)
	}
}

func TestReaderSkipsCorruptRecordsNonStrict(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(mustFormat(t, sampleTLE(44713, epoch0, 15.05)))
	buf.WriteString("1 GARBAGE LINE THAT IS NOT A TLE AT ALL\n")
	buf.WriteString(mustFormat(t, sampleTLE(44714, epoch0, 15.05)))

	r := NewReader(&buf)
	var sets []*TLE
	for {
		tl, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("non-strict Read: %v", err)
		}
		sets = append(sets, tl)
	}
	if len(sets) != 2 {
		t.Fatalf("parsed %d sets, want 2 (corrupt one skipped)", len(sets))
	}
	if r.Skipped() == 0 {
		t.Error("Skipped() = 0, want > 0")
	}
}

func TestReaderStrictFailsOnCorrupt(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("1 GARBAGE\nALSO GARBAGE\n")
	r := NewReader(&buf)
	r.Strict = true
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("strict Read err = %v, want parse error", err)
	}
}

func TestReaderTruncatedStream(t *testing.T) {
	l1, _, err := sampleTLE(44713, epoch0, 15.05).Format()
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(strings.NewReader(l1 + "\n"))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("truncated non-strict err = %v, want EOF", err)
	}
	r2 := NewReader(strings.NewReader(l1 + "\n"))
	r2.Strict = true
	if _, err := r2.Read(); err == nil || err == io.EOF {
		t.Fatalf("truncated strict err = %v, want error", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	in := []*TLE{
		sampleTLE(44713, epoch0, 15.05),
		sampleTLE(45766, epoch0.Add(6*time.Hour), 15.3),
	}
	in[0].Name = "STARLINK-1007"
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0].Name != "STARLINK-1007" || out[1].Name != "" {
		t.Errorf("names = %q, %q", out[0].Name, out[1].Name)
	}
	if out[1].CatalogNumber != 45766 {
		t.Errorf("catalog = %d", out[1].CatalogNumber)
	}
}

func TestWritePropagatesFormatError(t *testing.T) {
	bad := sampleTLE(44713, epoch0, 15.05)
	bad.Eccentricity = 2 // unformattable
	if err := Write(io.Discard, []*TLE{bad}); err == nil {
		t.Error("Write accepted unformattable TLE")
	}
}

func TestCatalogGrouping(t *testing.T) {
	c := NewCatalog([]*TLE{
		sampleTLE(45766, epoch0.Add(24*time.Hour), 15.06),
		sampleTLE(44713, epoch0, 15.05),
		sampleTLE(45766, epoch0, 15.05),
		sampleTLE(45766, epoch0.Add(12*time.Hour), 15.055),
	})
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.TotalSets() != 4 {
		t.Errorf("TotalSets = %d", c.TotalSets())
	}
	nums := c.Numbers()
	if len(nums) != 2 || nums[0] != 44713 || nums[1] != 45766 {
		t.Errorf("Numbers = %v", nums)
	}
	h := c.Object(45766)
	if h == nil || len(h.Sets) != 3 {
		t.Fatalf("history = %+v", h)
	}
	// Epoch-ordered regardless of insertion order.
	for i := 1; i < len(h.Sets); i++ {
		if h.Sets[i].Epoch.Before(h.Sets[i-1].Epoch) {
			t.Errorf("history out of order at %d", i)
		}
	}
	if c.Object(99999) != nil {
		t.Error("missing object should be nil")
	}
}

func TestHistoryLatestAtWindow(t *testing.T) {
	c := NewCatalog(nil)
	for i := 0; i < 5; i++ {
		c.Add(sampleTLE(44713, epoch0.Add(time.Duration(i)*12*time.Hour), 15.05))
	}
	h := c.Object(44713)
	if h.Latest().Epoch != epoch0.Add(48*time.Hour) {
		t.Errorf("Latest epoch = %v", h.Latest().Epoch)
	}
	if got := h.At(epoch0.Add(13 * time.Hour)); !got.Epoch.Equal(epoch0.Add(12 * time.Hour)) {
		t.Errorf("At(+13h).Epoch = %v", got.Epoch)
	}
	if got := h.At(epoch0.Add(-time.Hour)); got != nil {
		t.Errorf("At before history = %v", got)
	}
	w := h.Window(epoch0.Add(12*time.Hour), epoch0.Add(36*time.Hour))
	if len(w) != 3 {
		t.Errorf("Window len = %d, want 3", len(w))
	}
	if got := h.Window(epoch0.Add(100*time.Hour), epoch0.Add(200*time.Hour)); got != nil {
		t.Errorf("empty window = %v", got)
	}
	var nilH *History
	if nilH.Latest() != nil || nilH.At(epoch0) != nil || nilH.Window(epoch0, epoch0) != nil {
		t.Error("nil history must be safe")
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Random physically-plausible element sets must survive
	// format -> parse within field precision.
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		in := &TLE{
			CatalogNumber:  rng.Intn(100000),
			IntlDesignator: "20001B",
			Epoch:          time.Date(2020+rng.Intn(5), time.Month(1+rng.Intn(12)), 1+rng.Intn(28), rng.Intn(24), rng.Intn(60), rng.Intn(60), 0, time.UTC),
			MeanMotion:     units.RevsPerDay(1 + rng.Float64()*16),
			MeanMotionDot:  (rng.Float64() - 0.5) * 1e-3,
			BStar:          (rng.Float64() - 0.5) * 1e-3,
			Inclination:    units.Degrees(rng.Float64() * 180),
			RAAN:           units.Degrees(rng.Float64() * 360),
			ArgPerigee:     units.Degrees(rng.Float64() * 360),
			MeanAnomaly:    units.Degrees(rng.Float64() * 360),
			Eccentricity:   rng.Float64() * 0.1,
			ElementSet:     rng.Intn(10000),
			RevNumber:      rng.Intn(100000),
		}
		l1, l2, err := in.Format()
		if err != nil {
			return false
		}
		out, err := Parse(l1, l2)
		if err != nil {
			return false
		}
		ok := out.CatalogNumber == in.CatalogNumber &&
			math.Abs(float64(out.MeanMotion-in.MeanMotion)) < 1e-7 &&
			math.Abs(out.Eccentricity-in.Eccentricity) < 1e-7 &&
			math.Abs(float64(out.Inclination-in.Inclination)) < 1e-3 &&
			math.Abs(float64(out.RAAN-in.RAAN)) < 1e-3 &&
			out.Epoch.Sub(in.Epoch).Abs() < 2*time.Millisecond
		if !ok {
			t.Logf("mismatch:\nin:  %+v\nout: %+v", in, out)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChecksumInvariantProperty(t *testing.T) {
	// Every formatted line must self-checksum.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		in := sampleTLE(rng.Intn(100000), epoch0.Add(time.Duration(rng.Intn(10000))*time.Hour), 10+rng.Float64()*6)
		l1, l2, err := in.Format()
		if err != nil {
			t.Fatal(err)
		}
		if int(l1[68]-'0') != Checksum(l1) {
			t.Fatalf("line1 checksum broken: %s", l1)
		}
		if int(l2[68]-'0') != Checksum(l2) {
			t.Fatalf("line2 checksum broken: %s", l2)
		}
	}
}
