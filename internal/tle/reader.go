package tle

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Reader streams element sets from 2LE or 3LE (name line + two element
// lines) text, the formats CelesTrak and Space-Track serve.
type Reader struct {
	s       *bufio.Scanner
	pending string // a lookahead line not yet consumed
	line    int
	// Strict controls error handling: when false (the default for bulk
	// archive ingestion), records that fail to parse are skipped and counted
	// instead of aborting the stream, because real tracking archives contain
	// corrupt records.
	Strict  bool
	skipped int
}

// NewReader wraps r in a TLE stream reader.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 256), 1024)
	return &Reader{s: s}
}

// Skipped reports how many malformed records were skipped (non-strict mode).
func (r *Reader) Skipped() int { return r.skipped }

func (r *Reader) next() (string, bool) {
	if r.pending != "" {
		l := r.pending
		r.pending = ""
		return l, true
	}
	for r.s.Scan() {
		r.line++
		l := strings.TrimRight(r.s.Text(), "\r\n")
		if strings.TrimSpace(l) == "" {
			continue
		}
		return l, true
	}
	return "", false
}

// Read returns the next element set, or io.EOF at end of stream.
func (r *Reader) Read() (*TLE, error) {
	for {
		l, ok := r.next()
		if !ok {
			if err := r.s.Err(); err != nil {
				return nil, err
			}
			return nil, io.EOF
		}
		name := ""
		if !strings.HasPrefix(l, "1 ") {
			// 3LE name line.
			name = strings.TrimSpace(strings.TrimPrefix(l, "0 "))
			l, ok = r.next()
			if !ok {
				if r.Strict {
					return nil, fmt.Errorf("tle: line %d: name %q with no element lines", r.line, name)
				}
				r.skipped++
				return nil, io.EOF
			}
		}
		l2, ok := r.next()
		if !ok {
			if r.Strict {
				return nil, fmt.Errorf("tle: line %d: element set truncated after line 1", r.line)
			}
			r.skipped++
			return nil, io.EOF
		}
		t, err := Parse(l, l2)
		if err != nil {
			if r.Strict {
				return nil, fmt.Errorf("tle: at input line %d: %w", r.line, err)
			}
			r.skipped++
			// The second line may actually start the next record.
			if strings.HasPrefix(l2, "1 ") {
				r.pending = l2
			}
			continue
		}
		t.Name = name
		return t, nil
	}
}

// ReadAll consumes the stream and returns every element set.
func ReadAll(rd io.Reader) ([]*TLE, error) {
	r := NewReader(rd)
	var out []*TLE
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// Write encodes element sets to w, in 3LE form when names are present.
func Write(w io.Writer, sets []*TLE) error {
	bw := bufio.NewWriter(w)
	for _, t := range sets {
		l1, l2, err := t.Format()
		if err != nil {
			return err
		}
		if t.Name != "" {
			if _, err := fmt.Fprintln(bw, t.Name); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, l1); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(bw, l2); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Dedupe returns the element sets sorted by (catalog, epoch) with exact
// (catalog, epoch) duplicates collapsed to their first occurrence — the
// shape a fault-tolerant ingest needs when a flaky service replays or
// duplicates records. The input slice is not modified.
func Dedupe(sets []*TLE) []*TLE {
	if len(sets) < 2 {
		return sets
	}
	sorted := make([]*TLE, len(sets))
	copy(sorted, sets)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].CatalogNumber != sorted[j].CatalogNumber {
			return sorted[i].CatalogNumber < sorted[j].CatalogNumber
		}
		return sorted[i].Epoch.Before(sorted[j].Epoch)
	})
	out := sorted[:1]
	for _, t := range sorted[1:] {
		last := out[len(out)-1]
		if t.CatalogNumber == last.CatalogNumber && t.Epoch.Equal(last.Epoch) {
			continue
		}
		out = append(out, t)
	}
	return out
}

// History is the time-ordered element-set history of one object.
type History struct {
	CatalogNumber int
	Sets          []*TLE // ascending by epoch
}

// Catalog groups element sets by catalog number, the shape CosmicDance works
// with after the Space-Track historical fetch.
type Catalog struct {
	byNumber map[int]*History
}

// NewCatalog builds a catalog from a flat list of element sets.
func NewCatalog(sets []*TLE) *Catalog {
	c := &Catalog{byNumber: make(map[int]*History)}
	for _, t := range sets {
		c.Add(t)
	}
	return c
}

// Add inserts one element set, keeping per-object history epoch-ordered.
func (c *Catalog) Add(t *TLE) {
	if c.byNumber == nil {
		c.byNumber = make(map[int]*History)
	}
	h := c.byNumber[t.CatalogNumber]
	if h == nil {
		h = &History{CatalogNumber: t.CatalogNumber}
		c.byNumber[t.CatalogNumber] = h
	}
	// Insert in order; appends are the common case because archives are
	// written chronologically.
	i := sort.Search(len(h.Sets), func(i int) bool { return h.Sets[i].Epoch.After(t.Epoch) })
	h.Sets = append(h.Sets, nil)
	copy(h.Sets[i+1:], h.Sets[i:])
	h.Sets[i] = t
}

// Object returns the history for one catalog number, or nil.
func (c *Catalog) Object(catalogNumber int) *History {
	if c.byNumber == nil {
		return nil
	}
	return c.byNumber[catalogNumber]
}

// Numbers returns all catalog numbers in ascending order.
func (c *Catalog) Numbers() []int {
	nums := make([]int, 0, len(c.byNumber))
	for n := range c.byNumber {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	return nums
}

// Len returns the number of distinct objects.
func (c *Catalog) Len() int { return len(c.byNumber) }

// TotalSets returns the number of element sets across all objects.
func (c *Catalog) TotalSets() int {
	n := 0
	for _, h := range c.byNumber {
		n += len(h.Sets)
	}
	return n
}

// Latest returns the most recent element set, or nil for an empty history.
func (h *History) Latest() *TLE {
	if h == nil || len(h.Sets) == 0 {
		return nil
	}
	return h.Sets[len(h.Sets)-1]
}

// At returns the element set in effect at time t (latest epoch <= t).
func (h *History) At(at time.Time) *TLE {
	if h == nil {
		return nil
	}
	i := sort.Search(len(h.Sets), func(i int) bool { return h.Sets[i].Epoch.After(at) })
	if i == 0 {
		return nil
	}
	return h.Sets[i-1]
}

// Window returns the element sets with from <= epoch <= to.
func (h *History) Window(from, to time.Time) []*TLE {
	if h == nil {
		return nil
	}
	lo := sort.Search(len(h.Sets), func(i int) bool { return !h.Sets[i].Epoch.Before(from) })
	hi := sort.Search(len(h.Sets), func(i int) bool { return h.Sets[i].Epoch.After(to) })
	if lo >= hi {
		return nil
	}
	return h.Sets[lo:hi]
}
