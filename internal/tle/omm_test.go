package tle

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestOMMRoundTrip(t *testing.T) {
	in, err := Parse(issLine1, issLine2)
	if err != nil {
		t.Fatal(err)
	}
	in.Name = "ISS (ZARYA)"
	out, err := in.ToOMM().ToTLE()
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.CatalogNumber != in.CatalogNumber ||
		out.IntlDesignator != in.IntlDesignator || out.Classification != in.Classification {
		t.Errorf("identity fields: %+v vs %+v", out, in)
	}
	if out.MeanMotion != in.MeanMotion || out.Eccentricity != in.Eccentricity ||
		out.Inclination != in.Inclination || out.RAAN != in.RAAN ||
		out.ArgPerigee != in.ArgPerigee || out.MeanAnomaly != in.MeanAnomaly {
		t.Errorf("elements: %+v vs %+v", out, in)
	}
	if out.BStar != in.BStar || out.MeanMotionDot != in.MeanMotionDot {
		t.Errorf("drag fields: %v/%v vs %v/%v", out.BStar, out.MeanMotionDot, in.BStar, in.MeanMotionDot)
	}
	if d := out.Epoch.Sub(in.Epoch); d > time.Microsecond || d < -time.Microsecond {
		t.Errorf("epoch drifted %v", d)
	}
	if out.RevNumber != in.RevNumber || out.ElementSet != in.ElementSet {
		t.Errorf("counters: %d/%d vs %d/%d", out.RevNumber, out.ElementSet, in.RevNumber, in.ElementSet)
	}
}

func TestOMMJSONShape(t *testing.T) {
	in, err := Parse(issLine1, issLine2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteOMM(&buf, []*TLE{in}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	// Space-Track schema field names must appear verbatim.
	for _, field := range []string{
		`"NORAD_CAT_ID":25544`, `"MEAN_MOTION":15.72125391`, `"RA_OF_ASC_NODE":247.4627`,
		`"OBJECT_ID":"98067A"`, `"EPOCH":"2008-09-20T`, `"CLASSIFICATION_TYPE":"U"`,
	} {
		if !strings.Contains(s, field) {
			t.Errorf("JSON missing %s:\n%s", field, s)
		}
	}
}

func TestReadOMM(t *testing.T) {
	payload := `[{
		"OBJECT_NAME": "STARLINK-1007",
		"OBJECT_ID": "19074A",
		"EPOCH": "2023-03-24T12:00:00.000000",
		"MEAN_MOTION": 15.05,
		"ECCENTRICITY": 0.0001,
		"INCLINATION": 53.0,
		"RA_OF_ASC_NODE": 120.5,
		"ARG_OF_PERICENTER": 90.0,
		"MEAN_ANOMALY": 45.0,
		"NORAD_CAT_ID": 44713,
		"ELEMENT_SET_NO": 999,
		"REV_AT_EPOCH": 12345,
		"BSTAR": 0.0004,
		"MEAN_MOTION_DOT": 0.00001,
		"MEAN_MOTION_DDOT": 0,
		"CLASSIFICATION_TYPE": "U"
	}]`
	sets, err := ReadOMM(strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 {
		t.Fatalf("sets = %d", len(sets))
	}
	s := sets[0]
	if s.CatalogNumber != 44713 || s.Name != "STARLINK-1007" {
		t.Errorf("identity = %+v", s)
	}
	if math.Abs(float64(s.Altitude())-550) > 10 {
		t.Errorf("altitude = %v", s.Altitude())
	}
	if s.Epoch != time.Date(2023, 3, 24, 12, 0, 0, 0, time.UTC) {
		t.Errorf("epoch = %v", s.Epoch)
	}
}

func TestReadOMMErrors(t *testing.T) {
	if _, err := ReadOMM(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Bad epoch.
	if _, err := ReadOMM(strings.NewReader(`[{"EPOCH":"yesterday","MEAN_MOTION":15,"NORAD_CAT_ID":1}]`)); err == nil {
		t.Error("bad epoch accepted")
	}
	// Unphysical elements.
	if _, err := ReadOMM(strings.NewReader(`[{"EPOCH":"2023-03-24T12:00:00.000000","MEAN_MOTION":0,"NORAD_CAT_ID":1}]`)); err == nil {
		t.Error("zero mean motion accepted")
	}
}

func TestOMMEpochLayouts(t *testing.T) {
	for _, epoch := range []string{
		"2023-03-24T12:00:00.000000",
		"2023-03-24T12:00:00Z",
		"2023-03-24T12:00:00.5+00:00",
	} {
		o := OMM{Epoch: epoch, MeanMotion: 15.05, Inclination: 53, NoradCatID: 1}
		if _, err := o.ToTLE(); err != nil {
			t.Errorf("epoch %q rejected: %v", epoch, err)
		}
	}
}

func TestWriteReadOMMBulk(t *testing.T) {
	var sets []*TLE
	base := time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 50; i++ {
		sets = append(sets, &TLE{
			CatalogNumber:  44713 + i,
			IntlDesignator: "19074A",
			Epoch:          base.Add(time.Duration(i) * time.Hour),
			MeanMotion:     15.05,
			Inclination:    53,
			Eccentricity:   0.0001,
			BStar:          4e-4,
		})
	}
	var buf bytes.Buffer
	if err := WriteOMM(&buf, sets); err != nil {
		t.Fatal(err)
	}
	back, err := ReadOMM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 50 {
		t.Fatalf("round trip = %d sets", len(back))
	}
	for i := range back {
		if back[i].CatalogNumber != sets[i].CatalogNumber || !back[i].Epoch.Equal(sets[i].Epoch) {
			t.Fatalf("set %d mismatch", i)
		}
	}
}
