package tle

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Format encodes the element set as the canonical two 69-column lines
// (checksums included). Values outside field ranges are an error rather than
// silently truncated, because an encoder that corrupts trajectories would be
// worse than none.
func (t *TLE) Format() (line1, line2 string, err error) {
	if t.CatalogNumber < 0 || t.CatalogNumber > 99999 {
		return "", "", fmt.Errorf("tle: catalog number %d outside 5-digit field", t.CatalogNumber)
	}
	if t.Eccentricity < 0 || t.Eccentricity >= 1 {
		return "", "", fmt.Errorf("tle: eccentricity %v outside [0,1)", t.Eccentricity)
	}
	if t.MeanMotion < 0 || t.MeanMotion >= 100 {
		return "", "", fmt.Errorf("tle: mean motion %v outside field range", t.MeanMotion)
	}
	cls := t.Classification
	if cls == 0 {
		cls = 'U'
	}
	epoch, err := formatEpoch(t.Epoch)
	if err != nil {
		return "", "", err
	}
	l1 := fmt.Sprintf("1 %05d%c %-8s %s %s %s %s %1d %4d",
		t.CatalogNumber, cls, t.IntlDesignator, epoch,
		formatSignedDecimal(t.MeanMotionDot),
		formatExpField(t.MeanMotionDDot),
		formatExpField(t.BStar),
		t.EphemerisType, t.ElementSet%10000)
	l1 = fmt.Sprintf("%s%d", l1, Checksum(l1))
	if len(l1) != 69 {
		return "", "", fmt.Errorf("tle: internal error: line 1 is %d columns", len(l1))
	}

	ecc := fmt.Sprintf("%07d", int(math.Round(t.Eccentricity*1e7)))
	l2 := fmt.Sprintf("2 %05d %8.4f %8.4f %s %8.4f %8.4f %11.8f%5d",
		t.CatalogNumber,
		float64(t.Inclination), float64(t.RAAN.Normalize360()), ecc,
		float64(t.ArgPerigee.Normalize360()), float64(t.MeanAnomaly.Normalize360()),
		float64(t.MeanMotion), t.RevNumber%100000)
	l2 = fmt.Sprintf("%s%d", l2, Checksum(l2))
	if len(l2) != 69 {
		return "", "", fmt.Errorf("tle: internal error: line 2 is %d columns", len(l2))
	}
	return l1, l2, nil
}

// String renders the 3LE form (name line plus the two element lines) when a
// name is present, otherwise just the two lines.
func (t *TLE) String() string {
	l1, l2, err := t.Format()
	if err != nil {
		return fmt.Sprintf("tle<error: %v>", err)
	}
	if t.Name != "" {
		return t.Name + "\n" + l1 + "\n" + l2
	}
	return l1 + "\n" + l2
}

// formatEpoch encodes YYDDD.DDDDDDDD.
func formatEpoch(at time.Time) (string, error) {
	at = at.UTC()
	year := at.Year()
	if year < 1957 || year > 2056 {
		return "", fmt.Errorf("tle: epoch year %d outside NORAD two-digit window [1957,2056]", year)
	}
	yy := year % 100
	jan1 := time.Date(year, 1, 1, 0, 0, 0, 0, time.UTC)
	doy := 1 + at.Sub(jan1).Seconds()/86400
	return fmt.Sprintf("%02d%012.8f", yy, doy), nil
}

// formatSignedDecimal encodes the ndot/2 field, e.g. " .00002182".
func formatSignedDecimal(v float64) string {
	s := fmt.Sprintf("%.8f", math.Abs(v))
	// "0.00002182" -> ".00002182"
	s = strings.TrimPrefix(s, "0")
	if v < 0 {
		return "-" + s
	}
	return " " + s
}

// formatExpField encodes the implied-decimal exponent notation used by the
// B* and nddot/6 fields: 0.34123e-4 -> " 34123-4".
func formatExpField(v float64) string {
	if v == 0 {
		return " 00000+0"
	}
	sign := " "
	if v < 0 {
		sign = "-"
		v = -v
	}
	// Normalize to mantissa in [0.1, 1).
	exp := 0
	for v >= 1 {
		v /= 10
		exp++
	}
	for v < 0.1 {
		v *= 10
		exp--
	}
	mant := int(math.Round(v * 1e5))
	if mant >= 100000 { // rounding pushed us to 1.0
		mant = 10000
		exp++
	}
	if exp > 9 || exp < -9 {
		// Clamp: drag terms this extreme do not occur; keep the field legal.
		if exp > 9 {
			exp = 9
		} else {
			exp = -9
		}
	}
	expSign := "+"
	if exp < 0 {
		expSign = "-"
		exp = -exp
	}
	return fmt.Sprintf("%s%05d%s%d", sign, mant, expSign, exp)
}
