// Package tle implements the NORAD Two-Line Element set format: the textual
// trajectory records CSpOC publishes for every tracked object and that
// CosmicDance ingests from CelesTrak and Space-Track. The codec round-trips
// the real format byte-for-byte (fixed columns, implied-decimal exponent
// fields, mod-10 checksums) so the pipeline is indistinguishable from one fed
// live data.
package tle

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"cosmicdance/internal/orbit"
	"cosmicdance/internal/units"
)

// TLE is one decoded element set.
type TLE struct {
	Name string // optional object name from the 3LE header line

	// Line 1 fields.
	CatalogNumber  int
	Classification byte   // 'U' unclassified, 'C', 'S'
	IntlDesignator string // e.g. "19074A" (launch year, launch number, piece)
	Epoch          time.Time
	MeanMotionDot  float64 // first derivative of mean motion / 2 (rev/day²)
	MeanMotionDDot float64 // second derivative / 6 (rev/day³)
	BStar          float64 // drag term (1/Earth radii)
	EphemerisType  int
	ElementSet     int

	// Line 2 fields.
	Inclination  units.Degrees
	RAAN         units.Degrees
	Eccentricity float64
	ArgPerigee   units.Degrees
	MeanAnomaly  units.Degrees
	MeanMotion   units.RevsPerDay
	RevNumber    int
}

// Altitude derives the mean altitude from the mean motion, the quantity the
// paper's decay analysis is built on.
func (t *TLE) Altitude() units.Kilometers { return orbit.AltitudeFromMeanMotion(t.MeanMotion) }

// Elements extracts the six Keplerian elements.
func (t *TLE) Elements() orbit.Elements {
	return orbit.Elements{
		Eccentricity: t.Eccentricity,
		MeanMotion:   t.MeanMotion,
		Inclination:  t.Inclination,
		RAAN:         t.RAAN,
		ArgPerigee:   t.ArgPerigee,
		MeanAnomaly:  t.MeanAnomaly,
	}
}

// ParseError describes a malformed TLE line.
type ParseError struct {
	Line   int // 1 or 2
	Column int // 1-indexed start column of the offending field, 0 if whole-line
	Msg    string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	if e.Column > 0 {
		return fmt.Sprintf("tle: line %d col %d: %s", e.Line, e.Column, e.Msg)
	}
	return fmt.Sprintf("tle: line %d: %s", e.Line, e.Msg)
}

// ErrChecksum is wrapped by checksum-mismatch parse errors.
var ErrChecksum = errors.New("tle: checksum mismatch")

// Checksum computes the NORAD mod-10 checksum of the first 68 characters:
// digits count as their value, '-' counts as 1, everything else as 0.
func Checksum(line string) int {
	sum := 0
	n := len(line)
	if n > 68 {
		n = 68
	}
	for i := 0; i < n; i++ {
		switch c := line[i]; {
		case c >= '0' && c <= '9':
			sum += int(c - '0')
		case c == '-':
			sum++
		}
	}
	return sum % 10
}

// Parse decodes a two-line element set. Both lines must be exactly 69
// characters (the standard forbids shorter lines; trailing whitespace is
// tolerated and trimmed to column 69).
func Parse(line1, line2 string) (*TLE, error) {
	l1, err := padLine(line1, 1)
	if err != nil {
		return nil, err
	}
	l2, err := padLine(line2, 2)
	if err != nil {
		return nil, err
	}
	if l1[0] != '1' {
		return nil, &ParseError{Line: 1, Column: 1, Msg: "line number is not 1"}
	}
	if l2[0] != '2' {
		return nil, &ParseError{Line: 2, Column: 1, Msg: "line number is not 2"}
	}
	for i, l := range []string{l1, l2} {
		want, err := strconv.Atoi(strings.TrimSpace(l[68:69]))
		if err != nil || want != Checksum(l) {
			return nil, &ParseError{Line: i + 1, Column: 69, Msg: fmt.Sprintf("%v: want %d", ErrChecksum, Checksum(l))}
		}
	}

	var t TLE

	// Line 1.
	cat1, err := parseInt(l1, 1, 3, 7)
	if err != nil {
		return nil, err
	}
	if cat1 < 0 {
		return nil, &ParseError{Line: 1, Column: 3, Msg: fmt.Sprintf("negative catalog number %d", cat1)}
	}
	t.CatalogNumber = cat1
	t.Classification = l1[7]
	t.IntlDesignator = strings.TrimSpace(l1[9:17])
	t.Epoch, err = parseEpoch(l1[18:32])
	if err != nil {
		return nil, &ParseError{Line: 1, Column: 19, Msg: err.Error()}
	}
	t.MeanMotionDot, err = parseSignedDecimal(l1, 1, 34, 43)
	if err != nil {
		return nil, err
	}
	t.MeanMotionDDot, err = parseExpField(l1, 1, 45, 52)
	if err != nil {
		return nil, err
	}
	t.BStar, err = parseExpField(l1, 1, 54, 61)
	if err != nil {
		return nil, err
	}
	if t.EphemerisType, err = parseIntDefault(l1, 1, 63, 63, 0); err != nil {
		return nil, err
	}
	if t.ElementSet, err = parseIntDefault(l1, 1, 65, 68, 0); err != nil {
		return nil, err
	}

	// Line 2.
	cat2, err := parseInt(l2, 2, 3, 7)
	if err != nil {
		return nil, err
	}
	if cat2 != cat1 {
		return nil, &ParseError{Line: 2, Column: 3, Msg: fmt.Sprintf("catalog number %d does not match line 1 (%d)", cat2, cat1)}
	}
	inc, err := parseFloat(l2, 2, 9, 16)
	if err != nil {
		return nil, err
	}
	t.Inclination = units.Degrees(inc)
	raan, err := parseFloat(l2, 2, 18, 25)
	if err != nil {
		return nil, err
	}
	t.RAAN = units.Degrees(raan)
	eccDigits := strings.TrimSpace(l2[26:33])
	if eccDigits == "" {
		eccDigits = "0"
	}
	eccInt, err := strconv.ParseUint(eccDigits, 10, 64)
	if err != nil {
		return nil, &ParseError{Line: 2, Column: 27, Msg: "bad eccentricity: " + err.Error()}
	}
	t.Eccentricity = float64(eccInt) / 1e7
	argp, err := parseFloat(l2, 2, 35, 42)
	if err != nil {
		return nil, err
	}
	t.ArgPerigee = units.Degrees(argp)
	ma, err := parseFloat(l2, 2, 44, 51)
	if err != nil {
		return nil, err
	}
	t.MeanAnomaly = units.Degrees(ma)
	mm, err := parseFloat(l2, 2, 53, 63)
	if err != nil {
		return nil, err
	}
	t.MeanMotion = units.RevsPerDay(mm)
	if t.RevNumber, err = parseIntDefault(l2, 2, 64, 68, 0); err != nil {
		return nil, err
	}
	return &t, nil
}

func padLine(line string, n int) (string, error) {
	line = strings.TrimRight(line, " \r\n")
	if len(line) > 69 {
		return "", &ParseError{Line: n, Msg: fmt.Sprintf("line is %d characters, want <= 69", len(line))}
	}
	if len(line) < 69 {
		// The standard emits exactly 69 columns, but some archives trim
		// trailing blanks from short fields; right-pad before fixed slicing.
		// The checksum column must still be present.
		return "", &ParseError{Line: n, Msg: fmt.Sprintf("line is %d characters, want 69", len(line))}
	}
	return line, nil
}

// parseInt reads the integer in 1-indexed columns [from, to].
func parseInt(line string, lineNo, from, to int) (int, error) {
	s := strings.TrimSpace(line[from-1 : to])
	if s == "" {
		return 0, &ParseError{Line: lineNo, Column: from, Msg: "empty integer field"}
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, &ParseError{Line: lineNo, Column: from, Msg: err.Error()}
	}
	return v, nil
}

func parseIntDefault(line string, lineNo, from, to, def int) (int, error) {
	s := strings.TrimSpace(line[from-1 : to])
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, &ParseError{Line: lineNo, Column: from, Msg: err.Error()}
	}
	return v, nil
}

// plainDecimal reports whether s is an optionally-signed plain decimal
// number: digits with at most one dot, at least one digit. TLE fields are
// fixed-format decimals, so the spellings strconv.ParseFloat additionally
// accepts — "NaN", "Inf", hex floats, exponents — are all corruption here.
func plainDecimal(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == '+' || s[0] == '-' {
		s = s[1:]
	}
	digits, dots := 0, 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c >= '0' && c <= '9':
			digits++
		case c == '.':
			dots++
		default:
			return false
		}
	}
	return digits > 0 && dots <= 1
}

func parseFloat(line string, lineNo, from, to int) (float64, error) {
	s := strings.TrimSpace(line[from-1 : to])
	if s == "" {
		return 0, &ParseError{Line: lineNo, Column: from, Msg: "empty float field"}
	}
	if !plainDecimal(s) {
		return 0, &ParseError{Line: lineNo, Column: from, Msg: fmt.Sprintf("%q is not a plain decimal", s)}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, &ParseError{Line: lineNo, Column: from, Msg: err.Error()}
	}
	return v, nil
}

// parseSignedDecimal reads fields like " .00002182" or "-.00000340".
func parseSignedDecimal(line string, lineNo, from, to int) (float64, error) {
	s := strings.TrimSpace(line[from-1 : to])
	if s == "" {
		return 0, nil
	}
	// Accept both ".5" and "0.5" spellings — but only plain decimals.
	if !plainDecimal(s) {
		return 0, &ParseError{Line: lineNo, Column: from, Msg: fmt.Sprintf("%q is not a plain decimal", s)}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, &ParseError{Line: lineNo, Column: from, Msg: err.Error()}
	}
	return v, nil
}

// parseExpField reads the TLE implied-decimal exponent notation, e.g.
// " 34123-4" meaning +0.34123e-4 and "-11606-4" meaning -0.11606e-4.
// An all-zero field (" 00000-0" or " 00000+0") decodes to 0.
func parseExpField(line string, lineNo, from, to int) (float64, error) {
	s := line[from-1 : to]
	trimmed := strings.TrimSpace(s)
	if trimmed == "" {
		return 0, nil
	}
	sign := 1.0
	rest := trimmed
	switch rest[0] {
	case '-':
		sign = -1
		rest = rest[1:]
	case '+':
		rest = rest[1:]
	}
	if len(rest) < 2 {
		return 0, &ParseError{Line: lineNo, Column: from, Msg: fmt.Sprintf("exponent field %q too short", s)}
	}
	expPart := rest[len(rest)-2:]
	mantPart := rest[:len(rest)-2]
	if expPart[0] != '+' && expPart[0] != '-' {
		return 0, &ParseError{Line: lineNo, Column: from, Msg: fmt.Sprintf("exponent field %q missing exponent sign", s)}
	}
	exp, err := strconv.Atoi(expPart)
	if err != nil {
		return 0, &ParseError{Line: lineNo, Column: from, Msg: err.Error()}
	}
	if mantPart == "" {
		mantPart = "0"
	}
	mant, err := strconv.ParseUint(mantPart, 10, 64)
	if err != nil {
		return 0, &ParseError{Line: lineNo, Column: from, Msg: err.Error()}
	}
	digits := len(mantPart)
	return sign * float64(mant) / math.Pow(10, float64(digits)) * math.Pow(10, float64(exp)), nil
}

// parseEpoch decodes the 14-character epoch field "YYDDD.DDDDDDDD".
// Years 57-99 map to 1957-1999, 00-56 to 2000-2056 (NORAD convention).
func parseEpoch(s string) (time.Time, error) {
	s = strings.TrimSpace(s)
	if len(s) < 5 {
		return time.Time{}, fmt.Errorf("epoch %q too short", s)
	}
	yy, err := strconv.Atoi(s[:2])
	if err != nil || yy < 0 {
		return time.Time{}, fmt.Errorf("bad epoch year %q", s[:2])
	}
	year := 2000 + yy
	if yy >= 57 {
		year = 1900 + yy
	}
	if !plainDecimal(s[2:]) {
		return time.Time{}, fmt.Errorf("epoch day %q is not a plain decimal", s[2:])
	}
	doy, err := strconv.ParseFloat(s[2:], 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad epoch day: %v", err)
	}
	// The negated comparison also rejects NaN, which would sail through a
	// `doy < 1 || doy >= 367` pair.
	if !(doy >= 1 && doy < 367) {
		return time.Time{}, fmt.Errorf("epoch day %v out of range", doy)
	}
	jan1 := time.Date(year, 1, 1, 0, 0, 0, 0, time.UTC)
	return jan1.Add(time.Duration((doy - 1) * float64(24*time.Hour))), nil
}
