package tle

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

// The canonical ISS example element set (Hoots & Roehrich format docs).
const (
	issLine1 = "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927"
	issLine2 = "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537"
)

func TestParseISS(t *testing.T) {
	tl, err := Parse(issLine1, issLine2)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tl.CatalogNumber != 25544 {
		t.Errorf("CatalogNumber = %d", tl.CatalogNumber)
	}
	if tl.Classification != 'U' {
		t.Errorf("Classification = %c", tl.Classification)
	}
	if tl.IntlDesignator != "98067A" {
		t.Errorf("IntlDesignator = %q", tl.IntlDesignator)
	}
	if tl.Epoch.Year() != 2008 {
		t.Errorf("Epoch year = %d", tl.Epoch.Year())
	}
	if doy := tl.Epoch.YearDay(); doy != 264 {
		t.Errorf("Epoch day-of-year = %d, want 264", doy)
	}
	if math.Abs(tl.MeanMotionDot-(-0.00002182)) > 1e-12 {
		t.Errorf("MeanMotionDot = %v", tl.MeanMotionDot)
	}
	if tl.MeanMotionDDot != 0 {
		t.Errorf("MeanMotionDDot = %v", tl.MeanMotionDDot)
	}
	if math.Abs(tl.BStar-(-0.11606e-4)) > 1e-12 {
		t.Errorf("BStar = %v", tl.BStar)
	}
	if tl.ElementSet != 292 {
		t.Errorf("ElementSet = %d", tl.ElementSet)
	}
	if math.Abs(float64(tl.Inclination)-51.6416) > 1e-9 {
		t.Errorf("Inclination = %v", tl.Inclination)
	}
	if math.Abs(float64(tl.RAAN)-247.4627) > 1e-9 {
		t.Errorf("RAAN = %v", tl.RAAN)
	}
	if math.Abs(tl.Eccentricity-0.0006703) > 1e-12 {
		t.Errorf("Eccentricity = %v", tl.Eccentricity)
	}
	if math.Abs(float64(tl.ArgPerigee)-130.5360) > 1e-9 {
		t.Errorf("ArgPerigee = %v", tl.ArgPerigee)
	}
	if math.Abs(float64(tl.MeanAnomaly)-325.0288) > 1e-9 {
		t.Errorf("MeanAnomaly = %v", tl.MeanAnomaly)
	}
	if math.Abs(float64(tl.MeanMotion)-15.72125391) > 1e-9 {
		t.Errorf("MeanMotion = %v", tl.MeanMotion)
	}
	if tl.RevNumber != 56353 {
		t.Errorf("RevNumber = %d", tl.RevNumber)
	}
	// The ISS orbits at roughly 340-360 km.
	if alt := tl.Altitude(); alt < 330 || alt > 370 {
		t.Errorf("Altitude = %v, want ~350 km", alt)
	}
}

func TestChecksum(t *testing.T) {
	if got := Checksum(issLine1); got != 7 {
		t.Errorf("checksum line1 = %d, want 7", got)
	}
	if got := Checksum(issLine2); got != 7 {
		t.Errorf("checksum line2 = %d, want 7", got)
	}
	// Minus signs count as 1.
	if got := Checksum(strings.Repeat("-", 68)); got != 68%10 {
		t.Errorf("checksum of dashes = %d", got)
	}
	// Letters and spaces count as 0.
	if got := Checksum("ABC xyz"); got != 0 {
		t.Errorf("checksum of letters = %d", got)
	}
}

func TestParseRejectsBadChecksum(t *testing.T) {
	bad := issLine1[:68] + "0" // correct value is 7
	_, err := Parse(bad, issLine2)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if pe.Line != 1 || pe.Column != 69 {
		t.Errorf("error location = line %d col %d", pe.Line, pe.Column)
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	cases := []struct {
		name   string
		l1, l2 string
	}{
		{"short line 1", "1 25544U", issLine2},
		{"short line 2", issLine1, "2 25544"},
		{"long line", issLine1 + "X", issLine2},
		{"wrong line number 1", "2" + issLine1[1:], issLine2},
		{"wrong line number 2", issLine1, "1" + issLine2[1:]},
		{"catalog mismatch", issLine1, fixChecksum("2 25545  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537")},
		{"bad epoch day", fixChecksum("1 25544U 98067A   08999.51782528 -.00002182  00000-0 -11606-4 0  2927"), issLine2},
		{"bad eccentricity", issLine1, fixChecksum("2 25544  51.6416 247.4627 00x6703 130.5360 325.0288 15.72125391563537")},
	}
	for _, c := range cases {
		if _, err := Parse(c.l1, c.l2); err == nil {
			t.Errorf("%s: Parse accepted malformed input", c.name)
		}
	}
}

// fixChecksum recomputes the final checksum column of a 69-char line so the
// test reaches the field validation being exercised.
func fixChecksum(line string) string {
	return line[:68] + string(rune('0'+Checksum(line)))
}

func TestParseEpochCentury(t *testing.T) {
	cases := []struct {
		in   string
		year int
	}{
		{"57001.00000000", 1957},
		{"99365.00000000", 1999},
		{"00001.00000000", 2000},
		{"24131.50000000", 2024},
		{"56366.00000000", 2056},
	}
	for _, c := range cases {
		got, err := parseEpoch(c.in)
		if err != nil {
			t.Fatalf("parseEpoch(%q): %v", c.in, err)
		}
		if got.Year() != c.year {
			t.Errorf("parseEpoch(%q).Year() = %d, want %d", c.in, got.Year(), c.year)
		}
	}
	if _, err := parseEpoch("xx"); err == nil {
		t.Error("short epoch accepted")
	}
	if _, err := parseEpoch("ab123.0000"); err == nil {
		t.Error("non-numeric year accepted")
	}
}

func TestParseEpochMay2024(t *testing.T) {
	// 11 May 2024 is day-of-year 132 (leap year).
	got, err := parseEpoch("24132.00000000")
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(2024, 5, 11, 0, 0, 0, 0, time.UTC)
	if !got.Equal(want) {
		t.Errorf("epoch = %v, want %v", got, want)
	}
}

func TestParseExpField(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{" 00000-0", 0},
		{" 00000+0", 0},
		{"        ", 0},
		{" 34123-4", 0.34123e-4},
		{"-11606-4", -0.11606e-4},
		{" 12345+1", 1.2345},
		{"+54321-2", 0.54321e-2},
	}
	for _, c := range cases {
		got, err := parseExpField(c.in, 1, 1, len(c.in))
		if err != nil {
			t.Fatalf("parseExpField(%q): %v", c.in, err)
		}
		if math.Abs(got-c.want) > 1e-15 {
			t.Errorf("parseExpField(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{" 123a5-4", " 12345x4", "-4"} {
		if _, err := parseExpField(bad, 1, 1, len(bad)); err == nil {
			t.Errorf("parseExpField(%q) accepted", bad)
		}
	}
}

func TestFormatRoundTripISS(t *testing.T) {
	tl, err := Parse(issLine1, issLine2)
	if err != nil {
		t.Fatal(err)
	}
	l1, l2, err := tl.Format()
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	back, err := Parse(l1, l2)
	if err != nil {
		t.Fatalf("reparse: %v\n%s\n%s", err, l1, l2)
	}
	if back.CatalogNumber != tl.CatalogNumber ||
		back.IntlDesignator != tl.IntlDesignator ||
		back.RevNumber != tl.RevNumber ||
		back.ElementSet != tl.ElementSet {
		t.Errorf("identity fields changed: %+v vs %+v", back, tl)
	}
	if math.Abs(float64(back.MeanMotion-tl.MeanMotion)) > 1e-8 {
		t.Errorf("mean motion drifted: %v vs %v", back.MeanMotion, tl.MeanMotion)
	}
	if math.Abs(back.Eccentricity-tl.Eccentricity) > 1e-7 {
		t.Errorf("eccentricity drifted: %v vs %v", back.Eccentricity, tl.Eccentricity)
	}
	if math.Abs(back.BStar-tl.BStar) > math.Abs(tl.BStar)*1e-4 {
		t.Errorf("bstar drifted: %v vs %v", back.BStar, tl.BStar)
	}
	if d := back.Epoch.Sub(tl.Epoch); d > time.Millisecond || d < -time.Millisecond {
		t.Errorf("epoch drifted by %v", d)
	}
}

func TestFormatFieldRangeErrors(t *testing.T) {
	base := func() *TLE {
		return &TLE{
			CatalogNumber: 44713,
			Epoch:         time.Date(2023, 3, 24, 12, 0, 0, 0, time.UTC),
			MeanMotion:    15.05,
			Inclination:   53,
		}
	}
	tl := base()
	tl.CatalogNumber = 100000
	if _, _, err := tl.Format(); err == nil {
		t.Error("6-digit catalog number accepted")
	}
	tl = base()
	tl.Eccentricity = 1.0
	if _, _, err := tl.Format(); err == nil {
		t.Error("eccentricity 1.0 accepted")
	}
	tl = base()
	tl.MeanMotion = 100
	if _, _, err := tl.Format(); err == nil {
		t.Error("mean motion 100 accepted")
	}
	tl = base()
	tl.Epoch = time.Date(1950, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, _, err := tl.Format(); err == nil {
		t.Error("pre-1957 epoch accepted")
	}
}

func TestFormatDefaultsClassification(t *testing.T) {
	tl := &TLE{
		CatalogNumber: 1,
		Epoch:         time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC),
		MeanMotion:    15.05,
	}
	l1, _, err := tl.Format()
	if err != nil {
		t.Fatal(err)
	}
	if l1[7] != 'U' {
		t.Errorf("classification column = %c, want U", l1[7])
	}
}

func TestFormatExpField(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, " 00000+0"},
		{0.34123e-4, " 34123-4"},
		{-0.11606e-4, "-11606-4"},
		{0.5, " 50000+0"},
		{5, " 50000+1"},
	}
	for _, c := range cases {
		if got := formatExpField(c.in); got != c.want {
			t.Errorf("formatExpField(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStringIncludesName(t *testing.T) {
	tl, err := Parse(issLine1, issLine2)
	if err != nil {
		t.Fatal(err)
	}
	tl.Name = "ISS (ZARYA)"
	s := tl.String()
	if !strings.HasPrefix(s, "ISS (ZARYA)\n1 25544U") {
		t.Errorf("String() = %q", s)
	}
	tl.Name = ""
	if !strings.HasPrefix(tl.String(), "1 25544U") {
		t.Errorf("unnamed String() = %q", tl.String())
	}
}

func TestElementsExtraction(t *testing.T) {
	tl, err := Parse(issLine1, issLine2)
	if err != nil {
		t.Fatal(err)
	}
	e := tl.Elements()
	if e.MeanMotion != tl.MeanMotion || e.Inclination != tl.Inclination ||
		e.Eccentricity != tl.Eccentricity || e.RAAN != tl.RAAN {
		t.Errorf("Elements() = %+v", e)
	}
	if err := e.Validate(); err != nil {
		t.Errorf("ISS elements invalid: %v", err)
	}
}

func TestParseErrorMessage(t *testing.T) {
	e := &ParseError{Line: 2, Column: 27, Msg: "boom"}
	if !strings.Contains(e.Error(), "line 2 col 27") {
		t.Errorf("Error() = %q", e.Error())
	}
	e2 := &ParseError{Line: 1, Msg: "boom"}
	if strings.Contains(e2.Error(), "col") {
		t.Errorf("Error() = %q", e2.Error())
	}
}
