package atmosphere

import (
	"testing"
	"time"
)

func TestTimeToReentryControlledDeorbit(t *testing.T) {
	m := Standard()
	// A controlled 4 km/day decommission from 550 km: roughly (550-180)/4+
	// drag acceleration ≈ 2-3 months.
	est := m.TimeToReentry(550, -10, 1, 4)
	if !est.Reenters {
		t.Fatal("controlled deorbit did not re-enter")
	}
	days := est.Duration.Hours() / 24
	if days < 40 || days > 95 {
		t.Errorf("controlled deorbit took %.0f days, want ~2-3 months", days)
	}
}

func TestTimeToReentryUncontrolledFromStaging(t *testing.T) {
	m := Standard()
	// Uncontrolled decay from the 210 km insertion of the Feb 2022 incident:
	// days, not months — the regime that doomed the batch.
	est := m.TimeToReentry(210, -66, 2.5, 0)
	if !est.Reenters {
		t.Fatal("low staging orbit did not re-enter")
	}
	if d := est.Duration.Hours() / 24; d < 0.5 || d > 14 {
		t.Errorf("staging re-entry took %.1f days, want days", d)
	}
}

func TestTimeToReentryOperationalAltitudeIsSlow(t *testing.T) {
	m := Standard()
	// An uncontrolled but otherwise nominal object at 550 km decays in
	// years: much slower than any controlled descent.
	est := m.TimeToReentry(550, -10, 1, 0)
	controlled := m.TimeToReentry(550, -10, 1, 4)
	if est.Reenters && controlled.Reenters && est.Duration < 4*controlled.Duration {
		t.Errorf("uncontrolled (%v) not much slower than controlled (%v)", est.Duration, controlled.Duration)
	}
	if !est.Reenters && est.FinalAltKm >= 550 {
		t.Errorf("no decay at all: final altitude %v", est.FinalAltKm)
	}
}

func TestTimeToReentryStormAccelerates(t *testing.T) {
	m := Standard()
	quiet := m.TimeToReentry(400, -10, 1.5, 0)
	storm := m.TimeToReentry(400, -412, 1.5, 0)
	if !quiet.Reenters || !storm.Reenters {
		t.Fatal("400 km objects must re-enter within the horizon")
	}
	if storm.Duration >= quiet.Duration {
		t.Errorf("storm (%v) not faster than quiet (%v)", storm.Duration, quiet.Duration)
	}
}

func TestTimeToReentryEdgeCases(t *testing.T) {
	m := Standard()
	est := m.TimeToReentry(100, -10, 1, 0)
	if !est.Reenters || est.Duration != 0 {
		t.Errorf("already below the line: %+v", est)
	}
	// Zero drag factor defaults to 1 rather than freezing the object.
	est = m.TimeToReentry(300, -10, 0, 0)
	if !est.Reenters {
		t.Error("drag factor 0 froze the integration")
	}
	// Very high orbit: survives the horizon.
	est = m.TimeToReentry(1200, -10, 1, 0)
	if est.Reenters {
		t.Errorf("1200 km object re-entered within 10 years: %v", est.Duration)
	}
	if est.FinalAltKm <= 0 || est.FinalAltKm > 1200 {
		t.Errorf("final altitude = %v", est.FinalAltKm)
	}
	_ = time.Hour
}
