// Package atmosphere models the upper-atmosphere drag environment that
// couples solar activity to LEO orbital decay: an exponential thermosphere
// whose density is enhanced during geomagnetic storms (heating expands the
// atmosphere, raising density at a fixed altitude), plus the derived orbital
// decay rate and TLE B* drag term. The paper's causal chain — storm → drag ↑
// → altitude ↓ — flows through this package.
package atmosphere

import (
	"math"

	"cosmicdance/internal/units"
)

// Model parameterizes the thermosphere. The zero value is unusable; start
// from Standard().
type Model struct {
	// RefAltitudeKm anchors the exponential profile (Starlink's operational
	// shell).
	RefAltitudeKm float64
	// RefDensity is the quiet-time density at the reference altitude
	// (kg/m³).
	RefDensity float64
	// ScaleHeightKm is the density e-folding distance.
	ScaleHeightKm float64

	// EnhancementSlope is the fractional density increase per 100 nT of
	// storm intensity beyond EnhancementFloor. Calibrated so the May 2024
	// super-storm (−412 nT) produces the ~5× drag Starlink reported.
	EnhancementSlope float64
	// EnhancementFloor is the |Dst| intensity (nT) below which no
	// enhancement occurs.
	EnhancementFloor float64

	// BaseDecayKmPerDay is the uncompensated quiet-time orbital decay rate
	// at the reference altitude.
	BaseDecayKmPerDay float64
	// DecayScaleHeightKm is the e-folding distance of the *decay rate*
	// profile. It is deliberately larger than ScaleHeightKm: ballistic
	// coefficients and the thermospheric profile both flatten the effective
	// decay-vs-altitude curve, and using the raw density profile would give
	// staging-orbit decay rates an order of magnitude beyond the km/day
	// regime observed during the February 2022 Starlink incident.
	DecayScaleHeightKm float64
	// BaseBStar is the quiet-time TLE B* drag term at the reference
	// altitude (1/Earth radii).
	BaseBStar float64
}

// Standard returns the calibrated model used by the paper-reproduction
// scenarios.
func Standard() Model {
	return Model{
		RefAltitudeKm:      550,
		RefDensity:         2.5e-13,
		ScaleHeightKm:      65,
		EnhancementSlope:   1.05,
		EnhancementFloor:   30,
		BaseDecayKmPerDay:  0.15,
		DecayScaleHeightKm: 110,
		BaseBStar:          4e-4,
	}
}

// Enhancement returns the storm density multiplier (>= 1) for a Dst reading.
func (m Model) Enhancement(d units.NanoTesla) float64 {
	intensity := -float64(d)
	if intensity <= m.EnhancementFloor {
		return 1
	}
	return 1 + m.EnhancementSlope*(intensity-m.EnhancementFloor)/100
}

// Density returns the atmospheric density (kg/m³) at altitude alt under
// geomagnetic conditions d.
func (m Model) Density(alt units.Kilometers, d units.NanoTesla) float64 {
	profile := math.Exp((m.RefAltitudeKm - float64(alt)) / m.ScaleHeightKm)
	return m.RefDensity * profile * m.Enhancement(d)
}

// DecayRate returns the uncompensated circular-orbit decay rate (km/day,
// positive downward) at altitude alt under conditions d. It scales with
// density, and with orbital velocity relative to the reference altitude.
func (m Model) DecayRate(alt units.Kilometers, d units.NanoTesla) float64 {
	if alt <= 0 {
		return 0
	}
	h := m.DecayScaleHeightKm
	if h <= 0 {
		h = m.ScaleHeightKm
	}
	profile := math.Exp((m.RefAltitudeKm - float64(alt)) / h)
	// Velocity grows weakly as orbits decay; include the v² drag scaling
	// relative to reference so low altitudes decay slightly faster still.
	vRef := velocity(m.RefAltitudeKm)
	v := velocity(float64(alt))
	return m.BaseDecayKmPerDay * profile * m.Enhancement(d) * (v * v) / (vRef * vRef)
}

// BStar returns the TLE drag term (1/Earth radii) a tracking fit would report
// for a satellite with drag factor satFactor (1 = nominal cross-section) at
// altitude alt under conditions d.
func (m Model) BStar(alt units.Kilometers, d units.NanoTesla, satFactor float64) float64 {
	densityRatio := m.Density(alt, d) / m.Density(units.Kilometers(m.RefAltitudeKm), 0)
	return m.BaseBStar * densityRatio * satFactor
}

// velocity is the circular orbital speed (km/s) at the given altitude.
func velocity(altKm float64) float64 {
	return math.Sqrt(units.MuEarth / (altKm + units.EarthRadiusKm))
}

// ReentryAltitudeKm is the altitude below which a decaying object is
// considered re-entered and is dropped from tracking.
const ReentryAltitudeKm = 180
