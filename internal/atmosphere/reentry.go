package atmosphere

import (
	"time"

	"cosmicdance/internal/units"
)

// ReentryEstimate is the outcome of a decay integration.
type ReentryEstimate struct {
	// Duration until the object reaches ReentryAltitudeKm; valid only when
	// Reenters is true.
	Duration time.Duration
	Reenters bool
	// FinalAltKm is the altitude at the end of the integration horizon when
	// the object does not re-enter within it.
	FinalAltKm float64
}

// ReentryHorizon bounds the integration: objects that survive this long are
// reported as non-re-entering (LEO operators care about weeks-to-months).
const ReentryHorizon = 10 * 365 * 24 * time.Hour

// TimeToReentry integrates the decay of an uncontrolled (or actively
// deorbited) object: hourly steps of the model's decay rate scaled by the
// object's drag factor, plus any controlled descent rate, under a constant
// ambient Dst level. This is the planning estimate an operator wants after a
// storm: "when is this satellite down?"
func (m Model) TimeToReentry(startAlt units.Kilometers, ambient units.NanoTesla, dragFactor, deorbitKmPerDay float64) ReentryEstimate {
	if dragFactor <= 0 {
		dragFactor = 1
	}
	alt := float64(startAlt)
	if alt <= ReentryAltitudeKm {
		return ReentryEstimate{Reenters: true, Duration: 0}
	}
	maxHours := int(ReentryHorizon / time.Hour)
	for h := 1; h <= maxHours; h++ {
		alt -= (m.DecayRate(units.Kilometers(alt), ambient)*dragFactor + deorbitKmPerDay) / 24
		if alt <= ReentryAltitudeKm {
			return ReentryEstimate{Reenters: true, Duration: time.Duration(h) * time.Hour}
		}
	}
	return ReentryEstimate{FinalAltKm: alt}
}
