package atmosphere

import (
	"math"
	"testing"
	"testing/quick"

	"cosmicdance/internal/units"
)

func TestEnhancementQuiet(t *testing.T) {
	m := Standard()
	for _, d := range []units.NanoTesla{0, -10, -29, -30} {
		if got := m.Enhancement(d); got != 1 {
			t.Errorf("Enhancement(%v) = %v, want 1", d, got)
		}
	}
}

func TestEnhancementSuperStorm(t *testing.T) {
	m := Standard()
	// The May 2024 super-storm (−412 nT) produced ~5× drag per Starlink's
	// FCC comment; the model is calibrated to match.
	got := m.Enhancement(-412)
	if got < 4.5 || got > 5.5 {
		t.Errorf("Enhancement(-412) = %v, want ~5", got)
	}
	// A mild storm produces a modest increase.
	mild := m.Enhancement(-63)
	if mild < 1.1 || mild > 1.8 {
		t.Errorf("Enhancement(-63) = %v, want ~1.35", mild)
	}
}

func TestEnhancementMonotone(t *testing.T) {
	m := Standard()
	f := func(a, b int16) bool {
		lo, hi := units.NanoTesla(-math.Abs(float64(a))), units.NanoTesla(-math.Abs(float64(b)))
		if lo > hi {
			lo, hi = hi, lo
		}
		// lo is more negative (more intense): must not have smaller factor.
		return m.Enhancement(lo) >= m.Enhancement(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDensityProfile(t *testing.T) {
	m := Standard()
	// Density at the reference altitude under quiet conditions equals the
	// reference density.
	if got := m.Density(550, 0); math.Abs(got-m.RefDensity)/m.RefDensity > 1e-12 {
		t.Errorf("Density(550, quiet) = %v, want %v", got, m.RefDensity)
	}
	// One scale height lower, density is e times higher.
	ratio := m.Density(550-units.Kilometers(m.ScaleHeightKm), 0) / m.Density(550, 0)
	if math.Abs(ratio-math.E) > 1e-9 {
		t.Errorf("one-scale-height ratio = %v, want e", ratio)
	}
	// The staging orbit (~350 km) is much denser than the operational shell.
	if m.Density(350, 0) < 10*m.Density(550, 0) {
		t.Error("staging orbit should see >10x the drag of the operational shell")
	}
}

func TestDecayRateShape(t *testing.T) {
	m := Standard()
	quiet550 := m.DecayRate(550, 0)
	if quiet550 < 0.05 || quiet550 > 0.5 {
		t.Errorf("quiet decay at 550 km = %v km/day, want ~0.15", quiet550)
	}
	// Storms accelerate decay.
	storm550 := m.DecayRate(550, -412)
	if storm550 < 4*quiet550 {
		t.Errorf("super-storm decay = %v, want >= 4x quiet (%v)", storm550, quiet550)
	}
	// Lower orbits decay faster (this is what makes decay self-accelerating).
	if m.DecayRate(350, 0) <= m.DecayRate(550, 0) {
		t.Error("decay must accelerate at lower altitude")
	}
	// Staging-orbit decay is a few km/day — the regime that deorbited the
	// Feb 2022 batch within days once drag spiked.
	staging := m.DecayRate(350, -66)
	if staging < 1 || staging > 15 {
		t.Errorf("staging decay under moderate storm = %v km/day", staging)
	}
	if got := m.DecayRate(0, 0); got != 0 {
		t.Errorf("decay at zero altitude = %v, want 0 (degenerate)", got)
	}
}

func TestDecayRateMonotoneInIntensity(t *testing.T) {
	m := Standard()
	prev := 0.0
	for i := 0; i <= 500; i += 25 {
		rate := m.DecayRate(550, units.NanoTesla(-i))
		if rate < prev {
			t.Errorf("decay rate decreased at -%d nT: %v < %v", i, rate, prev)
		}
		prev = rate
	}
}

func TestBStar(t *testing.T) {
	m := Standard()
	quiet := m.BStar(550, 0, 1)
	if math.Abs(quiet-m.BaseBStar)/m.BaseBStar > 1e-12 {
		t.Errorf("quiet B* = %v, want %v", quiet, m.BaseBStar)
	}
	// Storm B* scales with the density enhancement (Fig 7's 5x).
	storm := m.BStar(550, -412, 1)
	if storm < 4*quiet || storm > 6*quiet {
		t.Errorf("super-storm B* = %v, want ~5x %v", storm, quiet)
	}
	// Satellite-specific drag factor scales linearly.
	if got := m.BStar(550, 0, 2); math.Abs(got-2*quiet) > 1e-15 {
		t.Errorf("satFactor=2 B* = %v, want %v", got, 2*quiet)
	}
}

func TestVelocityDecreasesWithAltitude(t *testing.T) {
	if velocity(350) <= velocity(550) {
		t.Error("orbital velocity must decrease with altitude")
	}
	// ~7.6 km/s at 550 km.
	if v := velocity(550); v < 7.5 || v > 7.7 {
		t.Errorf("velocity(550) = %v", v)
	}
}
