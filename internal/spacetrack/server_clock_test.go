package spacetrack

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestLimiterFollowsInjectedClock is the regression test for the token
// bucket reading wall clock instead of the injected service clock: with
// s.Now pinned, the burst must drain and never refill, and advancing the
// injected clock — not real time — must be what returns tokens.
func TestLimiterFollowsInjectedClock(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	srv := NewServer(archive, end)
	srv.RatePerSec = 1
	srv.Burst = 2
	var offset atomic.Int64
	srv.Now = func() time.Time { return end.Add(time.Duration(offset.Load())) }

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	get := func() int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/NORAD/elements/gp.php?GROUP=starlink&FORMAT=tle")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode
	}

	// Frozen clock: exactly Burst requests pass, then the bucket is dry no
	// matter how much real time the requests take.
	for i := 0; i < 2; i++ {
		if got := get(); got != http.StatusOK {
			t.Fatalf("burst request %d: status %d, want 200", i, got)
		}
	}
	for i := 0; i < 3; i++ {
		if got := get(); got != http.StatusTooManyRequests {
			t.Fatalf("frozen-clock request %d: status %d, want 429", i, got)
		}
	}

	// Advancing the injected clock two seconds at 1 token/sec refills
	// exactly two tokens.
	offset.Store(int64(2 * time.Second))
	for i := 0; i < 2; i++ {
		if got := get(); got != http.StatusOK {
			t.Fatalf("post-refill request %d: status %d, want 200", i, got)
		}
	}
	if got := get(); got != http.StatusTooManyRequests {
		t.Fatalf("third post-refill request: status %d, want 429", got)
	}

	// A bare struct literal (no injected clock) must still work: the
	// limiter falls back to wall clock rather than panicking.
	bare := &Server{archive: archive, RatePerSec: 1000, Burst: 1}
	if !bare.allow() {
		t.Error("bare server denied its burst token")
	}
}
