package spacetrack

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestLimiterFollowsInjectedClock is the regression test for the token
// bucket reading wall clock instead of the injected service clock: with
// s.Now pinned, the burst must drain and never refill, and advancing the
// injected clock — not real time — must be what returns tokens.
func TestLimiterFollowsInjectedClock(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	srv := NewServer(archive, end)
	srv.RatePerSec = 1
	srv.Burst = 2
	var offset atomic.Int64
	srv.Now = func() time.Time { return end.Add(time.Duration(offset.Load())) }

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	get := func() int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/NORAD/elements/gp.php?GROUP=starlink&FORMAT=tle")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode
	}

	// Frozen clock: exactly Burst requests pass, then the bucket is dry no
	// matter how much real time the requests take.
	for i := 0; i < 2; i++ {
		if got := get(); got != http.StatusOK {
			t.Fatalf("burst request %d: status %d, want 200", i, got)
		}
	}
	for i := 0; i < 3; i++ {
		if got := get(); got != http.StatusTooManyRequests {
			t.Fatalf("frozen-clock request %d: status %d, want 429", i, got)
		}
	}

	// Advancing the injected clock two seconds at 1 token/sec refills
	// exactly two tokens.
	offset.Store(int64(2 * time.Second))
	for i := 0; i < 2; i++ {
		if got := get(); got != http.StatusOK {
			t.Fatalf("post-refill request %d: status %d, want 200", i, got)
		}
	}
	if got := get(); got != http.StatusTooManyRequests {
		t.Fatalf("third post-refill request: status %d, want 429", got)
	}

	// A bare struct literal (no injected clock) must still work: the
	// limiter falls back to wall clock rather than panicking.
	bare := &Server{archive: archive, RatePerSec: 1000, Burst: 1}
	if ok, _ := bare.admitClient("anyone"); !ok {
		t.Error("bare server denied its burst token")
	}
}

// TestRetryAfterMatchesBucketState is the regression test for the
// hard-coded "Retry-After: 1": under a fixed injected clock the header must
// equal the per-client bucket's actual refill time, rounded up to whole
// seconds, and advancing the clock must shrink it in lockstep.
func TestRetryAfterMatchesBucketState(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	srv := NewServer(archive, end)
	srv.RatePerSec = 0.25 // one token every 4s
	srv.Burst = 1
	var offset atomic.Int64
	srv.Now = func() time.Time { return end.Add(time.Duration(offset.Load())) }

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	get := func() (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/NORAD/elements/gp.php?GROUP=starlink&FORMAT=tle")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}

	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("burst request: status %d, want 200", code)
	}
	// The bucket is empty: one token at 0.25/s takes exactly 4 seconds.
	if code, ra := get(); code != http.StatusTooManyRequests || ra != "4" {
		t.Fatalf("drained bucket: status %d Retry-After %q, want 429 with 4", code, ra)
	}
	// 1.5s later, 0.375 tokens refilled: (1-0.375)/0.25 = 2.5s -> ceil 3.
	offset.Store(int64(1500 * time.Millisecond))
	if code, ra := get(); code != http.StatusTooManyRequests || ra != "3" {
		t.Fatalf("partial refill: status %d Retry-After %q, want 429 with 3", code, ra)
	}
	// Past the full refill the request passes, and draining it again yields
	// the full 4-second wait, proving the header tracks the live state.
	offset.Store(int64(6 * time.Second))
	if code, _ := get(); code != http.StatusOK {
		t.Fatal("refilled bucket still limited")
	}
	if code, ra := get(); code != http.StatusTooManyRequests || ra != "4" {
		t.Fatalf("re-drained bucket: status %d Retry-After %q, want 429 with 4", code, ra)
	}

	// Sub-second waits still answer a usable header: at 10 tokens/s the
	// refill is 100ms, which must round up to 1, never down to 0.
	fast := NewServer(archive, end)
	fast.RatePerSec = 10
	fast.Burst = 1
	if ok, _ := fast.admitClient("c"); !ok {
		t.Fatal("burst token denied")
	}
	if ok, wait := fast.admitClient("c"); ok || retryAfterSeconds(wait) != "1" {
		t.Fatalf("sub-second wait rendered %q, want 1", retryAfterSeconds(wait))
	}
}

// TestPerClientBucketsIsolate proves the limiter keys on the client, not
// the process: one client draining its bucket must not throttle another.
func TestPerClientBucketsIsolate(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	srv := NewServer(archive, end)
	srv.RatePerSec = 1
	srv.Burst = 1

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	get := func(id string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/NORAD/elements/gp.php?GROUP=starlink", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Client-Id", id)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode
	}

	if got := get("alice"); got != http.StatusOK {
		t.Fatalf("alice's burst: %d", got)
	}
	if got := get("alice"); got != http.StatusTooManyRequests {
		t.Fatalf("alice not limited: %d", got)
	}
	if got := get("bob"); got != http.StatusOK {
		t.Fatalf("bob throttled by alice's bucket: %d", got)
	}
	if srv.RateLimited() != 1 {
		t.Fatalf("RateLimited = %d, want 1", srv.RateLimited())
	}
}

// TestBucketEvictionIsLossless fills the tracked-client table past
// MaxClients and checks that only refilled-to-full buckets were dropped —
// an evicted client's next request behaves exactly as if its bucket had
// been kept.
func TestBucketEvictionIsLossless(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	srv := NewServer(archive, end)
	srv.RatePerSec = 1
	srv.Burst = 2
	srv.MaxClients = 4
	var offset atomic.Int64
	srv.Now = func() time.Time { return end.Add(time.Duration(offset.Load())) }

	for i := 0; i < 4; i++ {
		if ok, _ := srv.admitClient(string(rune('a' + i))); !ok {
			t.Fatalf("client %d denied its burst", i)
		}
	}
	// Everyone is 1 token below full; nothing is evictable, so the table
	// grows past the bound rather than dropping live state.
	if ok, _ := srv.admitClient("e"); !ok {
		t.Fatal("overflow client denied")
	}
	if len(srv.clients) != 5 {
		t.Fatalf("tracked %d clients, want 5 (no lossy eviction)", len(srv.clients))
	}
	// After the buckets refill, the next newcomer sweeps them out.
	offset.Store(int64(10 * time.Second))
	if ok, _ := srv.admitClient("f"); !ok {
		t.Fatal("post-refill client denied")
	}
	if len(srv.clients) != 1 {
		t.Fatalf("tracked %d clients after refill sweep, want 1", len(srv.clients))
	}
}
