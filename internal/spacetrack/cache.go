package spacetrack

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"cosmicdance/internal/tle"
)

// CachingFetcher wraps a Client with an on-disk, per-object TLE cache so
// repeated analyses fetch each epoch range only once — the "fetch historical
// information incrementally as and when needed" behaviour the paper describes
// for CosmicDance.
//
// Layout: <dir>/<catalog>.tle holds the cached element sets and
// <dir>/<catalog>.meta records the covered [from, to] window.
type CachingFetcher struct {
	client *Client
	dir    string
	mu     sync.Mutex
}

// NewCachingFetcher creates the cache directory if needed.
func NewCachingFetcher(client *Client, dir string) (*CachingFetcher, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spacetrack: cache dir: %w", err)
	}
	return &CachingFetcher{client: client, dir: dir}, nil
}

// History returns the element sets of catalog in [from, to], consulting the
// cache first and fetching only the uncovered suffix.
func (f *CachingFetcher) History(ctx context.Context, catalog int, from, to time.Time) ([]*tle.TLE, error) {
	f.mu.Lock()
	defer f.mu.Unlock()

	cachedFrom, cachedTo, cached, err := f.load(catalog)
	if err != nil {
		return nil, err
	}

	switch {
	case cached == nil || from.Before(cachedFrom):
		// Cache useless for this request: fetch the full window and replace.
		sets, err := f.client.FetchHistory(ctx, catalog, from, to)
		if err != nil {
			return nil, err
		}
		if err := f.store(catalog, from, to, sets); err != nil {
			return nil, err
		}
		cached, cachedFrom, cachedTo = sets, from, to
	case to.After(cachedTo):
		// Incremental: fetch only the new suffix.
		fresh, err := f.client.FetchHistory(ctx, catalog, cachedTo.Add(time.Second), to)
		if err != nil {
			return nil, err
		}
		cached = append(cached, fresh...)
		if err := f.store(catalog, cachedFrom, to, cached); err != nil {
			return nil, err
		}
		cachedTo = to
	}

	// Serve the requested window from the cache.
	out := cached[:0:0]
	for _, t := range cached {
		if !t.Epoch.Before(from) && !t.Epoch.After(to) {
			out = append(out, t)
		}
	}
	return out, nil
}

// Group returns the current element sets of a constellation group,
// revalidating the on-disk copy with the server's cache validators. A 304
// serves the cached bytes without transferring the catalog again; a changed
// group replaces the cache and its validators atomically.
func (f *CachingFetcher) Group(ctx context.Context, group string) ([]*tle.TLE, error) {
	f.mu.Lock()
	defer f.mu.Unlock()

	etag, lastMod, cached := f.loadGroup(group)
	page, err := f.client.FetchGroupConditional(ctx, group, etag, lastMod)
	if err != nil {
		return nil, err
	}
	if page.NotModified {
		return cached, nil
	}
	if err := f.storeGroup(group, page); err != nil {
		return nil, err
	}
	return page.Sets, nil
}

// loadGroup reads a group's cached catalog and validators. Any corruption —
// missing files, unparseable metadata, bad element sets — degrades to a miss
// with empty validators, which forces an unconditional refetch.
func (f *CachingFetcher) loadGroup(group string) (etag, lastMod string, sets []*tle.TLE) {
	meta, err := os.ReadFile(f.groupMetaPath(group))
	if err != nil {
		return "", "", nil
	}
	parts := strings.Split(strings.TrimSpace(string(meta)), "\n")
	if len(parts) != 2 {
		return "", "", nil
	}
	file, err := os.Open(f.groupDataPath(group))
	if err != nil {
		return "", "", nil
	}
	defer file.Close()
	r := tle.NewReader(file)
	for {
		t, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", "", nil
		}
		sets = append(sets, t)
	}
	if r.Skipped() > 0 || len(sets) == 0 {
		// A validator paired with corrupt or empty data would revalidate a
		// cache we cannot actually serve from.
		return "", "", nil
	}
	return parts[0], parts[1], sets
}

// storeGroup atomically rewrites a group's cache and validators.
func (f *CachingFetcher) storeGroup(group string, page *GroupPage) error {
	tmp, err := os.CreateTemp(f.dir, "tmp-*.tle")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := tle.Write(tmp, page.Sets); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), f.groupDataPath(group)); err != nil {
		return err
	}
	meta := page.ETag + "\n" + page.LastModified + "\n"
	return os.WriteFile(f.groupMetaPath(group), []byte(meta), 0o644)
}

func (f *CachingFetcher) groupDataPath(group string) string {
	return filepath.Join(f.dir, "group-"+group+".tle")
}

func (f *CachingFetcher) groupMetaPath(group string) string {
	return filepath.Join(f.dir, "group-"+group+".meta")
}

// load reads the cached window for one object. A missing cache returns nil
// sets and no error.
func (f *CachingFetcher) load(catalog int) (from, to time.Time, sets []*tle.TLE, err error) {
	meta, err := os.ReadFile(f.metaPath(catalog))
	if os.IsNotExist(err) {
		return time.Time{}, time.Time{}, nil, nil
	}
	if err != nil {
		return time.Time{}, time.Time{}, nil, err
	}
	parts := strings.Split(strings.TrimSpace(string(meta)), "\n")
	if len(parts) != 2 {
		// Corrupt metadata: treat as a cache miss.
		return time.Time{}, time.Time{}, nil, nil
	}
	from, err1 := time.Parse(time.RFC3339, parts[0])
	to, err2 := time.Parse(time.RFC3339, parts[1])
	if err1 != nil || err2 != nil {
		return time.Time{}, time.Time{}, nil, nil
	}
	file, err := os.Open(f.dataPath(catalog))
	if os.IsNotExist(err) {
		return time.Time{}, time.Time{}, nil, nil
	}
	if err != nil {
		return time.Time{}, time.Time{}, nil, err
	}
	defer file.Close()
	r := tle.NewReader(file)
	for {
		t, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Unreadable cache file: self-heal by treating it as a miss.
			return time.Time{}, time.Time{}, nil, nil
		}
		sets = append(sets, t)
	}
	if r.Skipped() > 0 {
		// Corrupt records on disk (partial write, bit rot): a silent skip here
		// would permanently lose those epochs, so discard and refetch instead.
		return time.Time{}, time.Time{}, nil, nil
	}
	return from, to, sets, nil
}

// store atomically rewrites one object's cache.
func (f *CachingFetcher) store(catalog int, from, to time.Time, sets []*tle.TLE) error {
	tmp, err := os.CreateTemp(f.dir, "tmp-*.tle")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := tle.Write(tmp, sets); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), f.dataPath(catalog)); err != nil {
		return err
	}
	meta := from.UTC().Format(time.RFC3339) + "\n" + to.UTC().Format(time.RFC3339) + "\n"
	return os.WriteFile(f.metaPath(catalog), []byte(meta), 0o644)
}

func (f *CachingFetcher) dataPath(catalog int) string {
	return filepath.Join(f.dir, fmt.Sprintf("%d.tle", catalog))
}

func (f *CachingFetcher) metaPath(catalog int) string {
	return filepath.Join(f.dir, fmt.Sprintf("%d.meta", catalog))
}
