package spacetrack

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"cosmicdance/internal/tle"
)

// cloneSet copies a template element set under a new catalog number and
// epoch — the shape of a live-ingested observation.
func cloneSet(template *tle.TLE, catalog int, epoch time.Time) *tle.TLE {
	c := *template
	c.CatalogNumber = catalog
	c.Epoch = epoch.UTC()
	c.Name = fmt.Sprintf("INGEST-%d", catalog)
	return &c
}

func TestCatalogServesBaseUnchanged(t *testing.T) {
	archive, _, end := buildArchive(t, 10)
	cat := NewCatalog(archive, end)

	if got, want := fmt.Sprint(cat.Groups()), fmt.Sprint(archive.Groups()); got != want {
		t.Fatalf("Groups = %v, want %v", got, want)
	}
	base := archive.GroupLatest("starlink", end)
	got := cat.GroupLatest("starlink", end)
	if len(got) != len(base) {
		t.Fatalf("GroupLatest = %d sets, want %d", len(got), len(base))
	}
	for i := range got {
		if got[i].CatalogNumber != base[i].CatalogNumber || !got[i].Epoch.Equal(base[i].Epoch) {
			t.Fatalf("set %d: (%d,%v) != (%d,%v)", i,
				got[i].CatalogNumber, got[i].Epoch, base[i].CatalogNumber, base[i].Epoch)
		}
	}
	catalog := base[0].CatalogNumber
	wantHist := archive.History(catalog, stStart, end)
	gotHist := cat.History(catalog, stStart, end)
	if len(gotHist) != len(wantHist) {
		t.Fatalf("History = %d sets, want %d", len(gotHist), len(wantHist))
	}
	if v, _, ok := cat.GroupVersion("starlink"); !ok || v != 1 {
		t.Fatalf("GroupVersion = %d,%v, want 1,true", v, ok)
	}
	if _, _, ok := cat.GroupVersion("oneweb"); ok {
		t.Fatal("unknown group reported a version")
	}
}

func TestCatalogIngestVisibilityAndVersions(t *testing.T) {
	archive, _, end := buildArchive(t, 10)
	cat := NewCatalog(archive, end)
	template := archive.GroupLatest("starlink", end)[0]

	// A brand-new satellite becomes visible in the group and its history.
	fresh := cloneSet(template, 90001, end.Add(-time.Hour))
	if n := cat.Ingest("starlink", []*tle.TLE{fresh}, end); n != 1 {
		t.Fatalf("Ingest applied %d, want 1", n)
	}
	latest := cat.GroupLatest("starlink", end)
	found := false
	for i, s := range latest {
		if s.CatalogNumber == 90001 {
			found = true
			if i == 0 || latest[i-1].CatalogNumber >= 90001 {
				t.Fatal("merged group list not ordered by catalog number")
			}
		}
	}
	if !found {
		t.Fatal("ingested satellite missing from GroupLatest")
	}
	if h := cat.History(90001, stStart, end); len(h) != 1 {
		t.Fatalf("ingested history = %d sets, want 1", len(h))
	}
	v, mod, _ := cat.GroupVersion("starlink")
	if v != 2 || !mod.Equal(end) {
		t.Fatalf("post-ingest version = %d@%v, want 2@%v", v, mod, end)
	}

	// Replaying the same batch is idempotent: no new pairs, no version bump.
	if n := cat.Ingest("starlink", []*tle.TLE{fresh}, end.Add(time.Hour)); n != 0 {
		t.Fatalf("duplicate ingest applied %d, want 0", n)
	}
	if v2, _, _ := cat.GroupVersion("starlink"); v2 != 2 {
		t.Fatalf("all-duplicate batch bumped version to %d", v2)
	}

	// A newer epoch for an existing base object supersedes it in
	// GroupLatest and lands in the merged history exactly once.
	existing := template.CatalogNumber
	newer := cloneSet(template, existing, template.Epoch.Add(30*time.Minute))
	if n := cat.Ingest("starlink", []*tle.TLE{newer}, end.Add(2*time.Hour)); n != 1 {
		t.Fatalf("superseding ingest applied %d, want 1", n)
	}
	latest = cat.GroupLatest("starlink", end)
	for _, s := range latest {
		if s.CatalogNumber == existing && !s.Epoch.Equal(newer.Epoch) {
			t.Fatalf("GroupLatest catalog %d epoch = %v, want superseding %v", existing, s.Epoch, newer.Epoch)
		}
	}
	hist := cat.History(existing, stStart, end)
	seen := map[int64]int{}
	for i := 1; i < len(hist); i++ {
		if hist[i].Epoch.Before(hist[i-1].Epoch) {
			t.Fatal("merged history not ascending")
		}
	}
	for _, s := range hist {
		seen[s.Epoch.Unix()]++
	}
	for epoch, n := range seen {
		if n > 1 {
			t.Fatalf("epoch %d appears %d times in merged history", epoch, n)
		}
	}
	if cat.DeltaSets() != 2 {
		t.Fatalf("DeltaSets = %d, want 2", cat.DeltaSets())
	}
}

func TestCatalogIngestNewGroup(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	cat := NewCatalog(archive, end)
	template := archive.GroupLatest("starlink", end)[0]
	cat.Ingest("oneweb", []*tle.TLE{cloneSet(template, 70001, end)}, end)

	groups := cat.Groups()
	if fmt.Sprint(groups) != "[oneweb starlink]" {
		t.Fatalf("Groups = %v, want [oneweb starlink]", groups)
	}
	if sets := cat.GroupLatest("oneweb", end); len(sets) != 1 || sets[0].CatalogNumber != 70001 {
		t.Fatalf("new group latest = %+v", sets)
	}
	if v, _, ok := cat.GroupVersion("oneweb"); !ok || v != 1 {
		t.Fatalf("new group version = %d,%v", v, ok)
	}
}

func TestCatalogHistoryEachMatchesHistory(t *testing.T) {
	archive, _, end := buildArchive(t, 10)
	cat := NewCatalog(archive, end)
	template := archive.GroupLatest("starlink", end)[0]
	existing := template.CatalogNumber
	// Interleave delta epochs between base epochs.
	batch := []*tle.TLE{
		cloneSet(template, existing, template.Epoch.Add(90*time.Minute)),
		cloneSet(template, existing, stStart.Add(30*time.Minute)),
	}
	cat.Ingest("starlink", batch, end)

	want := cat.History(existing, stStart, end)
	var got []*tle.TLE
	if err := cat.HistoryEach(existing, stStart, end, func(s *tle.TLE) error {
		got = append(got, s)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("HistoryEach yielded %d, History returned %d", len(got), len(want))
	}
	for i := range got {
		if got[i].CatalogNumber != want[i].CatalogNumber || !got[i].Epoch.Equal(want[i].Epoch) {
			t.Fatalf("element %d diverges", i)
		}
	}
	// A yield error aborts the walk.
	calls := 0
	sentinel := fmt.Errorf("stop")
	if err := cat.HistoryEach(existing, stStart, end, func(*tle.TLE) error {
		calls++
		return sentinel
	}); err != sentinel || calls != 1 {
		t.Fatalf("yield error: err=%v calls=%d", err, calls)
	}
}

// TestCatalogCOWRaceStress is the serving-plane race gate: bulk readers
// hammer GroupLatest and History while a writer live-ingests, all under the
// race detector. Readers must always observe a fully consistent state —
// ordered groups, ascending histories — and the writer must never lose a
// set. A goroutine-count check mirrors the internal/parallel leak tests.
func TestCatalogCOWRaceStress(t *testing.T) {
	archive, _, end := buildArchive(t, 10)
	cat := NewCatalog(archive, end)
	template := archive.GroupLatest("starlink", end)[0]

	before := runtime.NumGoroutine()
	const (
		readers = 4
		batches = 50
		perSet  = 4
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				latest := cat.GroupLatest("starlink", end)
				for i := 1; i < len(latest); i++ {
					if latest[i].CatalogNumber <= latest[i-1].CatalogNumber {
						errs <- fmt.Errorf("reader %d: unordered GroupLatest", r)
						return
					}
				}
				hist := cat.History(90000+r, stStart, end)
				for i := 1; i < len(hist); i++ {
					if hist[i].Epoch.Before(hist[i-1].Epoch) {
						errs <- fmt.Errorf("reader %d: descending history", r)
						return
					}
				}
			}
		}(r)
	}
	applied := 0
	for b := 0; b < batches; b++ {
		batch := make([]*tle.TLE, 0, readers*perSet)
		for r := 0; r < readers; r++ {
			for k := 0; k < perSet; k++ {
				batch = append(batch, cloneSet(template, 90000+r,
					end.Add(time.Duration(b*perSet+k)*time.Minute)))
			}
		}
		applied += cat.Ingest("starlink", batch, end)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if want := batches * readers * perSet; applied != want {
		t.Fatalf("writer applied %d sets, want %d (zero dropped ingests)", applied, want)
	}
	if got := cat.DeltaSets(); got != applied {
		t.Fatalf("DeltaSets = %d after %d applied sets", got, applied)
	}
	// The readers are gone: the goroutine count must return to its baseline
	// (with the same settle loop the parallel pool tests use).
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}
