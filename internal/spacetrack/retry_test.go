package spacetrack

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler fails the first failures requests with fail, then delegates.
func flakyHandler(failures int32, fail func(w http.ResponseWriter, n int32), then http.Handler) http.Handler {
	var n int32
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if i := atomic.AddInt32(&n, 1); i <= failures {
			fail(w, i)
			return
		}
		then.ServeHTTP(w, r)
	})
}

func noSleepClient(t *testing.T, ts *httptest.Server) (*Client, *int32) {
	t.Helper()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	var sleeps int32
	client.Sleep = func(ctx context.Context, d time.Duration) error {
		atomic.AddInt32(&sleeps, 1)
		return ctx.Err()
	}
	return client, &sleeps
}

func TestClientRetries5xxBurst(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	inner := NewServer(archive, end).Handler()
	for _, status := range []int{http.StatusInternalServerError, http.StatusServiceUnavailable} {
		ts := httptest.NewServer(flakyHandler(3, func(w http.ResponseWriter, _ int32) {
			http.Error(w, "upstream sad", status)
		}, inner))
		client, sleeps := noSleepClient(t, ts)
		sets, err := client.FetchGroup(context.Background(), "starlink")
		if err != nil {
			t.Fatalf("status %d burst not survived: %v", status, err)
		}
		if len(sets) == 0 {
			t.Fatalf("status %d: no sets after recovery", status)
		}
		if atomic.LoadInt32(sleeps) != 3 {
			t.Errorf("status %d: %d backoff sleeps, want 3", status, atomic.LoadInt32(sleeps))
		}
		ts.Close()
	}
}

func TestClient5xxExhaustsBudget(t *testing.T) {
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer always.Close()
	client, _ := noSleepClient(t, always)
	client.MaxRetries = 2
	err := client.Health(context.Background())
	if !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v, want ErrTooManyRetries", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadGateway {
		t.Fatalf("err = %v, want wrapped 502 StatusError", err)
	}
	var re *RetryError
	if !errors.As(err, &re) || re.Attempts != 3 {
		t.Fatalf("err = %v, want RetryError after 3 attempts", err)
	}
}

func TestClientRetriesConnectionReset(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	inner := NewServer(archive, end).Handler()
	// panic(http.ErrAbortHandler) aborts the response mid-flight: the client
	// sees a transport-level error, the shape of a reset connection.
	ts := httptest.NewServer(flakyHandler(2, func(w http.ResponseWriter, _ int32) {
		panic(http.ErrAbortHandler)
	}, inner))
	defer ts.Close()
	client, sleeps := noSleepClient(t, ts)
	sets, err := client.FetchGroup(context.Background(), "starlink")
	if err != nil {
		t.Fatalf("connection resets not survived: %v", err)
	}
	if len(sets) == 0 || atomic.LoadInt32(sleeps) != 2 {
		t.Fatalf("sets=%d sleeps=%d, want >0 sets after 2 retries", len(sets), atomic.LoadInt32(sleeps))
	}
}

func TestClientRetriesTruncatedBody(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	inner := NewServer(archive, end).Handler()
	ts := httptest.NewServer(flakyHandler(2, func(w http.ResponseWriter, _ int32) {
		// Declare more bytes than we send: the client's body read dies with
		// an unexpected EOF when the handler returns.
		w.Header().Set("Content-Length", "4096")
		w.Write([]byte("1 44713U 19074A"))
	}, inner))
	defer ts.Close()
	client, _ := noSleepClient(t, ts)
	sets, err := client.FetchGroup(context.Background(), "starlink")
	if err != nil {
		t.Fatalf("truncated bodies not survived: %v", err)
	}
	if len(sets) == 0 {
		t.Fatal("no sets after truncation recovery")
	}
}

func TestClientTruncationExhaustsTyped(t *testing.T) {
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "4096")
		w.Write([]byte("short"))
	}))
	defer always.Close()
	client, _ := noSleepClient(t, always)
	client.MaxRetries = 1
	err := client.Health(context.Background())
	if !errors.Is(err, ErrTruncatedBody) || !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v, want ErrTruncatedBody under ErrTooManyRetries", err)
	}
}

func TestClientHonoursRetryAfterOver429(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	inner := NewServer(archive, end).Handler()
	ts := httptest.NewServer(flakyHandler(1, func(w http.ResponseWriter, _ int32) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "slow down", http.StatusTooManyRequests)
	}, inner))
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	var got time.Duration
	client.Sleep = func(ctx context.Context, d time.Duration) error {
		got = d
		return nil
	}
	if _, err := client.FetchGroup(context.Background(), "starlink"); err != nil {
		t.Fatal(err)
	}
	if got != 7*time.Second {
		t.Fatalf("slept %v, want the server's Retry-After of 7s", got)
	}
}

func TestClientHonoursRetryAfterOver503(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	inner := NewServer(archive, end).Handler()
	// The admission layer's shape: a 503 carrying the computed refill delay.
	ts := httptest.NewServer(flakyHandler(1, func(w http.ResponseWriter, _ int32) {
		w.Header().Set("Retry-After", "3")
		http.Error(w, "over capacity", http.StatusServiceUnavailable)
	}, inner))
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	var got time.Duration
	client.Sleep = func(ctx context.Context, d time.Duration) error {
		got = d
		return nil
	}
	if _, err := client.FetchGroup(context.Background(), "starlink"); err != nil {
		t.Fatal(err)
	}
	if got != 3*time.Second {
		t.Fatalf("slept %v, want the server's Retry-After of 3s", got)
	}

	// Exhausting the budget against a persistent 503 still surfaces the
	// typed StatusError, not the internal delay wrapper.
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "shed", http.StatusServiceUnavailable)
	}))
	defer always.Close()
	exhausted, _ := noSleepClient(t, always)
	exhausted.MaxRetries = 1
	err = exhausted.Health(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want wrapped 503 StatusError", err)
	}
	if !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v, want ErrTooManyRetries", err)
	}
}

func TestClientConditionalFetch(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	srv := NewServer(archive, end)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	first, err := client.FetchGroupConditional(ctx, "starlink", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if first.NotModified || len(first.Sets) == 0 {
		t.Fatalf("unconditional fetch: notModified=%v sets=%d", first.NotModified, len(first.Sets))
	}
	if first.ETag == "" || first.LastModified == "" {
		t.Fatalf("missing validators: %+v", first)
	}

	// Revalidating with the returned validators confirms the copy without a
	// body, and echoes the validators for the next poll.
	second, err := client.FetchGroupConditional(ctx, "starlink", first.ETag, first.LastModified)
	if err != nil {
		t.Fatal(err)
	}
	if !second.NotModified || len(second.Sets) != 0 {
		t.Fatalf("revalidation: notModified=%v sets=%d, want 304", second.NotModified, len(second.Sets))
	}
	if second.ETag != first.ETag {
		t.Fatalf("304 lost the ETag: %q vs %q", second.ETag, first.ETag)
	}

	// A stale validator transfers the full catalog again.
	third, err := client.FetchGroupConditional(ctx, "starlink", `"stale"`, "")
	if err != nil {
		t.Fatal(err)
	}
	if third.NotModified || len(third.Sets) != len(first.Sets) {
		t.Fatalf("stale revalidation: notModified=%v sets=%d, want %d", third.NotModified, len(third.Sets), len(first.Sets))
	}

	// A 304 to an unconditional request is a protocol violation the client
	// must reject rather than treat as an empty catalog.
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotModified)
	}))
	defer broken.Close()
	bclient, err := NewClient(broken.URL, broken.Client())
	if err != nil {
		t.Fatal(err)
	}
	var se *StatusError
	if _, err := bclient.FetchGroupConditional(ctx, "starlink", "", ""); !errors.As(err, &se) || se.Code != http.StatusNotModified {
		t.Fatalf("spurious 304 err = %v, want StatusError{304}", err)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	sleepsFor := func(seed int64) []time.Duration {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "down", http.StatusServiceUnavailable)
		}))
		defer ts.Close()
		client, err := NewClient(ts.URL, ts.Client())
		if err != nil {
			t.Fatal(err)
		}
		client.Seed = seed
		client.MaxRetries = 4
		var out []time.Duration
		client.Sleep = func(ctx context.Context, d time.Duration) error {
			out = append(out, d)
			return nil
		}
		client.Health(context.Background())
		return out
	}
	a, b := sleepsFor(42), sleepsFor(42)
	if len(a) != 4 || fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	c := sleepsFor(43)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("different seeds produced identical jitter: %v", a)
	}
	// Backoff grows: each delay's deterministic floor doubles.
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1]/4 {
			t.Fatalf("backoff not growing: %v", a)
		}
	}
}

func TestFetchHistoriesTypedPermanentErrors(t *testing.T) {
	archive, _, end := buildArchive(t, 10)
	inner := NewServer(archive, end).Handler()
	// Catalog 44714 is permanently broken: a non-retryable 404.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("catalog") == "44714" {
			http.Error(w, "object vanished", http.StatusNotFound)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	client, _ := noSleepClient(t, ts)
	cats := []int{44713, 44714, 44715}
	results, err := FetchHistories(context.Background(), client, cats, stStart, stStart.Add(10*24*time.Hour), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	for _, r := range results {
		if r.Catalog == 44714 {
			var ce *CatalogError
			if !errors.As(r.Err, &ce) || ce.Catalog != 44714 {
				t.Fatalf("broken catalog err = %v, want *CatalogError{44714}", r.Err)
			}
			var se *StatusError
			if !errors.As(r.Err, &se) || se.Code != http.StatusNotFound {
				t.Fatalf("broken catalog err = %v, want wrapped 404", r.Err)
			}
			continue
		}
		if r.Err != nil || len(r.Sets) == 0 {
			t.Fatalf("healthy catalog %d: err=%v sets=%d", r.Catalog, r.Err, len(r.Sets))
		}
	}
	fails := Failures(results)
	if len(fails) != 1 || fails[0].Catalog != 44714 {
		t.Fatalf("Failures = %+v, want exactly catalog 44714", fails)
	}
}

func TestFetchHistoriesAbortNeverSilentlyDrops(t *testing.T) {
	blocked := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer blocked.Close()
	client, err := NewClient(blocked.URL, blocked.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	catalogs := make([]int, 30)
	for i := range catalogs {
		catalogs[i] = 44713 + i
	}
	results, err := FetchHistories(ctx, client, catalogs, stStart, stStart.Add(24*time.Hour), 4)
	if err == nil {
		t.Fatal("aborted bulk fetch reported success")
	}
	notAttempted := 0
	for i, r := range results {
		if r.Catalog != catalogs[i] {
			t.Fatalf("result %d lost its catalog: %+v", i, r)
		}
		if r.Err == nil {
			t.Fatalf("catalog %d: aborted fetch has no error", r.Catalog)
		}
		var ce *CatalogError
		if !errors.As(r.Err, &ce) {
			t.Fatalf("catalog %d err = %v, want *CatalogError", r.Catalog, r.Err)
		}
		if errors.Is(r.Err, ErrNotAttempted) {
			notAttempted++
		}
	}
	if notAttempted == 0 {
		t.Error("expected some catalogs to be marked not-attempted after abort")
	}
}
