package spacetrack

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"cosmicdance/internal/tle"
)

// doGet issues one request with optional headers and returns the response
// with its fully-read body.
func doGet(t *testing.T, ts *httptest.Server, path string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	// The default transport would silently decompress; the gzip tests need
	// the wire bytes, so disable automatic negotiation.
	tr := &http.Transport{DisableCompression: true}
	defer tr.CloseIdleConnections()
	resp, err := (&http.Client{Transport: tr}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestGroupConditionalFetch(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	cat := NewCatalog(archive, end)
	srv := NewServer(cat, end)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	const path = "/NORAD/elements/gp.php?GROUP=starlink&FORMAT=tle"

	resp, body := doGet(t, ts, path, nil)
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("first fetch: %d, %d bytes", resp.StatusCode, len(body))
	}
	etag := resp.Header.Get("ETag")
	lastMod := resp.Header.Get("Last-Modified")
	if etag == "" || lastMod == "" {
		t.Fatalf("missing validators: ETag=%q Last-Modified=%q", etag, lastMod)
	}

	// Revalidation with the returned ETag answers 304 with no body.
	resp, body = doGet(t, ts, path, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("If-None-Match: %d with %d bytes, want 304 empty", resp.StatusCode, len(body))
	}
	// Same via If-Modified-Since.
	resp, body = doGet(t, ts, path, map[string]string{"If-Modified-Since": lastMod})
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("If-Modified-Since: %d with %d bytes, want 304 empty", resp.StatusCode, len(body))
	}
	// A stale validator still gets the full body.
	resp, _ = doGet(t, ts, path, map[string]string{"If-None-Match": `"bogus"`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale ETag: %d, want 200", resp.StatusCode)
	}

	// Ingest invalidates: the old ETag stops matching and the refetched
	// body contains the new satellite.
	template := archive.GroupLatest("starlink", end)[0]
	cat.Ingest("starlink", []*tle.TLE{cloneSet(template, 90055, end.Add(-time.Minute))}, end)
	resp, body = doGet(t, ts, path, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-ingest revalidation: %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(body), "90055") {
		t.Fatal("refetched body missing the ingested satellite")
	}
	if resp.Header.Get("ETag") == etag {
		t.Fatal("ingest did not rotate the ETag")
	}
}

func TestGzipGroupAndHistoryStreaming(t *testing.T) {
	archive, _, end := buildArchive(t, 10)
	cat := NewCatalog(archive, end)
	srv := NewServer(cat, end)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	catNum := archive.GroupLatest("starlink", end)[0].CatalogNumber
	paths := []string{
		"/NORAD/elements/gp.php?GROUP=starlink&FORMAT=tle",
		"/NORAD/elements/gp.php?GROUP=starlink&FORMAT=json",
		"/history?catalog=" + strconv.Itoa(catNum),
		"/history?catalog=" + strconv.Itoa(catNum) + "&format=json",
	}
	for _, path := range paths {
		plainResp, plain := doGet(t, ts, path, nil)
		if plainResp.StatusCode != http.StatusOK || plainResp.Header.Get("Content-Encoding") != "" {
			t.Fatalf("%s plain: %d enc=%q", path, plainResp.StatusCode, plainResp.Header.Get("Content-Encoding"))
		}
		zresp, zbody := doGet(t, ts, path, map[string]string{"Accept-Encoding": "gzip"})
		if zresp.Header.Get("Content-Encoding") != "gzip" {
			t.Fatalf("%s: no gzip negotiation", path)
		}
		if len(zbody) >= len(plain) {
			t.Fatalf("%s: compressed %d >= plain %d bytes", path, len(zbody), len(plain))
		}
		zr, err := gzip.NewReader(bytes.NewReader(zbody))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		inflated, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("%s: inflate: %v", path, err)
		}
		if err := zr.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(inflated, plain) {
			t.Fatalf("%s: gzip body inflates to different content", path)
		}
	}

	// The streamed history equals the materialized one: serve the same
	// window through the bare (non-streaming) base archive and compare.
	bare := NewServer(archive, end)
	bts := httptest.NewServer(bare.Handler())
	defer bts.Close()
	_, streamed := doGet(t, ts, paths[2], nil)
	_, materialized := doGet(t, bts, paths[2], nil)
	if !bytes.Equal(streamed, materialized) {
		t.Fatal("streamed history differs from materialized history")
	}
}

func TestAdmissionCapacity503(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	srv := NewServer(archive, end)
	srv.CapacityPerSec = 0.5 // one token every 2s
	srv.CapacityBurst = 2
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	const path = "/NORAD/elements/gp.php?GROUP=starlink"

	for i := 0; i < 2; i++ {
		if resp, _ := doGet(t, ts, path, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("capacity burst request %d: %d", i, resp.StatusCode)
		}
	}
	resp, _ := doGet(t, ts, path, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over capacity: %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("capacity Retry-After = %q, want 2 (one token at 0.5/s)", ra)
	}
	if srv.Overloaded() != 1 {
		t.Fatalf("Overloaded = %d, want 1", srv.Overloaded())
	}
	// Admission shedding is not per-client rate limiting.
	if srv.RateLimited() != 0 {
		t.Fatalf("RateLimited = %d, want 0", srv.RateLimited())
	}
}

// blockingArchive parks GroupLatest until released, so tests can hold a
// request in flight.
type blockingArchive struct {
	Archive
	enter   chan struct{}
	release chan struct{}
}

func (a *blockingArchive) GroupLatest(group string, at time.Time) []*tle.TLE {
	a.enter <- struct{}{}
	<-a.release
	return a.Archive.GroupLatest(group, at)
}

func TestAdmissionMaxInFlight503(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	blocking := &blockingArchive{
		Archive: archive,
		enter:   make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	srv := NewServer(blocking, end)
	srv.MaxInFlight = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	const path = "/NORAD/elements/gp.php?GROUP=starlink"

	done := make(chan int, 1)
	go func() {
		resp, _ := http.Get(ts.URL + path)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-blocking.enter // the first request is now parked inside the handler

	resp, _ := doGet(t, ts, path, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second in-flight request: %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("saturated 503 missing Retry-After")
	}
	close(blocking.release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("parked request finished with %d", code)
	}
	// With the slot free the server admits again.
	go func() { <-blocking.enter; close(blocking.enter) }()
	resp, _ = doGet(t, ts, path, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain request: %d, want 200", resp.StatusCode)
	}
	if srv.Overloaded() != 1 {
		t.Fatalf("Overloaded = %d, want 1", srv.Overloaded())
	}
}

func TestIngestEndpoint(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	cat := NewCatalog(archive, end)
	srv := NewServer(cat, end)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	template := archive.GroupLatest("starlink", end)[0]
	var buf bytes.Buffer
	if err := tle.Write(&buf, []*tle.TLE{cloneSet(template, 91000, end.Add(-time.Minute))}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/ingest?group=starlink", "text/plain", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}
	if got := strings.TrimSpace(string(body)); got != `{"received":1,"applied":1}` {
		t.Fatalf("ingest response = %s", got)
	}
	if sets := cat.GroupLatest("starlink", end); !containsCatalog(sets, 91000) {
		t.Fatal("ingested satellite not served")
	}

	// GET is rejected, garbage is rejected whole, missing group is rejected.
	resp, _ = doGet(t, ts, "/ingest?group=starlink", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest: %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/ingest?group=starlink", "text/plain", strings.NewReader("not a tle\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage ingest: %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/ingest", "text/plain", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("groupless ingest: %d, want 400", resp.StatusCode)
	}

	// A non-ingest archive never mounts the endpoint.
	bare := NewServer(archive, end)
	bts := httptest.NewServer(bare.Handler())
	defer bts.Close()
	resp, err = http.Post(bts.URL+"/ingest?group=starlink", "text/plain", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ingest on read-only archive: %d, want 404", resp.StatusCode)
	}
}

func containsCatalog(sets []*tle.TLE, catalog int) bool {
	for _, s := range sets {
		if s.CatalogNumber == catalog {
			return true
		}
	}
	return false
}
