package spacetrack

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/dst"
)

var stStart = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

// buildArchive runs a small constellation and wraps it as an archive.
func buildArchive(t *testing.T, days int) (*ResultArchive, *constellation.Result, time.Time) {
	t.Helper()
	cfg := constellation.DefaultConfig()
	cfg.Start = stStart
	cfg.Hours = days * 24
	cfg.InitialFleet = 20
	cfg.GrossErrorProb = 0
	cfg.DecommissionPerYear = 0
	vals := make([]float64, cfg.Hours)
	for i := range vals {
		vals[i] = -10
	}
	res, err := constellation.Run(context.Background(), cfg, dst.FromValues(stStart, vals))
	if err != nil {
		t.Fatal(err)
	}
	end := stStart.Add(time.Duration(cfg.Hours) * time.Hour)
	return NewResultArchive("starlink", res), res, end
}

func newTestServer(t *testing.T, days int) (*Server, *httptest.Server, *Client) {
	t.Helper()
	archive, _, end := buildArchive(t, days)
	srv := NewServer(archive, end)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return srv, ts, client
}

func TestFetchGroup(t *testing.T) {
	_, _, client := newTestServer(t, 30)
	sets, err := client.FetchGroup(context.Background(), "starlink")
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 20 {
		t.Fatalf("fetched %d sets, want 20 (one latest per satellite)", len(sets))
	}
	for _, s := range sets {
		if s.Name == "" {
			t.Fatal("3LE fetch lost names")
		}
	}
	nums := CatalogNumbers(sets)
	if len(nums) != 20 {
		t.Fatalf("catalog numbers = %d", len(nums))
	}
	for i := 1; i < len(nums); i++ {
		if nums[i] <= nums[i-1] {
			t.Fatal("catalog numbers not sorted/distinct")
		}
	}
}

func TestFetchGroupErrors(t *testing.T) {
	_, _, client := newTestServer(t, 5)
	_, err := client.FetchGroup(context.Background(), "oneweb")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("unknown group err = %v, want 404 StatusError", err)
	}
}

func TestFetchHistoryWindow(t *testing.T) {
	_, _, client := newTestServer(t, 40)
	ctx := context.Background()
	all, err := client.FetchGroup(ctx, "starlink")
	if err != nil {
		t.Fatal(err)
	}
	cat := all[0].CatalogNumber

	full, err := client.FetchHistory(ctx, cat, stStart, stStart.Add(40*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 40 { // ~2/day over 40 days
		t.Fatalf("history = %d sets, want dozens", len(full))
	}
	// A 10-day sub-window is a strict subset, all epochs inside.
	from, to := stStart.Add(10*24*time.Hour), stStart.Add(20*24*time.Hour)
	window, err := client.FetchHistory(ctx, cat, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(window) == 0 || len(window) >= len(full) {
		t.Fatalf("window = %d of %d", len(window), len(full))
	}
	for _, s := range window {
		if s.Epoch.Before(from) || s.Epoch.After(to) {
			t.Fatalf("epoch %v outside window", s.Epoch)
		}
	}
	// Ascending.
	for i := 1; i < len(window); i++ {
		if window[i].Epoch.Before(window[i-1].Epoch) {
			t.Fatal("history not ascending")
		}
	}
}

func TestHistoryUnknownCatalogIsEmpty(t *testing.T) {
	_, _, client := newTestServer(t, 5)
	sets, err := client.FetchHistory(context.Background(), 99999, stStart, stStart.Add(5*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 0 {
		t.Fatalf("unknown catalog returned %d sets", len(sets))
	}
}

func TestServerBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, 5)
	cases := []string{
		"/NORAD/elements/gp.php",                           // missing GROUP
		"/NORAD/elements/gp.php?GROUP=starlink&FORMAT=xml", // bad format
		"/history?catalog=abc",
		"/history?catalog=44713&from=not-a-time",
		"/history?catalog=44713&from=2023-02-01T00:00:00Z&to=2023-01-01T00:00:00Z",
	}
	for _, path := range cases {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s -> %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestHealth(t *testing.T) {
	_, _, client := newTestServer(t, 5)
	if err := client.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestRateLimitAndClientRetry(t *testing.T) {
	srv, ts, client := newTestServer(t, 5)
	srv.RatePerSec = 50
	srv.Burst = 2
	// The limiter runs on the injected service clock: advance it instead of
	// sleeping, so the refill the client waits for is deterministic.
	base := srv.Now()
	var offset atomic.Int64
	srv.Now = func() time.Time { return base.Add(time.Duration(offset.Load())) }
	var sleeps int32
	client.Sleep = func(ctx context.Context, d time.Duration) error {
		atomic.AddInt32(&sleeps, 1)
		offset.Add(int64(50 * time.Millisecond)) // refill a couple of tokens
		return nil
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := client.FetchGroup(ctx, "starlink"); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if atomic.LoadInt32(&sleeps) == 0 {
		t.Error("client never hit the rate limit; limiter inert")
	}
	// The health endpoint is deliberately unthrottled.
	srv.RatePerSec = 0.0001
	if err := client.Health(ctx); err != nil {
		t.Errorf("healthz throttled: %v", err)
	}
	_ = ts
}

func TestClientRetriesExhausted(t *testing.T) {
	always429 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		http.Error(w, "slow down", http.StatusTooManyRequests)
	}))
	defer always429.Close()
	client, err := NewClient(always429.URL, always429.Client())
	if err != nil {
		t.Fatal(err)
	}
	client.MaxRetries = 2
	client.Sleep = func(ctx context.Context, d time.Duration) error { return nil }
	if err := client.Health(context.Background()); !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v, want ErrTooManyRetries", err)
	}
}

func TestClientContextCancellation(t *testing.T) {
	blocked := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer blocked.Close()
	client, err := NewClient(blocked.URL, blocked.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := client.Health(ctx); err == nil {
		t.Fatal("cancelled request succeeded")
	}
}

func TestNewClientBadURL(t *testing.T) {
	if _, err := NewClient("://nope", nil); err == nil {
		t.Error("bad URL accepted")
	}
}

func TestCachingFetcherIncremental(t *testing.T) {
	archive, _, end := buildArchive(t, 40)
	srv := NewServer(archive, end)
	var hits int32
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&hits, 1)
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(counting)
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	fetcher, err := NewCachingFetcher(client, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cat := 44713

	// First fetch: one server hit.
	w1, err := fetcher.History(ctx, cat, stStart, stStart.Add(20*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&hits); got != 1 {
		t.Fatalf("hits after first fetch = %d", got)
	}
	// Same window again: served from cache, no new hit.
	w2, err := fetcher.History(ctx, cat, stStart, stStart.Add(20*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&hits); got != 1 {
		t.Fatalf("hits after cached fetch = %d, want 1", got)
	}
	if len(w1) != len(w2) {
		t.Fatalf("cache changed the answer: %d vs %d", len(w1), len(w2))
	}
	// Extended window: exactly one incremental hit, answer covers more.
	w3, err := fetcher.History(ctx, cat, stStart, stStart.Add(40*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&hits); got != 2 {
		t.Fatalf("hits after extension = %d, want 2", got)
	}
	if len(w3) <= len(w1) {
		t.Fatalf("extension did not grow history: %d vs %d", len(w3), len(w1))
	}
	// Sub-window of the cache: no hit, filtered correctly.
	from, to := stStart.Add(5*24*time.Hour), stStart.Add(10*24*time.Hour)
	w4, err := fetcher.History(ctx, cat, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&hits); got != 2 {
		t.Fatalf("hits after sub-window = %d, want 2", got)
	}
	for _, s := range w4 {
		if s.Epoch.Before(from) || s.Epoch.After(to) {
			t.Fatalf("epoch %v outside sub-window", s.Epoch)
		}
	}
}

func TestCachingFetcherPersistsAcrossInstances(t *testing.T) {
	archive, _, end := buildArchive(t, 10)
	srv := NewServer(archive, end)
	var hits int32
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&hits, 1)
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(counting)
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ctx := context.Background()

	f1, err := NewCachingFetcher(client, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f1.History(ctx, 44713, stStart, stStart.Add(10*24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	// A fresh fetcher over the same directory serves from disk.
	f2, err := NewCachingFetcher(client, dir)
	if err != nil {
		t.Fatal(err)
	}
	sets, err := f2.History(ctx, 44713, stStart, stStart.Add(10*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) == 0 {
		t.Fatal("persisted cache empty")
	}
	if got := atomic.LoadInt32(&hits); got != 1 {
		t.Fatalf("hits = %d, want 1 (second instance must not refetch)", got)
	}
}

func TestArchiveGroupLatestRespectsTime(t *testing.T) {
	archive, res, _ := buildArchive(t, 30)
	// At a mid-run instant, the latest elements must have epochs at or
	// before that instant.
	at := stStart.Add(15 * 24 * time.Hour)
	sets := archive.GroupLatest("starlink", at)
	if len(sets) == 0 {
		t.Fatal("no sets")
	}
	for _, s := range sets {
		if s.Epoch.After(at) {
			t.Fatalf("epoch %v after query time %v", s.Epoch, at)
		}
	}
	// Before any samples: empty.
	if got := archive.GroupLatest("starlink", stStart.Add(-time.Hour)); len(got) != 0 {
		t.Fatalf("pre-launch latest = %d sets", len(got))
	}
	_ = res
}

func TestJSONFormatRoundTrip(t *testing.T) {
	_, _, client := newTestServer(t, 20)
	client.UseJSON = true
	ctx := context.Background()
	sets, err := client.FetchGroup(ctx, "starlink")
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 20 {
		t.Fatalf("JSON group fetch = %d sets", len(sets))
	}
	if sets[0].Name == "" {
		t.Error("OMM lost the object name")
	}
	history, err := client.FetchHistory(ctx, sets[0].CatalogNumber, stStart, stStart.Add(20*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(history) == 0 {
		t.Fatal("JSON history empty")
	}
	// The JSON and text paths must agree.
	client.UseJSON = false
	textHistory, err := client.FetchHistory(ctx, sets[0].CatalogNumber, stStart, stStart.Add(20*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != len(textHistory) {
		t.Fatalf("JSON history = %d sets, text = %d", len(history), len(textHistory))
	}
	for i := range history {
		if history[i].CatalogNumber != textHistory[i].CatalogNumber {
			t.Fatalf("set %d catalog mismatch", i)
		}
		// Text TLE epochs round through the YYDDD.frac field; agree to ms.
		if d := history[i].Epoch.Sub(textHistory[i].Epoch); d > time.Millisecond || d < -time.Millisecond {
			t.Fatalf("set %d epoch mismatch: %v", i, d)
		}
	}
}

func TestFetchHistoriesBulk(t *testing.T) {
	_, _, client := newTestServer(t, 20)
	ctx := context.Background()
	current, err := client.FetchGroup(ctx, "starlink")
	if err != nil {
		t.Fatal(err)
	}
	catalogs := CatalogNumbers(current)
	results, err := FetchHistories(ctx, client, catalogs, stStart, stStart.Add(20*24*time.Hour), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(catalogs) {
		t.Fatalf("results = %d, want %d", len(results), len(catalogs))
	}
	total := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("catalog %d: %v", r.Catalog, r.Err)
		}
		if r.Catalog != catalogs[i] {
			t.Fatalf("result %d out of order: %d vs %d", i, r.Catalog, catalogs[i])
		}
		total += len(r.Sets)
	}
	if total < len(catalogs)*20 {
		t.Errorf("total sets = %d, want dozens per satellite", total)
	}
	// Empty input.
	if got, err := FetchHistories(ctx, client, nil, stStart, stStart, 3); err != nil || got != nil {
		t.Errorf("empty input: %v, %v", got, err)
	}
	// Zero workers defaults rather than deadlocking.
	if _, err := FetchHistories(ctx, client, catalogs[:2], stStart, stStart.Add(24*time.Hour), 0); err != nil {
		t.Errorf("workers=0: %v", err)
	}
}

func TestFetchHistoriesCancellation(t *testing.T) {
	blocked := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer blocked.Close()
	client, err := NewClient(blocked.URL, blocked.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	catalogs := make([]int, 50)
	for i := range catalogs {
		catalogs[i] = 44713 + i
	}
	_, err = FetchHistories(ctx, client, catalogs, stStart, stStart.Add(24*time.Hour), 4)
	if err == nil {
		t.Fatal("cancelled bulk fetch reported success")
	}
}

func TestFetchHistoriesWithCache(t *testing.T) {
	_, ts, client := newTestServer(t, 10)
	_ = ts
	fetcher, err := NewCachingFetcher(client, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	results, err := FetchHistories(ctx, fetcher, []int{44713, 44714, 44715}, stStart, stStart.Add(10*24*time.Hour), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil || len(r.Sets) == 0 {
			t.Fatalf("cached bulk: %+v", r)
		}
	}
}
