// Package spacetrack simulates the two public tracking services CosmicDance
// ingests from — CelesTrak (current catalog by group) and Space-Track
// (historical element sets per object) — as an in-process HTTP service plus a
// production-grade client (rate-limit aware, context-driven, incrementally
// caching). The paper's pipeline fetches current TLEs to learn catalog
// numbers once, then pulls per-object history incrementally; the client here
// exposes exactly that workflow.
package spacetrack

import (
	"sort"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/tle"
)

// Archive is the data source a Server publishes.
type Archive interface {
	// Groups lists the constellation group names served.
	Groups() []string
	// GroupLatest returns the latest element set of every object in the
	// group as of time at (objects with no observations yet are omitted).
	GroupLatest(group string, at time.Time) []*tle.TLE
	// History returns the element sets of one object with epochs in
	// [from, to], ascending.
	History(catalog int, from, to time.Time) []*tle.TLE
}

// ResultArchive adapts a constellation simulation result into an Archive.
type ResultArchive struct {
	group  string
	names  map[int]string
	series map[int][]constellation.Sample // ascending epochs
	cats   []int
}

// NewResultArchive indexes a simulation result under the given group name
// (e.g. "starlink").
func NewResultArchive(group string, res *constellation.Result) *ResultArchive {
	a := &ResultArchive{
		group:  group,
		names:  make(map[int]string, len(res.Sats)),
		series: make(map[int][]constellation.Sample),
	}
	for i := range res.Sats {
		a.names[res.Sats[i].Catalog] = res.Sats[i].Name
	}
	for _, ss := range res.GroupByCatalog() {
		a.series[ss.Catalog] = ss.Samples
		a.cats = append(a.cats, ss.Catalog)
	}
	sort.Ints(a.cats)
	return a
}

// Groups implements Archive.
func (a *ResultArchive) Groups() []string { return []string{a.group} }

// GroupLatest implements Archive.
func (a *ResultArchive) GroupLatest(group string, at time.Time) []*tle.TLE {
	if group != a.group {
		return nil
	}
	cutoff := at.Unix()
	out := make([]*tle.TLE, 0, len(a.cats))
	for _, cat := range a.cats {
		samples := a.series[cat]
		i := sort.Search(len(samples), func(i int) bool { return samples[i].Epoch > cutoff })
		if i == 0 {
			continue
		}
		t, err := samples[i-1].TLE(a.names[cat])
		if err != nil {
			continue
		}
		out = append(out, t)
	}
	return out
}

// History implements Archive.
func (a *ResultArchive) History(catalog int, from, to time.Time) []*tle.TLE {
	samples := a.series[catalog]
	lo := sort.Search(len(samples), func(i int) bool { return samples[i].Epoch >= from.Unix() })
	hi := sort.Search(len(samples), func(i int) bool { return samples[i].Epoch > to.Unix() })
	if lo >= hi {
		return nil
	}
	out := make([]*tle.TLE, 0, hi-lo)
	for _, s := range samples[lo:hi] {
		t, err := s.TLE(a.names[catalog])
		if err != nil {
			continue
		}
		out = append(out, t)
	}
	return out
}
