package spacetrack

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cosmicdance/internal/obs"
)

// TestTraceHeaderPropagation pins the trace plumbing end to end: an arriving
// Cosmic-Trace header is honoured and echoed, a header-less request gets an
// ID minted from the server's seeded stream, and the completed request lands
// in the flight recorder with its phase spans.
func TestTraceHeaderPropagation(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	srv := NewServer(archive, end)
	srv.Trace = obs.NewIDStream(42, 0)
	flight := obs.NewFlightRecorder(64, srv.Now)
	srv.Flight = flight
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	const path = "/NORAD/elements/gp.php?GROUP=starlink&FORMAT=tle"

	// A client-minted ID is honoured and echoed verbatim.
	want := obs.TraceID(0xdeadbeefcafef00d).String()
	resp, _ := doGet(t, ts, path, map[string]string{obs.TraceHeader: want})
	if got := resp.Header.Get(obs.TraceHeader); got != want {
		t.Fatalf("echoed trace %q, want %q", got, want)
	}

	// A header-less request gets a server-minted ID — the stream's first.
	minted := obs.NewIDStream(42, 0).Next().String()
	resp, _ = doGet(t, ts, path, nil)
	if got := resp.Header.Get(obs.TraceHeader); got != minted {
		t.Fatalf("minted trace %q, want %q", got, minted)
	}

	// A malformed header degrades to a minted ID, never an error.
	resp, _ = doGet(t, ts, path, map[string]string{obs.TraceHeader: "not-hex"})
	if resp.StatusCode != http.StatusOK || resp.Header.Get(obs.TraceHeader) == "" {
		t.Fatalf("malformed header: status %d trace %q", resp.StatusCode, resp.Header.Get(obs.TraceHeader))
	}

	// The flight recorder holds all three requests with their spans.
	events := flight.Dump()
	if len(events) != 3 {
		t.Fatalf("flight recorded %d events, want 3", len(events))
	}
	first := events[0]
	if first.Kind != "request" || first.Trace != want || first.Endpoint != "group" || first.Status != http.StatusOK {
		t.Fatalf("first flight event = %+v", first)
	}
	names := make([]string, len(first.Spans))
	for i, sp := range first.Spans {
		names[i] = sp.Name
	}
	if got := strings.Join(names, ","); got != "admission,catalog_read,gzip" {
		t.Fatalf("request spans = %q, want admission,catalog_read,gzip", got)
	}
	if events[1].Trace != minted {
		t.Fatalf("second flight event trace %q, want minted %q", events[1].Trace, minted)
	}
}

// TestRejectsCarryTraces pins the storm post-mortem's primary key: requests
// shed by the per-client bucket land in the flight recorder as reject events
// naming their trace IDs, and burn SLO error budget.
func TestRejectsCarryTraces(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	srv := NewServer(archive, end) // pinned clock: the bucket never refills
	srv.RatePerSec = 1
	srv.Burst = 2
	flight := obs.NewFlightRecorder(64, srv.Now)
	srv.Flight = flight
	srv.SLO = obs.NewSLOTracker(nil, []obs.Objective{
		{Endpoint: "group", Availability: 0.99, LatencyP99Ms: 400, Window: 5 * time.Minute},
	}, srv.Now)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const path = "/NORAD/elements/gp.php?GROUP=starlink&FORMAT=tle"
	stream := obs.NewIDStream(7, 1)
	var traces []string
	var rejected []string
	for i := 0; i < 5; i++ {
		id := stream.Next().String()
		traces = append(traces, id)
		resp, _ := doGet(t, ts, path, map[string]string{obs.TraceHeader: id})
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected = append(rejected, id)
			// The echo precedes admission, so even the reject names its trace.
			if got := resp.Header.Get(obs.TraceHeader); got != id {
				t.Fatalf("reject echoed %q, want %q", got, id)
			}
		}
	}
	if len(rejected) != 3 {
		t.Fatalf("rejected %d of 5, want 3 (burst 2, frozen clock)", len(rejected))
	}

	got := flight.RejectedTraces()
	if len(got) != len(rejected) {
		t.Fatalf("flight names %d rejected traces %v, want %d %v", len(got), got, len(rejected), rejected)
	}
	want := map[string]bool{}
	for _, id := range rejected {
		want[id] = true
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("flight names unrejected trace %s", id)
		}
	}
	for _, ev := range flight.Dump() {
		if ev.Kind == "reject" && (ev.Detail != "per_client" || ev.Status != http.StatusTooManyRequests) {
			t.Fatalf("reject event = %+v", ev)
		}
	}

	rep := srv.SLO.Report()
	if len(rep) != 1 || rep[0].Ops != 5 || rep[0].Errors != 3 {
		t.Fatalf("slo = %+v, want 5 ops / 3 errors", rep)
	}
	if rep[0].Verdict != "fail" {
		t.Fatalf("60%% error rate passed the SLO: %+v", rep[0])
	}
}

// TestLatencyExemplars pins the exemplar path: a traced request leaves its
// trace ID on the latency bucket it landed in, JSON-snapshot only.
func TestLatencyExemplars(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	srv := NewServer(archive, end)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id := obs.TraceID(0x1122334455667788)
	resp, _ := doGet(t, ts, "/NORAD/elements/gp.php?GROUP=starlink&FORMAT=tle",
		map[string]string{obs.TraceHeader: id.String()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	for _, m := range obs.Default().Snapshot().Histograms {
		if m.Name != "spacetrack_server_latency_seconds" || !strings.Contains(m.Labels, `endpoint="group"`) {
			continue
		}
		for _, ex := range m.Exemplars {
			if ex == id.String() {
				return
			}
		}
		t.Fatalf("trace %s not among exemplars %v", id, m.Exemplars)
	}
	t.Fatal("group latency histogram missing from snapshot")
}

// TestClientTraceReusedAcrossRetries pins the client side of propagation:
// one ID per logical request, sent on every attempt, so a storm post-mortem
// sees the same trace rejected and then served.
func TestClientTraceReusedAcrossRetries(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	inner := NewServer(archive, end).Handler()
	var seen []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = append(seen, r.Header.Get(obs.TraceHeader))
		if len(seen) < 3 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "shedding", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c, _ := noSleepClient(t, ts)
	c.Trace = obs.NewIDStream(42, 3)
	if _, err := c.FetchGroup(context.Background(), "starlink"); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(seen))
	}
	want := obs.NewIDStream(42, 3).Next().String()
	for i, got := range seen {
		if got != want {
			t.Fatalf("attempt %d sent trace %q, want %q on every retry", i, got, want)
		}
	}
}

// TestHealthzBody is the fixed-clock regression test for the enriched
// /healthz: catalog epoch per group, daemon-contributed info, and a Now
// that reads the injected clock, all deterministic for identical state.
func TestHealthzBody(t *testing.T) {
	archive, _, end := buildArchive(t, 5)
	cat := NewCatalog(archive, end)
	srv := NewServer(cat, end)
	srv.HealthInfo = func() map[string]string {
		return map[string]string{"fleet": "small", "feed_seq": "17"}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := doGet(t, ts, "/healthz", nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("healthz: status %d type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var hs HealthStatus
	if err := json.Unmarshal(body, &hs); err != nil {
		t.Fatalf("unmarshal healthz: %v\n%s", err, body)
	}
	if hs.Status != "ok" {
		t.Fatalf("status %q", hs.Status)
	}
	if want := end.UTC().Format(time.RFC3339); hs.Now != want {
		t.Fatalf("now %q, want the pinned clock %q", hs.Now, want)
	}
	if len(hs.Groups) != 1 || hs.Groups[0].Group != "starlink" || hs.Groups[0].Version == 0 {
		t.Fatalf("groups = %+v", hs.Groups)
	}
	if hs.Info["fleet"] != "small" || hs.Info["feed_seq"] != "17" {
		t.Fatalf("info = %+v", hs.Info)
	}

	// The body is deterministic for identical state: the catalog epoch only
	// moves on ingest, and the clock is pinned.
	_, again := doGet(t, ts, "/healthz", nil)
	if string(again) != string(body) {
		t.Fatalf("healthz body drifted between identical-state reads:\n%s\n---\n%s", body, again)
	}
}
