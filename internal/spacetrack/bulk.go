package spacetrack

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cosmicdance/internal/tle"
)

// HistorySource is anything that can serve one object's history — the plain
// Client and the CachingFetcher both qualify.
type HistorySource interface {
	History(ctx context.Context, catalog int, from, to time.Time) ([]*tle.TLE, error)
}

// History lets the bare Client satisfy HistorySource.
func (c *Client) History(ctx context.Context, catalog int, from, to time.Time) ([]*tle.TLE, error) {
	return c.FetchHistory(ctx, catalog, from, to)
}

// BulkResult is one object's outcome in a bulk fetch.
type BulkResult struct {
	Catalog int
	Sets    []*tle.TLE
	Err     error
}

// FetchHistories pulls the histories of all catalogs concurrently with at
// most workers in flight — the shape a real multi-thousand-satellite ingest
// needs against a rate-limited service (the client's 429 handling composes
// with the bounded parallelism). Results are returned in the order of the
// input catalogs; the first context error aborts the remainder.
func FetchHistories(ctx context.Context, src HistorySource, catalogs []int, from, to time.Time, workers int) ([]BulkResult, error) {
	if workers <= 0 {
		workers = 4
	}
	if len(catalogs) == 0 {
		return nil, nil
	}
	results := make([]BulkResult, len(catalogs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				cat := catalogs[i]
				sets, err := src.History(ctx, cat, from, to)
				results[i] = BulkResult{Catalog: cat, Sets: sets, Err: err}
			}
		}()
	}
feed:
	for i := range catalogs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("spacetrack: bulk fetch aborted: %w", err)
	}
	return results, nil
}
