package spacetrack

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"cosmicdance/internal/tle"
)

// HistorySource is anything that can serve one object's history — the plain
// Client and the CachingFetcher both qualify.
type HistorySource interface {
	History(ctx context.Context, catalog int, from, to time.Time) ([]*tle.TLE, error)
}

// History lets the bare Client satisfy HistorySource.
func (c *Client) History(ctx context.Context, catalog int, from, to time.Time) ([]*tle.TLE, error) {
	return c.FetchHistory(ctx, catalog, from, to)
}

// CatalogError ties a fetch failure to the object it affected, so a bulk
// ingest can report exactly which satellites are missing and why instead of
// silently dropping them.
type CatalogError struct {
	Catalog int
	Err     error
}

// Error implements the error interface.
func (e *CatalogError) Error() string {
	return fmt.Sprintf("spacetrack: catalog %d: %v", e.Catalog, e.Err)
}

// Unwrap exposes the underlying fault (StatusError, RetryError, ...).
func (e *CatalogError) Unwrap() error { return e.Err }

// ErrNotAttempted marks catalogs whose fetch never started because the bulk
// run was aborted first.
var ErrNotAttempted = errors.New("spacetrack: fetch not attempted")

// BulkResult is one object's outcome in a bulk fetch.
type BulkResult struct {
	Catalog int
	Sets    []*tle.TLE
	// Err is nil on success and a *CatalogError otherwise — including
	// catalogs the run never reached, which carry ErrNotAttempted.
	Err error
}

// Failures extracts the per-catalog errors from a bulk result set.
func Failures(results []BulkResult) []*CatalogError {
	var out []*CatalogError
	for _, r := range results {
		var ce *CatalogError
		if errors.As(r.Err, &ce) {
			out = append(out, ce)
		}
	}
	return out
}

// FetchHistories pulls the histories of all catalogs concurrently with at
// most workers in flight — the shape a real multi-thousand-satellite ingest
// needs against a rate-limited service (the client's retry handling composes
// with the bounded parallelism). Results are returned in the order of the
// input catalogs; the first context error aborts the remainder. Every input
// catalog gets a result: fetched sets, a typed *CatalogError, or both absent
// never — no satellite is silently dropped.
func FetchHistories(ctx context.Context, src HistorySource, catalogs []int, from, to time.Time, workers int) ([]BulkResult, error) {
	if workers <= 0 {
		workers = 4
	}
	if len(catalogs) == 0 {
		return nil, nil
	}
	results := make([]BulkResult, len(catalogs))
	for i, cat := range catalogs {
		results[i] = BulkResult{Catalog: cat, Err: &CatalogError{Catalog: cat, Err: ErrNotAttempted}}
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				cat := catalogs[i]
				sets, err := src.History(ctx, cat, from, to)
				if err != nil {
					err = &CatalogError{Catalog: cat, Err: err}
				}
				results[i] = BulkResult{Catalog: cat, Sets: sets, Err: err}
			}
		}()
	}
feed:
	for i := range catalogs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("spacetrack: bulk fetch aborted: %w", err)
	}
	return results, nil
}
