package spacetrack

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// cacheTestHarness starts a counting server and fetcher over dir.
func cacheTestHarness(t *testing.T, dir string) (*CachingFetcher, *int32) {
	t.Helper()
	archive, _, end := buildArchive(t, 20)
	srv := NewServer(archive, end)
	var hits int32
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&hits, 1)
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(counting)
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	fetcher, err := NewCachingFetcher(client, dir)
	if err != nil {
		t.Fatal(err)
	}
	return fetcher, &hits
}

func TestCacheCorruptMetaIsMiss(t *testing.T) {
	dir := t.TempDir()
	fetcher, hits := cacheTestHarness(t, dir)
	ctx := context.Background()
	window := 10 * 24 * time.Hour

	if _, err := fetcher.History(ctx, 44713, stStart, stStart.Add(window)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the metadata sidecar: the next fetch must fall back to the
	// server, not fail.
	if err := os.WriteFile(filepath.Join(dir, "44713.meta"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	before := atomic.LoadInt32(hits)
	sets, err := fetcher.History(ctx, 44713, stStart, stStart.Add(window))
	if err != nil {
		t.Fatalf("corrupt meta surfaced an error: %v", err)
	}
	if len(sets) == 0 {
		t.Fatal("no sets after corrupt-meta recovery")
	}
	if atomic.LoadInt32(hits) == before {
		t.Error("corrupt meta should have forced a refetch")
	}
}

func TestCacheBadTimestampsAreMiss(t *testing.T) {
	dir := t.TempDir()
	fetcher, _ := cacheTestHarness(t, dir)
	ctx := context.Background()
	if _, err := fetcher.History(ctx, 44713, stStart, stStart.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "44713.meta"), []byte("not-a-time\nalso-not\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fetcher.History(ctx, 44713, stStart, stStart.Add(24*time.Hour)); err != nil {
		t.Fatalf("bad timestamps surfaced an error: %v", err)
	}
}

func TestCacheMissingDataFileIsMiss(t *testing.T) {
	dir := t.TempDir()
	fetcher, hits := cacheTestHarness(t, dir)
	ctx := context.Background()
	if _, err := fetcher.History(ctx, 44713, stStart, stStart.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "44713.tle")); err != nil {
		t.Fatal(err)
	}
	before := atomic.LoadInt32(hits)
	sets, err := fetcher.History(ctx, 44713, stStart, stStart.Add(24*time.Hour))
	if err != nil {
		t.Fatalf("missing data file surfaced an error: %v", err)
	}
	if len(sets) == 0 || atomic.LoadInt32(hits) == before {
		t.Error("missing data file should have forced a refetch")
	}
}

// statusCounter tallies response codes passing through a handler.
type statusCounter struct {
	http.ResponseWriter
	code *int32
}

func (w *statusCounter) WriteHeader(code int) {
	atomic.StoreInt32(w.code, int32(code))
	w.ResponseWriter.WriteHeader(code)
}

func TestCacheGroupETagRoundTrip(t *testing.T) {
	dir := t.TempDir()
	archive, _, end := buildArchive(t, 10)
	srv := NewServer(archive, end)
	var requests, notModified int32
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&requests, 1)
		var code int32 = http.StatusOK
		srv.Handler().ServeHTTP(&statusCounter{ResponseWriter: w, code: &code}, r)
		if code == http.StatusNotModified {
			atomic.AddInt32(&notModified, 1)
		}
	})
	ts := httptest.NewServer(counting)
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	fetcher, err := NewCachingFetcher(client, dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	first, err := fetcher.Group(ctx, "starlink")
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 || atomic.LoadInt32(&notModified) != 0 {
		t.Fatalf("cold fetch: %d sets, %d 304s", len(first), atomic.LoadInt32(&notModified))
	}

	// The second call revalidates: the server answers 304 and the sets come
	// off disk, identical to the first transfer.
	second, err := fetcher.Group(ctx, "starlink")
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&notModified) != 1 {
		t.Fatalf("warm fetch saw %d 304s, want 1", atomic.LoadInt32(&notModified))
	}
	if len(second) != len(first) {
		t.Fatalf("cached sets = %d, want %d", len(second), len(first))
	}
	for i := range second {
		if second[i].CatalogNumber != first[i].CatalogNumber || !second[i].Epoch.Equal(first[i].Epoch) {
			t.Fatalf("cached set %d diverges from the original transfer", i)
		}
	}

	// Corrupting the cached catalog forces a full refetch: a validator
	// without servable bytes behind it would be a lie.
	if err := os.WriteFile(filepath.Join(dir, "group-starlink.tle"), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	before := atomic.LoadInt32(&notModified)
	healed, err := fetcher.Group(ctx, "starlink")
	if err != nil {
		t.Fatalf("corrupt group cache surfaced an error: %v", err)
	}
	if len(healed) != len(first) {
		t.Fatalf("post-corruption sets = %d, want %d", len(healed), len(first))
	}
	if atomic.LoadInt32(&notModified) != before {
		t.Error("corrupt cache must refetch unconditionally, not revalidate")
	}
}

func TestNewCachingFetcherBadDir(t *testing.T) {
	client, err := NewClient("http://localhost:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	// A path under a regular file cannot be created as a directory.
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCachingFetcher(client, filepath.Join(file, "sub")); err == nil {
		t.Error("cache dir under a file accepted")
	}
}

func TestClientRejectsCorruptServerBody(t *testing.T) {
	// A server that persistently emits garbage instead of TLE text: the
	// client must retry and then surface a typed corruption error — never
	// silently return a shrunken archive.
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("1 THIS IS NOT\nA VALID TLE STREAM\n###\n"))
	}))
	defer garbage.Close()
	client, err := NewClient(garbage.URL, garbage.Client())
	if err != nil {
		t.Fatal(err)
	}
	client.MaxRetries = 2
	client.Sleep = func(ctx context.Context, d time.Duration) error { return nil }
	_, err = client.FetchGroup(context.Background(), "starlink")
	if !errors.Is(err, ErrCorruptBody) || !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("corrupt body err = %v, want ErrCorruptBody wrapped in ErrTooManyRetries", err)
	}
	// The JSON path must surface the same typed error.
	client.UseJSON = true
	if _, err := client.FetchGroup(context.Background(), "starlink"); !errors.Is(err, ErrCorruptBody) {
		t.Errorf("garbage JSON err = %v, want ErrCorruptBody", err)
	}
	// With tolerance raised, a mostly-garbage body is accepted as empty.
	client.UseJSON = false
	client.CorruptTolerance = 10
	sets, err := client.FetchGroup(context.Background(), "starlink")
	if err != nil {
		t.Fatalf("tolerant fetch: %v", err)
	}
	if len(sets) != 0 {
		t.Errorf("parsed %d sets from garbage", len(sets))
	}
}
