package spacetrack

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// cacheTestHarness starts a counting server and fetcher over dir.
func cacheTestHarness(t *testing.T, dir string) (*CachingFetcher, *int32) {
	t.Helper()
	archive, _, end := buildArchive(t, 20)
	srv := NewServer(archive, end)
	var hits int32
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&hits, 1)
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(counting)
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	fetcher, err := NewCachingFetcher(client, dir)
	if err != nil {
		t.Fatal(err)
	}
	return fetcher, &hits
}

func TestCacheCorruptMetaIsMiss(t *testing.T) {
	dir := t.TempDir()
	fetcher, hits := cacheTestHarness(t, dir)
	ctx := context.Background()
	window := 10 * 24 * time.Hour

	if _, err := fetcher.History(ctx, 44713, stStart, stStart.Add(window)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the metadata sidecar: the next fetch must fall back to the
	// server, not fail.
	if err := os.WriteFile(filepath.Join(dir, "44713.meta"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	before := atomic.LoadInt32(hits)
	sets, err := fetcher.History(ctx, 44713, stStart, stStart.Add(window))
	if err != nil {
		t.Fatalf("corrupt meta surfaced an error: %v", err)
	}
	if len(sets) == 0 {
		t.Fatal("no sets after corrupt-meta recovery")
	}
	if atomic.LoadInt32(hits) == before {
		t.Error("corrupt meta should have forced a refetch")
	}
}

func TestCacheBadTimestampsAreMiss(t *testing.T) {
	dir := t.TempDir()
	fetcher, _ := cacheTestHarness(t, dir)
	ctx := context.Background()
	if _, err := fetcher.History(ctx, 44713, stStart, stStart.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "44713.meta"), []byte("not-a-time\nalso-not\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fetcher.History(ctx, 44713, stStart, stStart.Add(24*time.Hour)); err != nil {
		t.Fatalf("bad timestamps surfaced an error: %v", err)
	}
}

func TestCacheMissingDataFileIsMiss(t *testing.T) {
	dir := t.TempDir()
	fetcher, hits := cacheTestHarness(t, dir)
	ctx := context.Background()
	if _, err := fetcher.History(ctx, 44713, stStart, stStart.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "44713.tle")); err != nil {
		t.Fatal(err)
	}
	before := atomic.LoadInt32(hits)
	sets, err := fetcher.History(ctx, 44713, stStart, stStart.Add(24*time.Hour))
	if err != nil {
		t.Fatalf("missing data file surfaced an error: %v", err)
	}
	if len(sets) == 0 || atomic.LoadInt32(hits) == before {
		t.Error("missing data file should have forced a refetch")
	}
}

func TestNewCachingFetcherBadDir(t *testing.T) {
	client, err := NewClient("http://localhost:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	// A path under a regular file cannot be created as a directory.
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCachingFetcher(client, filepath.Join(file, "sub")); err == nil {
		t.Error("cache dir under a file accepted")
	}
}

func TestClientSurvivesCorruptServerBody(t *testing.T) {
	// A server that emits garbage instead of TLE text: the non-strict reader
	// skips the junk and returns what parses (possibly nothing) — no panic,
	// no hang.
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("1 THIS IS NOT\nA VALID TLE STREAM\n###\n"))
	}))
	defer garbage.Close()
	client, err := NewClient(garbage.URL, garbage.Client())
	if err != nil {
		t.Fatal(err)
	}
	sets, err := client.FetchGroup(context.Background(), "starlink")
	if err != nil {
		t.Fatalf("corrupt body: %v", err)
	}
	if len(sets) != 0 {
		t.Errorf("parsed %d sets from garbage", len(sets))
	}
	// The JSON path must surface a decode error instead.
	client.UseJSON = true
	if _, err := client.FetchGroup(context.Background(), "starlink"); err == nil {
		t.Error("garbage JSON accepted")
	}
}
