package spacetrack

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cosmicdance/internal/obs"
	"cosmicdance/internal/tle"
)

// Server-side telemetry: requests served per endpoint and rate-limit
// rejections, mirrored on atomic fields so the daemon can log final totals
// at shutdown without a registry scan.
var (
	metricServedGroup   = obs.Default().Counter("spacetrack_server_requests_total", "endpoint", "group")
	metricServedHistory = obs.Default().Counter("spacetrack_server_requests_total", "endpoint", "history")
	metricServedHealthz = obs.Default().Counter("spacetrack_server_requests_total", "endpoint", "healthz")
	metricRateLimited   = obs.Default().Counter("spacetrack_server_ratelimited_total")
)

// Server publishes an Archive over HTTP with CelesTrak- and Space-Track-
// shaped endpoints:
//
//	GET /NORAD/elements/gp.php?GROUP=<group>&FORMAT=tle
//	GET /history?catalog=<id>&from=<RFC3339>&to=<RFC3339>
//	GET /healthz
//
// A token-bucket rate limiter guards the endpoints: exceeding it returns
// 429 with a Retry-After header, which the Client honours.
type Server struct {
	archive Archive
	// Now reports the service's current time (the frontier of the archive);
	// it is a field so tests and replay servers can pin it.
	Now func() time.Time

	served   atomic.Int64
	rejected atomic.Int64

	mu     sync.Mutex
	tokens float64
	last   time.Time
	// RatePerSec and Burst configure the limiter; zero RatePerSec disables
	// limiting.
	RatePerSec float64
	Burst      float64
}

// NewServer wraps an archive. now pins the service clock (use the end of the
// simulation window); pass the zero time to use wall clock.
func NewServer(archive Archive, now time.Time) *Server {
	s := &Server{archive: archive}
	if now.IsZero() {
		s.Now = time.Now
	} else {
		s.Now = func() time.Time { return now }
	}
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/NORAD/elements/gp.php", s.handleGroup)
	mux.HandleFunc("/history", s.handleHistory)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s.served.Add(1)
		metricServedHealthz.Inc()
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// RequestsServed reports how many requests completed the rate limiter and
// reached a handler (including healthz).
func (s *Server) RequestsServed() int64 { return s.served.Load() }

// RateLimited reports how many requests the token bucket rejected with 429.
func (s *Server) RateLimited() int64 { return s.rejected.Load() }

// now reads the service clock, falling back to wall clock for a Server
// built as a bare struct literal (NewServer always sets Now).
func (s *Server) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}

// allow implements a token bucket over the service clock (s.Now), so
// fault-injection and replay tests control refill deterministically.
func (s *Server) allow() bool {
	if s.RatePerSec <= 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	if s.last.IsZero() {
		s.last = now
		s.tokens = s.Burst
	}
	s.tokens += now.Sub(s.last).Seconds() * s.RatePerSec
	if s.tokens > s.Burst {
		s.tokens = s.Burst
	}
	s.last = now
	if s.tokens < 1 {
		return false
	}
	s.tokens--
	return true
}

func (s *Server) limited(w http.ResponseWriter) bool {
	if s.allow() {
		return false
	}
	s.rejected.Add(1)
	metricRateLimited.Inc()
	w.Header().Set("Retry-After", "1")
	http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
	return true
}

// handleGroup serves the CelesTrak-style current catalog.
func (s *Server) handleGroup(w http.ResponseWriter, r *http.Request) {
	if s.limited(w) {
		return
	}
	s.served.Add(1)
	metricServedGroup.Inc()
	group := r.URL.Query().Get("GROUP")
	if group == "" {
		http.Error(w, "missing GROUP", http.StatusBadRequest)
		return
	}
	format := r.URL.Query().Get("FORMAT")
	if format != "" && format != "tle" && format != "3le" && format != "json" {
		http.Error(w, fmt.Sprintf("unsupported FORMAT %q", format), http.StatusBadRequest)
		return
	}
	known := false
	for _, g := range s.archive.Groups() {
		if g == group {
			known = true
			break
		}
	}
	if !known {
		http.Error(w, fmt.Sprintf("unknown group %q", group), http.StatusNotFound)
		return
	}
	sets := s.archive.GroupLatest(group, s.now())
	if format == "json" {
		// Space-Track's OMM JSON shape.
		w.Header().Set("Content-Type", "application/json")
		if err := tle.WriteOMM(w, sets); err != nil {
			return
		}
		return
	}
	if format == "tle" {
		// 2LE: strip names.
		sets = stripNames(sets)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := tle.Write(w, sets); err != nil {
		// Too late for a status change; the client will see a short read.
		return
	}
}

// handleHistory serves the Space-Track-style windowed history.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.limited(w) {
		return
	}
	s.served.Add(1)
	metricServedHistory.Inc()
	q := r.URL.Query()
	catalog, err := strconv.Atoi(q.Get("catalog"))
	if err != nil {
		http.Error(w, "bad catalog", http.StatusBadRequest)
		return
	}
	from, err := parseTimeParam(q.Get("from"), time.Time{})
	if err != nil {
		http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
		return
	}
	to, err := parseTimeParam(q.Get("to"), s.now())
	if err != nil {
		http.Error(w, "bad to: "+err.Error(), http.StatusBadRequest)
		return
	}
	if to.Before(from) {
		http.Error(w, "to precedes from", http.StatusBadRequest)
		return
	}
	sets := s.archive.History(catalog, from, to)
	if q.Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := tle.WriteOMM(w, sets); err != nil {
			return
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := tle.Write(w, stripNames(sets)); err != nil {
		return
	}
}

func parseTimeParam(v string, def time.Time) (time.Time, error) {
	if strings.TrimSpace(v) == "" {
		return def, nil
	}
	return time.Parse(time.RFC3339, v)
}

// stripNames returns copies without the 3LE name line.
func stripNames(sets []*tle.TLE) []*tle.TLE {
	out := make([]*tle.TLE, len(sets))
	for i, t := range sets {
		c := *t
		c.Name = ""
		out[i] = &c
	}
	return out
}
