package spacetrack

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cosmicdance/internal/obs"
	"cosmicdance/internal/tle"
)

// Server-side telemetry: requests served and latency per endpoint, plus one
// admission counter per decision, mirrored on atomic fields so the daemon
// can log final totals at shutdown without a registry scan.
var (
	metricServedGroup   = obs.Default().Counter("spacetrack_server_requests_total", "endpoint", "group")
	metricServedHistory = obs.Default().Counter("spacetrack_server_requests_total", "endpoint", "history")
	metricServedIngest  = obs.Default().Counter("spacetrack_server_requests_total", "endpoint", "ingest")
	metricServedHealthz = obs.Default().Counter("spacetrack_server_requests_total", "endpoint", "healthz")
	metricRateLimited   = obs.Default().Counter("spacetrack_server_ratelimited_total")
	metricNotModified   = obs.Default().Counter("spacetrack_server_not_modified_total")

	metricAdmitted = map[string]*obs.Counter{}
	metricLatency  = map[string]*obs.Histogram{}
)

// latencyBounds covers sub-millisecond in-process serving up to multi-second
// degraded tails, in seconds.
var latencyBounds = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

func init() {
	for _, d := range []string{"accepted", "per_client", "capacity", "inflight"} {
		metricAdmitted[d] = obs.Default().Counter("spacetrack_server_admission_total", "decision", d)
	}
	for _, ep := range []string{"group", "history", "ingest"} {
		metricLatency[ep] = obs.Default().Histogram("spacetrack_server_latency_seconds", latencyBounds, "endpoint", ep)
	}
}

// IngestArchive is an Archive that accepts live element-set ingest — the
// Catalog qualifies. Servers whose archive implements it expose POST
// /ingest.
type IngestArchive interface {
	Archive
	Ingest(group string, sets []*tle.TLE, at time.Time) int
}

// Server publishes an Archive over HTTP with CelesTrak- and Space-Track-
// shaped endpoints:
//
//	GET  /NORAD/elements/gp.php?GROUP=<group>&FORMAT=tle
//	GET  /history?catalog=<id>&from=<RFC3339>&to=<RFC3339>
//	POST /ingest?group=<group>                     (IngestArchive backends)
//	GET  /healthz
//
// Three admission layers guard the data endpoints, all running on the
// injected service clock and all answering with a Retry-After computed from
// the actual state that rejected the request:
//
//   - MaxInFlight bounds concurrent requests; excess gets 503.
//   - A global capacity token bucket (CapacityPerSec/CapacityBurst) sheds
//     aggregate overload with 503 + the bucket's refill time.
//   - Per-client token buckets (RatePerSec/Burst, keyed by the X-Client-Id
//     header or the peer host) throttle individual clients with 429 + the
//     client bucket's refill time.
//
// Group responses carry ETag and Last-Modified validators; conditional
// requests (If-None-Match / If-Modified-Since) answer 304 without a body.
// Responses are gzip-compressed when the client accepts it, and history
// windows stream element set by element set when the archive supports it.
type Server struct {
	archive Archive
	// Now reports the service's current time (the frontier of the archive);
	// it is a field so tests and replay servers can pin it.
	Now func() time.Time

	// OnIngest, when set, observes every accepted /ingest batch after the
	// archive merge — the hook the live decay-risk feed hangs off so element
	// sets fold into the incremental engine as they arrive. trace is the
	// originating request's trace ID (0 for untraced requests) so the feed's
	// deltas can name the ingest that caused them.
	OnIngest func(group string, sets []*tle.TLE, applied int, trace obs.TraceID)

	// Trace, when set, mints trace IDs for requests that arrive without a
	// Cosmic-Trace header; requests carrying the header keep their ID either
	// way. Nil leaves header-less requests untraced.
	Trace *obs.IDStream
	// Flight, when set, records request outcomes and admission rejections —
	// the serving plane's black box. Nil disables recording (the nil
	// *FlightRecorder is a no-op receiver).
	Flight *obs.FlightRecorder
	// SLO, when set, tallies per-endpoint latency and error-budget burn.
	SLO *obs.SLOTracker
	// HealthInfo, when set, contributes daemon-level facts (incremental
	// watermark frontier, build info) to the /healthz body.
	HealthInfo func() map[string]string

	served     atomic.Int64
	rejected   atomic.Int64
	overloaded atomic.Int64
	inflight   atomic.Int64

	// RatePerSec and Burst configure the per-client token buckets; zero
	// RatePerSec disables per-client limiting.
	RatePerSec float64
	Burst      float64
	// MaxClients bounds the tracked per-client buckets (default 4096).
	// Overflow evicts refilled-to-full buckets, which is semantics-
	// preserving: a full bucket is indistinguishable from a fresh one.
	MaxClients int

	// CapacityPerSec and CapacityBurst configure the global admission
	// bucket; zero CapacityPerSec disables it.
	CapacityPerSec float64
	CapacityBurst  float64
	// MaxInFlight bounds concurrently served requests; zero disables.
	MaxInFlight int64

	// ValidatorGranularity quantizes the clock component of the group
	// validators (default one hour, the simulation's sample cadence): a
	// group's ETag changes when it is ingested into or when the service
	// clock crosses a granularity boundary, whichever comes first.
	ValidatorGranularity time.Duration

	mu       sync.Mutex
	clients  map[string]*bucket
	capacity bucket
}

// bucket is one token bucket's mutable state, guarded by Server.mu.
type bucket struct {
	tokens float64
	last   time.Time
	seen   bool
}

// take refills the bucket to now and consumes one token. On refusal it
// returns the wait until the next token materializes at the given rate.
func (b *bucket) take(now time.Time, rate, burst float64) (bool, time.Duration) {
	if !b.seen {
		b.tokens = burst
		b.last = now
		b.seen = true
	}
	b.tokens += now.Sub(b.last).Seconds() * rate
	if b.tokens > burst {
		b.tokens = burst
	}
	b.last = now
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
		return false, wait
	}
	b.tokens--
	return true, 0
}

// NewServer wraps an archive. now pins the service clock (use the end of the
// simulation window); pass the zero time to use wall clock.
func NewServer(archive Archive, now time.Time) *Server {
	s := &Server{archive: archive}
	if now.IsZero() {
		s.Now = time.Now //cosmiclint:allow nondet zero-time is the documented opt-in for wall clock; simulation runs always pin now
	} else {
		s.Now = func() time.Time { return now }
	}
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/NORAD/elements/gp.php", s.admit("group", s.handleGroup))
	mux.HandleFunc("/history", s.admit("history", s.handleHistory))
	if _, ok := s.archive.(IngestArchive); ok {
		mux.HandleFunc("/ingest", s.admit("ingest", s.handleIngest))
	}
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// GroupHealth is one group's catalog epoch in the /healthz body.
type GroupHealth struct {
	Group     string `json:"group"`
	Version   uint64 `json:"version"`
	UpdatedAt string `json:"updated_at"`
}

// HealthStatus is the /healthz body: liveness plus the facts an operator
// reaches for first in a storm — the service clock, each group's catalog
// epoch (version + last mutation), and daemon-contributed info such as the
// incremental watermark frontier and build identity. Groups are sorted and
// Info is a JSON map (encoding/json orders keys), so the body is
// deterministic for identical state.
type HealthStatus struct {
	Status string            `json:"status"`
	Now    string            `json:"now"`
	Groups []GroupHealth     `json:"groups,omitempty"`
	Info   map[string]string `json:"info,omitempty"`
}

// Health assembles the current HealthStatus — exported so the daemon's
// shutdown log and tests share the handler's view.
func (s *Server) Health() HealthStatus {
	hs := HealthStatus{Status: "ok", Now: s.now().UTC().Format(time.RFC3339)}
	if va, ok := s.archive.(VersionedArchive); ok {
		groups := append([]string(nil), s.archive.Groups()...)
		sort.Strings(groups)
		for _, g := range groups {
			if v, mod, known := va.GroupVersion(g); known {
				hs.Groups = append(hs.Groups, GroupHealth{
					Group:     g,
					Version:   v,
					UpdatedAt: mod.UTC().Format(time.RFC3339),
				})
			}
		}
	}
	if s.HealthInfo != nil {
		hs.Info = s.HealthInfo()
	}
	return hs
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.served.Add(1)
	metricServedHealthz.Inc()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// A short read is the client's problem; the status line is already out.
	_ = enc.Encode(s.Health())
}

// RequestsServed reports how many requests completed admission and reached a
// handler (including healthz).
func (s *Server) RequestsServed() int64 { return s.served.Load() }

// RateLimited reports how many requests the per-client buckets rejected
// with 429.
func (s *Server) RateLimited() int64 { return s.rejected.Load() }

// Overloaded reports how many requests the admission layer shed with 503
// (capacity bucket or in-flight bound).
func (s *Server) Overloaded() int64 { return s.overloaded.Load() }

// now reads the service clock, falling back to wall clock for a Server
// built as a bare struct literal (NewServer always sets Now).
func (s *Server) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now() //cosmiclint:allow nondet fallback for bare struct literals only; NewServer always injects a clock
}

// granularity returns the validator quantum.
func (s *Server) granularity() time.Duration {
	if s.ValidatorGranularity > 0 {
		return s.ValidatorGranularity
	}
	return time.Hour
}

// clientKey identifies the requester for per-client limiting: the
// self-reported X-Client-Id when present, else the peer host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-Id"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// retryAfterSeconds renders a refill wait as a Retry-After value: whole
// seconds, rounded up, at least 1.
func retryAfterSeconds(wait time.Duration) string {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// admitClient runs the per-client bucket for key. Exposed to tests via the
// fixed-clock regression suite.
func (s *Server) admitClient(key string) (bool, time.Duration) {
	if s.RatePerSec <= 0 {
		return true, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.clients == nil {
		s.clients = make(map[string]*bucket)
	}
	now := s.now()
	b := s.clients[key]
	if b == nil {
		s.evictLocked(now)
		b = &bucket{}
		s.clients[key] = b
	}
	return b.take(now, s.RatePerSec, s.Burst)
}

// evictLocked drops refilled-to-full buckets once the tracked-client bound
// is hit. A full bucket carries no throttling state — it behaves exactly
// like the fresh bucket its client would otherwise get — so eviction never
// changes a limiting decision.
func (s *Server) evictLocked(now time.Time) {
	max := s.MaxClients
	if max <= 0 {
		max = 4096
	}
	if len(s.clients) < max {
		return
	}
	for key, b := range s.clients {
		refilled := b.tokens + now.Sub(b.last).Seconds()*s.RatePerSec
		if refilled >= s.Burst {
			delete(s.clients, key)
		}
	}
}

// admitCapacity runs the global capacity bucket.
func (s *Server) admitCapacity() (bool, time.Duration) {
	if s.CapacityPerSec <= 0 {
		return true, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capacity.take(s.now(), s.CapacityPerSec, s.CapacityBurst)
}

// statusRecorder captures the status a handler writes so admit() can judge
// the request for the SLO tracker and the flight recorder. An unwritten
// status is 200, matching net/http's implicit WriteHeader.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// traceString renders a TraceID for a flight event: "" for untraced.
func traceString(t obs.TraceID) string {
	if t == 0 {
		return ""
	}
	return t.String()
}

// admit wraps a data-plane handler with the three admission layers and the
// per-endpoint telemetry. It is also where a request's trace begins: the
// Cosmic-Trace header is honoured when present (and echoed on the response),
// s.Trace mints an ID otherwise, and the resulting ReqTrace rides the
// request context so handlers can mark their catalog-read/gzip/feed-append
// phases. Shed requests (503/429) land in the flight recorder with their
// trace IDs — the storm post-mortem's primary key.
func (s *Server) admit(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	served := map[string]*obs.Counter{
		"group": metricServedGroup, "history": metricServedHistory, "ingest": metricServedIngest,
	}[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		trace := obs.ParseTraceID(r.Header.Get(obs.TraceHeader))
		if trace == 0 && s.Trace != nil {
			trace = s.Trace.Next()
		}
		if trace != 0 {
			w.Header().Set(obs.TraceHeader, trace.String())
		}
		var tr *obs.ReqTrace
		if trace != 0 {
			tr = obs.NewReqTrace(trace, s.now)
		}
		tr.StartSpan("admission")
		if s.MaxInFlight > 0 {
			if n := s.inflight.Add(1); n > s.MaxInFlight {
				s.inflight.Add(-1)
				s.overloaded.Add(1)
				metricAdmitted["inflight"].Inc()
				w.Header().Set("Retry-After", "1")
				http.Error(w, "server saturated", http.StatusServiceUnavailable)
				s.Flight.RecordReject(obs.FlightEvent{Trace: traceString(trace), Endpoint: endpoint, Status: http.StatusServiceUnavailable, Detail: "inflight"})
				s.SLO.Record(endpoint, 0, true)
				return
			}
			defer s.inflight.Add(-1)
		}
		if ok, wait := s.admitCapacity(); !ok {
			s.overloaded.Add(1)
			metricAdmitted["capacity"].Inc()
			w.Header().Set("Retry-After", retryAfterSeconds(wait))
			http.Error(w, "over capacity", http.StatusServiceUnavailable)
			s.Flight.RecordReject(obs.FlightEvent{Trace: traceString(trace), Endpoint: endpoint, Status: http.StatusServiceUnavailable, Detail: "capacity"})
			s.SLO.Record(endpoint, 0, true)
			return
		}
		if ok, wait := s.admitClient(clientKey(r)); !ok {
			s.rejected.Add(1)
			metricRateLimited.Inc()
			metricAdmitted["per_client"].Inc()
			w.Header().Set("Retry-After", retryAfterSeconds(wait))
			http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
			s.Flight.RecordReject(obs.FlightEvent{Trace: traceString(trace), Endpoint: endpoint, Status: http.StatusTooManyRequests, Detail: "per_client"})
			s.SLO.Record(endpoint, 0, true)
			return
		}
		tr.EndSpan()
		s.served.Add(1)
		served.Inc()
		metricAdmitted["accepted"].Inc()
		if tr != nil {
			r = r.WithContext(obs.WithReqTrace(r.Context(), tr))
		}
		sw := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := s.now()
		h(sw, r)
		elapsed := s.now().Sub(start)
		metricLatency[endpoint].ObserveExemplar(elapsed.Seconds(), trace)
		s.SLO.Record(endpoint, elapsed, sw.status >= 500)
		if s.Flight != nil {
			s.Flight.Record(obs.FlightEvent{
				Kind:       "request",
				Trace:      traceString(trace),
				Endpoint:   endpoint,
				Status:     sw.status,
				DurationNS: elapsed.Nanoseconds(),
				Spans:      tr.Spans(),
			})
		}
	}
}

// validators computes a group's conditional-fetch validators: the ETag folds
// in the group's version and the clock quantum (new samples become visible
// as the service clock advances, even without ingest), and Last-Modified is
// the later of the group's last mutation and the quantum boundary.
func (s *Server) validators(group string) (etag string, lastMod time.Time) {
	cut := s.now().Truncate(s.granularity())
	version := uint64(1)
	var mod time.Time
	if va, ok := s.archive.(VersionedArchive); ok {
		if v, m, known := va.GroupVersion(group); known {
			version, mod = v, m
		}
	}
	if mod.Before(cut) {
		mod = cut
	}
	return fmt.Sprintf("%q", fmt.Sprintf("%s-v%d-%d", group, version, cut.Unix())), mod
}

// notModified answers a conditional request against the validators,
// preferring If-None-Match over If-Modified-Since per RFC 9110.
func notModified(r *http.Request, etag string, lastMod time.Time) bool {
	if match := r.Header.Get("If-None-Match"); match != "" {
		return match == etag
	}
	if ims := r.Header.Get("If-Modified-Since"); ims != "" {
		if t, err := http.ParseTime(ims); err == nil {
			return !lastMod.Truncate(time.Second).After(t)
		}
	}
	return false
}

// compressed negotiates gzip: it returns the body writer and a finish
// function that must run after the body is complete.
func compressed(w http.ResponseWriter, r *http.Request) (io.Writer, func() error) {
	if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		return w, func() error { return nil }
	}
	w.Header().Set("Content-Encoding", "gzip")
	w.Header().Add("Vary", "Accept-Encoding")
	zw := gzip.NewWriter(w)
	return zw, zw.Close
}

// handleGroup serves the CelesTrak-style current catalog.
func (s *Server) handleGroup(w http.ResponseWriter, r *http.Request) {
	group := r.URL.Query().Get("GROUP")
	if group == "" {
		http.Error(w, "missing GROUP", http.StatusBadRequest)
		return
	}
	format := r.URL.Query().Get("FORMAT")
	if format != "" && format != "tle" && format != "3le" && format != "json" {
		http.Error(w, fmt.Sprintf("unsupported FORMAT %q", format), http.StatusBadRequest)
		return
	}
	known := false
	for _, g := range s.archive.Groups() {
		if g == group {
			known = true
			break
		}
	}
	if !known {
		http.Error(w, fmt.Sprintf("unknown group %q", group), http.StatusNotFound)
		return
	}
	etag, lastMod := s.validators(group)
	w.Header().Set("ETag", etag)
	w.Header().Set("Last-Modified", lastMod.UTC().Format(http.TimeFormat))
	if notModified(r, etag, lastMod) {
		metricNotModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	tr := obs.ReqTraceFrom(r.Context())
	tr.StartSpan("catalog_read")
	sets := s.archive.GroupLatest(group, s.now())
	tr.EndSpan()
	if format == "json" {
		// Space-Track's OMM JSON shape.
		w.Header().Set("Content-Type", "application/json")
		tr.StartSpan("gzip")
		defer tr.EndSpan()
		out, finish := compressed(w, r)
		if err := tle.WriteOMM(out, sets); err != nil {
			return
		}
		if err := finish(); err != nil {
			return
		}
		return
	}
	if format == "tle" {
		// 2LE: strip names.
		sets = stripNames(sets)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	tr.StartSpan("gzip")
	defer tr.EndSpan()
	out, finish := compressed(w, r)
	if err := tle.Write(out, sets); err != nil {
		// Too late for a status change; the client will see a short read.
		return
	}
	if err := finish(); err != nil {
		return
	}
}

// handleHistory serves the Space-Track-style windowed history, streaming
// element set by element set when the archive supports it so a bulk window
// never materializes server-side.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	catalog, err := strconv.Atoi(q.Get("catalog"))
	if err != nil {
		http.Error(w, "bad catalog", http.StatusBadRequest)
		return
	}
	from, err := parseTimeParam(q.Get("from"), time.Time{})
	if err != nil {
		http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
		return
	}
	to, err := parseTimeParam(q.Get("to"), s.now())
	if err != nil {
		http.Error(w, "bad to: "+err.Error(), http.StatusBadRequest)
		return
	}
	if to.Before(from) {
		http.Error(w, "to precedes from", http.StatusBadRequest)
		return
	}
	tr := obs.ReqTraceFrom(r.Context())
	if q.Get("format") == "json" {
		tr.StartSpan("catalog_read")
		sets := s.archive.History(catalog, from, to)
		tr.EndSpan()
		w.Header().Set("Content-Type", "application/json")
		tr.StartSpan("gzip")
		defer tr.EndSpan()
		out, finish := compressed(w, r)
		if err := tle.WriteOMM(out, sets); err != nil {
			return
		}
		if err := finish(); err != nil {
			return
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	tr.StartSpan("catalog_read")
	defer tr.EndSpan()
	out, finish := compressed(w, r)
	if sa, ok := s.archive.(StreamingArchive); ok {
		one := make([]*tle.TLE, 1)
		if err := sa.HistoryEach(catalog, from, to, func(t *tle.TLE) error {
			c := *t
			c.Name = ""
			one[0] = &c
			return tle.Write(out, one)
		}); err != nil {
			return
		}
	} else {
		if err := tle.Write(out, stripNames(s.archive.History(catalog, from, to))); err != nil {
			return
		}
	}
	if err := finish(); err != nil {
		return
	}
}

// handleIngest accepts a POST of element sets in classic TLE text and
// merges them into the archive at the current service time. The body must
// parse completely: a batch with unreadable records is rejected whole, so a
// partial ingest can never masquerade as a successful one.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "ingest requires POST", http.StatusMethodNotAllowed)
		return
	}
	ia := s.archive.(IngestArchive) // admit() wires /ingest only for IngestArchive backends
	group := r.URL.Query().Get("group")
	if group == "" {
		http.Error(w, "missing group", http.StatusBadRequest)
		return
	}
	reader := tle.NewReader(r.Body)
	var sets []*tle.TLE
	for {
		t, err := reader.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			http.Error(w, "unparseable element set: "+err.Error(), http.StatusBadRequest)
			return
		}
		sets = append(sets, t)
	}
	if reader.Skipped() > 0 {
		http.Error(w, fmt.Sprintf("%d unparseable element sets", reader.Skipped()), http.StatusBadRequest)
		return
	}
	tr := obs.ReqTraceFrom(r.Context())
	tr.StartSpan("catalog_read")
	applied := ia.Ingest(group, sets, s.now())
	tr.EndSpan()
	if s.OnIngest != nil {
		tr.StartSpan("feed_append")
		s.OnIngest(group, sets, applied, tr.ID())
		tr.EndSpan()
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"received\":%d,\"applied\":%d}\n", len(sets), applied)
}

func parseTimeParam(v string, def time.Time) (time.Time, error) {
	if strings.TrimSpace(v) == "" {
		return def, nil
	}
	return time.Parse(time.RFC3339, v)
}

// stripNames returns copies without the 3LE name line.
func stripNames(sets []*tle.TLE) []*tle.TLE {
	out := make([]*tle.TLE, len(sets))
	for i, t := range sets {
		c := *t
		c.Name = ""
		out[i] = &c
	}
	return out
}
