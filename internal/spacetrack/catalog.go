package spacetrack

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cosmicdance/internal/obs"
	"cosmicdance/internal/tle"
)

// Catalog telemetry: ingest batches, element sets applied, and duplicates
// skipped, so a live-ingest run shows its write path next to the server's
// read counters.
var (
	metricCatalogIngests = obs.Default().Counter("spacetrack_catalog_ingests_total")
	metricCatalogApplied = obs.Default().Counter("spacetrack_catalog_sets_applied_total")
	metricCatalogDupes   = obs.Default().Counter("spacetrack_catalog_sets_duplicate_total")
)

// catalogShards is the number of copy-on-write shards a Catalog spreads its
// delta over. Sixteen keeps the per-swap clone small (one sixteenth of the
// live objects) while staying far below the point where the group index
// becomes the bottleneck.
const catalogShards = 16

// VersionedArchive is an Archive that can report a group's current version
// and last-modified instant, the inputs of the server's conditional-fetch
// validators (ETag / Last-Modified). Archives without versions get served
// with clock-derived validators instead.
type VersionedArchive interface {
	Archive
	// GroupVersion returns the group's monotonically increasing version and
	// the service-clock instant of its last mutation. ok is false for
	// unknown groups.
	GroupVersion(group string) (version uint64, lastMod time.Time, ok bool)
}

// StreamingArchive is an Archive that can yield a history window one element
// set at a time, so bulk responses stream instead of materializing.
type StreamingArchive interface {
	Archive
	// HistoryEach calls yield for each element set of catalog with epoch in
	// [from, to], ascending. A yield error aborts the walk and is returned.
	HistoryEach(catalog int, from, to time.Time, yield func(*tle.TLE) error) error
}

// Catalog is the daemon's serving-grade data plane: an immutable base
// archive (typically the simulation result the daemon booted from) overlaid
// with live-ingested element sets held in copy-on-write shards indexed by
// (catalog, epoch).
//
// Reads never block ingest and ingest never blocks reads: readers load one
// atomic pointer per shard and walk immutable state, while the single
// writer clones only the touched shard's index, merges, and swaps the
// pointer. A reader that raced the swap simply serves the previous,
// fully-consistent state.
type Catalog struct {
	base   Archive
	shards [catalogShards]atomic.Pointer[shardState]
	groups atomic.Pointer[groupState]

	// mu serializes writers (Ingest); readers take no locks.
	mu sync.Mutex
}

// shardState is one shard's immutable delta index. series maps catalog
// number to that object's ingested element sets, ascending by epoch and
// deduplicated by (catalog, epoch).
type shardState struct {
	series map[int][]*tle.TLE
}

// groupState is the immutable group index over the delta.
type groupState struct {
	byName map[string]*groupMeta
	names  []string // sorted; delta groups only
}

// groupMeta is one group's delta membership and conditional-fetch state.
type groupMeta struct {
	cats    []int // sorted delta catalogs
	version uint64
	lastMod time.Time
}

// NewCatalog overlays copy-on-write shards on base. baseMod stamps the base
// archive's last-modified instant (use the archive frontier); every group
// starts at version 1.
func NewCatalog(base Archive, baseMod time.Time) *Catalog {
	c := &Catalog{base: base}
	for i := range c.shards {
		c.shards[i].Store(&shardState{series: map[int][]*tle.TLE{}})
	}
	gs := &groupState{byName: map[string]*groupMeta{}}
	for _, g := range base.Groups() {
		gs.byName[g] = &groupMeta{version: 1, lastMod: baseMod}
	}
	c.groups.Store(gs)
	return c
}

// shardFor maps a catalog number onto its shard.
func (c *Catalog) shardFor(catalog int) *atomic.Pointer[shardState] {
	return &c.shards[uint(catalog)%catalogShards]
}

// Groups implements Archive: the base groups plus any groups created by
// ingest, sorted and distinct.
func (c *Catalog) Groups() []string {
	base := c.base.Groups()
	gs := c.groups.Load()
	out := make([]string, 0, len(base)+len(gs.names))
	out = append(out, base...)
	for _, g := range gs.names {
		found := false
		for _, b := range base {
			if b == g {
				found = true
				break
			}
		}
		if !found {
			out = append(out, g)
		}
	}
	sort.Strings(out)
	return out
}

// GroupVersion implements VersionedArchive.
func (c *Catalog) GroupVersion(group string) (uint64, time.Time, bool) {
	gs := c.groups.Load()
	m, ok := gs.byName[group]
	if !ok {
		return 0, time.Time{}, false
	}
	return m.version, m.lastMod, true
}

// latestDelta returns the newest ingested element set of catalog with epoch
// not after at, or nil.
func (c *Catalog) latestDelta(catalog int, at time.Time) *tle.TLE {
	sets := c.shardFor(catalog).Load().series[catalog]
	i := sort.Search(len(sets), func(i int) bool { return sets[i].Epoch.After(at) })
	if i == 0 {
		return nil
	}
	return sets[i-1]
}

// GroupLatest implements Archive: the base's latest sets merged with the
// delta's, the newer epoch winning per catalog, ordered by catalog number.
func (c *Catalog) GroupLatest(group string, at time.Time) []*tle.TLE {
	base := c.base.GroupLatest(group, at)
	gs := c.groups.Load()
	m := gs.byName[group]
	if m == nil || len(m.cats) == 0 {
		return base
	}
	// Base archives serve catalog-ordered sets (ResultArchive does); sort
	// defensively so the merge below never depends on that.
	if !sort.SliceIsSorted(base, func(i, j int) bool { return base[i].CatalogNumber < base[j].CatalogNumber }) {
		base = append([]*tle.TLE(nil), base...)
		sort.Slice(base, func(i, j int) bool { return base[i].CatalogNumber < base[j].CatalogNumber })
	}
	out := make([]*tle.TLE, 0, len(base)+len(m.cats))
	bi := 0
	for _, cat := range m.cats {
		for bi < len(base) && base[bi].CatalogNumber < cat {
			out = append(out, base[bi])
			bi++
		}
		d := c.latestDelta(cat, at)
		if bi < len(base) && base[bi].CatalogNumber == cat {
			// Present in both tiers: the newer epoch wins, the delta on ties
			// (an ingested set supersedes the boot archive's).
			if d != nil && !d.Epoch.Before(base[bi].Epoch) {
				out = append(out, d)
			} else {
				out = append(out, base[bi])
			}
			bi++
			continue
		}
		if d != nil {
			out = append(out, d)
		}
	}
	out = append(out, base[bi:]...)
	return out
}

// History implements Archive: base and delta windows merged ascending by
// epoch, deduplicated by epoch with the delta winning.
func (c *Catalog) History(catalog int, from, to time.Time) []*tle.TLE {
	var out []*tle.TLE
	// The walk over immutable state cannot fail; yield never errors.
	_ = c.HistoryEach(catalog, from, to, func(t *tle.TLE) error {
		out = append(out, t)
		return nil
	})
	return out
}

// HistoryEach implements StreamingArchive: a two-pointer merge of the base
// window and the delta window, yielding without materializing the union.
func (c *Catalog) HistoryEach(catalog int, from, to time.Time, yield func(*tle.TLE) error) error {
	base := c.base.History(catalog, from, to)
	all := c.shardFor(catalog).Load().series[catalog]
	lo := sort.Search(len(all), func(i int) bool { return !all[i].Epoch.Before(from) })
	hi := sort.Search(len(all), func(i int) bool { return all[i].Epoch.After(to) })
	delta := all[lo:hi]
	bi, di := 0, 0
	for bi < len(base) || di < len(delta) {
		switch {
		case bi == len(base):
			if err := yield(delta[di]); err != nil {
				return err
			}
			di++
		case di == len(delta):
			if err := yield(base[bi]); err != nil {
				return err
			}
			bi++
		case base[bi].Epoch.Before(delta[di].Epoch):
			if err := yield(base[bi]); err != nil {
				return err
			}
			bi++
		case delta[di].Epoch.Before(base[bi].Epoch):
			if err := yield(delta[di]); err != nil {
				return err
			}
			di++
		default:
			// Same epoch in both tiers: the ingested set supersedes.
			if err := yield(delta[di]); err != nil {
				return err
			}
			bi++
			di++
		}
	}
	return nil
}

// Ingest merges sets into group's delta at service time at, returning how
// many (catalog, epoch) pairs were new. Duplicates of already-held pairs are
// skipped, so replaying an ingest batch is idempotent. The group's version
// bumps (and lastMod advances) even for an all-duplicate batch only when at
// least one set applied, keeping conditional-fetch validators honest.
func (c *Catalog) Ingest(group string, sets []*tle.TLE, at time.Time) int {
	if len(sets) == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	metricCatalogIngests.Inc()

	// Partition the batch by shard, preserving input order within a shard.
	byShard := make(map[uint][]*tle.TLE)
	for _, t := range sets {
		s := uint(t.CatalogNumber) % catalogShards
		byShard[s] = append(byShard[s], t)
	}
	shardIDs := make([]uint, 0, len(byShard))
	for s := range byShard {
		shardIDs = append(shardIDs, s)
	}
	sort.Slice(shardIDs, func(i, j int) bool { return shardIDs[i] < shardIDs[j] })

	applied := 0
	newCats := map[int]bool{}
	for _, sid := range shardIDs {
		old := c.shards[sid].Load()
		// Copy-on-write: clone the shard's index, share untouched series.
		next := &shardState{series: make(map[int][]*tle.TLE, len(old.series)+len(byShard[sid]))}
		for k, v := range old.series {
			next.series[k] = v
		}
		for _, t := range byShard[sid] {
			cat := t.CatalogNumber
			series := next.series[cat]
			i := sort.Search(len(series), func(i int) bool { return !series[i].Epoch.Before(t.Epoch) })
			if i < len(series) && series[i].Epoch.Equal(t.Epoch) {
				metricCatalogDupes.Inc()
				continue
			}
			// Clone before insert: the old slice may be shared with readers.
			merged := make([]*tle.TLE, 0, len(series)+1)
			merged = append(merged, series[:i]...)
			merged = append(merged, t)
			merged = append(merged, series[i:]...)
			next.series[cat] = merged
			newCats[cat] = true
			applied++
		}
		c.shards[sid].Store(next)
	}
	metricCatalogApplied.Add(int64(applied))
	if applied == 0 {
		return 0
	}

	// Publish the new group index: merged membership, bumped version.
	oldGS := c.groups.Load()
	nextGS := &groupState{byName: make(map[string]*groupMeta, len(oldGS.byName)+1)}
	for k, v := range oldGS.byName {
		nextGS.byName[k] = v
	}
	old := nextGS.byName[group]
	meta := &groupMeta{version: 1, lastMod: at}
	if old != nil {
		meta.version = old.version + 1
		meta.cats = old.cats
	}
	added := make([]int, 0, len(newCats))
	for cat := range newCats {
		added = append(added, cat)
	}
	sort.Ints(added)
	cats := append([]int(nil), meta.cats...)
	for _, cat := range added {
		i := sort.SearchInts(cats, cat)
		if i < len(cats) && cats[i] == cat {
			continue
		}
		cats = append(cats, 0)
		copy(cats[i+1:], cats[i:])
		cats[i] = cat
	}
	meta.cats = cats
	nextGS.byName[group] = meta
	names := make([]string, 0, len(nextGS.byName))
	for name := range nextGS.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	nextGS.names = names
	c.groups.Store(nextGS)
	return applied
}

// DeltaSets reports how many ingested element sets the delta currently
// holds, summed across shards — a cheap consistency probe for tests and the
// load harness ("zero dropped ingests").
func (c *Catalog) DeltaSets() int {
	n := 0
	for i := range c.shards {
		for _, series := range c.shards[i].Load().series {
			n += len(series)
		}
	}
	return n
}
