package spacetrack

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"cosmicdance/internal/tle"
)

// StatusError is returned for non-2xx responses.
type StatusError struct {
	Code int
	Body string
}

// Error implements the error interface.
func (e *StatusError) Error() string {
	return fmt.Sprintf("spacetrack: server returned %d: %s", e.Code, e.Body)
}

// ErrTooManyRetries is returned when the server keeps rate-limiting past the
// client's retry budget.
var ErrTooManyRetries = errors.New("spacetrack: rate-limit retries exhausted")

// Client fetches TLE data from a tracking service. The zero value is not
// usable; construct with NewClient.
type Client struct {
	base       *url.URL
	httpClient *http.Client
	// MaxRetries bounds 429 retries per request.
	MaxRetries int
	// UseJSON switches transfers to the Space-Track OMM JSON format instead
	// of classic TLE text.
	UseJSON bool
	// sleep is swappable for tests.
	sleep func(ctx context.Context, d time.Duration) error
}

// NewClient targets the service at baseURL. httpClient may be nil for
// http.DefaultClient semantics with a sane timeout.
func NewClient(baseURL string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("spacetrack: bad base URL: %w", err)
	}
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{
		base:       u,
		httpClient: httpClient,
		MaxRetries: 5,
		sleep:      sleepCtx,
	}, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// get performs one rate-limit-aware GET and returns the body.
func (c *Client) get(ctx context.Context, path string, query url.Values) (io.ReadCloser, error) {
	u := *c.base
	u.Path = path
	u.RawQuery = query.Encode()
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
		if err != nil {
			return nil, err
		}
		resp, err := c.httpClient.Do(req)
		if err != nil {
			return nil, err
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			return resp.Body, nil
		case resp.StatusCode == http.StatusTooManyRequests:
			resp.Body.Close()
			if attempt >= c.MaxRetries {
				return nil, ErrTooManyRetries
			}
			delay := retryAfter(resp, time.Duration(attempt+1)*200*time.Millisecond)
			if err := c.sleep(ctx, delay); err != nil {
				return nil, err
			}
		default:
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return nil, &StatusError{Code: resp.StatusCode, Body: string(body)}
		}
	}
}

func retryAfter(resp *http.Response, fallback time.Duration) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return fallback
}

// FetchGroup downloads the current catalog of a constellation group — the
// CelesTrak step CosmicDance performs once to learn the catalog numbers.
func (c *Client) FetchGroup(ctx context.Context, group string) ([]*tle.TLE, error) {
	format := "3le"
	if c.UseJSON {
		format = "json"
	}
	q := url.Values{"GROUP": {group}, "FORMAT": {format}}
	body, err := c.get(ctx, "/NORAD/elements/gp.php", q)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	if c.UseJSON {
		return tle.ReadOMM(body)
	}
	return tle.ReadAll(body)
}

// CatalogNumbers extracts the sorted distinct catalog numbers from a fetch.
func CatalogNumbers(sets []*tle.TLE) []int {
	return tle.NewCatalog(sets).Numbers()
}

// FetchHistory downloads the element sets of one object in [from, to] — the
// Space-Track step.
func (c *Client) FetchHistory(ctx context.Context, catalog int, from, to time.Time) ([]*tle.TLE, error) {
	q := url.Values{
		"catalog": {strconv.Itoa(catalog)},
		"from":    {from.UTC().Format(time.RFC3339)},
		"to":      {to.UTC().Format(time.RFC3339)},
	}
	if c.UseJSON {
		q.Set("format", "json")
	}
	body, err := c.get(ctx, "/history", q)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	if c.UseJSON {
		return tle.ReadOMM(body)
	}
	return tle.ReadAll(body)
}

// Health probes the service.
func (c *Client) Health(ctx context.Context) error {
	body, err := c.get(ctx, "/healthz", nil)
	if err != nil {
		return err
	}
	body.Close()
	return nil
}
