package spacetrack

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"cosmicdance/internal/obs"
	"cosmicdance/internal/tle"
)

// Client telemetry: one requests counter plus a retry counter per fault
// cause, so a degraded crawl shows where its retry budget went.
var (
	metricClientRequests = obs.Default().Counter("spacetrack_client_requests_total")
	metricRetries        = map[string]*obs.Counter{}
)

func init() {
	for _, cause := range []string{"rate_limit", "server_error", "transport", "truncated", "corrupt"} {
		metricRetries[cause] = obs.Default().Counter("spacetrack_client_retries_total", "cause", cause)
	}
}

// retryCause buckets a retryable fault for the retries-by-cause counter.
func retryCause(err error) string {
	var ra *rateLimitError
	if errors.As(err, &ra) {
		return "rate_limit"
	}
	switch {
	case errors.Is(err, ErrTruncatedBody):
		return "truncated"
	case errors.Is(err, ErrCorruptBody):
		return "corrupt"
	}
	var se *StatusError
	if errors.As(err, &se) {
		return "server_error"
	}
	return "transport"
}

// StatusError is returned for non-2xx responses.
type StatusError struct {
	Code int
	Body string
}

// Error implements the error interface.
func (e *StatusError) Error() string {
	return fmt.Sprintf("spacetrack: server returned %d: %s", e.Code, e.Body)
}

// ErrTooManyRetries is returned when a request keeps failing past the
// client's retry budget, whatever the fault class.
var ErrTooManyRetries = errors.New("spacetrack: retries exhausted")

// ErrTruncatedBody marks a response body that ended before the server's
// declared length — the short-read shape a dying connection produces.
var ErrTruncatedBody = errors.New("spacetrack: truncated response body")

// ErrCorruptBody marks a response that arrived complete but failed to decode
// (bit flips, garbled element sets, malformed JSON).
var ErrCorruptBody = errors.New("spacetrack: corrupt response body")

// RetryError reports an exhausted retry budget. It wraps ErrTooManyRetries
// and the last underlying failure, so both errors.Is(err, ErrTooManyRetries)
// and inspection of the final fault work.
type RetryError struct {
	URL      string
	Attempts int
	Last     error
}

// Error implements the error interface.
func (e *RetryError) Error() string {
	return fmt.Sprintf("spacetrack: %s: giving up after %d attempts: %v", e.URL, e.Attempts, e.Last)
}

// Unwrap exposes both the budget sentinel and the final fault.
func (e *RetryError) Unwrap() []error { return []error{ErrTooManyRetries, e.Last} }

// Client fetches TLE data from a tracking service. It survives the fault
// classes a long crawl against a public service meets: 429 storms (with or
// without Retry-After), 5xx bursts, transport errors and connection resets,
// truncated bodies, and corrupt element sets — all retried within one
// bounded budget, with exponential backoff and deterministic jitter.
// The zero value is not usable; construct with NewClient.
type Client struct {
	base       *url.URL
	httpClient *http.Client
	// MaxRetries bounds retries per request across every retryable fault
	// class: rate limiting, 5xx, transport errors, truncation, corruption.
	MaxRetries int
	// UseJSON switches transfers to the Space-Track OMM JSON format instead
	// of classic TLE text.
	UseJSON bool
	// BackoffBase scales the exponential backoff for retries that carry no
	// server-provided delay. Zero means 100ms.
	BackoffBase time.Duration
	// Seed drives the deterministic retry jitter: two clients with the same
	// seed issuing the same request sequence back off identically.
	Seed int64
	// ClientID, when set, is sent as the X-Client-Id header so the server's
	// per-client token buckets key on a stable identity instead of the
	// connection's ephemeral address.
	ClientID string
	// CorruptTolerance allows up to this many unparseable element sets per
	// response before the body is declared corrupt and refetched. Real
	// archives contain a few genuinely bad records; the default 0 is exact.
	CorruptTolerance int
	// Sleep is the delay hook; tests swap in a deterministic clock
	// (testkit.Clock.Sleep). Nil sleeps in real time.
	Sleep func(ctx context.Context, d time.Duration) error
	// Trace, when set, mints one trace ID per logical request and sends it
	// as the Cosmic-Trace header. Every retry of a request reuses its ID, so
	// a storm post-mortem sees one trace hitting admission N times rather
	// than N unrelated requests.
	Trace *obs.IDStream

	reqs atomic.Int64 // per-client request counter, part of the jitter input
}

// NewClient targets the service at baseURL. httpClient may be nil for
// http.DefaultClient semantics with a sane timeout.
func NewClient(baseURL string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("spacetrack: bad base URL: %w", err)
	}
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{
		base:       u,
		httpClient: httpClient,
		MaxRetries: 5,
		Sleep:      sleepCtx,
	}, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.Sleep == nil {
		return sleepCtx(ctx, d)
	}
	return c.Sleep(ctx, d)
}

// backoff computes the delay before retry number attempt (1-based) of
// request reqID: exponential growth capped at 5s, plus deterministic jitter
// derived from (Seed, reqID, attempt) so repeated runs are identical while
// concurrent requests still decorrelate.
func (c *Client) backoff(reqID int64, attempt int) time.Duration {
	base := c.BackoffBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= 5*time.Second {
			d = 5 * time.Second
			break
		}
	}
	// splitmix64-style mix: stable across runs, spread across requests.
	h := uint64(c.Seed)*0x9E3779B97F4A7C15 + uint64(reqID)<<16 + uint64(attempt)
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	jitter := time.Duration(h % uint64(base))
	return d + jitter
}

// conditional carries a request's cache validators (If-None-Match /
// If-Modified-Since); the zero value sends none.
type conditional struct {
	etag         string
	lastModified string
}

// fetchResult is one successful transfer: either a body with its response
// validators, or a 304 confirmation that the caller's copy is current.
type fetchResult struct {
	body         []byte
	etag         string
	lastModified string
	notModified  bool
}

// get performs a bounded-retry GET and returns the full response body.
// verify, when non-nil, validates the body; validation failures count as
// retryable corruption (the "re-read on truncation/corruption" path).
func (c *Client) get(ctx context.Context, path string, query url.Values, verify func([]byte) error) ([]byte, error) {
	res, err := c.getConditional(ctx, path, query, conditional{}, verify)
	if err != nil {
		return nil, err
	}
	return res.body, nil
}

// getConditional is get with cache validators threaded through the retry
// loop. Server-provided Retry-After delays (429 and 503) override the
// computed backoff.
func (c *Client) getConditional(ctx context.Context, path string, query url.Values, cond conditional, verify func([]byte) error) (*fetchResult, error) {
	u := *c.base
	u.Path = path
	u.RawQuery = query.Encode()
	reqID := c.reqs.Add(1)
	metricClientRequests.Inc()
	var trace obs.TraceID
	if c.Trace != nil {
		trace = c.Trace.Next()
	}

	var last error
	attempts := 0
	for attempt := 0; attempt <= c.MaxRetries; attempt++ {
		if attempt > 0 {
			delay := c.backoff(reqID, attempt)
			if d, ok := serverDelay(last); ok {
				delay = d
			}
			if err := c.sleep(ctx, delay); err != nil {
				return nil, err
			}
		}
		attempts++
		res, err := c.attempt(ctx, u.String(), cond, trace, verify)
		if err == nil {
			return res, nil
		}
		var retryable *retryableError
		if !errors.As(err, &retryable) {
			return nil, err
		}
		last = retryable.err
		metricRetries[retryCause(last)].Inc()
	}
	return nil, &RetryError{URL: u.String(), Attempts: attempts, Last: unwrapDelay(last)}
}

// retryableError tags a fault the retry loop may try again.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// rateLimitError carries a 429's server-provided Retry-After delay (-1 if
// none).
type rateLimitError struct {
	err        error
	retryAfter time.Duration
}

func (e *rateLimitError) Error() string { return e.err.Error() }
func (e *rateLimitError) Unwrap() error { return e.err }

// unavailableError carries a 503's Retry-After — the shape the server's
// admission layer sheds load with. It stays a server_error for the retry
// metrics (it unwraps to the StatusError) but its delay is honoured like a
// 429's.
type unavailableError struct {
	err        error
	retryAfter time.Duration
}

func (e *unavailableError) Error() string { return e.err.Error() }
func (e *unavailableError) Unwrap() error { return e.err }

// serverDelay extracts the server-provided retry delay from the last fault,
// if it carried one.
func serverDelay(err error) (time.Duration, bool) {
	var ra *rateLimitError
	if errors.As(err, &ra) && ra.retryAfter >= 0 {
		return ra.retryAfter, true
	}
	var ua *unavailableError
	if errors.As(err, &ua) && ua.retryAfter >= 0 {
		return ua.retryAfter, true
	}
	return 0, false
}

// unwrapDelay strips the delay-carrying wrappers for the final RetryError,
// so callers inspect the underlying StatusError directly.
func unwrapDelay(err error) error {
	var ra *rateLimitError
	if errors.As(err, &ra) {
		return ra.err
	}
	var ua *unavailableError
	if errors.As(err, &ua) {
		return ua.err
	}
	return err
}

// attempt performs one GET. Retryable faults come back wrapped in
// *retryableError; anything else is permanent.
func (c *Client) attempt(ctx context.Context, url string, cond conditional, trace obs.TraceID, verify func([]byte) error) (*fetchResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if c.ClientID != "" {
		req.Header.Set("X-Client-Id", c.ClientID)
	}
	if trace != 0 {
		req.Header.Set(obs.TraceHeader, trace.String())
	}
	if cond.etag != "" {
		req.Header.Set("If-None-Match", cond.etag)
	} else if cond.lastModified != "" {
		req.Header.Set("If-Modified-Since", cond.lastModified)
	}
	resp, err := c.httpClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Transport-level failure: connection reset, refused, DNS, EOF.
		return nil, &retryableError{err: err}
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// Short read below the declared Content-Length or a mid-body
			// reset: refetch rather than parse a partial archive.
			return nil, &retryableError{err: fmt.Errorf("%w: %v", ErrTruncatedBody, err)}
		}
		if verify != nil {
			if err := verify(body); err != nil {
				return nil, &retryableError{err: err}
			}
		}
		return &fetchResult{
			body:         body,
			etag:         resp.Header.Get("ETag"),
			lastModified: resp.Header.Get("Last-Modified"),
		}, nil
	case resp.StatusCode == http.StatusNotModified:
		if cond.etag == "" && cond.lastModified == "" {
			// A 304 to an unconditional request is a server bug, not a
			// cache hit; surface it rather than serve nothing.
			return nil, &StatusError{Code: resp.StatusCode, Body: "304 to an unconditional request"}
		}
		return &fetchResult{notModified: true, etag: cond.etag, lastModified: cond.lastModified}, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		se := &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(body))}
		return nil, &retryableError{err: &rateLimitError{err: se, retryAfter: retryAfter(resp)}}
	case resp.StatusCode == http.StatusServiceUnavailable:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		se := &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(body))}
		return nil, &retryableError{err: &unavailableError{err: se, retryAfter: retryAfter(resp)}}
	case resp.StatusCode >= 500:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &retryableError{err: &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(body))}}
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(body))}
	}
}

// retryAfter extracts the Retry-After delay, -1 when absent or unusable.
func retryAfter(resp *http.Response) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return -1
}

// fetchSets performs a verified fetch of element sets: the body must decode
// cleanly (within CorruptTolerance) or the transfer is retried, so corrupt
// responses can never silently shrink the archive.
func (c *Client) fetchSets(ctx context.Context, path string, query url.Values) ([]*tle.TLE, error) {
	var sets []*tle.TLE
	verify := func(body []byte) error {
		var err error
		sets, err = c.decodeSets(body)
		return err
	}
	if _, err := c.get(ctx, path, query, verify); err != nil {
		return nil, err
	}
	return sets, nil
}

// decodeSets parses a response body, enforcing that (almost) every record
// decoded. The non-strict reader's silent skipping is exactly what a
// fault-tolerant ingest must not inherit: a skipped record here becomes a
// missing satellite downstream.
func (c *Client) decodeSets(body []byte) ([]*tle.TLE, error) {
	if c.UseJSON {
		sets, err := tle.ReadOMM(bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorruptBody, err)
		}
		return tle.Dedupe(sets), nil
	}
	r := tle.NewReader(bytes.NewReader(body))
	var sets []*tle.TLE
	for {
		t, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorruptBody, err)
		}
		sets = append(sets, t)
	}
	if r.Skipped() > c.CorruptTolerance {
		return nil, fmt.Errorf("%w: %d unparseable element sets", ErrCorruptBody, r.Skipped())
	}
	return tle.Dedupe(sets), nil
}

// FetchGroup downloads the current catalog of a constellation group — the
// CelesTrak step CosmicDance performs once to learn the catalog numbers.
func (c *Client) FetchGroup(ctx context.Context, group string) ([]*tle.TLE, error) {
	format := "3le"
	if c.UseJSON {
		format = "json"
	}
	q := url.Values{"GROUP": {group}, "FORMAT": {format}}
	return c.fetchSets(ctx, "/NORAD/elements/gp.php", q)
}

// GroupPage is the result of a conditional group fetch: either fresh
// element sets with their validators, or NotModified confirming the
// caller's cached copy is current.
type GroupPage struct {
	Sets         []*tle.TLE
	ETag         string
	LastModified string
	NotModified  bool
}

// FetchGroupConditional downloads the current catalog of a group unless the
// server confirms the caller's validators still hold — the incremental-poll
// workflow. Pass empty validators for an unconditional fetch; on a 304 the
// returned page carries NotModified and echoes the validators back.
func (c *Client) FetchGroupConditional(ctx context.Context, group, etag, lastModified string) (*GroupPage, error) {
	format := "3le"
	if c.UseJSON {
		format = "json"
	}
	q := url.Values{"GROUP": {group}, "FORMAT": {format}}
	var sets []*tle.TLE
	verify := func(body []byte) error {
		var err error
		sets, err = c.decodeSets(body)
		return err
	}
	res, err := c.getConditional(ctx, "/NORAD/elements/gp.php", q, conditional{etag: etag, lastModified: lastModified}, verify)
	if err != nil {
		return nil, err
	}
	if res.notModified {
		return &GroupPage{NotModified: true, ETag: etag, LastModified: lastModified}, nil
	}
	return &GroupPage{Sets: sets, ETag: res.etag, LastModified: res.lastModified}, nil
}

// CatalogNumbers extracts the sorted distinct catalog numbers from a fetch.
func CatalogNumbers(sets []*tle.TLE) []int {
	return tle.NewCatalog(sets).Numbers()
}

// FetchHistory downloads the element sets of one object in [from, to] — the
// Space-Track step.
func (c *Client) FetchHistory(ctx context.Context, catalog int, from, to time.Time) ([]*tle.TLE, error) {
	q := url.Values{
		"catalog": {strconv.Itoa(catalog)},
		"from":    {from.UTC().Format(time.RFC3339)},
		"to":      {to.UTC().Format(time.RFC3339)},
	}
	if c.UseJSON {
		q.Set("format", "json")
	}
	return c.fetchSets(ctx, "/history", q)
}

// Health probes the service.
func (c *Client) Health(ctx context.Context) error {
	_, err := c.get(ctx, "/healthz", nil, nil)
	return err
}
