// Package coverage estimates broadband service coverage from a fleet's
// instantaneous geometry — the paper's motivating concern that premature
// orbital decay "could lead to service holes in such globally spanning
// connectivity infrastructure". Given the element sets in effect at an
// instant, it computes, per latitude band, the fraction of user locations
// with at least one satellite above the elevation mask and the bent-pipe
// round-trip-time floor to the best satellite.
package coverage

import (
	"fmt"
	"math"
	"time"

	"cosmicdance/internal/groundtrack"
	"cosmicdance/internal/orbit"
	"cosmicdance/internal/units"
)

// SpeedOfLightKmPerMs is c in km per millisecond.
const SpeedOfLightKmPerMs = 299.792458

// Analyzer computes coverage snapshots. The zero value is unusable; start
// from NewAnalyzer.
type Analyzer struct {
	// ElevationMaskDeg is the minimum elevation for service (Starlink's
	// terminals use ~25°).
	ElevationMaskDeg float64
	// LatStepDeg is the latitude grid resolution.
	LatStepDeg float64
	// LonSamples is the number of longitudes sampled per latitude row.
	LonSamples int
	// MaxUserLatDeg bounds the populated latitudes considered.
	MaxUserLatDeg float64
}

// NewAnalyzer returns the standard configuration: 25° mask, 5° latitude
// rows, 36 longitude samples, users up to ±70°.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		ElevationMaskDeg: 25,
		LatStepDeg:       5,
		LonSamples:       36,
		MaxUserLatDeg:    70,
	}
}

// LatBand is one latitude row of a snapshot.
type LatBand struct {
	LatDeg float64
	// Covered is the fraction of sampled longitudes with at least one
	// satellite above the mask.
	Covered float64
	// MeanVisible is the mean number of satellites above the mask.
	MeanVisible float64
	// BestRTTms is the minimum bent-pipe RTT across covered samples
	// (user → satellite → nearby gateway and back); 0 when uncovered.
	BestRTTms float64
}

// Snapshot is the coverage state of the fleet at an instant.
type Snapshot struct {
	At    time.Time
	Bands []LatBand
	// GlobalCovered is the area-weighted covered fraction across bands
	// (cosine-of-latitude weighting).
	GlobalCovered float64
	// Holes counts (band, longitude) samples with no service.
	Holes int
}

// Snapshot computes the coverage of the given fleet at time at.
func (a *Analyzer) Snapshot(sats []groundtrack.SatElements, at time.Time) (*Snapshot, error) {
	if len(sats) == 0 {
		return nil, fmt.Errorf("coverage: no satellites")
	}
	if a.LatStepDeg <= 0 || a.LonSamples <= 0 {
		return nil, fmt.Errorf("coverage: bad grid (%v°, %d lons)", a.LatStepDeg, a.LonSamples)
	}

	// Propagate every satellite once.
	type satPos struct {
		lat, lon float64 // radians
		altKm    float64
	}
	positions := make([]satPos, 0, len(sats))
	for _, s := range sats {
		p, err := orbit.NewPropagator(s.Epoch, s.Elements)
		if err != nil {
			continue
		}
		sp := p.SubPointAt(at)
		positions = append(positions, satPos{
			lat:   sp.Lat.Radians(),
			lon:   sp.Lon.Radians(),
			altKm: float64(sp.Alt),
		})
	}
	if len(positions) == 0 {
		return nil, fmt.Errorf("coverage: no propagatable satellites")
	}

	maskRad := a.ElevationMaskDeg * math.Pi / 180
	out := &Snapshot{At: at}
	var weightedCovered, weightSum float64

	for lat := -a.MaxUserLatDeg; lat <= a.MaxUserLatDeg; lat += a.LatStepDeg {
		userLat := lat * math.Pi / 180
		covered := 0
		visibleSum := 0
		bestRTT := math.Inf(1)
		for k := 0; k < a.LonSamples; k++ {
			userLon := (float64(k)/float64(a.LonSamples))*2*math.Pi - math.Pi
			visible := 0
			for _, sp := range positions {
				el, slant := elevationAndRange(userLat, userLon, sp.lat, sp.lon, sp.altKm)
				if el < maskRad {
					continue
				}
				visible++
				// Bent pipe: user→satellite→gateway (near the user) and
				// back: four slant-range legs.
				if rtt := 4 * slant / SpeedOfLightKmPerMs; rtt < bestRTT {
					bestRTT = rtt
				}
			}
			if visible > 0 {
				covered++
			} else {
				out.Holes++
			}
			visibleSum += visible
		}
		band := LatBand{
			LatDeg:      lat,
			Covered:     float64(covered) / float64(a.LonSamples),
			MeanVisible: float64(visibleSum) / float64(a.LonSamples),
		}
		if !math.IsInf(bestRTT, 1) {
			band.BestRTTms = bestRTT
		}
		out.Bands = append(out.Bands, band)
		w := math.Cos(userLat)
		weightedCovered += band.Covered * w
		weightSum += w
	}
	if weightSum > 0 {
		out.GlobalCovered = weightedCovered / weightSum
	}
	return out, nil
}

// elevationAndRange returns the elevation angle (radians) and slant range
// (km) from a ground user to a satellite, spherical Earth.
func elevationAndRange(userLat, userLon, satLat, satLon, altKm float64) (float64, float64) {
	// Central angle via the spherical law of cosines.
	cosGamma := math.Sin(userLat)*math.Sin(satLat) +
		math.Cos(userLat)*math.Cos(satLat)*math.Cos(userLon-satLon)
	cosGamma = math.Max(-1, math.Min(1, cosGamma))
	gamma := math.Acos(cosGamma)

	re := units.EarthRadiusKm
	rs := re + altKm
	slant := math.Sqrt(re*re + rs*rs - 2*re*rs*cosGamma)
	if slant == 0 {
		return math.Pi / 2, altKm
	}
	sinGamma := math.Sin(gamma)
	// Elevation from the geometry: tan(el) = (cos γ − Re/Rs) / sin γ.
	if sinGamma == 0 {
		return math.Pi / 2, altKm
	}
	el := math.Atan2(cosGamma-re/rs, sinGamma)
	return el, slant
}
