package coverage

import (
	"math"
	"testing"
	"time"

	"cosmicdance/internal/groundtrack"
	"cosmicdance/internal/orbit"
	"cosmicdance/internal/units"
)

var cv0 = time.Date(2024, 5, 11, 0, 0, 0, 0, time.UTC)

func shellSats(n int, alt float64, inc units.Degrees) []groundtrack.SatElements {
	mm, err := orbit.MeanMotionFromAltitude(units.Kilometers(alt))
	if err != nil {
		panic(err)
	}
	out := make([]groundtrack.SatElements, n)
	for i := range out {
		out[i] = groundtrack.SatElements{
			Catalog: i + 1,
			Epoch:   cv0,
			Elements: orbit.Elements{
				Eccentricity: 0.0001,
				MeanMotion:   mm,
				Inclination:  inc,
				RAAN:         units.Degrees(float64(i) * 360 / float64(n) * 7).Normalize360(),
				MeanAnomaly:  units.Degrees(float64(i) * 360 / float64(n) * 13).Normalize360(),
			},
		}
	}
	return out
}

func TestElevationGeometry(t *testing.T) {
	// Satellite directly overhead: elevation 90°, slant range = altitude.
	el, slant := elevationAndRange(0.5, 1.0, 0.5, 1.0, 550)
	if math.Abs(el-math.Pi/2) > 1e-6 {
		t.Errorf("overhead elevation = %v rad", el)
	}
	if math.Abs(slant-550) > 1 {
		t.Errorf("overhead slant = %v km", slant)
	}
	// Satellite on the opposite side of the Earth: deeply negative
	// elevation.
	el, _ = elevationAndRange(0, 0, 0, math.Pi, 550)
	if el > -math.Pi/4 {
		t.Errorf("antipodal elevation = %v rad, want strongly negative", el)
	}
	// ~10° of ground separation at 550 km: low but positive elevation.
	el, slant = elevationAndRange(0, 0, 0, 10*math.Pi/180, 550)
	if el < 0 || el > 30*math.Pi/180 {
		t.Errorf("10-degree separation elevation = %v rad", el)
	}
	if slant <= 550 {
		t.Errorf("off-nadir slant = %v km, want > altitude", slant)
	}
}

func TestSnapshotValidation(t *testing.T) {
	a := NewAnalyzer()
	if _, err := a.Snapshot(nil, cv0); err == nil {
		t.Error("no satellites accepted")
	}
	a.LatStepDeg = 0
	if _, err := a.Snapshot(shellSats(1, 550, 53), cv0); err == nil {
		t.Error("bad grid accepted")
	}
}

func TestSingleSatelliteCoversItsFootprintOnly(t *testing.T) {
	a := NewAnalyzer()
	snap, err := a.Snapshot(shellSats(1, 550, 53), cv0)
	if err != nil {
		t.Fatal(err)
	}
	// One satellite's 25°-mask footprint is ~1,000 km across: a sliver of
	// the planet.
	if snap.GlobalCovered > 0.05 {
		t.Errorf("single-satellite coverage = %v, want tiny", snap.GlobalCovered)
	}
	if snap.Holes == 0 {
		t.Error("no holes with a single satellite")
	}
}

func TestCoverageGrowsWithFleet(t *testing.T) {
	a := NewAnalyzer()
	small, err := a.Snapshot(shellSats(50, 550, 53), cv0)
	if err != nil {
		t.Fatal(err)
	}
	large, err := a.Snapshot(shellSats(800, 550, 53), cv0)
	if err != nil {
		t.Fatal(err)
	}
	if large.GlobalCovered <= small.GlobalCovered {
		t.Errorf("coverage did not grow: %v vs %v", large.GlobalCovered, small.GlobalCovered)
	}
	// A Starlink-scale 53° shell blankets the mid-latitudes.
	if large.GlobalCovered < 0.7 {
		t.Errorf("800-satellite coverage = %v, want most of the band", large.GlobalCovered)
	}
}

func TestInclinationLimitsPolarCoverage(t *testing.T) {
	a := NewAnalyzer()
	a.MaxUserLatDeg = 85
	snap, err := a.Snapshot(shellSats(400, 550, 53), cv0)
	if err != nil {
		t.Fatal(err)
	}
	var mid, polar float64
	var midN, polarN int
	for _, b := range snap.Bands {
		switch l := math.Abs(b.LatDeg); {
		case l <= 45:
			mid += b.Covered
			midN++
		case l >= 75:
			polar += b.Covered
			polarN++
		}
	}
	if mid/float64(midN) <= polar/float64(polarN) {
		t.Errorf("53-degree shell covers poles (%v) as well as mid-latitudes (%v)",
			polar/float64(polarN), mid/float64(midN))
	}
}

func TestRTTFloor(t *testing.T) {
	a := NewAnalyzer()
	snap, err := a.Snapshot(shellSats(800, 550, 53), cv0)
	if err != nil {
		t.Fatal(err)
	}
	// The bent-pipe floor for a 550 km overhead pass is 4×550/c ≈ 7.3 ms;
	// off-nadir geometry raises it, the mask bounds it.
	for _, b := range snap.Bands {
		if b.Covered == 0 {
			continue
		}
		if b.BestRTTms < 7 || b.BestRTTms > 25 {
			t.Errorf("band %v best RTT = %v ms", b.LatDeg, b.BestRTTms)
		}
	}
}

func TestServiceHolesFromDecay(t *testing.T) {
	// Removing a third of a sparse shell opens service holes: the hole count
	// must rise.
	a := NewAnalyzer()
	full := shellSats(120, 550, 53)
	before, err := a.Snapshot(full, cv0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := a.Snapshot(full[:80], cv0)
	if err != nil {
		t.Fatal(err)
	}
	if after.Holes <= before.Holes {
		t.Errorf("holes before=%d after=%d; decay must open holes", before.Holes, after.Holes)
	}
	if after.GlobalCovered >= before.GlobalCovered {
		t.Errorf("coverage before=%v after=%v", before.GlobalCovered, after.GlobalCovered)
	}
}
