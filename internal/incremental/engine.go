// Package incremental is the O(delta) counterpart of the batch pipeline: an
// append-only engine where per-track watermarks gate recomputation. New
// observations fold into per-catalog sorted histories and re-clean only the
// touched tracks; Dst hours advance an online storm state machine one reading
// at a time; association maintains the (event, track) join as a materialized
// map and emits delta events (new/updated deviations, decay-onset open/close)
// instead of re-deriving the full join.
//
// The headline invariant is prefix-replay equivalence: after ingesting any
// prefix of an observation/Dst event stream — in any interleaving, with any
// batching, duplicates included — the engine's materialized Dataset,
// deviation list and decay-onset set are byte-identical to the batch pipeline
// run over the same prefix. The equivalence is structural, not coincidental:
// cleaning reuses core.CleanTrack, association reuses core.AssociateTrack,
// onset detection reuses core.TrackDecayOnset, and materialization feeds one
// ChunkPartial through the same PartialAssembler as Build.
package incremental

import (
	"fmt"
	"math"
	"slices"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
	"cosmicdance/internal/dst"
	"cosmicdance/internal/obs"
	"cosmicdance/internal/tle"
	"cosmicdance/internal/trigger"
	"cosmicdance/internal/units"
)

// Ingest telemetry: the watermark advance rate and the delta-event fan-out
// are the two quantities that tell an operator whether the incremental plane
// is keeping up with the feed.
var (
	metricBatches   = obs.Default().Counter("incremental_ingest_batches_total")
	metricRows      = obs.Default().Counter("incremental_observations_total")
	metricDstHours  = obs.Default().Counter("incremental_dst_hours_total")
	metricRefreshes = obs.Default().Counter("incremental_tracks_refreshed_total")
	metricDeltas    = obs.Default().Counter("incremental_delta_events_total")
)

// Config parameterizes the engine. Event selection is fixed-threshold (the
// storm-detection threshold plus duration/peak gates) rather than
// percentile-based: a percentile over the whole weather history changes with
// every appended hour, which would make every Dst ingest O(world). The
// defaults select exactly the detected storms.
type Config struct {
	// Core is the batch pipeline configuration the engine must agree with.
	Core core.Config
	// MaxPeak, MinHours, MaxHours are the core.WeatherEvents selection knobs.
	MaxPeak  units.NanoTesla
	MinHours int
	MaxHours int // <= 0 means unbounded
	// WindowDays is the happens-closely-after association window in days.
	WindowDays int
	// MinDropKm is the decay-onset detection floor (core.TrackDecayOnset).
	MinDropKm float64
}

// DefaultConfig matches the batch gates: every detected storm is an event,
// 30-day association windows, 5 km onset floor.
func DefaultConfig() Config {
	return Config{
		Core:       core.DefaultConfig(),
		MaxPeak:    units.StormThreshold,
		MinHours:   1,
		WindowDays: 30,
		MinDropKm:  5,
	}
}

// Kind labels a delta event.
type Kind string

// Delta kinds, in the order a consumer typically sees them: track lifecycle,
// storm machine transitions, event (re)qualification, association and onset
// maintenance.
const (
	KindTrackNew        Kind = "track_new"        // catalog first survived cleaning
	KindTrackDrop       Kind = "track_drop"       // catalog no longer survives cleaning
	KindStormOpen       Kind = "storm_open"       // Dst crossed the storm threshold
	KindStormClose      Kind = "storm_close"      // Dst recovered; storm frozen
	KindEventOpen       Kind = "event_open"       // storm passed the event-selection gates
	KindEventRetract    Kind = "event_retract"    // open storm outgrew MaxHours
	KindDeviationNew    Kind = "deviation_new"    // (event, track) pair joined
	KindDeviationUpdate Kind = "deviation_update" // pair's deviation changed
	KindDeviationClear  Kind = "deviation_clear"  // pair no longer qualifies
	KindOnsetOpen       Kind = "onset_open"       // permanent decay detected
	KindOnsetUpdate     Kind = "onset_update"     // decay rate/drop changed
	KindOnsetClear      Kind = "onset_clear"      // decay no longer detected (re-boost)
)

// Delta is one incremental state transition, the unit of the live feed.
// Times are Unix seconds so the wire form is deterministic. Trace, when
// present, is the trace ID (16-hex form) of the ingest request that provoked
// the transition, so a feed consumer can join a delta back to the /ingest
// POST — and its admission decision — that caused it.
type Delta struct {
	Seq     uint64  `json:"seq"`
	Kind    Kind    `json:"kind"`
	Catalog int     `json:"catalog,omitempty"`
	Event   int64   `json:"event,omitempty"` // storm start (event identity)
	At      int64   `json:"at,omitempty"`    // instant of the transition
	Hours   int     `json:"hours,omitempty"`
	PeakNT  float64 `json:"peak_nt,omitempty"`
	DevKm   float64 `json:"dev_km,omitempty"`
	DragER  float64 `json:"drag_er,omitempty"`
	RateKmD float64 `json:"rate_km_day,omitempty"`
	DropKm  float64 `json:"drop_km,omitempty"`
	Trace   string  `json:"trace,omitempty"`
}

// IngestStats reports what one ingest batch did.
type IngestStats struct {
	Applied     int `json:"applied"`
	Duplicates  int `json:"duplicates"`
	GrossErrors int `json:"gross_errors,omitempty"`
}

// trackState is one catalog's incremental state: the full epoch-sorted,
// epoch-unique observation history (the per-track watermark is its frontier),
// the current cleaned track (nil while the satellite has not survived
// cleaning), and the materialized association row.
type trackState struct {
	obs   []core.Observation
	track *core.Track
	devs  map[int64]core.Deviation // event start (unix) → deviation
}

// Engine is the incremental pipeline state. It is not safe for concurrent
// use — Feed wraps it with a lock and the HTTP surface.
type Engine struct {
	cfg Config

	// Weather stream and the online storm machine (mirrors dst.Storms: runs
	// of hours at or below the threshold, NaN terminates, the trailing run
	// stays open).
	wxStart time.Time
	wx      []float64
	inRun   bool
	cur     dst.Storm
	curQual bool        // whether the open storm currently passes the event gates
	storms  []dst.Storm // closed storms, time-ascending
	events  []time.Time // qualified storm starts, time-ascending

	// Track state.
	cats      []int // catalogs with >= 1 valid observation, ascending
	tracks    map[int]*trackState
	rawAlts   []float64 // every ingested altitude, ingest order
	totalObs  int
	grossErr  int
	dupRows   int
	opCount   int // catalogs whose track survives cleaning
	devCount  int
	onsets    map[int]core.DecayOnset
	lastEpoch int64 // newest observation epoch seen (unix)

	trig *trigger.Engine

	seq     uint64
	version uint64
	onDelta func(Delta)
	// batchTrace tags every delta emitted while the current traced ingest
	// batch runs. It is transient call-scoped context, never part of the
	// engine's replayable state: a prefix replay without traces emits the
	// same deltas minus the tag.
	batchTrace string

	matVersion uint64
	matData    *core.Dataset
}

// New builds an empty engine.
func New(cfg Config) *Engine {
	// The trigger thresholds mirror the storm machine: onset at the storm
	// threshold, clear one step less intense. New only fails when clear <=
	// onset, which cannot happen here.
	trig, err := trigger.New(units.StormThreshold, units.StormThreshold+1)
	if err != nil {
		panic(err)
	}
	return &Engine{
		cfg:    cfg,
		tracks: make(map[int]*trackState),
		onsets: make(map[int]core.DecayOnset),
		trig:   trig,
	}
}

// OnDelta registers the delta-event sink (at most one; the Feed fans out).
func (e *Engine) OnDelta(fn func(Delta)) { e.onDelta = fn }

// Trigger exposes the storm trigger machine riding on the Dst stream.
func (e *Engine) Trigger() *trigger.Engine { return e.trig }

// Version increments on every ingest batch that changed state — the cheap
// staleness check behind conditional GETs of the risk view.
func (e *Engine) Version() uint64 { return e.version }

// Seq returns the sequence number of the last emitted delta.
func (e *Engine) Seq() uint64 { return e.seq }

// WeatherWatermark returns the exclusive frontier of the ingested Dst
// stream: the first hour not yet covered (zero before any Dst ingest).
func (e *Engine) WeatherWatermark() time.Time {
	if len(e.wx) == 0 {
		return time.Time{}
	}
	return e.wxStart.Add(time.Duration(len(e.wx)) * time.Hour)
}

// LastObservationEpoch returns the newest observation epoch ingested, in
// Unix seconds (0 before any observation).
func (e *Engine) LastObservationEpoch() int64 { return e.lastEpoch }

func (e *Engine) emit(d Delta) {
	e.seq++
	d.Seq = e.seq
	d.Trace = e.batchTrace
	metricDeltas.Inc()
	if e.onDelta != nil {
		e.onDelta(d)
	}
}

// IngestTLEs folds parsed element sets into the engine.
func (e *Engine) IngestTLEs(sets []*tle.TLE) IngestStats {
	batch := make([]core.Observation, len(sets))
	for i, t := range sets {
		batch[i] = core.ObservationFromTLE(t)
	}
	return e.IngestObservations(batch)
}

// IngestTLEsTraced is IngestTLEs carrying the originating request's trace
// ID: every delta the batch provokes names the /ingest POST that caused it.
// A zero trace is plain IngestTLEs.
func (e *Engine) IngestTLEsTraced(sets []*tle.TLE, trace obs.TraceID) IngestStats {
	if trace != 0 {
		e.batchTrace = trace.String()
		defer func() { e.batchTrace = "" }()
	}
	return e.IngestTLEs(sets)
}

// IngestSamples folds simulator samples into the engine (the bulk seeding
// path; identical semantics to IngestTLEs).
func (e *Engine) IngestSamples(samples []constellation.Sample) IngestStats {
	batch := make([]core.Observation, len(samples))
	for i, s := range samples {
		batch[i] = core.ObservationFromSample(s)
	}
	return e.IngestObservations(batch)
}

// IngestObservations folds a batch of observations into the engine and
// advances the touched tracks' watermarks: cost is O(batch + touched tracks
// re-cleaned), never O(world). Rows may arrive in any order and may repeat —
// a (catalog, epoch) already ingested is dropped exactly as the batch
// dedupe's keep-first rule would drop it.
func (e *Engine) IngestObservations(batch []core.Observation) IngestStats {
	var st IngestStats
	touched := make(map[int]struct{})
	for _, o := range batch {
		e.totalObs++
		e.rawAlts = append(e.rawAlts, o.AltKm)
		if o.AltKm > e.cfg.Core.MaxValidAltKm || o.AltKm < e.cfg.Core.MinValidAltKm {
			e.grossErr++
			st.GrossErrors++
			continue
		}
		ts := e.tracks[o.Catalog]
		if ts == nil {
			ts = &trackState{devs: make(map[int64]core.Deviation)}
			e.tracks[o.Catalog] = ts
			at, _ := slices.BinarySearch(e.cats, o.Catalog)
			e.cats = slices.Insert(e.cats, at, o.Catalog)
		}
		at, dup := slices.BinarySearchFunc(ts.obs, o.Epoch, func(x core.Observation, epoch int64) int {
			switch {
			case x.Epoch < epoch:
				return -1
			case x.Epoch > epoch:
				return 1
			default:
				return 0
			}
		})
		if dup {
			// The batch pipeline stable-sorts by epoch and keeps the first
			// row in ingest order; the row already stored is that first row.
			e.dupRows++
			st.Duplicates++
			continue
		}
		ts.obs = slices.Insert(ts.obs, at, o)
		if o.Epoch > e.lastEpoch {
			e.lastEpoch = o.Epoch
		}
		touched[o.Catalog] = struct{}{}
		st.Applied++
	}
	dirty := make([]int, 0, len(touched))
	for c := range touched {
		dirty = append(dirty, c)
	}
	slices.Sort(dirty)
	for _, c := range dirty {
		e.refreshTrack(c)
	}
	if len(batch) > 0 {
		e.version++
	}
	metricBatches.Inc()
	metricRows.Add(int64(len(batch)))
	metricRefreshes.Add(int64(len(dirty)))
	return st
}

// IngestDst appends hourly Dst readings starting at start. The stream must
// stay contiguous: start must be hour-aligned with the stream and leave no
// gap. Hours at or before the weather watermark are the dedupe window — they
// were already folded in and are dropped, so replaying an overlapping batch
// is idempotent.
func (e *Engine) IngestDst(start time.Time, vals []float64) (IngestStats, error) {
	var st IngestStats
	if len(vals) == 0 {
		return st, nil
	}
	if len(e.wx) == 0 {
		e.wxStart = start
	} else {
		off := start.Sub(e.wxStart)
		if off%time.Hour != 0 {
			return st, fmt.Errorf("incremental: dst batch at %s is not hour-aligned with the stream start %s", start.Format(time.RFC3339), e.wxStart.Format(time.RFC3339))
		}
		idx := int(off / time.Hour)
		if idx < 0 {
			return st, fmt.Errorf("incremental: dst batch at %s starts before the stream start %s", start.Format(time.RFC3339), e.wxStart.Format(time.RFC3339))
		}
		if idx > len(e.wx) {
			return st, fmt.Errorf("incremental: dst batch at %s leaves a %d-hour gap at the watermark", start.Format(time.RFC3339), idx-len(e.wx))
		}
		skip := len(e.wx) - idx
		if skip >= len(vals) {
			st.Duplicates = len(vals)
			return st, nil
		}
		st.Duplicates = skip
		vals = vals[skip:]
	}
	for _, v := range vals {
		at := e.wxStart.Add(time.Duration(len(e.wx)) * time.Hour)
		e.wx = append(e.wx, v)
		e.feedHour(at, v)
		st.Applied++
	}
	e.version++
	metricDstHours.Add(int64(st.Applied))
	return st, nil
}

// feedHour advances the online storm machine by one reading — the streaming
// mirror of dst.Storms: maximal runs at or below the threshold, NaN
// terminates a run, and the trailing run stays open at the watermark.
func (e *Engine) feedHour(at time.Time, v float64) {
	below := !math.IsNaN(v) && units.NanoTesla(v) <= units.StormThreshold
	switch {
	case below && !e.inRun:
		e.inRun = true
		e.cur = dst.Storm{Start: at, Hours: 1, Peak: units.NanoTesla(v), PeakAt: at}
		e.curQual = false
		e.emit(Delta{Kind: KindStormOpen, Event: e.cur.Start.Unix(), At: at.Unix(), Hours: 1, PeakNT: float64(e.cur.Peak)})
		e.syncOpenEvent()
	case below && e.inRun:
		e.cur.Hours++
		if units.NanoTesla(v) < e.cur.Peak {
			e.cur.Peak = units.NanoTesla(v)
			e.cur.PeakAt = at
		}
		e.syncOpenEvent()
	case !below && e.inRun:
		e.inRun = false
		e.storms = append(e.storms, e.cur)
		e.emit(Delta{Kind: KindStormClose, Event: e.cur.Start.Unix(), At: at.Unix(), Hours: e.cur.Hours, PeakNT: float64(e.cur.Peak)})
	}
	e.trig.Feed(at, units.NanoTesla(v))
}

// qualifies applies the event-selection gates to a storm.
func (e *Engine) qualifies(s dst.Storm) bool {
	if s.Peak > e.cfg.MaxPeak {
		return false
	}
	if s.Hours < e.cfg.MinHours {
		return false
	}
	if e.cfg.MaxHours > 0 && s.Hours > e.cfg.MaxHours {
		return false
	}
	return true
}

// syncOpenEvent reconciles the open storm against the event gates. While a
// storm is open its duration grows and its peak deepens, so it can qualify
// (reaching MinHours or MaxPeak) or disqualify (outgrowing MaxHours) — and
// only the open storm can: closed storms are frozen. Qualification triggers
// the only O(world) sweep in the engine, a one-time association of the new
// event against every track; it is rare (once per storm) and is exactly the
// work the batch pipeline redoes for every event on every rebuild.
func (e *Engine) syncOpenEvent() {
	q := e.qualifies(e.cur)
	if q == e.curQual {
		return
	}
	start := e.cur.Start
	if q {
		e.curQual = true
		e.events = append(e.events, start)
		e.emit(Delta{Kind: KindEventOpen, Event: start.Unix(), Hours: e.cur.Hours, PeakNT: float64(e.cur.Peak)})
		ev := core.Event{Storm: dst.Storm{Start: start}}
		for _, cat := range e.cats {
			e.refreshPair(ev, cat)
		}
		return
	}
	e.curQual = false
	e.events = e.events[:len(e.events)-1]
	key := start.Unix()
	for _, cat := range e.cats {
		ts := e.tracks[cat]
		if _, ok := ts.devs[key]; ok {
			delete(ts.devs, key)
			e.devCount--
		}
	}
	e.emit(Delta{Kind: KindEventRetract, Event: key, Hours: e.cur.Hours, PeakNT: float64(e.cur.Peak)})
}

// refreshTrack re-cleans one catalog after its watermark advanced, then
// reconciles its decay onset and its row of the association join. Cost is
// O(track history + events), independent of the fleet size.
func (e *Engine) refreshTrack(cat int) {
	ts := e.tracks[cat]
	res := core.CleanTrack(cat, ts.obs, e.cfg.Core)
	had := ts.track != nil
	ts.track = res.Track
	switch {
	case ts.track != nil && !had:
		e.opCount++
		e.emit(Delta{Kind: KindTrackNew, Catalog: cat})
	case ts.track == nil && had:
		e.opCount--
		e.emit(Delta{Kind: KindTrackDrop, Catalog: cat})
	}

	var on core.DecayOnset
	ok := false
	if ts.track != nil {
		on, ok = core.TrackDecayOnset(ts.track, e.cfg.Core.DecayFilterKm, e.cfg.MinDropKm)
	}
	old, had2 := e.onsets[cat]
	switch {
	case ok && !had2:
		e.onsets[cat] = on
		e.emit(Delta{Kind: KindOnsetOpen, Catalog: cat, At: on.At.Unix(), RateKmD: on.RateKmPerDay, DropKm: on.DropKm})
	case ok && had2 && on != old:
		e.onsets[cat] = on
		e.emit(Delta{Kind: KindOnsetUpdate, Catalog: cat, At: on.At.Unix(), RateKmD: on.RateKmPerDay, DropKm: on.DropKm})
	case !ok && had2:
		delete(e.onsets, cat)
		e.emit(Delta{Kind: KindOnsetClear, Catalog: cat})
	}

	for _, start := range e.events {
		e.refreshPair(core.Event{Storm: dst.Storm{Start: start}}, cat)
	}
}

// refreshPair reconciles one (event, track) cell of the association join.
func (e *Engine) refreshPair(ev core.Event, cat int) {
	ts := e.tracks[cat]
	key := ev.Epoch().Unix()
	var nd core.Deviation
	ok := false
	if ts.track != nil {
		nd, ok = core.AssociateTrack(e.cfg.Core, ev, ts.track, e.cfg.WindowDays)
	}
	old, had := ts.devs[key]
	switch {
	case ok && !had:
		ts.devs[key] = nd
		e.devCount++
		e.emit(Delta{Kind: KindDeviationNew, Catalog: cat, Event: key, DevKm: nd.MaxDevKm, DragER: nd.MaxDrag})
	case ok && had && nd != old:
		ts.devs[key] = nd
		e.emit(Delta{Kind: KindDeviationUpdate, Catalog: cat, Event: key, DevKm: nd.MaxDevKm, DragER: nd.MaxDrag})
	case !ok && had:
		delete(ts.devs, key)
		e.devCount--
		e.emit(Delta{Kind: KindDeviationClear, Catalog: cat, Event: key})
	}
}

// Weather materializes the ingested Dst stream as an index (a copy; the
// engine keeps appending).
func (e *Engine) Weather() (*dst.Index, error) {
	if len(e.wx) == 0 {
		return nil, fmt.Errorf("incremental: no solar activity data ingested")
	}
	return dst.FromValues(e.wxStart, slices.Clone(e.wx)), nil
}

// Storms returns every storm at the current watermark, the trailing open run
// included — exactly dst.Storms over the ingested stream.
func (e *Engine) Storms() []dst.Storm {
	out := slices.Clone(e.storms)
	if e.inRun {
		out = append(out, e.cur)
	}
	return out
}

// Events returns the qualified events at the current watermark, in storm
// order — exactly core.WeatherEvents over the ingested stream.
func (e *Engine) Events() []core.Event {
	var out []core.Event
	for _, s := range e.Storms() {
		if e.qualifies(s) {
			out = append(out, core.Event{Storm: s})
		}
	}
	return out
}

// Deviations returns the materialized association join in the batch
// pipeline's order: event-major, catalog-minor.
func (e *Engine) Deviations() []core.Deviation {
	out := make([]core.Deviation, 0, e.devCount)
	for _, start := range e.events {
		key := start.Unix()
		for _, cat := range e.cats {
			if d, ok := e.tracks[cat].devs[key]; ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// Onsets returns the detected decay onsets in catalog order — exactly
// Dataset.DecayOnsets at the current watermark.
func (e *Engine) Onsets() []core.DecayOnset {
	out := make([]core.DecayOnset, 0, len(e.onsets))
	for _, cat := range e.cats {
		if on, ok := e.onsets[cat]; ok {
			out = append(out, on)
		}
	}
	return out
}

// Dataset materializes the engine state as a batch-identical core.Dataset:
// one ChunkPartial through the same PartialAssembler Build uses. The result
// is cached per version, immutable, and safe to hold across further ingests
// (refreshes replace track pointers, never mutate them).
func (e *Engine) Dataset() (*core.Dataset, error) {
	if e.matData != nil && e.matVersion == e.version {
		return e.matData, nil
	}
	weather, err := e.Weather()
	if err != nil {
		return nil, err
	}
	p := &core.ChunkPartial{
		// The assembler canonicalizes the raw-altitude order on Finish, so
		// the ingest-order clone lands in the dataset's canonical form.
		RawAlts: slices.Clone(e.rawAlts),
	}
	p.Stats.TotalObservations = e.totalObs
	p.Stats.GrossErrors = e.grossErr
	p.Stats.Duplicates = e.dupRows
	p.Tracks = make([]*core.Track, 0, e.opCount)
	for _, cat := range e.cats {
		ts := e.tracks[cat]
		if ts.track == nil {
			p.Stats.NonOperational++
			continue
		}
		p.Stats.RaisingRemoved += ts.track.RaisingRemoved
		p.Tracks = append(p.Tracks, ts.track)
	}
	a := core.NewPartialAssembler(e.cfg.Core, weather)
	if err := a.Add(p); err != nil {
		return nil, err
	}
	d, err := a.Finish()
	if err != nil {
		return nil, err
	}
	e.matData = d
	e.matVersion = e.version
	return d, nil
}
