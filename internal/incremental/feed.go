package incremental

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
	"cosmicdance/internal/dst"
	"cosmicdance/internal/obs"
	"cosmicdance/internal/tle"
)

// Feed telemetry: the live stream's health at a glance.
var (
	metricRiskServed   = obs.Default().Counter("incremental_risk_requests_total")
	metricRiskNotMod   = obs.Default().Counter("incremental_risk_not_modified_total")
	metricStreamServed = obs.Default().Counter("incremental_stream_requests_total")
	metricStreamEvents = obs.Default().Counter("incremental_stream_events_total")
	metricWatermarkLag = obs.Default().Gauge("incremental_watermark_lag_seconds")
)

// RiskEntry is one satellite in the risk view's decaying list.
type RiskEntry struct {
	Catalog      int     `json:"catalog"`
	At           int64   `json:"at"` // decay onset, unix seconds
	RateKmPerDay float64 `json:"rate_km_day"`
	DropKm       float64 `json:"drop_km"`
}

// RiskStorm is the active storm summary in the risk view.
type RiskStorm struct {
	Start  int64   `json:"start"` // unix seconds
	Hours  int     `json:"hours"`
	PeakNT float64 `json:"peak_nt"`
}

// RiskView is the materialized decay-risk state served at /v1/risk: the
// watermarks, the cleaning funnel, the live storm, and the satellites
// currently in detected decay, worst first.
type RiskView struct {
	Version          uint64      `json:"version"`
	Seq              uint64      `json:"seq"`
	WeatherWatermark int64       `json:"weather_watermark"` // unix seconds, exclusive
	LastObservation  int64       `json:"last_observation"`  // unix seconds
	Observations     int         `json:"observations"`
	GrossErrors      int         `json:"gross_errors"`
	Duplicates       int         `json:"duplicates"`
	Tracks           int         `json:"tracks"`
	NonOperational   int         `json:"non_operational"`
	Storms           int         `json:"storms"`
	Events           int         `json:"events"`
	Deviations       int         `json:"deviations"`
	Onsets           int         `json:"onsets"`
	ActiveStorm      *RiskStorm  `json:"active_storm,omitempty"`
	TriggerActive    bool        `json:"trigger_active"`
	Decaying         []RiskEntry `json:"decaying,omitempty"`
}

// maxDecaying caps the risk view's decaying list; the full set is available
// through the dataset-level analyses.
const maxDecaying = 20

// Feed wraps an Engine with the concurrency and transport surface of the
// live decay-risk feed: a mutex serializing ingests against reads, a bounded
// delta ring for the SSE stream, and the /v1 HTTP handlers. The zero value
// is not usable; construct with NewFeed.
type Feed struct {
	mu     sync.Mutex
	eng    *Engine
	ring   []Delta
	cap    int
	notify chan struct{} // closed and swapped whenever deltas append
	flight *obs.FlightRecorder
}

// NewFeed wraps an engine. ringCap bounds the delta backlog a slow stream
// consumer can replay (older deltas force a resync); <= 0 gets a default.
func NewFeed(eng *Engine, ringCap int) *Feed {
	if ringCap <= 0 {
		ringCap = 4096
	}
	f := &Feed{eng: eng, cap: ringCap, notify: make(chan struct{})}
	eng.OnDelta(func(d Delta) {
		f.ring = append(f.ring, d)
		if len(f.ring) > f.cap {
			f.ring = f.ring[len(f.ring)-f.cap:]
		}
		f.flight.Record(obs.FlightEvent{Kind: "delta", Trace: d.Trace, Detail: string(d.Kind)})
	})
	return f
}

// SetFlight points the feed at the serving plane's flight recorder: delta
// emissions, traced ingests, and SSE resyncs land in the ring alongside the
// server's request events. Call before serving begins; a nil recorder (the
// default) records nothing.
func (f *Feed) SetFlight(rec *obs.FlightRecorder) {
	f.mu.Lock()
	f.flight = rec
	f.mu.Unlock()
}

// Engine returns the wrapped engine. Callers must not use it concurrently
// with the feed's ingest surface.
func (f *Feed) Engine() *Engine { return f.eng }

// broadcast wakes every blocked stream reader. Callers hold f.mu.
func (f *Feed) broadcast() {
	close(f.notify)
	f.notify = make(chan struct{})
}

// IngestTLEs folds element sets into the engine under the feed lock.
func (f *Feed) IngestTLEs(sets []*tle.TLE) IngestStats {
	return f.IngestTLEsTraced(sets, 0)
}

// IngestTLEsTraced folds element sets into the engine under the feed lock,
// tagging every provoked delta with the originating request's trace ID and
// recording the batch as an "ingest" flight event.
func (f *Feed) IngestTLEsTraced(sets []*tle.TLE, trace obs.TraceID) IngestStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.eng.IngestTLEsTraced(sets, trace)
	var ts string
	if trace != 0 {
		ts = trace.String()
	}
	f.flight.Record(obs.FlightEvent{
		Kind:   "ingest",
		Trace:  ts,
		Detail: fmt.Sprintf("sets=%d applied=%d dup=%d gross=%d", len(sets), st.Applied, st.Duplicates, st.GrossErrors),
	})
	f.broadcast()
	return st
}

// IngestObservations folds pre-converted records into the engine under the
// feed lock.
func (f *Feed) IngestObservations(batch []core.Observation) IngestStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.eng.IngestObservations(batch)
	f.broadcast()
	return st
}

// IngestSamples folds simulator samples into the engine under the feed lock.
func (f *Feed) IngestSamples(samples []constellation.Sample) IngestStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.eng.IngestSamples(samples)
	f.broadcast()
	return st
}

// IngestDst appends Dst hours under the feed lock.
func (f *Feed) IngestDst(start time.Time, vals []float64) (IngestStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, err := f.eng.IngestDst(start, vals)
	f.broadcast()
	return st, err
}

// SetWatermarkLag records how far the weather watermark trails now — the
// daemon's liveness gauge for the incremental plane.
func (f *Feed) SetWatermarkLag(now time.Time) {
	f.mu.Lock()
	wm := f.eng.WeatherWatermark()
	f.mu.Unlock()
	if wm.IsZero() {
		return
	}
	metricWatermarkLag.Set(now.Sub(wm).Seconds())
}

// Risk builds the current risk view.
func (f *Feed) Risk() RiskView {
	f.mu.Lock()
	defer f.mu.Unlock()
	e := f.eng
	v := RiskView{
		Version:         e.version,
		Seq:             e.seq,
		LastObservation: e.lastEpoch,
		Observations:    e.totalObs,
		GrossErrors:     e.grossErr,
		Duplicates:      e.dupRows,
		Tracks:          e.opCount,
		NonOperational:  len(e.cats) - e.opCount,
		Storms:          len(e.storms),
		Events:          len(e.events),
		Deviations:      e.devCount,
		Onsets:          len(e.onsets),
		TriggerActive:   e.trig.Active(),
	}
	if wm := e.WeatherWatermark(); !wm.IsZero() {
		v.WeatherWatermark = wm.Unix()
	}
	if e.inRun {
		v.Storms++
		v.ActiveStorm = &RiskStorm{Start: e.cur.Start.Unix(), Hours: e.cur.Hours, PeakNT: float64(e.cur.Peak)}
	}
	entries := make([]RiskEntry, 0, len(e.onsets))
	for cat, on := range e.onsets {
		entries = append(entries, RiskEntry{Catalog: cat, At: on.At.Unix(), RateKmPerDay: on.RateKmPerDay, DropKm: on.DropKm})
	}
	slices.SortFunc(entries, func(a, b RiskEntry) int {
		switch {
		case a.RateKmPerDay > b.RateKmPerDay:
			return -1
		case a.RateKmPerDay < b.RateKmPerDay:
			return 1
		default:
			return a.Catalog - b.Catalog
		}
	})
	if len(entries) > maxDecaying {
		entries = entries[:maxDecaying]
	}
	v.Decaying = entries
	return v
}

// Handler mounts the feed's HTTP surface:
//
//	GET  /v1/risk         current risk view (ETag/If-None-Match aware)
//	GET  /v1/risk/stream  delta events as SSE (cursor resume, nowait drain)
//	POST /v1/dst          append hourly Dst readings (?start=RFC3339)
func (f *Feed) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/risk", f.handleRisk)
	mux.HandleFunc("/v1/risk/stream", f.handleStream)
	mux.HandleFunc("/v1/dst", f.handleDst)
	return mux
}

func (f *Feed) handleRisk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	metricRiskServed.Inc()
	view := f.Risk()
	etag := fmt.Sprintf("\"risk-v%d-s%d\"", view.Version, view.Seq)
	w.Header().Set("ETag", etag)
	if match := r.Header.Get("If-None-Match"); match != "" && strings.Contains(match, etag) {
		metricRiskNotMod.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(view)
}

// handleStream serves the delta feed as server-sent events. Query knobs:
//
//   - cursor=N (or a Last-Event-ID header): resume after delta N; deltas
//     older than the ring emit an initial "resync" event carrying the oldest
//     sequence still available.
//   - nowait=1: drain what is buffered and close instead of blocking — the
//     deterministic mode load clients use.
//   - limit=N: close after N events.
func (f *Feed) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	metricStreamServed.Inc()
	cursor := uint64(0)
	if s := r.URL.Query().Get("cursor"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad cursor", http.StatusBadRequest)
			return
		}
		cursor = n
	} else if s := r.Header.Get("Last-Event-ID"); s != "" {
		if n, err := strconv.ParseUint(s, 10, 64); err == nil {
			cursor = n
		}
	}
	nowait := r.URL.Query().Get("nowait") == "1"
	limit := 0
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		batch, oldest, notify := f.after(cursor)
		if oldest > cursor+1 {
			// The ring dropped deltas the cursor still wanted: tell the
			// client to resync from a fresh /v1/risk snapshot.
			f.recordResync(cursor, oldest)
			fmt.Fprintf(w, "event: resync\ndata: {\"oldest\":%d}\n\n", oldest)
			cursor = oldest - 1
			if flusher != nil {
				flusher.Flush()
			}
			continue
		}
		for _, d := range batch {
			data, err := json.Marshal(d)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", d.Seq, d.Kind, data)
			cursor = d.Seq
			sent++
			metricStreamEvents.Inc()
			if limit > 0 && sent >= limit {
				return
			}
		}
		if flusher != nil && len(batch) > 0 {
			flusher.Flush()
		}
		if len(batch) == 0 {
			if nowait {
				return
			}
			select {
			case <-r.Context().Done():
				return
			case <-notify:
			}
		}
	}
}

// recordResync logs an SSE consumer falling off the delta ring — the
// overflow shape the flight recorder exists to post-mortem.
func (f *Feed) recordResync(cursor, oldest uint64) {
	f.mu.Lock()
	rec := f.flight
	f.mu.Unlock()
	rec.Record(obs.FlightEvent{Kind: "resync", Detail: fmt.Sprintf("cursor=%d oldest=%d", cursor, oldest)})
}

// after returns a copy of the buffered deltas with Seq > cursor, the oldest
// sequence still buffered (0 when the ring is empty), and the channel that
// closes on the next append.
func (f *Feed) after(cursor uint64) ([]Delta, uint64, <-chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	oldest := uint64(0)
	if len(f.ring) > 0 {
		oldest = f.ring[0].Seq
	}
	i := len(f.ring)
	for i > 0 && f.ring[i-1].Seq > cursor {
		i--
	}
	return slices.Clone(f.ring[i:]), oldest, f.notify
}

// handleDst ingests hourly Dst readings: whitespace-separated floats in the
// body, the batch's first hour in ?start=RFC3339.
func (f *Feed) handleDst(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	start, err := time.Parse(time.RFC3339, r.URL.Query().Get("start"))
	if err != nil {
		http.Error(w, "bad or missing start (RFC3339)", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, "body too large", http.StatusRequestEntityTooLarge)
		return
	}
	fields := strings.Fields(string(body))
	vals := make([]float64, 0, len(fields))
	for _, s := range fields {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad reading %q", s), http.StatusBadRequest)
			return
		}
		vals = append(vals, v)
	}
	st, err := f.IngestDst(start, vals)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

// WeatherIndex seeds or extends the engine from a whole Dst index under the
// feed lock — the daemon's boot path.
func (f *Feed) WeatherIndex(x *dst.Index) (IngestStats, error) {
	return f.IngestDst(x.Start(), slices.Clone(x.Hourly().Values()))
}
