package incremental

import (
	"context"
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
	"cosmicdance/internal/dst"
	"cosmicdance/internal/spaceweather"
	"cosmicdance/internal/testkit"
)

// batchRun is the batch-pipeline reference: Build over the concatenated
// observations plus the fixed-threshold event selection and the onset scan,
// with exactly the engine's configuration.
type batchRun struct {
	dataset *core.Dataset
	devs    []core.Deviation
	onsets  []core.DecayOnset
}

func runBatch(t testing.TB, cfg Config, weather *dst.Index, obs []core.Observation) batchRun {
	t.Helper()
	b := core.NewBuilder(cfg.Core, weather)
	b.AddObservations(obs)
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatalf("batch build: %v", err)
	}
	events := core.WeatherEvents(weather, cfg.MaxPeak, cfg.MinHours, cfg.MaxHours)
	return batchRun{
		dataset: d,
		devs:    d.Associate(context.Background(), events, cfg.WindowDays),
		onsets:  d.DecayOnsets(cfg.MinDropKm),
	}
}

// checkAgainstBatch asserts the engine's materialized state is byte-identical
// to the batch pipeline over the same observations and weather.
func checkAgainstBatch(t testing.TB, label string, cfg Config, e *Engine, wxStart time.Time, wx []float64, obs []core.Observation) {
	t.Helper()
	weather := dst.FromValues(wxStart, wx)
	ref := runBatch(t, cfg, weather, obs)
	got, err := e.Dataset()
	if err != nil {
		t.Fatalf("%s: engine dataset: %v", label, err)
	}
	if msg := testkit.DiffDatasets(ref.dataset, got); msg != "" {
		t.Errorf("%s: dataset diverged: %s", label, msg)
	}
	if msg := testkit.DiffDeviations(ref.devs, e.Deviations()); msg != "" {
		t.Errorf("%s: deviations diverged: %s", label, msg)
	}
	gotOnsets := e.Onsets()
	if len(ref.onsets) != len(gotOnsets) {
		t.Errorf("%s: onset count differs: batch %d, engine %d", label, len(ref.onsets), len(gotOnsets))
	} else {
		for i := range ref.onsets {
			if ref.onsets[i] != gotOnsets[i] {
				t.Errorf("%s: onset %d differs:\n  batch:  %+v\n  engine: %+v", label, i, ref.onsets[i], gotOnsets[i])
				break
			}
		}
	}
}

// fleetObs simulates a small research fleet and returns its observations in
// sample order plus the weather.
func fleetObs(t testing.TB, seed int64, months int) (*dst.Index, []core.Observation) {
	t.Helper()
	weather, err := spaceweather.Generate(spaceweather.Paper2020to2024())
	if err != nil {
		t.Fatal(err)
	}
	start := weather.Start()
	fleetCfg := constellation.ResearchFleet(seed, start, start.AddDate(0, months, 0), 6)
	res, err := constellation.Run(context.Background(), fleetCfg, weather)
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]core.Observation, len(res.Samples))
	for i, s := range res.Samples {
		obs[i] = core.ObservationFromSample(s)
	}
	return weather, obs
}

// TestPrefixReplayMatchesBatch is the package-level headline invariant: any
// interleaving of observation batches and Dst-hour batches, replayed through
// the engine, materializes byte-identically to the batch pipeline over the
// same prefix — at every prefix, not just the end.
func TestPrefixReplayMatchesBatch(t *testing.T) {
	weather, obs := fleetObs(t, 7, 6)
	wx := weather.Hourly().Values()
	cfg := DefaultConfig()

	// Deterministically shuffle observations so batches interleave catalogs
	// and epochs arrive out of order — arrival order must not matter.
	rng := rand.New(rand.NewPCG(11, 13))
	shuffled := append([]core.Observation(nil), obs...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	e := New(cfg)
	nWx, nObs := 0, 0
	step := 0
	for nWx < len(wx) || nObs < len(shuffled) {
		// Alternate weather and observation batches of uneven sizes.
		if nWx < len(wx) {
			n := 200 + 37*(step%5)
			if nWx+n > len(wx) {
				n = len(wx) - nWx
			}
			if _, err := e.IngestDst(weather.Start().Add(time.Duration(nWx)*time.Hour), wx[nWx:nWx+n]); err != nil {
				t.Fatal(err)
			}
			nWx += n
		}
		if nObs < len(shuffled) {
			n := 500 + 91*(step%7)
			if nObs+n > len(shuffled) {
				n = len(shuffled) - nObs
			}
			e.IngestObservations(shuffled[nObs : nObs+n])
			nObs += n
		}
		step++
		if step%6 == 0 {
			checkAgainstBatch(t, fmt.Sprintf("prefix step %d (wx=%d obs=%d)", step, nWx, nObs),
				cfg, e, weather.Start(), wx[:nWx], shuffled[:nObs])
		}
	}
	checkAgainstBatch(t, "full stream", cfg, e, weather.Start(), wx, shuffled)
}

// TestStormMachineMatchesBatchScan drives hand-crafted weather through the
// online machine one hour at a time and checks, at every watermark, that the
// storm list (trailing open run included) and the qualified event list equal
// the batch scan over the same prefix — including watermarks landing exactly
// on a storm onset and exactly on the recovery boundary.
func TestStormMachineMatchesBatchScan(t *testing.T) {
	start := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	// Quiet, onset, deepening, recovery-boundary, quiet, a 1-hour storm, and
	// a storm still open at the end of the data.
	wx := []float64{
		-10, -20, -50, -80, -120, -49, -10, // storm 1: hours 2..5, peak -120
		-30, -51, -20, // storm 2: exactly one hour
		-40, -60, -70, // storm 3: open at the watermark
	}
	cfg := DefaultConfig()
	cfg.MinHours = 2 // make qualification a transition, not a given
	e := New(cfg)
	for i, v := range wx {
		at := start.Add(time.Duration(i) * time.Hour)
		if _, err := e.IngestDst(at, []float64{v}); err != nil {
			t.Fatal(err)
		}
		prefix := dst.FromValues(start, wx[:i+1])
		wantStorms := prefix.Storms(cfg.MaxPeak)
		gotStorms := e.Storms()
		if len(wantStorms) != len(gotStorms) {
			t.Fatalf("hour %d: storm count: batch %d, engine %d", i, len(wantStorms), len(gotStorms))
		}
		for j := range wantStorms {
			if !wantStorms[j].Start.Equal(gotStorms[j].Start) || wantStorms[j].Hours != gotStorms[j].Hours ||
				wantStorms[j].Peak != gotStorms[j].Peak || !wantStorms[j].PeakAt.Equal(gotStorms[j].PeakAt) {
				t.Fatalf("hour %d: storm %d: batch %+v, engine %+v", i, j, wantStorms[j], gotStorms[j])
			}
		}
		wantEvents := core.WeatherEvents(prefix, cfg.MaxPeak, cfg.MinHours, cfg.MaxHours)
		gotEvents := e.Events()
		if len(wantEvents) != len(gotEvents) {
			t.Fatalf("hour %d: event count: batch %d, engine %d", i, len(wantEvents), len(gotEvents))
		}
		for j := range wantEvents {
			if !wantEvents[j].Storm.Start.Equal(gotEvents[j].Storm.Start) {
				t.Fatalf("hour %d: event %d: batch %v, engine %v", i, j, wantEvents[j].Storm.Start, gotEvents[j].Storm.Start)
			}
		}
	}
	// The final storm must still be open (watermark inside a storm).
	if len(e.Storms()) == 0 || !e.inRun {
		t.Fatal("expected an open storm at the watermark")
	}
}

// TestEventRetractionOnMaxHours exercises the only disqualification
// transition: an open storm outgrowing MaxHours retracts its event and drops
// its deviations, matching the batch filter at every watermark.
func TestEventRetractionOnMaxHours(t *testing.T) {
	start := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	cfg := DefaultConfig()
	cfg.MaxHours = 3
	e := New(cfg)
	var retracted, opened int
	e.OnDelta(func(d Delta) {
		switch d.Kind {
		case KindEventOpen:
			opened++
		case KindEventRetract:
			retracted++
		}
	})
	wx := []float64{-10, -60, -70, -80, -90, -95, -10}
	for i, v := range wx {
		if _, err := e.IngestDst(start.Add(time.Duration(i)*time.Hour), []float64{v}); err != nil {
			t.Fatal(err)
		}
		prefix := dst.FromValues(start, wx[:i+1])
		want := core.WeatherEvents(prefix, cfg.MaxPeak, cfg.MinHours, cfg.MaxHours)
		if got := e.Events(); len(want) != len(got) {
			t.Fatalf("hour %d: event count: batch %d, engine %d", i, len(want), len(got))
		}
	}
	if opened != 1 || retracted != 1 {
		t.Fatalf("want 1 open + 1 retract, got %d + %d", opened, retracted)
	}
}

// TestOutOfOrderDuplicateIngest replays overlapping, shuffled batches —
// every row ingested twice, in two different orders — and checks the state
// equals one clean batch ingest with the batch dedupe's counters.
func TestOutOfOrderDuplicateIngest(t *testing.T) {
	weather, obs := fleetObs(t, 42, 4)
	wx := weather.Hourly().Values()
	cfg := DefaultConfig()

	e := New(cfg)
	if _, err := e.IngestDst(weather.Start(), wx); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 5))
	pass2 := append([]core.Observation(nil), obs...)
	rng.Shuffle(len(pass2), func(i, j int) { pass2[i], pass2[j] = pass2[j], pass2[i] })
	st1 := e.IngestObservations(obs)
	st2 := e.IngestObservations(pass2)
	if st2.Applied != 0 {
		t.Fatalf("replayed batch applied %d rows, want 0", st2.Applied)
	}
	if st2.Duplicates+st2.GrossErrors != len(pass2) {
		t.Fatalf("replayed batch: %d dups + %d gross != %d rows", st2.Duplicates, st2.GrossErrors, len(pass2))
	}
	_ = st1

	// The batch reference sees the doubled stream too: its dedupe keeps the
	// first of each (catalog, epoch), which is exactly what the engine kept.
	doubled := append(append([]core.Observation(nil), obs...), pass2...)
	checkAgainstBatch(t, "doubled stream", cfg, e, weather.Start(), wx, doubled)

	// Dst replay is idempotent as well, aligned or mid-stream.
	if st, err := e.IngestDst(weather.Start(), wx[:100]); err != nil || st.Applied != 0 || st.Duplicates != 100 {
		t.Fatalf("dst replay: st=%+v err=%v", st, err)
	}
	if st, err := e.IngestDst(weather.Start().Add(500*time.Hour), wx[500:600]); err != nil || st.Applied != 0 {
		t.Fatalf("dst mid-stream replay: st=%+v err=%v", st, err)
	}
}

// TestDstStreamGuards exercises the contiguity contract: misaligned starts,
// gaps, and pre-stream batches are rejected without advancing the watermark.
func TestDstStreamGuards(t *testing.T) {
	start := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	e := New(DefaultConfig())
	if _, err := e.IngestDst(start, []float64{-10, -20}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestDst(start.Add(90*time.Minute), []float64{-30}); err == nil {
		t.Fatal("misaligned batch accepted")
	}
	if _, err := e.IngestDst(start.Add(5*time.Hour), []float64{-30}); err == nil {
		t.Fatal("gapped batch accepted")
	}
	if _, err := e.IngestDst(start.Add(-3*time.Hour), []float64{-30}); err == nil {
		t.Fatal("pre-stream batch accepted")
	}
	if wm := e.WeatherWatermark(); !wm.Equal(start.Add(2 * time.Hour)) {
		t.Fatalf("watermark moved to %v", wm)
	}
}

// TestEmptyPrefix pins the engine's behavior before any data arrives: no
// dataset, a zero risk view, and a zero watermark — not a panic.
func TestEmptyPrefix(t *testing.T) {
	e := New(DefaultConfig())
	if _, err := e.Dataset(); err == nil {
		t.Fatal("empty engine materialized a dataset")
	}
	if !e.WeatherWatermark().IsZero() {
		t.Fatal("empty engine has a weather watermark")
	}
	if got := len(e.Storms()) + len(e.Events()) + len(e.Deviations()) + len(e.Onsets()); got != 0 {
		t.Fatalf("empty engine has %d derived items", got)
	}
	f := NewFeed(e, 0)
	v := f.Risk()
	if v.Observations != 0 || v.Tracks != 0 || v.ActiveStorm != nil {
		t.Fatalf("empty risk view not zero: %+v", v)
	}
	// Observations before any weather: tracks build, dataset still refuses
	// (no solar activity data), matching the batch builder.
	e.IngestObservations([]core.Observation{{Catalog: 1, Epoch: 1000, AltKm: 550}})
	if _, err := e.Dataset(); err == nil {
		t.Fatal("weatherless engine materialized a dataset")
	}
}

// TestSnapshotRestoreMidStorm snapshots the engine with the watermark inside
// a storm (and the trigger machine active), restores into a fresh engine,
// feeds both the same suffix, and requires byte-identical materialized state
// plus a continuous delta sequence.
func TestSnapshotRestoreMidStorm(t *testing.T) {
	weather, obs := fleetObs(t, 1234, 6)
	wx := weather.Hourly().Values()
	cfg := DefaultConfig()

	// Find an hour index that lands strictly inside a storm.
	cut := -1
	for _, s := range weather.Storms(cfg.MaxPeak) {
		if s.Hours >= 2 {
			cut = int(s.Start.Sub(weather.Start())/time.Hour) + 1
			break
		}
	}
	if cut < 0 {
		t.Fatal("no storm of >= 2 hours in the generated weather")
	}

	e := New(cfg)
	split := len(obs) / 2
	e.IngestObservations(obs[:split])
	if _, err := e.IngestDst(weather.Start(), wx[:cut]); err != nil {
		t.Fatal(err)
	}
	if !e.inRun {
		t.Fatal("cut hour is not inside a storm")
	}
	if !e.Trigger().Active() {
		t.Fatal("trigger machine not active mid-storm")
	}

	st := e.State()
	r, err := FromState(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq() != e.Seq() || r.Version() != e.Version() {
		t.Fatalf("restore lost counters: seq %d/%d version %d/%d", r.Seq(), e.Seq(), r.Version(), e.Version())
	}
	if !r.inRun || r.cur != e.cur || r.curQual != e.curQual {
		t.Fatalf("restore lost the open storm: inRun=%v cur=%+v", r.inRun, r.cur)
	}
	if !r.Trigger().Active() {
		t.Fatal("restore lost the trigger state")
	}

	// Both engines consume the same suffix; every derived product must agree.
	for _, eng := range []*Engine{e, r} {
		if _, err := eng.IngestDst(weather.Start().Add(time.Duration(cut)*time.Hour), wx[cut:]); err != nil {
			t.Fatal(err)
		}
		eng.IngestObservations(obs[split:])
	}
	d1, err := e.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := r.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if msg := testkit.DiffDatasets(d1, d2); msg != "" {
		t.Errorf("restored dataset diverged: %s", msg)
	}
	if msg := testkit.DiffDeviations(e.Deviations(), r.Deviations()); msg != "" {
		t.Errorf("restored deviations diverged: %s", msg)
	}
	if e.Seq() != r.Seq() {
		t.Errorf("delta sequences diverged after restore: %d vs %d", e.Seq(), r.Seq())
	}
	checkAgainstBatch(t, "after restore", cfg, r, weather.Start(), wx, obs)
}

// TestStateFailsClosed corrupts snapshots in every structural dimension and
// requires FromState to reject each one.
func TestStateFailsClosed(t *testing.T) {
	weather, obs := fleetObs(t, 7, 3)
	e := New(DefaultConfig())
	if _, err := e.IngestDst(weather.Start(), weather.Hourly().Values()); err != nil {
		t.Fatal(err)
	}
	e.IngestObservations(obs[:2000])
	good := e.State()
	if _, err := FromState(DefaultConfig(), good); err != nil {
		t.Fatalf("pristine state rejected: %v", err)
	}
	corrupt := []struct {
		name string
		mut  func(*EngineState)
	}{
		{"count mismatch", func(s *EngineState) { s.ObsCounts[0]++ }},
		{"column truncated", func(s *EngineState) { s.Alts = s.Alts[:len(s.Alts)-1] }},
		{"funnel mismatch", func(s *EngineState) { s.TotalObservations++ }},
		{"rawalts mismatch", func(s *EngineState) { s.RawAlts = s.RawAlts[:len(s.RawAlts)-1] }},
		{"catalog order", func(s *EngineState) { s.Cats[0], s.Cats[1] = s.Cats[1], s.Cats[0] }},
		{"epoch order", func(s *EngineState) { s.Epochs[0], s.Epochs[1] = s.Epochs[1], s.Epochs[0] }},
		{"gross error row", func(s *EngineState) { s.Alts[0] = 9999 }},
		{"zero history", func(s *EngineState) { s.ObsCounts[0] = 0 }},
	}
	for _, tc := range corrupt {
		st := e.State() // fresh deep copy every time
		tc.mut(&st)
		if _, err := FromState(DefaultConfig(), st); err == nil {
			t.Errorf("%s: corrupted state accepted", tc.name)
		}
	}
}

// TestDeltaStreamShape pins the delta vocabulary on a small scripted run:
// track birth, storm open/close, event qualification, deviation and onset
// maintenance all emit, with strictly increasing sequence numbers.
func TestDeltaStreamShape(t *testing.T) {
	weather, obs := fleetObs(t, 7, 6)
	cfg := DefaultConfig()
	e := New(cfg)
	var kinds = map[Kind]int{}
	lastSeq := uint64(0)
	e.OnDelta(func(d Delta) {
		if d.Seq <= lastSeq {
			t.Fatalf("non-increasing seq: %d after %d", d.Seq, lastSeq)
		}
		lastSeq = d.Seq
		kinds[d.Kind]++
	})
	e.IngestObservations(obs)
	if _, err := e.IngestDst(weather.Start(), weather.Hourly().Values()); err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kind{KindTrackNew, KindStormOpen, KindStormClose, KindEventOpen, KindDeviationNew} {
		if kinds[k] == 0 {
			t.Errorf("no %s deltas emitted", k)
		}
	}
	if e.Seq() != lastSeq {
		t.Errorf("Seq() %d != last emitted %d", e.Seq(), lastSeq)
	}
}
