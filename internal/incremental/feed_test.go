package incremental

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cosmicdance/internal/core"
)

// seedFeed builds a feed over a small engine with real storms, tracks and
// deltas.
func seedFeed(t *testing.T, ringCap int) *Feed {
	t.Helper()
	weather, obs := fleetObs(t, 7, 6)
	f := NewFeed(New(DefaultConfig()), ringCap)
	f.IngestObservations(obs)
	if _, err := f.IngestDst(weather.Start(), weather.Hourly().Values()); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRiskEndpointConditional(t *testing.T) {
	f := seedFeed(t, 0)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/risk")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag")
	}
	var view RiskView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Tracks == 0 || view.Events == 0 || view.Deviations == 0 {
		t.Fatalf("thin risk view: %+v", view)
	}
	if view.WeatherWatermark == 0 || view.LastObservation == 0 {
		t.Fatalf("watermarks missing: %+v", view)
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/risk", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET got %d, want 304", resp2.StatusCode)
	}

	// Any ingest that changes state invalidates the ETag.
	f.IngestObservations([]core.Observation{{Catalog: 99999, Epoch: view.LastObservation + 3600, AltKm: 550}})
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("stale conditional GET got %d, want 200", resp3.StatusCode)
	}
}

// drainSSE reads one nowait stream response into (id, kind, data) triples.
func drainSSE(t *testing.T, url string) []Delta {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var out []Delta
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok && !strings.HasPrefix(data, "{\"oldest\"") {
			var d Delta
			if err := json.Unmarshal([]byte(data), &d); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			out = append(out, d)
		}
	}
	return out
}

func TestStreamCursorAndNowait(t *testing.T) {
	f := seedFeed(t, 1<<20)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	all := drainSSE(t, srv.URL+"/v1/risk/stream?nowait=1")
	if len(all) == 0 {
		t.Fatal("no deltas in drain")
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq != all[i-1].Seq+1 {
			t.Fatalf("gap in sequence at %d: %d after %d", i, all[i].Seq, all[i-1].Seq)
		}
	}

	// A cursor resumes exactly after the given sequence.
	mid := all[len(all)/2].Seq
	tail := drainSSE(t, fmt.Sprintf("%s/v1/risk/stream?nowait=1&cursor=%d", srv.URL, mid))
	if len(tail) != len(all)-int(mid-all[0].Seq+1) {
		t.Fatalf("cursor resume returned %d deltas, want %d", len(tail), len(all)-int(mid-all[0].Seq+1))
	}
	if tail[0].Seq != mid+1 {
		t.Fatalf("cursor resume started at %d, want %d", tail[0].Seq, mid+1)
	}

	// limit caps the response.
	few := drainSSE(t, srv.URL+"/v1/risk/stream?nowait=1&limit=5")
	if len(few) != 5 {
		t.Fatalf("limit=5 returned %d", len(few))
	}

	// A caught-up nowait stream closes empty.
	empty := drainSSE(t, fmt.Sprintf("%s/v1/risk/stream?nowait=1&cursor=%d", srv.URL, all[len(all)-1].Seq))
	if len(empty) != 0 {
		t.Fatalf("caught-up drain returned %d deltas", len(empty))
	}

	if resp, err := http.Get(srv.URL + "/v1/risk/stream?cursor=banana"); err == nil {
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad cursor got %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestStreamResyncAfterOverflow(t *testing.T) {
	f := seedFeed(t, 8) // tiny ring: early deltas are long gone
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/risk/stream?nowait=1&cursor=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := new(strings.Builder)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		body.WriteString(sc.Text())
		body.WriteByte('\n')
	}
	if !strings.Contains(body.String(), "event: resync") {
		t.Fatalf("no resync event for an overflowed cursor:\n%s", body.String())
	}
	if !strings.Contains(body.String(), "event: ") {
		t.Fatal("no deltas after resync")
	}
}

func TestStreamBlocksUntilIngest(t *testing.T) {
	f := seedFeed(t, 1<<20)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	cursor := f.Engine().Seq()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/risk/stream?cursor=%d&limit=1", srv.URL, cursor), nil)
	got := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			got <- err
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "id: ") {
				got <- nil
				return
			}
		}
		got <- fmt.Errorf("stream closed without an event")
	}()
	// Give the handler a moment to block, then ingest to wake it.
	time.Sleep(50 * time.Millisecond)
	f.IngestObservations([]core.Observation{{Catalog: 424242, Epoch: f.Engine().LastObservationEpoch() + 7200, AltKm: 500}})
	if err := <-got; err != nil {
		t.Fatalf("blocked stream never woke: %v", err)
	}
}

func TestDstEndpoint(t *testing.T) {
	f := NewFeed(New(DefaultConfig()), 0)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	start := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	post := func(q, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/dst?"+q, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := post("start="+start.Format(time.RFC3339), "-10 -60 -70 -40")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st IngestStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Applied != 4 {
		t.Fatalf("applied %d, want 4", st.Applied)
	}
	if got := f.Engine().WeatherWatermark(); !got.Equal(start.Add(4 * time.Hour)) {
		t.Fatalf("watermark %v", got)
	}

	if resp := post("start="+start.Add(10*time.Hour).Format(time.RFC3339), "-10"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("gapped POST got %d, want 409", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := post("start=notatime", "-10"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad start got %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := post("start="+start.Add(4*time.Hour).Format(time.RFC3339), "-10 pancake"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad reading got %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

func TestWatermarkLagGauge(t *testing.T) {
	f := seedFeed(t, 0)
	wm := f.Engine().WeatherWatermark()
	f.SetWatermarkLag(wm.Add(90 * time.Second))
	// The gauge is process-global; just exercise the zero-watermark guard too.
	NewFeed(New(DefaultConfig()), 0).SetWatermarkLag(wm)
}
