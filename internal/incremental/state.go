package incremental

import (
	"fmt"
	"slices"
	"time"

	"cosmicdance/internal/core"
	"cosmicdance/internal/dst"
	"cosmicdance/internal/trigger"
	"cosmicdance/internal/units"
)

// EngineState is the engine's complete resumable state in columnar form:
// the weather stream, the cleaning-funnel counters, and the per-catalog
// observation histories flattened into parallel columns (the shape the
// artifact codec packs section by section). Everything derived — cleaned
// tracks, the storm machine, events, deviations, onsets — is deliberately
// absent: FromState re-derives it, so a snapshot can never disagree with
// the data it carries.
type EngineState struct {
	// WxStart is the Unix second of the first Dst hour (0 when Wx is empty).
	WxStart int64
	// Wx is the ingested hourly Dst stream.
	Wx []float64
	// TotalObservations, GrossErrors and Duplicates are the funnel counters
	// for rows that did not land in the histories.
	TotalObservations int
	GrossErrors       int
	Duplicates        int
	// RawAlts is every ingested altitude in ingest order.
	RawAlts []float64
	// Cats lists the catalogs with at least one valid observation,
	// ascending; ObsCounts[i] is catalog Cats[i]'s history length.
	Cats      []int
	ObsCounts []int
	// Epochs/Alts/BStars/Incls are the concatenated per-catalog histories,
	// catalog-major, epoch-ascending within a catalog.
	Epochs []int64
	Alts   []float64
	BStars []float64
	Incls  []float64
	// Seq and Version resume the delta stream and the staleness check.
	Seq     uint64
	Version uint64
	// Trigger is the hysteresis machine position (refractory state included,
	// which is not derivable from the Dst stream alone once MinGap trims an
	// onset).
	Trigger trigger.State
}

// State snapshots the engine. The returned state shares nothing with the
// engine — further ingests do not disturb it.
func (e *Engine) State() EngineState {
	st := EngineState{
		Wx:                slices.Clone(e.wx),
		TotalObservations: e.totalObs,
		GrossErrors:       e.grossErr,
		Duplicates:        e.dupRows,
		RawAlts:           slices.Clone(e.rawAlts),
		Cats:              slices.Clone(e.cats),
		ObsCounts:         make([]int, len(e.cats)),
		Seq:               e.seq,
		Version:           e.version,
		Trigger:           e.trig.State(),
	}
	if len(e.wx) > 0 {
		st.WxStart = e.wxStart.Unix()
	}
	n := 0
	for _, cat := range e.cats {
		n += len(e.tracks[cat].obs)
	}
	st.Epochs = make([]int64, 0, n)
	st.Alts = make([]float64, 0, n)
	st.BStars = make([]float64, 0, n)
	st.Incls = make([]float64, 0, n)
	for i, cat := range e.cats {
		obs := e.tracks[cat].obs
		st.ObsCounts[i] = len(obs)
		for _, o := range obs {
			st.Epochs = append(st.Epochs, o.Epoch)
			st.Alts = append(st.Alts, o.AltKm)
			st.BStars = append(st.BStars, o.BStar)
			st.Incls = append(st.Incls, o.Incl)
		}
	}
	return st
}

// FromState rebuilds an engine from a snapshot. The storm machine, events,
// tracks, onsets and the association join are re-derived from the snapshot's
// raw streams — silently, without emitting deltas, so a restored feed
// resumes at Seq exactly where the snapshotted one stopped. It validates the
// columnar invariants and fails closed on any violation.
func FromState(cfg Config, st EngineState) (*Engine, error) {
	if len(st.Cats) != len(st.ObsCounts) {
		return nil, fmt.Errorf("incremental: state has %d catalogs but %d history lengths", len(st.Cats), len(st.ObsCounts))
	}
	n := 0
	for i, c := range st.ObsCounts {
		if c <= 0 {
			return nil, fmt.Errorf("incremental: state catalog %d has non-positive history length %d", st.Cats[i], c)
		}
		n += c
	}
	if len(st.Epochs) != n || len(st.Alts) != n || len(st.BStars) != n || len(st.Incls) != n {
		return nil, fmt.Errorf("incremental: state history columns disagree: %d counted, %d/%d/%d/%d stored",
			n, len(st.Epochs), len(st.Alts), len(st.BStars), len(st.Incls))
	}
	if want := n + st.GrossErrors + st.Duplicates; st.TotalObservations != want {
		return nil, fmt.Errorf("incremental: state funnel disagrees: %d total, %d rows + %d gross + %d duplicates",
			st.TotalObservations, n, st.GrossErrors, st.Duplicates)
	}
	if len(st.RawAlts) != st.TotalObservations {
		return nil, fmt.Errorf("incremental: state has %d raw altitudes for %d observations", len(st.RawAlts), st.TotalObservations)
	}

	e := New(cfg)
	e.wx = slices.Clone(st.Wx)
	if len(e.wx) > 0 {
		e.wxStart = time.Unix(st.WxStart, 0).UTC()
	}
	e.totalObs = st.TotalObservations
	e.grossErr = st.GrossErrors
	e.dupRows = st.Duplicates
	e.rawAlts = slices.Clone(st.RawAlts)
	e.seq = st.Seq
	e.version = st.Version
	e.trig.Restore(st.Trigger)

	// Rebuild the storm machine by scanning the weather once: closed storms,
	// then the trailing open run, if any, becomes the live machine position.
	if len(e.wx) > 0 {
		weather, err := e.Weather()
		if err != nil {
			return nil, err
		}
		all := weather.Storms(units.StormThreshold)
		if len(all) > 0 {
			last := all[len(all)-1]
			if last.End().Equal(e.WeatherWatermark()) {
				e.inRun = true
				e.cur = last
				e.curQual = e.qualifies(last)
				all = all[:len(all)-1]
			}
		}
		e.storms = all
		for _, s := range e.Storms() {
			if e.qualifies(s) {
				e.events = append(e.events, s.Start)
			}
		}
	}

	// Rebuild the per-track state and the derived joins.
	off := 0
	prev := 0
	for i, cat := range st.Cats {
		if i > 0 && cat <= prev {
			return nil, fmt.Errorf("incremental: state catalogs out of order at %d (%d after %d)", i, cat, prev)
		}
		prev = cat
		count := st.ObsCounts[i]
		obs := make([]core.Observation, count)
		var lastEpoch int64
		for j := 0; j < count; j++ {
			o := core.Observation{
				Catalog: cat,
				Epoch:   st.Epochs[off+j],
				AltKm:   st.Alts[off+j],
				BStar:   st.BStars[off+j],
				Incl:    st.Incls[off+j],
			}
			if o.AltKm > cfg.Core.MaxValidAltKm || o.AltKm < cfg.Core.MinValidAltKm {
				return nil, fmt.Errorf("incremental: state catalog %d carries gross-error altitude %.3f", cat, o.AltKm)
			}
			if j > 0 && o.Epoch <= lastEpoch {
				return nil, fmt.Errorf("incremental: state catalog %d history not strictly epoch-ascending", cat)
			}
			lastEpoch = o.Epoch
			obs[j] = o
			if o.Epoch > e.lastEpoch {
				e.lastEpoch = o.Epoch
			}
		}
		off += count
		ts := &trackState{obs: obs, devs: make(map[int64]core.Deviation)}
		e.tracks[cat] = ts
		e.cats = append(e.cats, cat)
		e.rebuildDerived(cat)
	}
	return e, nil
}

// rebuildDerived recomputes one catalog's cleaned track, onset and
// association row without emitting deltas — the restore-time mirror of
// refreshTrack.
func (e *Engine) rebuildDerived(cat int) {
	ts := e.tracks[cat]
	res := core.CleanTrack(cat, ts.obs, e.cfg.Core)
	ts.track = res.Track
	if ts.track == nil {
		return
	}
	e.opCount++
	if on, ok := core.TrackDecayOnset(ts.track, e.cfg.Core.DecayFilterKm, e.cfg.MinDropKm); ok {
		e.onsets[cat] = on
	}
	for _, start := range e.events {
		if d, ok := core.AssociateTrack(e.cfg.Core, eventAt(start), ts.track, e.cfg.WindowDays); ok {
			ts.devs[start.Unix()] = d
			e.devCount++
		}
	}
}

// eventAt is the association identity of an event: only its start instant
// matters to AssociateTrack.
func eventAt(start time.Time) core.Event {
	return core.Event{Storm: dst.Storm{Start: start}}
}
