package incremental

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cosmicdance/internal/obs"
	"cosmicdance/internal/tle"
)

// traceTLE builds a LEO element set for catalog at epoch. Mean motion 15.05
// rev/day sits near 550 km, squarely in the engine's operational band.
func traceTLE(catalog int, epoch time.Time) *tle.TLE {
	return &tle.TLE{CatalogNumber: catalog, Epoch: epoch.UTC(), MeanMotion: 15.05, Inclination: 53}
}

// TestDeltasCarryIngestTrace pins the delta-tagging contract: every delta a
// traced ingest batch provokes names the originating request's trace ID, an
// untraced batch leaves the field empty, and the tag never outlives its call
// — it is transient, not replayable state.
func TestDeltasCarryIngestTrace(t *testing.T) {
	eng := New(DefaultConfig())
	var deltas []Delta
	eng.OnDelta(func(d Delta) { deltas = append(deltas, d) })

	epoch := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	trace := obs.TraceID(0xabcdef0123456789)
	st := eng.IngestTLEsTraced([]*tle.TLE{traceTLE(70001, epoch)}, trace)
	if st.Applied != 1 || len(deltas) == 0 {
		t.Fatalf("traced ingest applied %d, %d deltas", st.Applied, len(deltas))
	}
	for _, d := range deltas {
		if d.Trace != trace.String() {
			t.Fatalf("delta %+v missing trace %s", d, trace)
		}
	}

	// The next, untraced batch must not inherit the tag.
	deltas = deltas[:0]
	eng.IngestTLEs([]*tle.TLE{traceTLE(70002, epoch.Add(time.Hour))})
	if len(deltas) == 0 {
		t.Fatal("untraced ingest emitted no deltas")
	}
	for _, d := range deltas {
		if d.Trace != "" {
			t.Fatalf("untraced delta inherited trace %q", d.Trace)
		}
	}

	// Zero is the no-trace sentinel, same as the untraced path.
	deltas = deltas[:0]
	eng.IngestTLEsTraced([]*tle.TLE{traceTLE(70003, epoch.Add(2*time.Hour))}, 0)
	for _, d := range deltas {
		if d.Trace != "" {
			t.Fatalf("zero-trace delta tagged %q", d.Trace)
		}
	}
}

// TestFeedFlightEvents pins the feed's flight-recorder surface: a traced
// ingest lands as an "ingest" event with its batch stats, the provoked
// deltas as "delta" events carrying the same trace, and an overflowed stream
// cursor as a "resync" event.
func TestFeedFlightEvents(t *testing.T) {
	clock := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	flight := obs.NewFlightRecorder(64, func() time.Time { return clock })

	f := seedFeed(t, 4) // tiny ring so a stale cursor forces a resync
	f.SetFlight(flight)

	trace := obs.TraceID(0x1111222233334444)
	epoch := time.Unix(f.Engine().LastObservationEpoch(), 0).Add(time.Hour)
	st := f.IngestTLEsTraced([]*tle.TLE{traceTLE(80001, epoch)}, trace)
	if st.Applied != 1 {
		t.Fatalf("ingest applied %d", st.Applied)
	}

	var ingests, deltas int
	for _, ev := range flight.Dump() {
		switch ev.Kind {
		case "ingest":
			ingests++
			if ev.Trace != trace.String() || !strings.Contains(ev.Detail, "sets=1 applied=1") {
				t.Fatalf("ingest event = %+v", ev)
			}
		case "delta":
			deltas++
			if ev.Trace != trace.String() || ev.Detail == "" {
				t.Fatalf("delta event = %+v", ev)
			}
		}
	}
	if ingests != 1 || deltas == 0 {
		t.Fatalf("flight holds %d ingest / %d delta events", ingests, deltas)
	}

	// Cursor 1 predates the 4-entry ring: the stream resyncs, and the resync
	// lands in the flight recorder.
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/risk/stream?nowait=1&cursor=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
	}
	found := false
	for _, ev := range flight.Dump() {
		if ev.Kind == "resync" && strings.Contains(ev.Detail, "cursor=1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no resync flight event after overflowed cursor; dump: %+v", flight.Dump())
	}
}
