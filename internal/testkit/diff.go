package testkit

import (
	"fmt"
	"math"
	"strings"

	"cosmicdance/internal/core"
)

// DiffText locates the first differing line between want and got and returns
// a human-readable description, or "" when the texts are identical.
func DiffText(want, got string) string {
	if want == got {
		return ""
	}
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line count differs: want %d lines, got %d lines", len(wl), len(gl))
}

// DiffDatasets compares two built datasets structurally — cleaning stats,
// track membership, and every track point — and returns a description of the
// first difference, or "" when the datasets are identical. It is the equality
// the fault-injection determinism suite is built on: a faulted ingest must
// produce a dataset indistinguishable from the fault-free run.
func DiffDatasets(want, got *core.Dataset) string {
	if want == nil || got == nil {
		if want == got {
			return ""
		}
		return fmt.Sprintf("nil mismatch: want %v, got %v", want != nil, got != nil)
	}
	if w, g := want.Cleaning(), got.Cleaning(); w != g {
		return fmt.Sprintf("cleaning stats differ: want %+v, got %+v", w, g)
	}
	wt, gt := want.Tracks(), got.Tracks()
	if len(wt) != len(gt) {
		return fmt.Sprintf("track count differs: want %d, got %d", len(wt), len(gt))
	}
	for i := range wt {
		if msg := diffTrack(wt[i], gt[i]); msg != "" {
			return fmt.Sprintf("track %d (catalog %d): %s", i, wt[i].Catalog, msg)
		}
	}
	return ""
}

func diffTrack(want, got *core.Track) string {
	if want.Catalog != got.Catalog {
		return fmt.Sprintf("catalog differs: want %d, got %d", want.Catalog, got.Catalog)
	}
	if want.OperationalAltKm != got.OperationalAltKm {
		return fmt.Sprintf("operational altitude differs: want %v, got %v",
			want.OperationalAltKm, got.OperationalAltKm)
	}
	if want.RaisingRemoved != got.RaisingRemoved {
		return fmt.Sprintf("raising-removed differs: want %d, got %d",
			want.RaisingRemoved, got.RaisingRemoved)
	}
	if len(want.Points) != len(got.Points) {
		return fmt.Sprintf("point count differs: want %d, got %d", len(want.Points), len(got.Points))
	}
	for i := range want.Points {
		if want.Points[i] != got.Points[i] {
			return fmt.Sprintf("point %d differs: want %+v, got %+v", i, want.Points[i], got.Points[i])
		}
	}
	return ""
}

// DiffDeviations compares two association outcomes element-wise and returns
// the first difference, or "" when identical. Float fields must match
// exactly: the pipeline is deterministic, so any drift is a real divergence.
func DiffDeviations(want, got []core.Deviation) string {
	if len(want) != len(got) {
		return fmt.Sprintf("deviation count differs: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if !w.Event.Equal(g.Event) || w.Catalog != g.Catalog ||
			!floatEq(w.MaxDevKm, g.MaxDevKm) || !floatEq(w.MaxDrag, g.MaxDrag) {
			return fmt.Sprintf("deviation %d differs:\n  want: %+v\n  got:  %+v", i, w, g)
		}
	}
	return ""
}

func floatEq(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}
