package testkit

import (
	"context"
	"sync"
	"time"
)

// Clock is a deterministic time source. Now advances only through Advance
// and Sleep; Sleep advances instantly instead of blocking, so retry loops
// with real backoff schedules run in microseconds while still recording the
// delays they would have waited.
type Clock struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
}

// NewClock starts a clock at the given instant.
func NewClock(start time.Time) *Clock { return &Clock{now: start} }

// Now returns the current instant.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// Sleep advances the clock by d without blocking and records the request.
// It honours context cancellation so cancellation paths stay testable.
func (c *Clock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	c.slept = append(c.slept, d)
	return nil
}

// Sleeps reports how many Sleep calls the clock absorbed.
func (c *Clock) Sleeps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.slept)
}

// TotalSlept reports the summed virtual delay across all Sleep calls.
func (c *Clock) TotalSlept() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total time.Duration
	for _, d := range c.slept {
		total += d
	}
	return total
}
