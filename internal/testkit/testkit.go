// Package testkit is the deterministic test infrastructure shared by the
// repo's suites: a manual clock whose Sleep never blocks wall time, golden
// file helpers driven by a shared -update flag, and structural equality
// diffing for the pipeline's dataset type.
//
// The package exists so that end-to-end suites — in particular the
// fault-injection determinism suite in internal/faultline — can assert
// byte-for-byte and point-for-point reproducibility without depending on
// real time or hand-rolled comparison loops.
package testkit
