package testkit

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"

	"cosmicdance/internal/constellation"
	"cosmicdance/internal/core"
	"cosmicdance/internal/dst"
)

func TestClockDeterministic(t *testing.T) {
	start := time.Date(2024, 5, 10, 0, 0, 0, 0, time.UTC)
	c := NewClock(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}
	c.Advance(2 * time.Hour)
	if err := c.Sleep(context.Background(), 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := c.Now(); !got.Equal(start.Add(2*time.Hour + 30*time.Minute)) {
		t.Fatalf("Now after advance+sleep = %v", got)
	}
	if c.Sleeps() != 1 || c.TotalSlept() != 30*time.Minute {
		t.Fatalf("sleep accounting: %d sleeps, %v total", c.Sleeps(), c.TotalSlept())
	}
}

func TestClockSleepHonoursCancellation(t *testing.T) {
	c := NewClock(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, time.Hour); err == nil {
		t.Fatal("sleep on cancelled context succeeded")
	}
	if c.Sleeps() != 0 {
		t.Fatal("cancelled sleep was recorded")
	}
}

func TestDiffText(t *testing.T) {
	if d := DiffText("a\nb\n", "a\nb\n"); d != "" {
		t.Fatalf("equal texts diff: %q", d)
	}
	if d := DiffText("a\nb\n", "a\nc\n"); !strings.Contains(d, "line 2") {
		t.Fatalf("diff missed line 2: %q", d)
	}
	if d := DiffText("a\nb", "a\nb\nc"); !strings.Contains(d, "line count") {
		t.Fatalf("diff missed length change: %q", d)
	}
}

// buildDataset assembles a small single-satellite dataset; altBump shifts
// every altitude so callers can force inequality.
func buildDataset(t *testing.T, altBump float64) *core.Dataset {
	t.Helper()
	start := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	vals := make([]float64, 30*24)
	for i := range vals {
		vals[i] = -10
	}
	weather := dst.FromValues(start, vals)
	samples := make([]constellation.Sample, 0, 30)
	for day := 0; day < 30; day++ {
		samples = append(samples, constellation.Sample{
			Catalog: 44713,
			Epoch:   start.AddDate(0, 0, day).Unix(),
			AltKm:   float32(550 + altBump),
			BStar:   1e-4,
		})
	}
	b := core.NewBuilder(core.DefaultConfig(), weather)
	b.AddSamples(samples)
	d, err := b.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiffDatasets(t *testing.T) {
	a := buildDataset(t, 0)
	b := buildDataset(t, 0)
	if d := DiffDatasets(a, b); d != "" {
		t.Fatalf("identical datasets diff: %s", d)
	}
	c := buildDataset(t, 1)
	if d := DiffDatasets(a, c); d == "" {
		t.Fatal("different datasets compare equal")
	}
	if d := DiffDatasets(a, nil); d == "" {
		t.Fatal("nil dataset compares equal")
	}
}

func TestDiffDeviations(t *testing.T) {
	ev := time.Date(2023, 2, 1, 0, 0, 0, 0, time.UTC)
	a := []core.Deviation{{Event: ev, Catalog: 1, MaxDevKm: 2.5, MaxDrag: 0.1}}
	b := []core.Deviation{{Event: ev, Catalog: 1, MaxDevKm: 2.5, MaxDrag: 0.1}}
	if d := DiffDeviations(a, b); d != "" {
		t.Fatalf("identical deviations diff: %s", d)
	}
	b[0].MaxDevKm = 2.6
	if d := DiffDeviations(a, b); d == "" {
		t.Fatal("different deviations compare equal")
	}
	if d := DiffDeviations(a, nil); d == "" {
		t.Fatal("length mismatch not reported")
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	if Updating() {
		t.Skip("running under -update")
	}
	// Run the helper's write path and then its compare path against a
	// throwaway testdata dir.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	*update = true
	Golden(t, "roundtrip.golden", []byte("hello\nworld\n"))
	*update = false
	Golden(t, "roundtrip.golden", []byte("hello\nworld\n"))
}
