package testkit

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update is registered once here so every test binary that uses golden files
// shares the same flag: `go test ./cmd/figures -update` regenerates.
var update = flag.Bool("update", false, "rewrite golden files with the current output")

// Updating reports whether the test run was asked to regenerate golden files.
func Updating() bool { return *update }

// Golden compares got against the golden file testdata/<name> relative to
// the test's package directory. With -update the file is (re)written instead
// and the test passes. Mismatches fail with the first differing line.
func Golden(t testing.TB, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("testkit: creating %s: %v", filepath.Dir(path), err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("testkit: writing golden %s: %v", path, err)
		}
		t.Logf("testkit: wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("testkit: missing golden file %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("testkit: output differs from golden %s (regenerate with -update if intended):\n%s",
			path, DiffText(string(want), string(got)))
	}
}
