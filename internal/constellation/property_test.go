package constellation

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// Property-style invariants over randomized configurations: whatever the
// weather and fleet shape, the archive must stay internally consistent.

func TestArchiveInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		days := 60 + rng.Intn(200)
		peak := -50 - rng.Float64()*350
		weather := stormIndex(days*24, rng.Intn(days*24), peak)

		cfg := DefaultConfig()
		cfg.Seed = int64(trial + 1)
		cfg.Start = simStart
		cfg.Hours = days * 24
		cfg.InitialFleet = 5 + rng.Intn(40)
		if rng.Intn(2) == 0 {
			cfg.Launches = []Launch{{At: simStart.Add(time.Duration(rng.Intn(days)) * 24 * time.Hour), Shell: rng.Intn(len(cfg.Shells)), Count: 1 + rng.Intn(20)}}
		}
		cfg.SafeModeProbPerStormHour = rng.Float64() * 0.05
		cfg.FailProbPerStormHour = rng.Float64() * 0.005

		res, err := Run(context.Background(), cfg, weather)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// 1. Every series is strictly epoch-ascending.
		for _, ss := range res.GroupByCatalog() {
			for i := 1; i < len(ss.Samples); i++ {
				if ss.Samples[i].Epoch < ss.Samples[i-1].Epoch {
					t.Fatalf("trial %d: catalog %d epochs regress", trial, ss.Catalog)
				}
			}
		}

		// 2. No sample has a non-physical altitude (gross errors are capped
		// at 40,000 km; genuine tracks stay above the re-entry line).
		for _, s := range res.Samples {
			if s.AltKm < 150 || s.AltKm > 41000 {
				t.Fatalf("trial %d: sample altitude %v", trial, s.AltKm)
			}
		}

		// 3. No satellite is sampled after its re-entry.
		for _, info := range res.Sats {
			if info.Fate != PhaseReentered {
				continue
			}
			for _, s := range res.Series(info.Catalog) {
				if s.EpochTime().After(info.FateAt) {
					t.Fatalf("trial %d: catalog %d sampled %v after re-entry %v",
						trial, info.Catalog, s.EpochTime(), info.FateAt)
				}
			}
		}

		// 4. Catalog numbers are unique and within the issued range.
		seen := make(map[int]bool, len(res.Sats))
		for _, info := range res.Sats {
			if seen[info.Catalog] {
				t.Fatalf("trial %d: duplicate catalog %d", trial, info.Catalog)
			}
			seen[info.Catalog] = true
		}

		// 5. TrackedCount is monotone before the first possible loss and
		// never exceeds the fleet size.
		total := len(res.Sats)
		for day := 0; day < days; day += 7 {
			n := res.TrackedCount(simStart.Add(time.Duration(day) * 24 * time.Hour))
			if n < 0 || n > total {
				t.Fatalf("trial %d: tracked %d of %d", trial, n, total)
			}
		}
	}
}

func TestGroupByCatalogPreservesSamples(t *testing.T) {
	cfg := smallConfig(24 * 120)
	res, err := Run(context.Background(), cfg, quietIndex(cfg.Hours))
	if err != nil {
		t.Fatal(err)
	}
	grouped := res.GroupByCatalog()
	n := 0
	for _, ss := range grouped {
		n += len(ss.Samples)
	}
	if n != len(res.Samples) {
		t.Fatalf("grouping lost samples: %d vs %d", n, len(res.Samples))
	}
	// Series() agrees with GroupByCatalog for every satellite.
	for _, ss := range grouped {
		direct := res.Series(ss.Catalog)
		if len(direct) != len(ss.Samples) {
			t.Fatalf("catalog %d: Series %d vs grouped %d", ss.Catalog, len(direct), len(ss.Samples))
		}
	}
}
