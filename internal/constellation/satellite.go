// Package constellation simulates a Starlink-like LEO broadband fleet:
// staged launches, a low staging orbit, orbit raising, station-keeping
// against drag, storm-driven safe modes and failures, decommissioning, and
// the tracking pipeline that turns the fleet into a NORAD-style TLE archive.
// It is the satellite-side substrate of the CosmicDance reproduction — the
// paper measures the real Starlink fleet through public TLEs; this package
// produces a fleet whose TLEs respond to the same Dst series through the same
// physical mechanisms (atmospheric heating → drag → decay).
package constellation

import (
	"fmt"
	"math/rand"
	"time"

	"cosmicdance/internal/orbit"
	"cosmicdance/internal/tle"
	"cosmicdance/internal/units"
)

// Phase is a satellite's lifecycle state.
type Phase int

// Lifecycle phases, in nominal order.
const (
	// PhaseStaging: newly launched, parked in the low staging orbit for
	// checkout.
	PhaseStaging Phase = iota
	// PhaseRaising: ion thrusters raising the orbit to the assigned shell.
	PhaseRaising
	// PhaseOperational: on station, actively keeping altitude.
	PhaseOperational
	// PhaseSafeMode: storm-triggered protective state; station-keeping is
	// suspended and the tumbling attitude increases drag.
	PhaseSafeMode
	// PhaseDeorbiting: permanent decay — either a controlled decommission
	// burn or an unrecoverable failure.
	PhaseDeorbiting
	// PhaseReentered: below the re-entry altitude; no longer tracked.
	PhaseReentered
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseStaging:
		return "staging"
	case PhaseRaising:
		return "raising"
	case PhaseOperational:
		return "operational"
	case PhaseSafeMode:
		return "safe-mode"
	case PhaseDeorbiting:
		return "deorbiting"
	case PhaseReentered:
		return "reentered"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Shell is one orbital shell of the constellation (FCC-filing style).
type Shell struct {
	Name         string
	AltitudeKm   float64
	Inclination  units.Degrees
	Planes       int
	SatsPerPlane int
}

// StarlinkShells returns the Gen1 Starlink shells as authorized by the FCC
// (altitudes and inclinations from the modification order the paper cites).
func StarlinkShells() []Shell {
	return []Shell{
		{Name: "shell-1", AltitudeKm: 550, Inclination: 53.0, Planes: 72, SatsPerPlane: 22},
		{Name: "shell-2", AltitudeKm: 540, Inclination: 53.2, Planes: 72, SatsPerPlane: 22},
		{Name: "shell-3", AltitudeKm: 570, Inclination: 70.0, Planes: 36, SatsPerPlane: 20},
		{Name: "shell-4", AltitudeKm: 560, Inclination: 97.6, Planes: 6, SatsPerPlane: 58},
		{Name: "shell-5", AltitudeKm: 560, Inclination: 97.6, Planes: 4, SatsPerPlane: 43},
	}
}

// OneWebShells returns a OneWeb-like single-shell deployment (the paper
// notes CosmicDance works "for any orbit (LEO/MEO/GEO) or satellite
// constellation without any major code changes"; this preset exercises that
// claim at 1,200 km, where atmospheric drag is orders of magnitude weaker).
func OneWebShells() []Shell {
	return []Shell{
		{Name: "oneweb", AltitudeKm: 1200, Inclination: 87.9, Planes: 12, SatsPerPlane: 49},
	}
}

// InterShellGapKm is the nominal altitude gap between adjacent Starlink
// shells (~5 km per the FCC filings); trespassing it is the collision-risk
// signal the paper highlights.
const InterShellGapKm = 5.0

// Launch schedules one batch insertion.
type Launch struct {
	At           time.Time
	Shell        int // index into Config.Shells
	Count        int
	StagingAltKm float64 // 0 means Config.StagingAltKm
	StagingDays  float64 // 0 means Config.StagingDays
}

// ScriptAction is a deterministic event forced on a satellite, used by the
// paper presets to reproduce dated incidents exactly.
type ScriptAction int

// Script actions.
const (
	// ScriptSafeMode puts the satellite in safe mode for DurationDays.
	ScriptSafeMode ScriptAction = iota
	// ScriptFail permanently fails the satellite into uncontrolled decay.
	ScriptFail
	// ScriptDeorbit begins a controlled decommission burn.
	ScriptDeorbit
	// ScriptProtect is a no-op marker: satellites carrying any scripted
	// event are exempt from random storm casualties and decommissioning, so
	// this pins a satellite's fate to "whatever the script says" — including
	// nothing at all.
	ScriptProtect
)

// ScriptedEvent forces an action on a specific satellite at a specific time.
type ScriptedEvent struct {
	Catalog      int
	At           time.Time
	Action       ScriptAction
	DurationDays float64 // safe-mode length (ScriptSafeMode)
	DragFactor   float64 // extra drag multiplier during the episode (0 = default)
}

// Sample is one tracking observation — the compact in-memory form of a TLE.
// Angles are float32 and the epoch is unix seconds to keep multi-million-
// sample archives affordable.
type Sample struct {
	Catalog      int32
	Epoch        int64 // unix seconds, UTC
	AltKm        float32
	BStar        float32
	Inclination  float32 // degrees
	RAAN         float32 // degrees
	Eccentricity float32
	ArgPerigee   float32 // degrees
	MeanAnomaly  float32 // degrees
}

// EpochTime returns the observation epoch.
func (s Sample) EpochTime() time.Time { return time.Unix(s.Epoch, 0).UTC() }

// MeanMotion derives the TLE mean motion from the sampled altitude.
func (s Sample) MeanMotion() (units.RevsPerDay, error) {
	return orbit.MeanMotionFromAltitude(units.Kilometers(s.AltKm))
}

// TLE materializes the sample as a full element set.
func (s Sample) TLE(name string) (*tle.TLE, error) {
	mm, err := s.MeanMotion()
	if err != nil {
		return nil, fmt.Errorf("constellation: sample for %d: %w", s.Catalog, err)
	}
	return &tle.TLE{
		Name:           name,
		CatalogNumber:  int(s.Catalog),
		Classification: 'U',
		IntlDesignator: "19074A",
		Epoch:          s.EpochTime(),
		BStar:          float64(s.BStar),
		Inclination:    units.Degrees(s.Inclination),
		RAAN:           units.Degrees(s.RAAN).Normalize360(),
		Eccentricity:   float64(s.Eccentricity),
		ArgPerigee:     units.Degrees(s.ArgPerigee).Normalize360(),
		MeanAnomaly:    units.Degrees(s.MeanAnomaly).Normalize360(),
		MeanMotion:     mm,
	}, nil
}

// SatInfo is the per-satellite ground truth retained after a run.
type SatInfo struct {
	Catalog      int
	Name         string
	Shell        int
	LaunchedAt   time.Time
	StagingAltKm float64
	TargetAltKm  float64
	DragFactor   float64
	Fate         Phase     // terminal (or final) phase at end of run
	FateAt       time.Time // when the terminal phase began
}

// sat is the mutable simulation state (internal). Each satellite owns its
// RNG stream (seeded from the run seed and its catalog number) and is
// touched by exactly one worker per step, so the struct needs no locking.
type sat struct {
	info        SatInfo
	rng         *rand.Rand
	phase       Phase
	altKm       float64
	incl        float64
	raan        float64
	argp        float64
	meanAnomaly float64
	ecc         float64

	safeUntil    time.Time
	episodeDrag  float64 // extra drag multiplier while in safe mode
	stagedUntil  time.Time
	nextSample   time.Time
	deorbitKmDay float64
	scriptCursor int
	scripts      []ScriptedEvent // events targeting this satellite
	lifespanEnd  time.Time
	raanRate     float64 // cached deg/hour
	maRate       float64 // cached deg/hour

	// pending buffers the sample emitted this step until the coordinator's
	// ordered collection pass (see simState.step).
	pending    Sample
	hasPending bool
}
