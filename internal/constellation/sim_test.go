package constellation

import (
	"context"
	"testing"
	"time"

	"cosmicdance/internal/dst"
	"cosmicdance/internal/spaceweather"
	"cosmicdance/internal/units"
)

var simStart = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

// quietIndex returns a storm-free Dst index covering hours h from simStart.
func quietIndex(hours int) *dst.Index {
	vals := make([]float64, hours)
	for i := range vals {
		vals[i] = -10
	}
	return dst.FromValues(simStart, vals)
}

// stormIndex returns an index with one storm of the given peak at hour
// peakHour (flat -10 elsewhere, storm spans ±6 hours linearly).
func stormIndex(hours, peakHour int, peak float64) *dst.Index {
	vals := make([]float64, hours)
	for i := range vals {
		vals[i] = -10
	}
	for k := -6; k <= 6; k++ {
		i := peakHour + k
		if i < 0 || i >= hours {
			continue
		}
		f := 1 - float64(abs(k))/7
		vals[i] = -10 + (peak+10)*f
	}
	return dst.FromValues(simStart, vals)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// smallConfig is a one-launch configuration for focused behavioural tests.
func smallConfig(hours int) Config {
	cfg := DefaultConfig()
	cfg.Start = simStart
	cfg.Hours = hours
	cfg.Launches = []Launch{{At: simStart, Shell: 0, Count: 10}}
	cfg.GrossErrorProb = 0
	cfg.DecommissionPerYear = 0
	return cfg
}

func TestRunValidation(t *testing.T) {
	cfg := smallConfig(0)
	if _, err := Run(context.Background(), cfg, quietIndex(10)); err == nil {
		t.Error("Hours=0 accepted")
	}
	cfg = smallConfig(10)
	cfg.Shells = nil
	if _, err := Run(context.Background(), cfg, quietIndex(10)); err == nil {
		t.Error("no shells accepted")
	}
	cfg = smallConfig(10)
	cfg.MeanTLEIntervalHours = 0
	if _, err := Run(context.Background(), cfg, quietIndex(10)); err == nil {
		t.Error("zero TLE interval accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := smallConfig(24 * 30)
	a, err := Run(context.Background(), cfg, quietIndex(cfg.Hours))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg, quietIndex(cfg.Hours))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestLifecycleStagingToOperational(t *testing.T) {
	// 10 satellites launched at t0 should hold staging, raise, and then hold
	// the 550 km target.
	days := 200
	cfg := smallConfig(days * 24)
	res, err := Run(context.Background(), cfg, quietIndex(cfg.Hours))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sats) != 10 {
		t.Fatalf("sats = %d", len(res.Sats))
	}
	series := res.GroupByCatalog()
	if len(series) != 10 {
		t.Fatalf("tracked series = %d", len(series))
	}
	for _, ss := range series {
		// Early samples near staging altitude.
		early := ss.Samples[0]
		if early.AltKm < 330 || early.AltKm > 370 {
			t.Errorf("sat %d first sample at %.1f km, want near 350", ss.Catalog, early.AltKm)
		}
		// Final samples on station.
		last := ss.Samples[len(ss.Samples)-1]
		if last.AltKm < 545 || last.AltKm > 552 {
			t.Errorf("sat %d final altitude %.1f km, want ~550", ss.Catalog, last.AltKm)
		}
	}
	for _, info := range res.Sats {
		if info.Fate != PhaseOperational {
			t.Errorf("sat %d fate = %v, want operational", info.Catalog, info.Fate)
		}
	}
}

func TestStationKeepingHoldsDeadband(t *testing.T) {
	cfg := smallConfig(24 * 300)
	res, err := Run(context.Background(), cfg, quietIndex(cfg.Hours))
	if err != nil {
		t.Fatal(err)
	}
	// After day 180 everyone is on station; altitude must stay within the
	// deadband (+ noise).
	cutoff := simStart.Add(180 * 24 * time.Hour).Unix()
	for _, s := range res.Samples {
		if s.Epoch < cutoff {
			continue
		}
		if s.AltKm < float32(550-cfg.DeadbandKm-0.5) || s.AltKm > 551 {
			t.Fatalf("station-keeping breached: %.2f km at %v", s.AltKm, s.EpochTime())
		}
	}
}

func TestScriptedFailDecaysAndReenters(t *testing.T) {
	cfg := smallConfig(24 * 365)
	first := cfg.FirstCatalog
	cfg.Scripted = []ScriptedEvent{{
		Catalog: first, At: simStart.Add(200 * 24 * time.Hour), Action: ScriptFail,
	}}
	res, err := Run(context.Background(), cfg, quietIndex(cfg.Hours))
	if err != nil {
		t.Fatal(err)
	}
	info, ok := res.Info(first)
	if !ok {
		t.Fatal("scripted sat missing")
	}
	if info.Fate != PhaseReentered {
		t.Fatalf("fate = %v, want reentered", info.Fate)
	}
	// Re-entry from 550 km at ~4-6 km/day takes one to three months.
	decayDuration := info.FateAt.Sub(simStart.Add(200 * 24 * time.Hour))
	if decayDuration < 20*24*time.Hour || decayDuration > 120*24*time.Hour {
		t.Errorf("decay took %v", decayDuration)
	}
	// Other satellites are unaffected.
	for _, s := range res.Sats {
		if s.Catalog != first && s.Fate != PhaseOperational {
			t.Errorf("sat %d fate = %v", s.Catalog, s.Fate)
		}
	}
}

func TestScriptedSafeModeDipsAndRecovers(t *testing.T) {
	cfg := smallConfig(24 * 365)
	first := cfg.FirstCatalog
	eventAt := simStart.Add(250 * 24 * time.Hour)
	cfg.Scripted = []ScriptedEvent{{
		Catalog: first, At: eventAt, Action: ScriptSafeMode, DurationDays: 15, DragFactor: 3,
	}}
	res, err := Run(context.Background(), cfg, quietIndex(cfg.Hours))
	if err != nil {
		t.Fatal(err)
	}
	series := res.Series(first)
	// Altitude at the event, minimum afterwards, and at end of run.
	var before, minAfter, end float32 = 0, 1e9, 0
	for _, s := range series {
		at := s.EpochTime()
		switch {
		case at.Before(eventAt):
			before = s.AltKm
		case at.After(eventAt) && at.Before(eventAt.Add(30*24*time.Hour)):
			if s.AltKm < minAfter {
				minAfter = s.AltKm
			}
		}
		end = s.AltKm
	}
	dip := before - minAfter
	if dip < 2 || dip > 15 {
		t.Errorf("safe-mode dip = %.2f km, want a few km", dip)
	}
	if end < 545 {
		t.Errorf("did not recover: final altitude %.1f km", end)
	}
	info, _ := res.Info(first)
	if info.Fate != PhaseOperational {
		t.Errorf("fate = %v, want operational after recovery", info.Fate)
	}
}

func TestStormTriggersSafeModes(t *testing.T) {
	// With an aggressive probability, a severe storm must push part of the
	// fleet into safe mode and dip their altitudes.
	days := 120
	cfg := DefaultConfig()
	cfg.Start = simStart
	cfg.Hours = days * 24
	cfg.InitialFleet = 200
	cfg.GrossErrorProb = 0
	cfg.DecommissionPerYear = 0
	cfg.SafeModeProbPerStormHour = 0.05
	cfg.FailProbPerStormHour = 0
	peakHour := 40 * 24
	weather := stormIndex(cfg.Hours, peakHour, -250)
	res, err := Run(context.Background(), cfg, weather)
	if err != nil {
		t.Fatal(err)
	}
	// Count satellites whose altitude dipped >2 km below target within 30
	// days after the storm.
	dipped := 0
	for _, ss := range res.GroupByCatalog() {
		info, _ := res.Info(ss.Catalog)
		minAlt := float32(1e9)
		for _, s := range ss.Samples {
			h := int(s.Epoch-simStart.Unix()) / 3600
			if h > peakHour && h < peakHour+30*24 {
				if s.AltKm < minAlt {
					minAlt = s.AltKm
				}
			}
		}
		if minAlt < float32(info.TargetAltKm)-2 {
			dipped++
		}
	}
	if dipped < 10 {
		t.Errorf("only %d satellites dipped after a severe storm", dipped)
	}
}

func TestProactiveMitigationPreventsLosses(t *testing.T) {
	base := DefaultConfig()
	base.Start = simStart
	base.Hours = 30 * 24
	base.InitialFleet = 400
	base.DecommissionPerYear = 0
	base.GrossErrorProb = 0
	base.SafeModeProbPerStormHour = 0.01
	base.FailProbPerStormHour = 0.002
	weather := stormIndex(base.Hours, 10*24, -412)

	unprotected := base
	unprotected.ProactiveDragMitigation = false
	ru, err := Run(context.Background(), unprotected, weather)
	if err != nil {
		t.Fatal(err)
	}
	protected := base
	protected.ProactiveDragMitigation = true
	rp, err := Run(context.Background(), protected, weather)
	if err != nil {
		t.Fatal(err)
	}
	losses := func(r *Result) int {
		n := 0
		for _, s := range r.Sats {
			if s.Fate == PhaseDeorbiting || s.Fate == PhaseReentered {
				n++
			}
		}
		return n
	}
	lu, lp := losses(ru), losses(rp)
	if lp != 0 {
		t.Errorf("proactive run lost %d satellites, want 0", lp)
	}
	if lu == 0 {
		t.Error("unprotected run lost no satellites; storm response model inert")
	}
}

func TestTLECadence(t *testing.T) {
	cfg := smallConfig(24 * 200)
	res, err := Run(context.Background(), cfg, quietIndex(cfg.Hours))
	if err != nil {
		t.Fatal(err)
	}
	var gaps []float64
	for _, ss := range res.GroupByCatalog() {
		for i := 1; i < len(ss.Samples); i++ {
			gaps = append(gaps, float64(ss.Samples[i].Epoch-ss.Samples[i-1].Epoch)/3600)
		}
	}
	if len(gaps) == 0 {
		t.Fatal("no refresh gaps")
	}
	var sum, maxGap float64
	for _, g := range gaps {
		sum += g
		if g > maxGap {
			maxGap = g
		}
	}
	mean := sum / float64(len(gaps))
	// Paper: refresh between <1 h and 154 h, average ~12 h.
	if mean < 8 || mean > 16 {
		t.Errorf("mean refresh = %.1f h, want ~12", mean)
	}
	if maxGap > 155 {
		t.Errorf("max refresh = %.1f h, want <= 154", maxGap)
	}
}

func TestGrossTrackingErrors(t *testing.T) {
	cfg := smallConfig(24 * 300)
	cfg.Launches[0].Count = 50
	cfg.GrossErrorProb = 0.01
	res, err := Run(context.Background(), cfg, quietIndex(cfg.Hours))
	if err != nil {
		t.Fatal(err)
	}
	wild := 0
	for _, s := range res.Samples {
		if s.AltKm > 650 {
			wild++
		}
	}
	if wild == 0 {
		t.Fatal("no gross tracking errors emitted")
	}
	frac := float64(wild) / float64(len(res.Samples))
	if frac < 0.002 || frac > 0.05 {
		t.Errorf("gross error fraction = %v, want ~0.01", frac)
	}
}

func TestTrackedCount(t *testing.T) {
	cfg := smallConfig(24 * 400)
	first := cfg.FirstCatalog
	cfg.Scripted = []ScriptedEvent{{Catalog: first, At: simStart.Add(100 * 24 * time.Hour), Action: ScriptFail}}
	res, err := Run(context.Background(), cfg, quietIndex(cfg.Hours))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TrackedCount(simStart.Add(-time.Hour)); got != 0 {
		t.Errorf("tracked before launch = %d", got)
	}
	if got := res.TrackedCount(simStart.Add(24 * time.Hour)); got != 10 {
		t.Errorf("tracked day 1 = %d, want 10", got)
	}
	// After the scripted satellite re-enters (~2-3 months post-failure).
	if got := res.TrackedCount(simStart.Add(399 * 24 * time.Hour)); got != 9 {
		t.Errorf("tracked at end = %d, want 9", got)
	}
}

func TestRAANRegressionVisible(t *testing.T) {
	cfg := smallConfig(24 * 100)
	res, err := Run(context.Background(), cfg, quietIndex(cfg.Hours))
	if err != nil {
		t.Fatal(err)
	}
	// RAAN of a 53-degree satellite must drift westward a few degrees/day.
	ss := res.GroupByCatalog()[0]
	if len(ss.Samples) < 10 {
		t.Fatal("too few samples")
	}
	// Accumulate unwrapped sample-to-sample drift (gaps are far below a
	// full revolution of the node).
	var drift float64
	for i := 1; i < len(ss.Samples); i++ {
		d := float64(ss.Samples[i].RAAN) - float64(ss.Samples[i-1].RAAN)
		if d > 180 {
			d -= 360
		} else if d < -180 {
			d += 360
		}
		drift += d
	}
	a, b := ss.Samples[0], ss.Samples[len(ss.Samples)-1]
	days := float64(b.Epoch-a.Epoch) / 86400
	rate := drift / days
	if rate > -3 || rate < -7 {
		t.Errorf("RAAN rate = %.2f deg/day, want ~-5", rate)
	}
}

func TestSamplesAreValidTLEs(t *testing.T) {
	cfg := smallConfig(24 * 60)
	res, err := Run(context.Background(), cfg, quietIndex(cfg.Hours))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Samples {
		if i > 200 {
			break
		}
		tl, err := s.TLE("TEST")
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if _, _, err := tl.Format(); err != nil {
			t.Fatalf("sample %d does not format: %v", i, err)
		}
		// The TLE altitude must round-trip the sampled altitude.
		if diff := float64(tl.Altitude()) - float64(s.AltKm); diff > 0.01 || diff < -0.01 {
			t.Fatalf("sample %d altitude drifted %.4f km through TLE", i, diff)
		}
	}
}

func TestStormIndexHelper(t *testing.T) {
	x := stormIndex(100, 50, -200)
	v, ok := x.At(simStart.Add(50 * time.Hour))
	if !ok || v != -200 {
		t.Errorf("peak = %v, %v", v, ok)
	}
	if v, _ := x.At(simStart); v != -10 {
		t.Errorf("background = %v", v)
	}
}

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{
		PhaseStaging: "staging", PhaseRaising: "raising", PhaseOperational: "operational",
		PhaseSafeMode: "safe-mode", PhaseDeorbiting: "deorbiting", PhaseReentered: "reentered",
		Phase(99): "Phase(99)",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q", int(p), p.String())
		}
	}
}

func TestPaperFleetIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet run in -short mode")
	}
	weather, err := spaceweather.Generate(spaceweather.Paper2020to2024())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), PaperFleet(42), weather)
	if err != nil {
		t.Fatal(err)
	}
	// Scale model: ~2000 satellites by May 2024.
	if n := len(res.Sats); n < 1500 || n > 2500 {
		t.Errorf("fleet size = %d", n)
	}

	// The Feb 2022 staging incident: exactly 38 of the 49-satellite batch
	// re-enter.
	reentered, batch := 0, 0
	for _, s := range res.Sats {
		if s.LaunchedAt.Equal(Feb2022LaunchTime) {
			batch++
			if s.Fate == PhaseReentered {
				reentered++
			}
		}
	}
	if batch != 49 {
		t.Errorf("Feb 2022 batch = %d, want 49", batch)
	}
	if reentered != 38 {
		t.Errorf("Feb 2022 re-entries = %d, want 38", reentered)
	}

	// Fig 3 satellites exist, are on the 550 km shell, and decay after their
	// scripted storms.
	for _, cat := range []int{Fig3SatDragSpike, Fig3SatQuietDecay, Fig3SatSharpDrop} {
		info, ok := res.Info(cat)
		if !ok {
			t.Errorf("#%d missing", cat)
			continue
		}
		if info.TargetAltKm != 550 {
			t.Errorf("#%d target = %v, want 550", cat, info.TargetAltKm)
		}
		if info.Fate != PhaseReentered && info.Fate != PhaseDeorbiting {
			t.Errorf("#%d fate = %v, want decayed", cat, info.Fate)
		}
	}

	// #44943 loses ~150 km within ~5 weeks of the 3 Mar 2024 storm.
	var before, after float32
	for _, s := range res.Series(Fig3SatSharpDrop) {
		at := s.EpochTime()
		if at.Before(Fig3StormBTime) && s.AltKm < 600 {
			before = s.AltKm
		}
		if after == 0 && at.After(Fig3StormBTime.Add(35*24*time.Hour)) {
			after = s.AltKm
		}
	}
	drop := before - after
	if drop < 100 || drop > 220 {
		t.Errorf("#44943 dropped %.0f km in 5 weeks, want ~150", drop)
	}

	// Background fleet: the vast majority stays operational (the paper's
	// effects are tail phenomena).
	operational := 0
	for _, s := range res.Sats {
		if s.Fate == PhaseOperational {
			operational++
		}
	}
	if frac := float64(operational) / float64(len(res.Sats)); frac < 0.75 {
		t.Errorf("operational fraction = %.2f", frac)
	}
}

func TestMay2024FleetIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet run in -short mode")
	}
	weather, err := spaceweather.Generate(spaceweather.May2024())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), May2024Fleet(7), weather)
	if err != nil {
		t.Fatal(err)
	}
	// No satellite loss through the super-storm (Starlink's FCC comment).
	for _, s := range res.Sats {
		if s.Fate == PhaseReentered {
			t.Fatalf("satellite %d re-entered during May 2024", s.Catalog)
		}
	}
	endOfMonth := res.Start.Add(30 * 24 * time.Hour)
	if got := res.TrackedCount(endOfMonth); got != 5900 {
		t.Errorf("tracked at end = %d, want 5900", got)
	}
	// Drag (B*) around the storm peak is several times the quiet level.
	var quietSum, stormSum float64
	var quietN, stormN int
	for _, s := range res.Samples {
		at := s.EpochTime()
		switch {
		case at.Before(spaceweather.May2024Peak.Add(-48 * time.Hour)):
			quietSum += float64(s.BStar)
			quietN++
		case at.After(spaceweather.May2024Peak.Add(-2*time.Hour)) && at.Before(spaceweather.May2024Peak.Add(8*time.Hour)):
			stormSum += float64(s.BStar)
			stormN++
		}
	}
	if quietN == 0 || stormN == 0 {
		t.Fatal("missing samples around the storm")
	}
	ratio := (stormSum / float64(stormN)) / (quietSum / float64(quietN))
	if ratio < 3 || ratio > 7 {
		t.Errorf("storm/quiet B* ratio = %.2f, want ~5", ratio)
	}
}

var _ = units.StormThreshold // keep the import for helper clarity
