package constellation

import (
	"context"
	"fmt"
	"slices"
	"time"

	"cosmicdance/internal/dst"
	"cosmicdance/internal/parallel"
	"cosmicdance/internal/units"
)

// Chunked execution slices a fleet into fixed-size satellite chunks and
// simulates each chunk independently, so a 100k-satellite run never has to
// hold the whole fleet (or its archive) in memory at once. The partition is
// sound because the simulator was built for it: every satellite draws from
// its own splitmix64 child stream keyed by catalog number, stepSat touches
// only its own satellite, and the archive's sample order within an hour is
// creation order — so a chunk, which owns a contiguous catalog range, can be
// simulated alone and its hourly emissions spliced back in chunk order to
// reproduce Run's output byte for byte. RunChunked proves that claim; the
// streaming dataset build in internal/artifact consumes chunks one at a time
// without ever merging the archives.

// rosterEntry pins down one satellite's creation: which helper creates it,
// at which processing hour, and with which resolved batch parameters. The
// roster is the run's creation schedule flattened to per-satellite rows in
// catalog order, which is what makes an arbitrary contiguous slice of it
// independently simulable.
type rosterEntry struct {
	initial     bool
	initialIdx  int     // global initial-fleet ordinal (fixes the shell)
	shellIdx    int     // resolved launch shell (launched sats only)
	launchHour  int     // processing hour; -1 for initial-fleet sats
	stagingAlt  float64 // resolved staging altitude (launched sats only)
	stagingDays float64
}

// ChunkPlan is a fleet's creation schedule partitioned into fixed-size
// chunks. Plans are immutable after construction; RunChunk may be called
// for different chunks concurrently.
type ChunkPlan struct {
	cfg       Config
	start     time.Time
	roster    []rosterEntry
	scripts   map[int][]ScriptedEvent
	chunkSize int
	firstCat  int
}

// PlanChunks validates cfg and flattens its launch schedule into a
// chunk-partitioned roster. chunkSize is the number of satellites per chunk
// (the last chunk may be short).
func PlanChunks(cfg Config, chunkSize int) (*ChunkPlan, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	if chunkSize <= 0 {
		return nil, fmt.Errorf("constellation: chunk size must be positive, got %d", chunkSize)
	}
	start := cfg.Start.UTC().Truncate(time.Hour)

	launches := append([]Launch(nil), cfg.Launches...)
	slices.SortStableFunc(launches, func(a, b Launch) int { return a.At.Compare(b.At) })

	scripts := make(map[int][]ScriptedEvent)
	for _, ev := range cfg.Scripted {
		scripts[ev.Catalog] = append(scripts[ev.Catalog], ev)
	}
	for _, evs := range scripts {
		slices.SortStableFunc(evs, func(a, b ScriptedEvent) int { return a.At.Compare(b.At) })
	}

	//cosmiclint:allow fleetalloc the roster is O(fleet) by design: one small value entry per satellite, built once per plan and shared by every chunk
	roster := make([]rosterEntry, 0, cfg.InitialFleet)
	for i := 0; i < cfg.InitialFleet; i++ {
		roster = append(roster, rosterEntry{initial: true, initialIdx: i, launchHour: -1})
	}
	for _, l := range launches {
		h := launchHourFor(start, l.At)
		if h >= cfg.Hours {
			// Run's hourly loop never reaches this launch: it creates no
			// satellites and consumes no catalog numbers. Launches are sorted
			// by At, so every later launch is excluded too — exclusions form
			// a suffix and catalog numbers stay contiguous.
			break
		}
		shellIdx, stagingAlt, stagingDays := resolveLaunch(&cfg, l)
		for i := 0; i < l.Count; i++ {
			roster = append(roster, rosterEntry{
				shellIdx: shellIdx, launchHour: h,
				stagingAlt: stagingAlt, stagingDays: stagingDays,
			})
		}
	}

	firstCat := cfg.FirstCatalog
	if firstCat == 0 {
		firstCat = 44713
	}
	return &ChunkPlan{
		cfg: cfg, start: start, roster: roster,
		scripts: scripts, chunkSize: chunkSize, firstCat: firstCat,
	}, nil
}

// launchHourFor returns the hourly step at which Run processes a launch
// scheduled at `at`: the smallest h ≥ 0 with start+h·hour ≥ at (launches are
// handled at the top of each hourly step, before the physics).
func launchHourFor(start, at time.Time) int {
	if !at.After(start) {
		return 0
	}
	d := at.Sub(start)
	h := int(d / time.Hour)
	if start.Add(time.Duration(h) * time.Hour).Before(at) {
		h++
	}
	return h
}

// TotalSats returns the number of satellites the run will ever create.
func (p *ChunkPlan) TotalSats() int { return len(p.roster) }

// NumChunks returns the number of chunks the roster partitions into.
func (p *ChunkPlan) NumChunks() int {
	return (len(p.roster) + p.chunkSize - 1) / p.chunkSize
}

// ChunkBounds returns the half-open roster range [lo, hi) chunk i covers.
func (p *ChunkPlan) ChunkBounds(i int) (lo, hi int) {
	lo = i * p.chunkSize
	hi = lo + p.chunkSize
	if hi > len(p.roster) {
		hi = len(p.roster)
	}
	return lo, hi
}

// Start returns the run's hour-truncated UTC start time.
func (p *ChunkPlan) Start() time.Time { return p.start }

// RunChunk simulates chunk i alone and returns its slice of the archive:
// the satellites with catalogs [firstCat+lo, firstCat+hi) and exactly the
// samples they would emit in the full run, in the full run's relative order.
// Safe to call concurrently for distinct chunks.
func (p *ChunkPlan) RunChunk(ctx context.Context, chunk int, weather *dst.Index) (*Result, error) {
	if chunk < 0 || chunk >= p.NumChunks() {
		return nil, fmt.Errorf("constellation: chunk %d out of range [0, %d)", chunk, p.NumChunks())
	}
	lo, hi := p.ChunkBounds(chunk)
	st := &simState{
		cfg:     p.cfg,
		pool:    parallel.NewRunner(1), // parallelism lives at the chunk level
		start:   p.start,
		scripts: p.scripts,
		result:  &Result{Start: p.start, Hours: p.cfg.Hours},
	}
	defer st.pool.Flush()
	st.nextCatalog = p.firstCat + lo
	st.stepFn = func(i int) error {
		st.stepSat(st.sats[i], st.stepNow, st.stepD, st.stepStorm, st.stepDuck, st.stepIntensity)
		return nil
	}

	// Initial-fleet entries precede all launched entries in roster order, so
	// the catalog counter stays aligned with the global sequence.
	cursor := lo
	for cursor < hi && p.roster[cursor].initial {
		st.seedInitialSat(p.roster[cursor].initialIdx)
		cursor++
	}
	for h := 0; h < p.cfg.Hours; h++ {
		now := p.start.Add(time.Duration(h) * time.Hour)
		d := units.NanoTesla(-10) // quiet default outside the index
		if v, ok := weather.At(now); ok {
			d = v
		}
		for cursor < hi && p.roster[cursor].launchHour == h {
			e := p.roster[cursor]
			st.launchSat(e.shellIdx, e.stagingAlt, e.stagingDays, now)
			cursor++
		}
		if err := st.step(ctx, now, d); err != nil {
			return nil, fmt.Errorf("constellation: chunk %d step at %s: %w", chunk, now.Format(time.RFC3339), err)
		}
	}
	st.finalize()
	return st.result, nil
}

// RunChunked is Run decomposed into chunks of chunkSize satellites fanned
// out across cfg.Parallelism workers, with the per-chunk archives merged
// back into one Result. The output is byte-identical to Run(cfg, weather)
// at every (chunkSize, Parallelism) combination — that equivalence is the
// contract the chunked streaming pipeline rests on, and the test matrix in
// chunk_test.go enforces it.
func RunChunked(ctx context.Context, cfg Config, weather *dst.Index, chunkSize int) (*Result, error) {
	plan, err := PlanChunks(cfg, chunkSize)
	if err != nil {
		return nil, err
	}
	n := plan.NumChunks()
	results := make([]*Result, 0, n)
	err = parallel.Stream(ctx, cfg.Parallelism, n,
		func(i int) (*Result, error) { return plan.RunChunk(ctx, i, weather) },
		func(i int, r *Result) error { results = append(results, r); return nil })
	if err != nil {
		return nil, err
	}
	out := plan.merge(results)
	metricSimRuns.Inc()
	metricSimSats.Add(int64(len(out.Sats)))
	metricSimSamples.Add(int64(len(out.Samples)))
	return out, nil
}

// merge splices per-chunk archives back into Run's global layout. Within an
// hour Run emits samples in creation (catalog) order; each chunk owns a
// contiguous catalog range, so walking the hours and draining each chunk's
// samples for that hour in chunk order reproduces the global order exactly.
func (p *ChunkPlan) merge(results []*Result) *Result {
	out := &Result{Start: p.start, Hours: p.cfg.Hours}
	nSats, nSamples := 0, 0
	for _, r := range results {
		nSats += len(r.Sats)
		nSamples += len(r.Samples)
	}
	//cosmiclint:allow fleetalloc merge materializes the whole-fleet Result by contract (byte-identical to Run); the streaming pipeline bypasses merge entirely
	out.Sats = make([]SatInfo, 0, nSats)
	if nSamples > 0 {
		out.Samples = make([]Sample, 0, nSamples)
	}
	ptr := make([]int, len(results))
	for h := 0; h < p.cfg.Hours; h++ {
		epoch := p.start.Add(time.Duration(h) * time.Hour).Unix()
		for c, r := range results {
			for ptr[c] < len(r.Samples) && r.Samples[ptr[c]].Epoch == epoch {
				out.Samples = append(out.Samples, r.Samples[ptr[c]])
				ptr[c]++
			}
		}
	}
	for _, r := range results {
		out.Sats = append(out.Sats, r.Sats...)
	}
	return out
}
