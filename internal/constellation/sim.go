package constellation

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"time"

	"cosmicdance/internal/atmosphere"
	"cosmicdance/internal/dst"
	"cosmicdance/internal/obs"
	"cosmicdance/internal/orbit"
	"cosmicdance/internal/parallel"
	"cosmicdance/internal/units"
)

// Simulation telemetry: runs completed plus the fleet and archive sizes they
// produced, so a -trace run shows how much work hid behind each fleet span.
var (
	metricSimRuns    = obs.Default().Counter("constellation_runs_total")
	metricSimSats    = obs.Default().Counter("constellation_satellites_total")
	metricSimSamples = obs.Default().Counter("constellation_samples_total")
)

// Config parameterizes a constellation run. Start from DefaultConfig.
type Config struct {
	Start time.Time
	Hours int
	Seed  int64

	// Parallelism bounds the worker pool the hourly physics step fans out
	// on: 0 means one worker per CPU (GOMAXPROCS), 1 runs sequentially.
	// Every satellite draws from its own RNG stream derived from (Seed,
	// catalog number), so the result is bit-identical at every setting.
	Parallelism int

	Shells       []Shell
	Launches     []Launch
	InitialFleet int // satellites pre-seeded operational at Start
	FirstCatalog int

	Atmosphere atmosphere.Model

	// Orbit raising and station keeping.
	StagingAltKm      float64
	StagingDays       float64 // checkout time before raising begins
	RaiseRateKmPerDay float64
	DeadbandKm        float64 // station-keeping tolerance below target
	BoostKmPerDay     float64 // station-keeping thrust capacity
	DeorbitKmPerDay   float64 // controlled decommission descent rate

	// Storm response. Probabilities are per storm hour at 100 nT intensity
	// and scale with (intensity/100)².
	SafeModeProbPerStormHour float64
	FailProbPerStormHour     float64
	SafeModeMinDays          float64
	SafeModeMaxDays          float64
	SafeModeDragFactor       float64 // tumbling-attitude drag multiplier

	// Fleet turnover.
	DecommissionPerYear float64 // random early-decommission rate
	LifespanYears       float64

	// Tracking model.
	MeanTLEIntervalHours float64
	MaxTLEIntervalHours  float64
	AltNoiseKm           float64
	GrossErrorProb       float64 // probability a TLE carries a wild altitude

	// ProactiveDragMitigation models the operator response Starlink
	// described for May 2024: during extreme storms satellites duck into a
	// low-drag attitude, operations stay attentive, and no storm failures
	// are sampled.
	ProactiveDragMitigation bool

	Scripted []ScriptedEvent
}

// DefaultConfig returns the calibrated baseline configuration (Starlink-like
// fleet physics, paper-era tracking cadence).
func DefaultConfig() Config {
	return Config{
		Seed:                     1,
		Shells:                   StarlinkShells(),
		FirstCatalog:             44713,
		Atmosphere:               atmosphere.Standard(),
		StagingAltKm:             350,
		StagingDays:              60,
		RaiseRateKmPerDay:        5,
		DeadbandKm:               1.5,
		BoostKmPerDay:            0.8,
		DeorbitKmPerDay:          4,
		SafeModeProbPerStormHour: 0.002,
		FailProbPerStormHour:     2e-5,
		SafeModeMinDays:          4,
		SafeModeMaxDays:          32,
		SafeModeDragFactor:       2.5,
		DecommissionPerYear:      0.012,
		LifespanYears:            5,
		MeanTLEIntervalHours:     12,
		MaxTLEIntervalHours:      154,
		AltNoiseKm:               0.05,
		GrossErrorProb:           1.5e-4,
	}
}

// Result is the outcome of a run: the tracking archive plus ground truth.
type Result struct {
	Start   time.Time
	Hours   int
	Samples []Sample  // epoch-ordered tracking observations
	Sats    []SatInfo // one per satellite ever launched
}

// Run simulates the constellation over cfg.Hours hourly steps, driven by the
// Dst index (hours outside the index are treated as quiet).
//
// The hourly physics step fans out across satellites on a worker pool
// bounded by cfg.Parallelism. Every satellite owns an RNG stream derived
// from (cfg.Seed, catalog number), so the archive is bit-identical for every
// worker count and every goroutine schedule: determinism is a property of
// the decomposition, not of the scheduler.
func Run(ctx context.Context, cfg Config, weather *dst.Index) (*Result, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	start := cfg.Start.UTC().Truncate(time.Hour)

	launches := append([]Launch(nil), cfg.Launches...)
	slices.SortStableFunc(launches, func(a, b Launch) int { return a.At.Compare(b.At) })

	scripts := make(map[int][]ScriptedEvent)
	for _, ev := range cfg.Scripted {
		scripts[ev.Catalog] = append(scripts[ev.Catalog], ev)
	}
	for _, evs := range scripts {
		slices.SortStableFunc(evs, func(a, b ScriptedEvent) int { return a.At.Compare(b.At) })
	}

	st := &simState{
		cfg:     cfg,
		pool:    parallel.NewRunner(cfg.Parallelism),
		start:   start,
		scripts: scripts,
		result:  &Result{Start: start, Hours: cfg.Hours},
	}
	defer st.pool.Flush() // publish pool telemetry even on a failed run
	st.nextCatalog = cfg.FirstCatalog
	if st.nextCatalog == 0 {
		st.nextCatalog = 44713
	}
	st.stepFn = func(i int) error {
		st.stepSat(st.sats[i], st.stepNow, st.stepD, st.stepStorm, st.stepDuck, st.stepIntensity)
		return nil
	}
	st.seedInitialFleet()

	launchIdx := 0
	for h := 0; h < cfg.Hours; h++ {
		now := start.Add(time.Duration(h) * time.Hour)
		d := units.NanoTesla(-10) // quiet default outside the index
		if v, ok := weather.At(now); ok {
			d = v
		}
		for launchIdx < len(launches) && !launches[launchIdx].At.After(now) {
			st.launch(launches[launchIdx], now)
			launchIdx++
		}
		if err := st.step(ctx, now, d); err != nil {
			return nil, fmt.Errorf("constellation: step at %s: %w", now.Format(time.RFC3339), err)
		}
	}
	st.finalize()
	metricSimRuns.Inc()
	metricSimSats.Add(int64(len(st.result.Sats)))
	metricSimSamples.Add(int64(len(st.result.Samples)))
	return st.result, nil
}

// validateConfig is the shared precondition check for Run and PlanChunks.
func validateConfig(cfg Config) error {
	if cfg.Hours <= 0 {
		return fmt.Errorf("constellation: Hours must be positive, got %d", cfg.Hours)
	}
	if len(cfg.Shells) == 0 {
		return fmt.Errorf("constellation: no shells configured")
	}
	if cfg.MeanTLEIntervalHours <= 0 {
		return fmt.Errorf("constellation: MeanTLEIntervalHours must be positive")
	}
	return nil
}

// childSeed derives a satellite's RNG stream seed from the run seed and its
// catalog number via a splitmix64-style mix. The catalog number — not the
// creation order or a shared stream — is the sole per-satellite input, which
// is what makes every stream independent of scheduling.
func childSeed(seed int64, catalog int) int64 {
	z := uint64(seed) + uint64(catalog)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// simState carries the mutable run state.
type simState struct {
	cfg Config
	// pool amortizes the per-hour fan-out's telemetry: one tally per
	// step, one registry flush per run (the step itself is ~µs-scale,
	// where per-call atomics are measurable).
	pool        *parallel.Runner
	start       time.Time
	scripts     map[int][]ScriptedEvent
	sats        []*sat
	nextCatalog int
	result      *Result

	// stepFn is the per-satellite worker body, built once in Run. The
	// hourly fan-out reuses it so the hot loop does not allocate a fresh
	// closure every step; the step parameters travel via the step* fields,
	// which the coordinator writes before the fan-out and workers only read.
	stepFn        func(i int) error
	stepNow       time.Time
	stepD         units.NanoTesla
	stepStorm     bool
	stepDuck      bool
	stepIntensity float64
}

// seedInitialFleet creates cfg.InitialFleet satellites already on station.
func (st *simState) seedInitialFleet() {
	for i := 0; i < st.cfg.InitialFleet; i++ {
		st.seedInitialSat(i)
	}
}

// seedInitialSat creates the i-th initial-fleet satellite (i is the global
// initial-fleet ordinal, which fixes the shell assignment). The chunked
// runner calls this for exactly the ordinals its chunk owns, so the creation
// draws replay identically in both paths.
func (st *simState) seedInitialSat(i int) {
	shellIdx := i % len(st.cfg.Shells)
	shell := st.cfg.Shells[shellIdx]
	s := st.newSat(shellIdx, st.start, st.cfg.StagingAltKm)
	// Stagger ages so decommissioning is spread out. The age draw comes
	// after newSat so it rides the satellite's own stream, but the launch
	// time and lifespan must reflect it.
	age := time.Duration(s.rng.Float64() * 3 * 365 * 24 * float64(time.Hour))
	s.info.LaunchedAt = st.start.Add(-age)
	s.lifespanEnd = s.info.LaunchedAt.Add(time.Duration(st.cfg.LifespanYears * 365.25 * 24 * float64(time.Hour)))
	s.phase = PhaseOperational
	s.altKm = shell.AltitudeKm - s.rng.Float64()*st.cfg.DeadbandKm
	s.nextSample = st.start.Add(time.Duration(s.rng.Float64()*st.cfg.MeanTLEIntervalHours) * time.Hour)
	st.sats = append(st.sats, s)
}

// resolveLaunch applies the zero-means-default rules a Launch carries. Both
// Run and the chunk planner resolve through this one function so the two
// paths can never drift.
func resolveLaunch(cfg *Config, l Launch) (shellIdx int, stagingAlt, stagingDays float64) {
	stagingAlt = l.StagingAltKm
	if stagingAlt == 0 {
		stagingAlt = cfg.StagingAltKm
	}
	shellIdx = l.Shell
	if shellIdx < 0 || shellIdx >= len(cfg.Shells) {
		shellIdx = 0
	}
	stagingDays = l.StagingDays
	if stagingDays == 0 {
		stagingDays = cfg.StagingDays
	}
	return shellIdx, stagingAlt, stagingDays
}

// launch inserts one batch at the staging orbit.
func (st *simState) launch(l Launch, now time.Time) {
	shellIdx, stagingAlt, stagingDays := resolveLaunch(&st.cfg, l)
	for i := 0; i < l.Count; i++ {
		st.launchSat(shellIdx, stagingAlt, stagingDays, now)
	}
}

// launchSat creates one launched satellite at the staging orbit with
// already-resolved batch parameters — the per-satellite creation unit shared
// by Run and the chunked runner.
func (st *simState) launchSat(shellIdx int, stagingAlt, stagingDays float64, now time.Time) {
	s := st.newSat(shellIdx, now, stagingAlt)
	s.phase = PhaseStaging
	s.altKm = stagingAlt
	s.stagedUntil = now.Add(time.Duration(stagingDays*24) * time.Hour)
	s.nextSample = now.Add(time.Duration(s.rng.Float64()*st.cfg.MeanTLEIntervalHours) * time.Hour)
	st.sats = append(st.sats, s)
}

// newSat builds a satellite with randomized plane geometry and drag factor.
// Catalog numbers are assigned sequentially by the coordinator; every random
// property is drawn from the satellite's own child stream so creation order
// and fleet composition cannot couple satellites to each other.
func (st *simState) newSat(shellIdx int, launchedAt time.Time, stagingAlt float64) *sat {
	shell := st.cfg.Shells[shellIdx]
	cat := st.nextCatalog
	st.nextCatalog++
	rng := rand.New(rand.NewSource(childSeed(st.cfg.Seed, cat)))
	info := SatInfo{
		Catalog:      cat,
		Name:         fmt.Sprintf("STARSIM-%d", cat),
		Shell:        shellIdx,
		LaunchedAt:   launchedAt,
		StagingAltKm: stagingAlt,
		TargetAltKm:  shell.AltitudeKm,
		// Log-normal-ish heterogeneity in ballistic response.
		DragFactor: 0.8 + rng.Float64()*0.5,
	}
	return &sat{
		info:        info,
		rng:         rng,
		scripts:     st.scripts[cat],
		lifespanEnd: launchedAt.Add(time.Duration(st.cfg.LifespanYears*365.25*24) * time.Hour),
		incl:        float64(shell.Inclination) + rng.NormFloat64()*0.02,
		raan:        rng.Float64() * 360,
		argp:        rng.Float64() * 360,
		meanAnomaly: rng.Float64() * 360,
		ecc:         0.0001 + rng.Float64()*0.0002,
	}
}

// step advances every satellite by one hour under Dst reading d. Satellites
// are updated independently on the worker pool (each owns its state and its
// RNG stream); the coordinator then collects the samples emitted this hour
// in satellite order, so the archive layout is identical at every width.
func (st *simState) step(ctx context.Context, now time.Time, d units.NanoTesla) error {
	enh := st.cfg.Atmosphere.Enhancement(d)
	stormActive := d <= units.StormThreshold
	// With proactive mitigation the operator suppresses storm casualties
	// entirely (attentive response), and satellites duck into the low-drag
	// attitude once the storm is extreme.
	duck := st.cfg.ProactiveDragMitigation && enh >= 3
	intensityScale := 0.0
	if stormActive {
		i := -float64(d) / 100
		intensityScale = i * i
	}

	st.stepNow, st.stepD = now, d
	st.stepStorm, st.stepDuck, st.stepIntensity = stormActive, duck, intensityScale
	if err := st.pool.ForEach(ctx, len(st.sats), st.stepFn); err != nil {
		return err
	}

	// Ordered merge of this hour's emissions (at most one per satellite).
	for _, s := range st.sats {
		if s.hasPending {
			s.hasPending = false
			st.result.Samples = append(st.result.Samples, s.pending)
		}
	}
	return nil
}

// stepSat advances one satellite by one hour. It touches only s (state and
// RNG stream) plus read-only run configuration, which is what makes the
// per-step fan-out race-free and schedule-independent.
func (st *simState) stepSat(s *sat, now time.Time, d units.NanoTesla, stormActive, duck bool, intensityScale float64) {
	cfg := &st.cfg
	atm := cfg.Atmosphere
	if s.phase == PhaseReentered {
		return
	}
	if s.scriptCursor < len(s.scripts) {
		st.applyScripts(s, now)
	}

	// Uncompensated drag decay for this hour.
	drag := s.info.DragFactor
	if s.phase == PhaseSafeMode {
		drag *= s.episodeDrag
	}
	if duck {
		// Knife-edge "duck" attitude sheds drag during extreme storms.
		drag *= 0.6
	}
	decay := atm.DecayRate(units.Kilometers(s.altKm), d) / 24 * drag

	switch s.phase {
	case PhaseStaging:
		// Checkout thrusting compensates quiet-time staging drag but has
		// limited authority: the quiet-time rate is the budget.
		budget := atm.DecayRate(units.Kilometers(s.info.StagingAltKm), 0) / 24 * s.info.DragFactor
		net := decay - budget
		if net > 0 {
			s.altKm -= net
		}
		if s.altKm < s.info.StagingAltKm-12 {
			// Drag has won; the batch is written off (Feb 2022 pattern).
			st.beginDeorbit(s, now)
			break
		}
		if now.After(s.stagedUntil) {
			s.phase = PhaseRaising
		}
		st.maybeStormEvent(s, now, stormActive && !cfg.ProactiveDragMitigation && len(s.scripts) == 0, intensityScale)
	case PhaseRaising:
		s.altKm += (cfg.RaiseRateKmPerDay)/24 - decay
		if s.altKm >= s.info.TargetAltKm {
			s.altKm = s.info.TargetAltKm
			s.phase = PhaseOperational
		}
		st.maybeStormEvent(s, now, stormActive && !cfg.ProactiveDragMitigation && len(s.scripts) == 0, intensityScale)
	case PhaseOperational:
		s.altKm -= decay
		deficit := s.info.TargetAltKm - s.altKm
		if deficit > cfg.DeadbandKm {
			boost := cfg.BoostKmPerDay / 24
			if duck {
				boost *= 2 // attentive operational response
			}
			if boost > deficit {
				boost = deficit
			}
			s.altKm += boost
		}
		if now.After(s.lifespanEnd) {
			st.beginDeorbit(s, now)
			break
		}
		if s.decommissionDue(st, now) {
			st.beginDeorbit(s, now)
			break
		}
		st.maybeStormEvent(s, now, stormActive && !cfg.ProactiveDragMitigation && len(s.scripts) == 0, intensityScale)
	case PhaseSafeMode:
		s.altKm -= decay
		if now.After(s.safeUntil) {
			// Recovery: far below the shell (the storm hit during orbit
			// raising) the ion thrusters resume the raise at full
			// authority; a station-keeping-scale excursion recovers at
			// normal boost rates, which is what keeps the tail of Fig 4a
			// elevated for weeks.
			if s.altKm < s.info.TargetAltKm-30 {
				s.phase = PhaseRaising
			} else {
				s.phase = PhaseOperational
			}
		}
	case PhaseDeorbiting:
		s.altKm -= s.deorbitKmDay/24 + decay
	}

	// Universal re-entry floor: whatever the phase, an orbit this low is
	// gone within hours and tracking stops.
	if s.altKm <= atmosphere.ReentryAltitudeKm {
		s.phase = PhaseReentered
		s.info.Fate = PhaseReentered
		s.info.FateAt = now
		return
	}

	// Plane geometry: J2 nodal regression and mean-anomaly advance.
	s.raan += s.raanRatePerHour()
	if s.raan < 0 {
		s.raan += 360
	} else if s.raan >= 360 {
		s.raan -= 360
	}
	s.meanAnomaly += s.maRatePerHour()
	for s.meanAnomaly >= 360 {
		s.meanAnomaly -= 360
	}

	if !now.Before(s.nextSample) {
		st.emitSample(s, now, d)
	}
}

// decommissionDue samples the random early-decommission process. Satellites
// with scripted fates are exempt so presets stay deterministic.
func (s *sat) decommissionDue(st *simState, now time.Time) bool {
	if st.cfg.DecommissionPerYear <= 0 {
		return false
	}
	if len(s.scripts) > 0 {
		return false
	}
	// Sampled lazily at low rate; one uniform draw per satellite-hour would
	// dominate the run, so the per-hour probability is only evaluated on a
	// 1-in-24 hour stride (daily), scaled accordingly.
	if now.Hour() != int(uint(s.info.Catalog)%24) {
		return false
	}
	return s.rng.Float64() < st.cfg.DecommissionPerYear/365.25
}

// maybeStormEvent samples safe-mode entry or permanent failure during storms.
func (st *simState) maybeStormEvent(s *sat, now time.Time, active bool, intensityScale float64) {
	if !active || intensityScale == 0 {
		return
	}
	r := s.rng.Float64()
	pSafe := st.cfg.SafeModeProbPerStormHour * intensityScale
	pFail := st.cfg.FailProbPerStormHour * intensityScale
	switch {
	case r < pFail:
		st.beginUncontrolledDecay(s, now)
	case r < pFail+pSafe:
		st.enterSafeMode(s, now, st.cfg.SafeModeMinDays+s.rng.Float64()*(st.cfg.SafeModeMaxDays-st.cfg.SafeModeMinDays), 0)
	}
}

func (st *simState) enterSafeMode(s *sat, now time.Time, days float64, dragFactor float64) {
	s.phase = PhaseSafeMode
	s.safeUntil = now.Add(time.Duration(days * 24 * float64(time.Hour)))
	if dragFactor > 0 {
		s.episodeDrag = dragFactor
	} else {
		s.episodeDrag = st.cfg.SafeModeDragFactor * (0.75 + 0.5*s.rng.Float64())
	}
}

// beginDeorbit starts a controlled decommission descent.
func (st *simState) beginDeorbit(s *sat, now time.Time) {
	s.phase = PhaseDeorbiting
	s.deorbitKmDay = st.cfg.DeorbitKmPerDay
	s.info.Fate = PhaseDeorbiting
	s.info.FateAt = now
}

// beginUncontrolledDecay marks a storm-failed satellite. The descent uses the
// same controlled rate: operators deorbit unrecoverable satellites promptly
// (Starlink's stated policy), and tumbling drag dominates either way.
func (st *simState) beginUncontrolledDecay(s *sat, now time.Time) {
	s.phase = PhaseDeorbiting
	s.deorbitKmDay = st.cfg.DeorbitKmPerDay * (0.75 + 0.5*s.rng.Float64())
	s.info.Fate = PhaseDeorbiting
	s.info.FateAt = now
}

// applyScripts fires any scripted events due for this satellite.
func (st *simState) applyScripts(s *sat, now time.Time) {
	evs := s.scripts
	for s.scriptCursor < len(evs) && !evs[s.scriptCursor].At.After(now) {
		ev := evs[s.scriptCursor]
		s.scriptCursor++
		switch ev.Action {
		case ScriptSafeMode:
			days := ev.DurationDays
			if days <= 0 {
				days = st.cfg.SafeModeMinDays
			}
			st.enterSafeMode(s, now, days, ev.DragFactor)
		case ScriptFail:
			st.beginUncontrolledDecay(s, now)
			if ev.DragFactor > 0 {
				s.deorbitKmDay = st.cfg.DeorbitKmPerDay * ev.DragFactor
			}
		case ScriptDeorbit:
			st.beginDeorbit(s, now)
		case ScriptProtect:
			// Deliberate no-op; see ScriptProtect.
		}
	}
}

// raanRatePerHour returns the J2 regression rate. The rate varies weakly with
// altitude over a satellite's life, so it is computed from the target shell.
func (s *sat) raanRatePerHour() float64 {
	if s.raanRate == 0 {
		s.raanRate = orbit.RAANRateDegPerDay(units.Kilometers(s.info.TargetAltKm), units.Degrees(s.incl), s.ecc) / 24
	}
	return s.raanRate
}

// maRatePerHour returns the mean-anomaly advance per hour at the target
// altitude (≈225°/hour for the 550 km shell).
func (s *sat) maRatePerHour() float64 {
	if s.maRate == 0 {
		n, err := orbit.MeanMotionFromAltitude(units.Kilometers(s.info.TargetAltKm))
		if err != nil {
			return 0
		}
		s.maRate = float64(n) * 360 / 24
	}
	return s.maRate
}

// emitSample buffers one tracking observation for the coordinator's ordered
// collection at the end of the step, and schedules the next.
func (st *simState) emitSample(s *sat, now time.Time, d units.NanoTesla) {
	cfg := &st.cfg
	alt := s.altKm + s.rng.NormFloat64()*cfg.AltNoiseKm
	if cfg.GrossErrorProb > 0 && s.rng.Float64() < cfg.GrossErrorProb {
		// Tracking mis-fit: a wildly wrong altitude, log-uniform up to the
		// 40,000 km tail the paper observed (Fig 10a).
		lo, hi := 700.0, 40000.0
		alt = lo * math.Pow(hi/lo, s.rng.Float64())
	}
	drag := s.info.DragFactor
	if s.phase == PhaseSafeMode || s.phase == PhaseDeorbiting {
		drag *= 2.2
	}
	s.pending = Sample{
		Catalog:      int32(s.info.Catalog),
		Epoch:        now.Unix(),
		AltKm:        float32(alt),
		BStar:        float32(cfg.Atmosphere.BStar(units.Kilometers(s.altKm), d, drag)),
		Inclination:  float32(s.incl + s.rng.NormFloat64()*0.003),
		RAAN:         float32(s.raan),
		Eccentricity: float32(s.ecc + s.rng.Float64()*1e-5),
		ArgPerigee:   float32(s.argp),
		MeanAnomaly:  float32(s.meanAnomaly),
	}
	s.hasPending = true
	// Refresh cadence: exponential around the mean, clamped to the observed
	// <1 h .. 154 h range.
	iv := s.rng.ExpFloat64() * cfg.MeanTLEIntervalHours
	if iv < 0.5 {
		iv = 0.5
	}
	if iv > cfg.MaxTLEIntervalHours {
		iv = cfg.MaxTLEIntervalHours
	}
	s.nextSample = now.Add(time.Duration(iv * float64(time.Hour)))
}

// finalize copies terminal ground truth into the result.
func (st *simState) finalize() {
	st.result.Sats = make([]SatInfo, len(st.sats))
	for i, s := range st.sats {
		info := s.info
		if info.FateAt.IsZero() {
			info.Fate = s.phase
		}
		st.result.Sats[i] = info
	}
}
