package constellation

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestArchiveSaveLoadRoundTrip(t *testing.T) {
	cfg := smallConfig(24 * 120)
	first := cfg.FirstCatalog
	cfg.Scripted = []ScriptedEvent{{Catalog: first, At: simStart.Add(60 * 24 * 3600e9), Action: ScriptFail}}
	res, err := Run(context.Background(), cfg, quietIndex(cfg.Hours))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Start.Equal(res.Start) || back.Hours != res.Hours {
		t.Errorf("header: %v/%d vs %v/%d", back.Start, back.Hours, res.Start, res.Hours)
	}
	if len(back.Sats) != len(res.Sats) {
		t.Fatalf("sats: %d vs %d", len(back.Sats), len(res.Sats))
	}
	for i := range res.Sats {
		a, b := res.Sats[i], back.Sats[i]
		if a.Catalog != b.Catalog || a.Name != b.Name || a.Shell != b.Shell ||
			a.Fate != b.Fate || !a.LaunchedAt.Equal(b.LaunchedAt) {
			t.Fatalf("sat %d: %+v vs %+v", i, a, b)
		}
		if a.FateAt.IsZero() != b.FateAt.IsZero() || (!a.FateAt.IsZero() && !a.FateAt.Equal(b.FateAt)) {
			t.Fatalf("sat %d FateAt: %v vs %v", i, a.FateAt, b.FateAt)
		}
	}
	if len(back.Samples) != len(res.Samples) {
		t.Fatalf("samples: %d vs %d", len(back.Samples), len(res.Samples))
	}
	for i := range res.Samples {
		if res.Samples[i] != back.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, res.Samples[i], back.Samples[i])
		}
	}
}

func TestArchiveLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not an archive at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestArchiveLoadRejectsTruncation(t *testing.T) {
	cfg := smallConfig(24 * 30)
	res, err := Run(context.Background(), cfg, quietIndex(cfg.Hours))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 4, len(full) / 2, len(full) - 3} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestArchiveLoadRejectsWrongVersion(t *testing.T) {
	cfg := smallConfig(24 * 10)
	res, err := Run(context.Background(), cfg, quietIndex(cfg.Hours))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // bump the version field
	if _, err := Load(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("wrong version err = %v", err)
	}
}
