package constellation

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// Binary archive persistence. Full paper-window simulations cost seconds and
// produce millions of samples; persisting a Result lets the figure harness,
// the CLI and notebooks share one run. The format is a small versioned
// little-endian layout (not gob) so it stays readable across Go versions and
// from other languages.

// archiveMagic identifies the file format; bump archiveVersion on layout
// changes.
const (
	archiveMagic   = 0x434f534d // "COSM"
	archiveVersion = 1
)

// Save writes the result to w.
func (r *Result) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	le := binary.LittleEndian

	writeU32 := func(v uint32) error { return binary.Write(bw, le, v) }
	writeU64 := func(v uint64) error { return binary.Write(bw, le, v) }
	writeF32 := func(v float32) error { return binary.Write(bw, le, v) }
	writeStr := func(s string) error {
		if err := writeU32(uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}

	if err := writeU32(archiveMagic); err != nil {
		return err
	}
	if err := writeU32(archiveVersion); err != nil {
		return err
	}
	if err := writeU64(uint64(r.Start.Unix())); err != nil {
		return err
	}
	if err := writeU32(uint32(r.Hours)); err != nil {
		return err
	}

	if err := writeU32(uint32(len(r.Sats))); err != nil {
		return err
	}
	for i := range r.Sats {
		s := &r.Sats[i]
		if err := writeU32(uint32(s.Catalog)); err != nil {
			return err
		}
		if err := writeStr(s.Name); err != nil {
			return err
		}
		if err := writeU32(uint32(s.Shell)); err != nil {
			return err
		}
		if err := writeU64(uint64(s.LaunchedAt.Unix())); err != nil {
			return err
		}
		if err := writeF32(float32(s.StagingAltKm)); err != nil {
			return err
		}
		if err := writeF32(float32(s.TargetAltKm)); err != nil {
			return err
		}
		if err := writeF32(float32(s.DragFactor)); err != nil {
			return err
		}
		if err := writeU32(uint32(s.Fate)); err != nil {
			return err
		}
		fateAt := int64(0)
		if !s.FateAt.IsZero() {
			fateAt = s.FateAt.Unix()
		}
		if err := writeU64(uint64(fateAt)); err != nil {
			return err
		}
	}

	if err := writeU64(uint64(len(r.Samples))); err != nil {
		return err
	}
	// Samples are fixed-size; write them as one packed stream.
	for i := range r.Samples {
		s := &r.Samples[i]
		if err := writeU32(uint32(s.Catalog)); err != nil {
			return err
		}
		if err := writeU64(uint64(s.Epoch)); err != nil {
			return err
		}
		for _, f := range [7]float32{s.AltKm, s.BStar, s.Inclination, s.RAAN, s.Eccentricity, s.ArgPerigee, s.MeanAnomaly} {
			if err := writeF32(f); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a result previously written by Save.
func Load(r io.Reader) (*Result, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	le := binary.LittleEndian

	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, le, &v)
		return v, err
	}
	readU64 := func() (uint64, error) {
		var v uint64
		err := binary.Read(br, le, &v)
		return v, err
	}
	readF32 := func() (float32, error) {
		var v float32
		err := binary.Read(br, le, &v)
		return v, err
	}
	readStr := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("constellation: unreasonable string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	magic, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("constellation: reading archive header: %w", err)
	}
	if magic != archiveMagic {
		return nil, fmt.Errorf("constellation: not a COSM archive (magic %#x)", magic)
	}
	version, err := readU32()
	if err != nil {
		return nil, err
	}
	if version != archiveVersion {
		return nil, fmt.Errorf("constellation: unsupported archive version %d", version)
	}
	startUnix, err := readU64()
	if err != nil {
		return nil, err
	}
	hours, err := readU32()
	if err != nil {
		return nil, err
	}
	out := &Result{Start: time.Unix(int64(startUnix), 0).UTC(), Hours: int(hours)}

	nSats, err := readU32()
	if err != nil {
		return nil, err
	}
	if nSats > 1<<24 {
		return nil, fmt.Errorf("constellation: unreasonable satellite count %d", nSats)
	}
	out.Sats = make([]SatInfo, nSats)
	for i := range out.Sats {
		s := &out.Sats[i]
		cat, err := readU32()
		if err != nil {
			return nil, err
		}
		s.Catalog = int(cat)
		if s.Name, err = readStr(); err != nil {
			return nil, err
		}
		shell, err := readU32()
		if err != nil {
			return nil, err
		}
		s.Shell = int(shell)
		launched, err := readU64()
		if err != nil {
			return nil, err
		}
		s.LaunchedAt = time.Unix(int64(launched), 0).UTC()
		staging, err := readF32()
		if err != nil {
			return nil, err
		}
		target, err := readF32()
		if err != nil {
			return nil, err
		}
		drag, err := readF32()
		if err != nil {
			return nil, err
		}
		s.StagingAltKm, s.TargetAltKm, s.DragFactor = float64(staging), float64(target), float64(drag)
		fate, err := readU32()
		if err != nil {
			return nil, err
		}
		s.Fate = Phase(fate)
		fateAt, err := readU64()
		if err != nil {
			return nil, err
		}
		if fateAt != 0 {
			s.FateAt = time.Unix(int64(fateAt), 0).UTC()
		}
	}

	nSamples, err := readU64()
	if err != nil {
		return nil, err
	}
	if nSamples > 1<<31 {
		return nil, fmt.Errorf("constellation: unreasonable sample count %d", nSamples)
	}
	out.Samples = make([]Sample, nSamples)
	for i := range out.Samples {
		s := &out.Samples[i]
		cat, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("constellation: truncated archive at sample %d: %w", i, err)
		}
		s.Catalog = int32(cat)
		epoch, err := readU64()
		if err != nil {
			return nil, err
		}
		s.Epoch = int64(epoch)
		var fs [7]float32
		for k := range fs {
			if fs[k], err = readF32(); err != nil {
				return nil, err
			}
			if math.IsNaN(float64(fs[k])) {
				return nil, fmt.Errorf("constellation: NaN field in sample %d", i)
			}
		}
		s.AltKm, s.BStar, s.Inclination, s.RAAN, s.Eccentricity, s.ArgPerigee, s.MeanAnomaly =
			fs[0], fs[1], fs[2], fs[3], fs[4], fs[5], fs[6]
	}
	return out, nil
}
