package constellation

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"
)

// SatSeries is one satellite's time-ordered tracking history.
type SatSeries struct {
	Catalog int
	Samples []Sample // ascending by epoch
}

// GroupByCatalog reorganizes the archive into per-satellite histories
// (ascending epochs). The samples are copied once; the Result is unchanged.
func (r *Result) GroupByCatalog() []SatSeries {
	counts := make(map[int32]int)
	for i := range r.Samples {
		counts[r.Samples[i].Catalog]++
	}
	cats := make([]int32, 0, len(counts))
	for c := range counts {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })

	offset := make(map[int32]int, len(cats))
	total := 0
	for _, c := range cats {
		offset[c] = total
		total += counts[c]
	}
	flat := make([]Sample, total)
	cursor := make(map[int32]int, len(cats))
	for _, s := range r.Samples {
		i := offset[s.Catalog] + cursor[s.Catalog]
		flat[i] = s
		cursor[s.Catalog]++
	}
	out := make([]SatSeries, len(cats))
	for i, c := range cats {
		series := flat[offset[c] : offset[c]+counts[c]]
		// Result.Samples is emitted in simulation-time order, so each
		// per-satellite run is already ascending; sort defensively only if
		// needed.
		if !sort.SliceIsSorted(series, func(a, b int) bool { return series[a].Epoch < series[b].Epoch }) {
			sort.Slice(series, func(a, b int) bool { return series[a].Epoch < series[b].Epoch })
		}
		out[i] = SatSeries{Catalog: int(c), Samples: series}
	}
	return out
}

// Series returns one satellite's history, or nil if it was never sampled.
func (r *Result) Series(catalog int) []Sample {
	var out []Sample
	for _, s := range r.Samples {
		if int(s.Catalog) == catalog {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Epoch < out[b].Epoch })
	return out
}

// Info returns the ground truth for one satellite.
func (r *Result) Info(catalog int) (SatInfo, bool) {
	for i := range r.Sats {
		if r.Sats[i].Catalog == catalog {
			return r.Sats[i], true
		}
	}
	return SatInfo{}, false
}

// TrackedCount returns how many satellites are being tracked at the given
// time: launched on or before it and not yet re-entered.
func (r *Result) TrackedCount(at time.Time) int {
	n := 0
	for i := range r.Sats {
		s := &r.Sats[i]
		if s.LaunchedAt.After(at) {
			continue
		}
		if s.Fate == PhaseReentered && !s.FateAt.IsZero() && s.FateAt.Before(at) {
			continue
		}
		n++
	}
	return n
}

// WriteTLEs streams the archive as a textual 3LE catalog, the format the
// simulated Space-Track service serves. Samples whose altitude cannot be
// expressed as a TLE mean motion (gross tracking errors near or beyond GEO
// remain expressible; negative altitudes are not) are skipped.
func (r *Result) WriteTLEs(w io.Writer, withNames bool) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	names := make(map[int32]string)
	if withNames {
		for i := range r.Sats {
			names[int32(r.Sats[i].Catalog)] = r.Sats[i].Name
		}
	}
	for _, s := range r.Samples {
		t, err := s.TLE(names[s.Catalog])
		if err != nil {
			continue
		}
		l1, l2, err := t.Format()
		if err != nil {
			return fmt.Errorf("constellation: formatting catalog %d: %w", s.Catalog, err)
		}
		if t.Name != "" {
			if _, err := fmt.Fprintln(bw, t.Name); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, l1); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(bw, l2); err != nil {
			return err
		}
	}
	return bw.Flush()
}
