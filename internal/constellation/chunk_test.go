package constellation

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// diffResults fails the test unless a and b are identical field for field.
func diffResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !a.Start.Equal(b.Start) || a.Hours != b.Hours {
		t.Fatalf("%s: header differs: %v/%d vs %v/%d", label, a.Start, a.Hours, b.Start, b.Hours)
	}
	if len(a.Sats) != len(b.Sats) {
		t.Fatalf("%s: sat counts differ: %d vs %d", label, len(a.Sats), len(b.Sats))
	}
	for i := range a.Sats {
		if a.Sats[i] != b.Sats[i] {
			t.Fatalf("%s: sat %d differs:\n  %+v\n  %+v", label, i, a.Sats[i], b.Sats[i])
		}
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("%s: sample counts differ: %d vs %d", label, len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("%s: sample %d differs:\n  %+v\n  %+v", label, i, a.Samples[i], b.Samples[i])
		}
	}
}

// chunkTestConfig exercises every creation path at once: an initial fleet
// spread over multiple shells, launches before/at/after the window start, a
// launch past the window end (never created), out-of-range shell indices,
// zero-means-default staging parameters, scripted events, and a storm to
// drive random safe-mode draws.
func chunkTestConfig(seed int64, hours int) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Start = simStart
	cfg.Hours = hours
	cfg.InitialFleet = 37
	cfg.Launches = []Launch{
		{At: simStart.AddDate(0, 0, -3), Shell: 1, Count: 9},                        // before start: processed at hour 0
		{At: simStart, Shell: 0, Count: 11},                                         // at start
		{At: simStart.Add(30 * time.Minute), Shell: 2, Count: 5},                    // mid-hour: processed at hour 1
		{At: simStart.Add(72 * time.Hour), Shell: 99, Count: 7, StagingAltKm: 320},  // out-of-range shell -> 0
		{At: simStart.Add(200 * time.Hour), Shell: 3, Count: 6, StagingDays: 10},    // short checkout
		{At: simStart.Add(time.Duration(hours+5) * time.Hour), Shell: 0, Count: 50}, // after end: never created
		{At: simStart.Add(time.Duration(hours) * time.Hour), Shell: 0, Count: 8},    // exactly at end: never created
	}
	first := cfg.FirstCatalog
	if first == 0 {
		first = 44713
	}
	cfg.Scripted = []ScriptedEvent{
		{Catalog: first + 2, At: simStart.Add(100 * time.Hour), Action: ScriptSafeMode, DurationDays: 6},
		{Catalog: first + 40, At: simStart.Add(140 * time.Hour), Action: ScriptFail, DragFactor: 1.4},
		{Catalog: first + 50, At: simStart.Add(150 * time.Hour), Action: ScriptDeorbit},
	}
	return cfg
}

// TestRunChunkedEquivalence is the core partition-soundness proof: for every
// chunk size, RunChunked reproduces Run exactly, samples and ground truth
// both.
func TestRunChunkedEquivalence(t *testing.T) {
	hours := 24 * 20
	weather := stormIndex(hours, 24*10, -250)
	for _, seed := range []int64{7, 42} {
		cfg := chunkTestConfig(seed, hours)
		want, err := Run(context.Background(), cfg, weather)
		if err != nil {
			t.Fatal(err)
		}
		for _, chunkSize := range []int{1, 7, 16, 37, 64, 1000} {
			got, err := RunChunked(context.Background(), cfg, weather, chunkSize)
			if err != nil {
				t.Fatalf("seed %d chunk %d: %v", seed, chunkSize, err)
			}
			diffResults(t, "chunked", want, got)
		}
	}
}

// TestRunChunkedWidthInvariance proves the worker width cannot reach the
// merged output.
func TestRunChunkedWidthInvariance(t *testing.T) {
	hours := 24 * 10
	weather := quietIndex(hours)
	cfg := chunkTestConfig(42, hours)
	var want *Result
	for _, workers := range []int{1, 4, 8} {
		cfg.Parallelism = workers
		got, err := RunChunked(context.Background(), cfg, weather, 16)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if want == nil {
			want = got
			continue
		}
		diffResults(t, "width", want, got)
	}
}

// TestRunChunkedResearchFleet covers the launch-cadence preset (no initial
// fleet, launches spread over the whole window).
func TestRunChunkedResearchFleet(t *testing.T) {
	start := simStart
	end := simStart.AddDate(0, 4, 0)
	cfg := ResearchFleet(3, start, end, 19)
	weather := stormIndex(cfg.Hours, cfg.Hours/2, -300)
	want, err := Run(context.Background(), cfg, weather)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunkSize := range []int{13, 50} {
		got, err := RunChunked(context.Background(), cfg, weather, chunkSize)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunkSize, err)
		}
		diffResults(t, "research", want, got)
	}
}

// TestPlanChunksRoster checks the plan's accounting: catalog contiguity,
// bounds arithmetic, and exclusion of never-processed launches.
func TestPlanChunksRoster(t *testing.T) {
	cfg := chunkTestConfig(1, 24*20)
	plan, err := PlanChunks(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	// 37 initial + 9 + 11 + 5 + 7 + 6 launched; the two launches at/after the
	// window end never run.
	if want := 37 + 9 + 11 + 5 + 7 + 6; plan.TotalSats() != want {
		t.Fatalf("TotalSats = %d, want %d", plan.TotalSats(), want)
	}
	if got := plan.NumChunks(); got != (plan.TotalSats()+15)/16 {
		t.Fatalf("NumChunks = %d", got)
	}
	covered := 0
	for i := 0; i < plan.NumChunks(); i++ {
		lo, hi := plan.ChunkBounds(i)
		if lo != covered || hi <= lo || hi > plan.TotalSats() {
			t.Fatalf("chunk %d bounds [%d, %d) break coverage at %d", i, lo, hi, covered)
		}
		covered = hi
	}
	if covered != plan.TotalSats() {
		t.Fatalf("chunks cover %d of %d", covered, plan.TotalSats())
	}
	if !plan.Start().Equal(simStart) {
		t.Fatalf("Start = %v", plan.Start())
	}
}

// TestPlanChunksValidation covers the error paths.
func TestPlanChunksValidation(t *testing.T) {
	if _, err := PlanChunks(chunkTestConfig(1, 24), 0); err == nil {
		t.Error("chunk size 0 accepted")
	}
	bad := chunkTestConfig(1, 24)
	bad.Hours = 0
	if _, err := PlanChunks(bad, 16); err == nil {
		t.Error("Hours=0 accepted")
	}
	if _, err := RunChunked(context.Background(), bad, quietIndex(24), 16); err == nil {
		t.Error("RunChunked accepted invalid config")
	}
	plan, err := PlanChunks(chunkTestConfig(1, 24), 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.RunChunk(context.Background(), -1, quietIndex(24)); err == nil {
		t.Error("negative chunk accepted")
	}
	if _, err := plan.RunChunk(context.Background(), plan.NumChunks(), quietIndex(24)); err == nil {
		t.Error("out-of-range chunk accepted")
	}
}

// TestRunChunkedCancel proves cancelling mid-run returns the context error
// and leaks no goroutines.
func TestRunChunkedCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := chunkTestConfig(1, 24*30)
	cfg.Parallelism = 4
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunChunked(ctx, cfg, quietIndex(cfg.Hours), 8)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestMegaFleetPreset sanity-checks the multi-constellation preset: all four
// constellations populated and the chunked run equivalent to the direct one.
func TestMegaFleetPreset(t *testing.T) {
	cfg := MegaFleet(7, 600, simStart, 4)
	if got, want := len(cfg.Shells), len(StarlinkShells())+len(StarlinkGen2Shells())+len(KuiperShells())+len(OneWebShells()); got != want {
		t.Fatalf("MegaShells: %d shells, want %d", got, want)
	}
	weather := stormIndex(cfg.Hours, cfg.Hours/2, -350)
	want, err := Run(context.Background(), cfg, weather)
	if err != nil {
		t.Fatal(err)
	}
	perShell := make(map[int]int)
	for _, s := range want.Sats {
		perShell[s.Shell]++
	}
	for i := range cfg.Shells {
		if perShell[i] == 0 {
			t.Errorf("shell %d (%s) unpopulated", i, cfg.Shells[i].Name)
		}
	}
	got, err := RunChunked(context.Background(), cfg, weather, 128)
	if err != nil {
		t.Fatal(err)
	}
	diffResults(t, "mega", want, got)
}
