package constellation

import (
	"time"
)

// Landmark satellites and events used by the paper's Fig 3 narrative. The
// catalog numbers are the NORAD identifiers the paper cherry-picks; the
// presets arrange the launch schedule so those numbers exist and script the
// dated incidents onto them.
const (
	// Fig3SatDragSpike (#45766): significantly higher drag after the
	// 24 Mar 2023 moderate storm, followed by decay onset.
	Fig3SatDragSpike = 45766
	// Fig3SatQuietDecay (#45400): decay onset after the same storm without a
	// significant drag change.
	Fig3SatQuietDecay = 45400
	// Fig3SatSharpDrop (#44943): ~150 km altitude drop over the weeks after
	// the 3 Mar 2024 moderate storm.
	Fig3SatSharpDrop = 44943
)

// Paper-era launch landmarks.
var (
	// L1LaunchTime is Starlink's first operational launch (60 satellites,
	// 11 Nov 2019) — the cohort Fig 9 follows.
	L1LaunchTime = time.Date(2019, 11, 11, 0, 0, 0, 0, time.UTC)
	// Feb2022LaunchTime is the launch whose batch was caught at a low
	// staging orbit by the 3 Feb 2022 moderate storm (38 of 49 lost).
	Feb2022LaunchTime = time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	// Feb2022IncidentTime is when the storm doomed the batch.
	Feb2022IncidentTime = time.Date(2022, 2, 4, 0, 0, 0, 0, time.UTC)
	// Fig3StormATime matches spaceweather.Fig3StormA.
	Fig3StormATime = time.Date(2023, 3, 24, 12, 0, 0, 0, time.UTC)
	// Fig3StormBTime matches spaceweather.Fig3StormB.
	Fig3StormBTime = time.Date(2024, 3, 3, 18, 0, 0, 0, time.UTC)
)

// PaperFleet returns the configuration reproducing the paper's measurement
// setting over the full Jan 2020 – May 2024 window: the L1 launch of Nov 2019
// (Fig 9's cohort), a steady launch cadence thereafter, the Feb 2022
// staging-orbit incident, and the Fig 3 scripted satellites. The fleet is a
// ~1:3 scale model of the real deployment (≈2,000 satellites by May 2024
// instead of 6,000) so the archive stays laptop-sized; every per-satellite
// statistic the paper reports is scale-free.
func PaperFleet(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Start = L1LaunchTime
	end := time.Date(2024, 5, 8, 0, 0, 0, 0, time.UTC)
	cfg.Hours = int(end.Sub(L1LaunchTime) / time.Hour)

	// L1: 60 satellites to the 550 km shell from a ~360 km staging orbit.
	cfg.Launches = append(cfg.Launches, Launch{At: L1LaunchTime, Shell: 0, Count: 60, StagingAltKm: 360})

	// Regular cadence: a batch every 10 days from mid-January 2020,
	// round-robin across shells with the 53° shells carrying most of the
	// fleet (as in the real deployment).
	shellPattern := []int{0, 1, 0, 1, 0, 2, 0, 1, 3, 0, 1, 4}
	at := time.Date(2020, 1, 15, 0, 0, 0, 0, time.UTC)
	for i := 0; at.Before(end); i++ {
		if !at.Equal(Feb2022LaunchTime) {
			cfg.Launches = append(cfg.Launches, Launch{
				At: at, Shell: shellPattern[i%len(shellPattern)], Count: 12,
			})
		}
		at = at.AddDate(0, 0, 10)
	}

	// The Feb 2022 incident batch: 49 satellites inserted at an unusually
	// low 210 km staging orbit days before a moderate storm.
	feb2022First := firstCatalogAt(cfg, Feb2022LaunchTime)
	// Survivors of the incident raised orbit promptly (a 210 km parking
	// orbit is not tenable for a 60-day checkout), hence the short staging.
	cfg.Launches = append(cfg.Launches, Launch{
		At: Feb2022LaunchTime, Shell: 0, Count: 49, StagingAltKm: 210, StagingDays: 7,
	})
	// 38 of the 49 never recover: the storm's drag overwhelms them and they
	// re-enter over the following days. The 11 survivors are protected so the
	// incident's outcome is exactly the recorded one.
	for i := 0; i < 49; i++ {
		ev := ScriptedEvent{Catalog: feb2022First + i, At: Feb2022IncidentTime, Action: ScriptProtect}
		if i < 38 {
			ev.Action = ScriptFail
			ev.DragFactor = 1.5
		}
		cfg.Scripted = append(cfg.Scripted, ev)
	}

	// Fig 3's cherry-picked satellites.
	cfg.Scripted = append(cfg.Scripted,
		// #45766: big drag response, then permanent decay.
		ScriptedEvent{Catalog: Fig3SatDragSpike, At: Fig3StormATime.Add(6 * time.Hour), Action: ScriptFail, DragFactor: 1.3},
		// #45400: decay onset with modest drag change.
		ScriptedEvent{Catalog: Fig3SatQuietDecay, At: Fig3StormATime.Add(30 * time.Hour), Action: ScriptFail, DragFactor: 0.8},
		// #44943: the ~150 km drop over the weeks after 3 Mar 2024.
		ScriptedEvent{Catalog: Fig3SatSharpDrop, At: Fig3StormBTime.Add(12 * time.Hour), Action: ScriptFail, DragFactor: 1.25},
	)
	return cfg
}

// firstCatalogAt predicts the catalog number the next launched satellite will
// receive given the launches already scheduled before at. It mirrors the
// simulator's sequential numbering (initial fleet first, then launches in
// time order).
func firstCatalogAt(cfg Config, at time.Time) int {
	first := cfg.FirstCatalog
	if first == 0 {
		first = 44713
	}
	n := cfg.InitialFleet
	for _, l := range cfg.Launches {
		if l.At.Before(at) {
			n += l.Count
		}
	}
	return first + n
}

// May2024Fleet returns a full-scale (≈6,000 satellite) one-month
// configuration for Fig 7: the fleet is seeded directly on station and the
// proactive drag-mitigation response is enabled, as Starlink described in its
// FCC comment on the May 2024 storm.
func May2024Fleet(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Start = time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	cfg.Hours = 31 * 24
	cfg.InitialFleet = 5900
	cfg.ProactiveDragMitigation = true
	// A month is too short for random decommissioning to matter; disable it
	// so tracked-count changes are attributable to the storm alone.
	cfg.DecommissionPerYear = 0
	return cfg
}

// StarlinkGen2Shells returns the Starlink Gen2 shells from the Dec 2022 FCC
// grant: lower, denser shells than Gen1, carrying the bulk of the planned
// ~30k-satellite second generation.
func StarlinkGen2Shells() []Shell {
	return []Shell{
		{Name: "gen2-525", AltitudeKm: 525, Inclination: 53.0, Planes: 28, SatsPerPlane: 120},
		{Name: "gen2-530", AltitudeKm: 530, Inclination: 43.0, Planes: 28, SatsPerPlane: 120},
		{Name: "gen2-535", AltitudeKm: 535, Inclination: 33.0, Planes: 28, SatsPerPlane: 120},
	}
}

// KuiperShells returns Amazon Kuiper's three shells per the 2020 FCC grant
// (3,236 satellites between 590 and 630 km).
func KuiperShells() []Shell {
	return []Shell{
		{Name: "kuiper-590", AltitudeKm: 590, Inclination: 33.0, Planes: 28, SatsPerPlane: 28},
		{Name: "kuiper-610", AltitudeKm: 610, Inclination: 42.0, Planes: 36, SatsPerPlane: 36},
		{Name: "kuiper-630", AltitudeKm: 630, Inclination: 51.9, Planes: 34, SatsPerPlane: 34},
	}
}

// MegaShells composes the multi-constellation shell set the scale-out work
// targets: Starlink Gen1 + Gen2, Kuiper, and OneWeb in one fleet spec. The
// initial fleet round-robins across the twelve shells, so every constellation
// is populated at every fleet size.
func MegaShells() []Shell {
	shells := StarlinkShells()
	shells = append(shells, StarlinkGen2Shells()...)
	shells = append(shells, KuiperShells()...)
	shells = append(shells, OneWebShells()...)
	return shells
}

// MegaFleet returns a sats-satellite multi-constellation configuration over
// days simulated days: the whole fleet is seeded on station across the
// MegaShells set, with random decommissioning disabled so runs of different
// lengths stay comparable. This is the preset behind the 6k/30k/100k scale
// sweep and the chunk-equivalence matrix.
func MegaFleet(seed int64, sats int, start time.Time, days int) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Start = start
	cfg.Hours = days * 24
	cfg.Shells = MegaShells()
	cfg.InitialFleet = sats
	cfg.DecommissionPerYear = 0
	return cfg
}

// ResearchFleet returns a reduced configuration for tests and examples:
// batches of size batch every 20 days over the window, no scripted events.
func ResearchFleet(seed int64, start, end time.Time, batch int) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Start = start
	cfg.Hours = int(end.Sub(start) / time.Hour)
	for at := start; at.Before(end); at = at.AddDate(0, 0, 20) {
		cfg.Launches = append(cfg.Launches, Launch{At: at, Shell: 0, Count: batch})
	}
	return cfg
}
