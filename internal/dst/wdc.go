package dst

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"cosmicdance/internal/timeseries"
)

// Record is one day of hourly Dst readings in the WDC exchange layout: a
// 120-column line carrying the index name, date, version, 24 hourly values
// (I4, 9999 = missing) and the daily mean.
type Record struct {
	Year    int
	Month   time.Month
	Day     int
	Version int         // 0 quicklook, 1 provisional, 2 final
	Hourly  [24]float64 // math.NaN() marks missing hours
}

// Missing is the WDC sentinel for an absent hourly value.
const Missing = 9999

// Date returns the UTC midnight the record covers.
func (r *Record) Date() time.Time {
	return time.Date(r.Year, r.Month, r.Day, 0, 0, 0, 0, time.UTC)
}

// Mean returns the daily mean over present hours; NaN if all are missing.
func (r *Record) Mean() float64 {
	sum, n := 0.0, 0
	for _, v := range r.Hourly {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Format encodes the record as a 120-column WDC exchange line.
func (r *Record) Format() (string, error) {
	if r.Year < 1900 || r.Year > 2099 {
		return "", fmt.Errorf("dst: year %d outside WDC century fields", r.Year)
	}
	if r.Month < 1 || r.Month > 12 || r.Day < 1 || r.Day > 31 {
		return "", fmt.Errorf("dst: bad date %d-%d-%d", r.Year, r.Month, r.Day)
	}
	var b strings.Builder
	b.Grow(120)
	// Columns 1-20: header. Layout per the WDC exchange format: index name,
	// two-digit year, month, '*', day, reserved, version, century, base value
	// (always zero for Dst as published).
	fmt.Fprintf(&b, "DST%02d%02d*%02d %1d%02d  %4d",
		r.Year%100, int(r.Month), r.Day, r.Version%10, r.Year/100, 0)
	// Columns 21-116: 24 hourly values, I4.
	for _, v := range r.Hourly {
		b.WriteString(formatI4(v))
	}
	// Columns 117-120: daily mean, I4.
	b.WriteString(formatI4(r.Mean()))
	line := b.String()
	if len(line) != 120 {
		return "", fmt.Errorf("dst: internal error: record is %d columns, want 120", len(line))
	}
	return line, nil
}

func formatI4(v float64) string {
	if math.IsNaN(v) {
		return fmt.Sprintf("%4d", Missing)
	}
	n := int(math.Round(v))
	if n > 9998 {
		n = 9998
	}
	if n < -999 {
		n = -999
	}
	return fmt.Sprintf("%4d", n)
}

// ParseRecord decodes one 120-column WDC exchange line.
func ParseRecord(line string) (*Record, error) {
	line = strings.TrimRight(line, "\r\n")
	if len(line) != 120 {
		return nil, fmt.Errorf("dst: record is %d columns, want 120", len(line))
	}
	if line[0:3] != "DST" {
		return nil, fmt.Errorf("dst: index name %q, want DST", line[0:3])
	}
	if line[7] != '*' {
		return nil, fmt.Errorf("dst: missing '*' index marker in column 8")
	}
	var r Record
	yy, err := strconv.Atoi(strings.TrimSpace(line[3:5]))
	if err != nil {
		return nil, fmt.Errorf("dst: bad year: %v", err)
	}
	mm, err := strconv.Atoi(strings.TrimSpace(line[5:7]))
	if err != nil || mm < 1 || mm > 12 {
		return nil, fmt.Errorf("dst: bad month %q", line[5:7])
	}
	dd, err := strconv.Atoi(strings.TrimSpace(line[8:10]))
	if err != nil || dd < 1 || dd > 31 {
		return nil, fmt.Errorf("dst: bad day %q", line[8:10])
	}
	ver, err := strconv.Atoi(strings.TrimSpace(line[11:12]))
	if err != nil {
		return nil, fmt.Errorf("dst: bad version %q", line[11:12])
	}
	century, err := strconv.Atoi(strings.TrimSpace(line[12:14]))
	if err != nil {
		// Old records leave the century blank, implying 19xx.
		century = 19
	}
	r.Year = century*100 + yy
	r.Month = time.Month(mm)
	r.Day = dd
	r.Version = ver
	for h := 0; h < 24; h++ {
		field := line[20+4*h : 24+4*h]
		v, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			return nil, fmt.Errorf("dst: bad hourly value %q at hour %d", field, h)
		}
		if v == Missing {
			r.Hourly[h] = math.NaN()
		} else {
			r.Hourly[h] = float64(v)
		}
	}
	return &r, nil
}

// ParseRecords reads records from r, one per line, skipping blank lines.
func ParseRecords(r io.Reader) ([]*Record, error) {
	s := bufio.NewScanner(r)
	var out []*Record
	lineNo := 0
	for s.Scan() {
		lineNo++
		line := s.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		rec, err := ParseRecord(line)
		if err != nil {
			return out, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, rec)
	}
	if err := s.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// WriteRecords encodes records to w, one per line.
func WriteRecords(w io.Writer, records []*Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range records {
		line, err := r.Format()
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintln(bw, line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ToIndex assembles daily records into a contiguous hourly index. Records
// must be day-consecutive; gaps are an error because storm detection over a
// silently stitched gap would fabricate storm boundaries.
func ToIndex(records []*Record) (*Index, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("dst: no records")
	}
	start := records[0].Date()
	values := make([]float64, 0, len(records)*24)
	for i, r := range records {
		want := start.AddDate(0, 0, i)
		if !r.Date().Equal(want) {
			return nil, fmt.Errorf("dst: record %d covers %v, want %v (gap or disorder)", i, r.Date(), want)
		}
		values = append(values, r.Hourly[:]...)
	}
	return &Index{hourly: timeseries.FromValues(start, values)}, nil
}

// FromIndex splits an hourly index back into daily WDC records (the inverse
// of ToIndex). The index must start at a UTC midnight and span whole days.
func FromIndex(x *Index, version int) ([]*Record, error) {
	h := x.Hourly()
	if h.Len()%24 != 0 {
		return nil, fmt.Errorf("dst: index spans %d hours, not whole days", h.Len())
	}
	if hh := h.Start.Hour(); hh != 0 {
		return nil, fmt.Errorf("dst: index starts at hour %d, want midnight", hh)
	}
	days := h.Len() / 24
	out := make([]*Record, days)
	vals := h.Values()
	for d := 0; d < days; d++ {
		date := h.Start.AddDate(0, 0, d)
		r := &Record{Year: date.Year(), Month: date.Month(), Day: date.Day(), Version: version}
		copy(r.Hourly[:], vals[d*24:(d+1)*24])
		out[d] = r
	}
	return out, nil
}
