package dst

import (
	"strings"
	"testing"
)

// FuzzParseRecord hammers the WDC record parser: no panics, and accepted
// records must re-encode to parseable lines.
func FuzzParseRecord(f *testing.F) {
	good, err := (&Record{Year: 2024, Month: 5, Day: 11, Version: 2}).Format()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(strings.Repeat("9", 120))
	f.Add("DST" + strings.Repeat(" ", 117))
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseRecord(line)
		if err != nil {
			return
		}
		out, err := rec.Format()
		if err != nil {
			return
		}
		if _, err := ParseRecord(out); err != nil {
			t.Fatalf("re-parse of own output failed: %v\n%q", err, out)
		}
	})
}
