// Package dst handles the Disturbance storm time (Dst) index: the hourly
// geomagnetic-field measurement published by the WDC for Geomagnetism, Kyoto,
// that CosmicDance uses as its solar-activity signal. It provides a codec for
// the WDC exchange record format, an hourly index container, and the storm
// detection used throughout the paper's analyses.
package dst

import (
	"math"
	"time"

	"cosmicdance/internal/stats"
	"cosmicdance/internal/timeseries"
	"cosmicdance/internal/units"
)

// Index is a contiguous hourly Dst series.
type Index struct {
	hourly *timeseries.Hourly
}

// NewIndex wraps an hourly series as a Dst index.
func NewIndex(h *timeseries.Hourly) *Index { return &Index{hourly: h} }

// FromValues builds an index over raw hourly readings starting at start.
func FromValues(start time.Time, values []float64) *Index {
	return &Index{hourly: timeseries.FromValues(start, values)}
}

// Hourly exposes the underlying series.
func (x *Index) Hourly() *timeseries.Hourly { return x.hourly }

// Len returns the number of hourly readings.
func (x *Index) Len() int { return x.hourly.Len() }

// Start returns the timestamp of the first reading.
func (x *Index) Start() time.Time { return x.hourly.Start }

// End returns the timestamp one hour past the last reading.
func (x *Index) End() time.Time { return x.hourly.End() }

// At returns the reading covering t.
func (x *Index) At(t time.Time) (units.NanoTesla, bool) {
	v, ok := x.hourly.ValueAt(t)
	return units.NanoTesla(v), ok
}

// Slice returns the sub-index covering [from, to).
func (x *Index) Slice(from, to time.Time) *Index {
	return &Index{hourly: x.hourly.Slice(from, to)}
}

// Min returns the most negative reading (peak storm intensity) and its time.
func (x *Index) Min() (units.NanoTesla, time.Time) {
	vals := x.hourly.Values()
	if len(vals) == 0 {
		return 0, time.Time{}
	}
	best, at := vals[0], 0
	for i, v := range vals {
		if v < best {
			best, at = v, i
		}
	}
	return units.NanoTesla(best), x.hourly.TimeAt(at)
}

// IntensityPercentile returns the Dst level whose *intensity* (|negative
// excursion|) is at the p-th percentile. The paper's "99th-ptile intensity:
// −63 nT" means 99% of hours are less intense (less negative) than −63 nT, so
// this is the (100−p)-th percentile of the raw signed values.
func (x *Index) IntensityPercentile(p float64) (units.NanoTesla, error) {
	v, err := stats.Percentile(x.hourly.Values(), 100-p)
	if err != nil {
		return 0, err
	}
	return units.NanoTesla(v), nil
}

// HoursInClass counts readings in each G-scale class.
func (x *Index) HoursInClass() map[units.GScale]int {
	out := make(map[units.GScale]int)
	for _, v := range x.hourly.Values() {
		if math.IsNaN(v) {
			continue
		}
		out[units.ClassifyDst(units.NanoTesla(v))]++
	}
	return out
}

// Storm is one maximal run of hours at or below a detection threshold.
type Storm struct {
	Start  time.Time
	Hours  int             // contiguous hours at or below threshold
	Peak   units.NanoTesla // most negative reading in the run
	PeakAt time.Time
}

// End returns the first hour after the storm.
func (s Storm) End() time.Time { return s.Start.Add(time.Duration(s.Hours) * time.Hour) }

// Duration returns the storm length.
func (s Storm) Duration() time.Duration { return time.Duration(s.Hours) * time.Hour }

// Category classifies the storm by its peak intensity.
func (s Storm) Category() units.GScale { return units.ClassifyDst(s.Peak) }

// Storms returns every maximal run of consecutive hours with Dst <=
// threshold, in time order. NaN readings (missing data) terminate runs.
func (x *Index) Storms(threshold units.NanoTesla) []Storm {
	var out []Storm
	vals := x.hourly.Values()
	inRun := false
	var cur Storm
	for i, v := range vals {
		below := !math.IsNaN(v) && units.NanoTesla(v) <= threshold
		switch {
		case below && !inRun:
			inRun = true
			cur = Storm{Start: x.hourly.TimeAt(i), Hours: 1, Peak: units.NanoTesla(v), PeakAt: x.hourly.TimeAt(i)}
		case below && inRun:
			cur.Hours++
			if units.NanoTesla(v) < cur.Peak {
				cur.Peak = units.NanoTesla(v)
				cur.PeakAt = x.hourly.TimeAt(i)
			}
		case !below && inRun:
			inRun = false
			out = append(out, cur)
		}
	}
	if inRun {
		out = append(out, cur)
	}
	return out
}

// StormsByCategory groups detected storms by their G-scale class.
func (x *Index) StormsByCategory(threshold units.NanoTesla) map[units.GScale][]Storm {
	out := make(map[units.GScale][]Storm)
	for _, s := range x.Storms(threshold) {
		out[s.Category()] = append(out[s.Category()], s)
	}
	return out
}

// BandRuns returns every maximal run of consecutive hours whose reading lies
// within (lo, hi] — e.g. the moderate band is (-200, -100]. This is the
// duration notion behind Fig 2: the paper's "severe storm lasted 3 contiguous
// hours" counts exactly the hours at severe depth.
func (x *Index) BandRuns(lo, hi units.NanoTesla) []Storm {
	var out []Storm
	vals := x.hourly.Values()
	inRun := false
	var cur Storm
	for i, v := range vals {
		in := !math.IsNaN(v) && units.NanoTesla(v) > lo && units.NanoTesla(v) <= hi
		switch {
		case in && !inRun:
			inRun = true
			cur = Storm{Start: x.hourly.TimeAt(i), Hours: 1, Peak: units.NanoTesla(v), PeakAt: x.hourly.TimeAt(i)}
		case in && inRun:
			cur.Hours++
			if units.NanoTesla(v) < cur.Peak {
				cur.Peak = units.NanoTesla(v)
				cur.PeakAt = x.hourly.TimeAt(i)
			}
		case !in && inRun:
			inRun = false
			out = append(out, cur)
		}
	}
	if inRun {
		out = append(out, cur)
	}
	return out
}

// CategoryBand returns the Dst band (lo, hi] of a G-scale class under the
// paper's operative classification. ok is false for GQuiet and unknown
// classes.
func CategoryBand(c units.GScale) (lo, hi units.NanoTesla, ok bool) {
	switch c {
	case units.G1Minor:
		return -100, -50, true
	case units.G2Moderate:
		return -200, -100, true
	case units.G4Severe:
		return -350, -200, true
	case units.G5Extreme:
		return -100000, -350, true
	default:
		return 0, 0, false
	}
}

// CategoryRuns returns the contiguous runs of hours at the depth of one
// category (Fig 2's storm-duration population for that category).
func (x *Index) CategoryRuns(c units.GScale) []Storm {
	lo, hi, ok := CategoryBand(c)
	if !ok {
		return nil
	}
	return x.BandRuns(lo, hi)
}

// DurationSummary reports the distribution of storm durations (in hours) for
// one category, the quantity behind Fig 2.
func DurationSummary(storms []Storm) (stats.Summary, error) {
	durations := make([]float64, len(storms))
	for i, s := range storms {
		durations[i] = float64(s.Hours)
	}
	return stats.Summarize(durations)
}

// QuietWindows returns maximal runs of at least minHours consecutive hours
// whose intensity stays above (less negative than) threshold — the "no major
// storm observed" epochs used as the control in Fig 4(b) and Fig 5(a).
func (x *Index) QuietWindows(threshold units.NanoTesla, minHours int) []Storm {
	var out []Storm
	vals := x.hourly.Values()
	runStart := -1
	flush := func(end int) {
		if runStart >= 0 && end-runStart >= minHours {
			out = append(out, Storm{Start: x.hourly.TimeAt(runStart), Hours: end - runStart})
		}
		runStart = -1
	}
	for i, v := range vals {
		quiet := !math.IsNaN(v) && units.NanoTesla(v) > threshold
		if quiet && runStart < 0 {
			runStart = i
		}
		if !quiet {
			flush(i)
		}
	}
	flush(len(vals))
	return out
}
