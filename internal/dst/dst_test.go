package dst

import (
	"math"
	"testing"
	"time"

	"cosmicdance/internal/timeseries"
	"cosmicdance/internal/units"
)

var t0 = time.Date(2023, 4, 24, 0, 0, 0, 0, time.UTC)

func TestStormsDetectsRuns(t *testing.T) {
	// quiet, then 3 hours of severe storm (the 24 Apr 2023 event), quiet.
	vals := []float64{-10, -20, -209, -213, -208, -30, -5}
	x := FromValues(t0, vals)
	storms := x.Storms(units.StormThreshold)
	if len(storms) != 1 {
		t.Fatalf("storms = %d, want 1", len(storms))
	}
	s := storms[0]
	if s.Hours != 3 {
		t.Errorf("Hours = %d, want 3", s.Hours)
	}
	if s.Peak != -213 {
		t.Errorf("Peak = %v, want -213", s.Peak)
	}
	if !s.Start.Equal(t0.Add(2 * time.Hour)) {
		t.Errorf("Start = %v", s.Start)
	}
	if !s.PeakAt.Equal(t0.Add(3 * time.Hour)) {
		t.Errorf("PeakAt = %v", s.PeakAt)
	}
	if !s.End().Equal(t0.Add(5 * time.Hour)) {
		t.Errorf("End = %v", s.End())
	}
	if s.Duration() != 3*time.Hour {
		t.Errorf("Duration = %v", s.Duration())
	}
	if s.Category() != units.G4Severe {
		t.Errorf("Category = %v, want G4", s.Category())
	}
}

func TestStormsMultipleRunsAndEdges(t *testing.T) {
	// A storm touching the start, one in the middle, one touching the end.
	vals := []float64{-60, -55, -10, -70, -10, -90, -120}
	x := FromValues(t0, vals)
	storms := x.Storms(units.StormThreshold)
	if len(storms) != 3 {
		t.Fatalf("storms = %d, want 3", len(storms))
	}
	if storms[0].Hours != 2 || storms[1].Hours != 1 || storms[2].Hours != 2 {
		t.Errorf("durations = %d,%d,%d", storms[0].Hours, storms[1].Hours, storms[2].Hours)
	}
	if storms[2].Peak != -120 || storms[2].Category() != units.G2Moderate {
		t.Errorf("last storm = %+v", storms[2])
	}
}

func TestStormsNaNBreaksRun(t *testing.T) {
	vals := []float64{-60, math.NaN(), -60}
	x := FromValues(t0, vals)
	storms := x.Storms(units.StormThreshold)
	if len(storms) != 2 {
		t.Fatalf("storms across NaN = %d, want 2", len(storms))
	}
}

func TestStormsNone(t *testing.T) {
	x := FromValues(t0, []float64{-10, -20, -49})
	if got := x.Storms(units.StormThreshold); len(got) != 0 {
		t.Errorf("storms = %v, want none", got)
	}
}

func TestStormsPartitionProperty(t *testing.T) {
	// The hours inside detected storms must exactly equal the hours at or
	// below threshold.
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = -float64((i * 37) % 150)
	}
	x := FromValues(t0, vals)
	storms := x.Storms(units.StormThreshold)
	inStorm := 0
	for _, s := range storms {
		inStorm += s.Hours
	}
	direct := 0
	for _, v := range vals {
		if units.NanoTesla(v) <= units.StormThreshold {
			direct++
		}
	}
	if inStorm != direct {
		t.Errorf("storm hours = %d, direct count = %d", inStorm, direct)
	}
	// Storms must be disjoint and ordered.
	for i := 1; i < len(storms); i++ {
		if storms[i].Start.Before(storms[i-1].End()) {
			t.Errorf("storm %d overlaps previous", i)
		}
	}
}

func TestIntensityPercentile(t *testing.T) {
	// 100 hours: 99 quiet at -10, one at -63. The 99th intensity percentile
	// should land between them, near -63 (paper's headline number).
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = -10
	}
	vals[50] = -63
	x := FromValues(t0, vals)
	p99, err := x.IntensityPercentile(99)
	if err != nil {
		t.Fatal(err)
	}
	if p99 > -10 || p99 < -63 {
		t.Errorf("99th intensity percentile = %v, want within [-63,-10]", p99)
	}
	// 0th percentile is the least intense hour.
	p0, err := x.IntensityPercentile(0)
	if err != nil {
		t.Fatal(err)
	}
	if p0 != -10 {
		t.Errorf("0th = %v, want -10", p0)
	}
	// 100th percentile is the peak.
	p100, err := x.IntensityPercentile(100)
	if err != nil {
		t.Fatal(err)
	}
	if p100 != -63 {
		t.Errorf("100th = %v, want -63", p100)
	}
}

func TestHoursInClass(t *testing.T) {
	vals := []float64{-10, -55, -55, -150, -220, -400, math.NaN()}
	x := FromValues(t0, vals)
	got := x.HoursInClass()
	want := map[units.GScale]int{
		units.GQuiet:     1,
		units.G1Minor:    2,
		units.G2Moderate: 1,
		units.G4Severe:   1,
		units.G5Extreme:  1,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("class %v = %d, want %d", k, got[k], v)
		}
	}
	total := 0
	for _, v := range got {
		total += v
	}
	if total != 6 {
		t.Errorf("total classified = %d, want 6 (NaN excluded)", total)
	}
}

func TestMin(t *testing.T) {
	x := FromValues(t0, []float64{-10, -412, -30})
	peak, at := x.Min()
	if peak != -412 || !at.Equal(t0.Add(time.Hour)) {
		t.Errorf("Min = %v at %v", peak, at)
	}
	empty := FromValues(t0, nil)
	if p, _ := empty.Min(); p != 0 {
		t.Errorf("empty Min = %v", p)
	}
}

func TestAtAndSlice(t *testing.T) {
	x := FromValues(t0, []float64{-1, -2, -3, -4})
	if v, ok := x.At(t0.Add(90 * time.Minute)); !ok || v != -2 {
		t.Errorf("At = %v, %v", v, ok)
	}
	if _, ok := x.At(t0.Add(-time.Hour)); ok {
		t.Error("At before start should be !ok")
	}
	sub := x.Slice(t0.Add(time.Hour), t0.Add(3*time.Hour))
	if sub.Len() != 2 {
		t.Errorf("slice len = %d", sub.Len())
	}
	if !x.End().Equal(t0.Add(4*time.Hour)) || !x.Start().Equal(t0) {
		t.Errorf("span = %v..%v", x.Start(), x.End())
	}
}

func TestStormsByCategory(t *testing.T) {
	vals := []float64{-60, -10, -150, -10, -250, -10}
	x := FromValues(t0, vals)
	byCat := x.StormsByCategory(units.StormThreshold)
	if len(byCat[units.G1Minor]) != 1 || len(byCat[units.G2Moderate]) != 1 || len(byCat[units.G4Severe]) != 1 {
		t.Errorf("byCat = %v", byCat)
	}
}

func TestDurationSummary(t *testing.T) {
	storms := []Storm{{Hours: 3}, {Hours: 15}, {Hours: 19}}
	s, err := DurationSummary(storms)
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 15 || s.Max != 19 || s.Min != 3 {
		t.Errorf("summary = %+v", s)
	}
	if _, err := DurationSummary(nil); err == nil {
		t.Error("empty storm list: want error")
	}
}

func TestQuietWindows(t *testing.T) {
	// 5 quiet hours, 1 storm hour, 2 quiet, NaN, 3 quiet.
	vals := []float64{-1, -2, -3, -4, -5, -80, -6, -7, math.NaN(), -8, -9, -10}
	x := FromValues(t0, vals)
	wins := x.QuietWindows(units.StormThreshold, 3)
	if len(wins) != 2 {
		t.Fatalf("windows = %d, want 2 (min length filters the 2-hour run)", len(wins))
	}
	if wins[0].Hours != 5 || !wins[0].Start.Equal(t0) {
		t.Errorf("first window = %+v", wins[0])
	}
	if wins[1].Hours != 3 || !wins[1].Start.Equal(t0.Add(9*time.Hour)) {
		t.Errorf("second window = %+v", wins[1])
	}
}

func TestQuietWindowsAllQuiet(t *testing.T) {
	vals := make([]float64, 48)
	for i := range vals {
		vals[i] = -5
	}
	x := FromValues(t0, vals)
	wins := x.QuietWindows(units.StormThreshold, 24)
	if len(wins) != 1 || wins[0].Hours != 48 {
		t.Errorf("windows = %+v", wins)
	}
}

func TestNewIndexWrapsHourly(t *testing.T) {
	h := timeseries.FromValues(t0, []float64{-1, -2})
	x := NewIndex(h)
	if x.Len() != 2 || x.Hourly() != h {
		t.Errorf("NewIndex: len=%d", x.Len())
	}
}

func TestBandRuns(t *testing.T) {
	// A storm dipping through mild into moderate and back: the mild band is
	// visited twice (descent and recovery), the moderate band once.
	vals := []float64{-10, -60, -120, -150, -120, -60, -10}
	x := FromValues(t0, vals)
	mild := x.BandRuns(-100, -50)
	if len(mild) != 2 {
		t.Fatalf("mild runs = %d, want 2 (descent + recovery)", len(mild))
	}
	if mild[0].Hours != 1 || mild[1].Hours != 1 {
		t.Errorf("mild run lengths = %d, %d", mild[0].Hours, mild[1].Hours)
	}
	moderate := x.BandRuns(-200, -100)
	if len(moderate) != 1 || moderate[0].Hours != 3 {
		t.Fatalf("moderate runs = %+v, want one 3-hour run", moderate)
	}
	if moderate[0].Peak != -150 {
		t.Errorf("moderate peak = %v", moderate[0].Peak)
	}
	// NaN breaks a band run.
	x2 := FromValues(t0, []float64{-60, math.NaN(), -60})
	if got := x2.BandRuns(-100, -50); len(got) != 2 {
		t.Errorf("NaN-split runs = %d, want 2", len(got))
	}
	// Run touching the series end is flushed.
	x3 := FromValues(t0, []float64{-10, -60})
	if got := x3.BandRuns(-100, -50); len(got) != 1 {
		t.Errorf("trailing run = %d, want 1", len(got))
	}
}

func TestCategoryBand(t *testing.T) {
	cases := []struct {
		c      units.GScale
		lo, hi units.NanoTesla
		ok     bool
	}{
		{units.G1Minor, -100, -50, true},
		{units.G2Moderate, -200, -100, true},
		{units.G4Severe, -350, -200, true},
		{units.G5Extreme, -100000, -350, true},
		{units.GQuiet, 0, 0, false},
		{units.G3Strong, 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, ok := CategoryBand(c.c)
		if ok != c.ok || (ok && (lo != c.lo || hi != c.hi)) {
			t.Errorf("CategoryBand(%v) = %v,%v,%v", c.c, lo, hi, ok)
		}
	}
	if got := FromValues(t0, []float64{-60}).CategoryRuns(units.GQuiet); got != nil {
		t.Errorf("quiet category runs = %v", got)
	}
}

func TestCategoryRunsPartitionStormHours(t *testing.T) {
	// Every storm-band hour belongs to exactly one category's runs.
	vals := make([]float64, 400)
	for i := range vals {
		vals[i] = -float64((i * 53) % 400)
	}
	x := FromValues(t0, vals)
	inRuns := 0
	for _, c := range []units.GScale{units.G1Minor, units.G2Moderate, units.G4Severe, units.G5Extreme} {
		for _, r := range x.CategoryRuns(c) {
			inRuns += r.Hours
		}
	}
	direct := 0
	for _, v := range vals {
		if units.ClassifyDst(units.NanoTesla(v)) != units.GQuiet {
			direct++
		}
	}
	if inRuns != direct {
		t.Errorf("run hours = %d, classified hours = %d", inRuns, direct)
	}
}
