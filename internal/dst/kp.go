package dst

import (
	"math"

	"cosmicdance/internal/units"
)

// Kp support. NOAA's G-scale is formally defined on the 3-hourly planetary
// Kp index (G1=Kp5 ... G5=Kp9); the paper works in Dst but quotes G bands,
// so the two indices need a consistent bridge. The mapping below is the
// standard empirical correspondence between Kp levels and storm-time Dst
// depressions, chosen to agree exactly with the paper's operative Dst bands
// (G1 from −50 nT, G2 from −100 nT, G4 from −200 nT, G5 from −350 nT).

// kpDstAnchor maps integer Kp values to representative Dst levels (nT).
// The G4 interior point (−275 nT) splits the paper's severe band so that
// Kp 9 begins exactly at the −350 nT extreme boundary.
var kpDstAnchor = [10]float64{0, -5, -15, -30, -40, -50, -100, -200, -275, -350}

// KpFromDst estimates the Kp level for a Dst reading by piecewise-linear
// interpolation of the anchor table, clamped to [0, 9].
func KpFromDst(d units.NanoTesla) float64 {
	v := float64(d)
	if v >= kpDstAnchor[0] {
		return 0
	}
	for k := 1; k < len(kpDstAnchor); k++ {
		if v >= kpDstAnchor[k] {
			lo, hi := kpDstAnchor[k-1], kpDstAnchor[k]
			return float64(k-1) + (v-lo)/(hi-lo)
		}
	}
	return 9
}

// DstFromKp inverts KpFromDst (clamping Kp into [0, 9]).
func DstFromKp(kp float64) units.NanoTesla {
	if kp <= 0 {
		return units.NanoTesla(kpDstAnchor[0])
	}
	if kp >= 9 {
		return units.NanoTesla(kpDstAnchor[9])
	}
	k := int(math.Floor(kp))
	frac := kp - float64(k)
	lo, hi := kpDstAnchor[k], kpDstAnchor[k+1]
	return units.NanoTesla(lo + (hi-lo)*frac)
}

// GScaleFromKp applies NOAA's formal definition: G1 at Kp 5 through G5 at
// Kp 9 (fractional Kp classifies by its floor).
func GScaleFromKp(kp float64) units.GScale {
	switch {
	case kp < 5:
		return units.GQuiet
	case kp < 6:
		return units.G1Minor
	case kp < 7:
		return units.G2Moderate
	case kp < 8:
		return units.G3Strong
	case kp < 9:
		return units.G4Severe
	default:
		return units.G5Extreme
	}
}

// KpSeries derives the 3-hourly Kp series from an hourly Dst index: each Kp
// interval takes the most disturbed (most negative) hour it covers, matching
// how Kp responds to the worst sub-interval conditions. Trailing hours that
// do not fill a 3-hour interval are dropped.
func (x *Index) KpSeries() []float64 {
	vals := x.hourly.Values()
	n := len(vals) / 3
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		worst := math.Inf(1)
		bad := false
		for k := 0; k < 3; k++ {
			v := vals[i*3+k]
			if math.IsNaN(v) {
				bad = true
				break
			}
			if v < worst {
				worst = v
			}
		}
		if bad {
			out[i] = math.NaN()
			continue
		}
		out[i] = KpFromDst(units.NanoTesla(worst))
	}
	return out
}
