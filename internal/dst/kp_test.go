package dst

import (
	"math"
	"testing"
	"testing/quick"

	"cosmicdance/internal/units"
)

func TestKpFromDstAnchors(t *testing.T) {
	cases := []struct {
		d  units.NanoTesla
		kp float64
	}{
		{0, 0}, {10, 0}, {-5, 1}, {-50, 5}, {-100, 6}, {-200, 7}, {-275, 8}, {-350, 9}, {-500, 9}, {-1800, 9},
	}
	for _, c := range cases {
		if got := KpFromDst(c.d); math.Abs(got-c.kp) > 1e-9 {
			t.Errorf("KpFromDst(%v) = %v, want %v", c.d, got, c.kp)
		}
	}
	// Interpolation: halfway between -50 and -100 is Kp 5.5.
	if got := KpFromDst(-75); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("KpFromDst(-75) = %v, want 5.5", got)
	}
}

func TestKpDstRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		kp := float64(raw%9000) / 1000 // [0, 9)
		back := KpFromDst(DstFromKp(kp))
		return math.Abs(back-kp) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if DstFromKp(-1) != 0 || DstFromKp(12) != -350 {
		t.Error("clamping failed")
	}
}

func TestKpMonotoneInIntensity(t *testing.T) {
	prev := -1.0
	for d := 0.0; d >= -600; d -= 10 {
		kp := KpFromDst(units.NanoTesla(d))
		if kp < prev {
			t.Fatalf("Kp decreased at %v nT: %v < %v", d, kp, prev)
		}
		prev = kp
	}
}

func TestGScaleFromKpMatchesNOAADefinition(t *testing.T) {
	cases := []struct {
		kp   float64
		want units.GScale
	}{
		{0, units.GQuiet}, {4.9, units.GQuiet},
		{5, units.G1Minor}, {5.9, units.G1Minor},
		{6, units.G2Moderate},
		{7, units.G3Strong},
		{8, units.G4Severe},
		{9, units.G5Extreme}, {9.5, units.G5Extreme},
	}
	for _, c := range cases {
		if got := GScaleFromKp(c.kp); got != c.want {
			t.Errorf("GScaleFromKp(%v) = %v, want %v", c.kp, got, c.want)
		}
	}
}

func TestKpAndDstClassificationsAgree(t *testing.T) {
	// Converting Dst to Kp and classifying by NOAA's Kp definition must
	// agree with the paper's Dst bands at the G1, G2 and G5 boundaries
	// (Kp 7/"strong" is folded into severe on the Dst side; see ClassifyDst).
	for _, d := range []units.NanoTesla{-20, -50, -75, -100, -150, -350, -412} {
		kpClass := GScaleFromKp(KpFromDst(d))
		dstClass := units.ClassifyDst(d)
		if kpClass == units.G3Strong {
			kpClass = units.G4Severe
		}
		if kpClass != dstClass {
			t.Errorf("at %v: Kp route %v, Dst route %v", d, kpClass, dstClass)
		}
	}
}

func TestKpSeries(t *testing.T) {
	// 7 hours: two full Kp intervals + one dropped trailing hour.
	vals := []float64{-10, -60, -10, -10, -10, -10, -300}
	x := FromValues(t0, vals)
	kp := x.KpSeries()
	if len(kp) != 2 {
		t.Fatalf("intervals = %d, want 2", len(kp))
	}
	// First interval's worst hour is -60 → Kp between 5 and 6.
	if kp[0] < 5 || kp[0] >= 6 {
		t.Errorf("kp[0] = %v", kp[0])
	}
	// Second interval is quiet (Dst -10 maps between Kp 1 and 2).
	if kp[1] > 2 {
		t.Errorf("kp[1] = %v", kp[1])
	}
}

func TestKpSeriesNaN(t *testing.T) {
	vals := []float64{-10, math.NaN(), -10}
	x := FromValues(t0, vals)
	kp := x.KpSeries()
	if len(kp) != 1 || !math.IsNaN(kp[0]) {
		t.Errorf("kp = %v, want one NaN interval", kp)
	}
}
