package dst

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func sampleRecord(year int, month time.Month, day int) *Record {
	r := &Record{Year: year, Month: month, Day: day, Version: 2}
	for h := 0; h < 24; h++ {
		r.Hourly[h] = -float64(h * 3)
	}
	return r
}

func TestRecordFormatIs120Columns(t *testing.T) {
	line, err := sampleRecord(2023, time.April, 24).Format()
	if err != nil {
		t.Fatal(err)
	}
	if len(line) != 120 {
		t.Fatalf("len = %d, want 120", len(line))
	}
	if !strings.HasPrefix(line, "DST2304*24") {
		t.Errorf("header = %q", line[:12])
	}
}

func TestRecordRoundTrip(t *testing.T) {
	in := sampleRecord(2024, time.May, 11)
	in.Hourly[5] = -412
	in.Hourly[7] = math.NaN()
	line, err := in.Format()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseRecord(line)
	if err != nil {
		t.Fatalf("ParseRecord: %v\n%q", err, line)
	}
	if out.Year != 2024 || out.Month != time.May || out.Day != 11 || out.Version != 2 {
		t.Errorf("header round trip: %+v", out)
	}
	for h := 0; h < 24; h++ {
		if math.IsNaN(in.Hourly[h]) != math.IsNaN(out.Hourly[h]) {
			t.Errorf("hour %d: NaN mismatch", h)
			continue
		}
		if !math.IsNaN(in.Hourly[h]) && in.Hourly[h] != out.Hourly[h] {
			t.Errorf("hour %d: %v != %v", h, in.Hourly[h], out.Hourly[h])
		}
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		in := &Record{
			Year:    1957 + rng.Intn(120),
			Month:   time.Month(1 + rng.Intn(12)),
			Day:     1 + rng.Intn(28),
			Version: rng.Intn(3),
		}
		for h := range in.Hourly {
			switch rng.Intn(10) {
			case 0:
				in.Hourly[h] = math.NaN()
			default:
				in.Hourly[h] = float64(-rng.Intn(600)) // storms are negative
			}
		}
		line, err := in.Format()
		if err != nil {
			t.Fatal(err)
		}
		out, err := ParseRecord(line)
		if err != nil {
			t.Fatalf("trial %d: %v\n%q", trial, err, line)
		}
		if out.Year != in.Year || out.Month != in.Month || out.Day != in.Day {
			t.Fatalf("trial %d: date mismatch %+v vs %+v", trial, out, in)
		}
		for h := 0; h < 24; h++ {
			a, b := in.Hourly[h], out.Hourly[h]
			if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
				t.Fatalf("trial %d hour %d: %v vs %v", trial, h, a, b)
			}
		}
	}
}

func TestRecordFormatErrors(t *testing.T) {
	bad := []*Record{
		{Year: 1800, Month: 1, Day: 1},
		{Year: 2020, Month: 0, Day: 1},
		{Year: 2020, Month: 13, Day: 1},
		{Year: 2020, Month: 1, Day: 0},
		{Year: 2020, Month: 1, Day: 32},
	}
	for i, r := range bad {
		if _, err := r.Format(); err == nil {
			t.Errorf("case %d: bad record formatted", i)
		}
	}
}

func TestParseRecordErrors(t *testing.T) {
	good, err := sampleRecord(2023, time.April, 24).Format()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		line string
	}{
		{"short", good[:119]},
		{"long", good + "X"},
		{"bad index name", "ABC" + good[3:]},
		{"missing star", good[:7] + "x" + good[8:]},
		{"bad month", good[:5] + "13" + good[7:]},
		{"bad hourly", good[:21] + "xx" + good[23:]},
	}
	for _, c := range cases {
		if _, err := ParseRecord(c.line); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestClampExtremeValues(t *testing.T) {
	r := sampleRecord(2023, time.April, 24)
	r.Hourly[0] = -1800 // Carrington-scale: below the I4 field floor
	r.Hourly[1] = 12345
	line, err := r.Format()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseRecord(line)
	if err != nil {
		t.Fatal(err)
	}
	if out.Hourly[0] != -999 {
		t.Errorf("clamped floor = %v, want -999", out.Hourly[0])
	}
	if out.Hourly[1] != 9998 {
		t.Errorf("clamped ceiling = %v, want 9998 (9999 is the missing sentinel)", out.Hourly[1])
	}
}

func TestWriteParseRecords(t *testing.T) {
	in := []*Record{
		sampleRecord(2023, time.April, 23),
		sampleRecord(2023, time.April, 24),
	}
	var buf bytes.Buffer
	if err := WriteRecords(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1].Day != 24 {
		t.Errorf("round trip = %d records", len(out))
	}
}

func TestParseRecordsReportsLine(t *testing.T) {
	good, _ := sampleRecord(2023, time.April, 23).Format()
	input := good + "\n" + "garbage\n"
	_, err := ParseRecords(strings.NewReader(input))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line-2 failure", err)
	}
}

func TestToIndex(t *testing.T) {
	recs := []*Record{
		sampleRecord(2023, time.April, 23),
		sampleRecord(2023, time.April, 24),
	}
	x, err := ToIndex(recs)
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() != 48 {
		t.Errorf("Len = %d", x.Len())
	}
	if !x.Start().Equal(time.Date(2023, 4, 23, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("Start = %v", x.Start())
	}
	// Hour 25 is hour 1 of day 2 = -3.
	if v, ok := x.At(time.Date(2023, 4, 24, 1, 0, 0, 0, time.UTC)); !ok || v != -3 {
		t.Errorf("At = %v, %v", v, ok)
	}
}

func TestToIndexRejectsGaps(t *testing.T) {
	recs := []*Record{
		sampleRecord(2023, time.April, 23),
		sampleRecord(2023, time.April, 25), // gap
	}
	if _, err := ToIndex(recs); err == nil {
		t.Error("gap accepted")
	}
	if _, err := ToIndex(nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestFromIndexInverseOfToIndex(t *testing.T) {
	recs := []*Record{
		sampleRecord(2023, time.April, 23),
		sampleRecord(2023, time.April, 24),
	}
	x, err := ToIndex(recs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromIndex(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("records = %d", len(back))
	}
	for i := range back {
		if back[i].Date() != recs[i].Date() {
			t.Errorf("record %d date = %v", i, back[i].Date())
		}
		if back[i].Hourly != recs[i].Hourly {
			t.Errorf("record %d values differ", i)
		}
	}
}

func TestFromIndexErrors(t *testing.T) {
	x := FromValues(time.Date(2023, 4, 23, 0, 0, 0, 0, time.UTC), make([]float64, 25))
	if _, err := FromIndex(x, 2); err == nil {
		t.Error("partial day accepted")
	}
	x2 := FromValues(time.Date(2023, 4, 23, 5, 0, 0, 0, time.UTC), make([]float64, 24))
	if _, err := FromIndex(x2, 2); err == nil {
		t.Error("non-midnight start accepted")
	}
}

func TestRecordMean(t *testing.T) {
	r := &Record{Year: 2023, Month: 1, Day: 1}
	for h := range r.Hourly {
		r.Hourly[h] = math.NaN()
	}
	if !math.IsNaN(r.Mean()) {
		t.Error("all-missing mean should be NaN")
	}
	r.Hourly[0] = -10
	r.Hourly[1] = -20
	if r.Mean() != -15 {
		t.Errorf("Mean = %v", r.Mean())
	}
}
