// Package units holds the physical constants and typed quantities shared by
// every CosmicDance subsystem. Types are thin named floats so arithmetic stays
// cheap while signatures stay self-documenting.
package units

import (
	"fmt"
	"math"
	"time"
)

// Physical constants. Values follow the WGS-72 / NORAD conventions used by
// the TLE ecosystem so altitudes derived from mean motion line up with the
// figures operators publish.
const (
	// MuEarth is the Earth's standard gravitational parameter in km^3/s^2.
	MuEarth = 398600.4418
	// EarthRadiusKm is the mean Earth radius used to convert semi-major axis
	// to altitude.
	EarthRadiusKm = 6371.0
	// EarthEquatorialRadiusKm is used by the J2 nodal-regression model.
	EarthEquatorialRadiusKm = 6378.137
	// J2 is the Earth's second zonal harmonic (oblateness).
	J2 = 1.08262668e-3
	// SecondsPerDay is the length of the TLE "day" (solar day).
	SecondsPerDay = 86400.0
	// SiderealDaySeconds is the Earth's rotation period.
	SiderealDaySeconds = 86164.0905
)

// Kilometers is a distance or altitude in kilometres.
type Kilometers float64

// Meters converts to metres.
func (k Kilometers) Meters() float64 { return float64(k) * 1000 }

// String implements fmt.Stringer.
func (k Kilometers) String() string { return fmt.Sprintf("%.3f km", float64(k)) }

// NanoTesla is a geomagnetic field disturbance in nanotesla. Dst values are
// negative during storms; more negative means more intense.
type NanoTesla float64

// String implements fmt.Stringer.
func (n NanoTesla) String() string { return fmt.Sprintf("%.0f nT", float64(n)) }

// RevsPerDay is an orbital mean motion in revolutions per (solar) day.
type RevsPerDay float64

// Period returns the orbital period implied by the mean motion.
func (r RevsPerDay) Period() time.Duration {
	if r <= 0 {
		return 0
	}
	return time.Duration(SecondsPerDay / float64(r) * float64(time.Second))
}

// Degrees is an angle in degrees.
type Degrees float64

// Radians converts to radians.
func (d Degrees) Radians() float64 { return float64(d) * math.Pi / 180 }

// DegreesFromRadians converts radians to Degrees.
func DegreesFromRadians(rad float64) Degrees { return Degrees(rad * 180 / math.Pi) }

// Normalize360 maps the angle into [0, 360).
func (d Degrees) Normalize360() Degrees {
	v := math.Mod(float64(d), 360)
	if v < 0 {
		v += 360
	}
	return Degrees(v)
}

// GScale is NOAA's geomagnetic storm classification.
type GScale int

// NOAA G-scale categories. GQuiet means the hour is below storm threshold.
const (
	GQuiet GScale = iota
	G1Minor
	G2Moderate
	G3Strong
	G4Severe
	G5Extreme
)

// String implements fmt.Stringer.
func (g GScale) String() string {
	switch g {
	case GQuiet:
		return "quiet"
	case G1Minor:
		return "G1 (minor)"
	case G2Moderate:
		return "G2 (moderate)"
	case G3Strong:
		return "G3 (strong)"
	case G4Severe:
		return "G4 (severe)"
	case G5Extreme:
		return "G5 (extreme)"
	default:
		return fmt.Sprintf("GScale(%d)", int(g))
	}
}

// ClassifyDst maps a Dst reading onto the G-scale bands the paper operates
// with: G1 (mild) −100..−50 nT, G2 (moderate) −200..−100 nT, G4 (severe)
// −350..−200 nT, and G5 (extreme) below −350 nT. The NOAA scale wedges
// G3 (strong) "around −200 nT" between moderate and severe; the paper itself
// classifies the −209/−213/−208 nT hours of 24 Apr 2023 as severe, so this
// function folds the strong band into severe at the −200 nT boundary and
// never returns G3Strong (the constant exists for NOAA completeness).
func ClassifyDst(v NanoTesla) GScale {
	switch {
	case v > -50:
		return GQuiet
	case v > -100:
		return G1Minor
	case v > -200:
		return G2Moderate
	case v > -350:
		return G4Severe
	default:
		return G5Extreme
	}
}

// StormThreshold is the Dst level below which geomagnetic activity is
// considered a storm (WDC/AER convention, also the paper's G1 lower bound).
const StormThreshold NanoTesla = -50
