package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestClassifyDst(t *testing.T) {
	cases := []struct {
		v    NanoTesla
		want GScale
	}{
		{0, GQuiet},
		{-49.9, GQuiet},
		{-50, G1Minor},
		{-63, G1Minor},
		{-99.9, G1Minor},
		{-100, G2Moderate},
		{-112, G2Moderate},
		{-199, G2Moderate},
		{-200, G4Severe},
		{-209, G4Severe},
		{-213, G4Severe},
		{-250, G4Severe},
		{-349, G4Severe},
		{-350, G5Extreme},
		{-412, G5Extreme},
		{-1800, G5Extreme},
	}
	for _, c := range cases {
		if got := ClassifyDst(c.v); got != c.want {
			t.Errorf("ClassifyDst(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestGScaleString(t *testing.T) {
	want := map[GScale]string{
		GQuiet:     "quiet",
		G1Minor:    "G1 (minor)",
		G2Moderate: "G2 (moderate)",
		G3Strong:   "G3 (strong)",
		G4Severe:   "G4 (severe)",
		G5Extreme:  "G5 (extreme)",
		GScale(42): "GScale(42)",
	}
	for g, s := range want {
		if g.String() != s {
			t.Errorf("GScale(%d).String() = %q, want %q", int(g), g.String(), s)
		}
	}
}

func TestRevsPerDayPeriod(t *testing.T) {
	// A satellite at ~550 km completes ~15.05 revolutions per day, so the
	// period should be roughly 95.7 minutes.
	p := RevsPerDay(15.05).Period()
	if p < 95*time.Minute || p > 97*time.Minute {
		t.Errorf("period of 15.05 rev/day = %v, want ~95.7 min", p)
	}
	if got := RevsPerDay(0).Period(); got != 0 {
		t.Errorf("period of 0 rev/day = %v, want 0", got)
	}
	if got := RevsPerDay(-1).Period(); got != 0 {
		t.Errorf("period of negative mean motion = %v, want 0", got)
	}
}

func TestDegreesNormalize360(t *testing.T) {
	cases := []struct{ in, want Degrees }{
		{0, 0},
		{359.9, 359.9},
		{360, 0},
		{361, 1},
		{-1, 359},
		{-721, 359},
		{720.5, 0.5},
	}
	for _, c := range cases {
		if got := c.in.Normalize360(); math.Abs(float64(got-c.want)) > 1e-9 {
			t.Errorf("Normalize360(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalize360Property(t *testing.T) {
	f := func(d float64) bool {
		if math.IsNaN(d) || math.IsInf(d, 0) || math.Abs(d) > 1e12 {
			return true // skip degenerate inputs
		}
		got := Degrees(d).Normalize360()
		return got >= 0 && got < 360
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassifyDstMonotonic(t *testing.T) {
	// More negative Dst must never map to a *less* severe class.
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := NanoTesla(math.Min(a, b)), NanoTesla(math.Max(a, b))
		return ClassifyDst(lo) >= ClassifyDst(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKilometersMeters(t *testing.T) {
	if got := Kilometers(1.5).Meters(); got != 1500 {
		t.Errorf("1.5 km = %v m, want 1500", got)
	}
}

func TestStringers(t *testing.T) {
	if s := Kilometers(550).String(); s != "550.000 km" {
		t.Errorf("Kilometers string = %q", s)
	}
	if s := NanoTesla(-63).String(); s != "-63 nT" {
		t.Errorf("NanoTesla string = %q", s)
	}
}

func TestDegreesRadiansRoundTrip(t *testing.T) {
	f := func(d float64) bool {
		if math.IsNaN(d) || math.IsInf(d, 0) || math.Abs(d) > 1e9 {
			return true
		}
		back := DegreesFromRadians(Degrees(d).Radians())
		return math.Abs(float64(back)-d) <= 1e-9*math.Max(1, math.Abs(d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
