package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestStreamOrder proves consume sees every index in order at every width,
// even when production completes out of order.
func TestStreamOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 200
			var got []int
			err := Stream(context.Background(), workers, n,
				func(i int) (int, error) {
					if i%7 == 0 {
						runtime.Gosched() // perturb completion order
					}
					return i * 3, nil
				},
				func(i, v int) error {
					if v != i*3 {
						t.Errorf("index %d delivered value %d, want %d", i, v, i*3)
					}
					got = append(got, i)
					return nil
				})
			if err != nil {
				t.Fatalf("Stream: %v", err)
			}
			if len(got) != n {
				t.Fatalf("consumed %d indices, want %d", len(got), n)
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("consumption order broken at %d: got index %d", i, v)
				}
			}
		})
	}
}

// TestStreamBoundedInFlight proves claim gating: no more than workers
// indices are ever in flight (produced but not yet consumed).
func TestStreamBoundedInFlight(t *testing.T) {
	const workers, n = 4, 100
	var inFlight, peak atomic.Int64
	err := Stream(context.Background(), workers, n,
		func(i int) (int, error) {
			v := inFlight.Add(1)
			for {
				p := peak.Load()
				if v <= p || peak.CompareAndSwap(p, v) {
					break
				}
			}
			return i, nil
		},
		func(i, v int) error {
			inFlight.Add(-1)
			return nil
		})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak in-flight %d exceeds worker bound %d", p, workers)
	}
}

// TestStreamProduceError proves a produce error cancels the stream and is
// returned, with every worker joined.
func TestStreamProduceError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		before := runtime.NumGoroutine()
		var consumed atomic.Int64
		err := Stream(context.Background(), workers, 1000,
			func(i int) (int, error) {
				if i == 17 {
					return 0, boom
				}
				return i, nil
			},
			func(i, v int) error {
				consumed.Add(1)
				return nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, boom)
		}
		if c := consumed.Load(); c > 17 {
			t.Fatalf("workers=%d: consumed %d indices past the failure", workers, c)
		}
		waitForGoroutines(t, before)
	}
}

// TestStreamConsumeError proves a consume error stops the stream promptly.
func TestStreamConsumeError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var produced atomic.Int64
		err := Stream(context.Background(), workers, 1000,
			func(i int) (int, error) {
				produced.Add(1)
				return i, nil
			},
			func(i, v int) error {
				if i == 5 {
					return boom
				}
				return nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, boom)
		}
		// Claim gating bounds overproduction to one window past the failure.
		if p := produced.Load(); p > 5+int64(workers)+1 {
			t.Fatalf("workers=%d: produced %d items after consume failed at 5", workers, p)
		}
	}
}

// TestStreamPanic proves a producer panic surfaces as *PanicError.
func TestStreamPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := Stream(context.Background(), workers, 50,
			func(i int) (int, error) {
				if i == 3 {
					panic("kaboom")
				}
				return i, nil
			},
			func(i, v int) error { return nil })
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "kaboom" {
			t.Fatalf("panic value = %v", pe.Value)
		}
	}
}

// TestStreamCancel proves context cancellation mid-stream returns the
// context error and leaks nothing.
func TestStreamCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	err := Stream(ctx, 4, 10000,
		func(i int) (int, error) { return i, nil },
		func(i, v int) error {
			if i == 20 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitForGoroutines(t, before)
}

// TestStreamEmpty proves n <= 0 is a no-op returning the context state.
func TestStreamEmpty(t *testing.T) {
	called := false
	err := Stream(context.Background(), 4, 0,
		func(i int) (int, error) { called = true; return 0, nil },
		func(i, v int) error { called = true; return nil })
	if err != nil || called {
		t.Fatalf("empty stream: err=%v called=%v", err, called)
	}
}

// waitForGoroutines polls until the goroutine count returns to (near) the
// baseline, failing the test if it never does.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
